// Package coconut is the public API of the Coconut data series indexing
// infrastructure (Kondylakis, Dayan, Zoumpatianos, Palpanas: "Coconut",
// PVLDB 2018; demonstrated as "Coconut Palm", SIGMOD 2019).
//
// Coconut organizes data series by a sortable summarization: the bits of an
// iSAX word's segments are interleaved most-significant-first so that
// sorting the resulting keys keeps similar series adjacent. On top of that
// ordering the package offers:
//
//   - Tree (CoconutTree): a read-optimized, compact and contiguous B+-tree
//     bulk-loaded with two-pass external sorting.
//   - LSM (CoconutLSM): a write-optimized log-structured merge index for
//     continuously arriving series.
//   - Stream: temporal-window exploration over streams using the PP, TP, or
//     BTP schemes.
//   - Sharded: N independent Tree or LSM shards behind one facade, series
//     hash-partitioned across them, probes fanned out and merged
//     deterministically.
//   - Recommend: the decision-tree recommender that picks a configuration
//     for a scenario and explains why.
//
// All distances are Euclidean distances between z-normalized series, the
// standard in data series similarity search. Indexes run against a
// simulated page-addressed disk that accounts sequential vs. random I/O;
// use Stats to observe the access-pattern behaviour the papers describe.
//
// # Parallelism
//
// Searches fan out over independent sub-scans — the runs of an LSM, the
// time-partitions of a stream, the leaf ranges of a tree — on a bounded
// worker pool sized by Options.Parallelism (default: one worker per CPU,
// i.e. GOMAXPROCS). Parallelism never changes answers: every search
// returns results identical to the serial path's, because each worker
// collects into a deterministic top-k structure whose contents depend only
// on the candidate set, not on evaluation order. Set Parallelism to 1 to
// recover the exact serial execution, e.g. when comparing I/O access
// patterns against the paper. Completed indexes are safe for concurrent
// searches from multiple goroutines; inserts still require external
// serialization against searches.
//
// # Sharding and batching
//
// Sharded (BuildShardedTree / NewShardedLSM) hash-partitions series across
// N complete sub-indexes, each on its own simulated disk, and answers by
// fanning probes across the shards. Exact and range results are
// byte-identical to the unsharded index's at every shard count: placement
// is a pure function of the series ID, distances are per-pair, each
// shard's top-k is exhaustive over its subset, and per-shard answers merge
// through the same order-independent collectors the parallel engine uses.
//
// SearchBatch on Tree, LSM, and Sharded executes many queries through
// pooled per-worker search contexts — tables refilled per query, scratch
// buffers reused across the batch — moving parallelism from within one
// scan to across queries. Every batched answer is byte-identical to the
// corresponding single Search.
package coconut

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/bufpool"
	"repro/internal/clsm"
	"repro/internal/compact"
	"repro/internal/ctree"
	"repro/internal/fsx"
	"repro/internal/index"
	"repro/internal/recommender"
	"repro/internal/series"
	"repro/internal/simd"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Options configures an index.
type Options struct {
	// SeriesLen is the (fixed) length of every series. Required.
	SeriesLen int
	// Segments is the number of iSAX segments (default 16).
	Segments int
	// Bits is the per-segment cardinality in bits (default 8).
	Bits int
	// Materialized stores full series inside the index (faster queries,
	// larger and slower to build). Non-materialized indexes keep series in
	// a raw store and fetch them during search.
	Materialized bool
	// FillFactor (Tree only): fraction of each leaf filled at build time,
	// in (0,1]. Lower values absorb later inserts without splits.
	FillFactor float64
	// GrowthFactor (LSM only): runs per level before merging (default 4).
	GrowthFactor int
	// BufferEntries (LSM only): in-memory write buffer capacity (default
	// 1024).
	BufferEntries int
	// MemBudget is construction memory in bytes (default 1 MiB).
	MemBudget int
	// PageSize of the simulated disk (default 4096).
	PageSize int
	// CacheBytes sizes the buffer pool between the index and its disk: hot
	// pages (leaf pages, run pages, raw-series pages) are served from
	// memory, and only cache misses reach the disk and its cost accounting.
	// 0 (the default) disables caching — every read reaches the simulated
	// head, the paper-faithful setting. Sharded indexes share one pool of
	// this size across all shards. Results are byte-identical at every
	// cache size; only I/O cost and wall-clock time change.
	CacheBytes int64
	// Parallelism bounds the worker goroutines one search (and one
	// external-sort pass during Tree construction) may use. The default (0)
	// selects GOMAXPROCS — one worker per CPU; 1 runs fully serially.
	// Results are byte-identical at every setting; only wall-clock time and
	// the simulated head's seq/rand accounting change.
	Parallelism int
	// WALDir (LSM only) makes ingest durable: every Insert is appended to a
	// segmented write-ahead log in this host-filesystem directory before it
	// is acknowledged, and reopening over the same directory (NewLSM on a
	// log that was never checkpointed, or OpenLSM after a SaveFile
	// checkpoint) replays the tail so no acknowledged insert is lost — even
	// after a crash that tore the log mid-append. Empty (the default)
	// disables the WAL. Sharded LSMs keep one log per shard under this
	// directory.
	WALDir string
	// Durability selects the WAL group-commit policy: DurabilityBatched
	// (the default) syncs every few inserts or milliseconds, trading a
	// bounded window of recent acknowledgements for ingest throughput;
	// DurabilitySync syncs every insert before acknowledging it.
	Durability Durability
	// StorageDir selects the file-backed storage backend: index pages live
	// in real page-aligned files under this host directory (pread/pwrite,
	// fsync on Sync/Close) instead of the simulated in-memory disk. Empty
	// (the default) keeps the simulated disk — the paper-faithful
	// cost-accounting mode. Results are byte-identical on either backend;
	// only where the pages live changes. Sharded indexes keep one
	// subdirectory per shard under this directory.
	StorageDir string
	// FS overrides the host filesystem used by the file-backed storage
	// backend, the write-ahead log, and snapshot saves. nil (the default)
	// means the real filesystem; crash and fault-injection tests inject
	// fsx.MemFS here.
	FS fsx.FS
	// PlanCacheSize bounds the query-plan cache: an LRU of filled pruning
	// tables keyed by the query's quantized PAA signature and the index
	// configuration, so repeated query shapes skip the per-query table
	// build. 0 (the default) disables the cache. Sharded indexes share one
	// cache across all shards, like the buffer pool; batch searches share
	// it across worker slots. Results are byte-identical at every size —
	// a hit requires exact PAA equality, the signature only buckets.
	PlanCacheSize int
	// DisablePlanner turns off statistics-driven probe planning: with the
	// planner on (the default), searches order LSM-run, stream-partition,
	// tree-leaf-range, and shard probes by a per-unit synopsis envelope
	// lower bound and skip units that provably cannot improve the current
	// answer. Answers are byte-identical either way; only I/O cost
	// changes. The escape hatch exists for A/B measurement (experiment
	// E17) and as a safety valve.
	DisablePlanner bool
	// CompactionWorkers (LSM only) moves level merges off the insert path:
	// n > 0 runs merges as background jobs on a pool of n workers while
	// inserts and searches keep running against the pre-merge structure
	// (results stay byte-identical throughout — searches pin an immutable
	// manifest). 0 (the default) keeps the synchronous cascade inside
	// flushes, the paper-faithful accounting. A sharded LSM shares one
	// worker pool across all shards.
	CompactionWorkers int
	// CompressRuns stores on-disk pages — LSM runs and tree leaves — in the
	// packed encoding: delta/bit-packed sortable keys, frame-of-reference
	// IDs and timestamps, payloads verbatim. Each page holds as many
	// entries as its compressed bytes allow, so scans evaluate more
	// candidates per page read and I/O cost per query drops. Results are
	// byte-identical either way. Encoding is a per-run property: an LSM
	// reopened with a different setting keeps old runs readable and
	// re-encodes them as merges rewrite them. Streaming temporal schemes
	// (TP/BTP) keep their fixed-size partitions regardless.
	CompressRuns bool
	// Kernels forces a distance-kernel implementation: "avx2", "neon", or
	// "scalar". Empty (the default) auto-detects the best kernel for the
	// CPU (also overridable via the COCONUT_KERNELS environment variable).
	// All kernels return bit-identical distances; only speed differs. The
	// selection is process-wide. See Stats.Kernel for the active one.
	Kernels string
}

// Durability selects how eagerly the write-ahead log syncs; see
// Options.Durability.
type Durability string

// WAL group-commit policies.
const (
	// DurabilityBatched groups several inserts per fsync (every 64 inserts
	// or 2ms, whichever first). An acknowledged insert is crash-safe once
	// the next group commit lands — the standard group-commit trade.
	DurabilityBatched Durability = "batched"
	// DurabilitySync fsyncs before acknowledging every insert.
	DurabilitySync Durability = "sync"
)

// walOptions maps the facade durability knobs onto the log's sync policy.
func walOptions(dir string, d Durability, fsys fsx.FS) (wal.Options, error) {
	var out wal.Options
	switch d {
	case DurabilityBatched, "":
		out = wal.BatchedOptions(dir)
	case DurabilitySync:
		out = wal.SyncOptions(dir)
	default:
		return wal.Options{}, fmt.Errorf("coconut: unknown durability %q (want %q or %q)", d, DurabilityBatched, DurabilitySync)
	}
	out.FS = fsys
	return out, nil
}

// newBackend selects the storage backend per Options: the simulated disk
// by default, or a file-backed store under StorageDir (plus an optional
// subdirectory, used by sharded indexes) when set.
func (o Options) newBackend(sub string) (storage.Backend, error) {
	if o.StorageDir == "" {
		return storage.NewDisk(o.PageSize), nil
	}
	dir := o.StorageDir
	if sub != "" {
		dir = filepath.Join(dir, sub)
	}
	return storage.NewFileDisk(storage.FileDiskOptions{Dir: dir, PageSize: o.PageSize, FS: o.FS})
}

// newPlanner builds the facade's query planner from the planning knobs.
// Every facade handle owns exactly one (shared across shards and batch
// slots), so skip and cache counters aggregate per index.
func (o Options) newPlanner() *index.Planner {
	return &index.Planner{Disabled: o.DisablePlanner, Cache: index.NewPlanCache(o.PlanCacheSize)}
}

func (o Options) config() (index.Config, error) {
	if o.Kernels != "" {
		if err := simd.Select(o.Kernels); err != nil {
			return index.Config{}, fmt.Errorf("coconut: %w", err)
		}
	}
	cfg := index.Config{
		SeriesLen:    o.SeriesLen,
		Segments:     o.Segments,
		Bits:         o.Bits,
		Materialized: o.Materialized,
	}
	if cfg.Segments == 0 {
		cfg.Segments = 16
	}
	if cfg.Bits == 0 {
		cfg.Bits = 8
	}
	return cfg, cfg.Validate()
}

// Match is one similarity-search answer.
type Match struct {
	ID   int     // series ID (position in insertion/build order)
	TS   int64   // ingestion timestamp
	Dist float64 // Euclidean distance between z-normalized series
}

// Stats reports the I/O behaviour of an index's disk, including the
// buffer-pool counters when a cache is configured (CacheBytes > 0): a
// cache hit is served from memory and never reaches the disk, so it adds
// nothing to the read counters or the cost; a miss appears both as a miss
// and as the disk read it triggered.
type Stats struct {
	SeqReads, RandReads   int64
	SeqWrites, RandWrites int64
	CacheHits             int64
	CacheMisses           int64
	Pages                 int64 // total pages on the index's disk
	// PlannedSkips counts probe units (runs, partitions, leaf ranges,
	// shards) the query planner skipped because their synopsis envelope
	// bound proved they could not improve the answer. PlanCacheHits and
	// PlanCacheMisses count plan-cache lookups (both zero when
	// Options.PlanCacheSize is 0).
	PlannedSkips    int64
	PlanCacheHits   int64
	PlanCacheMisses int64
	// Kernel names the active distance-kernel implementation ("avx2",
	// "neon", or "scalar") — see Options.Kernels.
	Kernel string
}

// Cost prices the accesses with random I/O costing ratio times a
// sequential one (the experiments use ratio 10). Cache hits are free; only
// the reads and writes that reached the disk are charged.
func (s Stats) Cost(ratio float64) float64 {
	return float64(s.SeqReads+s.SeqWrites) + ratio*float64(s.RandReads+s.RandWrites)
}

// HitRatio returns the cache hit fraction, or 0 when no cached reads were
// observed (including when no cache is configured).
func (s Stats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// memStore is the facade's raw store: ingested series are z-normalized and
// kept in memory, so the accounted I/O isolates index behaviour. Reads are
// a single atomic snapshot load — zero overhead on the verification hot
// path — while appends serialize on a mutex and publish a new slice header
// (the backing array is shared; an append never touches an index a
// published snapshot can see, so readers and the writer never race).
type memStore struct {
	mu sync.Mutex
	v  atomic.Pointer[[]series.Series]
}

func (m *memStore) snapshot() []series.Series {
	p := m.v.Load()
	if p == nil {
		return nil
	}
	return *p
}

func (m *memStore) Get(id int) (series.Series, error) {
	ss := m.snapshot()
	if id < 0 || id >= len(ss) {
		return nil, fmt.Errorf("coconut: series %d out of range", id)
	}
	return ss[id], nil
}
func (m *memStore) Count() int { return len(m.snapshot()) }

// append adds one series, returning its ID.
func (m *memStore) append(s series.Series) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	ss := append(m.snapshot(), s)
	m.v.Store(&ss)
	return len(ss) - 1
}

// setAt places a series at a specific ID, growing as needed — the WAL
// replay path, where IDs arrive with the entries.
func (m *memStore) setAt(id int64, s series.Series) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ss := m.snapshot()
	for int64(len(ss)) <= id {
		ss = append(ss, nil)
	}
	ss[id] = s
	m.v.Store(&ss)
}

func convert(rs []index.Result) []Match {
	out := make([]Match, len(rs))
	for i, r := range rs {
		out[i] = Match{ID: int(r.ID), TS: r.TS, Dist: r.Dist}
	}
	return out
}

// statsWith renders a disk's accounting, folding in the buffer-pool
// counters when a pool fronts the disk.
func statsWith(d storage.Backend, pool *bufpool.Pool) Stats {
	if pool != nil {
		return toStats(pool.Stats(), d.TotalPages())
	}
	return toStats(d.Stats(), d.TotalPages())
}

// withPlanner folds a planner's skip and plan-cache counters into the
// stats; a nil planner contributes zeros.
func (s Stats) withPlanner(pl *index.Planner) Stats {
	s.PlannedSkips = pl.Skips()
	s.PlanCacheHits, s.PlanCacheMisses = pl.CacheStats()
	return s
}

// toStats is the one storage.Stats → facade Stats conversion; every stats
// surface funnels through it so new counters cannot silently diverge
// between the aggregate, per-shard, and single-disk views.
func toStats(st storage.Stats, pages int64) Stats {
	return Stats{
		SeqReads: st.SeqReads, RandReads: st.RandReads,
		SeqWrites: st.SeqWrites, RandWrites: st.RandWrites,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		Pages:  pages,
		Kernel: simd.Active(),
	}
}

// Tree is a CoconutTree index.
type Tree struct {
	tree    *ctree.Tree
	cfg     index.Config
	disk    storage.Backend
	pool    *bufpool.Pool // buffer pool fronting disk; nil when uncached
	planner *index.Planner
	raw     *memStore
	hostFS  fsx.FS // filesystem for snapshot saves; nil means the real one
}

// BuildTree bulk-loads a CoconutTree over the given series (IDs are their
// positions). Construction summarizes, external-sorts, and packs leaves
// contiguously — sequential I/O end to end.
func BuildTree(data [][]float64, opts Options) (*Tree, error) {
	return buildTreeCache(data, opts, nil, nil)
}

// attachPool wires a disk into the caching layer (bufpool.AttachOrNew):
// shared cache, private pool, or uncached. The returned reader is nil when
// uncached (index options then default to the disk) — a plain *Pool return
// cannot serve as the reader directly because a typed-nil interface would
// not compare equal to nil.
func attachPool(disk storage.Backend, opts Options, cache *bufpool.Cache) (*bufpool.Pool, storage.PageReader, error) {
	pool, err := bufpool.AttachOrNew(disk, cache, opts.CacheBytes)
	if err != nil || pool == nil {
		return nil, nil, err
	}
	return pool, pool, nil
}

// buildTreeCache is BuildTree with an optional shared cache and planner
// (the sharded facade passes both so every shard's disk draws frames from a
// single budget and every shard's searches share one plan cache).
func buildTreeCache(data [][]float64, opts Options, cache *bufpool.Cache, pl *index.Planner) (*Tree, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	raw := &memStore{}
	ds := series.NewDataset(cfg.SeriesLen)
	for i, s := range data {
		if _, err := ds.Append(series.Series(s)); err != nil {
			return nil, fmt.Errorf("coconut: series %d: %w", i, err)
		}
		raw.append(series.Series(s).ZNormalize())
	}
	disk, err := opts.newBackend("")
	if err != nil {
		return nil, err
	}
	pool, reader, err := attachPool(disk, opts, cache)
	if err != nil {
		return nil, err
	}
	if pl == nil {
		pl = opts.newPlanner()
	}
	tr, err := ctree.Build(ctree.Options{
		Disk:        disk,
		Reader:      reader,
		Name:        "ctree",
		Config:      cfg,
		FillFactor:  opts.FillFactor,
		MemBudget:   opts.MemBudget,
		Raw:         raw,
		Parallelism: opts.Parallelism,
		Planner:     pl,
		Compress:    opts.CompressRuns,
	}, ds, 0)
	if err != nil {
		return nil, err
	}
	return &Tree{tree: tr, cfg: cfg, disk: disk, pool: pool, planner: pl, raw: raw, hostFS: opts.FS}, nil
}

// Count returns the number of indexed series.
func (t *Tree) Count() int { return int(t.tree.Count()) }

// Insert adds one series with a timestamp, using the leaf slack left by
// FillFactor (splits happen when a leaf is full).
func (t *Tree) Insert(s []float64, ts int64) error {
	if len(s) != t.cfg.SeriesLen {
		return fmt.Errorf("coconut: series length %d, want %d", len(s), t.cfg.SeriesLen)
	}
	t.raw.append(series.Series(s).ZNormalize())
	return t.tree.Insert(series.Series(s), ts)
}

// Search returns the exact k nearest neighbors of q.
func (t *Tree) Search(q []float64, k int) ([]Match, error) {
	rs, err := t.tree.ExactSearch(index.NewQuery(series.Series(q), t.cfg), k)
	return convert(rs), err
}

// SearchApprox returns up to k likely neighbors with one or two page reads
// and no exactness guarantee.
func (t *Tree) SearchApprox(q []float64, k int) ([]Match, error) {
	rs, err := t.tree.ApproxSearch(index.NewQuery(series.Series(q), t.cfg), k)
	return convert(rs), err
}

// SearchRange returns every indexed series within Euclidean distance eps
// of q, sorted by distance.
func (t *Tree) SearchRange(q []float64, eps float64) ([]Match, error) {
	rs, err := t.tree.RangeSearch(index.NewQuery(series.Series(q), t.cfg), eps)
	return convert(rs), err
}

// SetParallelism re-sizes the tree's search worker pool (n <= 0 selects
// GOMAXPROCS; 1 is serial). Answers are identical at every setting. Call
// only while no search is in flight.
func (t *Tree) SetParallelism(n int) { t.tree.SetParallelism(n) }

// Stats returns the I/O accounting of the tree's disk since creation,
// cache counters included when a buffer pool is configured, plus the query
// planner's skip and plan-cache counters.
func (t *Tree) Stats() Stats { return statsWith(t.disk, t.pool).withPlanner(t.planner) }

// EnableCache installs a buffer pool of cacheBytes between the tree and
// its disk (useful after OpenTree, which reopens uncached). A no-op if a
// pool is already attached. Call only while no search is in flight.
func (t *Tree) EnableCache(cacheBytes int64) {
	if t.pool != nil || cacheBytes <= 0 {
		return
	}
	t.pool = bufpool.New(t.disk, cacheBytes)
	t.tree.UseReader(t.pool)
}

// Close releases the tree's resources: its buffer pool's cached pages and
// the storage backend (which, on the file-backed backend, fsyncs and
// closes the page files). Idempotent; defer it like any other index
// handle.
func (t *Tree) Close() error {
	if t.pool != nil {
		t.pool.Purge()
	}
	return t.disk.Close()
}

// LSM is a CoconutLSM index. With Options.WALDir set every insert is
// logged before acknowledgement (see Options.Durability) and with
// Options.CompactionWorkers set merges run in the background; Insert,
// Flush, and every Search may then be called concurrently from any number
// of goroutines. Defer Close to stop the background machinery and sync the
// log.
type LSM struct {
	lsm     *clsm.LSM
	cfg     index.Config
	disk    storage.Backend
	pool    *bufpool.Pool // buffer pool fronting disk; nil when uncached
	planner *index.Planner
	raw     *memStore
	hostFS  fsx.FS // filesystem for snapshot saves; nil means the real one

	insertMu  sync.Mutex         // keeps the raw mirror and ID assignment in step
	wal       *wal.Log           // nil when WALDir unset
	sched     *compact.Scheduler // nil when CompactionWorkers == 0
	ownsSched bool               // sharded facades share one scheduler
	closed    atomic.Bool
}

// NewLSM creates an empty CoconutLSM ready for continuous insertion. When
// opts.WALDir names a directory that already holds log segments — the
// aftermath of a crash — the log replays first, so the returned index
// contains every previously acknowledged insert.
func NewLSM(opts Options) (*LSM, error) {
	return newLSMFull(opts, nil, nil, nil, opts.WALDir)
}

// newLSMCache is NewLSM with an optional shared cache (sharded facade).
func newLSMCache(opts Options, cache *bufpool.Cache) (*LSM, error) {
	return newLSMFull(opts, cache, nil, nil, opts.WALDir)
}

// newLSMFull is the full constructor: shared cache, shared compaction
// scheduler, shared query planner, and an explicit WAL directory (the
// sharded facade passes a per-shard subdirectory and one scheduler and
// planner for all shards).
func newLSMFull(opts Options, cache *bufpool.Cache, sched *compact.Scheduler, pl *index.Planner, walDir string) (*LSM, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	raw := &memStore{}
	disk, err := opts.newBackend("")
	if err != nil {
		return nil, err
	}
	pool, reader, err := attachPool(disk, opts, cache)
	if err != nil {
		return nil, err
	}
	if pl == nil {
		pl = opts.newPlanner()
	}
	out := &LSM{cfg: cfg, disk: disk, pool: pool, planner: pl, raw: raw, hostFS: opts.FS}
	if sched != nil {
		out.sched = sched
	} else if opts.CompactionWorkers > 0 {
		out.sched = compact.NewScheduler(opts.CompactionWorkers)
		out.ownsSched = true
	}
	copts := clsm.Options{
		Disk:          disk,
		Reader:        reader,
		Name:          "clsm",
		Config:        cfg,
		GrowthFactor:  opts.GrowthFactor,
		BufferEntries: opts.BufferEntries,
		Raw:           raw,
		Parallelism:   opts.Parallelism,
		Scheduler:     out.sched,
		Planner:       pl,
		Compress:      opts.CompressRuns,
	}
	if walDir != "" {
		wopts, werr := walOptions(walDir, opts.Durability, opts.FS)
		if werr != nil {
			out.closeOwned()
			return nil, werr
		}
		w, werr := wal.Open(wopts)
		if werr != nil {
			out.closeOwned()
			return nil, werr
		}
		out.wal = w
		copts.WAL = w
		if w.NextLSN() > 0 {
			// Crash recovery from the log alone: the disk is fresh, so the
			// whole retained log must still start at LSN 0 — a log truncated
			// by a SaveFile checkpoint can only be reopened together with
			// its snapshot (OpenLSM).
			if w.FirstLSN() > 0 {
				out.closeAll()
				return nil, fmt.Errorf("coconut: WAL in %s was truncated by a snapshot checkpoint; reopen the snapshot with OpenLSM", walDir)
			}
			lsm, rerr := clsm.Recover(copts, func(e clsm.ReplayedEntry, z series.Series) error {
				raw.setAt(e.ID, z)
				return nil
			})
			if rerr != nil {
				out.closeAll()
				return nil, rerr
			}
			out.lsm = lsm
			return out, nil
		}
	}
	l, err := clsm.New(copts)
	if err != nil {
		out.closeAll()
		return nil, err
	}
	out.lsm = l
	return out, nil
}

// closeOwned shuts down the machinery this handle owns (not shared ones).
func (l *LSM) closeOwned() {
	if l.ownsSched && l.sched != nil {
		l.sched.Close()
	}
}

// closeAll is closeOwned plus the WAL (always owned by its facade handle).
func (l *LSM) closeAll() {
	l.closeOwned()
	if l.wal != nil {
		l.wal.Close()
	}
}

// Insert adds one series with a timestamp; writes are log-structured. With
// a WAL configured the insert is acknowledged under the configured
// durability policy. Safe for concurrent use with searches and flushes.
func (l *LSM) Insert(s []float64, ts int64) error {
	if len(s) != l.cfg.SeriesLen {
		return fmt.Errorf("coconut: series length %d, want %d", len(s), l.cfg.SeriesLen)
	}
	l.insertMu.Lock()
	defer l.insertMu.Unlock()
	// Mirror first: by the time the entry becomes visible to a search, its
	// raw series is resolvable.
	id := l.raw.append(series.Series(s).ZNormalize())
	gotID, err := l.lsm.InsertID(series.Series(s), ts)
	if err != nil {
		return err
	}
	if gotID != int64(id) {
		return fmt.Errorf("coconut: internal ID drift: index assigned %d, mirror %d", gotID, id)
	}
	return nil
}

// Flush forces the in-memory buffer into a sorted on-disk run.
func (l *LSM) Flush() error { return l.lsm.Flush() }

// Count returns the number of indexed series (buffered included).
func (l *LSM) Count() int { return int(l.lsm.Count()) }

// Runs returns the number of on-disk sorted runs.
func (l *LSM) Runs() int { return l.lsm.Runs() }

// Search returns the exact k nearest neighbors of q.
func (l *LSM) Search(q []float64, k int) ([]Match, error) {
	rs, err := l.lsm.ExactSearch(index.NewQuery(series.Series(q), l.cfg), k)
	return convert(rs), err
}

// SearchApprox probes each run near q's key without exactness guarantees.
func (l *LSM) SearchApprox(q []float64, k int) ([]Match, error) {
	rs, err := l.lsm.ApproxSearch(index.NewQuery(series.Series(q), l.cfg), k)
	return convert(rs), err
}

// SearchWindow returns the exact k nearest neighbors among entries whose
// timestamp lies in [minTS, maxTS].
func (l *LSM) SearchWindow(q []float64, k int, minTS, maxTS int64) ([]Match, error) {
	pq := index.NewQuery(series.Series(q), l.cfg).WithWindow(minTS, maxTS)
	rs, err := l.lsm.ExactSearch(pq, k)
	return convert(rs), err
}

// SearchRange returns every indexed series within Euclidean distance eps
// of q, sorted by distance.
func (l *LSM) SearchRange(q []float64, eps float64) ([]Match, error) {
	rs, err := l.lsm.RangeSearch(index.NewQuery(series.Series(q), l.cfg), eps)
	return convert(rs), err
}

// SetParallelism re-sizes the LSM's search worker pool (n <= 0 selects
// GOMAXPROCS; 1 is serial). Answers are identical at every setting. Call
// only while no search is in flight.
func (l *LSM) SetParallelism(n int) { l.lsm.SetParallelism(n) }

// Stats returns the I/O accounting of the LSM's disk since creation, cache
// counters included when a buffer pool is configured, plus the query
// planner's skip and plan-cache counters.
func (l *LSM) Stats() Stats { return statsWith(l.disk, l.pool).withPlanner(l.planner) }

// EnableCache installs a buffer pool of cacheBytes between the LSM and its
// disk (useful after OpenLSM, which reopens uncached). A no-op if a pool
// is already attached. Call only while no search is in flight.
func (l *LSM) EnableCache(cacheBytes int64) {
	if l.pool != nil || cacheBytes <= 0 {
		return
	}
	l.pool = bufpool.New(l.disk, cacheBytes)
	l.lsm.UseReader(l.pool)
}

// CompactionStats reports the state of the LSM's ingest machinery: flush
// and merge counters, manifest version and retention, and whether merges
// run in the background.
func (l *LSM) CompactionStats() clsm.CompactionStats { return l.lsm.CompactionStats() }

// WALStats reports the write-ahead log's accounting; ok is false when no
// WAL is configured.
func (l *LSM) WALStats() (st wal.Stats, ok bool) {
	if l.wal == nil {
		return wal.Stats{}, false
	}
	return l.wal.Stats(), true
}

// Quiesce waits until no background merge is pending or in flight (a no-op
// without CompactionWorkers), surfacing any background-merge error. Useful
// before comparing against a reference index or measuring steady state.
func (l *LSM) Quiesce() error { return l.lsm.Quiesce() }

// Close shuts the LSM down cleanly: waits out in-flight background merges,
// stops an owned compaction worker pool, syncs and closes the write-ahead
// log, and releases the buffer pool's pages. Idempotent; call with no
// insert in flight.
func (l *LSM) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := l.lsm.Close()
	if l.ownsSched && l.sched != nil {
		if cerr := l.sched.Close(); err == nil {
			err = cerr
		}
	}
	if l.wal != nil {
		if werr := l.wal.Close(); err == nil {
			err = werr
		}
	}
	if l.pool != nil {
		l.pool.Purge()
	}
	if derr := l.disk.Close(); err == nil {
		err = derr
	}
	return err
}

// Scenario describes an application for the recommender; see the field
// documentation in the recommender package.
type Scenario = recommender.Scenario

// Recommendation is the recommender's advice with its rationale.
type Recommendation = recommender.Recommendation

// Recommend walks the recommender's decision tree for a scenario.
func Recommend(s Scenario) Recommendation { return recommender.Recommend(s) }
