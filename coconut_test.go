package coconut

import (
	"math"
	"math/rand"
	"os"
	"testing"
)

func randomWalks(n, length int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		s := make([]float64, length)
		v := 0.0
		for j := range s {
			v += rng.NormFloat64()
			s[j] = v
		}
		out[i] = s
	}
	return out
}

func znorm(s []float64) []float64 {
	mean, std := 0.0, 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	for _, v := range s {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(s)))
	out := make([]float64, len(s))
	if std < 1e-12 {
		return out
	}
	for i, v := range s {
		out[i] = (v - mean) / std
	}
	return out
}

func trueNN(q []float64, data [][]float64) (int, float64) {
	zq := znorm(q)
	best, bestD := -1, math.Inf(1)
	for i, s := range data {
		zs := znorm(s)
		acc := 0.0
		for j := range zq {
			d := zq[j] - zs[j]
			acc += d * d
		}
		if d := math.Sqrt(acc); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func TestBuildTreeAndSearch(t *testing.T) {
	data := randomWalks(500, 128, 1)
	tr, err := BuildTree(data, Options{SeriesLen: 128})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 500 {
		t.Fatalf("count = %d", tr.Count())
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		q := randomWalks(1, 128, rng.Int63())[0]
		wantID, wantD := trueNN(q, data)
		got, err := tr.Search(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].ID != wantID || math.Abs(got[0].Dist-wantD) > 1e-9 {
			t.Fatalf("trial %d: got %+v, want id %d dist %v", trial, got, wantID, wantD)
		}
	}
}

func TestTreeSearchApprox(t *testing.T) {
	data := randomWalks(500, 128, 3)
	tr, err := BuildTree(data, Options{SeriesLen: 128, Materialized: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tr.SearchApprox(data[42], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 42 || got[0].Dist > 1e-9 {
		t.Fatalf("self approx = %+v", got)
	}
}

func TestTreeInsert(t *testing.T) {
	data := randomWalks(200, 64, 4)
	tr, err := BuildTree(data, Options{SeriesLen: 64, FillFactor: 0.5, Materialized: true})
	if err != nil {
		t.Fatal(err)
	}
	extra := randomWalks(20, 64, 5)
	for _, s := range extra {
		if err := tr.Insert(s, 7); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count() != 220 {
		t.Fatalf("count = %d", tr.Count())
	}
	got, err := tr.Search(extra[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Dist > 1e-9 || got[0].TS != 7 {
		t.Fatalf("inserted not found: %+v", got)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := BuildTree(nil, Options{}); err == nil {
		t.Fatal("missing SeriesLen should fail")
	}
	if _, err := BuildTree(nil, Options{SeriesLen: 64, Segments: 99}); err == nil {
		t.Fatal("bad segments should fail")
	}
	tr, err := BuildTree(randomWalks(5, 64, 6), Options{SeriesLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(make([]float64, 3), 0); err == nil {
		t.Fatal("wrong-length insert should fail")
	}
}

func TestLSMLifecycle(t *testing.T) {
	l, err := NewLSM(Options{SeriesLen: 64, BufferEntries: 50, GrowthFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	data := randomWalks(400, 64, 7)
	for i, s := range data {
		if err := l.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 400 {
		t.Fatalf("count = %d", l.Count())
	}
	if l.Runs() == 0 {
		t.Fatal("expected on-disk runs")
	}
	wantID, wantD := trueNN(data[100], data)
	got, err := l.Search(data[100], 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != wantID || math.Abs(got[0].Dist-wantD) > 1e-9 {
		t.Fatalf("got %+v", got)
	}
	// Windowed search respects the window.
	win, err := l.SearchWindow(data[100], 1, 200, 399)
	if err != nil {
		t.Fatal(err)
	}
	if len(win) != 1 || win[0].TS < 200 {
		t.Fatalf("windowed = %+v", win)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.SearchApprox(data[0], 3); err != nil {
		t.Fatal(err)
	}
}

func TestStreamSchemes(t *testing.T) {
	data := randomWalks(600, 64, 8)
	for _, kind := range []SchemeKind{PP, TP, BTP} {
		s, err := NewStream(kind, Options{SeriesLen: 64, BufferEntries: 100})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i, ser := range data {
			id, err := s.Ingest(ser, int64(i))
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if id != i {
				t.Fatalf("%s: id %d != %d", kind, id, i)
			}
		}
		if s.Count() != 600 {
			t.Fatalf("%s: count %d", kind, s.Count())
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		// Window [300,599]: the best answer must respect it and match brute
		// force over that range.
		q := data[450]
		got, err := s.SearchWindow(q, 1, 300, 599)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(got) != 1 || got[0].ID != 450 || got[0].Dist > 1e-9 {
			t.Fatalf("%s: windowed self-query = %+v", kind, got)
		}
		if _, err := s.SearchApprox(q, 2, 0, 599); err != nil {
			t.Fatalf("%s approx: %v", kind, err)
		}
		if _, err := s.Search(q, 1); err != nil {
			t.Fatalf("%s full search: %v", kind, err)
		}
	}
}

func TestStreamPartitionShapes(t *testing.T) {
	data := randomWalks(1000, 64, 9)
	counts := map[SchemeKind]int{}
	for _, kind := range []SchemeKind{PP, TP, BTP} {
		s, _ := NewStream(kind, Options{SeriesLen: 64, BufferEntries: 100})
		for i, ser := range data {
			s.Ingest(ser, int64(i))
		}
		counts[kind] = s.Partitions()
	}
	if counts[PP] != 1 {
		t.Errorf("PP partitions = %d, want 1", counts[PP])
	}
	if counts[TP] != 10 {
		t.Errorf("TP partitions = %d, want 10", counts[TP])
	}
	if counts[BTP] >= counts[TP] {
		t.Errorf("BTP partitions %d not below TP %d", counts[BTP], counts[TP])
	}
}

func TestStreamUnknownScheme(t *testing.T) {
	if _, err := NewStream("XX", Options{SeriesLen: 64}); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

func TestRecommendFacade(t *testing.T) {
	r := Recommend(Scenario{Streaming: true, SmallWindows: true, MemoryBudgetFrac: 0.1})
	if r.Variant() != "CLSM+BTP" {
		t.Fatalf("variant = %s", r.Variant())
	}
	if len(r.Rationale) == 0 {
		t.Fatal("no rationale")
	}
}

func TestStatsAccounting(t *testing.T) {
	// Large enough that streaming dominates the constant seek overheads.
	data := randomWalks(5000, 128, 10)
	tr, _ := BuildTree(data, Options{SeriesLen: 128, Materialized: true})
	st := tr.Stats()
	if st.Pages == 0 || st.SeqWrites == 0 {
		t.Fatalf("stats = %+v", st)
	}
	seqDominates := float64(st.SeqReads+st.SeqWrites) > 5*float64(st.RandReads+st.RandWrites)
	if !seqDominates {
		t.Errorf("bulk load should be sequential: %+v", st)
	}
	if st.Cost(10) <= 0 {
		t.Fatal("cost must be positive")
	}
}

func TestNameReporting(t *testing.T) {
	s, _ := NewStream(BTP, Options{SeriesLen: 64})
	if s.Name() != "CLSM+BTP" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSaveOpenTree(t *testing.T) {
	data := randomWalks(400, 64, 20)
	for _, mat := range []bool{false, true} {
		tr, err := BuildTree(data, Options{SeriesLen: 64, Materialized: mat})
		if err != nil {
			t.Fatal(err)
		}
		path := t.TempDir() + "/tree.ccnut"
		if err := tr.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := OpenTree(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != 400 {
			t.Fatalf("mat=%v: reopened count = %d", mat, got.Count())
		}
		q := data[123]
		want, _ := tr.Search(q, 3)
		have, err := got.Search(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if want[i].ID != have[i].ID || math.Abs(want[i].Dist-have[i].Dist) > 1e-12 {
				t.Fatalf("mat=%v result %d: %+v vs %+v", mat, i, want[i], have[i])
			}
		}
		// The reopened tree still accepts inserts and finds them.
		extra := randomWalks(1, 64, 21)[0]
		if err := got.Insert(extra, 9); err != nil {
			t.Fatal(err)
		}
		res, err := got.Search(extra, 1)
		if err != nil {
			t.Fatal(err)
		}
		if res[0].Dist > 1e-9 || res[0].TS != 9 {
			t.Fatalf("mat=%v: inserted after reopen not found: %+v", mat, res)
		}
	}
}

func TestOpenTreeErrors(t *testing.T) {
	if _, err := OpenTree(t.TempDir() + "/missing.ccnut"); err == nil {
		t.Fatal("missing file should fail")
	}
	bad := t.TempDir() + "/bad.ccnut"
	if err := osWriteFile(bad, []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTree(bad); err == nil {
		t.Fatal("corrupt file should fail")
	}
}

func osWriteFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

func TestSearchRange(t *testing.T) {
	data := randomWalks(400, 64, 30)
	tr, err := BuildTree(data, Options{SeriesLen: 64, Materialized: true})
	if err != nil {
		t.Fatal(err)
	}
	// Self query at tiny eps finds exactly itself.
	got, err := tr.SearchRange(data[7], 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 {
		t.Fatalf("self range = %+v", got)
	}
	// Wide eps returns many, sorted, all within eps.
	got, err = tr.SearchRange(data[7], 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) < 2 {
		t.Fatalf("wide range returned %d", len(got))
	}
	for i, m := range got {
		if m.Dist > 12 {
			t.Fatalf("result %d outside eps: %+v", i, m)
		}
		if i > 0 && m.Dist < got[i-1].Dist {
			t.Fatal("not sorted")
		}
	}
	// LSM agrees with the tree.
	l, _ := NewLSM(Options{SeriesLen: 64, Materialized: true, BufferEntries: 64})
	for i, s := range data {
		l.Insert(s, int64(i))
	}
	lres, err := l.SearchRange(data[7], 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(lres) != len(got) {
		t.Fatalf("LSM range %d results, tree %d", len(lres), len(got))
	}
}

func TestSaveOpenLSM(t *testing.T) {
	data := randomWalks(500, 64, 40)
	l, err := NewLSM(Options{SeriesLen: 64, BufferEntries: 64, GrowthFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range data {
		if err := l.Insert(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	path := t.TempDir() + "/lsm.ccnut"
	if err := l.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := OpenLSM(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != 500 {
		t.Fatalf("count = %d", got.Count())
	}
	want, _ := l.Search(data[77], 2)
	have, err := got.Search(data[77], 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].ID != have[i].ID || math.Abs(want[i].Dist-have[i].Dist) > 1e-12 {
			t.Fatalf("result %d: %+v vs %+v", i, want[i], have[i])
		}
	}
	// Keeps ingesting after reopen.
	extra := randomWalks(1, 64, 41)[0]
	if err := got.Insert(extra, 1000); err != nil {
		t.Fatal(err)
	}
	res, err := got.Search(extra, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Dist > 1e-9 || res[0].TS != 1000 {
		t.Fatalf("post-reopen insert not found: %+v", res)
	}
}
