package stream

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adsplus"
	"repro/internal/clsm"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
)

func testConfig(materialized bool) index.Config {
	return index.Config{SeriesLen: 64, Segments: 8, Bits: 8, Materialized: materialized}
}

// memRaw collects ingested z-normalized series as the schemes' raw store.
type memRaw struct{ ss []series.Series }

func (m *memRaw) Get(id int) (series.Series, error) { return m.ss[id], nil }
func (m *memRaw) Count() int                        { return len(m.ss) }
func (m *memRaw) add(s series.Series)               { m.ss = append(m.ss, s.ZNormalize()) }

// streamData generates a deterministic timestamped stream.
func streamData(n int, seed int64) ([]series.Series, []int64) {
	rng := rand.New(rand.NewSource(seed))
	ss := make([]series.Series, n)
	ts := make([]int64, n)
	for i := range ss {
		ss[i] = gen.RandomWalk(rng, 64)
		ts[i] = int64(i) // one arrival per tick
	}
	return ss, ts
}

// ingestAll pushes the stream through a scheme, mirroring series into raw.
func ingestAll(t *testing.T, sc Scheme, raw *memRaw, ss []series.Series, ts []int64) {
	t.Helper()
	for i, s := range ss {
		raw.add(s)
		id, err := sc.Ingest(s, ts[i])
		if err != nil {
			t.Fatal(err)
		}
		if id != int64(i) {
			t.Fatalf("ingest %d assigned id %d", i, id)
		}
	}
}

// bruteWindowKNN is ground truth: linear scan restricted to the window.
func bruteWindowKNN(q series.Series, ss []series.Series, ts []int64, minTS, maxTS int64, k int) []index.Result {
	col := index.NewCollector(k)
	zq := q.ZNormalize()
	for i, s := range ss {
		if ts[i] < minTS || ts[i] > maxTS {
			continue
		}
		col.Add(index.Result{ID: int64(i), TS: ts[i], Dist: math.Sqrt(zq.SqDist(s.ZNormalize()))})
	}
	return col.Results()
}

func newPPCLSM(t *testing.T, raw *memRaw, mat bool) *PP {
	t.Helper()
	disk := storage.NewDisk(0)
	base, err := clsm.New(clsm.Options{Disk: disk, Config: testConfig(mat), BufferEntries: 128, Raw: raw})
	if err != nil {
		t.Fatal(err)
	}
	return NewPP(base, testConfig(mat))
}

func newPPADS(t *testing.T, raw *memRaw, mat bool) *PP {
	t.Helper()
	disk := storage.NewDisk(0)
	base, err := adsplus.New(adsplus.Options{Disk: disk, Config: testConfig(mat), Raw: raw, LeafCapacity: 64, BufferEntries: 128})
	if err != nil {
		t.Fatal(err)
	}
	return NewPP(base, testConfig(mat))
}

func schemes(t *testing.T, raw *memRaw, mat bool) map[string]Scheme {
	t.Helper()
	out := map[string]Scheme{
		"PP-CLSM": newPPCLSM(t, raw, mat),
		"PP-ADS":  newPPADS(t, raw, mat),
	}
	diskTP := storage.NewDisk(0)
	tp, err := NewTP("tp", testConfig(mat), CTreeFactory(diskTP, nil, testConfig(mat), raw), 128, raw)
	if err != nil {
		t.Fatal(err)
	}
	out["TP-CTree"] = tp
	diskTPA := storage.NewDisk(0)
	tpa, err := NewTP("tpa", testConfig(mat), ADSFactory(diskTPA, nil, testConfig(mat), raw), 128, raw)
	if err != nil {
		t.Fatal(err)
	}
	out["TP-ADS"] = tpa
	btp, err := NewBTP(storage.NewDisk(0), "btp", testConfig(mat), 128, 2, raw)
	if err != nil {
		t.Fatal(err)
	}
	out["BTP"] = btp
	return out
}

func TestAllSchemesExactMatchesBruteForce(t *testing.T) {
	ss, ts := streamData(600, 1)
	for _, mat := range []bool{false, true} {
		for name, sc := range schemes(t, &memRaw{}, mat) {
			raw := &memRaw{}
			// Rebuild scheme bound to this raw store.
			_ = sc
			scs := schemes(t, raw, mat)
			sc = scs[name]
			ingestAll(t, sc, raw, ss, ts)
			rng := rand.New(rand.NewSource(10))
			for trial := 0; trial < 5; trial++ {
				q := gen.RandomWalk(rng, 64)
				// Full-range window and a narrow window.
				for _, w := range [][2]int64{{0, 599}, {200, 350}} {
					want := bruteWindowKNN(q, ss, ts, w[0], w[1], 3)
					qq := index.NewQuery(q, testConfig(mat)).WithWindow(w[0], w[1])
					got, err := sc.ExactSearch(qq, 3)
					if err != nil {
						t.Fatalf("%s mat=%v: %v", name, mat, err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s mat=%v window %v: %d results, want %d", name, mat, w, len(got), len(want))
					}
					for i := range want {
						if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
							t.Fatalf("%s mat=%v window %v result %d: dist %v want %v",
								name, mat, w, i, got[i].Dist, want[i].Dist)
						}
						if got[i].TS < w[0] || got[i].TS > w[1] {
							t.Fatalf("%s: result outside window: %+v", name, got[i])
						}
					}
				}
			}
		}
	}
}

func TestPPNameAndPartitions(t *testing.T) {
	raw := &memRaw{}
	pp := newPPCLSM(t, raw, false)
	if pp.Name() != "CLSM+PP" {
		t.Fatalf("name = %q", pp.Name())
	}
	if pp.Partitions() != 1 {
		t.Fatal("PP must report one partition")
	}
	ss, ts := streamData(50, 2)
	ingestAll(t, pp, raw, ss, ts)
	if pp.Count() != 50 {
		t.Fatalf("count = %d", pp.Count())
	}
	if err := pp.Seal(); err != nil {
		t.Fatal(err)
	}
}

func TestTPPartitionsGrowLinearly(t *testing.T) {
	raw := &memRaw{}
	disk := storage.NewDisk(0)
	tp, err := NewTP("tp", testConfig(false), CTreeFactory(disk, nil, testConfig(false), raw), 100, raw)
	if err != nil {
		t.Fatal(err)
	}
	ss, ts := streamData(1000, 3)
	ingestAll(t, tp, raw, ss, ts)
	if tp.Partitions() != 10 {
		t.Fatalf("TP partitions = %d, want 10", tp.Partitions())
	}
	if tp.Name() != "CTree+TP" {
		t.Fatalf("name = %q", tp.Name())
	}
}

func TestBTPBoundsPartitions(t *testing.T) {
	raw := &memRaw{}
	btp, err := NewBTP(storage.NewDisk(0), "btp", testConfig(false), 100, 2, raw)
	if err != nil {
		t.Fatal(err)
	}
	ss, ts := streamData(1600, 4)
	ingestAll(t, btp, raw, ss, ts)
	// 16 flushes with merge factor 2: partition count stays logarithmic
	// (binary-counter behavior), far below TP's 16.
	if btp.Partitions() > 5 {
		t.Fatalf("BTP partitions = %d, want <= 5 (log of 16 flushes)", btp.Partitions())
	}
	if btp.Merges() == 0 {
		t.Fatal("expected merges")
	}
	if btp.Name() != "CLSM+BTP" {
		t.Fatalf("name = %q", btp.Name())
	}
}

func TestBTPTimeRangesDisjointOrdered(t *testing.T) {
	raw := &memRaw{}
	btp, err := NewBTP(storage.NewDisk(0), "btp", testConfig(false), 64, 2, raw)
	if err != nil {
		t.Fatal(err)
	}
	ss, ts := streamData(1000, 5)
	ingestAll(t, btp, raw, ss, ts)
	for i := 1; i < len(btp.parts); i++ {
		if btp.parts[i].minTS <= btp.parts[i-1].maxTS {
			t.Fatalf("partitions %d,%d time-overlap: [%d,%d] then [%d,%d]",
				i-1, i, btp.parts[i-1].minTS, btp.parts[i-1].maxTS, btp.parts[i].minTS, btp.parts[i].maxTS)
		}
	}
	// Newer partitions have smaller class (newest data in small parts).
	for i := 1; i < len(btp.parts); i++ {
		if btp.parts[i].class > btp.parts[i-1].class {
			t.Fatalf("class increases toward newer data: %d then %d", btp.parts[i-1].class, btp.parts[i].class)
		}
	}
	// Entry conservation.
	var total int64
	for _, p := range btp.parts {
		total += p.count
	}
	total += int64(len(btp.buffer))
	if total != 1000 {
		t.Fatalf("entries = %d, want 1000", total)
	}
}

func TestBTPSmallWindowSkipsLargePartitions(t *testing.T) {
	raw := &memRaw{}
	disk := storage.NewDisk(0)
	btp, err := NewBTP(disk, "btp", testConfig(true), 128, 2, raw)
	if err != nil {
		t.Fatal(err)
	}
	// 2648 entries = 20 full flushes plus a tail: the binary-counter merge
	// state leaves one big old partition plus small recent ones. (At exact
	// powers of two everything collapses into a single partition and small
	// windows cannot save anything — by design.)
	ss, ts := streamData(2648, 6)
	ingestAll(t, btp, raw, ss, ts)
	if err := btp.Seal(); err != nil {
		t.Fatal(err)
	}
	q := index.NewQuery(gen.RandomWalk(rand.New(rand.NewSource(66)), 64), testConfig(true))

	// Recent small window: should cost far less I/O than the full range.
	disk.ResetStats()
	if _, err := btp.ExactSearch(q.WithWindow(2500, 2647), 1); err != nil {
		t.Fatal(err)
	}
	smallIO := disk.Stats().Reads()
	disk.ResetStats()
	if _, err := btp.ExactSearch(q.WithWindow(0, 2647), 1); err != nil {
		t.Fatal(err)
	}
	fullIO := disk.Stats().Reads()
	if smallIO*3 > fullIO {
		t.Errorf("small-window I/O %d not well below full-window %d", smallIO, fullIO)
	}
}

func TestTPWindowSkipsPartitions(t *testing.T) {
	raw := &memRaw{}
	disk := storage.NewDisk(0)
	tp, err := NewTP("tp", testConfig(true), CTreeFactory(disk, nil, testConfig(true), raw), 128, raw)
	if err != nil {
		t.Fatal(err)
	}
	ss, ts := streamData(1024, 7)
	ingestAll(t, tp, raw, ss, ts)
	if err := tp.Seal(); err != nil {
		t.Fatal(err)
	}
	q := index.NewQuery(gen.RandomWalk(rand.New(rand.NewSource(77)), 64), testConfig(true))
	disk.ResetStats()
	if _, err := tp.ExactSearch(q.WithWindow(900, 1023), 1); err != nil {
		t.Fatal(err)
	}
	smallIO := disk.Stats().Reads()
	disk.ResetStats()
	if _, err := tp.ExactSearch(q.WithWindow(0, 1023), 1); err != nil {
		t.Fatal(err)
	}
	fullIO := disk.Stats().Reads()
	if smallIO*2 > fullIO {
		t.Errorf("TP small-window I/O %d not below full-window %d", smallIO, fullIO)
	}
}

func TestIngestValidation(t *testing.T) {
	raw := &memRaw{}
	pp := newPPCLSM(t, raw, false)
	if _, err := pp.Ingest(make(series.Series, 5), 0); err == nil {
		t.Fatal("wrong-length ingest should fail")
	}
	if _, err := NewTP("x", index.Config{}, nil, 10, raw); err == nil {
		t.Fatal("invalid config should fail")
	}
	if _, err := NewTP("x", testConfig(false), nil, 0, raw); err == nil {
		t.Fatal("zero buffer should fail")
	}
	if _, err := NewBTP(nil, "x", testConfig(false), 10, 2, raw); err == nil {
		t.Fatal("nil disk should fail")
	}
	if _, err := NewBTP(storage.NewDisk(0), "x", testConfig(false), 10, 1, raw); err == nil {
		t.Fatal("merge factor 1 should fail")
	}
}

func TestApproxSearchAcrossSchemes(t *testing.T) {
	ss, ts := streamData(500, 8)
	raw := &memRaw{}
	scs := schemes(t, raw, true)
	for name, sc := range scs {
		r := &memRaw{}
		sc = schemes(t, r, true)[name]
		ingestAll(t, sc, r, ss, ts)
		// Perturbed stored series should usually be found approximately.
		rng := rand.New(rand.NewSource(88))
		hits := 0
		for trial := 0; trial < 20; trial++ {
			id := rng.Intn(len(ss))
			q := gen.Add(ss[id], gen.Noise(rng, 64, 0.001))
			got, err := sc.ApproxSearch(index.NewQuery(q, testConfig(true)), 1)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) == 1 && got[0].ID == int64(id) {
				hits++
			}
		}
		if hits < 10 {
			t.Errorf("%s: approx hit rate %d/20", name, hits)
		}
	}
}

// TestBTPPartitionCountLogarithmic drives a long stream and verifies the
// headline BTP bound: partitions grow like the binary representation of
// the flush count, not linearly as TP.
func TestBTPPartitionCountLogarithmic(t *testing.T) {
	raw := &memRaw{}
	btp, err := NewBTP(storage.NewDisk(0), "btp", testConfig(false), 50, 2, raw)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(90))
	flushes := 0
	for i := 0; i < 50*63; i++ { // 63 flushes = 111111b -> 6 partitions
		s := gen.RandomWalk(rng, 64)
		raw.add(s)
		if _, err := btp.Ingest(s, int64(i)); err != nil {
			t.Fatal(err)
		}
		if (i+1)%50 == 0 {
			flushes++
		}
	}
	if flushes != 63 {
		t.Fatalf("flushes = %d", flushes)
	}
	// popcount(63) = 6 partitions under merge factor 2.
	if btp.Partitions() != 6 {
		t.Errorf("partitions = %d, want 6 (binary-counter invariant)", btp.Partitions())
	}
	// TP over the same stream would hold 63.
}

// TestBTPClassSizes verifies size-class structure: a class-c partition
// holds exactly 2^c buffers' worth of entries (merge factor 2).
func TestBTPClassSizes(t *testing.T) {
	raw := &memRaw{}
	const buf = 40
	btp, err := NewBTP(storage.NewDisk(0), "btp", testConfig(false), buf, 2, raw)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < buf*21; i++ { // 21 flushes = 10101b
		s := gen.RandomWalk(rng, 64)
		raw.add(s)
		if _, err := btp.Ingest(s, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range btp.parts {
		want := int64(buf) << uint(p.class)
		if p.count != want {
			t.Errorf("class-%d partition holds %d entries, want %d", p.class, p.count, want)
		}
	}
}
