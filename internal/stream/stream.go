// Package stream implements the three streaming data series exploration
// schemes of Section 3 of the paper. Queries over streams carry temporal
// windows, and each scheme trades ingest cost against window-query cost
// differently:
//
//   - PP (Post-Processing) keeps one index over everything and filters
//     entries by timestamp as they are encountered during search.
//   - TP (Temporal Partitioning) seals the in-memory buffer into a new
//     partition every time it fills; queries touch only partitions whose
//     time range intersects the window — but partitions accumulate without
//     bound, so large-window queries visit many small partitions.
//   - BTP (Bounded Temporal Partitioning), enabled by sortable
//     summarizations, sort-merges time-adjacent partitions of similar size:
//     newer data stays in small partitions, older data migrates to larger
//     contiguous ones, and the total partition count stays logarithmic.
//
// All schemes share a Ingestor front end that z-normalizes, summarizes,
// assigns global IDs, and timestamps each arriving series.
//
// TP and BTP search their time-partitions concurrently on a bounded worker
// pool (SetParallelism); PP inherits whatever parallelism its base index
// was built with. Window-query answers are identical at every parallelism
// setting — partitions are independent, and per-worker results merge
// through the deterministic collector of package index.
package stream

import (
	"fmt"

	"repro/internal/index"
	"repro/internal/record"
	"repro/internal/series"
)

// Scheme is a streaming index: it ingests timestamped series and answers
// (optionally windowed) similarity queries.
type Scheme interface {
	// Name identifies the scheme and its base index, e.g. "CLSM+BTP".
	Name() string
	// Ingest adds one series with its arrival timestamp, returning the
	// assigned global series ID.
	Ingest(s series.Series, ts int64) (int64, error)
	// Seal flushes any buffered state to the underlying structures.
	Seal() error
	// ApproxSearch and ExactSearch answer k-NN queries; a windowed query
	// restricts matches to entries whose timestamp lies in the window.
	ApproxSearch(q index.Query, k int) ([]index.Result, error)
	ExactSearch(q index.Query, k int) ([]index.Result, error)
	// Count returns the number of ingested series.
	Count() int64
	// Partitions returns how many separately-searchable pieces exist (1 for
	// PP; growing for TP; bounded for BTP).
	Partitions() int
}

// EntryIndex is the index-side contract PP needs: searchable and accepting
// pre-summarized entries. *ctree.Tree, *clsm.LSM and *adsplus.Tree all
// implement it.
type EntryIndex interface {
	index.Index
	InsertEntry(e record.Entry) error
}

// summarizer prepares entries for ingestion: z-normalize, summarize,
// assign the next global ID.
type summarizer struct {
	cfg    index.Config
	nextID int64
}

func (s *summarizer) entry(ser series.Series, ts int64) (record.Entry, error) {
	if len(ser) != s.cfg.SeriesLen {
		return record.Entry{}, fmt.Errorf("stream: series length %d, want %d", len(ser), s.cfg.SeriesLen)
	}
	key, z := s.cfg.Summarize(ser)
	e := record.Entry{Key: key, ID: s.nextID, TS: ts}
	if s.cfg.Materialized {
		e.Payload = z
	}
	s.nextID++
	return e, nil
}

// PP wraps a single index: every entry lives in one structure and window
// predicates are applied during search (the indexes' TS filter).
type PP struct {
	base EntryIndex
	sum  summarizer
}

// NewPP builds a post-processing scheme over base.
func NewPP(base EntryIndex, cfg index.Config) *PP {
	return &PP{base: base, sum: summarizer{cfg: cfg}}
}

// Name implements Scheme.
func (p *PP) Name() string { return p.base.Name() + "+PP" }

// Ingest implements Scheme.
func (p *PP) Ingest(s series.Series, ts int64) (int64, error) {
	e, err := p.sum.entry(s, ts)
	if err != nil {
		return 0, err
	}
	return e.ID, p.base.InsertEntry(e)
}

// Seal implements Scheme. PP has no buffered state of its own; indexes with
// internal buffers (CLSM, ADS+) still answer queries from them, so nothing
// needs forcing.
func (p *PP) Seal() error { return nil }

// ApproxSearch implements Scheme.
func (p *PP) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	return p.base.ApproxSearch(q, k)
}

// ExactSearch implements Scheme.
func (p *PP) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	return p.base.ExactSearch(q, k)
}

// Count implements Scheme.
func (p *PP) Count() int64 { return p.base.Count() }

// Partitions implements Scheme: PP is a single partition by construction.
func (p *PP) Partitions() int { return 1 }

var _ Scheme = (*PP)(nil)
