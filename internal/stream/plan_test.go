package stream

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/storage"
)

// buildPlannedPair builds two identical schemes over the same data, one with
// the default (enabled) planner and one with planning disabled.
func buildPlannedPair(t *testing.T, kind string, mat bool) (on, off Scheme) {
	t.Helper()
	ss, ts := streamData(600, 8)
	mk := func(pl *index.Planner) Scheme {
		raw := &memRaw{}
		var sc Scheme
		switch kind {
		case "tp":
			tp, err := NewTP("tp", testConfig(mat), CTreeFactory(storage.NewDisk(0), nil, testConfig(mat), raw), 128, raw)
			if err != nil {
				t.Fatal(err)
			}
			tp.SetPlanner(pl)
			sc = tp
		case "btp":
			btp, err := NewBTP(storage.NewDisk(0), "btp", testConfig(mat), 128, 2, raw)
			if err != nil {
				t.Fatal(err)
			}
			btp.SetPlanner(pl)
			sc = btp
		}
		ingestAll(t, sc, raw, ss, ts)
		return sc
	}
	return mk(nil), mk(&index.Planner{Disabled: true})
}

// TestPlannedSearchMatchesUnplanned asserts the planner's core guarantee at
// the stream-scheme level: ordering partition probes by synopsis bound and
// skipping bound-dominated partitions never changes an answer, byte for
// byte — approximate, exact, whole-history, and windowed alike.
func TestPlannedSearchMatchesUnplanned(t *testing.T) {
	for _, kind := range []string{"tp", "btp"} {
		for _, mat := range []bool{false, true} {
			on, off := buildPlannedPair(t, kind, mat)
			rng := rand.New(rand.NewSource(71))
			for trial := 0; trial < 25; trial++ {
				q := gen.RandomWalk(rng, 64)
				pq := index.NewQuery(q, testConfig(mat))
				if trial%3 == 1 {
					lo := int64(rng.Intn(500))
					pq = pq.WithWindow(lo, lo+int64(rng.Intn(200)))
				}
				k := 1 + rng.Intn(5)
				a, err := on.ExactSearch(pq, k)
				if err != nil {
					t.Fatal(err)
				}
				b, err := off.ExactSearch(pq, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s mat=%v trial %d: exact planned %v != unplanned %v", kind, mat, trial, a, b)
				}
				a, err = on.ApproxSearch(pq, k)
				if err != nil {
					t.Fatal(err)
				}
				b, err = off.ApproxSearch(pq, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("%s mat=%v trial %d: approx planned %v != unplanned %v", kind, mat, trial, a, b)
				}
			}
		}
	}
}
