package stream

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/adsplus"
	"repro/internal/ctree"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/record"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/zonestat"
)

// PartitionFactory builds a searchable partition from one buffer's worth of
// entries. The name is unique per partition.
type PartitionFactory func(name string, entries []record.Entry) (index.Index, error)

// CTreeFactory returns a factory producing bulk-loaded CTree partitions
// (the paper's CTreeTP / CTreeFullTP). reader serves the partitions' page
// reads; nil selects the disk itself (uncached).
func CTreeFactory(disk storage.Backend, reader storage.PageReader, cfg index.Config, raw series.RawStore) PartitionFactory {
	codec := cfg.Codec()
	return func(name string, entries []record.Entry) (index.Index, error) {
		sorted := make([]record.Entry, len(entries))
		copy(sorted, entries)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		file := name + ".sorted"
		w, err := storage.NewRecordWriter(disk, file, codec.Size())
		if err != nil {
			return nil, err
		}
		buf := make([]byte, 0, codec.Size())
		for _, e := range sorted {
			buf = buf[:0]
			if buf, err = codec.Append(buf, e); err != nil {
				return nil, err
			}
			if err := w.Write(buf); err != nil {
				return nil, err
			}
		}
		if err := w.Close(); err != nil {
			return nil, err
		}
		// Partitions stay serial internally (Parallelism 1): the scheme's
		// pool fans out across partitions, and nesting another fan-out
		// inside each small partition would only oversubscribe the pool.
		return ctree.BuildFromEntries(ctree.Options{Disk: disk, Reader: reader, Name: name, Config: cfg, Raw: raw, Parallelism: 1}, file, int64(len(sorted)))
	}
}

// ADSFactory returns a factory producing top-down ADS+ partitions (the
// paper's ADS+TP / ADSFullTP baseline). reader serves the partitions' page
// reads; nil selects the disk itself (uncached).
func ADSFactory(disk storage.Backend, reader storage.PageReader, cfg index.Config, raw series.RawStore) PartitionFactory {
	return func(name string, entries []record.Entry) (index.Index, error) {
		t, err := adsplus.New(adsplus.Options{Disk: disk, Reader: reader, Name: name, Config: cfg, Raw: raw})
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if err := t.InsertEntry(e); err != nil {
				return nil, err
			}
		}
		if err := t.FlushBuffers(); err != nil {
			return nil, err
		}
		return t, nil
	}
}

type tpPart struct {
	idx          index.Index
	minTS, maxTS int64
	syn          *zonestat.Synopsis
}

// TP implements Temporal Partitioning: every buffer fill seals a new
// immutable partition tagged with its time range. Queries search only
// partitions whose range intersects the window — but nothing ever merges,
// so partitions accumulate linearly with stream length.
type TP struct {
	baseName  string
	sum       summarizer
	raw       series.RawStore
	factory   PartitionFactory
	bufferCap int
	buffer    []record.Entry
	parts     []tpPart
	seq       int
	count     int64
	pool      *parallel.Pool
	planner   *index.Planner
}

// NewTP builds a temporal-partitioning scheme. baseName names partition
// files ("<baseName>.part.N..."); bufferCap is the partition size in
// entries; raw serves non-materialized distance evaluation of buffered
// entries.
func NewTP(baseName string, cfg index.Config, factory PartitionFactory, bufferCap int, raw series.RawStore) (*TP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if bufferCap < 1 {
		return nil, fmt.Errorf("stream: bufferCap must be positive, got %d", bufferCap)
	}
	return &TP{
		baseName:  baseName,
		sum:       summarizer{cfg: cfg},
		raw:       raw,
		factory:   factory,
		bufferCap: bufferCap,
		pool:      parallel.New(0),
	}, nil
}

// SetParallelism bounds the worker goroutines one query uses to search
// intersecting partitions concurrently (n <= 0 selects GOMAXPROCS). Results
// are identical at every setting. Call before querying; the setting is not
// synchronized with in-flight searches.
func (t *TP) SetParallelism(n int) { t.pool = parallel.New(n) }

// SetPlanner installs the query planner that orders partition probes by
// their synopsis envelope bound and skips partitions that cannot improve
// the current answer. nil (the default) plans with default settings; a
// planner with Disabled set restores the unplanned probe order. Call
// before querying; the setting is not synchronized with in-flight
// searches.
func (t *TP) SetPlanner(pl *index.Planner) { t.planner = pl }

// Name implements Scheme: "<base>+TP" after the first partition exists, or
// the generic "TP" before.
func (t *TP) Name() string {
	if len(t.parts) > 0 {
		return t.parts[0].idx.Name() + "+TP"
	}
	return "TP"
}

// Ingest implements Scheme.
func (t *TP) Ingest(s series.Series, ts int64) (int64, error) {
	e, err := t.sum.entry(s, ts)
	if err != nil {
		return 0, err
	}
	t.buffer = append(t.buffer, e)
	t.count++
	if len(t.buffer) >= t.bufferCap {
		return e.ID, t.Seal()
	}
	return e.ID, nil
}

// Seal implements Scheme: the buffered entries become a new partition.
func (t *TP) Seal() error {
	if len(t.buffer) == 0 {
		return nil
	}
	syn := zonestat.New(t.sum.cfg.Segments, t.sum.cfg.Bits)
	for _, e := range t.buffer {
		syn.Add(e.Key, e.TS)
	}
	t.seq++
	name := fmt.Sprintf("%s.part.%04d", t.baseName, t.seq)
	idx, err := t.factory(name, t.buffer)
	if err != nil {
		return err
	}
	t.parts = append(t.parts, tpPart{idx: idx, minTS: syn.MinTS, maxTS: syn.MaxTS, syn: syn})
	t.buffer = nil
	return nil
}

// Count implements Scheme.
func (t *TP) Count() int64 { return t.count }

// Partitions implements Scheme.
func (t *TP) Partitions() int { return len(t.parts) }

// intersects reports whether a partition's range meets the query window.
func intersects(q index.Query, minTS, maxTS int64) bool {
	return !q.Windowed || (maxTS >= q.MinTS && minTS <= q.MaxTS)
}

// ApproxSearch implements Scheme: probe each intersecting partition and the
// buffer.
func (t *TP) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	return t.search(q, k, func(idx index.Index) ([]index.Result, error) { return idx.ApproxSearch(q, k) })
}

// ExactSearch implements Scheme.
func (t *TP) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	return t.search(q, k, func(idx index.Index) ([]index.Result, error) { return idx.ExactSearch(q, k) })
}

// search scans the in-memory buffer through the squared-space pruning
// pipeline, then queries every partition whose time range intersects the
// window. Partitions are independent indexes, so they are searched
// concurrently on the worker pool (each acquiring its own pooled search
// context internally); each partition's results fold into one deterministic
// collector, giving the same answer as the serial partition-by-partition
// loop.
func (t *TP) search(q index.Query, k int, f func(index.Index) ([]index.Result, error)) ([]index.Result, error) {
	ctx := t.planner.AcquireCtx(q, t.sum.cfg)
	defer ctx.Release()
	sc := ctx.Scratch0()
	col := index.NewCollector(k)
	for _, e := range t.buffer {
		if !q.InWindow(e.TS) {
			continue
		}
		if col.SkipSq(sc.P.MinDistSqKey(e.Key)) {
			continue
		}
		dSq, err := index.TrueDistSq(q, e, t.raw, col.WorstSq(), sc)
		if err != nil {
			return nil, err
		}
		// Partition results arrive below as true distances and are
		// re-squared by Add; offering buffer candidates through the same
		// sqrt->square round trip keeps a buffered copy and a partitioned
		// copy of equal-distance series comparing exactly equal, so the ID
		// tie-break decides — as it did when the whole merge ran in true
		// distances.
		col.Add(index.Result{ID: e.ID, TS: e.TS, Dist: math.Sqrt(dSq)})
	}
	var active []tpPart
	for _, p := range t.parts {
		if intersects(q, p.minTS, p.maxTS) {
			active = append(active, p)
		}
	}
	pl := t.planner
	if pl.Enabled() && len(active) > 0 {
		// Order partitions by their synopsis envelope bound and skip those
		// whose bound already exceeds the collector's worst. The envelope
		// bound never exceeds any member's true distance, so a skipped
		// partition could not have contributed a result — answers match the
		// unplanned probe order byte for byte.
		units := ctx.PlanUnits(len(active))
		for i := range units {
			units[i].BoundSq = ctx.P.SynopsisBoundSq(active[i].syn)
		}
		index.SortPlan(units)
		tr := ctx.Trace
		if t.pool.WorkersFor(len(units)) <= 1 {
			// Serial: merge each partition's results before deciding on the
			// next, so the bound tightens as probes proceed; bounds are
			// sorted ascending, so the first skippable unit ends the scan.
			for ui, u := range units {
				if col.SkipSq(u.BoundSq) {
					pl.NoteSkips(int64(len(units) - ui))
					if tr != nil {
						for _, su := range units[ui:] {
							tr.NoteUnit("partition", su.Idx, su.BoundSq, true)
						}
					}
					break
				}
				tr.NoteUnit("partition", u.Idx, u.BoundSq, false)
				rs, err := f(active[u.Idx].idx)
				if err != nil {
					return nil, err
				}
				for _, r := range rs {
					col.Add(r)
				}
			}
			return col.Results(), nil
		}
		// Parallel: the bound only tightens once results merge, so the
		// static pre-filter against the buffer-seeded collector is all the
		// skipping available before the fan-out.
		live := units[:0]
		for _, u := range units {
			if col.SkipSq(u.BoundSq) {
				pl.NoteSkips(1)
				tr.NoteUnit("partition", u.Idx, u.BoundSq, true)
				continue
			}
			tr.NoteUnit("partition", u.Idx, u.BoundSq, false)
			live = append(live, u)
		}
		results := make([][]index.Result, len(live))
		err := t.pool.ForEach(len(live), func(_, i int) error {
			rs, err := f(active[live[i].Idx].idx)
			if err != nil {
				return err
			}
			results[i] = rs
			return nil
		})
		if err != nil {
			return nil, err
		}
		for _, rs := range results {
			for _, r := range rs {
				col.Add(r)
			}
		}
		return col.Results(), nil
	}
	ctx.Trace.NoteProbes("partition", int64(len(active)))
	results := make([][]index.Result, len(active))
	err := t.pool.ForEach(len(active), func(_, i int) error {
		rs, err := f(active[i].idx)
		if err != nil {
			return err
		}
		results[i] = rs
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rs := range results {
		for _, r := range rs {
			col.Add(r)
		}
	}
	return col.Results(), nil
}

var _ Scheme = (*TP)(nil)
