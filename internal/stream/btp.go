package stream

import (
	"fmt"
	"sort"

	"repro/internal/extsort"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/record"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/zonestat"
)

// btpPart is one temporal partition: a key-sorted run on disk covering a
// contiguous time range. Parts are kept in time order (oldest first).
type btpPart struct {
	file         string
	count        int64
	minTS, maxTS int64
	class        int // size class; merging K class-c parts yields class c+1
	syn          *zonestat.Synopsis
}

// BTP implements Bounded Temporal Partitioning — the scheme the sortable
// summarization makes possible (Section 3). Buffer flushes create class-0
// partitions; whenever MergeFactor time-adjacent partitions of the same
// class accumulate, they are sort-merged into one partition of the next
// class. Newer data therefore lives in small partitions (cheap small-window
// queries, as TP) while older data consolidates into large contiguous runs
// (effective pruning and bounded partition counts for large windows, as PP).
type BTP struct {
	disk        storage.Backend
	reader      storage.PageReader
	name        string
	cfg         index.Config
	codec       record.Codec
	raw         series.RawStore
	sum         summarizer
	bufferCap   int
	mergeFactor int
	buffer      []record.Entry
	parts       []btpPart
	seq         int
	count       int64
	merges      int64
	pool        *parallel.Pool
	planner     *index.Planner
}

// NewBTP builds a bounded-temporal-partitioning scheme over sorted runs.
// mergeFactor is the number of same-class partitions that triggers a merge
// (default 2, the most aggressive bounding).
func NewBTP(disk storage.Backend, name string, cfg index.Config, bufferCap, mergeFactor int, raw series.RawStore) (*BTP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if disk == nil {
		return nil, fmt.Errorf("stream: Disk is required")
	}
	if bufferCap < 1 {
		return nil, fmt.Errorf("stream: bufferCap must be positive, got %d", bufferCap)
	}
	if mergeFactor == 0 {
		mergeFactor = 2
	}
	if mergeFactor < 2 {
		return nil, fmt.Errorf("stream: mergeFactor must be >= 2, got %d", mergeFactor)
	}
	codec := cfg.Codec()
	if codec.Size() > disk.PageSize() {
		return nil, fmt.Errorf("stream: entry size %d exceeds page size %d", codec.Size(), disk.PageSize())
	}
	return &BTP{
		disk:        disk,
		reader:      disk,
		name:        name,
		cfg:         cfg,
		codec:       codec,
		raw:         raw,
		sum:         summarizer{cfg: cfg},
		bufferCap:   bufferCap,
		mergeFactor: mergeFactor,
		pool:        parallel.New(0),
	}, nil
}

// SetParallelism bounds the worker goroutines one query uses to probe
// intersecting partitions concurrently (n <= 0 selects GOMAXPROCS). Results
// are identical at every setting. Call before querying; the setting is not
// synchronized with in-flight searches.
func (b *BTP) SetParallelism(n int) { b.pool = parallel.New(n) }

// SetPlanner installs the query planner that orders partition probes by
// their synopsis envelope bound and skips partitions that cannot improve
// the current answer. nil (the default) plans with default settings; a
// planner with Disabled set restores the unplanned probe order. Call
// before querying; the setting is not synchronized with in-flight
// searches.
func (b *BTP) SetPlanner(pl *index.Planner) { b.planner = pl }

// UseReader routes partition page reads through r (typically a buffer pool
// over the scheme's disk); nil restores the uncached disk. Call before
// querying; the setting is not synchronized with in-flight searches.
func (b *BTP) UseReader(r storage.PageReader) {
	if r == nil {
		r = b.disk
	}
	b.reader = r
}

// Name implements Scheme.
func (b *BTP) Name() string {
	if b.cfg.Materialized {
		return "CLSMFull+BTP"
	}
	return "CLSM+BTP"
}

// Ingest implements Scheme.
func (b *BTP) Ingest(s series.Series, ts int64) (int64, error) {
	e, err := b.sum.entry(s, ts)
	if err != nil {
		return 0, err
	}
	b.buffer = append(b.buffer, e)
	b.count++
	if len(b.buffer) >= b.bufferCap {
		return e.ID, b.Seal()
	}
	return e.ID, nil
}

// Seal implements Scheme: flush the buffer into a class-0 partition and
// apply the bounding merges.
func (b *BTP) Seal() error {
	if len(b.buffer) == 0 {
		return nil
	}
	syn := zonestat.New(b.cfg.Segments, b.cfg.Bits)
	for _, e := range b.buffer {
		syn.Add(e.Key, e.TS)
	}
	sort.Slice(b.buffer, func(i, j int) bool { return b.buffer[i].Less(b.buffer[j]) })
	b.seq++
	file := fmt.Sprintf("%s.btp.%06d", b.name, b.seq)
	w, err := storage.NewRecordWriter(b.disk, file, b.codec.Size())
	if err != nil {
		return err
	}
	buf := make([]byte, 0, b.codec.Size())
	for _, e := range b.buffer {
		buf = buf[:0]
		if buf, err = b.codec.Append(buf, e); err != nil {
			return err
		}
		if err := w.Write(buf); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	b.parts = append(b.parts, btpPart{file: file, count: int64(len(b.buffer)), minTS: syn.MinTS, maxTS: syn.MaxTS, class: 0, syn: syn})
	b.buffer = nil
	return b.bound()
}

// bound sort-merges any run of mergeFactor time-adjacent same-class
// partitions into the next class, repeating until no such run exists.
// Because partitions are created in time order and merges preserve
// adjacency, time ranges across partitions stay disjoint and ordered.
func (b *BTP) bound() error {
	sorter := &extsort.Sorter{Disk: b.disk, Codec: b.codec, MemBudget: 1 << 20, TmpPrefix: b.name + ".btpmerge"}
	for {
		i := b.findMergeRun()
		if i < 0 {
			return nil
		}
		group := b.parts[i : i+b.mergeFactor]
		names := make([]string, len(group))
		counts := make([]int64, len(group))
		minTS, maxTS := group[0].minTS, group[0].maxTS
		// The merged partition's synopsis is the exact union of its inputs'
		// — every recorded statistic is a monotone envelope, so no re-scan
		// of the merged run is needed. An unknown input poisons the union:
		// treating it as empty would produce a too-tight (wrong) bound.
		msyn := zonestat.New(b.cfg.Segments, b.cfg.Bits)
		for j, p := range group {
			names[j] = p.file
			counts[j] = p.count
			if p.minTS < minTS {
				minTS = p.minTS
			}
			if p.maxTS > maxTS {
				maxTS = p.maxTS
			}
			if msyn != nil {
				if p.syn == nil {
					msyn = nil
				} else {
					msyn.Union(p.syn)
				}
			}
		}
		b.seq++
		merged := fmt.Sprintf("%s.btp.%06d", b.name, b.seq)
		total, err := sorter.MergeSorted(names, counts, merged)
		if err != nil {
			return err
		}
		for _, p := range group {
			if err := b.disk.Remove(p.file); err != nil {
				return err
			}
		}
		newPart := btpPart{file: merged, count: total, minTS: minTS, maxTS: maxTS, class: group[0].class + 1, syn: msyn}
		rest := append([]btpPart{}, b.parts[:i]...)
		rest = append(rest, newPart)
		rest = append(rest, b.parts[i+b.mergeFactor:]...)
		b.parts = rest
		b.merges++
	}
}

// findMergeRun returns the index of the first run of mergeFactor
// consecutive partitions sharing a class, or -1.
func (b *BTP) findMergeRun() int {
	for i := 0; i+b.mergeFactor <= len(b.parts); i++ {
		c := b.parts[i].class
		ok := true
		for j := 1; j < b.mergeFactor; j++ {
			if b.parts[i+j].class != c {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// Count implements Scheme.
func (b *BTP) Count() int64 { return b.count }

// Partitions implements Scheme.
func (b *BTP) Partitions() int { return len(b.parts) }

// Merges returns the number of partition merges performed.
func (b *BTP) Merges() int64 { return b.merges }

// ApproxSearch implements Scheme: the buffer is scanned and each
// intersecting partition is probed at the query key's page. Partitions are
// independent sorted runs, so probes execute concurrently on the worker
// pool.
func (b *BTP) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	ctx := b.planner.AcquireCtx(q, b.cfg)
	defer ctx.Release()
	col := index.NewCollector(k)
	if err := b.approxInto(q, col, ctx); err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// approxInto runs the approximate phase into col with an already-acquired
// context, so ExactSearch shares one context (and one table fill) across
// both phases.
func (b *BTP) approxInto(q index.Query, col *index.Collector, ctx *index.SearchCtx) error {
	if err := b.scanBuffer(q, col, ctx.Scratch0()); err != nil {
		return err
	}
	return b.forEachPart(q, ctx, col, func(p btpPart, sc *index.Scratch, col *index.Collector) error {
		return b.probePart(p, q, col, sc)
	})
}

// ExactSearch implements Scheme: the approximate phase seeds the bound,
// then a pruned scan of every intersecting partition, partitions scanning
// concurrently. The buffer was already fully evaluated by the approximate
// phase (deduplication by ID makes re-offering it a no-op), so only the
// partitions need the full pass. Partitions whose range falls outside the
// window are skipped wholesale — the bandwidth saving TP pioneered, here
// with a bounded partition count.
func (b *BTP) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	ctx := b.planner.AcquireCtx(q, b.cfg)
	defer ctx.Release()
	col := index.NewCollector(k)
	if err := b.approxInto(q, col, ctx); err != nil {
		return nil, err
	}
	err := b.forEachPart(q, ctx, col, func(p btpPart, sc *index.Scratch, col *index.Collector) error {
		return b.scanPart(p, q, col, sc)
	})
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// forEachPart applies scan to every partition intersecting the query
// window through index.FanOut — the same fan-out/merge discipline as CLSM
// runs, with the same determinism guarantee. With the planner enabled
// (the default), partitions are probed in ascending order of their
// synopsis envelope bound and a partition whose bound already exceeds the
// collector's worst is skipped outright; the envelope bound never exceeds
// any member's per-entry bound, so skipped partitions could not have
// changed the answer.
func (b *BTP) forEachPart(q index.Query, ctx *index.SearchCtx, col *index.Collector, scan func(btpPart, *index.Scratch, *index.Collector) error) error {
	var active []btpPart
	for _, p := range b.parts {
		if intersects(q, p.minTS, p.maxTS) {
			active = append(active, p)
		}
	}
	pl := b.planner
	tr := ctx.Trace
	if !pl.Enabled() || len(active) == 0 {
		tr.NoteProbes("partition", int64(len(active)))
		return index.FanOut(b.pool, len(active), ctx, col, (*index.Collector).PooledClone, (*index.Collector).MergeRelease,
			func(i int, col *index.Collector, sc *index.Scratch) error {
				return scan(active[i], sc, col)
			})
	}
	units := ctx.PlanUnits(len(active))
	for i := range units {
		units[i].BoundSq = ctx.P.SynopsisBoundSq(active[i].syn)
	}
	index.SortPlan(units)
	if b.pool.WorkersFor(len(units)) <= 1 {
		// Serial: bounds are sorted ascending and the collector's worst
		// only tightens, so the first skippable unit ends the scan.
		sc := ctx.Scratch0()
		var skipped int64
		for ui, u := range units {
			if col.SkipSq(u.BoundSq) {
				skipped += int64(len(units) - ui)
				if tr != nil {
					for _, su := range units[ui:] {
						tr.NoteUnit("partition", su.Idx, su.BoundSq, true)
					}
				}
				break
			}
			tr.NoteUnit("partition", u.Idx, u.BoundSq, false)
			if err := scan(active[u.Idx], sc, col); err != nil {
				return err
			}
		}
		pl.NoteSkips(skipped)
		return nil
	}
	// Parallel: drop statically skippable units, fan out over the rest in
	// bound order, and let each worker re-check against its clone's bound
	// right before scanning (the clone's worst is never tighter than the
	// final merged worst, so late skips remain answer-preserving).
	live := units[:0]
	for _, u := range units {
		if col.SkipSq(u.BoundSq) {
			pl.NoteSkips(1)
			tr.NoteUnit("partition", u.Idx, u.BoundSq, true)
			continue
		}
		live = append(live, u)
	}
	return index.FanOut(b.pool, len(live), ctx, col, (*index.Collector).PooledClone, (*index.Collector).MergeRelease,
		func(i int, wcol *index.Collector, sc *index.Scratch) error {
			if wcol.SkipSq(live[i].BoundSq) {
				pl.NoteSkips(1)
				tr.NoteUnit("partition", live[i].Idx, live[i].BoundSq, true)
				return nil
			}
			tr.NoteUnit("partition", live[i].Idx, live[i].BoundSq, false)
			return scan(active[live[i].Idx], sc, wcol)
		})
}

func (b *BTP) scanBuffer(q index.Query, col *index.Collector, sc *index.Scratch) error {
	for _, e := range b.buffer {
		if !q.InWindow(e.TS) {
			continue
		}
		if col.SkipSq(sc.P.MinDistSqKey(e.Key)) {
			continue
		}
		dSq, err := index.TrueDistSq(q, e, b.raw, col.WorstSq(), sc)
		if err != nil {
			return err
		}
		col.AddSq(e.ID, e.TS, dSq)
	}
	return nil
}

func (b *BTP) perPage() int { return b.disk.PageSize() / b.codec.Size() }

// probePart binary-searches a partition's pages for the query key and
// evaluates the covering page.
func (b *BTP) probePart(p btpPart, q index.Query, col *index.Collector, sc *index.Scratch) error {
	perPage := b.perPage()
	pages := int((p.count + int64(perPage) - 1) / int64(perPage))
	if pages == 0 {
		return nil
	}
	lo, hi := 0, pages-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		h, err := b.reader.PinPage(p.file, int64(mid))
		if err != nil {
			return err
		}
		less := q.Key.Less(record.DecodeKeyOnly(h.Data()))
		h.Release()
		if less {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return b.evalPage(p, lo, q, col, sc)
}

// scanPart scans a partition sequentially with squared lower-bound pruning.
func (b *BTP) scanPart(p btpPart, q index.Query, col *index.Collector, sc *index.Scratch) error {
	perPage := b.perPage()
	pages := int((p.count + int64(perPage) - 1) / int64(perPage))
	for pg := 0; pg < pages; pg++ {
		if err := b.evalPage(p, pg, q, col, sc); err != nil {
			return err
		}
	}
	return nil
}

// evalPage evaluates one partition page straight from the page bytes
// through the squared-space pipeline: window filter and lower bound on the
// encoded header, early-abandoning squared verification on survivors.
func (b *BTP) evalPage(p btpPart, page int, q index.Query, col *index.Collector, sc *index.Scratch) error {
	h, err := b.reader.PinPage(p.file, int64(page))
	if err != nil {
		return err
	}
	perPage := b.perPage()
	start := int64(page) * int64(perPage)
	n := perPage
	if rem := p.count - start; rem < int64(n) {
		n = int(rem)
	}
	_, err = index.EvalEncoded(q, h.Data(), n, b.codec, b.raw, col, sc)
	h.Release()
	return err
}

var _ Scheme = (*BTP)(nil)
