// Package compact provides the background compaction scheduler that moves
// LSM merge work off the foreground ingest path: a bounded worker pool
// draining an unbounded job queue. Flushes stay inline (a cheap sort plus a
// sequential run write), but level merges — the expensive, cascading part —
// are submitted here and execute while inserts and searches keep running
// against the manifest the merge has not yet replaced.
//
// One scheduler is shared wherever merges should share a budget: the
// sharded facade runs every shard's merges on a single scheduler so the
// configured worker count bounds the whole deployment's background I/O, not
// each shard's.
//
// The queue is unbounded on purpose: jobs submit follow-up jobs (a merge
// that cascades schedules the next level's merge from inside a worker), so
// a bounded queue could deadlock the pool against itself. Backpressure
// belongs to the callers — the LSM keeps at most one outstanding compaction
// job per index, so the queue length is bounded by the number of indexes
// sharing the scheduler.
package compact

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Stats is a snapshot of scheduler activity, surfaced by /api/stats.
type Stats struct {
	Workers   int   // pool size
	Pending   int   // jobs queued but not yet started
	Active    int   // jobs currently executing
	Completed int64 // jobs finished (failed included)
	Failed    int64 // jobs that returned an error
}

// Scheduler runs jobs on a fixed pool of workers.
type Scheduler struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func() error
	closed bool
	err    error // first job error, sticky

	workers   int
	wg        sync.WaitGroup // worker goroutines
	inflight  sync.WaitGroup // submitted-but-unfinished jobs
	active    atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
}

// NewScheduler starts a scheduler with n workers (n < 1 is clamped to 1).
func NewScheduler(n int) *Scheduler {
	if n < 1 {
		n = 1
	}
	s := &Scheduler{workers: n}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < n; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		job := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		s.active.Add(1)
		err := job()
		s.active.Add(-1)
		s.completed.Add(1)
		if err != nil {
			s.failed.Add(1)
			s.mu.Lock()
			if s.err == nil {
				s.err = err
			}
			s.mu.Unlock()
		}
		s.inflight.Done()
	}
}

// Submit enqueues a job. Jobs may Submit follow-ups from inside a worker.
// After Close, Submit fails (the work should run inline or be dropped by
// the caller's shutdown path).
func (s *Scheduler) Submit(job func() error) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("compact: scheduler is closed")
	}
	s.inflight.Add(1)
	s.queue = append(s.queue, job)
	s.mu.Unlock()
	s.cond.Signal()
	return nil
}

// Drain blocks until every job submitted so far (and every follow-up those
// jobs submit before finishing) has completed. Safe to call concurrently
// with Submit; it waits for the moving target to settle.
func (s *Scheduler) Drain() {
	s.inflight.Wait()
}

// Closed reports whether the scheduler has been shut down (Submit fails).
func (s *Scheduler) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Err returns the first error any job has returned, or nil.
func (s *Scheduler) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns a snapshot of scheduler activity.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	pending := len(s.queue)
	s.mu.Unlock()
	return Stats{
		Workers:   s.workers,
		Pending:   pending,
		Active:    int(s.active.Load()),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
	}
}

// Close drains the queue, stops the workers, and returns the first job
// error. Idempotent; Submit fails afterwards.
func (s *Scheduler) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.err
	}
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	s.wg.Wait()
	return s.Err()
}
