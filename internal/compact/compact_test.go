package compact

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunsAllJobs(t *testing.T) {
	s := NewScheduler(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		if err := s.Submit(func() error { n.Add(1); return nil }); err != nil {
			t.Fatal(err)
		}
	}
	s.Drain()
	if n.Load() != 100 {
		t.Fatalf("ran %d jobs, want 100", n.Load())
	}
	st := s.Stats()
	if st.Completed != 100 || st.Pending != 0 || st.Active != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFollowUpSubmissionFromWorker(t *testing.T) {
	// A job submitting its successor from inside a worker must not deadlock
	// — the cascade pattern background merges use.
	s := NewScheduler(1)
	defer s.Close()
	var depth atomic.Int64
	var enqueue func(d int) func() error
	enqueue = func(d int) func() error {
		return func() error {
			depth.Add(1)
			if d > 0 {
				return s.Submit(enqueue(d - 1))
			}
			return nil
		}
	}
	if err := s.Submit(enqueue(50)); err != nil {
		t.Fatal(err)
	}
	s.Drain()
	if depth.Load() != 51 {
		t.Fatalf("cascade ran %d jobs, want 51", depth.Load())
	}
}

func TestErrIsSticky(t *testing.T) {
	s := NewScheduler(2)
	s.Submit(func() error { return fmt.Errorf("first failure") })
	s.Drain()
	s.Submit(func() error { return fmt.Errorf("second failure") })
	s.Drain()
	if err := s.Err(); err == nil || err.Error() != "first failure" {
		t.Fatalf("Err = %v, want the first failure", err)
	}
	if st := s.Stats(); st.Failed != 2 {
		t.Fatalf("failed = %d, want 2", st.Failed)
	}
	if err := s.Close(); err == nil {
		t.Fatal("Close should surface the job error")
	}
}

func TestCloseDrainsQueueAndRejectsSubmit(t *testing.T) {
	s := NewScheduler(1)
	var n atomic.Int64
	block := make(chan struct{})
	s.Submit(func() error { <-block; n.Add(1); return nil })
	for i := 0; i < 10; i++ {
		s.Submit(func() error { n.Add(1); return nil })
	}
	go func() { time.Sleep(10 * time.Millisecond); close(block) }()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 11 {
		t.Fatalf("Close drained %d jobs, want 11", n.Load())
	}
	if err := s.Submit(func() error { return nil }); err == nil {
		t.Fatal("Submit after Close should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}

func TestDrainWaitsForActiveJob(t *testing.T) {
	s := NewScheduler(2)
	defer s.Close()
	started := make(chan struct{})
	release := make(chan struct{})
	var done atomic.Bool
	s.Submit(func() error {
		close(started)
		<-release
		done.Store(true)
		return nil
	})
	<-started
	go func() { time.Sleep(5 * time.Millisecond); close(release) }()
	s.Drain()
	if !done.Load() {
		t.Fatal("Drain returned before the active job finished")
	}
}
