// Package fsx abstracts the host filesystem operations the durable layers
// (the write-ahead log, snapshot checkpoints, and the file-backed page
// store) depend on, so crash-ordering bugs become testable: production code
// runs against OS (thin wrappers over the os package), while the crash and
// fault-injection tests run against MemFS, an in-memory filesystem that
// models exactly the durability semantics a POSIX filesystem provides — and
// no more. In particular, file contents are durable only up to the last
// Sync, and directory entries (creates, removes, renames) are durable only
// once the parent directory has been fsynced (SyncDir). Code that forgets a
// sync is code that loses data on MemFS.Crash, which is the point.
package fsx

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the handle surface the durable layers use: sequential appends
// (Write), positioned I/O (ReadAt/WriteAt), and the durability and
// truncation calls. *os.File satisfies it directly.
type File interface {
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	// Sync flushes the file's data to stable storage. Note the POSIX
	// contract: syncing a file does NOT make its directory entry durable —
	// a freshly created, fully synced file can still vanish on crash until
	// its parent directory is synced (SyncDir).
	Sync() error
}

// FS is the filesystem surface. All paths are host paths.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making the directory entries created,
	// removed, or renamed within it durable.
	SyncDir(name string) error
}

// OS is the production filesystem: thin wrappers over the os package.
var OS FS = osFS{}

// OrOS returns f, or the OS filesystem when f is nil — the one-line default
// every layer with an injectable FS applies.
func OrOS(f FS) FS {
	if f == nil {
		return OS
	}
	return f
}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) MkdirAll(path string, perm fs.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)      { return os.Stat(name) }

// SyncDir opens the directory and fsyncs it. Filesystems that do not
// support fsync on directories (some network or FUSE mounts return EINVAL
// or ENOTSUP) are tolerated: there is nothing more userspace can do there.
func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if pe, ok := err.(*fs.PathError); ok {
			_ = pe // EINVAL/ENOTSUP on exotic mounts: dirent durability is best-effort there
			return nil
		}
		return err
	}
	return nil
}

// WriteFileAtomic writes a file durably and atomically: the bytes are
// produced into <path>.tmp, synced, renamed over path, and the parent
// directory is synced. After a crash at any point, path holds either its
// previous contents or the complete new contents — never a torn mixture —
// and once WriteFileAtomic returns, the new contents survive a crash.
// This is the write path every checkpoint and manifest must use: the
// checkpoint-ordering contract ("truncate the WAL only after the snapshot
// is durable") is only as strong as the snapshot write itself.
func WriteFileAtomic(fsys FS, path string, write func(io.Writer) error) error {
	fsys = OrOS(fsys)
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}
