package fsx

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrShortWrite is returned by a fault hook to request a torn write: the
// filesystem applies only the first half of the buffer, then fails the call.
var ErrShortWrite = io.ErrShortWrite

// ErrInjected is the default error MemFS faults surface.
var ErrInjected = fmt.Errorf("fsx: injected fault")

// MemFS is an in-memory filesystem that models POSIX crash semantics:
//
//   - File contents are durable only up to the file's last Sync. A crash
//     reverts every surviving file to its last-synced image.
//   - A directory entry (create, remove, or rename) is durable only once
//     the parent directory has been SyncDir'd. A crash drops files whose
//     create was never dir-synced — even if their contents were fsynced —
//     and resurrects files whose remove or rename-away was never dir-synced.
//
// Crash simulates the power cut; SetFaultHook injects errors (including
// torn writes) into individual operations. MemFS is safe for concurrent
// use.
type MemFS struct {
	mu    sync.Mutex
	dirs  map[string]bool
	files map[string]*memFile // live namespace
	// limbo holds crash-images of files whose dirent removal (or
	// rename-away) is not yet durable: on crash they come back.
	limbo map[string]*memFile
	hook  func(op, path string) error
	ops   int64
}

type memFile struct {
	data    []byte
	synced  []byte
	durable bool // dirent create has been dir-synced
}

// NewMemFS returns an empty MemFS with the root directory "." present.
func NewMemFS() *MemFS {
	return &MemFS{
		dirs:  map[string]bool{".": true, "/": true},
		files: make(map[string]*memFile),
		limbo: make(map[string]*memFile),
	}
}

// SetFaultHook installs a hook consulted before every mutating operation
// (ops: "create", "write", "sync", "truncate", "remove", "rename",
// "syncdir"). A non-nil return fails the operation with that error;
// returning ErrShortWrite from a "write" applies half the buffer first.
// Pass nil to clear.
func (m *MemFS) SetFaultHook(h func(op, path string) error) {
	m.mu.Lock()
	m.hook = h
	m.mu.Unlock()
}

// FailAfter arranges for every mutating operation after the next n to fail
// with err (ErrInjected when err is nil) — the classic crash-after-N-ops
// fault schedule.
func (m *MemFS) FailAfter(n int64, err error) {
	if err == nil {
		err = ErrInjected
	}
	var count int64
	var mu sync.Mutex
	m.SetFaultHook(func(op, path string) error {
		mu.Lock()
		defer mu.Unlock()
		count++
		if count > n {
			return err
		}
		return nil
	})
}

// Ops returns the number of mutating operations performed so far.
func (m *MemFS) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// fault must be called with m.mu held.
func (m *MemFS) fault(op, path string) error {
	m.ops++
	if m.hook == nil {
		return nil
	}
	h := m.hook
	// Release the lock around the hook so hooks may call back into MemFS
	// (e.g. to inspect state when deciding whether to fail).
	m.mu.Unlock()
	err := h(op, path)
	m.mu.Lock()
	return err
}

// Crash simulates a power cut: unsynced file contents are discarded, files
// whose dirent create was never dir-synced vanish, and files whose dirent
// removal was never dir-synced come back with their last-synced contents.
// Open handles become stale; reopen everything after a crash.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	survivors := make(map[string]*memFile, len(m.files))
	for path, f := range m.files {
		if !f.durable {
			continue // dirent never reached the disk
		}
		survivors[path] = &memFile{data: clone(f.synced), synced: clone(f.synced), durable: true}
	}
	for path, f := range m.limbo {
		if _, taken := survivors[path]; taken {
			continue
		}
		survivors[path] = &memFile{data: clone(f.synced), synced: clone(f.synced), durable: true}
	}
	m.files = survivors
	m.limbo = make(map[string]*memFile)
}

func clone(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func norm(path string) string { return filepath.Clean(path) }

func (m *MemFS) dirExists(dir string) bool {
	return m.dirs[dir]
}

func (m *MemFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	name = norm(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	switch {
	case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrExist}
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		if !m.dirExists(filepath.Dir(name)) {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		if err := m.fault("create", name); err != nil {
			return nil, err
		}
		f = &memFile{}
		m.files[name] = f
	}
	if flag&os.O_TRUNC != 0 && ok {
		if err := m.fault("truncate", name); err != nil {
			return nil, err
		}
		f.data = nil
	}
	h := &memHandle{m: m, f: f, path: name}
	if flag&os.O_APPEND != 0 {
		h.off = int64(len(f.data))
	}
	return h, nil
}

func (m *MemFS) Remove(name string) error {
	name = norm(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	if err := m.fault("remove", name); err != nil {
		return err
	}
	if f.durable {
		if _, held := m.limbo[name]; !held {
			m.limbo[name] = &memFile{data: clone(f.synced), synced: clone(f.synced), durable: true}
		}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = norm(oldpath), norm(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	if !m.dirExists(filepath.Dir(newpath)) {
		return &fs.PathError{Op: "rename", Path: newpath, Err: fs.ErrNotExist}
	}
	if err := m.fault("rename", oldpath); err != nil {
		return err
	}
	// The displaced target and the renamed-away source both linger until
	// their directories are synced.
	if prev, had := m.files[newpath]; had && prev.durable {
		if _, held := m.limbo[newpath]; !held {
			m.limbo[newpath] = &memFile{data: clone(prev.synced), synced: clone(prev.synced), durable: true}
		}
	}
	if f.durable {
		if _, held := m.limbo[oldpath]; !held {
			m.limbo[oldpath] = &memFile{data: clone(f.synced), synced: clone(f.synced), durable: true}
		}
	}
	delete(m.files, oldpath)
	// The rename itself is a fresh, not-yet-durable dirent at newpath; the
	// moved file keeps its content-sync state.
	m.files[newpath] = &memFile{data: f.data, synced: f.synced}
	return nil
}

func (m *MemFS) MkdirAll(path string, perm fs.FileMode) error {
	path = norm(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p := path; ; p = filepath.Dir(p) {
		m.dirs[p] = true
		if p == filepath.Dir(p) {
			break
		}
	}
	return nil
}

func (m *MemFS) ReadDir(name string) ([]os.DirEntry, error) {
	name = norm(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirExists(name) {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	seen := make(map[string]bool)
	var out []os.DirEntry
	for path := range m.files {
		if filepath.Dir(path) == name {
			base := filepath.Base(path)
			if !seen[base] {
				seen[base] = true
				out = append(out, memDirEntry{name: base})
			}
		}
	}
	for dir := range m.dirs {
		if dir != name && filepath.Dir(dir) == name {
			base := filepath.Base(dir)
			if !seen[base] {
				seen[base] = true
				out = append(out, memDirEntry{name: base, dir: true})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	name = norm(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return clone(f.data), nil
}

func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	name = norm(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[name]; ok {
		return memFileInfo{name: filepath.Base(name), size: int64(len(f.data))}, nil
	}
	if m.dirExists(name) {
		return memFileInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// SyncDir makes the directory's entries durable: files created in it
// survive crashes from now on, and files removed or renamed away from it
// are gone for good.
func (m *MemFS) SyncDir(name string) error {
	name = norm(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirExists(name) {
		return &fs.PathError{Op: "syncdir", Path: name, Err: fs.ErrNotExist}
	}
	if err := m.fault("syncdir", name); err != nil {
		return err
	}
	for path, f := range m.files {
		if filepath.Dir(path) == name {
			f.durable = true
		}
	}
	for path := range m.limbo {
		if filepath.Dir(path) == name {
			delete(m.limbo, path)
		}
	}
	return nil
}

// memHandle is one open descriptor; the write offset is per-handle.
type memHandle struct {
	m    *MemFS
	f    *memFile
	path string
	off  int64
}

func (h *memHandle) Write(p []byte) (int, error) {
	n, err := h.WriteAt(p, h.off)
	h.off += int64(n)
	return n, err
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.fault("write", h.path); err != nil {
		if err == ErrShortWrite && len(p) > 0 {
			half := p[:len(p)/2]
			h.writeLocked(half, off)
			return len(half), ErrShortWrite
		}
		return 0, err
	}
	h.writeLocked(p, off)
	return len(p), nil
}

func (h *memHandle) writeLocked(p []byte, off int64) {
	end := off + int64(len(p))
	if int64(len(h.f.data)) < end {
		grown := make([]byte, end)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[off:end], p)
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	switch whence {
	case io.SeekStart:
		h.off = offset
	case io.SeekCurrent:
		h.off += offset
	case io.SeekEnd:
		h.off = int64(len(h.f.data)) + offset
	default:
		return 0, fmt.Errorf("fsx: bad whence %d", whence)
	}
	return h.off, nil
}

func (h *memHandle) Truncate(size int64) error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.fault("truncate", h.path); err != nil {
		return err
	}
	switch {
	case size <= 0:
		h.f.data = nil
	case size < int64(len(h.f.data)):
		h.f.data = h.f.data[:size]
	case size > int64(len(h.f.data)):
		grown := make([]byte, size)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	return nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if err := h.m.fault("sync", h.path); err != nil {
		return err
	}
	h.f.synced = clone(h.f.data)
	return nil
}

func (h *memHandle) Close() error { return nil }

type memDirEntry struct {
	name string
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: e.name, dir: e.dir}, nil
}

type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }
