package fsx

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
)

func writeAll(t *testing.T, f File, data []byte) {
	t.Helper()
	if _, err := f.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
}

// A synced file whose dirent was never dir-synced vanishes on crash; after
// SyncDir it survives with its last-synced contents.
func TestMemFSDirentDurability(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := m.OpenFile("d/a", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("file with unsynced dirent survived crash: err=%v", err)
	}

	// Again, with the directory synced this time.
	f, err = m.OpenFile("d/a", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte("hello"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	writeAll(t, f, []byte(" world")) // unsynced tail
	m.Crash()
	got, err := m.ReadFile("d/a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("crash image = %q, want last-synced %q", got, "hello")
	}
}

// A removed file whose dirent removal was never dir-synced comes back on
// crash; after SyncDir the removal sticks.
func TestMemFSRemoveDurability(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	f, _ := m.OpenFile("d/a", os.O_CREATE|os.O_WRONLY, 0o644)
	writeAll(t, f, []byte("keep"))
	f.Sync()
	m.SyncDir("d")

	if err := m.Remove("d/a"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, err := m.ReadFile("d/a"); err != nil || !bytes.Equal(got, []byte("keep")) {
		t.Fatalf("undurable remove should resurrect file: got %q, %v", got, err)
	}

	if err := m.Remove("d/a"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dir-synced remove should stick: err=%v", err)
	}
}

// Rename before SyncDir reverts on crash (old path back, new path gone);
// after SyncDir the rename sticks.
func TestMemFSRenameDurability(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	f, _ := m.OpenFile("d/tmp", os.O_CREATE|os.O_WRONLY, 0o644)
	writeAll(t, f, []byte("v2"))
	f.Sync()
	m.SyncDir("d")

	if err := m.Rename("d/tmp", "d/final"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.ReadFile("d/final"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("undurable rename target survived crash: err=%v", err)
	}
	if got, _ := m.ReadFile("d/tmp"); !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("undurable rename lost the source: got %q", got)
	}

	if err := m.Rename("d/tmp", "d/final"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, err := m.ReadFile("d/final"); err != nil || !bytes.Equal(got, []byte("v2")) {
		t.Fatalf("durable rename target: got %q, %v", got, err)
	}
	if _, err := m.ReadFile("d/tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("durable rename left the source behind: err=%v", err)
	}
}

// FailAfter fails every mutating op past the threshold, and short writes
// apply half the buffer.
func TestMemFSFaultInjection(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("d", 0o755)
	f, err := m.OpenFile("d/a", os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	m.FailAfter(1, nil) // one more op allowed
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("op within budget failed: %v", err)
	}
	if _, err := f.Write([]byte("nope")); !errors.Is(err, ErrInjected) {
		t.Fatalf("op past budget: err=%v, want ErrInjected", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync past budget: err=%v, want ErrInjected", err)
	}

	m.SetFaultHook(func(op, path string) error {
		if op == "write" {
			return ErrShortWrite
		}
		return nil
	})
	n, err := f.Write([]byte("abcd"))
	if err != ErrShortWrite || n != 2 {
		t.Fatalf("short write: n=%d err=%v, want 2, ErrShortWrite", n, err)
	}
	m.SetFaultHook(nil)
	got, _ := m.ReadFile("d/a")
	if want := []byte("okab"); !bytes.Equal(got, want) {
		t.Fatalf("data after short write = %q, want %q", got, want)
	}
}

// WriteFileAtomic leaves either the old or the complete new contents after
// a crash at any fault point, and the new contents once it returns.
func TestWriteFileAtomicCrashMatrix(t *testing.T) {
	write := func(payload string) func(io.Writer) error {
		return func(w io.Writer) error {
			_, err := w.Write([]byte(payload))
			return err
		}
	}
	// Establish v1 durably, then attempt v2 with a fault at every mutating
	// op index; after the crash the file must hold exactly v1 or v2.
	for fail := int64(0); ; fail++ {
		m := NewMemFS()
		m.MkdirAll("d", 0o755)
		if err := WriteFileAtomic(m, "d/cfg", write("v1-contents")); err != nil {
			t.Fatal(err)
		}
		m.FailAfter(fail, nil)
		err := WriteFileAtomic(m, "d/cfg", write("v2-longer-contents"))
		m.SetFaultHook(nil)
		m.Crash()
		got, rerr := m.ReadFile("d/cfg")
		if rerr != nil {
			t.Fatalf("fail=%d: file missing after crash: %v", fail, rerr)
		}
		s := string(got)
		if s != "v1-contents" && s != "v2-longer-contents" {
			t.Fatalf("fail=%d: torn contents %q", fail, s)
		}
		if err == nil {
			if s != "v2-longer-contents" {
				t.Fatalf("fail=%d: returned success but crash yields %q", fail, s)
			}
			break // no fault fired; matrix exhausted
		}
	}
}

// The OS implementation round-trips and SyncDir works on a real directory.
func TestOSWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/out.bin"
	err := WriteFileAtomic(OS, path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back: %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}
