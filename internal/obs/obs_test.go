package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentCounters hammers a counter, gauge, and histogram from
// many goroutines; run under -race this doubles as the data-race proof.
func TestConcurrentCounters(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	var c Counter
	var g Gauge
	h := NewHistogram([]float64{1, 10, 100})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge = %g, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Sum of 0..199 repeated: workers * (perWorker/200) * (199*200/2)
	want := float64(workers) * float64(perWorker/200) * float64(199*200/2)
	if got := h.Sum(); got != want {
		t.Fatalf("histogram sum = %g, want %g", got, want)
	}
}

// TestExpositionGolden pins the exact Prometheus text rendering:
// family ordering, HELP/TYPE blocks, label merging, cumulative
// histogram buckets, and collector-emitted samples.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	exact := r.Counter("demo_queries_total", "Queries served.", "mode", "exact")
	approx := r.Counter("demo_queries_total", "Queries served.", "mode", "approx")
	gauge := r.Gauge("demo_temperature", "A gauge.")
	h := r.Histogram("demo_latency_seconds", "Latency.", []float64{0.1, 1}, "mode", "exact")
	r.Collect(func(e *Emit) {
		e.Gauge("demo_build_series", "Series per build.", 42, "build", "build-1")
	})
	exact.Add(3)
	approx.Inc()
	gauge.Set(2.5)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP demo_build_series Series per build.
# TYPE demo_build_series gauge
demo_build_series{build="build-1"} 42
# HELP demo_latency_seconds Latency.
# TYPE demo_latency_seconds histogram
demo_latency_seconds_bucket{mode="exact",le="0.1"} 1
demo_latency_seconds_bucket{mode="exact",le="1"} 2
demo_latency_seconds_bucket{mode="exact",le="+Inf"} 3
demo_latency_seconds_sum{mode="exact"} 5.55
demo_latency_seconds_count{mode="exact"} 3
# HELP demo_queries_total Queries served.
# TYPE demo_queries_total counter
demo_queries_total{mode="exact"} 3
demo_queries_total{mode="approx"} 1
# HELP demo_temperature A gauge.
# TYPE demo_temperature gauge
demo_temperature 2.5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestZeroAllocHotPath pins the instrumented probe paths at 0 allocs/op
// — the contract that lets metrics and the nil-trace checks sit on the
// gated benchmark paths.
func TestZeroAllocHotPath(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(LatencyBuckets())
	sl := NewSlowLog(8)
	var tr *QueryTrace // nil: the untraced hot path
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(1.5)
		h.Observe(0.001)
		_ = sl.Slow(time.Millisecond)
		tr.NoteUnit("run", 3, 1.25, false)
		tr.NoteSkips("run", 7)
		tr.NoteCands(10, 5, 2, 3)
		tr.NotePlanCache(true)
		sp := tr.Start("scan")
		sp.End()
	}); n != 0 {
		t.Fatalf("instrumented hot path allocates %v allocs/op, want 0", n)
	}
}

// TestQueryTrace exercises the traced path: unit detail, aggregates,
// truncation, plan-cache state, candidate tallies, phases, and the
// snapshot's derived skip total.
func TestQueryTrace(t *testing.T) {
	tr := NewQueryTrace()
	tr.NoteUnit("run", 0, 2.5, false)
	tr.NoteUnit("run", 1, 9.0, true)
	tr.NoteSkips("run", 3)
	tr.NoteProbes("leaf", 5)
	tr.NoteSkips("leaf", 2)
	tr.NotePlanCache(false)
	tr.NoteCands(100, 40, 10, 50)
	sp := tr.Start("scan")
	time.Sleep(time.Millisecond)
	sp.End()

	s := tr.Snapshot()
	if s.PlanCache != "miss" {
		t.Fatalf("plan cache = %q, want miss", s.PlanCache)
	}
	if s.PlannedSkips != 6 { // 1 unit + 3 bulk + 2 leaf
		t.Fatalf("planned skips = %d, want 6", s.PlannedSkips)
	}
	if len(s.Units) != 2 || s.Units[1].Skipped != true || s.Units[1].BoundSq != 9.0 {
		t.Fatalf("unit detail wrong: %+v", s.Units)
	}
	kinds := map[string]KindCount{}
	for _, k := range s.Kinds {
		kinds[k.Kind] = k
	}
	if k := kinds["run"]; k.Probed != 1 || k.Skipped != 4 {
		t.Fatalf("run aggregate = %+v", k)
	}
	if k := kinds["leaf"]; k.Probed != 5 || k.Skipped != 2 {
		t.Fatalf("leaf aggregate = %+v", k)
	}
	if s.Candidates.Seen != 100 || s.Candidates.Verified != 40 ||
		s.Candidates.Abandoned != 10 || s.Candidates.Pruned != 50 {
		t.Fatalf("candidates = %+v", s.Candidates)
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "scan" || s.Phases[0].Micros < 500 {
		t.Fatalf("phases = %+v", s.Phases)
	}

	// Detail caps; aggregates keep counting.
	big := NewQueryTrace()
	for i := 0; i < maxUnitDetail+10; i++ {
		big.NoteUnit("run", i, 0, false)
	}
	bs := big.Snapshot()
	if len(bs.Units) != maxUnitDetail || bs.UnitsTruncated != 10 {
		t.Fatalf("cap: %d units, %d truncated", len(bs.Units), bs.UnitsTruncated)
	}
	if bs.Kinds[0].Probed != maxUnitDetail+10 {
		t.Fatalf("cap aggregate = %+v", bs.Kinds[0])
	}

	// Nil trace snapshots to nil.
	var nilTr *QueryTrace
	if nilTr.Snapshot() != nil {
		t.Fatal("nil trace must snapshot to nil")
	}
}

// TestSlowLog checks thresholding, the ring's newest-first eviction
// order, and the lifetime total.
func TestSlowLog(t *testing.T) {
	sl := NewSlowLog(2)
	if sl.Slow(time.Hour) {
		t.Fatal("disabled log must never be slow")
	}
	sl.SetThreshold(10 * time.Millisecond)
	if sl.Slow(9 * time.Millisecond) {
		t.Fatal("below threshold")
	}
	if !sl.Slow(10 * time.Millisecond) {
		t.Fatal("at threshold must be slow")
	}
	for i := 1; i <= 3; i++ {
		sl.Record(SlowEntry{Kind: "query", K: i, DurationMicros: int64(i) * 1000})
	}
	if sl.Total() != 3 {
		t.Fatalf("total = %d, want 3", sl.Total())
	}
	got := sl.Entries()
	if len(got) != 2 || got[0].K != 3 || got[1].K != 2 {
		t.Fatalf("entries = %+v, want K=3 then K=2", got)
	}
	for _, e := range got {
		if e.UnixNanos == 0 {
			t.Fatal("entry time must be stamped")
		}
	}

	// Nil receiver is inert.
	var nilSL *SlowLog
	nilSL.SetThreshold(time.Second)
	if nilSL.Slow(time.Hour) || nilSL.Total() != 0 || nilSL.Entries() != nil {
		t.Fatal("nil slow log must be inert")
	}
	nilSL.Record(SlowEntry{})
}

// TestHistogramQuantile sanity-checks the upper-bound estimator.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %g, want 1", q)
	}
	if q := h.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %g, want 4", q)
	}
}
