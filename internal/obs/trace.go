package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// maxUnitDetail caps the per-unit records a trace keeps; beyond it only
// the per-kind aggregates grow (UnitsTruncated counts the overflow).
const maxUnitDetail = 256

// QueryTrace records one query's execution for the ?trace=1 / explain
// surface: which probe units (runs, partitions, leaves, shards) were
// probed vs. skipped and at what synopsis bound, plan-cache behavior,
// candidate verification counts, and per-phase wall time. Every method
// is safe on a nil receiver — the untraced hot path pays one nil check
// and nothing else. A traced query may take the internal mutex and
// allocate freely; traces are per-request and never shared across
// queries.
type QueryTrace struct {
	mu        sync.Mutex
	units     []UnitSnapshot
	truncated int
	kinds     []KindCount
	planCache int8 // 0 = no cache involved, 1 = hit, 2 = miss
	phases    []PhaseSnapshot

	seen, verified, abandoned, pruned atomic.Int64
}

// NewQueryTrace returns an empty trace.
func NewQueryTrace() *QueryTrace { return &QueryTrace{} }

// UnitSnapshot is one probe unit's record: a run, stream partition,
// tree leaf, or shard, identified by its index within its kind, with
// the synopsis lower bound the planner computed for it (squared
// distance; 0 when no bound was computed).
type UnitSnapshot struct {
	Kind    string  `json:"kind"`
	Idx     int     `json:"idx"`
	BoundSq float64 `json:"bound_sq"`
	Skipped bool    `json:"skipped,omitempty"`
}

// KindCount aggregates probed/skipped totals for one unit kind.
type KindCount struct {
	Kind    string `json:"kind"`
	Probed  int64  `json:"probed"`
	Skipped int64  `json:"skipped"`
}

// PhaseSnapshot is accumulated wall time for one named phase.
type PhaseSnapshot struct {
	Name   string `json:"name"`
	Micros int64  `json:"micros"`
}

// CandidateCounts tallies candidate handling during verification.
type CandidateCounts struct {
	// Seen is candidates inside the query window that reached the
	// verifier; Verified entered a full distance computation; Abandoned
	// started one but crossed the early-abandon limit; Pruned were
	// rejected by a lower bound before any distance work.
	Seen      int64 `json:"seen"`
	Verified  int64 `json:"verified"`
	Abandoned int64 `json:"abandoned"`
	Pruned    int64 `json:"pruned"`
}

// IOSnapshot is the query's page accounting, filled by the serving
// layer from before/after storage-stats deltas.
type IOSnapshot struct {
	SeqReads    int64   `json:"seq_reads"`
	RandReads   int64   `json:"rand_reads"`
	SeqWrites   int64   `json:"seq_writes"`
	RandWrites  int64   `json:"rand_writes"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	Cost        float64 `json:"cost"`
}

// TraceSnapshot is the JSON-ready rendering of a QueryTrace. Mode, K,
// Kernel, IO, and WallMicros are filled by the serving layer.
type TraceSnapshot struct {
	Mode           string          `json:"mode,omitempty"`
	K              int             `json:"k,omitempty"`
	Kernel         string          `json:"kernel,omitempty"`
	PlanCache      string          `json:"plan_cache"` // "hit", "miss", or "none"
	PlannedSkips   int64           `json:"planned_skips"`
	Kinds          []KindCount     `json:"kinds,omitempty"`
	Units          []UnitSnapshot  `json:"units,omitempty"`
	UnitsTruncated int             `json:"units_truncated,omitempty"`
	Candidates     CandidateCounts `json:"candidates"`
	Phases         []PhaseSnapshot `json:"phases,omitempty"`
	IO             IOSnapshot      `json:"io"`
	WallMicros     int64           `json:"wall_micros,omitempty"`
}

// bump updates the per-kind aggregate; caller holds t.mu.
func (t *QueryTrace) bump(kind string, probed, skipped int64) {
	for i := range t.kinds {
		if t.kinds[i].Kind == kind {
			t.kinds[i].Probed += probed
			t.kinds[i].Skipped += skipped
			return
		}
	}
	t.kinds = append(t.kinds, KindCount{Kind: kind, Probed: probed, Skipped: skipped})
}

// NoteUnit records one probe unit (probed or skipped) with its synopsis
// bound, keeping per-unit detail up to the cap and aggregates beyond. An
// infinite bound (an empty unit, or one outside the query window) is
// stored as -1 so snapshots stay JSON-serializable.
func (t *QueryTrace) NoteUnit(kind string, idx int, boundSq float64, skipped bool) {
	if t == nil {
		return
	}
	if math.IsInf(boundSq, 0) || math.IsNaN(boundSq) {
		boundSq = -1
	}
	t.mu.Lock()
	if skipped {
		t.bump(kind, 0, 1)
	} else {
		t.bump(kind, 1, 0)
	}
	if len(t.units) < maxUnitDetail {
		t.units = append(t.units, UnitSnapshot{Kind: kind, Idx: idx, BoundSq: boundSq, Skipped: skipped})
	} else {
		t.truncated++
	}
	t.mu.Unlock()
}

// NoteSkips adds n skipped units of the kind to the aggregates without
// per-unit detail — for paths (tree leaf runs) whose unit count would
// swamp the detail cap.
func (t *QueryTrace) NoteSkips(kind string, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	t.bump(kind, 0, n)
	t.mu.Unlock()
}

// NoteProbes adds n probed units of the kind to the aggregates without
// per-unit detail.
func (t *QueryTrace) NoteProbes(kind string, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.mu.Lock()
	t.bump(kind, n, 0)
	t.mu.Unlock()
}

// NotePlanCache records whether the query's pruning table came from the
// plan cache.
func (t *QueryTrace) NotePlanCache(hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if hit {
		t.planCache = 1
	} else {
		t.planCache = 2
	}
	t.mu.Unlock()
}

// NoteCands adds candidate-verification tallies (safe from concurrent
// search workers).
func (t *QueryTrace) NoteCands(seen, verified, abandoned, pruned int64) {
	if t == nil {
		return
	}
	t.seen.Add(seen)
	t.verified.Add(verified)
	t.abandoned.Add(abandoned)
	t.pruned.Add(pruned)
}

// Span measures one phase; obtained from Start, closed with End. The
// zero Span (from a nil trace) is a no-op.
type Span struct {
	t     *QueryTrace
	name  string
	start time.Time
}

// Start begins timing a named phase. Same-named phases accumulate.
func (t *QueryTrace) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: time.Now()}
}

// End records the span's elapsed time into its trace.
func (s Span) End() {
	if s.t == nil {
		return
	}
	us := time.Since(s.start).Microseconds()
	s.t.mu.Lock()
	for i := range s.t.phases {
		if s.t.phases[i].Name == s.name {
			s.t.phases[i].Micros += us
			s.t.mu.Unlock()
			return
		}
	}
	s.t.phases = append(s.t.phases, PhaseSnapshot{Name: s.name, Micros: us})
	s.t.mu.Unlock()
}

// Snapshot renders the trace. The caller owns the result and typically
// fills Mode/K/Kernel/IO/WallMicros before serializing. Nil-safe (nil
// trace → nil snapshot).
func (t *QueryTrace) Snapshot() *TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &TraceSnapshot{
		Units:          append([]UnitSnapshot(nil), t.units...),
		UnitsTruncated: t.truncated,
		Kinds:          append([]KindCount(nil), t.kinds...),
		Phases:         append([]PhaseSnapshot(nil), t.phases...),
		Candidates: CandidateCounts{
			Seen:      t.seen.Load(),
			Verified:  t.verified.Load(),
			Abandoned: t.abandoned.Load(),
			Pruned:    t.pruned.Load(),
		},
	}
	switch t.planCache {
	case 1:
		s.PlanCache = "hit"
	case 2:
		s.PlanCache = "miss"
	default:
		s.PlanCache = "none"
	}
	for _, k := range s.Kinds {
		s.PlannedSkips += k.Skipped
	}
	return s
}
