// Package obs is the observability core: dependency-free metrics
// (atomic counters, gauges, and fixed-bucket histograms with 0-alloc
// hot-path increments; Prometheus text exposition), a per-query trace
// recorder, and a threshold-based slow-query log. Every layer of the
// engine reports through it — the planner and the five index read
// paths record into a QueryTrace threaded through index.Query, and the
// HTTP servers expose a Registry on GET /metrics.
//
// The package imports nothing outside the standard library and nothing
// from this repository, so any layer (including internal/index) may
// depend on it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. Inc and Add are
// lock-free and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. Set/Add are lock-free and
// allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets
// (cumulative at exposition, like Prometheus' classic histograms).
// Observe is lock-free and allocation-free: one atomic add into the
// bucket, one into the count, and a CAS loop on the float64 sum bits.
type Histogram struct {
	upper  []float64      // sorted upper bounds; implicit +Inf after
	counts []atomic.Int64 // len(upper)+1; last bucket is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewHistogram builds a detached histogram (no registry) over the given
// upper bounds. Registry.Histogram is the usual constructor.
func NewHistogram(upper []float64) *Histogram {
	u := make([]float64, len(upper))
	copy(u, upper)
	sort.Float64s(u)
	return &Histogram{upper: u, counts: make([]atomic.Int64, len(u)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an estimate of the q-quantile (0 < q <= 1) assuming
// observations sit at their bucket's upper bound — good enough for
// operator-facing summaries; scrape the buckets for anything better.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.upper) {
				return h.upper[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets spans 10µs..~84s in powers of two — wide enough for
// in-memory probes and cold distributed scans alike (values in
// seconds).
func LatencyBuckets() []float64 { return ExpBuckets(1e-5, 2, 23) }

// IOBuckets spans 1..65536 pages (or cost units) in powers of two.
func IOBuckets() []float64 { return ExpBuckets(1, 2, 17) }

// metric is one registered series: a pre-rendered label block plus a
// value source.
type metric struct {
	labels string // "" or `{k="v",...}`
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups same-named series for one # HELP/# TYPE block.
type family struct {
	name, help, typ string
	metrics         []*metric
}

// Registry holds registered metrics and scrape-time collectors, and
// renders the Prometheus text exposition.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func(*Emit)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// LabelString renders k/v pairs into a `{k="v",...}` block ("" when
// empty). Values are escaped per the exposition format.
func LabelString(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func (r *Registry) fam(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	return f
}

// Counter registers (or extends) a counter family and returns the new
// series. kv are label key/value pairs.
func (r *Registry) Counter(name, help string, kv ...string) *Counter {
	c := &Counter{}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "counter")
	f.metrics = append(f.metrics, &metric{labels: LabelString(kv...), c: c})
	return c
}

// Gauge registers a gauge series.
func (r *Registry) Gauge(name, help string, kv ...string) *Gauge {
	g := &Gauge{}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "gauge")
	f.metrics = append(f.metrics, &metric{labels: LabelString(kv...), g: g})
	return g
}

// Histogram registers a histogram series over the given upper bounds.
func (r *Registry) Histogram(name, help string, upper []float64, kv ...string) *Histogram {
	h := NewHistogram(upper)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fam(name, help, "histogram")
	f.metrics = append(f.metrics, &metric{labels: LabelString(kv...), h: h})
	return h
}

// Collect adds a scrape-time collector: fn runs on every exposition and
// emits point-in-time series (per-build gauges, ratios derived from
// existing stats structs, …). Collectors may allocate — they run off
// the query hot path.
func (r *Registry) Collect(fn func(*Emit)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Emit receives dynamic samples from a collector.
type Emit struct {
	fams map[string]*family
}

func (e *Emit) sample(name, help, typ string, v float64, kv ...string) {
	f, ok := e.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		e.fams[name] = f
	}
	g := &Gauge{}
	g.Set(v)
	f.metrics = append(f.metrics, &metric{labels: LabelString(kv...), g: g})
}

// Counter emits a counter sample (the value must be monotone across
// scrapes — typically read from an existing atomic total).
func (e *Emit) Counter(name, help string, v float64, kv ...string) {
	e.sample(name, help, "counter", v, kv...)
}

// Gauge emits a gauge sample.
func (e *Emit) Gauge(name, help string, v float64, kv ...string) {
	e.sample(name, help, "gauge", v, kv...)
}

// WritePrometheus renders every registered series plus every
// collector's samples in the Prometheus text exposition format,
// families sorted by name for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := make([]func(*Emit), len(r.collectors))
	copy(collectors, r.collectors)
	merged := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		cp := &family{name: f.name, help: f.help, typ: f.typ}
		cp.metrics = append(cp.metrics, f.metrics...)
		merged[n] = cp
	}
	r.mu.Unlock()

	em := &Emit{fams: make(map[string]*family)}
	for _, fn := range collectors {
		fn(em)
	}
	for n, f := range em.fams {
		if have, ok := merged[n]; ok {
			have.metrics = append(have.metrics, f.metrics...)
		} else {
			merged[n] = f
		}
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)

	var b []byte
	for _, n := range names {
		f := merged[n]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.help...)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, f.typ...)
		b = append(b, '\n')
		for _, m := range f.metrics {
			b = m.appendLines(b, f.name)
		}
	}
	_, err := w.Write(b)
	return err
}

// appendLines renders one series' sample line(s).
func (m *metric) appendLines(b []byte, name string) []byte {
	switch {
	case m.c != nil:
		b = append(b, name...)
		b = append(b, m.labels...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, m.c.Value(), 10)
		b = append(b, '\n')
	case m.g != nil:
		b = append(b, name...)
		b = append(b, m.labels...)
		b = append(b, ' ')
		b = appendFloat(b, m.g.Value())
		b = append(b, '\n')
	case m.h != nil:
		var cum int64
		for i := range m.h.counts {
			cum += m.h.counts[i].Load()
			b = append(b, name...)
			b = append(b, "_bucket"...)
			b = m.appendLE(b, i)
			b = append(b, ' ')
			b = strconv.AppendInt(b, cum, 10)
			b = append(b, '\n')
		}
		b = append(b, name...)
		b = append(b, "_sum"...)
		b = append(b, m.labels...)
		b = append(b, ' ')
		b = appendFloat(b, m.h.Sum())
		b = append(b, '\n')
		b = append(b, name...)
		b = append(b, "_count"...)
		b = append(b, m.labels...)
		b = append(b, ' ')
		b = strconv.AppendInt(b, m.h.Count(), 10)
		b = append(b, '\n')
	}
	return b
}

// appendLE renders the series' label block with the le bound merged in.
func (m *metric) appendLE(b []byte, bucket int) []byte {
	le := "+Inf"
	if bucket < len(m.h.upper) {
		le = strconv.FormatFloat(m.h.upper[bucket], 'g', -1, 64)
	}
	if m.labels == "" {
		b = append(b, `{le="`...)
		b = append(b, le...)
		b = append(b, `"}`...)
		return b
	}
	// insert before the closing brace: {a="b"} -> {a="b",le="..."}
	b = append(b, m.labels[:len(m.labels)-1]...)
	b = append(b, `,le="`...)
	b = append(b, le...)
	b = append(b, `"}`...)
	return b
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the exposition — mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Too late for a status change; surface in the body.
			fmt.Fprintf(w, "# scrape error: %v\n", err)
		}
	})
}
