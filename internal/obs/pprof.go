package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// StartPprof serves the standard net/http/pprof profiles (CPU, heap,
// goroutine, block, mutex, allocs, trace) on a dedicated listener and
// returns the server (Close it on shutdown). It enables moderate
// block/mutex sampling so those profiles carry data without measurably
// taxing the query path. The listen error surfaces synchronously so a
// bad -pprof flag fails at startup, not silently.
func StartPprof(addr string) (*http.Server, error) {
	// One sample per ~millisecond of blocking, one mutex event in 64:
	// cheap enough to leave on while profiling endpoints are exposed.
	runtime.SetBlockProfileRate(int(time.Millisecond))
	runtime.SetMutexProfileFraction(64)

	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return srv, nil
}
