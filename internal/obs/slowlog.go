package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one slow-operation record.
type SlowEntry struct {
	UnixNanos      int64   `json:"unix_nanos"`
	DurationMicros int64   `json:"duration_micros"`
	Kind           string  `json:"kind"` // "query", "batch", "insert", ...
	Build          string  `json:"build,omitempty"`
	Mode           string  `json:"mode,omitempty"`
	K              int     `json:"k,omitempty"`
	Cost           float64 `json:"cost,omitempty"`
	Detail         string  `json:"detail,omitempty"`
}

// SlowLog keeps the most recent operations that crossed a latency
// threshold in a fixed ring, counts the total, and optionally mirrors
// each entry to a log function. The threshold check is one atomic load;
// a zero threshold disables the log entirely. Nil-safe throughout.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; 0 = disabled
	total     atomic.Int64

	mu   sync.Mutex
	ring []SlowEntry
	next int
	n    int

	// Logf, when set, receives a printf-style line per slow entry
	// (e.g. log.Printf). Set before serving; not synchronized.
	Logf func(format string, args ...any)
}

// NewSlowLog returns a log retaining the last capacity entries
// (capacity < 1 keeps 64).
func NewSlowLog(capacity int) *SlowLog {
	if capacity < 1 {
		capacity = 64
	}
	return &SlowLog{ring: make([]SlowEntry, capacity)}
}

// SetThreshold sets the slow threshold; 0 disables.
func (l *SlowLog) SetThreshold(d time.Duration) {
	if l == nil {
		return
	}
	l.threshold.Store(int64(d))
}

// Threshold returns the current threshold (0 = disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return time.Duration(l.threshold.Load())
}

// Slow reports whether d crosses the threshold — the cheap gate callers
// check before building an entry.
func (l *SlowLog) Slow(d time.Duration) bool {
	if l == nil {
		return false
	}
	th := l.threshold.Load()
	return th > 0 && int64(d) >= th
}

// Record stores e (stamping its time if unset) and bumps the total.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil {
		return
	}
	if e.UnixNanos == 0 {
		e.UnixNanos = time.Now().UnixNano()
	}
	l.total.Add(1)
	l.mu.Lock()
	l.ring[l.next] = e
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.mu.Unlock()
	if l.Logf != nil {
		l.Logf("slow %s: %.3fms build=%s mode=%s k=%d cost=%.1f %s",
			e.Kind, float64(e.DurationMicros)/1e3, e.Build, e.Mode, e.K, e.Cost, e.Detail)
	}
}

// Total returns how many entries have ever been recorded (including
// ones evicted from the ring).
func (l *SlowLog) Total() int64 {
	if l == nil {
		return 0
	}
	return l.total.Load()
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.n)
	for i := 0; i < l.n; i++ {
		idx := (l.next - 1 - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}
