package extsort

import (
	"testing"

	"repro/internal/record"
	"repro/internal/storage"
)

// writeUnsorted is shared with extsort_test.go.

func readAllPages(t *testing.T, d *storage.Disk, name string) []byte {
	t.Helper()
	np, err := d.NumPages(name)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 0, int(np)*d.PageSize())
	buf := make([]byte, d.PageSize())
	for p := int64(0); p < np; p++ {
		if _, err := d.ReadPage(name, p, buf); err != nil {
			t.Fatal(err)
		}
		out = append(out, buf...)
	}
	return out
}

// TestParallelSortByteIdentical proves the tentpole's construction-side
// guarantee: the sorted output file is byte-for-byte the same whether the
// sort ran serially or with sorting workers overlapping run-writing I/O —
// entries are totally ordered by (Key, ID), so the output does not depend
// on how phase 1 batched or phase 2 grouped the work.
func TestParallelSortByteIdentical(t *testing.T) {
	const n = 20000
	c := record.Codec{}
	outputs := make([][]byte, 0, 4)
	for _, par := range []int{0, 2, 4, 8} {
		d := storage.NewDisk(0)
		writeUnsorted(t, d, "in", c, n, 77)
		// Tight budget forces many runs and multi-group merge passes.
		s := &Sorter{Disk: d, Codec: c, MemBudget: 32 * 1024, Parallelism: par}
		if _, err := s.Sort("in", n, "out"); err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		outputs = append(outputs, readAllPages(t, d, "out"))
	}
	for i := 1; i < len(outputs); i++ {
		if len(outputs[i]) != len(outputs[0]) {
			t.Fatalf("output %d: %d bytes vs %d serial", i, len(outputs[i]), len(outputs[0]))
		}
		for j := range outputs[i] {
			if outputs[i][j] != outputs[0][j] {
				t.Fatalf("output %d differs from serial at byte %d", i, j)
			}
		}
	}
}

// TestParallelSortSortedOrder double-checks the parallel path yields a
// correctly sorted permutation of the input.
func TestParallelSortSortedOrder(t *testing.T) {
	const n = 5000
	c := record.Codec{}
	d := storage.NewDisk(0)
	writeUnsorted(t, d, "in", c, n, 99)
	s := &Sorter{Disk: d, Codec: c, MemBudget: 16 * 1024, Parallelism: 4}
	if _, err := s.Sort("in", n, "out"); err != nil {
		t.Fatal(err)
	}
	r, err := storage.NewRecordReader(d, "out", c.Size(), n)
	if err != nil {
		t.Fatal(err)
	}
	var prev record.Entry
	ids := make(map[int64]bool, n)
	for i := 0; i < n; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		e, err := c.Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && e.Less(prev) {
			t.Fatalf("entry %d out of order", i)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate ID %d", e.ID)
		}
		ids[e.ID] = true
		prev = e
	}
	if len(ids) != n {
		t.Fatalf("got %d distinct IDs, want %d", len(ids), n)
	}
}
