package extsort

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/record"
	"repro/internal/sortable"
	"repro/internal/storage"
)

func writeUnsorted(t *testing.T, d *storage.Disk, name string, c record.Codec, n int, seed int64) []record.Entry {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w, err := storage.NewRecordWriter(d, name, c.Size())
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]record.Entry, n)
	for i := range entries {
		entries[i] = record.Entry{
			Key: sortable.Key{Hi: rng.Uint64(), Lo: rng.Uint64()},
			ID:  int64(i),
			TS:  int64(rng.Intn(1000)),
		}
		buf, err := c.Encode(entries[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return entries
}

func readAll(t *testing.T, d *storage.Disk, name string, c record.Codec, n int64) []record.Entry {
	t.Helper()
	r, err := storage.NewRecordReader(d, name, c.Size(), n)
	if err != nil {
		t.Fatal(err)
	}
	var out []record.Entry
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		e, err := c.Decode(rec)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

func checkSorted(t *testing.T, entries []record.Entry) {
	t.Helper()
	for i := 1; i < len(entries); i++ {
		if entries[i].Less(entries[i-1]) {
			t.Fatalf("output not sorted at %d", i)
		}
	}
}

func TestSortInMemoryFit(t *testing.T) {
	d := storage.NewDisk(512)
	c := record.Codec{}
	want := writeUnsorted(t, d, "in", c, 100, 1)
	s := &Sorter{Disk: d, Codec: c, MemBudget: 1 << 20}
	passes, err := s.Sort("in", 100, "out")
	if err != nil {
		t.Fatal(err)
	}
	if passes != 0 {
		t.Errorf("passes = %d, want 0 (fit in memory)", passes)
	}
	got := readAll(t, d, "out", c, 100)
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	checkSorted(t, got)
	// Same multiset: IDs are unique so check the ID set.
	seen := make(map[int64]bool)
	for _, e := range got {
		seen[e.ID] = true
	}
	if len(seen) != 100 {
		t.Fatal("entries lost or duplicated")
	}
}

func TestSortTwoPass(t *testing.T) {
	d := storage.NewDisk(512)
	c := record.Codec{}
	const n = 5000
	writeUnsorted(t, d, "in", c, n, 2)
	// Budget for ~200 entries -> 25 runs, fan-in 12 -> 2 merge passes max.
	s := &Sorter{Disk: d, Codec: c, MemBudget: 200 * c.Size()}
	passes, err := s.Sort("in", n, "out")
	if err != nil {
		t.Fatal(err)
	}
	if passes < 1 {
		t.Errorf("passes = %d, want >=1", passes)
	}
	got := readAll(t, d, "out", c, n)
	if len(got) != n {
		t.Fatalf("got %d entries, want %d", len(got), n)
	}
	checkSorted(t, got)
	// Temporary run files must be cleaned up.
	for _, f := range d.Files() {
		if f != "in" && f != "out" {
			t.Errorf("leftover temp file %q", f)
		}
	}
}

func TestSortTinyMemoryMultiPass(t *testing.T) {
	d := storage.NewDisk(128)
	c := record.Codec{}
	const n = 2000
	writeUnsorted(t, d, "in", c, n, 3)
	s := &Sorter{Disk: d, Codec: c, MemBudget: 1} // degenerate: 4-entry runs, fan-in 2
	passes, err := s.Sort("in", n, "out")
	if err != nil {
		t.Fatal(err)
	}
	if passes < 2 {
		t.Errorf("passes = %d, want multi-pass under tiny memory", passes)
	}
	got := readAll(t, d, "out", c, n)
	if len(got) != n {
		t.Fatalf("got %d, want %d", len(got), n)
	}
	checkSorted(t, got)
}

func TestSortEmpty(t *testing.T) {
	d := storage.NewDisk(512)
	c := record.Codec{}
	writeUnsorted(t, d, "in", c, 0, 4)
	s := &Sorter{Disk: d, Codec: c, MemBudget: 1 << 10}
	if _, err := s.Sort("in", 0, "out"); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, d, "out", c, 0); len(got) != 0 {
		t.Fatalf("expected empty output, got %d", len(got))
	}
}

func TestSortMaterialized(t *testing.T) {
	d := storage.NewDisk(4096)
	c := record.Codec{SeriesLen: 16, Materialized: true}
	rng := rand.New(rand.NewSource(5))
	w, err := storage.NewRecordWriter(d, "in", c.Size())
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		payload := make([]float64, 16)
		for j := range payload {
			payload[j] = rng.NormFloat64()
		}
		e := record.Entry{Key: sortable.Key{Hi: rng.Uint64()}, ID: int64(i), Payload: payload}
		buf, _ := c.Encode(e)
		if err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	s := &Sorter{Disk: d, Codec: c, MemBudget: 50 * c.Size()}
	if _, err := s.Sort("in", n, "out"); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, d, "out", c, n)
	checkSorted(t, got)
	for _, e := range got {
		if len(e.Payload) != 16 {
			t.Fatal("payload lost in sort")
		}
	}
}

func TestSortIsStableByID(t *testing.T) {
	// Entries with equal keys must come out ordered by ID (Less ties on ID).
	d := storage.NewDisk(256)
	c := record.Codec{}
	w, _ := storage.NewRecordWriter(d, "in", c.Size())
	rng := rand.New(rand.NewSource(6))
	const n = 1000
	for i := 0; i < n; i++ {
		e := record.Entry{Key: sortable.Key{Hi: uint64(rng.Intn(3))}, ID: int64(i)}
		buf, _ := c.Encode(e)
		w.Write(buf)
	}
	w.Close()
	s := &Sorter{Disk: d, Codec: c, MemBudget: 64 * c.Size()}
	if _, err := s.Sort("in", n, "out"); err != nil {
		t.Fatal(err)
	}
	got := readAll(t, d, "out", c, n)
	for i := 1; i < len(got); i++ {
		if got[i].Key == got[i-1].Key && got[i].ID <= got[i-1].ID {
			t.Fatalf("equal keys not ordered by ID at %d", i)
		}
	}
}

func TestSortSequentialIODominates(t *testing.T) {
	// The point of external sorting: I/O should be overwhelmingly sequential.
	d := storage.NewDisk(512)
	c := record.Codec{}
	const n = 20000
	writeUnsorted(t, d, "in", c, n, 7)
	d.ResetStats()
	// A realistic budget (~10% of the data) keeps per-stream buffers large
	// enough that chunked streaming dominates head movement.
	s := &Sorter{Disk: d, Codec: c, MemBudget: 2000 * c.Size()}
	if _, err := s.Sort("in", n, "out"); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	seq := st.SeqReads + st.SeqWrites
	rand := st.RandReads + st.RandWrites
	if seq < 5*rand {
		t.Errorf("sequential I/O %d not >> random %d", seq, rand)
	}
}

func TestMergeSorted(t *testing.T) {
	d := storage.NewDisk(512)
	c := record.Codec{}
	s := &Sorter{Disk: d, Codec: c, MemBudget: 1 << 16}
	// Build three sorted inputs via Sort.
	var names []string
	var counts []int64
	total := 0
	for i := 0; i < 3; i++ {
		in := "u" + string(rune('0'+i))
		out := "s" + string(rune('0'+i))
		n := 100 * (i + 1)
		writeUnsorted(t, d, in, c, n, int64(10+i))
		if _, err := s.Sort(in, int64(n), out); err != nil {
			t.Fatal(err)
		}
		names = append(names, out)
		counts = append(counts, int64(n))
		total += n
	}
	got, err := s.MergeSorted(names, counts, "merged")
	if err != nil {
		t.Fatal(err)
	}
	if got != int64(total) {
		t.Fatalf("merged %d entries, want %d", got, total)
	}
	checkSorted(t, readAll(t, d, "merged", c, int64(total)))
	// Inputs intact.
	for i, name := range names {
		if got := readAll(t, d, name, c, counts[i]); len(got) != int(counts[i]) {
			t.Fatalf("input %s damaged", name)
		}
	}
}

func TestMergeSortedArgMismatch(t *testing.T) {
	s := &Sorter{Disk: storage.NewDisk(0), Codec: record.Codec{}}
	if _, err := s.MergeSorted([]string{"a"}, nil, "out"); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestPropertySortAnyBudget(t *testing.T) {
	// External sort must produce identical output for any memory budget.
	f := func(seed int64, budgetRaw uint16, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		budget := int(budgetRaw) + 1
		d := storage.NewDisk(256)
		c := record.Codec{}
		rng := rand.New(rand.NewSource(seed))
		w, err := storage.NewRecordWriter(d, "in", c.Size())
		if err != nil {
			return false
		}
		keys := make([]sortable.Key, n)
		for i := 0; i < n; i++ {
			keys[i] = sortable.Key{Hi: rng.Uint64() % 16, Lo: rng.Uint64() % 16}
			buf, _ := c.Encode(record.Entry{Key: keys[i], ID: int64(i)})
			if err := w.Write(buf); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		s := &Sorter{Disk: d, Codec: c, MemBudget: budget}
		if _, err := s.Sort("in", int64(n), "out"); err != nil {
			return false
		}
		got := readAllQuick(d, c, int64(n))
		if len(got) != n {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Less(got[i-1]) {
				return false
			}
		}
		// Multiset preservation via ID uniqueness.
		seen := make(map[int64]bool, n)
		for _, e := range got {
			if seen[e.ID] {
				return false
			}
			seen[e.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func readAllQuick(d *storage.Disk, c record.Codec, n int64) []record.Entry {
	r, err := storage.NewRecordReader(d, "out", c.Size(), n)
	if err != nil {
		return nil
	}
	var out []record.Entry
	for {
		rec, err := r.Next()
		if err != nil {
			return out
		}
		e, err := c.Decode(rec)
		if err != nil {
			return nil
		}
		out = append(out, e)
	}
}

// writePacked writes entries (already sorted) as a packed run file.
func writePacked(t *testing.T, d *storage.Disk, name string, c record.Codec, entries []record.Entry) {
	t.Helper()
	w, err := record.NewPackedWriter(d, name, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.WriteEntry(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// readAllPacked decodes a packed run file back into entries.
func readAllPacked(t *testing.T, d *storage.Disk, name string, c record.Codec, n int64) []record.Entry {
	t.Helper()
	r, err := record.NewPackedReader(d, name, c, n)
	if err != nil {
		t.Fatal(err)
	}
	var out []record.Entry
	for {
		e, err := r.NextEntry()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, e)
	}
	return out
}

// TestMergeSortedPackedMixed merges a mix of packed and fixed-size inputs
// into both output encodings and checks the merged sequence is identical to
// MergeSorted over all-fixed inputs — encoding must never change answers.
func TestMergeSortedPackedMixed(t *testing.T) {
	d := storage.NewDisk(512)
	c := record.Codec{}
	s := &Sorter{Disk: d, Codec: c, MemBudget: 1 << 16}
	var names []string
	var counts []int64
	packed := []bool{false, true, true, false}
	var all []record.Entry
	for i := 0; i < 4; i++ {
		in := "u" + string(rune('0'+i))
		n := 60 * (i + 1)
		entries := writeUnsorted(t, d, in, c, n, int64(40+i))
		sortEntries(entries)
		out := "s" + string(rune('0'+i))
		if packed[i] {
			writePacked(t, d, out, c, entries)
		} else {
			if _, err := s.Sort(in, int64(n), out); err != nil {
				t.Fatal(err)
			}
		}
		names = append(names, out)
		counts = append(counts, int64(n))
		all = append(all, entries...)
	}
	sortEntries(all)

	for _, packOutput := range []bool{false, true} {
		got, err := s.MergeSortedPacked(names, counts, packed, "merged", packOutput)
		if err != nil {
			t.Fatal(err)
		}
		if got != int64(len(all)) {
			t.Fatalf("merged %d entries, want %d", got, len(all))
		}
		var merged []record.Entry
		if packOutput {
			merged = readAllPacked(t, d, "merged", c, got)
		} else {
			merged = readAll(t, d, "merged", c, got)
		}
		for i := range all {
			if merged[i].Key != all[i].Key || merged[i].ID != all[i].ID || merged[i].TS != all[i].TS {
				t.Fatalf("packOutput=%v: entry %d = %+v, want %+v", packOutput, i, merged[i], all[i])
			}
		}
		if err := d.Remove("merged"); err != nil {
			t.Fatal(err)
		}
	}
}

func sortEntries(entries []record.Entry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].Less(entries[j-1]); j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}
