// Package extsort implements the two-pass external merge sort at the heart
// of Coconut's bottom-up index construction. Phase one streams the unsorted
// entry file through a bounded in-memory buffer, emitting sorted runs with
// sequential writes; phase two k-way-merges the runs (multi-pass when the
// fan-in exceeds the memory budget) with sequential reads and writes. This
// is what lets Coconut build a compact, contiguous index without the
// random I/O of top-down insertion.
package extsort

import (
	"container/heap"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/parallel"
	"repro/internal/record"
	"repro/internal/storage"
)

// Sorter sorts entry files on a Disk under a fixed memory budget.
type Sorter struct {
	Disk      storage.Backend
	Codec     record.Codec
	MemBudget int    // bytes of working memory for buffering entries
	TmpPrefix string // prefix for temporary run files (default "extsort")
	// Parallelism bounds the worker goroutines used by Sort: in-memory runs
	// sort on workers while completed runs stream to disk (overlapping sort
	// CPU with run-writing I/O), and independent merge groups of a pass run
	// concurrently. 0 or 1 keeps the classic serial two-pass sort. Because
	// entries are totally ordered by (Key, ID), the sorted output file is
	// byte-identical at every parallelism level; only wall-clock changes.
	// When parallel, a few in-flight buffers per worker may hold entries at
	// once, so resident memory can exceed MemBudget by a small constant
	// factor.
	Parallelism int
}

// MinMemBudget is the smallest workable budget: room for a handful of
// entries and two merge pages.
func (s *Sorter) minEntries() int {
	n := s.MemBudget / s.Codec.Size()
	if n < 4 {
		n = 4
	}
	return n
}

func (s *Sorter) tmpName(pass, i int) string {
	p := s.TmpPrefix
	if p == "" {
		p = "extsort"
	}
	return fmt.Sprintf("%s.p%d.r%d", p, pass, i)
}

// Sort reads count entries from the input file and writes them in (Key, ID)
// order to the output file (created by the sort; it must not exist). The
// input file is left intact. Returns the number of merge passes used
// (0 = input fit in memory, 1 = classic two-pass, >1 = constrained memory).
func (s *Sorter) Sort(input string, count int64, output string) (passes int, err error) {
	if count == 0 {
		w, err := storage.NewRecordWriter(s.Disk, output, s.Codec.Size())
		if err != nil {
			return 0, err
		}
		return 0, w.Close()
	}

	// Phase 1: produce sorted runs.
	workers := s.workers()
	var runs []runInfo
	if workers == 1 {
		var err error
		if runs, err = s.sortRunsSerial(input, count); err != nil {
			return 0, err
		}
	} else {
		var err error
		if runs, err = s.sortRunsParallel(input, count, workers); err != nil {
			return 0, err
		}
	}

	// Single run: it is already the answer.
	if len(runs) == 1 {
		return 0, s.Disk.Rename(runs[0].name, output)
	}

	// Phase 2: k-way merge passes. Fan-in is bounded by how many run pages
	// fit in the memory budget (at least 2). Merge groups within a pass are
	// independent and run on the worker pool; the final single-group merge
	// writes the output directly.
	fanIn := s.MemBudget / s.Disk.PageSize()
	if fanIn < 2 {
		fanIn = 2
	}
	pool := parallel.New(workers)
	pass := 1
	for len(runs) > 1 {
		var groups [][]runInfo
		for i := 0; i < len(runs); i += fanIn {
			groups = append(groups, runs[i:min(i+fanIn, len(runs))])
		}
		next := make([]runInfo, len(groups))
		concurrent := pool.WorkersFor(len(groups))
		budget := s.MemBudget / concurrent
		err := pool.ForEach(len(groups), func(_, g int) error {
			name := s.tmpName(pass, g)
			if len(groups) == 1 {
				name = output // final merge writes the output directly
			}
			merged, err := s.mergeBudget(groups[g], name, budget)
			if err != nil {
				return err
			}
			next[g] = merged
			return nil
		})
		if err != nil {
			return passes, err
		}
		for _, r := range runs {
			if err := s.Disk.Remove(r.name); err != nil {
				return passes, err
			}
		}
		runs = next
		passes = pass
		pass++
	}
	return passes, nil
}

// workers resolves the Parallelism knob: 0 or 1 means serial.
func (s *Sorter) workers() int {
	if s.Parallelism <= 1 {
		return 1
	}
	return s.Parallelism
}

// sortRunsSerial is the classic phase 1: fill one bounded buffer, sort it,
// write it out, repeat.
func (s *Sorter) sortRunsSerial(input string, count int64) ([]runInfo, error) {
	bufEntries := s.minEntries()
	reader, err := storage.NewRecordReader(s.Disk, input, s.Codec.Size(), count)
	if err != nil {
		return nil, err
	}
	var runs []runInfo
	entries := make([]record.Entry, 0, bufEntries)
	flush := func() error {
		if len(entries) == 0 {
			return nil
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
		name := s.tmpName(0, len(runs))
		if err := s.writeRun(name, entries); err != nil {
			return err
		}
		runs = append(runs, runInfo{name: name, count: int64(len(entries))})
		entries = entries[:0]
		return nil
	}
	for {
		rec, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		e, err := s.Codec.Decode(rec)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
		if len(entries) == bufEntries {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return runs, nil
}

// sortRunsParallel is phase 1 as a three-stage pipeline: this goroutine
// streams the input and batches entries, workers sort batches, and a writer
// goroutine streams completed runs to disk strictly in batch order, so
// sorting CPU overlaps run-writing I/O and the write stream stays
// single-headed. The memory budget is split across workers, so the
// intermediate runs are smaller and more numerous than the serial pass's —
// only the final merged output is byte-identical (entries are totally
// ordered by (Key, ID)), not the intermediate run files.
func (s *Sorter) sortRunsParallel(input string, count int64, workers int) ([]runInfo, error) {
	type batch struct {
		idx     int
		entries []record.Entry
	}
	bufEntries := s.minEntries() / workers
	if bufEntries < 4 {
		bufEntries = 4
	}
	reader, err := storage.NewRecordReader(s.Disk, input, s.Codec.Size(), count)
	if err != nil {
		return nil, err
	}
	sortCh := make(chan batch, workers)
	writeCh := make(chan batch, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for b := range sortCh {
				sort.Slice(b.entries, func(x, y int) bool { return b.entries[x].Less(b.entries[y]) })
				writeCh <- b
			}
		}()
	}
	var (
		runs      []runInfo
		writerErr error
		writerDn  = make(chan struct{})
	)
	go func() {
		defer close(writerDn)
		pending := make(map[int][]record.Entry)
		next := 0
		for b := range writeCh {
			pending[b.idx] = b.entries
			for entries, ok := pending[next]; ok; entries, ok = pending[next] {
				delete(pending, next)
				if writerErr == nil {
					name := s.tmpName(0, next)
					if err := s.writeRun(name, entries); err != nil {
						writerErr = err
					} else {
						runs = append(runs, runInfo{name: name, count: int64(len(entries))})
					}
				}
				next++
			}
		}
	}()
	var readErr error
	idx := 0
	entries := make([]record.Entry, 0, bufEntries)
	for readErr == nil {
		rec, err := reader.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			readErr = err
			break
		}
		var e record.Entry
		if e, readErr = s.Codec.Decode(rec); readErr != nil {
			break
		}
		entries = append(entries, e)
		if len(entries) == bufEntries {
			sortCh <- batch{idx: idx, entries: entries}
			idx++
			entries = make([]record.Entry, 0, bufEntries)
		}
	}
	if readErr == nil && len(entries) > 0 {
		sortCh <- batch{idx: idx, entries: entries}
	}
	close(sortCh)
	wg.Wait()
	close(writeCh)
	<-writerDn
	if readErr != nil {
		return nil, readErr
	}
	if writerErr != nil {
		return nil, writerErr
	}
	return runs, nil
}

type runInfo struct {
	name  string
	count int64
}

func (s *Sorter) writeRun(name string, entries []record.Entry) error {
	w, err := storage.NewRecordWriter(s.Disk, name, s.Codec.Size())
	if err != nil {
		return err
	}
	buf := make([]byte, 0, s.Codec.Size())
	for _, e := range entries {
		buf = buf[:0]
		buf, err = s.Codec.Append(buf, e)
		if err != nil {
			return err
		}
		if err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Close()
}

// merge performs a single k-way merge of the given runs into a new file
// under the sorter's full memory budget.
func (s *Sorter) merge(runs []runInfo, outName string) (runInfo, error) {
	return s.mergeBudget(runs, outName, s.MemBudget)
}

// mergeBudget performs a single k-way merge of the given runs into a new
// file. The memory budget (a share of MemBudget when merges run
// concurrently) is split into per-run read-ahead buffers plus a
// write-behind buffer, so each stream moves the head once per chunk — the
// I/O discipline that makes external merging sequential.
func (s *Sorter) mergeBudget(runs []runInfo, outName string, budget int) (runInfo, error) {
	bufPages := budget / s.Disk.PageSize() / (len(runs) + 1)
	if bufPages < 1 {
		bufPages = 1
	}
	w, err := storage.NewRecordWriterBuffered(s.Disk, outName, s.Codec.Size(), bufPages)
	if err != nil {
		return runInfo{}, err
	}
	srcs := make([]*mergeSource, len(runs))
	for i, r := range runs {
		rd, err := storage.NewRecordReaderBuffered(s.Disk, r.name, s.Codec.Size(), r.count, bufPages)
		if err != nil {
			return runInfo{}, err
		}
		srcs[i] = &mergeSource{src: &recordEntryReader{reader: rd, codec: s.Codec}, idx: i}
	}
	buf := make([]byte, 0, s.Codec.Size())
	total, err := mergeLoop(srcs, func(e record.Entry) error {
		buf = buf[:0]
		var aerr error
		if buf, aerr = s.Codec.Append(buf, e); aerr != nil {
			return aerr
		}
		return w.Write(buf)
	})
	if err != nil {
		return runInfo{}, err
	}
	if err := w.Close(); err != nil {
		return runInfo{}, err
	}
	return runInfo{name: outName, count: total}, nil
}

// mergeLoop drains the sources through the tournament heap in (Key, ID)
// order, invoking write on every entry. It returns the entry count.
func mergeLoop(srcs []*mergeSource, write func(record.Entry) error) (int64, error) {
	h := &mergeHeap{}
	for _, src := range srcs {
		ok, err := src.advance()
		if err != nil {
			return 0, err
		}
		if ok {
			h.items = append(h.items, src)
		}
	}
	heap.Init(h)
	var total int64
	for h.Len() > 0 {
		src := h.items[0]
		if err := write(src.cur); err != nil {
			return total, err
		}
		total++
		ok, err := src.advance()
		if err != nil {
			return total, err
		}
		if ok {
			heap.Fix(h, 0)
		} else {
			heap.Pop(h)
		}
	}
	return total, nil
}

// entrySource yields entries in sorted order; io.EOF ends the stream. Both
// the fixed-size RecordReader (via recordEntryReader) and the packed
// record.PackedReader satisfy it.
type entrySource interface {
	NextEntry() (record.Entry, error)
}

// recordEntryReader adapts a fixed-size record stream to entrySource.
type recordEntryReader struct {
	reader *storage.RecordReader
	codec  record.Codec
}

func (r *recordEntryReader) NextEntry() (record.Entry, error) {
	rec, err := r.reader.Next()
	if err != nil {
		return record.Entry{}, err
	}
	return r.codec.Decode(rec)
}

type mergeSource struct {
	src entrySource
	cur record.Entry
	idx int
}

func (m *mergeSource) advance() (bool, error) {
	e, err := m.src.NextEntry()
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	m.cur = e
	return true, nil
}

type mergeHeap struct {
	items []*mergeSource
}

func (h *mergeHeap) Len() int { return len(h.items) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.cur.Less(b.cur) {
		return true
	}
	if b.cur.Less(a.cur) {
		return false
	}
	return a.idx < b.idx // stable across sources
}
func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *mergeHeap) Push(x any)    { h.items = append(h.items, x.(*mergeSource)) }
func (h *mergeHeap) Pop() any {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// MergeSorted merges already-sorted entry files (for example CLSM runs or
// BTP partitions) into a single sorted output file. Inputs are left intact.
func (s *Sorter) MergeSorted(inputs []string, counts []int64, output string) (int64, error) {
	if len(inputs) != len(counts) {
		return 0, fmt.Errorf("extsort: %d inputs but %d counts", len(inputs), len(counts))
	}
	runs := make([]runInfo, len(inputs))
	for i := range inputs {
		runs[i] = runInfo{name: inputs[i], count: counts[i]}
	}
	merged, err := s.merge(runs, output)
	if err != nil {
		return 0, err
	}
	return merged.count, nil
}

// MergeSortedPacked is MergeSorted over any mix of fixed-size and packed
// input encodings: packed[i] names input i's encoding, and packOutput
// selects the output's. Inputs are left intact. A CLSM that toggles run
// compression between sessions merges its legacy runs through this path.
func (s *Sorter) MergeSortedPacked(inputs []string, counts []int64, packed []bool, output string, packOutput bool) (int64, error) {
	if len(inputs) != len(counts) || len(inputs) != len(packed) {
		return 0, fmt.Errorf("extsort: %d inputs but %d counts, %d packed flags", len(inputs), len(counts), len(packed))
	}
	bufPages := s.MemBudget / s.Disk.PageSize() / (len(inputs) + 1)
	if bufPages < 1 {
		bufPages = 1
	}
	srcs := make([]*mergeSource, len(inputs))
	for i := range inputs {
		var es entrySource
		if packed[i] {
			rd, err := record.NewPackedReader(s.Disk, inputs[i], s.Codec, counts[i])
			if err != nil {
				return 0, err
			}
			es = rd
		} else {
			rd, err := storage.NewRecordReaderBuffered(s.Disk, inputs[i], s.Codec.Size(), counts[i], bufPages)
			if err != nil {
				return 0, err
			}
			es = &recordEntryReader{reader: rd, codec: s.Codec}
		}
		srcs[i] = &mergeSource{src: es, idx: i}
	}
	if packOutput {
		w, err := record.NewPackedWriter(s.Disk, output, s.Codec)
		if err != nil {
			return 0, err
		}
		total, err := mergeLoop(srcs, w.WriteEntry)
		if err != nil {
			return total, err
		}
		return total, w.Close()
	}
	w, err := storage.NewRecordWriterBuffered(s.Disk, output, s.Codec.Size(), bufPages)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 0, s.Codec.Size())
	total, err := mergeLoop(srcs, func(e record.Entry) error {
		buf = buf[:0]
		var aerr error
		if buf, aerr = s.Codec.Append(buf, e); aerr != nil {
			return aerr
		}
		return w.Write(buf)
	})
	if err != nil {
		return total, err
	}
	return total, w.Close()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
