// Package adsplus implements the ADS+ baseline the paper compares against:
// a state-of-the-art iSAX tree built with top-down insertions. The root
// fans out over the first bit of every segment; an overflowing leaf splits
// by promoting the cardinality of one segment. Each leaf occupies its own
// page extent allocated in creation order, so construction flushes and
// query-time leaf visits hop between scattered locations — the random-I/O
// pattern Coconut's sortable layout eliminates. ADS+ is non-materialized
// (summaries only, raw fetched on demand); ADSFull stores series inline.
package adsplus

import (
	"fmt"
	"math"

	"repro/internal/index"
	"repro/internal/record"
	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/sortable"
	"repro/internal/storage"
)

// Options configures an ADS+ index.
type Options struct {
	Disk   storage.Backend
	Name   string       // file name prefix
	Config index.Config // summarization shape; Materialized selects ADSFull
	// LeafCapacity is the maximum entries per leaf before it splits.
	// Default: 4 pages worth of entries.
	LeafCapacity int
	// BufferEntries is the size of the global insert buffer (the FBL of
	// iSAX 2.0 / ADS): entries gather in memory per leaf and flush to disk
	// when the total reaches this bound. Larger buffers batch more entries
	// per random leaf write — the memory/construction trade-off of E4.
	// Default 1024.
	BufferEntries int
	// Raw is consulted by non-materialized searches.
	Raw series.RawStore
	// Reader serves leaf-extent reads (searches and split read-backs). nil
	// selects the Disk itself (uncached); pass a buffer pool over the same
	// disk to serve hot leaves from memory. Writes always go to Disk, which
	// invalidates through any attached pool.
	Reader storage.PageReader
}

func (o *Options) setDefaults() error {
	if o.Disk == nil {
		return fmt.Errorf("adsplus: Disk is required")
	}
	if o.Name == "" {
		o.Name = "ads"
	}
	if err := o.Config.Validate(); err != nil {
		return err
	}
	if o.LeafCapacity == 0 {
		perPage := o.Disk.PageSize() / o.Config.Codec().Size()
		if perPage < 1 {
			return fmt.Errorf("adsplus: entry size exceeds page size")
		}
		o.LeafCapacity = 4 * perPage
	}
	if o.LeafCapacity < 1 {
		return fmt.Errorf("adsplus: LeafCapacity must be positive")
	}
	if o.BufferEntries == 0 {
		o.BufferEntries = 1024
	}
	if o.BufferEntries < 1 {
		return fmt.Errorf("adsplus: BufferEntries must be positive")
	}
	if o.Reader == nil {
		o.Reader = o.Disk
	}
	return nil
}

// node is an iSAX tree node. Each segment is constrained to a symbol prefix
// of bits[i] bits; leaves carry entries, internal nodes two children from a
// split on splitSeg.
type node struct {
	syms []uint8 // per-segment symbol prefix (low bits[i] bits significant)
	bits []uint8 // per-segment prefix length in bits

	// Leaf state.
	leaf     bool
	file     string         // on-disk extent; "" until first flush
	onDisk   int64          // entries on disk
	buffered []record.Entry // entries awaiting flush (FBL)

	// Internal state.
	splitSeg int
	children [2]*node // by the next bit of segment splitSeg
}

// Tree is an ADS+ index.
type Tree struct {
	opts    Options
	codec   record.Codec
	roots   map[uint64]*node // keyed by the w-bit first-bit pattern
	count   int64
	nextID  int64
	inBuf   int   // total buffered entries across leaves
	leafSeq int   // leaf file name counter
	splits  int64 // accounting: leaf splits performed
	flushes int64 // accounting: leaf-buffer flushes to disk
	pageBuf []byte
}

// New creates an empty ADS+ index.
func New(opts Options) (*Tree, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	return &Tree{
		opts:    opts,
		codec:   opts.Config.Codec(),
		roots:   make(map[uint64]*node),
		pageBuf: make([]byte, opts.Disk.PageSize()),
	}, nil
}

// Name implements index.Index; "ADS+" or "ADSFull" when materialized.
func (t *Tree) Name() string {
	if t.opts.Config.Materialized {
		return "ADSFull"
	}
	return "ADS+"
}

// Count returns the number of indexed series.
func (t *Tree) Count() int64 { return t.count }

// Splits returns the number of leaf splits performed.
func (t *Tree) Splits() int64 { return t.splits }

// LeafFlushes returns how many buffered-leaf flushes hit the disk.
func (t *Tree) LeafFlushes() int64 { return t.flushes }

// rootKey packs the first bit of every segment of w into a map key.
func (t *Tree) rootKey(w sax.Word) uint64 {
	var k uint64
	shift := uint(w.Bits - 1)
	for _, s := range w.Symbols {
		k = k<<1 | uint64((s>>shift)&1)
	}
	return k
}

// Insert adds one series top-down with the given ingestion timestamp. IDs
// are assigned in insertion order starting at 0.
func (t *Tree) Insert(s series.Series, ts int64) error {
	_, err := t.InsertID(s, ts)
	return err
}

// InsertID is Insert returning the assigned series ID.
func (t *Tree) InsertID(s series.Series, ts int64) (int64, error) {
	z := s.ZNormalize()
	w := sax.FromSeries(z, t.opts.Config.Segments, t.opts.Config.Bits)
	e := record.Entry{ID: t.nextID, TS: ts}
	if t.opts.Config.Materialized {
		e.Payload = z
	}
	// The entry's key field carries the interleaved full-resolution word,
	// so leaves can re-derive segment bits when they split and searches can
	// lower-bound per entry.
	e.Key = sortable.Interleave(w)
	return e.ID, t.InsertEntry(e)
}

// InsertEntry adds a pre-summarized entry with caller-controlled ID — used
// by the streaming schemes, which summarize once and own global IDs.
func (t *Tree) InsertEntry(e record.Entry) error {
	if e.ID >= t.nextID {
		t.nextID = e.ID + 1
	}
	w := sortable.Deinterleave(e.Key, t.opts.Config.Segments, t.opts.Config.Bits)

	rk := t.rootKey(w)
	n, ok := t.roots[rk]
	if !ok {
		n = t.newLeafNode(w, 1)
		t.roots[rk] = n
	}
	for !n.leaf {
		bit := segBit(w, n.splitSeg, int(n.bits[n.splitSeg]))
		n = n.children[bit]
	}
	n.buffered = append(n.buffered, e)
	t.inBuf++
	t.count++
	if len(n.buffered)+int(n.onDisk) > t.opts.LeafCapacity {
		if err := t.split(n, w); err != nil {
			return err
		}
	}
	if t.inBuf >= t.opts.BufferEntries {
		if err := t.FlushBuffers(); err != nil {
			return err
		}
	}
	return nil
}

// newLeafNode creates a leaf whose word prefix is w truncated to `prefixBits`
// bits on every segment.
func (t *Tree) newLeafNode(w sax.Word, prefixBits int) *node {
	syms := make([]uint8, len(w.Symbols))
	bits := make([]uint8, len(w.Symbols))
	shift := uint(w.Bits - prefixBits)
	for i, s := range w.Symbols {
		syms[i] = s >> shift
		bits[i] = uint8(prefixBits)
	}
	return &node{syms: syms, bits: bits, leaf: true}
}

// segBit extracts the next split bit of segment seg given that the node has
// already consumed `consumed` bits of it.
func segBit(w sax.Word, seg, consumed int) int {
	shift := uint(w.Bits - consumed - 1)
	return int((w.Symbols[seg] >> shift) & 1)
}

// split turns an over-full leaf into an internal node with two child
// leaves, redistributing its entries by the promoted bit. On-disk entries
// are read back (random I/O) and rewritten into the children's extents —
// the split cost that dominates top-down construction.
func (t *Tree) split(n *node, w sax.Word) error {
	seg := t.chooseSplitSegment(n)
	if seg < 0 {
		return nil // all segments at max cardinality: tolerate the oversized leaf
	}
	entries, err := t.loadLeaf(n)
	if err != nil {
		return err
	}
	if n.file != "" {
		if err := t.opts.Disk.Remove(n.file); err != nil {
			return err
		}
	}
	t.inBuf -= len(n.buffered)

	var kids [2]*node
	for b := 0; b < 2; b++ {
		syms := make([]uint8, len(n.syms))
		bits := make([]uint8, len(n.bits))
		copy(syms, n.syms)
		copy(bits, n.bits)
		syms[seg] = syms[seg]<<1 | uint8(b)
		bits[seg]++
		kids[b] = &node{syms: syms, bits: bits, leaf: true}
	}
	consumed := int(n.bits[seg])
	for _, e := range entries {
		ew := sortable.Deinterleave(e.Key, t.opts.Config.Segments, t.opts.Config.Bits)
		b := segBit(ew, seg, consumed)
		kids[b].buffered = append(kids[b].buffered, e)
		t.inBuf++
	}
	n.leaf = false
	n.file = ""
	n.onDisk = 0
	n.buffered = nil
	n.splitSeg = seg
	n.children = kids
	t.splits++
	// A pathological split can leave one child still over capacity; recurse.
	for b := 0; b < 2; b++ {
		if len(kids[b].buffered) > t.opts.LeafCapacity {
			if err := t.split(kids[b], w); err != nil {
				return err
			}
		}
	}
	return nil
}

// chooseSplitSegment picks the segment to promote: the one with the fewest
// consumed bits (round-robin refinement, keeping regions roughly square),
// or -1 if every segment is exhausted.
func (t *Tree) chooseSplitSegment(n *node) int {
	best, bestBits := -1, math.MaxInt
	for i, b := range n.bits {
		if int(b) < t.opts.Config.Bits && int(b) < bestBits {
			best, bestBits = i, int(b)
		}
	}
	return best
}

// loadLeaf returns all entries of a leaf: the on-disk extent followed by the
// in-memory buffer.
func (t *Tree) loadLeaf(n *node) ([]record.Entry, error) {
	out := make([]record.Entry, 0, int(n.onDisk)+len(n.buffered))
	if n.file != "" && n.onDisk > 0 {
		r, err := storage.NewRecordReaderBuffered(t.opts.Reader, n.file, t.codec.Size(), n.onDisk, 1)
		if err != nil {
			return nil, err
		}
		for i := int64(0); i < n.onDisk; i++ {
			rec, err := r.Next()
			if err != nil {
				return nil, err
			}
			e, err := t.codec.Decode(rec)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
	}
	out = append(out, n.buffered...)
	return out, nil
}

// FlushBuffers writes every leaf's buffered entries to its on-disk extent.
// Each leaf is a separate extent, so a flush is one head movement per
// touched leaf — the scattered write pattern of top-down construction.
func (t *Tree) FlushBuffers() error {
	var err error
	t.walk(func(n *node) {
		if err != nil || !n.leaf || len(n.buffered) == 0 {
			return
		}
		err = t.flushLeaf(n)
	})
	return err
}

func (t *Tree) flushLeaf(n *node) error {
	if n.file == "" {
		t.leafSeq++
		n.file = fmt.Sprintf("%s.leaf.%06d", t.opts.Name, t.leafSeq)
		if err := t.opts.Disk.Create(n.file); err != nil {
			return err
		}
	}
	// Append buffered entries to the extent. The final partial page is
	// rewritten in place (slotted-page style) by re-packing from the last
	// full boundary; for simplicity and to stay faithful to page-granular
	// I/O we rewrite the whole extent when a partial tail page exists.
	perPage := t.opts.Disk.PageSize() / t.codec.Size()
	if n.onDisk%int64(perPage) != 0 {
		// Partial tail: read everything back and rewrite.
		all, err := t.loadLeaf(n)
		if err != nil {
			return err
		}
		if err := t.opts.Disk.Remove(n.file); err != nil {
			return err
		}
		if err := t.opts.Disk.Create(n.file); err != nil {
			return err
		}
		if err := t.writeEntries(n.file, all); err != nil {
			return err
		}
		n.onDisk = int64(len(all))
	} else {
		if err := t.writeEntries(n.file, n.buffered); err != nil {
			return err
		}
		n.onDisk += int64(len(n.buffered))
	}
	t.inBuf -= len(n.buffered)
	n.buffered = nil
	t.flushes++
	return nil
}

func (t *Tree) writeEntries(file string, entries []record.Entry) error {
	recSize := t.codec.Size()
	perPage := t.opts.Disk.PageSize() / recSize
	page := make([]byte, t.opts.Disk.PageSize())
	for off := 0; off < len(entries); off += perPage {
		end := off + perPage
		if end > len(entries) {
			end = len(entries)
		}
		for i, e := range entries[off:end] {
			buf, err := t.codec.Encode(e)
			if err != nil {
				return err
			}
			copy(page[i*recSize:], buf)
		}
		if _, err := t.opts.Disk.AppendPage(file, page[:(end-off)*recSize]); err != nil {
			return err
		}
	}
	return nil
}

// walk visits every node depth-first.
func (t *Tree) walk(visit func(*node)) {
	var rec func(*node)
	rec = func(n *node) {
		visit(n)
		if !n.leaf {
			rec(n.children[0])
			rec(n.children[1])
		}
	}
	for _, n := range t.roots {
		rec(n)
	}
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	c := 0
	t.walk(func(n *node) {
		if n.leaf {
			c++
		}
	})
	return c
}
