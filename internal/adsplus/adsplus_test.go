package adsplus

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
)

func testConfig(materialized bool) index.Config {
	return index.Config{SeriesLen: 64, Segments: 8, Bits: 8, Materialized: materialized}
}

type normStore struct{ d *series.Dataset }

func (n normStore) Get(id int) (series.Series, error) {
	s, err := n.d.Get(id)
	if err != nil {
		return nil, err
	}
	return s.ZNormalize(), nil
}
func (n normStore) Count() int { return n.d.Count() }

func makeDataset(n int, seed int64) *series.Dataset {
	d := series.NewDataset(64)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		d.Append(gen.RandomWalk(rng, 64))
	}
	return d
}

func buildADS(t *testing.T, ds *series.Dataset, materialized bool) (*Tree, *storage.Disk) {
	t.Helper()
	disk := storage.NewDisk(0)
	tr, err := New(Options{Disk: disk, Config: testConfig(materialized), Raw: normStore{ds}, LeafCapacity: 64, BufferEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		gotID, err := tr.InsertID(s, int64(id))
		if err != nil {
			t.Fatal(err)
		}
		if gotID != int64(id) {
			t.Fatalf("assigned ID %d, want %d", gotID, id)
		}
	}
	return tr, disk
}

func bruteKNN(q series.Series, ds *series.Dataset, k int) []index.Result {
	col := index.NewCollector(k)
	zq := q.ZNormalize()
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		col.Add(index.Result{ID: int64(id), Dist: math.Sqrt(zq.SqDist(s.ZNormalize()))})
	}
	return col.Results()
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing disk should fail")
	}
	d := storage.NewDisk(0)
	if _, err := New(Options{Disk: d, Config: index.Config{}}); err == nil {
		t.Fatal("invalid config should fail")
	}
	if _, err := New(Options{Disk: d, Config: testConfig(false), LeafCapacity: -1}); err == nil {
		t.Fatal("negative leaf capacity should fail")
	}
	if _, err := New(Options{Disk: d, Config: testConfig(false), BufferEntries: -1}); err == nil {
		t.Fatal("negative buffer should fail")
	}
}

func TestNamesAndCounts(t *testing.T) {
	ds := makeDataset(100, 1)
	tr, _ := buildADS(t, ds, false)
	if tr.Name() != "ADS+" {
		t.Fatalf("name = %q", tr.Name())
	}
	if tr.Count() != 100 {
		t.Fatalf("count = %d", tr.Count())
	}
	trM, _ := buildADS(t, ds, true)
	if trM.Name() != "ADSFull" {
		t.Fatalf("materialized name = %q", trM.Name())
	}
}

func TestTreeGrowsAndSplits(t *testing.T) {
	ds := makeDataset(2000, 2)
	tr, _ := buildADS(t, ds, false)
	if tr.Splits() == 0 {
		t.Fatal("expected leaf splits with capacity 64 and 2000 series")
	}
	if tr.Leaves() < 10 {
		t.Fatalf("only %d leaves", tr.Leaves())
	}
	// Entry conservation: sum across leaves == count.
	var total int64
	tr.walk(func(n *node) {
		if n.leaf {
			total += n.onDisk + int64(len(n.buffered))
		}
	})
	if total != 2000 {
		t.Fatalf("entries across leaves = %d, want 2000", total)
	}
}

func TestLeafCapacityRespected(t *testing.T) {
	ds := makeDataset(1500, 3)
	tr, _ := buildADS(t, ds, false)
	tr.walk(func(n *node) {
		if n.leaf {
			if got := n.onDisk + int64(len(n.buffered)); got > 64 {
				// Oversized leaves are only allowed when all segments are
				// at max cardinality, which cannot happen at 8 bits here
				// until depth 64.
				t.Fatalf("leaf holds %d entries, capacity 64", got)
			}
		}
	})
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	ds := makeDataset(600, 4)
	for _, mat := range []bool{false, true} {
		tr, _ := buildADS(t, ds, mat)
		rng := rand.New(rand.NewSource(40))
		for trial := 0; trial < 15; trial++ {
			q := gen.RandomWalk(rng, 64)
			want := bruteKNN(q, ds, 5)
			got, err := tr.ExactSearch(index.NewQuery(q, testConfig(mat)), 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("mat=%v trial %d: %d results, want %d", mat, trial, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("mat=%v trial %d result %d: %v vs %v", mat, trial, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestExactSearchSeesBufferedEntries(t *testing.T) {
	ds := makeDataset(50, 5)
	disk := storage.NewDisk(0)
	tr, err := New(Options{Disk: disk, Config: testConfig(false), Raw: normStore{ds}, BufferEntries: 100000})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		tr.Insert(s, int64(id))
	}
	if tr.LeafFlushes() != 0 {
		t.Fatal("expected everything buffered")
	}
	s, _ := ds.Get(30)
	got, err := tr.ExactSearch(index.NewQuery(s, testConfig(false)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 30 || got[0].Dist > 1e-9 {
		t.Fatalf("buffered entry not found: %+v", got)
	}
}

func TestApproxSearchFindsNearDuplicates(t *testing.T) {
	ds := makeDataset(800, 6)
	tr, _ := buildADS(t, ds, true)
	rng := rand.New(rand.NewSource(60))
	hits := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		id := rng.Intn(ds.Count())
		base, _ := ds.Get(id)
		q := gen.Add(base, gen.Noise(rng, 64, 0.001))
		got, err := tr.ApproxSearch(index.NewQuery(q, testConfig(true)), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 1 && got[0].ID == int64(id) {
			hits++
		}
	}
	if hits < trials/2 {
		t.Errorf("approx found planted neighbor %d/%d", hits, trials)
	}
}

func TestApproxSearchOnMissingRegion(t *testing.T) {
	// A query whose root subtree does not exist must still return results.
	ds := series.NewDataset(64)
	// All-increasing series cluster in one region.
	for i := 0; i < 50; i++ {
		s := make(series.Series, 64)
		for j := range s {
			s[j] = float64(j) + float64(i)*0.01
		}
		ds.Append(s)
	}
	tr, _ := buildADS(t, ds, true)
	// Query a decreasing series: opposite region.
	q := make(series.Series, 64)
	for j := range q {
		q[j] = float64(64 - j)
	}
	got, err := tr.ApproxSearch(index.NewQuery(q, testConfig(true)), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results from fallback root", len(got))
	}
}

func TestSearchEmptyTree(t *testing.T) {
	tr, err := New(Options{Disk: storage.NewDisk(0), Config: testConfig(false)})
	if err != nil {
		t.Fatal(err)
	}
	q := index.NewQuery(make(series.Series, 64), testConfig(false))
	for _, f := range []func(index.Query, int) ([]index.Result, error){tr.ApproxSearch, tr.ExactSearch} {
		got, err := f(q, 3)
		if err != nil || len(got) != 0 {
			t.Fatalf("empty search: %v %v", got, err)
		}
	}
}

func TestWindowedSearch(t *testing.T) {
	ds := makeDataset(300, 7)
	tr, _ := buildADS(t, ds, false) // TS = insertion id
	s, _ := ds.Get(100)
	q := index.NewQuery(s, testConfig(false))
	got, err := tr.ExactSearch(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 100 {
		t.Fatalf("unwindowed best = %+v", got[0])
	}
	got, err = tr.ExactSearch(q.WithWindow(200, 299), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TS < 200 || got[0].TS > 299 {
		t.Fatalf("windowed result %+v", got)
	}
}

func TestConstructionIsRandomIOHeavy(t *testing.T) {
	// The baseline's defining property: flushing scattered leaves causes
	// proportionally far more random I/O than Coconut's sequential builds.
	ds := makeDataset(3000, 8)
	disk := storage.NewDisk(0)
	tr, err := New(Options{Disk: disk, Config: testConfig(false), Raw: normStore{ds}, LeafCapacity: 64, BufferEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		if err := tr.Insert(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.FlushBuffers(); err != nil {
		t.Fatal(err)
	}
	st := disk.Stats()
	rnd := st.RandReads + st.RandWrites
	seq := st.SeqReads + st.SeqWrites
	if rnd*3 < seq {
		t.Errorf("ADS+ construction: %d random vs %d sequential; expected random-heavy", rnd, seq)
	}
}

func TestFlushBuffersPersistsEverything(t *testing.T) {
	ds := makeDataset(500, 9)
	tr, _ := buildADS(t, ds, false)
	if err := tr.FlushBuffers(); err != nil {
		t.Fatal(err)
	}
	if tr.inBuf != 0 {
		t.Fatalf("inBuf = %d after FlushBuffers", tr.inBuf)
	}
	var buffered int
	tr.walk(func(n *node) {
		if n.leaf {
			buffered += len(n.buffered)
		}
	})
	if buffered != 0 {
		t.Fatalf("%d entries still buffered", buffered)
	}
	// Searches still exact after full flush.
	s, _ := ds.Get(250)
	got, err := tr.ExactSearch(index.NewQuery(s, testConfig(false)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 250 || got[0].Dist > 1e-9 {
		t.Fatalf("got %+v", got)
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	ds := makeDataset(500, 61)
	tr, _ := buildADS(t, ds, true)
	rng := rand.New(rand.NewSource(610))
	for trial := 0; trial < 8; trial++ {
		q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(true))
		for _, eps := range []float64{6, 10} {
			col := index.NewRangeCollector(eps)
			for id := 0; id < ds.Count(); id++ {
				s, _ := ds.Get(id)
				col.Add(index.Result{ID: int64(id), Dist: math.Sqrt(q.Norm.SqDist(s.ZNormalize()))})
			}
			want := col.Results()
			got, err := tr.RangeSearch(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("eps=%v: %d results, want %d", eps, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("eps=%v result %d: %+v vs %+v", eps, i, got[i], want[i])
				}
			}
		}
	}
}
