package adsplus

import (
	"container/heap"
	"math"

	"repro/internal/index"
	"repro/internal/sax"
)

// nodeMinDist lower-bounds the distance between the query and any series
// under node n, using each segment's symbol prefix at its own cardinality.
func (t *Tree) nodeMinDist(paa []float64, n *node) float64 {
	acc := 0.0
	for i, v := range paa {
		lo, hi := sax.Region(n.syms[i], int(n.bits[i]))
		var d float64
		switch {
		case v < lo:
			d = lo - v
		case v > hi:
			d = v - hi
		}
		acc += d * d
	}
	return math.Sqrt(float64(t.opts.Config.SeriesLen) / float64(len(paa)) * acc)
}

// descend walks from a root to the leaf covering word w.
func descend(n *node, w sax.Word) *node {
	for !n.leaf {
		n = n.children[segBit(w, n.splitSeg, int(n.bits[n.splitSeg]))]
	}
	return n
}

// ApproxSearch answers an approximate k-NN query by descending to the leaf
// that covers the query's iSAX word and evaluating it (one scattered leaf
// read). If that root subtree does not exist, the closest existing root by
// lower bound is used.
func (t *Tree) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	col := index.NewCollector(k)
	if len(t.roots) == 0 {
		return col.Results(), nil
	}
	w := sax.FromPAA(q.PAA, t.opts.Config.Bits)
	root, ok := t.roots[t.rootKey(w)]
	if !ok {
		best := math.Inf(1)
		for _, n := range t.roots {
			if d := t.nodeMinDist(q.PAA, n); d < best {
				best, root = d, n
			}
		}
	}
	leafNode := descend(root, w)
	if err := t.evalLeaf(leafNode, q, col); err != nil {
		return nil, err
	}
	// If the leaf was too sparse for k results, widen to the best remaining
	// leaves by lower bound (still approximate: no guarantee).
	if !col.Full() {
		pq := t.newNodeQueue(q)
		for pq.Len() > 0 && !col.Full() {
			n := heap.Pop(pq).(*nodeDist).n
			if n == leafNode {
				continue
			}
			if err := t.evalLeaf(n, q, col); err != nil {
				return nil, err
			}
		}
	}
	return col.Results(), nil
}

// ExactSearch returns the true k nearest neighbors via best-first traversal:
// nodes are visited in lower-bound order and leaves whose bound reaches the
// current k-th distance are pruned. Every visited leaf is a separate extent,
// so exact search pays one head movement per surviving leaf.
func (t *Tree) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	approx, err := t.ApproxSearch(q, k)
	if err != nil {
		return nil, err
	}
	col := index.NewCollector(k)
	for _, r := range approx {
		col.Add(r)
	}
	pq := &nodePQ{}
	for _, n := range t.roots {
		heap.Push(pq, &nodeDist{n: n, d: t.nodeMinDist(q.PAA, n)})
	}
	for pq.Len() > 0 {
		nd := heap.Pop(pq).(*nodeDist)
		if nd.d >= col.Worst() {
			break // every remaining node is at least this far
		}
		if nd.n.leaf {
			if err := t.evalLeaf(nd.n, q, col); err != nil {
				return nil, err
			}
			continue
		}
		for b := 0; b < 2; b++ {
			c := nd.n.children[b]
			if d := t.nodeMinDist(q.PAA, c); d < col.Worst() {
				heap.Push(pq, &nodeDist{n: c, d: d})
			}
		}
	}
	return col.Results(), nil
}

// evalLeaf computes true distances for the in-window entries of a leaf
// (disk extent plus buffer), verifying candidates in ascending lower-bound
// order.
func (t *Tree) evalLeaf(n *node, q index.Query, col *index.Collector) error {
	entries, err := t.loadLeaf(n)
	if err != nil {
		return err
	}
	inWin := entries[:0:0]
	for _, e := range entries {
		if q.InWindow(e.TS) {
			inWin = append(inWin, e)
		}
	}
	_, err = index.EvalCandidates(q, inWin, t.opts.Config, t.opts.Raw, col)
	return err
}

// newNodeQueue builds a priority queue of all leaves ordered by lower bound.
func (t *Tree) newNodeQueue(q index.Query) *nodePQ {
	pq := &nodePQ{}
	t.walk(func(n *node) {
		if n.leaf {
			pq.items = append(pq.items, &nodeDist{n: n, d: t.nodeMinDist(q.PAA, n)})
		}
	})
	heap.Init(pq)
	return pq
}

type nodeDist struct {
	n *node
	d float64
}

type nodePQ struct {
	items []*nodeDist
}

func (p *nodePQ) Len() int           { return len(p.items) }
func (p *nodePQ) Less(i, j int) bool { return p.items[i].d < p.items[j].d }
func (p *nodePQ) Swap(i, j int)      { p.items[i], p.items[j] = p.items[j], p.items[i] }
func (p *nodePQ) Push(x any)         { p.items = append(p.items, x.(*nodeDist)) }
func (p *nodePQ) Pop() any {
	old := p.items
	n := len(old)
	x := old[n-1]
	p.items = old[:n-1]
	return x
}

// RangeSearch returns every indexed series within Euclidean distance eps of
// the query by visiting all subtrees whose node bound is within eps.
func (t *Tree) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	col := index.NewRangeCollector(eps)
	var visit func(n *node) error
	visit = func(n *node) error {
		if t.nodeMinDist(q.PAA, n) > eps {
			return nil
		}
		if !n.leaf {
			if err := visit(n.children[0]); err != nil {
				return err
			}
			return visit(n.children[1])
		}
		entries, err := t.loadLeaf(n)
		if err != nil {
			return err
		}
		inWin := entries[:0:0]
		for _, e := range entries {
			if q.InWindow(e.TS) {
				inWin = append(inWin, e)
			}
		}
		return index.EvalRangeCandidates(q, inWin, t.opts.Config, t.opts.Raw, col)
	}
	for _, root := range t.roots {
		if err := visit(root); err != nil {
			return nil, err
		}
	}
	return col.Results(), nil
}

var (
	_ index.Index         = (*Tree)(nil)
	_ index.Inserter      = (*Tree)(nil)
	_ index.RangeSearcher = (*Tree)(nil)
	_ heap.Interface      = (*nodePQ)(nil)
)
