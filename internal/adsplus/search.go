package adsplus

import (
	"container/heap"
	"math"

	"repro/internal/index"
	"repro/internal/sax"
)

// nodeMinDistSq lower-bounds (squared) the distance between the query and
// any series under node n, using each segment's symbol prefix at its own
// cardinality. The per-query tables of the squared-space pruning pipeline
// serve every cardinality level (ctx.P.FillAll at search entry), so a node
// bound is one table lookup per segment — no Region derivation, no sqrt.
func nodeMinDistSq(p *index.Pruner, n *node) float64 {
	return p.MinDistSqMixed(n.syms, n.bits)
}

// descend walks from a root to the leaf covering word w.
func descend(n *node, w sax.Word) *node {
	for !n.leaf {
		n = n.children[segBit(w, n.splitSeg, int(n.bits[n.splitSeg]))]
	}
	return n
}

// ApproxSearch answers an approximate k-NN query by descending to the leaf
// that covers the query's iSAX word and evaluating it (one scattered leaf
// read). If that root subtree does not exist, the closest existing root by
// lower bound is used.
func (t *Tree) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	ctx := index.AcquireCtx(q, t.opts.Config)
	defer ctx.Release()
	ctx.P.FillAll()
	col := index.NewCollector(k)
	sp := ctx.Trace.Start("approx")
	if err := t.approxInto(q, k, col, ctx); err != nil {
		return nil, err
	}
	sp.End()
	return col.Results(), nil
}

// approxInto runs the approximate phase into col with an already-acquired
// context (tables filled for every cardinality), so ExactSearch shares one
// context across both phases.
func (t *Tree) approxInto(q index.Query, k int, col *index.Collector, ctx *index.SearchCtx) error {
	if len(t.roots) == 0 {
		return nil
	}
	sc := ctx.Scratch0()
	w := sax.FromPAA(q.PAA, t.opts.Config.Bits)
	root, ok := t.roots[t.rootKey(w)]
	if !ok {
		best := math.Inf(1)
		for _, n := range t.roots {
			if d := nodeMinDistSq(sc.P, n); d < best {
				best, root = d, n
			}
		}
	}
	leafNode := descend(root, w)
	if err := t.evalLeaf(leafNode, q, col, sc); err != nil {
		return err
	}
	// If the leaf was too sparse for k results, widen to the best remaining
	// leaves by lower bound (still approximate: no guarantee).
	if !col.Full() {
		pq := t.newNodeQueue(q, sc.P)
		for pq.Len() > 0 && !col.Full() {
			n := heap.Pop(pq).(*nodeDist).n
			if n == leafNode {
				continue
			}
			if err := t.evalLeaf(n, q, col, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExactSearch returns the true k nearest neighbors via best-first traversal:
// nodes are visited in squared lower-bound order and leaves whose bound
// reaches the current squared k-th distance are pruned. Every visited leaf
// is a separate extent, so exact search pays one head movement per
// surviving leaf.
func (t *Tree) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	ctx := index.AcquireCtx(q, t.opts.Config)
	defer ctx.Release()
	ctx.P.FillAll()
	col := index.NewCollector(k)
	sp := ctx.Trace.Start("approx")
	if err := t.approxInto(q, k, col, ctx); err != nil {
		return nil, err
	}
	sp.End()
	sp = ctx.Trace.Start("scan")
	defer sp.End()
	sc := ctx.Scratch0()
	pq := &nodePQ{}
	for _, n := range t.roots {
		heap.Push(pq, &nodeDist{n: n, d: nodeMinDistSq(sc.P, n)})
	}
	for pq.Len() > 0 {
		nd := heap.Pop(pq).(*nodeDist)
		if nd.d >= col.WorstSq() {
			break // every remaining node is at least this far
		}
		if nd.n.leaf {
			if err := t.evalLeaf(nd.n, q, col, sc); err != nil {
				return nil, err
			}
			continue
		}
		for b := 0; b < 2; b++ {
			c := nd.n.children[b]
			if d := nodeMinDistSq(sc.P, c); d < col.WorstSq() {
				heap.Push(pq, &nodeDist{n: c, d: d})
			} else if c.leaf {
				sc.Trace.NoteSkips("leaf", 1)
			}
		}
	}
	return col.Results(), nil
}

// evalLeaf computes true distances for the in-window entries of a leaf
// (disk extent plus buffer), verifying candidates in ascending squared
// lower-bound order.
func (t *Tree) evalLeaf(n *node, q index.Query, col *index.Collector, sc *index.Scratch) error {
	entries, err := t.loadLeaf(n)
	if err != nil {
		return err
	}
	sc.Trace.NoteProbes("leaf", 1)
	inWin := entries[:0:0]
	for _, e := range entries {
		if q.InWindow(e.TS) {
			inWin = append(inWin, e)
		}
	}
	_, err = index.EvalCandidates(q, inWin, t.opts.Raw, col, sc)
	return err
}

// newNodeQueue builds a priority queue of all leaves ordered by squared
// lower bound.
func (t *Tree) newNodeQueue(q index.Query, p *index.Pruner) *nodePQ {
	pq := &nodePQ{}
	t.walk(func(n *node) {
		if n.leaf {
			pq.items = append(pq.items, &nodeDist{n: n, d: nodeMinDistSq(p, n)})
		}
	})
	heap.Init(pq)
	return pq
}

type nodeDist struct {
	n *node
	d float64 // squared lower bound
}

type nodePQ struct {
	items []*nodeDist
}

func (p *nodePQ) Len() int           { return len(p.items) }
func (p *nodePQ) Less(i, j int) bool { return p.items[i].d < p.items[j].d }
func (p *nodePQ) Swap(i, j int)      { p.items[i], p.items[j] = p.items[j], p.items[i] }
func (p *nodePQ) Push(x any)         { p.items = append(p.items, x.(*nodeDist)) }
func (p *nodePQ) Pop() any {
	old := p.items
	n := len(old)
	x := old[n-1]
	p.items = old[:n-1]
	return x
}

// RangeSearch returns every indexed series within Euclidean distance eps of
// the query by visiting all subtrees whose squared node bound is within the
// squared epsilon.
func (t *Tree) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	ctx := index.AcquireCtx(q, t.opts.Config)
	defer ctx.Release()
	ctx.P.FillAll()
	col := index.NewRangeCollector(eps)
	sc := ctx.Scratch0()
	var visit func(n *node) error
	visit = func(n *node) error {
		if col.PruneSq(nodeMinDistSq(sc.P, n)) {
			if n.leaf {
				sc.Trace.NoteSkips("leaf", 1)
			}
			return nil
		}
		if !n.leaf {
			if err := visit(n.children[0]); err != nil {
				return err
			}
			return visit(n.children[1])
		}
		entries, err := t.loadLeaf(n)
		if err != nil {
			return err
		}
		sc.Trace.NoteProbes("leaf", 1)
		inWin := entries[:0:0]
		for _, e := range entries {
			if q.InWindow(e.TS) {
				inWin = append(inWin, e)
			}
		}
		return index.EvalRangeCandidates(q, inWin, t.opts.Raw, col, sc)
	}
	for _, root := range t.roots {
		if err := visit(root); err != nil {
			return nil, err
		}
	}
	return col.Results(), nil
}

var (
	_ index.Index         = (*Tree)(nil)
	_ index.Inserter      = (*Tree)(nil)
	_ index.RangeSearcher = (*Tree)(nil)
	_ heap.Interface      = (*nodePQ)(nil)
)
