package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/server"
	"repro/internal/shard"
)

// Options tunes the router's fan-out behavior. The zero value gets sane
// defaults from New.
type Options struct {
	// Timeout bounds each node request attempt (default 5s).
	Timeout time.Duration
	// HedgeAfter launches a duplicate request on another replica when a
	// fan-out call is still outstanding after this long; the fastest
	// response wins. 0 disables hedging.
	HedgeAfter time.Duration
	// Retries is the per-shard retry budget beyond the first attempt
	// (default 2). Each retry goes to a different replica when one exists.
	Retries int
	// Backoff is the base delay before a retry, doubling per attempt
	// (default 25ms).
	Backoff time.Duration
	// MaxInflightInserts bounds admitted insert batches; batches beyond it
	// are rejected with ErrBusy (default 4).
	MaxInflightInserts int
	// HealthInterval is the background health-check period. 0 disables the
	// loop (failures still demote nodes; a later successful call restores
	// them).
	HealthInterval time.Duration
	// Parallelism bounds batch-query fan-out workers (default: GOMAXPROCS
	// via parallel.Resolve).
	Parallelism int
	// Client overrides the HTTP client (tests inject httptest transports).
	Client *http.Client
}

// ErrBusy is returned (and surfaced as HTTP 429) when the insert admission
// limit is reached — backpressure, not failure.
var ErrBusy = errors.New("cluster: too many in-flight insert batches")

// nodeState is the router's mutable view of one topology node.
type nodeState struct {
	node Node
	// unhealthy nodes are skipped while any healthy replica covers the
	// shard; they remain last-resort candidates so a cluster without its
	// health loop (or with every replica flapping) keeps answering.
	healthy atomic.Bool
	// draining nodes receive no new queries; in-flight ones finish.
	// Replica writes still flow to them so they stay consistent.
	draining atomic.Bool
	// stale marks a replica that rejected a write (missed an earlier one):
	// it would serve divergent answers, so it leaves read rotation until an
	// operator rebuilds it. Sticky for the router's lifetime.
	stale    atomic.Bool
	fails    atomic.Int64
	mu       sync.Mutex
	lastErr  string
	lastSeen time.Time
}

func (n *nodeState) setErr(err error) {
	n.mu.Lock()
	n.lastErr = err.Error()
	n.mu.Unlock()
}

func (n *nodeState) snapshotErr() (string, time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastErr, n.lastSeen
}

// Router owns the placement map and fans queries over the cluster's index
// nodes, merging their exact squared sums through the same deterministic
// collectors in-process sharded search uses. See the package comment for
// the determinism and failover model.
type Router struct {
	topo   Topology
	opts   Options
	client *http.Client
	nodes  []*nodeState
	// replicas[si] is the precomputed replica set (node indices) of shard si.
	replicas [][]int
	rr       atomic.Uint64

	insertMu  sync.Mutex
	insertSem chan struct{}
	// count is the cluster-wide series count = next global ID to assign.
	count atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	calls   atomic.Int64
	retries atomic.Int64
	hedges  atomic.Int64

	metrics *routerMetrics
	slow    *obs.SlowLog
}

// New validates the topology, contacts every node to verify its build
// matches its topology entry (shard count, shard set, series length), and
// derives the cluster-wide series count (max MaxID across nodes + 1).
// Startup is strict: an unreachable or mismatched node is an error — a
// router must never begin serving over a placement map it cannot verify.
func New(topo Topology, opts Options) (*Router, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = 2
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 25 * time.Millisecond
	}
	if opts.MaxInflightInserts <= 0 {
		opts.MaxInflightInserts = 4
	}
	r := &Router{
		topo:      topo,
		opts:      opts,
		client:    opts.Client,
		insertSem: make(chan struct{}, opts.MaxInflightInserts),
		stop:      make(chan struct{}),
		slow:      obs.NewSlowLog(0),
	}
	r.metrics = newRouterMetrics(r)
	if r.client == nil {
		r.client = &http.Client{}
	}
	r.replicas = make([][]int, topo.Shards)
	for si := 0; si < topo.Shards; si++ {
		r.replicas[si] = topo.Replicas(si)
	}
	var maxID int64 = -1
	for _, n := range topo.Nodes {
		st := &nodeState{node: n}
		st.healthy.Store(true)
		r.nodes = append(r.nodes, st)
		info, err := r.fetchInfo(context.Background(), st)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", n.Name, err)
		}
		if err := r.checkInfo(n, info); err != nil {
			return nil, err
		}
		if info.MaxID > maxID {
			maxID = info.MaxID
		}
	}
	r.count.Store(maxID + 1)
	if opts.HealthInterval > 0 {
		r.wg.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// checkInfo verifies a node's build agrees with its topology entry. The
// node may hold a superset of the shards the topology routes to it.
func (r *Router) checkInfo(n Node, info *server.ClusterInfoResponse) error {
	if info.ClusterShards != r.topo.Shards {
		return fmt.Errorf("cluster: node %q build %q has %d shards, topology says %d",
			n.Name, n.Build, info.ClusterShards, r.topo.Shards)
	}
	if info.SeriesLen != r.topo.SeriesLen {
		return fmt.Errorf("cluster: node %q build %q indexes length-%d series, topology says %d",
			n.Name, n.Build, info.SeriesLen, r.topo.SeriesLen)
	}
	owned := make(map[int]bool, len(info.NodeShards))
	for _, si := range info.NodeShards {
		owned[si] = true
	}
	for _, si := range n.Shards {
		if !owned[si] {
			return fmt.Errorf("cluster: node %q build %q does not hold shard %d (holds %v)",
				n.Name, n.Build, si, info.NodeShards)
		}
	}
	return nil
}

// Close stops the health loop and waits for it. In-flight queries are not
// interrupted.
func (r *Router) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// Topology returns the router's placement map.
func (r *Router) Topology() Topology { return r.topo }

// Count returns the cluster-wide series count (the next global ID).
func (r *Router) Count() int64 { return r.count.Load() }

// Drain takes a node out of query rotation; in-flight queries finish and
// replica writes keep flowing so the node stays consistent for Undrain.
func (r *Router) Drain(name string) error {
	st := r.nodeByName(name)
	if st == nil {
		return fmt.Errorf("cluster: no node %q", name)
	}
	st.draining.Store(true)
	return nil
}

// Undrain returns a drained node to query rotation.
func (r *Router) Undrain(name string) error {
	st := r.nodeByName(name)
	if st == nil {
		return fmt.Errorf("cluster: no node %q", name)
	}
	st.draining.Store(false)
	return nil
}

func (r *Router) nodeByName(name string) *nodeState {
	for _, st := range r.nodes {
		if st.node.Name == name {
			return st
		}
	}
	return nil
}

// NodeStatus is one node's operational state for /api/cluster/topology.
type NodeStatus struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Build    string `json:"build"`
	Shards   []int  `json:"shards"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Stale    bool   `json:"stale"`
	Fails    int64  `json:"fails"`
	LastErr  string `json:"last_err,omitempty"`
}

// NodeStatuses snapshots every node's state, in topology order.
func (r *Router) NodeStatuses() []NodeStatus {
	out := make([]NodeStatus, len(r.nodes))
	for i, st := range r.nodes {
		lastErr, _ := st.snapshotErr()
		out[i] = NodeStatus{
			Name:     st.node.Name,
			URL:      st.node.URL,
			Build:    st.node.Build,
			Shards:   st.node.Shards,
			Healthy:  st.healthy.Load(),
			Draining: st.draining.Load(),
			Stale:    st.stale.Load(),
			Fails:    st.fails.Load(),
			LastErr:  lastErr,
		}
	}
	return out
}

// Stats aggregates a query's fan-out accounting: node calls issued
// (including retries and hedges) and the I/O the nodes charged.
type Stats struct {
	Calls   int64
	Retries int64
	Hedges  int64
	Cost    float64
	SeqIO   int64
	RandIO  int64
}

// --- HTTP plumbing -------------------------------------------------------

func (r *Router) postJSON(ctx context.Context, st *nodeState, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, st.node.URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := r.client.Do(hreq)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, hres.Body)
		hres.Body.Close()
	}()
	if hres.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(hres.Body).Decode(&e)
		if e.Error == "" {
			e.Error = hres.Status
		}
		return fmt.Errorf("%s: %s", path, e.Error)
	}
	return json.NewDecoder(hres.Body).Decode(resp)
}

func (r *Router) fetchInfo(ctx context.Context, st *nodeState) (*server.ClusterInfoResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, r.opts.Timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		st.node.URL+"/api/cluster/info?build="+st.node.Build, nil)
	if err != nil {
		return nil, err
	}
	hres, err := r.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, hres.Body)
		hres.Body.Close()
	}()
	if hres.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("info: %s", hres.Status)
	}
	var info server.ClusterInfoResponse
	if err := json.NewDecoder(hres.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

func (r *Router) noteFailure(st *nodeState, err error) {
	st.setErr(err)
	if st.fails.Add(1) >= 3 {
		st.healthy.Store(false)
	}
}

func (r *Router) noteSuccess(st *nodeState) {
	st.fails.Store(0)
	st.healthy.Store(true)
	st.mu.Lock()
	st.lastSeen = time.Now()
	st.mu.Unlock()
}

func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		for _, st := range r.nodes {
			if _, err := r.fetchInfo(context.Background(), st); err != nil {
				r.noteFailure(st, err)
			} else {
				r.noteSuccess(st)
			}
		}
	}
}

// --- scatter-gather ------------------------------------------------------

// pickReplica chooses a node for shard si, excluding the given node set.
// Healthy, non-draining, non-stale replicas rotate round-robin; when none
// qualifies, an unhealthy (but not draining/stale) replica is a last
// resort, so a cluster with a flapping health signal keeps answering.
// Returns -1 when every replica is excluded.
func (r *Router) pickReplica(si int, exclude map[int]bool) int {
	reps := r.replicas[si]
	off := int(r.rr.Add(1))
	fallback := -1
	for i := 0; i < len(reps); i++ {
		ni := reps[(off+i)%len(reps)]
		st := r.nodes[ni]
		if exclude[ni] || st.draining.Load() || st.stale.Load() {
			continue
		}
		if st.healthy.Load() {
			return ni
		}
		if fallback < 0 {
			fallback = ni
		}
	}
	return fallback
}

// gatherEvent is one fan-out completion or hedge-timer firing.
type gatherEvent struct {
	kind   int // 0 = call done, 1 = hedge timer
	node   int
	shards []int
	resp   *server.ClusterSearchResponse
	err    error
}

// gather covers every logical shard with at least one successful node
// response and folds the responses' (id, ts, distSq) triples through merge.
// Failed calls are retried on other replicas with exponential backoff under
// a per-shard budget of Retries+1 attempts; calls outstanding past
// HedgeAfter trigger a duplicate on another replica. Duplicate coverage is
// harmless (the merge collector dedups on identical values); an uncovered
// shard with no replica left fails the query loudly.
func (r *Router) gather(base server.ClusterSearchRequest, merge func(id, ts int64, distSq float64)) (Stats, error) {
	var stats Stats
	nsh := r.topo.Shards
	uncovered := make(map[int]bool, nsh)
	for si := 0; si < nsh; si++ {
		uncovered[si] = true
	}
	attempts := make([]int, nsh) // launched attempts per shard (hedges excluded)
	failed := make([]map[int]bool, nsh)
	inflight := make([]map[int]bool, nsh)
	for si := range failed {
		failed[si] = make(map[int]bool)
		inflight[si] = make(map[int]bool)
	}

	// Every call sends exactly one done event and at most one hedge event;
	// per-shard attempts are bounded, so this capacity lets straggler
	// goroutines finish after gather returns without leaking.
	evCh := make(chan gatherEvent, 4*nsh*(r.opts.Retries+2)+len(r.nodes)+8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var timers []*time.Timer
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()
	outstanding := 0

	// launchCall issues one node request covering shards after an optional
	// backoff delay (slept inside the goroutine so the event loop never
	// blocks). Bookkeeping happens here, on the event-loop goroutine.
	launchCall := func(ni int, shards []int, delay time.Duration, hedged bool) {
		st := r.nodes[ni]
		for _, si := range shards {
			inflight[si][ni] = true
		}
		outstanding++
		stats.Calls++
		if hedged {
			stats.Hedges++
			r.hedges.Add(1)
		}
		r.calls.Add(1)
		if r.opts.HedgeAfter > 0 && !hedged {
			sh := append([]int(nil), shards...)
			nni := ni
			t := time.AfterFunc(delay+r.opts.HedgeAfter, func() {
				evCh <- gatherEvent{kind: 1, node: nni, shards: sh}
			})
			timers = append(timers, t)
		}
		req := base
		req.Build = st.node.Build
		req.Shards = shards
		go func() {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					evCh <- gatherEvent{kind: 0, node: ni, shards: shards, err: ctx.Err()}
					return
				}
			}
			var resp server.ClusterSearchResponse
			err := r.postJSON(ctx, st, "/api/cluster/search", req, &resp)
			evCh <- gatherEvent{kind: 0, node: ni, shards: shards, resp: &resp, err: err}
		}()
	}

	// assign groups shards by chosen replica and launches one call per
	// node. A shard with no pickable replica but a call still in flight
	// simply waits; with nothing in flight either, the query fails.
	assign := func(shards []int, delay time.Duration, hedged bool) error {
		byNode := make(map[int][]int)
		for _, si := range shards {
			exclude := make(map[int]bool, len(failed[si])+len(inflight[si]))
			for ni := range failed[si] {
				exclude[ni] = true
			}
			for ni := range inflight[si] {
				exclude[ni] = true
			}
			ni := r.pickReplica(si, exclude)
			if ni < 0 {
				if hedged || len(inflight[si]) > 0 {
					continue // covered by an outstanding call; not fatal
				}
				return fmt.Errorf("cluster: shard %d: no replica available%s", si, r.lastShardError(failed[si]))
			}
			if !hedged {
				if attempts[si] >= r.opts.Retries+1 {
					if len(inflight[si]) > 0 {
						continue
					}
					return fmt.Errorf("cluster: shard %d: retry budget exhausted after %d attempts%s",
						si, attempts[si], r.lastShardError(failed[si]))
				}
				attempts[si]++
			}
			byNode[ni] = append(byNode[ni], si)
		}
		for ni, sis := range byNode {
			launchCall(ni, sis, delay, hedged)
		}
		return nil
	}

	all := make([]int, nsh)
	for si := range all {
		all[si] = si
	}
	if err := assign(all, 0, false); err != nil {
		return stats, err
	}

	for outstanding > 0 && len(uncovered) > 0 {
		e := <-evCh
		switch e.kind {
		case 0: // call done
			outstanding--
			for _, si := range e.shards {
				delete(inflight[si], e.node)
			}
			if e.err != nil {
				if ctx.Err() != nil {
					continue
				}
				r.noteFailure(r.nodes[e.node], e.err)
				var still []int
				for _, si := range e.shards {
					failed[si][e.node] = true
					if uncovered[si] {
						still = append(still, si)
					}
				}
				if len(still) > 0 {
					stats.Retries++
					r.retries.Add(1)
					delay := r.opts.Backoff << uint(attempts[still[0]]-1)
					if err := assign(still, delay, false); err != nil {
						return stats, err
					}
				}
				continue
			}
			r.noteSuccess(r.nodes[e.node])
			for _, it := range e.resp.Results {
				merge(it.ID, it.TS, it.DistSq)
			}
			stats.Cost += e.resp.Cost
			stats.SeqIO += e.resp.SeqIO
			stats.RandIO += e.resp.RandIO
			for _, si := range e.resp.Shards {
				delete(uncovered, si)
			}
		case 1: // hedge timer
			var still []int
			for _, si := range e.shards {
				if uncovered[si] {
					still = append(still, si)
				}
			}
			if len(still) == 0 {
				continue
			}
			if err := assign(still, 0, true); err != nil {
				return stats, err
			}
		}
	}
	if len(uncovered) > 0 {
		return stats, fmt.Errorf("cluster: %d shard(s) uncovered after fan-out", len(uncovered))
	}
	return stats, nil
}

// lastShardError formats an error among a shard's failed replicas for
// diagnostics, or "" when none recorded one.
func (r *Router) lastShardError(failedNodes map[int]bool) string {
	for ni := range failedNodes {
		if msg, _ := r.nodes[ni].snapshotErr(); msg != "" {
			return fmt.Sprintf(" (node %q: %s)", r.nodes[ni].node.Name, msg)
		}
	}
	return ""
}

// --- public query API ----------------------------------------------------

func (r *Router) checkQuery(q []float64) error {
	if len(q) != r.topo.SeriesLen {
		return fmt.Errorf("cluster: query length %d, want %d", len(q), r.topo.SeriesLen)
	}
	return nil
}

// Search answers a k-NN query over the whole cluster. Exact mode is
// byte-identical to a single-node exact search over the same data at any
// topology; approximate mode is byte-identical to the in-process sharded
// build with the same shard count (approximate answers are per-shard
// heuristics, so they depend on the partitioning, not on node placement).
func (r *Router) Search(q []float64, k int, exact bool, minTS, maxTS *int64) ([]index.Result, Stats, error) {
	if err := r.checkQuery(q); err != nil {
		return nil, Stats{}, err
	}
	if k <= 0 {
		k = 1
	}
	mode := "approx"
	if exact {
		mode = "exact"
	}
	col := index.NewCollector(k)
	stats, err := r.gather(server.ClusterSearchRequest{
		Series: q, K: k, Mode: mode, MinTS: minTS, MaxTS: maxTS,
	}, func(id, ts int64, distSq float64) { col.AddSq(id, ts, distSq) })
	if err != nil {
		return nil, stats, err
	}
	return col.Results(), stats, nil
}

// RangeSearch answers an epsilon-range query: every series within Euclidean
// distance eps of q, byte-identical to the single-node answer (range
// membership is decided in true-distance space on the nodes, and the merge
// only dedups and sorts).
func (r *Router) RangeSearch(q []float64, eps float64, minTS, maxTS *int64) ([]index.Result, Stats, error) {
	if err := r.checkQuery(q); err != nil {
		return nil, Stats{}, err
	}
	if eps <= 0 {
		return nil, Stats{}, fmt.Errorf("cluster: range search needs eps > 0, got %g", eps)
	}
	col := index.NewRangeCollector(eps)
	stats, err := r.gather(server.ClusterSearchRequest{
		Series: q, Mode: "range", Eps: eps, MinTS: minTS, MaxTS: maxTS,
	}, func(id, ts int64, distSq float64) { col.AddSq(id, ts, distSq) })
	if err != nil {
		return nil, stats, err
	}
	return col.Results(), stats, nil
}

// SearchBatch answers many k-NN queries, fanning queries across a bounded
// worker pool; each answer is byte-identical to the corresponding Search.
func (r *Router) SearchBatch(qs [][]float64, k int, exact bool) ([][]index.Result, Stats, error) {
	out := make([][]index.Result, len(qs))
	perQ := make([]Stats, len(qs))
	pool := parallel.New(r.opts.Parallelism)
	err := pool.ForEach(len(qs), func(_, i int) error {
		rs, st, err := r.Search(qs[i], k, exact, nil, nil)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		out[i], perQ[i] = rs, st
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	var total Stats
	for _, st := range perQ {
		total.Calls += st.Calls
		total.Retries += st.Retries
		total.Hedges += st.Hedges
		total.Cost += st.Cost
		total.SeqIO += st.SeqIO
		total.RandIO += st.RandIO
	}
	return out, total, nil
}

// --- insert fan-out ------------------------------------------------------

// Insert appends a batch of series cluster-wide. The router assigns dense
// global IDs (hash placement then routes each to its shard), writes every
// replica of each touched shard (write-all/read-one), and returns the new
// cluster-wide count. A replica that fails or rejects the write is marked
// stale and leaves read rotation; the insert still succeeds while every
// touched shard retains at least one live replica — losing all of them is
// reported as an error. Admission is bounded: more than MaxInflightInserts
// concurrently admitted batches fail fast with ErrBusy.
func (r *Router) Insert(batch [][]float64, timestamps []int64) (int64, error) {
	if len(batch) == 0 {
		return r.count.Load(), nil
	}
	for i, s := range batch {
		if len(s) != r.topo.SeriesLen {
			return 0, fmt.Errorf("cluster: series %d length %d, want %d", i, len(s), r.topo.SeriesLen)
		}
	}
	if timestamps != nil && len(timestamps) != len(batch) {
		return 0, fmt.Errorf("cluster: %d timestamps for %d series", len(timestamps), len(batch))
	}
	select {
	case r.insertSem <- struct{}{}:
	default:
		return 0, ErrBusy
	}
	defer func() { <-r.insertSem }()

	// ID assignment and replica writes serialize: each shard's replicas see
	// IDs strictly ascending, which is the invariant their contiguity check
	// (and a stale replica's loud rejection) rests on.
	r.insertMu.Lock()
	defer r.insertMu.Unlock()

	base := r.count.Load()
	perNode := make([][]server.ClusterEntry, len(r.nodes))
	touched := make(map[int][]int) // shard -> replica node indices
	for i, s := range batch {
		id := base + int64(i)
		ts := id
		if timestamps != nil {
			ts = timestamps[i]
		}
		si := int(shard.Of(id, r.topo.Shards))
		if _, ok := touched[si]; !ok {
			touched[si] = r.replicas[si]
		}
		for _, ni := range touched[si] {
			perNode[ni] = append(perNode[ni], server.ClusterEntry{ID: id, TS: ts, Series: s})
		}
	}

	type writeRes struct {
		ni  int
		err error
	}
	var wg sync.WaitGroup
	resCh := make(chan writeRes, len(r.nodes))
	for ni, entries := range perNode {
		if len(entries) == 0 {
			continue
		}
		wg.Add(1)
		go func(ni int, entries []server.ClusterEntry) {
			defer wg.Done()
			st := r.nodes[ni]
			var resp server.ClusterInsertResponse
			err := r.postJSON(context.Background(), st, "/api/cluster/insert", server.ClusterInsertRequest{
				Build:   st.node.Build,
				Entries: entries,
			}, &resp)
			if err == nil && resp.Applied != len(entries) {
				err = fmt.Errorf("applied %d of %d entries", resp.Applied, len(entries))
			}
			resCh <- writeRes{ni, err}
		}(ni, entries)
	}
	wg.Wait()
	close(resCh)

	okNodes := make(map[int]bool, len(r.nodes))
	var firstErr error
	for res := range resCh {
		if res.err == nil {
			r.noteSuccess(r.nodes[res.ni])
			okNodes[res.ni] = true
			continue
		}
		// The replica missed (part of) this write: divergent from its
		// peers, so it must leave read rotation.
		r.nodes[res.ni].stale.Store(true)
		r.noteFailure(r.nodes[res.ni], res.err)
		if firstErr == nil {
			firstErr = fmt.Errorf("node %q: %w", r.nodes[res.ni].node.Name, res.err)
		}
	}
	// The count advances regardless: nodes that applied the batch hold the
	// new IDs, and global IDs must stay dense and never be reissued.
	newCount := base + int64(len(batch))
	r.count.Store(newCount)

	for si, reps := range touched {
		alive := 0
		for _, ni := range reps {
			if okNodes[ni] {
				alive++
			}
		}
		if alive == 0 {
			return newCount, fmt.Errorf("cluster: shard %d lost every replica during insert: %v", si, firstErr)
		}
	}
	// Redundancy may have degraded (stale replicas left rotation and show
	// in NodeStatuses), but every touched shard kept a live replica: the
	// write is safe and succeeds.
	return newCount, nil
}
