package cluster

// The router's public HTTP surface mirrors a single coconut-server's query
// and insert API (same request/response shapes; the build field is ignored
// — the topology names the builds), so clients talk to one address and need
// not know they face a cluster. Router-specific operations live under
// /api/cluster/: topology + node status, and graceful drain.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/server"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/health", r.handleHealth)
	mux.HandleFunc("/api/query", r.handleQuery)
	mux.HandleFunc("/api/query/batch", r.handleQueryBatch)
	mux.HandleFunc("/api/insert", r.handleInsert)
	mux.HandleFunc("/api/cluster/topology", r.handleTopology)
	mux.HandleFunc("/api/cluster/drain", r.handleDrain)
	mux.HandleFunc("/api/slowlog", r.handleSlowLog)
	mux.Handle("/metrics", r.metrics.reg.Handler())
	return mux
}

// handleSlowLog answers GET /api/slowlog: the most recent slow requests
// (newest first) and the active threshold.
func (r *Router) handleSlowLog(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_micros": r.slow.Threshold().Microseconds(),
		"total":            r.slow.Total(),
		"entries":          r.slow.Entries(),
	})
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	healthy := 0
	for _, st := range r.NodeStatuses() {
		if st.Healthy && !st.Draining && !st.Stale {
			healthy++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"service": "coconut router",
		"nodes":   len(r.nodes),
		"serving": healthy,
		"count":   r.Count(),
	})
}

// handleQuery answers POST /api/query with the coconut-server request
// shape. Exact and range answers are byte-identical to a single node
// holding the whole dataset; the build field is ignored.
func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var qr server.QueryRequest
	if err := json.NewDecoder(req.Body).Decode(&qr); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	mode := "approx"
	switch {
	case qr.Eps > 0:
		mode = "range"
	case qr.Exact:
		mode = "exact"
	}
	traced := qr.Trace || req.URL.Query().Get("trace") == "1"
	if traced {
		r.metrics.traced.Inc()
	}
	start := time.Now()
	var (
		rs    []index.Result
		stats Stats
		err   error
	)
	if qr.Eps > 0 {
		rs, stats, err = r.RangeSearch(qr.Series, qr.Eps, qr.MinTS, qr.MaxTS)
	} else {
		rs, stats, err = r.Search(qr.Series, qr.K, qr.Exact, qr.MinTS, qr.MaxTS)
	}
	elapsed := time.Since(start)
	r.observeQuery(mode, elapsed, stats, err)
	if err != nil {
		writeError(w, http.StatusBadGateway, "cluster query failed: %v", err)
		return
	}
	// The router's trace rides next to the node-shaped response body, so
	// untraced clients see exactly the single-node response shape.
	resp := struct {
		server.QueryResponse
		RouterTrace *RouterTrace `json:"router_trace,omitempty"`
	}{
		QueryResponse: server.QueryResponse{
			Cost:   stats.Cost,
			SeqIO:  stats.SeqIO,
			RandIO: stats.RandIO,
		},
	}
	if traced {
		resp.RouterTrace = &RouterTrace{
			Calls:      stats.Calls,
			Retries:    stats.Retries,
			Hedges:     stats.Hedges,
			Cost:       stats.Cost,
			SeqIO:      stats.SeqIO,
			RandIO:     stats.RandIO,
			WallMicros: elapsed.Microseconds(),
		}
	}
	for _, res := range rs {
		resp.Results = append(resp.Results, server.QueryResult{ID: res.ID, TS: res.TS, Dist: res.Dist})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryBatch answers POST /api/query/batch; per-query answers are
// byte-identical to the corresponding single /api/query call.
func (r *Router) handleQueryBatch(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var qr server.BatchQueryRequest
	if err := json.NewDecoder(req.Body).Decode(&qr); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(qr.Queries) == 0 || len(qr.Queries) > 1<<16 {
		writeError(w, http.StatusBadRequest, "queries must number in (0, 65536], got %d", len(qr.Queries))
		return
	}
	start := time.Now()
	rss, stats, err := r.SearchBatch(qr.Queries, qr.K, qr.Exact)
	r.observeQuery("batch", time.Since(start), stats, err)
	if err != nil {
		writeError(w, http.StatusBadGateway, "cluster batch query failed: %v", err)
		return
	}
	resp := server.BatchQueryResponse{
		Results: make([][]server.QueryResult, len(rss)),
		Queries: len(rss),
		Cost:    stats.Cost,
		SeqIO:   stats.SeqIO,
		RandIO:  stats.RandIO,
	}
	for i, rs := range rss {
		out := make([]server.QueryResult, 0, len(rs))
		for _, res := range rs {
			out = append(out, server.QueryResult{ID: res.ID, TS: res.TS, Dist: res.Dist})
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleInsert answers POST /api/insert: the router assigns global IDs and
// writes every replica of each touched shard. Admission control surfaces as
// HTTP 429 — back off and resend.
func (r *Router) handleInsert(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var ir server.InsertRequest
	if err := json.NewDecoder(req.Body).Decode(&ir); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if len(ir.Series) == 0 || len(ir.Series) > 1<<16 {
		writeError(w, http.StatusBadRequest, "series must number in (0, 65536], got %d", len(ir.Series))
		return
	}
	ts := ir.Timestamps
	if ts == nil && ir.TS != 0 {
		ts = make([]int64, len(ir.Series))
		for i := range ts {
			ts[i] = ir.TS
		}
	}
	start := time.Now()
	count, err := r.Insert(ir.Series, ts)
	elapsed := time.Since(start)
	if err != nil {
		if errors.Is(err, ErrBusy) {
			r.metrics.insertRejects.Inc()
			writeError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		r.metrics.insertErrors.Inc()
		writeError(w, http.StatusBadGateway, "cluster insert failed: %v", err)
		return
	}
	r.metrics.inserts.Inc()
	r.metrics.insertedRows.Add(int64(len(ir.Series)))
	r.metrics.insertLatency.Observe(elapsed.Seconds())
	if r.slow.Slow(elapsed) {
		r.slow.Record(obs.SlowEntry{
			DurationMicros: elapsed.Microseconds(),
			Kind:           "insert",
			Detail:         fmt.Sprintf("%d series", len(ir.Series)),
		})
	}
	writeJSON(w, http.StatusOK, server.InsertResponse{
		Inserted: len(ir.Series),
		Count:    count,
		Synced:   true,
	})
}

// TopologyResponse reports the placement map plus live node state.
type TopologyResponse struct {
	Shards    int          `json:"shards"`
	SeriesLen int          `json:"series_len"`
	Count     int64        `json:"count"`
	Nodes     []NodeStatus `json:"nodes"`
}

func (r *Router) handleTopology(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, TopologyResponse{
		Shards:    r.topo.Shards,
		SeriesLen: r.topo.SeriesLen,
		Count:     r.Count(),
		Nodes:     r.NodeStatuses(),
	})
}

// DrainRequest starts (or, with Undrain, reverses) a graceful drain of one
// node: no new queries route to it, in-flight queries finish, and replica
// writes keep flowing so the node stays consistent.
type DrainRequest struct {
	Node    string `json:"node"`
	Undrain bool   `json:"undrain,omitempty"`
}

func (r *Router) handleDrain(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var dr DrainRequest
	if err := json.NewDecoder(req.Body).Decode(&dr); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	var err error
	if dr.Undrain {
		err = r.Undrain(dr.Node)
	} else {
		err = r.Drain(dr.Node)
	}
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": dr.Node, "draining": !dr.Undrain})
}
