// Package cluster implements the distributed serving tier: a router that
// fans queries out over N coconut-server index-node processes (each holding
// a subset of the cluster's hash-partitioned shards, see shard.Group) and
// merges per-node exact squared sums through the same deterministic
// collectors shards use in-process — so distributed answers are
// byte-identical to a single-node index at any node/shard topology.
//
// # Determinism
//
// The byte-identity argument is the in-process sharded one (package shard)
// lifted one level: per-shard exact answers are exhaustive over the shard's
// subset, distances are per-pair deterministic (the same accumulation runs
// whichever node holds the series), and the merge collector's contents are
// a pure function of the offered candidate set under the total order
// (squared distance, global ID). Nodes ship the collectors' raw accumulated
// squared sums (not re-squared reported distances), and Go's JSON float64
// encoding is shortest-round-trip, so the ordering keys cross the wire
// bit-exactly. Because the merge deduplicates by global ID and replicas of
// a shard hold identical data, duplicated shard coverage — hedged requests,
// retried fan-outs, overlapping replica answers — can never change an
// answer; only a shard with no successful response at all fails a query,
// loudly.
//
// # Replica reads, hedging, failover
//
// A topology may list the same shard on several nodes (R-way replication).
// Reads pick one replica per shard (rotating for load spread), group shards
// by chosen node, and fan one request per node. A request that errors or
// times out is retried on the remaining replicas with exponential backoff
// under a bounded per-query retry budget; when a hedge threshold is
// configured, a request still outstanding past it triggers a duplicate on
// another replica and the fastest response wins. Writes go to every replica
// of the target shard (write-all/read-one); a replica that misses a write
// is detected by the nodes' strict ID-contiguity check and taken out of
// rotation as stale rather than left to serve divergent answers.
//
// # Operations
//
// The router health-checks nodes in the background, exposes the public
// query/insert API of a single coconut-server (so clients need not care
// which they talk to), applies admission control to the insert fan-out
// (bounded in-flight batches, HTTP 429 beyond), and supports graceful
// drain: a draining node receives no new queries while in-flight ones
// finish. See docs/OPERATIONS.md for deployment and cmd/coconut-router for
// the process wrapper.
package cluster

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
)

// Node is one index-node entry in a topology: a coconut-server base URL, a
// build ID on that server, and the logical shards the build holds. Several
// nodes listing the same shard form that shard's replica set.
type Node struct {
	// Name identifies the node in logs, stats, and drain requests; unique
	// within the topology.
	Name string `json:"name"`
	// URL is the node's base URL, e.g. "http://10.0.0.7:8734".
	URL string `json:"url"`
	// Build is the cluster build ID on that node (e.g. "build-1"), created
	// with cluster_shards/node_shards matching this entry.
	Build string `json:"build"`
	// Shards lists the logical shards the node holds, each in
	// [0, Topology.Shards).
	Shards []int `json:"shards"`
}

// Topology is the router's static placement map: the cluster-wide logical
// shard count and every node's shard assignment. Every shard must be
// covered by at least one node; coverage by several nodes is R-way
// replication.
type Topology struct {
	// Shards is the cluster-wide logical shard count. Placement of global
	// series ID id is shard.Of(id, Shards) — a pure function, so every
	// component (builds, router, recovery) derives the same map.
	Shards int `json:"shards"`
	// SeriesLen is the indexed series length; queries are validated against
	// it before any fan-out.
	SeriesLen int `json:"series_len"`
	// Nodes lists the index nodes.
	Nodes []Node `json:"nodes"`
}

// Validate checks structural sanity: positive shard count, unique node
// names, parseable URLs, shard indices in range, and every shard covered by
// at least one node.
func (t Topology) Validate() error {
	if t.Shards < 1 {
		return fmt.Errorf("cluster: topology needs shards >= 1, got %d", t.Shards)
	}
	if t.SeriesLen < 1 {
		return fmt.Errorf("cluster: topology needs series_len >= 1, got %d", t.SeriesLen)
	}
	if len(t.Nodes) == 0 {
		return fmt.Errorf("cluster: topology has no nodes")
	}
	covered := make([]bool, t.Shards)
	names := make(map[string]bool, len(t.Nodes))
	for i, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: node %d has no name", i)
		}
		if names[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		names[n.Name] = true
		u, err := url.Parse(n.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("cluster: node %q has invalid URL %q", n.Name, n.URL)
		}
		if n.Build == "" {
			return fmt.Errorf("cluster: node %q has no build ID", n.Name)
		}
		if len(n.Shards) == 0 {
			return fmt.Errorf("cluster: node %q holds no shards", n.Name)
		}
		seen := make(map[int]bool, len(n.Shards))
		for _, si := range n.Shards {
			if si < 0 || si >= t.Shards {
				return fmt.Errorf("cluster: node %q shard %d outside [0, %d)", n.Name, si, t.Shards)
			}
			if seen[si] {
				return fmt.Errorf("cluster: node %q lists shard %d twice", n.Name, si)
			}
			seen[si] = true
			covered[si] = true
		}
	}
	for si, ok := range covered {
		if !ok {
			return fmt.Errorf("cluster: shard %d covered by no node", si)
		}
	}
	return nil
}

// Replicas returns the indices (into Nodes) of every node holding shard si,
// in topology order.
func (t Topology) Replicas(si int) []int {
	var out []int
	for i, n := range t.Nodes {
		for _, s := range n.Shards {
			if s == si {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// MinReplication returns the smallest replica-set size across shards — the
// cluster's effective R.
func (t Topology) MinReplication() int {
	r := len(t.Nodes)
	for si := 0; si < t.Shards; si++ {
		if n := len(t.Replicas(si)); n < r {
			r = n
		}
	}
	return r
}

// LoadTopology reads and validates a topology JSON file (the
// coconut-router -topology flag).
func LoadTopology(path string) (Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Topology{}, fmt.Errorf("cluster: reading topology: %w", err)
	}
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return Topology{}, fmt.Errorf("cluster: parsing topology %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}
