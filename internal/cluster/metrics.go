package cluster

import (
	"time"

	"repro/internal/obs"
)

// routerMetrics is the router's /metrics surface: request-path counters
// and latency histograms, plus a scrape-time collector deriving fan-out
// totals and per-node replica health from the state the router already
// maintains.
type routerMetrics struct {
	reg *obs.Registry

	queries       map[string]*obs.Counter   // by mode: approx, exact, range, batch
	queryLatency  map[string]*obs.Histogram // by mode
	queryErrors   *obs.Counter
	inserts       *obs.Counter
	insertedRows  *obs.Counter
	insertErrors  *obs.Counter
	insertRejects *obs.Counter
	insertLatency *obs.Histogram
	traced        *obs.Counter
}

func newRouterMetrics(r *Router) *routerMetrics {
	reg := obs.NewRegistry()
	m := &routerMetrics{
		reg:          reg,
		queries:      make(map[string]*obs.Counter, 4),
		queryLatency: make(map[string]*obs.Histogram, 4),
	}
	for _, mode := range []string{"approx", "exact", "range", "batch"} {
		m.queries[mode] = reg.Counter("coconut_router_queries_total",
			"Queries routed, by mode.", "mode", mode)
		m.queryLatency[mode] = reg.Histogram("coconut_router_query_latency_seconds",
			"End-to-end routed query wall time in seconds, by mode.",
			obs.LatencyBuckets(), "mode", mode)
	}
	m.queryErrors = reg.Counter("coconut_router_query_errors_total",
		"Routed queries that failed.")
	m.inserts = reg.Counter("coconut_router_inserts_total",
		"Insert batches admitted and fanned out.")
	m.insertedRows = reg.Counter("coconut_router_inserted_series_total",
		"Series inserted cluster-wide through the router.")
	m.insertErrors = reg.Counter("coconut_router_insert_errors_total",
		"Insert batches that failed after admission.")
	m.insertRejects = reg.Counter("coconut_router_insert_rejects_total",
		"Insert batches rejected by admission control (HTTP 429).")
	m.insertLatency = reg.Histogram("coconut_router_insert_latency_seconds",
		"Insert batch wall time in seconds.", obs.LatencyBuckets())
	m.traced = reg.Counter("coconut_router_traced_queries_total",
		"Routed queries that carried a trace.")
	reg.Collect(r.collectRouter)
	return m
}

// collectRouter derives the fan-out totals and per-node health series at
// scrape time from the router's existing atomics.
func (r *Router) collectRouter(e *obs.Emit) {
	e.Counter("coconut_router_node_calls_total",
		"Node requests issued across all fan-outs (retries and hedges included).",
		float64(r.calls.Load()))
	e.Counter("coconut_router_retries_total",
		"Node requests reissued to another replica after a failure.",
		float64(r.retries.Load()))
	e.Counter("coconut_router_hedges_total",
		"Duplicate node requests launched after HedgeAfter.",
		float64(r.hedges.Load()))
	e.Gauge("coconut_router_shards", "Logical shards in the topology.",
		float64(r.topo.Shards))
	e.Gauge("coconut_router_series", "Cluster-wide series count.",
		float64(r.count.Load()))
	for _, st := range r.nodes {
		name := st.node.Name
		b := func(v bool) float64 {
			if v {
				return 1
			}
			return 0
		}
		e.Gauge("coconut_router_node_healthy", "1 while the node passes health checks.",
			b(st.healthy.Load()), "node", name)
		e.Gauge("coconut_router_node_draining", "1 while the node is draining.",
			b(st.draining.Load()), "node", name)
		e.Gauge("coconut_router_node_stale", "1 once the node missed a replica write and left read rotation.",
			b(st.stale.Load()), "node", name)
		e.Gauge("coconut_router_node_fails", "Consecutive failed calls to the node.",
			float64(st.fails.Load()), "node", name)
	}
}

// RouterTrace is the router's side of a traced query: the fan-out
// accounting for this one request. Nodes' own traces stay on the nodes —
// query them directly with ?trace=1 to drill in.
type RouterTrace struct {
	Calls      int64   `json:"calls"`
	Retries    int64   `json:"retries"`
	Hedges     int64   `json:"hedges"`
	Cost       float64 `json:"cost"`
	SeqIO      int64   `json:"seq_io"`
	RandIO     int64   `json:"rand_io"`
	WallMicros int64   `json:"wall_micros"`
}

// observeQuery feeds one routed query into the histograms and, past the
// threshold, the slow-query log.
func (r *Router) observeQuery(mode string, elapsed time.Duration, stats Stats, err error) {
	if err != nil {
		r.metrics.queryErrors.Inc()
		return
	}
	r.metrics.queries[mode].Inc()
	r.metrics.queryLatency[mode].Observe(elapsed.Seconds())
	if r.slow.Slow(elapsed) {
		r.slow.Record(obs.SlowEntry{
			DurationMicros: elapsed.Microseconds(),
			Kind:           "query",
			Mode:           mode,
			Cost:           stats.Cost,
		})
	}
}

// SetSlowQuery arms the router's slow-query log: requests slower than d
// are recorded in a bounded ring served at GET /api/slowlog. d <= 0
// disables it. Safe to call while serving.
func (r *Router) SetSlowQuery(d time.Duration) { r.slow.SetThreshold(d) }

// Metrics exposes the router's metrics registry.
func (r *Router) Metrics() *obs.Registry { return r.metrics.reg }
