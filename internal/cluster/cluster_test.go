package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/server"
)

const (
	testN    = 240
	testLen  = 32
	testSeed = 9
)

// testNode is one in-process index node: a real coconut-server behind an
// httptest listener, holding a cluster build of the shared seeded dataset.
type testNode struct {
	ts    *httptest.Server
	build string
	// searchCalls counts /api/cluster/search requests, for drain and
	// routing assertions.
	searchCalls func() int
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

// startNode spins up a node server with the shared dataset and a cluster
// build owning the given shards. middleware (optional) wraps the handler.
func startNode(t *testing.T, nshards int, owned []int, middleware func(http.Handler) http.Handler) *testNode {
	t.Helper()
	s := server.New()
	var mu sync.Mutex
	searches := 0
	inner := s.Handler()
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/api/cluster/search" {
			mu.Lock()
			searches++
			mu.Unlock()
		}
		inner.ServeHTTP(w, r)
	})
	var h http.Handler = counted
	if middleware != nil {
		h = middleware(counted)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	var d server.DatasetResponse
	if code := postJSON(t, ts.URL+"/api/datasets",
		server.DatasetRequest{Kind: "randomwalk", N: testN, Len: testLen, Seed: testSeed}, &d); code != 201 {
		t.Fatalf("dataset status %d", code)
	}
	var b server.BuildResponse
	if code := postJSON(t, ts.URL+"/api/build", server.BuildRequest{
		Dataset: d.ID, Variant: "CTreeFull", ClusterShards: nshards, NodeShards: owned,
	}, &b); code != 201 {
		t.Fatalf("cluster build status %d", code)
	}
	return &testNode{ts: ts, build: b.ID, searchCalls: func() int {
		mu.Lock()
		defer mu.Unlock()
		return searches
	}}
}

// startBaseline spins up a single unsharded server over the same dataset —
// the byte-identity reference.
func startBaseline(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	s := server.New()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var d server.DatasetResponse
	postJSON(t, ts.URL+"/api/datasets",
		server.DatasetRequest{Kind: "randomwalk", N: testN, Len: testLen, Seed: testSeed}, &d)
	var b server.BuildResponse
	if code := postJSON(t, ts.URL+"/api/build",
		server.BuildRequest{Dataset: d.ID, Variant: "CTreeFull"}, &b); code != 201 {
		t.Fatalf("baseline build status %d", code)
	}
	return ts, b.ID
}

// topologyOf builds a Topology from test nodes.
func topologyOf(nshards int, nodes []*testNode, shards [][]int) Topology {
	t := Topology{Shards: nshards, SeriesLen: testLen}
	for i, n := range nodes {
		t.Nodes = append(t.Nodes, Node{
			Name: string(rune('a' + i)), URL: n.ts.URL, Build: n.build, Shards: shards[i],
		})
	}
	return t
}

func testQueries(n int) [][]float64 {
	rng := rand.New(rand.NewSource(testSeed + 1))
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64(gen.RandomWalk(rng, testLen))
	}
	return out
}

func queryHTTP(t *testing.T, url, build string, q []float64, k int, exact bool, eps float64) server.QueryResponse {
	t.Helper()
	var resp server.QueryResponse
	code := postJSON(t, url+"/api/query",
		server.QueryRequest{Build: build, Series: q, K: k, Exact: exact, Eps: eps}, &resp)
	if code != 200 {
		t.Fatalf("query status %d", code)
	}
	return resp
}

func sameHTTPResults(t *testing.T, label string, got, want []server.QueryResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.TS != w.TS || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
			t.Fatalf("%s result %d: got (id %d, ts %d, dist %x), want (id %d, ts %d, dist %x)",
				label, i, g.ID, g.TS, math.Float64bits(g.Dist), w.ID, w.TS, math.Float64bits(w.Dist))
		}
	}
}

// TestRouterEquivalenceTopologies is the distributed-equivalence suite: a
// router over {1, 2, 4} nodes must answer exact, range, windowed, and batch
// queries byte-identically to a single unsharded node, through the router's
// public HTTP API.
func TestRouterEquivalenceTopologies(t *testing.T) {
	qs := testQueries(6)
	const nsh = 4
	for _, tc := range []struct {
		name   string
		shards [][]int
	}{
		{"1node", [][]int{{0, 1, 2, 3}}},
		{"2nodes", [][]int{{0, 1}, {2, 3}}},
		{"4nodes", [][]int{{0}, {1}, {2}, {3}}},
		{"2nodes-replicated", [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Each topology gets a fresh baseline: the insert sub-check
			// mutates it, so sharing one would skew later subtests.
			baseTS, baseBuild := startBaseline(t)
			nodes := make([]*testNode, len(tc.shards))
			for i, owned := range tc.shards {
				nodes[i] = startNode(t, nsh, owned, nil)
			}
			r, err := New(topologyOf(nsh, nodes, tc.shards), Options{Timeout: 5 * time.Second})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.Count() != testN {
				t.Fatalf("router count %d, want %d", r.Count(), testN)
			}
			rts := httptest.NewServer(r.Handler())
			defer rts.Close()

			for _, q := range qs {
				want := queryHTTP(t, baseTS.URL, baseBuild, q, 5, true, 0)
				got := queryHTTP(t, rts.URL, "", q, 5, true, 0)
				sameHTTPResults(t, "exact", got.Results, want.Results)

				eps := want.Results[len(want.Results)-1].Dist * 1.2
				wantR := queryHTTP(t, baseTS.URL, baseBuild, q, 0, false, eps)
				gotR := queryHTTP(t, rts.URL, "", q, 0, false, eps)
				sameHTTPResults(t, "range", gotR.Results, wantR.Results)
			}

			// Batch: identical to the per-query answers.
			var wantB, gotB server.BatchQueryResponse
			if code := postJSON(t, baseTS.URL+"/api/query/batch",
				server.BatchQueryRequest{Build: baseBuild, Queries: qs, K: 5, Exact: true}, &wantB); code != 200 {
				t.Fatalf("baseline batch status %d", code)
			}
			if code := postJSON(t, rts.URL+"/api/query/batch",
				server.BatchQueryRequest{Queries: qs, K: 5, Exact: true}, &gotB); code != 200 {
				t.Fatalf("router batch status %d", code)
			}
			for i := range qs {
				sameHTTPResults(t, "batch", gotB.Results[i], wantB.Results[i])
			}

			// Inserts with explicit timestamps, then identity again —
			// including a window clipped to the inserted range.
			extra := testQueries(10)
			tss := make([]int64, len(extra))
			for i := range tss {
				tss[i] = 700 + int64(i)
			}
			var ins server.InsertResponse
			if code := postJSON(t, rts.URL+"/api/insert",
				server.InsertRequest{Series: extra, Timestamps: tss}, &ins); code != 200 {
				t.Fatalf("router insert status %d", code)
			}
			if ins.Count != testN+int64(len(extra)) {
				t.Fatalf("router count %d after insert, want %d", ins.Count, testN+len(extra))
			}
			if code := postJSON(t, baseTS.URL+"/api/insert",
				server.InsertRequest{Build: baseBuild, Series: extra, Timestamps: tss}, nil); code != 200 {
				t.Fatalf("baseline insert status %d", code)
			}
			minTS, maxTS := int64(700), int64(800)
			for _, q := range qs[:3] {
				var want, got server.QueryResponse
				postJSON(t, baseTS.URL+"/api/query",
					server.QueryRequest{Build: baseBuild, Series: q, K: 5, Exact: true, MinTS: &minTS, MaxTS: &maxTS}, &want)
				postJSON(t, rts.URL+"/api/query",
					server.QueryRequest{Series: q, K: 5, Exact: true, MinTS: &minTS, MaxTS: &maxTS}, &got)
				sameHTTPResults(t, "windowed post-insert", got.Results, want.Results)
				for _, res := range got.Results {
					if res.TS < minTS || res.TS > maxTS {
						t.Fatalf("windowed result ts %d outside [%d, %d]", res.TS, minTS, maxTS)
					}
				}
				want = queryHTTP(t, baseTS.URL, baseBuild, q, 5, true, 0)
				got = queryHTTP(t, rts.URL, "", q, 5, true, 0)
				sameHTTPResults(t, "post-insert exact", got.Results, want.Results)
			}
		})
	}
}

// TestRouterReplicaFailover kills one of two full replicas mid-stream: the
// router retries onto the survivor and answers stay byte-identical; the
// dead node's state records the failures.
func TestRouterReplicaFailover(t *testing.T) {
	baseTS, baseBuild := startBaseline(t)
	shards := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}}
	a := startNode(t, 4, shards[0], nil)
	b := startNode(t, 4, shards[1], nil)
	r, err := New(topologyOf(4, []*testNode{a, b}, shards), Options{
		Timeout: 2 * time.Second, Retries: 2, Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	qs := testQueries(6)
	// Healthy run first.
	for _, q := range qs[:2] {
		want := queryHTTP(t, baseTS.URL, baseBuild, q, 5, true, 0)
		got, _, err := r.Search(q, 5, true, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameIndexResults(t, "pre-failover", got, want.Results)
	}

	a.ts.Close() // node dies
	for _, q := range qs {
		want := queryHTTP(t, baseTS.URL, baseBuild, q, 5, true, 0)
		got, _, err := r.Search(q, 5, true, nil, nil)
		if err != nil {
			t.Fatalf("post-failover search: %v", err)
		}
		sameIndexResults(t, "post-failover", got, want.Results)
	}
	var aFails int64
	for _, st := range r.NodeStatuses() {
		if st.Name == "a" {
			aFails = st.Fails
		}
	}
	if aFails == 0 {
		t.Fatal("dead node recorded no failures")
	}

	// With the only other replica gone too, queries fail loudly.
	b.ts.Close()
	if _, _, err := r.Search(qs[0], 5, true, nil, nil); err == nil {
		t.Fatal("search with all replicas dead should fail")
	}
}

func sameIndexResults(t *testing.T, label string, got []index.Result, want []server.QueryResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.TS != w.TS || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
			t.Fatalf("%s result %d: got (id %d, ts %d, dist %x), want (id %d, ts %d, dist %x)",
				label, i, g.ID, g.TS, math.Float64bits(g.Dist), w.ID, w.TS, math.Float64bits(w.Dist))
		}
	}
}

// TestRouterHedgedRequests blocks one replica's search path entirely: only
// hedging onto the other replica lets queries finish fast. Answers stay
// byte-identical and at least one hedge fires across the run.
func TestRouterHedgedRequests(t *testing.T) {
	baseTS, baseBuild := startBaseline(t)
	shards := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}}
	block := make(chan struct{})
	blocked := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/api/cluster/search" {
				<-block
			}
			next.ServeHTTP(w, r)
		})
	}
	a := startNode(t, 4, shards[0], blocked)
	t.Cleanup(func() { close(block) }) // registered after ts.Close -> runs first
	b := startNode(t, 4, shards[1], nil)
	r, err := New(topologyOf(4, []*testNode{a, b}, shards), Options{
		Timeout: 30 * time.Second, HedgeAfter: 20 * time.Millisecond, Retries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	var hedges int64
	start := time.Now()
	for _, q := range testQueries(4) {
		want := queryHTTP(t, baseTS.URL, baseBuild, q, 5, true, 0)
		got, stats, err := r.Search(q, 5, true, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameIndexResults(t, "hedged", got, want.Results)
		hedges += stats.Hedges
	}
	if hedges == 0 {
		t.Fatal("no hedges fired although one replica is blocked")
	}
	// Without hedging these queries would sit on the blocked replica until
	// the 30s timeout; well under that proves the hedge path answered.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("hedged queries took %s", elapsed)
	}
}

// TestRouterDrain checks graceful drain: a draining node gets no new
// queries (in-flight ones finish), a drained sole owner makes its shards
// unavailable, and undraining restores routing.
func TestRouterDrain(t *testing.T) {
	shards := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}}
	slow := make(chan struct{}, 16)
	delayed := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/api/cluster/search" {
				select {
				case <-slow:
					time.Sleep(120 * time.Millisecond)
				default:
				}
			}
			next.ServeHTTP(w, r)
		})
	}
	a := startNode(t, 4, shards[0], delayed)
	b := startNode(t, 4, shards[1], nil)
	r, err := New(topologyOf(4, []*testNode{a, b}, shards), Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	qs := testQueries(8)

	// In-flight queries finish across a drain: make node a slow, start a
	// query, drain a mid-flight, and require the answer.
	for i := 0; i < 8; i++ {
		slow <- struct{}{}
	}
	type res struct {
		n   int
		err error
	}
	done := make(chan res, 1)
	go func() {
		rs, _, err := r.Search(qs[0], 5, true, nil, nil)
		done <- res{len(rs), err}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := r.Drain("a"); err != nil {
		t.Fatal(err)
	}
	if got := <-done; got.err != nil || got.n == 0 {
		t.Fatalf("in-flight query across drain: %d results, err %v", got.n, got.err)
	}
	for len(slow) > 0 {
		<-slow
	}

	// While a drains, every query routes to b only.
	aBefore := a.searchCalls()
	for _, q := range qs {
		if _, _, err := r.Search(q, 5, true, nil, nil); err != nil {
			t.Fatalf("query during drain: %v", err)
		}
	}
	if got := a.searchCalls(); got != aBefore {
		t.Fatalf("draining node received %d new searches", got-aBefore)
	}
	var drained bool
	for _, st := range r.NodeStatuses() {
		if st.Name == "a" {
			drained = st.Draining
		}
	}
	if !drained {
		t.Fatal("status does not show node a draining")
	}

	// Draining the other replica too leaves shards uncovered: loud failure.
	if err := r.Drain("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Search(qs[0], 5, true, nil, nil); err == nil ||
		!strings.Contains(err.Error(), "no replica available") {
		t.Fatalf("search with all replicas draining: err = %v", err)
	}

	// Undrain restores service and routing to a.
	if err := r.Undrain("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Undrain("b"); err != nil {
		t.Fatal(err)
	}
	aBefore = a.searchCalls()
	for _, q := range qs {
		if _, _, err := r.Search(q, 5, true, nil, nil); err != nil {
			t.Fatalf("query after undrain: %v", err)
		}
	}
	if a.searchCalls() == aBefore {
		t.Fatal("undrained node got no traffic")
	}
}

// TestRouterInsertStaleReplica kills one replica and inserts: the write
// succeeds on the survivor, the dead replica is marked stale and leaves
// read rotation, and the count still advances.
func TestRouterInsertStaleReplica(t *testing.T) {
	baseTS, baseBuild := startBaseline(t)
	shards := [][]int{{0, 1, 2, 3}, {0, 1, 2, 3}}
	a := startNode(t, 4, shards[0], nil)
	b := startNode(t, 4, shards[1], nil)
	r, err := New(topologyOf(4, []*testNode{a, b}, shards), Options{
		Timeout: 2 * time.Second, Retries: 1, Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	b.ts.Close()
	extra := testQueries(6)
	tss := make([]int64, len(extra))
	for i := range tss {
		tss[i] = 900 + int64(i)
	}
	count, err := r.Insert(extra, tss)
	if err != nil {
		t.Fatalf("insert with one dead replica: %v", err)
	}
	if count != testN+int64(len(extra)) {
		t.Fatalf("count %d, want %d", count, testN+len(extra))
	}
	var bStale bool
	for _, st := range r.NodeStatuses() {
		if st.Name == "b" {
			bStale = st.Stale
		}
	}
	if !bStale {
		t.Fatal("dead replica not marked stale")
	}

	// Queries keep working off the survivor and reflect the insert,
	// byte-identical to the baseline with the same data.
	if code := postJSON(t, baseTS.URL+"/api/insert",
		server.InsertRequest{Build: baseBuild, Series: extra, Timestamps: tss}, nil); code != 200 {
		t.Fatalf("baseline insert status %d", code)
	}
	for _, q := range testQueries(3) {
		want := queryHTTP(t, baseTS.URL, baseBuild, q, 5, true, 0)
		got, _, err := r.Search(q, 5, true, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameIndexResults(t, "post-stale", got, want.Results)
	}

	// Losing the last replica of a shard is a reported data-loss error.
	a.ts.Close()
	if _, err := r.Insert(extra[:1], nil); err == nil ||
		!strings.Contains(err.Error(), "lost every replica") {
		t.Fatalf("insert with all replicas dead: err = %v", err)
	}
}

// TestRouterInsertBackpressure fills the admission window: the overflow
// batch is rejected with ErrBusy (HTTP 429 on the wire) and admitted work
// is unaffected.
func TestRouterInsertBackpressure(t *testing.T) {
	shards := [][]int{{0, 1, 2, 3}}
	gate := make(chan struct{})
	arrived := make(chan struct{})
	var once sync.Once
	slowInsert := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/api/cluster/insert" {
				once.Do(func() { close(arrived) })
				<-gate
			}
			next.ServeHTTP(w, r)
		})
	}
	a := startNode(t, 4, shards[0], slowInsert)
	t.Cleanup(func() { close(gate) })
	r, err := New(topologyOf(4, []*testNode{a}, shards), Options{
		Timeout: 30 * time.Second, MaxInflightInserts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	extra := testQueries(2)
	done := make(chan error, 1)
	go func() {
		_, err := r.Insert(extra[:1], nil)
		done <- err
	}()
	// Only try to overflow once the first batch provably occupies the
	// admission window (its HTTP write has reached the node).
	select {
	case <-arrived:
	case <-time.After(5 * time.Second):
		t.Fatal("first insert never reached the node")
	}
	if _, err := r.Insert(extra[1:], nil); !errors.Is(err, ErrBusy) {
		t.Fatalf("overflow insert: err = %v, want ErrBusy", err)
	}
	gate <- struct{}{} // let the first batch through
	if err := <-done; err != nil {
		t.Fatalf("admitted insert: %v", err)
	}
	// With the window free again, inserts are admitted (gate stays open
	// enough: feed one token per request).
	go func() { gate <- struct{}{} }()
	if _, err := r.Insert(extra[1:], nil); err != nil {
		t.Fatalf("post-backpressure insert: %v", err)
	}
}

// TestRouterStartupStrictness: a router must refuse to serve over a
// topology it cannot verify.
func TestRouterStartupStrictness(t *testing.T) {
	a := startNode(t, 4, []int{0, 1}, nil)
	// Topology claims a shard the node does not hold.
	topo := topologyOf(4, []*testNode{a}, [][]int{{0, 1, 2, 3}})
	if _, err := New(topo, Options{Timeout: time.Second}); err == nil ||
		!strings.Contains(err.Error(), "does not hold shard") {
		t.Fatalf("mismatched topology: err = %v", err)
	}
	// Unreachable node.
	topo = Topology{Shards: 2, SeriesLen: testLen, Nodes: []Node{
		{Name: "gone", URL: "http://127.0.0.1:1", Build: "b", Shards: []int{0, 1}},
	}}
	if _, err := New(topo, Options{Timeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("unreachable node accepted")
	}
	// Wrong series length: topology is internally valid but disagrees
	// with what the node actually serves.
	b := startNode(t, 2, []int{0, 1}, nil)
	topo = topologyOf(2, []*testNode{b}, [][]int{{0, 1}})
	topo.SeriesLen = 64
	if _, err := New(topo, Options{Timeout: time.Second}); err == nil ||
		!strings.Contains(err.Error(), "series") {
		t.Fatalf("series length mismatch: err = %v", err)
	}
}

func TestTopologyValidate(t *testing.T) {
	valid := Topology{Shards: 2, SeriesLen: 32, Nodes: []Node{
		{Name: "a", URL: "http://x:1", Build: "b", Shards: []int{0}},
		{Name: "b", URL: "http://x:2", Build: "b", Shards: []int{1}},
	}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
	if got := valid.MinReplication(); got != 1 {
		t.Fatalf("MinReplication = %d, want 1", got)
	}
	for _, tc := range []struct {
		name   string
		mut    func(*Topology)
		substr string
	}{
		{"no shards", func(tp *Topology) { tp.Shards = 0 }, "shards"},
		{"no nodes", func(tp *Topology) { tp.Nodes = nil }, "no nodes"},
		{"dup name", func(tp *Topology) { tp.Nodes[1].Name = "a" }, "duplicate"},
		{"bad url", func(tp *Topology) { tp.Nodes[0].URL = "::" }, "URL"},
		{"no build", func(tp *Topology) { tp.Nodes[0].Build = "" }, "build"},
		{"shard out of range", func(tp *Topology) { tp.Nodes[0].Shards = []int{5} }, "outside"},
		{"shard twice", func(tp *Topology) { tp.Nodes[0].Shards = []int{0, 0} }, "twice"},
		{"uncovered shard", func(tp *Topology) { tp.Nodes[1].Shards = []int{0} }, "covered by no node"},
		{"no series len", func(tp *Topology) { tp.SeriesLen = 0 }, "series_len"},
	} {
		tp := valid
		tp.Nodes = append([]Node(nil), valid.Nodes...)
		tc.mut(&tp)
		if err := tp.Validate(); err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.substr)
		}
	}
}

func TestLoadTopology(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "topo.json")
	good := `{"shards": 1, "series_len": 32, "nodes": [{"name": "a", "url": "http://x:1", "build": "b", "shards": [0]}]}`
	if err := os.WriteFile(path, []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Shards != 1 || len(topo.Nodes) != 1 {
		t.Fatalf("topology = %+v", topo)
	}
	if _, err := LoadTopology(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	os.WriteFile(path, []byte("{"), 0o644)
	if _, err := LoadTopology(path); err == nil {
		t.Fatal("bad JSON accepted")
	}
	os.WriteFile(path, []byte(`{"shards": 0, "series_len": 32, "nodes": []}`), 0o644)
	if _, err := LoadTopology(path); err == nil {
		t.Fatal("invalid topology accepted")
	}
}
