package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestRouterMetricsAndTrace drives queries through a 2-node router and
// checks the observability surface: /metrics exposes routed counters and
// per-node health, and ?trace=1 attaches the router's fan-out trace while
// leaving untraced responses node-shaped.
func TestRouterMetricsAndTrace(t *testing.T) {
	n1 := startNode(t, 2, []int{0, 1}, nil)
	n2 := startNode(t, 2, []int{0, 1}, nil)
	topo := topologyOf(2, []*testNode{n1, n2}, [][]int{{0, 1}, {0, 1}})
	r, err := New(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	rts := httptest.NewServer(r.Handler())
	t.Cleanup(rts.Close)

	q := testQueries(1)[0]
	reqBody, err := json.Marshal(server.QueryRequest{Series: q, K: 3, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	// Untraced query: the raw response body must carry no router_trace key
	// — untraced clients see exactly the single-node response shape.
	resp, err := http.Post(rts.URL+"/api/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	if strings.Contains(string(body), "router_trace") {
		t.Fatalf("untraced response carries router_trace: %s", body)
	}
	// Traced query via ?trace=1.
	var traced struct {
		server.QueryResponse
		RouterTrace *RouterTrace `json:"router_trace"`
	}
	if code := postJSON(t, rts.URL+"/api/query?trace=1",
		server.QueryRequest{Series: q, K: 3, Exact: true}, &traced); code != http.StatusOK {
		t.Fatalf("traced query status %d", code)
	}
	if traced.RouterTrace == nil {
		t.Fatal("?trace=1 returned no router_trace")
	}
	if traced.RouterTrace.Calls < 1 {
		t.Fatalf("router trace records %d calls", traced.RouterTrace.Calls)
	}
	if traced.RouterTrace.Cost != traced.Cost {
		t.Fatalf("router trace cost %v != response cost %v", traced.RouterTrace.Cost, traced.Cost)
	}

	mresp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	text := string(mbody)
	for _, want := range []string{
		`coconut_router_queries_total{mode="exact"} 2`,
		`coconut_router_query_latency_seconds_count{mode="exact"} 2`,
		"coconut_router_traced_queries_total 1",
		"coconut_router_node_calls_total",
		`coconut_router_node_healthy{node="a"} 1`,
		`coconut_router_node_healthy{node="b"} 1`,
		"coconut_router_shards 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}
