package clsm

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/wal"
)

// The crash-recovery harness: build a durable LSM, acknowledge N inserts,
// then "crash" — drop the in-memory LSM entirely, keeping only the disk
// (runs + persisted manifest) and the WAL directory — and Recover. Every
// acknowledged insert must be searchable afterwards.

func durableLSM(t *testing.T, disk *storage.Disk, dir string, ds *series.Dataset, bufEntries int) (*LSM, *wal.Log) {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(Options{
		Disk:               disk,
		Config:             testConfig(false),
		GrowthFactor:       3,
		BufferEntries:      bufEntries,
		Raw:                normStore{ds},
		WAL:                w,
		TruncateWALOnFlush: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, w
}

func recoverLSM(t *testing.T, disk *storage.Disk, dir string, ds *series.Dataset, bufEntries int) (*LSM, *wal.Log) {
	t.Helper()
	w, err := wal.Open(wal.Options{Dir: dir, SegmentBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	l, err := Recover(Options{
		Disk:               disk,
		Config:             testConfig(false),
		GrowthFactor:       3,
		BufferEntries:      bufEntries,
		Raw:                normStore{ds},
		WAL:                w,
		TruncateWALOnFlush: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l, w
}

func assertAllSearchable(t *testing.T, l *LSM, ds *series.Dataset, n int, trials int, seed int64) {
	t.Helper()
	if got := l.Count(); got != int64(n) {
		t.Fatalf("recovered count = %d, want %d", got, n)
	}
	// Exact searches must agree with brute force over the acknowledged set
	// — i.e. every acknowledged entry is reachable with its right distance.
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(false))
		want := bruteKNNFirst(q, ds, n, 5)
		got, err := l.ExactSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d result %d: %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// bruteKNNFirst is bruteKNN restricted to the first n series (the
// acknowledged prefix).
func bruteKNNFirst(q index.Query, ds *series.Dataset, n, k int) []index.Result {
	col := index.NewCollector(k)
	for id := 0; id < n; id++ {
		s, _ := ds.Get(id)
		col.Add(index.Result{ID: int64(id), Dist: math.Sqrt(q.Norm.SqDist(s.ZNormalize()))})
	}
	return col.Results()
}

func TestCrashRecoveryAfterNInserts(t *testing.T) {
	ds := makeDataset(700, 41)
	for _, n := range []int{1, 37, 260, 700} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			disk := storage.NewDisk(0)
			dir := t.TempDir()
			l, w := durableLSM(t, disk, dir, ds, 64)
			for id := 0; id < n; id++ {
				s, _ := ds.Get(id)
				if err := l.Insert(s, int64(id)); err != nil {
					t.Fatal(err)
				}
			}
			// The acknowledgement boundary: force the group commit out.
			if err := w.Sync(); err != nil {
				t.Fatal(err)
			}
			// Crash: the LSM struct (and its buffer) is gone; only disk +
			// WAL survive. The log object is abandoned un-closed, as a real
			// crash would leave it.
			l = nil
			rec, w2 := recoverLSM(t, disk, dir, ds, 64)
			defer w2.Close()
			assertAllSearchable(t, rec, ds, n, 6, int64(n))
		})
	}
}

func TestCrashRecoveryTruncatedWALOnlyReplaysTail(t *testing.T) {
	// With TruncateWALOnFlush, flushed entries leave the log; recovery must
	// come from the persisted manifest plus only the buffered tail.
	ds := makeDataset(500, 42)
	disk := storage.NewDisk(0)
	dir := t.TempDir()
	l, w := durableLSM(t, disk, dir, ds, 64)
	for id := 0; id < 500; id++ {
		s, _ := ds.Get(id)
		if err := l.Insert(s, int64(id)); err != nil {
			t.Fatal(err)
		}
	}
	w.Sync()
	st := w.Stats()
	if st.FirstLSN == 0 {
		t.Fatal("expected flush-time truncation to advance FirstLSN")
	}
	if st.FirstLSN > st.NextLSN {
		t.Fatalf("FirstLSN %d beyond NextLSN %d", st.FirstLSN, st.NextLSN)
	}
	rec, w2 := recoverLSM(t, disk, dir, ds, 64)
	defer w2.Close()
	assertAllSearchable(t, rec, ds, 500, 6, 4242)
	// Recovery replayed only the un-flushed tail: the buffer holds at most
	// one flush interval's worth.
	if got := len(rec.buffer); got >= 64 {
		t.Fatalf("recovered buffer holds %d entries, want < 64", got)
	}
}

func TestCrashRecoveryTornTailSegment(t *testing.T) {
	// A crash mid-append leaves a torn frame at the log's tail; replay must
	// tolerate it and recover every entry before the tear.
	ds := makeDataset(200, 43)
	disk := storage.NewDisk(0)
	dir := t.TempDir()
	l, w := durableLSM(t, disk, dir, ds, 1024) // no flush: all 200 in the WAL tail
	for id := 0; id < 200; id++ {
		s, _ := ds.Get(id)
		if err := l.Insert(s, int64(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail by hand: a frame header promising more bytes than
	// follow, exactly what an interrupted append leaves behind.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("wal dir: %v %d", err, len(entries))
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	tail := filepath.Join(dir, names[len(names)-1])
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xaa, 0xbb, 0xcc}) // torn frame
	f.Close()

	rec, w2 := recoverLSM(t, disk, dir, ds, 1024)
	defer w2.Close()
	assertAllSearchable(t, rec, ds, 200, 6, 99)
	// The log keeps working past the tear.
	s, _ := ds.Get(0)
	if err := rec.Insert(s, 200); err != nil {
		t.Fatal(err)
	}
	if rec.Count() != 201 {
		t.Fatalf("count after post-recovery insert = %d", rec.Count())
	}
}

func TestRecoverFreshDirIsEmpty(t *testing.T) {
	disk := storage.NewDisk(0)
	ds := makeDataset(1, 44)
	rec, w := recoverLSM(t, disk, t.TempDir(), ds, 64)
	defer w.Close()
	if rec.Count() != 0 {
		t.Fatalf("fresh recovery count = %d", rec.Count())
	}
}

func TestRecoveryIsRepeatable(t *testing.T) {
	// Crashing again right after recovery must land in the same state:
	// recovery's own flushes persist manifests and truncate the log.
	ds := makeDataset(300, 45)
	disk := storage.NewDisk(0)
	dir := t.TempDir()
	l, w := durableLSM(t, disk, dir, ds, 32)
	for id := 0; id < 300; id++ {
		s, _ := ds.Get(id)
		l.Insert(s, int64(id))
	}
	w.Sync()
	for round := 0; round < 3; round++ {
		rec, w2 := recoverLSM(t, disk, dir, ds, 32)
		assertAllSearchable(t, rec, ds, 300, 3, int64(round))
		w2.Close()
	}
}

func TestDurableMatchesNonDurable(t *testing.T) {
	// The WAL must not change what the index contains: a durable LSM and a
	// plain one fed the same inserts answer identically.
	ds := makeDataset(400, 46)
	plain, _ := buildLSM(t, ds, false, 3, 64)
	disk := storage.NewDisk(0)
	durable, w := durableLSM(t, disk, t.TempDir(), ds, 64)
	defer w.Close()
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		if err := durable.Insert(s, int64(id)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 8; trial++ {
		q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(false))
		want, err := plain.ExactSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := durable.ExactSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d result %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}
