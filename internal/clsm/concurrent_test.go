package clsm

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/compact"
	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
)

// backgroundLSM builds an LSM whose merges run on a scheduler.
func backgroundLSM(t *testing.T, ds *series.Dataset, sched *compact.Scheduler, growth, bufEntries int) *LSM {
	t.Helper()
	l, err := New(Options{
		Disk:          storage.NewDisk(0),
		Config:        testConfig(false),
		GrowthFactor:  growth,
		BufferEntries: bufEntries,
		Raw:           normStore{ds},
		Scheduler:     sched,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func sameExact(t *testing.T, tag string, a, b []index.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", tag, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s result %d: %+v vs %+v", tag, i, a[i], b[i])
		}
	}
}

func TestBackgroundCompactionMatchesInline(t *testing.T) {
	// Same inserts through inline cascades and through background jobs must
	// produce identical answers, and a quiesced background LSM must satisfy
	// the tiering invariant exactly like the inline one.
	ds := makeDataset(900, 51)
	inline, _ := buildLSM(t, ds, false, 3, 48)
	sched := compact.NewScheduler(2)
	defer sched.Close()
	bg := backgroundLSM(t, ds, sched, 3, 48)
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		if err := bg.Insert(s, int64(id)); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-compaction searches already answer identically...
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 6; trial++ {
		q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(false))
		want, err := inline.ExactSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bg.ExactSearch(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		sameExact(t, "mid-compaction", want, got)
	}
	// ...and after quiescing, the structure converges to the invariant.
	if err := bg.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for lvl, runs := range bg.cur.Load().man.levels {
		if len(runs) >= 3 {
			t.Fatalf("quiesced level %d holds %d runs, growth factor 3", lvl, len(runs))
		}
	}
	if bg.Merges() == 0 {
		t.Fatal("background path performed no merges")
	}
	if st := bg.CompactionStats(); !st.Background || st.Pending {
		t.Fatalf("compaction stats after quiesce: %+v", st)
	}
}

func TestConcurrentInsertSearchMerge(t *testing.T) {
	// The tentpole guarantee: searches overlapping inserts, flushes, and
	// background merges return results byte-identical to a quiesced copy of
	// the same data. Established data carries ts=0 and concurrent inserts
	// carry ts=1, so a ts-windowed query pins the comparable set while the
	// structure churns underneath it.
	ds := makeDataset(800, 52)
	extra := makeDataset(400, 53)

	quiesced, err := New(Options{
		Disk: storage.NewDisk(0), Config: testConfig(false),
		GrowthFactor: 3, BufferEntries: 32, Raw: normStore{ds},
	})
	if err != nil {
		t.Fatal(err)
	}
	sched := compact.NewScheduler(2)
	defer sched.Close()
	live := backgroundLSM(t, ds, sched, 3, 32)
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		if err := quiesced.Insert(s, 0); err != nil {
			t.Fatal(err)
		}
		if err := live.Insert(s, 0); err != nil {
			t.Fatal(err)
		}
	}

	const queries = 40
	rng := rand.New(rand.NewSource(52))
	qs := make([]index.Query, queries)
	want := make([][]index.Result, queries)
	for i := range qs {
		qs[i] = index.NewQuery(gen.RandomWalk(rng, 64), testConfig(false)).WithWindow(0, 0)
		var err error
		want[i], err = quiesced.ExactSearch(qs[i].WithWindow(0, 0), 5)
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	// Writer: a bounded stream of ts=1 inserts (three buffer generations'
	// worth), forcing flushes and background merges while the searchers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 4; round++ {
			for id := 0; id < extra.Count(); id++ {
				s, _ := extra.Get(id)
				if err := live.Insert(s, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	// Searchers: windowed exact queries must match the quiesced reference
	// byte for byte, every time.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 15; round++ {
				i := (w*7 + round) % queries
				got, err := live.ExactSearch(qs[i], 5)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got) != len(want[i]) {
					t.Errorf("query %d: %d vs %d results", i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j] != want[i][j] {
						t.Errorf("query %d result %d: %+v vs %+v", i, j, got[j], want[i][j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := live.Quiesce(); err != nil {
		t.Fatal(err)
	}
}

func TestQuiesceAfterSchedulerClose(t *testing.T) {
	// A closed scheduler must not strand over-full levels (or spin
	// Quiesce): the remaining merges finish inline.
	ds := makeDataset(600, 56)
	sched := compact.NewScheduler(1)
	l := backgroundLSM(t, ds, sched, 3, 32)
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		if err := l.Insert(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := sched.Close(); err != nil {
		t.Fatal(err)
	}
	// Force an over-full level after the close: flushes still work, their
	// background submission fails silently, and Quiesce must finish the
	// job inline rather than looping.
	more := makeDataset(200, 57)
	for id := 0; id < more.Count(); id++ {
		s, _ := more.Get(id)
		if err := l.Insert(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Quiesce(); err != nil {
		t.Fatal(err)
	}
	for lvl, runs := range l.cur.Load().man.levels {
		if len(runs) >= 3 {
			t.Fatalf("level %d holds %d runs after quiesce over a closed scheduler", lvl, len(runs))
		}
	}
}

func TestObsoleteRunsReclaimedAfterUnpin(t *testing.T) {
	// A search pinned to a pre-merge manifest keeps the victim run files
	// alive; once it unpins, the files go (and with them any cached pages,
	// via the disk's invalidation hooks).
	ds := makeDataset(600, 54)
	l, disk := buildLSM(t, ds, false, 3, 32)

	v := l.pinView()
	before := len(disk.Files())
	runsBefore := v.man.runsIn()

	// Force merges: more inserts cascade the levels while v stays pinned.
	more := makeDataset(600, 55)
	for id := 0; id < more.Count(); id++ {
		s, _ := more.Get(id)
		if err := l.Insert(s, 0); err != nil {
			t.Fatal(err)
		}
	}
	if l.cur.Load().man == v.man {
		t.Fatal("expected manifest swaps while pinned")
	}
	// Victim files of every transition since v must still exist: v's runs
	// are all readable.
	for _, r := range allRuns(v.man) {
		if !disk.Exists(r.file) {
			t.Fatalf("run %q reclaimed while pinned", r.file)
		}
	}
	if runsBefore == 0 || before == 0 {
		t.Fatal("test needs a non-empty pinned manifest")
	}
	st := l.CompactionStats()
	if st.RetainedManifests < 2 {
		t.Fatalf("retained manifests = %d, want >= 2 while pinned", st.RetainedManifests)
	}
	l.unpinView(v)
	st = l.CompactionStats()
	if st.RetainedManifests != 1 {
		t.Fatalf("retained manifests = %d after unpin, want 1", st.RetainedManifests)
	}
	if st.ReclaimedRuns == 0 {
		t.Fatal("no obsolete runs reclaimed after unpin")
	}
	// Everything the current manifest references exists; nothing dangling.
	for _, r := range allRuns(l.cur.Load().man) {
		if !disk.Exists(r.file) {
			t.Fatalf("live run %q missing", r.file)
		}
	}
}
