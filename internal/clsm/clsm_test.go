package clsm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
)

func testConfig(materialized bool) index.Config {
	return index.Config{SeriesLen: 64, Segments: 8, Bits: 8, Materialized: materialized}
}

type normStore struct{ d *series.Dataset }

func (n normStore) Get(id int) (series.Series, error) {
	s, err := n.d.Get(id)
	if err != nil {
		return nil, err
	}
	return s.ZNormalize(), nil
}
func (n normStore) Count() int { return n.d.Count() }

func makeDataset(n int, seed int64) *series.Dataset {
	d := series.NewDataset(64)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		d.Append(gen.RandomWalk(rng, 64))
	}
	return d
}

func buildLSM(t *testing.T, ds *series.Dataset, materialized bool, growth, bufEntries int) (*LSM, *storage.Disk) {
	t.Helper()
	disk := storage.NewDisk(0)
	l, err := New(Options{
		Disk:          disk,
		Config:        testConfig(materialized),
		GrowthFactor:  growth,
		BufferEntries: bufEntries,
		Raw:           normStore{ds},
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		if err := l.Insert(s, int64(id)); err != nil {
			t.Fatal(err)
		}
	}
	return l, disk
}

func bruteKNN(q series.Series, ds *series.Dataset, k int) []index.Result {
	col := index.NewCollector(k)
	zq := q.ZNormalize()
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		col.Add(index.Result{ID: int64(id), Dist: math.Sqrt(zq.SqDist(s.ZNormalize()))})
	}
	return col.Results()
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("missing disk should fail")
	}
	d := storage.NewDisk(0)
	if _, err := New(Options{Disk: d, Config: testConfig(false), GrowthFactor: 1}); err == nil {
		t.Fatal("growth factor 1 should fail")
	}
	if _, err := New(Options{Disk: d, Config: testConfig(false), BufferEntries: -1}); err == nil {
		t.Fatal("negative buffer should fail")
	}
	if _, err := New(Options{Disk: d, Config: index.Config{}}); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestNameAndCounters(t *testing.T) {
	ds := makeDataset(10, 1)
	l, _ := buildLSM(t, ds, false, 4, 100)
	if l.Name() != "CLSM" {
		t.Fatalf("name = %q", l.Name())
	}
	if l.Count() != 10 {
		t.Fatalf("count = %d", l.Count())
	}
	lm, _ := buildLSM(t, ds, true, 4, 100)
	if lm.Name() != "CLSMFull" {
		t.Fatalf("materialized name = %q", lm.Name())
	}
}

func TestFlushAndMergeCascade(t *testing.T) {
	ds := makeDataset(1000, 2)
	l, _ := buildLSM(t, ds, false, 4, 50) // 20 flushes -> cascading merges
	if l.Flushes() != 20 {
		t.Fatalf("flushes = %d, want 20", l.Flushes())
	}
	if l.Merges() == 0 {
		t.Fatal("expected merges")
	}
	// Tiering invariant: every level has fewer than GrowthFactor runs.
	for lvl, runs := range l.cur.Load().man.levels {
		if len(runs) >= 4 {
			t.Fatalf("level %d holds %d runs, growth factor 4", lvl, len(runs))
		}
	}
	if l.Depth() < 2 {
		t.Fatalf("depth = %d, want >= 2 after 20 flushes", l.Depth())
	}
	// Total entries across runs + buffer must equal count.
	var total int64
	for _, r := range allRuns(l.cur.Load().man) {
		total += r.count
	}
	total += int64(len(l.buffer))
	if total != 1000 {
		t.Fatalf("entries across runs+buffer = %d, want 1000", total)
	}
}

func TestGrowthFactorControlsRunCount(t *testing.T) {
	ds := makeDataset(2000, 3)
	small, _ := buildLSM(t, ds, false, 2, 50)  // aggressive merging, few runs
	large, _ := buildLSM(t, ds, false, 10, 50) // lazy merging, many runs
	if small.Runs() >= large.Runs() {
		t.Fatalf("T=2 runs %d >= T=10 runs %d", small.Runs(), large.Runs())
	}
	if small.Merges() <= large.Merges() {
		t.Fatalf("T=2 merges %d <= T=10 merges %d", small.Merges(), large.Merges())
	}
}

func TestExactSearchMatchesBruteForce(t *testing.T) {
	ds := makeDataset(600, 4)
	for _, mat := range []bool{false, true} {
		l, _ := buildLSM(t, ds, mat, 3, 64)
		rng := rand.New(rand.NewSource(40))
		for trial := 0; trial < 15; trial++ {
			q := gen.RandomWalk(rng, 64)
			want := bruteKNN(q, ds, 5)
			got, err := l.ExactSearch(index.NewQuery(q, testConfig(mat)), 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("mat=%v trial %d: %d results, want %d", mat, trial, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("mat=%v trial %d result %d: %v vs %v", mat, trial, i, got[i].Dist, want[i].Dist)
				}
			}
		}
	}
}

func TestExactSearchSeesBufferedEntries(t *testing.T) {
	// Entries still in the write buffer (never flushed) must be findable.
	ds := makeDataset(10, 5)
	l, _ := buildLSM(t, ds, false, 4, 1000) // buffer never fills
	if l.Flushes() != 0 {
		t.Fatal("expected no flushes")
	}
	s, _ := ds.Get(7)
	got, err := l.ExactSearch(index.NewQuery(s, testConfig(false)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 7 || got[0].Dist > 1e-9 {
		t.Fatalf("buffered entry not found: %+v", got)
	}
}

func TestApproxSearchFindsNearDuplicates(t *testing.T) {
	ds := makeDataset(800, 6)
	l, _ := buildLSM(t, ds, true, 4, 64)
	rng := rand.New(rand.NewSource(60))
	hits := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		id := rng.Intn(ds.Count())
		base, _ := ds.Get(id)
		q := gen.Add(base, gen.Noise(rng, 64, 0.001))
		got, err := l.ApproxSearch(index.NewQuery(q, testConfig(true)), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 1 && got[0].ID == int64(id) {
			hits++
		}
	}
	if hits < trials/2 {
		t.Errorf("approx found planted neighbor %d/%d", hits, trials)
	}
}

func TestWindowedSearch(t *testing.T) {
	ds := makeDataset(300, 7)
	l, _ := buildLSM(t, ds, false, 4, 32) // TS = insertion id
	s, _ := ds.Get(100)
	q := index.NewQuery(s, testConfig(false))
	got, err := l.ExactSearch(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].ID != 100 {
		t.Fatalf("unwindowed best = %+v", got[0])
	}
	got, err = l.ExactSearch(q.WithWindow(200, 299), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].TS < 200 || got[0].TS > 299 {
		t.Fatalf("windowed result %+v", got)
	}
}

func TestIngestIsSequentialIO(t *testing.T) {
	ds := makeDataset(5000, 8)
	disk := storage.NewDisk(0)
	// A realistically sized write buffer (8 pages per run) keeps the flush
	// and merge streams long relative to the seeks between them.
	l, err := New(Options{Disk: disk, Config: testConfig(false), GrowthFactor: 4, BufferEntries: 1024, Raw: normStore{ds}})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		if err := l.Insert(s, int64(id)); err != nil {
			t.Fatal(err)
		}
	}
	st := disk.Stats()
	seq := st.SeqReads + st.SeqWrites
	rnd := st.RandReads + st.RandWrites
	// Merges seek once per input run (a random read each); everything else
	// is streaming, so sequential I/O must still dominate clearly.
	if seq < 5*rnd {
		t.Errorf("ingest I/O %d sequential vs %d random; log-structured writes should dominate", seq, rnd)
	}
}

func TestFlushIdempotentOnEmpty(t *testing.T) {
	d := storage.NewDisk(0)
	l, _ := New(Options{Disk: d, Config: testConfig(false)})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Flushes() != 0 {
		t.Fatal("empty flush should not count")
	}
}

func TestSearchEmptyLSM(t *testing.T) {
	d := storage.NewDisk(0)
	l, _ := New(Options{Disk: d, Config: testConfig(false)})
	q := index.NewQuery(make(series.Series, 64), testConfig(false))
	got, err := l.ExactSearch(q, 3)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty search: %v %v", got, err)
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	ds := makeDataset(500, 60)
	l, _ := buildLSM(t, ds, true, 3, 64)
	rng := rand.New(rand.NewSource(600))
	for trial := 0; trial < 8; trial++ {
		q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(true))
		for _, eps := range []float64{6, 10} {
			col := index.NewRangeCollector(eps)
			for id := 0; id < ds.Count(); id++ {
				s, _ := ds.Get(id)
				col.Add(index.Result{ID: int64(id), Dist: math.Sqrt(q.Norm.SqDist(s.ZNormalize()))})
			}
			want := col.Results()
			got, err := l.RangeSearch(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("eps=%v: %d results, want %d", eps, len(got), len(want))
			}
			for i := range want {
				if got[i].ID != want[i].ID {
					t.Fatalf("eps=%v result %d: %+v vs %+v", eps, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	ds := makeDataset(700, 70)
	for _, mat := range []bool{false, true} {
		l, disk := buildLSM(t, ds, mat, 3, 64)
		if err := l.Save(); err != nil {
			t.Fatal(err)
		}
		got, err := Open(disk, "clsm", normStore{ds})
		if err != nil {
			t.Fatal(err)
		}
		if got.Count() != l.Count() || got.Runs() != l.Runs() || got.Depth() != l.Depth() {
			t.Fatalf("mat=%v: reopened count=%d runs=%d depth=%d, want %d/%d/%d",
				mat, got.Count(), got.Runs(), got.Depth(), l.Count(), l.Runs(), l.Depth())
		}
		rng := rand.New(rand.NewSource(700))
		for trial := 0; trial < 8; trial++ {
			q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(mat))
			want, err := l.ExactSearch(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			have, err := got.ExactSearch(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if want[i].ID != have[i].ID || math.Abs(want[i].Dist-have[i].Dist) > 1e-12 {
					t.Fatalf("mat=%v trial %d: %+v vs %+v", mat, trial, want[i], have[i])
				}
			}
		}
		// Reopened LSM keeps ingesting with fresh IDs and consistent state.
		s, _ := ds.Get(0)
		if err := got.Insert(s, 99); err != nil {
			t.Fatal(err)
		}
		if got.Count() != l.Count()+1 {
			t.Fatalf("count after insert = %d", got.Count())
		}
	}
}

func TestOpenErrors(t *testing.T) {
	d := storage.NewDisk(0)
	if _, err := Open(nil, "x", nil); err == nil {
		t.Fatal("nil disk should fail")
	}
	if _, err := Open(d, "missing", nil); err == nil {
		t.Fatal("missing meta should fail")
	}
	d.Create("bad.meta")
	d.AppendPage("bad.meta", []byte("WRONGMAG000000000000"))
	if _, err := Open(d, "bad", nil); err == nil {
		t.Fatal("bad magic should fail")
	}
}

func TestOpenDetectsMissingRun(t *testing.T) {
	ds := makeDataset(300, 71)
	l, disk := buildLSM(t, ds, false, 3, 64)
	if err := l.Save(); err != nil {
		t.Fatal(err)
	}
	// Remove one run file.
	for _, f := range disk.Files() {
		if f != "clsm.meta" {
			disk.Remove(f)
			break
		}
	}
	if _, err := Open(disk, "clsm", normStore{ds}); err == nil {
		t.Fatal("missing run should fail")
	}
}
