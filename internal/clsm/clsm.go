// Package clsm implements CoconutLSM (CLSM), the write-optimized index of
// the Coconut infrastructure: a log-structured merge-tree over sortable
// summarizations. Incoming series accumulate in an in-memory buffer; each
// flush writes a sorted run with sequential I/O, and runs of the same level
// are sort-merged once the growth factor's worth of them accumulate
// (tiering). The growth factor is the read/write knob the demo exposes:
// larger T means fewer, cheaper merges (faster ingest) but more runs to
// inspect per query.
package clsm

import (
	"fmt"
	"sort"

	"repro/internal/extsort"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/record"
	"repro/internal/series"
	"repro/internal/storage"
)

// Options configures a CLSM index.
type Options struct {
	Disk   *storage.Disk
	Name   string       // file name prefix
	Config index.Config // summarization shape; Materialized selects CLSMFull
	// GrowthFactor T: runs per level tolerated before they are merged into
	// the next level. Default 4.
	GrowthFactor int
	// BufferEntries is the in-memory write buffer capacity. Default 1024.
	BufferEntries int
	// Raw is consulted by non-materialized searches. Series inserted into
	// the index must appear in Raw at the same IDs (insertion order,
	// starting at 0). When Parallelism exceeds 1, Raw must be safe for
	// concurrent Get calls.
	Raw series.RawStore
	// Reader serves every page read of the run files during search. nil
	// selects the Disk itself (uncached); pass a buffer pool over the same
	// disk to serve hot run pages from memory. Writes (flushes, merges)
	// always go to Disk, which invalidates through any attached pool.
	Reader storage.PageReader
	// Parallelism bounds the worker goroutines a single search uses to
	// probe on-disk runs concurrently. 1 keeps the serial path; values <= 0
	// select GOMAXPROCS. Results are identical at every setting: each
	// worker collects into its own deterministic top-k collector and the
	// per-worker results merge into the same answer the serial scan
	// produces.
	Parallelism int
}

func (o *Options) setDefaults() error {
	if o.Disk == nil {
		return fmt.Errorf("clsm: Disk is required")
	}
	if o.Name == "" {
		o.Name = "clsm"
	}
	if err := o.Config.Validate(); err != nil {
		return err
	}
	if o.GrowthFactor == 0 {
		o.GrowthFactor = 4
	}
	if o.GrowthFactor < 2 {
		return fmt.Errorf("clsm: GrowthFactor must be >= 2, got %d", o.GrowthFactor)
	}
	if o.BufferEntries == 0 {
		o.BufferEntries = 1024
	}
	if o.BufferEntries < 1 {
		return fmt.Errorf("clsm: BufferEntries must be positive, got %d", o.BufferEntries)
	}
	if o.Reader == nil {
		o.Reader = o.Disk
	}
	return nil
}

// run is one sorted run on disk.
type run struct {
	file  string
	count int64
}

// LSM is a CoconutLSM index.
type LSM struct {
	opts   Options
	codec  record.Codec
	buffer []record.Entry // unsorted in-memory write buffer
	levels [][]run        // levels[l] = runs at level l, oldest first
	seq    int            // run file name counter
	count  int64
	nextID int64
	// Write-amplification accounting.
	flushes int64
	merges  int64
	pool    *parallel.Pool
}

// New creates an empty CLSM index.
func New(opts Options) (*LSM, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = parallel.Resolve(opts.Parallelism)
	}
	l := &LSM{
		opts:  opts,
		codec: opts.Config.Codec(),
		pool:  parallel.New(opts.Parallelism),
	}
	if l.codec.Size() > opts.Disk.PageSize() {
		return nil, fmt.Errorf("clsm: entry size %d exceeds page size %d", l.codec.Size(), opts.Disk.PageSize())
	}
	return l, nil
}

// Name implements index.Index; "CLSM" or "CLSMFull" when materialized.
func (l *LSM) Name() string {
	if l.opts.Config.Materialized {
		return "CLSMFull"
	}
	return "CLSM"
}

// Count returns the number of indexed series (buffered included).
func (l *LSM) Count() int64 { return l.count }

// SetParallelism re-sizes the search worker pool (n <= 0 selects
// GOMAXPROCS; 1 is serial). Parallelism is not persisted, so reopened
// indexes default to GOMAXPROCS — call this after Open to restore a serial
// configuration. Call only while no search is in flight.
func (l *LSM) SetParallelism(n int) { l.pool = parallel.New(n) }

// UseReader routes subsequent page reads through r — typically a buffer
// pool over the LSM's disk (nil restores the uncached disk). Like
// SetParallelism it is not persisted; call after Open to re-attach a
// cache. Call only while no search is in flight.
func (l *LSM) UseReader(r storage.PageReader) {
	if r == nil {
		r = l.opts.Disk
	}
	l.opts.Reader = r
}

// Config returns the summarization configuration the LSM was created with.
func (l *LSM) Config() index.Config { return l.opts.Config }

// Runs returns the current number of on-disk runs.
func (l *LSM) Runs() int {
	n := 0
	for _, lvl := range l.levels {
		n += len(lvl)
	}
	return n
}

// Depth returns the number of levels currently holding runs.
func (l *LSM) Depth() int { return len(l.levels) }

// Flushes returns how many buffer flushes have occurred.
func (l *LSM) Flushes() int64 { return l.flushes }

// Merges returns how many run merges have occurred.
func (l *LSM) Merges() int64 { return l.merges }

// Insert adds one series with the given ingestion timestamp. IDs are
// assigned in insertion order starting at 0.
func (l *LSM) Insert(s series.Series, ts int64) error {
	key, z := l.opts.Config.Summarize(s)
	e := record.Entry{Key: key, ID: l.nextID, TS: ts}
	if l.opts.Config.Materialized {
		e.Payload = z
	}
	l.nextID++
	return l.InsertEntry(e)
}

// InsertEntry adds a pre-summarized entry with caller-controlled ID — used
// by the streaming schemes, which summarize once and own global IDs.
func (l *LSM) InsertEntry(e record.Entry) error {
	if e.ID >= l.nextID {
		l.nextID = e.ID + 1
	}
	l.count++
	l.buffer = append(l.buffer, e)
	if len(l.buffer) >= l.opts.BufferEntries {
		return l.Flush()
	}
	return nil
}

// Flush sorts the in-memory buffer into a level-0 run and triggers any
// cascading merges. It is a no-op on an empty buffer.
func (l *LSM) Flush() error {
	if len(l.buffer) == 0 {
		return nil
	}
	sort.Slice(l.buffer, func(i, j int) bool { return l.buffer[i].Less(l.buffer[j]) })
	name := l.runName()
	w, err := storage.NewRecordWriter(l.opts.Disk, name, l.codec.Size())
	if err != nil {
		return err
	}
	buf := make([]byte, 0, l.codec.Size())
	for _, e := range l.buffer {
		buf = buf[:0]
		if buf, err = l.codec.Append(buf, e); err != nil {
			return err
		}
		if err := w.Write(buf); err != nil {
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	l.addRun(0, run{file: name, count: int64(len(l.buffer))})
	l.buffer = l.buffer[:0]
	l.flushes++
	return l.compact()
}

func (l *LSM) runName() string {
	l.seq++
	return fmt.Sprintf("%s.run.%06d", l.opts.Name, l.seq)
}

func (l *LSM) addRun(level int, r run) {
	for len(l.levels) <= level {
		l.levels = append(l.levels, nil)
	}
	l.levels[level] = append(l.levels[level], r)
}

// compact merges any level holding >= GrowthFactor runs into a single run
// at the next level, cascading upward (tiered compaction).
func (l *LSM) compact() error {
	sorter := &extsort.Sorter{Disk: l.opts.Disk, Codec: l.codec, MemBudget: 1 << 20, TmpPrefix: l.opts.Name + ".merge"}
	for level := 0; level < len(l.levels); level++ {
		for len(l.levels[level]) >= l.opts.GrowthFactor {
			victims := l.levels[level]
			names := make([]string, len(victims))
			counts := make([]int64, len(victims))
			for i, r := range victims {
				names[i] = r.file
				counts[i] = r.count
			}
			merged := l.runName()
			total, err := sorter.MergeSorted(names, counts, merged)
			if err != nil {
				return err
			}
			for _, r := range victims {
				if err := l.opts.Disk.Remove(r.file); err != nil {
					return err
				}
			}
			l.levels[level] = nil
			l.addRun(level+1, run{file: merged, count: total})
			l.merges++
		}
	}
	return nil
}

// allRuns returns every on-disk run, newest level first (level 0 holds the
// freshest data).
func (l *LSM) allRuns() []run {
	var out []run
	for _, lvl := range l.levels {
		out = append(out, lvl...)
	}
	return out
}
