// Package clsm implements CoconutLSM (CLSM), the write-optimized index of
// the Coconut infrastructure: a log-structured merge-tree over sortable
// summarizations. Incoming series accumulate in an in-memory buffer; each
// flush writes a sorted run with sequential I/O, and runs of the same level
// are sort-merged once the growth factor's worth of them accumulate
// (tiering). The growth factor is the read/write knob the demo exposes:
// larger T means fewer, cheaper merges (faster ingest) but more runs to
// inspect per query.
//
// # Concurrency: snapshot-isolated manifests
//
// The on-disk run set lives in an immutable manifest, and what one search
// sees — manifest plus a snapshot of the in-memory buffer — is published as
// a single atomically-swapped view. Searches pin a view and run lock-free
// against it; inserts append to the buffer and publish a new view; flushes
// and merges build a replacement manifest and swap it in atomically. A
// search therefore always observes every acknowledged entry exactly once
// (in the buffer snapshot or in a run, never neither), and because the
// collectors of package index are order-independent pure functions of the
// candidate set, results are byte-identical whether a merge is mid-flight
// or the index is quiesced.
//
// Obsolete manifests retire in version order: once the last search unpins a
// retired manifest, the run files its successor dropped are reclaimed
// (Disk.Remove — which also invalidates any buffer-pool pages of those
// files), epoch-style, so no reader ever loses a file out from under it.
//
// # Durability and background compaction
//
// With Options.WAL set, every insert is appended to a write-ahead log
// before it is buffered, and every manifest swap persists the manifest to
// the index's disk; Recover rebuilds the exact index from the persisted
// manifest plus a replay of the WAL tail. With Options.Scheduler set, level
// merges run as background jobs on the scheduler's worker pool instead of
// cascading synchronously inside Flush — inserts and searches keep running
// against the pre-merge manifest until the swap.
package clsm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/compact"
	"repro/internal/extsort"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/record"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/wal"
	"repro/internal/zonestat"
)

// Options configures a CLSM index.
type Options struct {
	Disk   storage.Backend
	Name   string       // file name prefix
	Config index.Config // summarization shape; Materialized selects CLSMFull
	// GrowthFactor T: runs per level tolerated before they are merged into
	// the next level. Default 4.
	GrowthFactor int
	// BufferEntries is the in-memory write buffer capacity. Default 1024.
	BufferEntries int
	// Raw is consulted by non-materialized searches. Series inserted into
	// the index must appear in Raw at the same IDs (insertion order,
	// starting at 0). When Parallelism exceeds 1, Raw must be safe for
	// concurrent Get calls.
	Raw series.RawStore
	// Reader serves every page read of the run files during search. nil
	// selects the Disk itself (uncached); pass a buffer pool over the same
	// disk to serve hot run pages from memory. Writes (flushes, merges)
	// always go to Disk, which invalidates through any attached pool.
	Reader storage.PageReader
	// Parallelism bounds the worker goroutines a single search uses to
	// probe on-disk runs concurrently. 1 keeps the serial path; values <= 0
	// select GOMAXPROCS. Results are identical at every setting: each
	// worker collects into its own deterministic top-k collector and the
	// per-worker results merge into the same answer the serial scan
	// produces.
	Parallelism int
	// WAL, when set, makes ingest durable: Insert appends the encoded entry
	// to the log before buffering it (acknowledgement follows the log's
	// group-commit policy), and every flush or merge persists the run
	// manifest to Disk so Recover can rebuild the index from manifest +
	// WAL tail. The log is owned by the caller (it outlives this index and
	// is closed by whoever opened it).
	WAL *wal.Log
	// TruncateWALOnFlush, with WAL set, truncates log segments as soon as
	// their entries are safely in an on-disk run behind a persisted
	// manifest. Enable it when Disk is the durable store (it survives the
	// crash being guarded against); leave it off when durability instead
	// comes from snapshot checkpoints of the disk (the facade's SaveFile),
	// which truncate at checkpoint time.
	TruncateWALOnFlush bool
	// Scheduler, when set, runs level merges as background jobs on its
	// worker pool; flushes stay inline. nil keeps the legacy synchronous
	// cascade inside Flush — the paper-faithful single-stream accounting.
	// The scheduler is owned by the caller and may be shared across many
	// indexes (one background-work budget for a whole sharded deployment).
	Scheduler *compact.Scheduler
	// Planner carries the query planner's switches, plan cache, and skip
	// counter. nil plans with defaults (ordering and skipping on, no cache);
	// it may be shared across many indexes, like the Scheduler.
	Planner *index.Planner
	// Compress writes new runs in the packed page encoding (record.PageBuilder):
	// frame-of-reference bit-packed keys, IDs, and timestamps with verbatim
	// payloads, so each run page carries more candidates per I/O. Existing
	// uncompressed runs remain readable — the manifest tracks each run's
	// encoding — and merges re-encode per this setting.
	Compress bool
}

func (o *Options) setDefaults() error {
	if o.Disk == nil {
		return fmt.Errorf("clsm: Disk is required")
	}
	if o.Name == "" {
		o.Name = "clsm"
	}
	if err := o.Config.Validate(); err != nil {
		return err
	}
	if o.GrowthFactor == 0 {
		o.GrowthFactor = 4
	}
	if o.GrowthFactor < 2 {
		return fmt.Errorf("clsm: GrowthFactor must be >= 2, got %d", o.GrowthFactor)
	}
	if o.BufferEntries == 0 {
		o.BufferEntries = 1024
	}
	if o.BufferEntries < 1 {
		return fmt.Errorf("clsm: BufferEntries must be positive, got %d", o.BufferEntries)
	}
	if o.Reader == nil {
		o.Reader = o.Disk
	}
	return nil
}

// ReplayedEntry is the entry type Recover's callback observes — an alias
// so facade layers need not import the record package for the one type.
type ReplayedEntry = record.Entry

// run is one sorted run on disk. syn summarizes the run's entries for the
// query planner: built incrementally at flush, unioned (exactly, with no
// re-scan) at merge, persisted with the manifest. nil — a run recovered
// from pre-synopsis metadata — means unknown: the planner never skips or
// bounds such a run; new flushes and merges repopulate the statistics.
type run struct {
	file   string
	count  int64
	syn    *zonestat.Synopsis
	packed bool // pages use the packed (compressed) encoding
}

// manifest is one immutable version of the on-disk run set. Searches pin
// the manifest they run against; writers never mutate a published manifest,
// they swap in a clone. Retired manifests form a version-ordered chain
// (next) along which run files dropped by each transition are reclaimed
// once every earlier pin is gone.
type manifest struct {
	version int64
	levels  [][]run // levels[l] = runs at level l, oldest first; never mutated
	// durableLSN is the WAL LSN of the last entry contained in these runs
	// (-1 when none, or when no WAL is configured). Recovery replays the
	// log strictly after it.
	durableLSN int64

	pins    atomic.Int64             // searches currently pinned to this version
	next    atomic.Pointer[manifest] // successor; non-nil once retired
	dropped []string                 // run files the transition to next dropped; set before next
}

// runsIn counts the runs a manifest references.
func (m *manifest) runsIn() int {
	n := 0
	for _, lvl := range m.levels {
		n += len(lvl)
	}
	return n
}

// entriesIn sums the entry counts of every run.
func (m *manifest) entriesIn() int64 {
	var n int64
	for _, lvl := range m.levels {
		for _, r := range lvl {
			n += r.count
		}
	}
	return n
}

// view is what one search observes: a manifest and a snapshot of the write
// buffer, published together in one atomic pointer so an entry moving from
// buffer to run during a flush is always visible in exactly one of the two.
type view struct {
	man *manifest
	buf []record.Entry // immutable prefix snapshot; appends land beyond len
}

// LSM is a CoconutLSM index. Completed and in-construction indexes are safe
// for fully concurrent use: any number of searches may overlap with
// inserts, flushes, and background merges. (Save, Recover, and Close still
// require that no insert is concurrently in flight.)
type LSM struct {
	opts  Options
	codec record.Codec

	// mu guards buffer growth, WAL append ordering, and every publication
	// of cur. Searches never take it.
	mu      sync.Mutex
	buffer  []record.Entry // append-only between flush commits
	bufBase int64          // WAL LSN of buffer[0] (valid when WAL is set)

	cur atomic.Pointer[view]

	// writeMu serializes structure commits (flush, merge, manifest
	// persistence) against each other; flushMu serializes whole Flush
	// calls so concurrent auto-flush triggers collapse into one.
	writeMu sync.Mutex
	flushMu sync.Mutex

	// reclaimMu guards the retired-manifest cursor.
	reclaimMu sync.Mutex
	oldest    *manifest
	reclaimed atomic.Int64 // obsolete run files removed

	seq     atomic.Int64 // run file name counter
	count   atomic.Int64
	nextID  atomic.Int64
	flushes atomic.Int64
	merges  atomic.Int64

	pool *parallel.Pool

	replaying  bool // set during Recover; suppresses WAL re-appends
	compacting atomic.Bool
	cerrMu     sync.Mutex
	cerr       error // first background-compaction error, sticky
}

// New creates an empty CLSM index.
func New(opts Options) (*LSM, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = parallel.Resolve(opts.Parallelism)
	}
	l := &LSM{
		opts:  opts,
		codec: opts.Config.Codec(),
		pool:  parallel.New(opts.Parallelism),
	}
	if l.codec.Size() > opts.Disk.PageSize() {
		return nil, fmt.Errorf("clsm: entry size %d exceeds page size %d", l.codec.Size(), opts.Disk.PageSize())
	}
	if opts.Compress && !record.PackedFits(l.codec, opts.Disk.PageSize()) {
		return nil, fmt.Errorf("clsm: packed entry size exceeds page size %d", opts.Disk.PageSize())
	}
	man := &manifest{durableLSN: -1}
	l.cur.Store(&view{man: man})
	l.oldest = man
	return l, nil
}

// Name implements index.Index; "CLSM" or "CLSMFull" when materialized.
func (l *LSM) Name() string {
	if l.opts.Config.Materialized {
		return "CLSMFull"
	}
	return "CLSM"
}

// Count returns the number of indexed series (buffered included).
func (l *LSM) Count() int64 { return l.count.Load() }

// SetParallelism re-sizes the search worker pool (n <= 0 selects
// GOMAXPROCS; 1 is serial). Parallelism is not persisted, so reopened
// indexes default to GOMAXPROCS — call this after Open to restore a serial
// configuration. Call only while no search is in flight.
func (l *LSM) SetParallelism(n int) { l.pool = parallel.New(n) }

// SetPlanner attaches the query planner (switches, plan cache, counters).
// Like SetParallelism it is not persisted; call after Open. Call only while
// no search is in flight.
func (l *LSM) SetPlanner(pl *index.Planner) { l.opts.Planner = pl }

// UseReader routes subsequent page reads through r — typically a buffer
// pool over the LSM's disk (nil restores the uncached disk). Like
// SetParallelism it is not persisted; call after Open to re-attach a
// cache. Call only while no search is in flight.
func (l *LSM) UseReader(r storage.PageReader) {
	if r == nil {
		r = l.opts.Disk
	}
	l.opts.Reader = r
}

// Config returns the summarization configuration the LSM was created with.
func (l *LSM) Config() index.Config { return l.opts.Config }

// Runs returns the current number of on-disk runs.
func (l *LSM) Runs() int { return l.cur.Load().man.runsIn() }

// Depth returns the number of levels currently holding runs.
func (l *LSM) Depth() int { return len(l.cur.Load().man.levels) }

// Flushes returns how many buffer flushes have occurred.
func (l *LSM) Flushes() int64 { return l.flushes.Load() }

// Merges returns how many run merges have occurred.
func (l *LSM) Merges() int64 { return l.merges.Load() }

// pinView pins the current view for a search: the manifest cannot have its
// dropped files reclaimed while pinned. The retry loop closes the race with
// a concurrent swap — once the re-check sees the manifest still current,
// its retirement (and therefore any reclaim that could free its files)
// necessarily observes the pin.
func (l *LSM) pinView() *view {
	for {
		v := l.cur.Load()
		v.man.pins.Add(1)
		if l.cur.Load().man == v.man {
			return v
		}
		v.man.pins.Add(-1)
	}
}

// unpinView releases a pinned view and advances reclamation.
func (l *LSM) unpinView(v *view) {
	v.man.pins.Add(-1)
	l.reclaim()
}

// reclaim walks retired manifests in version order, deleting the run files
// each transition dropped once the manifest has no pins. In-order
// reclamation is what makes the pin a full barrier: any file an older
// pinned manifest still references is dropped by a transition at or after
// it, which cannot be reached before the pinned manifest itself reclaims.
func (l *LSM) reclaim() {
	l.reclaimMu.Lock()
	defer l.reclaimMu.Unlock()
	for {
		m := l.oldest
		next := m.next.Load()
		if next == nil || m.pins.Load() != 0 {
			return
		}
		for _, f := range m.dropped {
			// Remove also invalidates any buffer-pool pages of the file, so
			// no stale cached page survives the reclaim.
			if err := l.opts.Disk.Remove(f); err == nil {
				l.reclaimed.Add(1)
			}
		}
		l.oldest = next
	}
}

// retire links old -> new on the manifest chain, recording the files the
// transition dropped. Callers hold l.mu (the swap lock), so retirements are
// ordered; dropped is set before the successor pointer publishes it.
func retire(old, new *manifest, dropped []string) {
	old.dropped = dropped
	old.next.Store(new)
}

// Insert adds one series with the given ingestion timestamp. IDs are
// assigned in insertion order starting at 0.
func (l *LSM) Insert(s series.Series, ts int64) error {
	_, err := l.InsertID(s, ts)
	return err
}

// InsertID is Insert returning the assigned ID, for callers that keep
// ID-addressed state (the facade's raw-series mirror) in sync.
func (l *LSM) InsertID(s series.Series, ts int64) (int64, error) {
	key, z := l.opts.Config.Summarize(s)
	id := l.nextID.Add(1) - 1
	e := record.Entry{Key: key, ID: id, TS: ts}
	if l.opts.Config.Materialized {
		e.Payload = z
	}
	return id, l.insertEntry(e, z)
}

// InsertEntry adds a pre-summarized entry with caller-controlled ID — used
// by the streaming schemes, which summarize once and own global IDs.
func (l *LSM) InsertEntry(e record.Entry) error {
	l.raiseNextID(e.ID)
	return l.insertEntry(e, e.Payload)
}

func (l *LSM) raiseNextID(id int64) {
	for {
		cur := l.nextID.Load()
		if id < cur {
			return
		}
		if l.nextID.CompareAndSwap(cur, id+1) {
			return
		}
	}
}

// insertEntry logs, buffers, and publishes one entry. walSeries is the
// series logged alongside the entry header (the z-normalized series for
// Insert; the payload, possibly nil, for InsertEntry) so recovery can
// rebuild raw-series mirrors as well as the entry itself.
func (l *LSM) insertEntry(e record.Entry, walSeries series.Series) error {
	l.mu.Lock()
	if l.opts.WAL != nil && !l.replaying {
		lsn, err := l.opts.WAL.Append(encodeWALFrame(e, walSeries))
		if err != nil {
			l.mu.Unlock()
			return fmt.Errorf("clsm: wal append: %w", err)
		}
		if want := l.bufBase + int64(len(l.buffer)); lsn != want {
			l.mu.Unlock()
			return fmt.Errorf("clsm: wal LSN %d, want %d (log shared with another writer?)", lsn, want)
		}
	}
	l.buffer = append(l.buffer, e)
	full := len(l.buffer) >= l.opts.BufferEntries
	l.cur.Store(&view{man: l.cur.Load().man, buf: l.buffer})
	l.mu.Unlock()
	l.count.Add(1)
	if full {
		return l.Flush()
	}
	return nil
}

// Flush sorts the in-memory buffer into a level-0 run and triggers
// compaction — synchronously cascading without a Scheduler, as background
// jobs with one. Safe to call concurrently with inserts and searches; a
// no-op on an empty buffer.
func (l *LSM) Flush() error {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()

	// Snapshot the buffer prefix to flush. The buffer stays visible to
	// searches until the commit swaps run and buffer in one step.
	l.mu.Lock()
	n := len(l.buffer)
	if n == 0 {
		l.mu.Unlock()
		return nil
	}
	snap := l.buffer[:n:n]
	flushedLSN := l.bufBase + int64(n) - 1
	l.mu.Unlock()

	if l.opts.WAL != nil && !l.replaying {
		// The run must never get ahead of the log: sync through the last
		// entry being flushed before the manifest can supersede it.
		if err := l.opts.WAL.Sync(); err != nil {
			return err
		}
	}

	// Sort a copy — searches are scanning the live buffer.
	sorted := make([]record.Entry, n)
	copy(sorted, snap)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	syn := zonestat.New(l.opts.Config.Segments, l.opts.Config.Bits)
	for _, e := range sorted {
		syn.Add(e.Key, e.TS)
	}
	name := l.runName()
	if err := l.writeRun(name, sorted); err != nil {
		return err
	}

	// Commit: new manifest with the run, buffer minus the flushed prefix,
	// one atomic view swap.
	l.writeMu.Lock()
	l.mu.Lock()
	v := l.cur.Load()
	man := addRun(v.man, 0, run{file: name, count: int64(n), syn: syn, packed: l.opts.Compress})
	if l.opts.WAL != nil {
		man.durableLSN = flushedLSN
	}
	l.buffer = l.buffer[n:]
	l.bufBase += int64(n)
	l.cur.Store(&view{man: man, buf: l.buffer})
	retire(v.man, man, nil)
	l.mu.Unlock()
	perr := l.persistManifest(man)
	l.writeMu.Unlock()
	l.flushes.Add(1)
	l.reclaim()
	if perr != nil {
		return perr
	}
	if l.opts.WAL != nil && l.opts.TruncateWALOnFlush && !l.replaying {
		// The flushed entries are in a run behind a persisted manifest; the
		// segments that held them are obsolete.
		if err := l.opts.WAL.TruncateThrough(flushedLSN); err != nil {
			return err
		}
	}
	return l.afterStructureChange()
}

// writeRun streams sorted entries into a new run file, packed when the
// index compresses its runs.
func (l *LSM) writeRun(name string, entries []record.Entry) error {
	if l.opts.Compress {
		w, err := record.NewPackedWriter(l.opts.Disk, name, l.codec)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if err := w.WriteEntry(e); err != nil {
				return err
			}
		}
		return w.Close()
	}
	w, err := storage.NewRecordWriter(l.opts.Disk, name, l.codec.Size())
	if err != nil {
		return err
	}
	buf := make([]byte, 0, l.codec.Size())
	for _, e := range entries {
		buf = buf[:0]
		if buf, err = l.codec.Append(buf, e); err != nil {
			return err
		}
		if err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Close()
}

func (l *LSM) runName() string {
	return fmt.Sprintf("%s.run.%06d", l.opts.Name, l.seq.Add(1))
}

// addRun returns a clone of m with r appended at the given level.
func addRun(m *manifest, level int, r run) *manifest {
	depth := len(m.levels)
	if level >= depth {
		depth = level + 1
	}
	levels := make([][]run, depth)
	copy(levels, m.levels)
	lvl := make([]run, len(levels[level])+1)
	copy(lvl, levels[level])
	lvl[len(lvl)-1] = r
	levels[level] = lvl
	return &manifest{version: m.version + 1, levels: levels, durableLSN: m.durableLSN}
}

// needsCompact reports whether any level holds GrowthFactor or more runs.
func (l *LSM) needsCompact(m *manifest) bool {
	for _, lvl := range m.levels {
		if len(lvl) >= l.opts.GrowthFactor {
			return true
		}
	}
	return false
}

// afterStructureChange compacts inline without a scheduler, or arranges a
// background job with one.
func (l *LSM) afterStructureChange() error {
	if l.opts.Scheduler == nil {
		return l.compactNow()
	}
	l.maybeSchedule()
	return nil
}

// maybeSchedule submits at most one outstanding compaction job for this
// index. The job re-checks after clearing the flag, closing the race where
// a flush observes the flag set just as the job is finishing.
func (l *LSM) maybeSchedule() {
	if l.CompactionErr() != nil {
		return
	}
	if !l.needsCompact(l.cur.Load().man) {
		return
	}
	if !l.compacting.CompareAndSwap(false, true) {
		return
	}
	err := l.opts.Scheduler.Submit(func() error {
		err := l.compactNow()
		if err != nil {
			l.setCompactionErr(err)
		}
		l.compacting.Store(false)
		if err == nil {
			l.maybeSchedule()
		}
		return err
	})
	if err != nil {
		// Scheduler shut down: leave the level over-full; the next flush
		// (or a quiesce) will deal with it.
		l.compacting.Store(false)
	}
}

func (l *LSM) setCompactionErr(err error) {
	l.cerrMu.Lock()
	if l.cerr == nil {
		l.cerr = err
	}
	l.cerrMu.Unlock()
}

// CompactionErr returns the first error a background merge hit, or nil.
// Background compaction halts on error; the error also surfaces from
// Quiesce, Save, and Close.
func (l *LSM) CompactionErr() error {
	l.cerrMu.Lock()
	defer l.cerrMu.Unlock()
	return l.cerr
}

// compactNow merges over-full levels until none remain, committing one
// manifest swap per merge. Single-flighted: inline mode calls it from
// Flush, background mode from the one outstanding job.
func (l *LSM) compactNow() error {
	sorter := &extsort.Sorter{Disk: l.opts.Disk, Codec: l.codec, MemBudget: 1 << 20, TmpPrefix: l.opts.Name + ".merge"}
	for {
		man := l.cur.Load().man
		level := -1
		for i, lvl := range man.levels {
			if len(lvl) >= l.opts.GrowthFactor {
				level = i
				break
			}
		}
		if level < 0 {
			return nil
		}
		victims := man.levels[level]
		names := make([]string, len(victims))
		counts := make([]int64, len(victims))
		packed := make([]bool, len(victims))
		files := make([]string, len(victims))
		for i, r := range victims {
			names[i] = r.file
			counts[i] = r.count
			packed[i] = r.packed
			files[i] = r.file
		}
		merged := l.runName()
		total, err := sorter.MergeSortedPacked(names, counts, packed, merged, l.opts.Compress)
		if err != nil {
			return err
		}
		// The merged run's synopsis is the exact union of its victims' —
		// every statistic is a monotone envelope, so no re-scan is needed.
		// Any victim with unknown statistics poisons the union: unknown, not
		// empty.
		msyn := zonestat.New(l.opts.Config.Segments, l.opts.Config.Bits)
		for _, r := range victims {
			if r.syn == nil {
				msyn = nil
				break
			}
			msyn.Union(r.syn)
		}

		// Commit: drop the victims (still the prefix of the level — only
		// compactNow removes runs and it is single-flighted; concurrent
		// flushes only append), add the merged run one level up.
		l.writeMu.Lock()
		l.mu.Lock()
		v := l.cur.Load()
		newMan, err := afterMerge(v.man, level, victims, run{file: merged, count: total, syn: msyn, packed: l.opts.Compress})
		if err != nil {
			l.mu.Unlock()
			l.writeMu.Unlock()
			return err
		}
		l.cur.Store(&view{man: newMan, buf: l.buffer})
		retire(v.man, newMan, files)
		l.mu.Unlock()
		perr := l.persistManifest(newMan)
		l.writeMu.Unlock()
		l.merges.Add(1)
		l.reclaim()
		if perr != nil {
			return perr
		}
	}
}

// afterMerge clones m, replacing the victim prefix of level with nothing
// and appending mergedRun at level+1.
func afterMerge(m *manifest, level int, victims []run, mergedRun run) (*manifest, error) {
	if len(m.levels) <= level || len(m.levels[level]) < len(victims) {
		return nil, fmt.Errorf("clsm: merge commit lost level %d", level)
	}
	for i, r := range victims {
		if m.levels[level][i].file != r.file {
			return nil, fmt.Errorf("clsm: merge victims no longer prefix level %d", level)
		}
	}
	depth := len(m.levels)
	if level+1 >= depth {
		depth = level + 2
	}
	levels := make([][]run, depth)
	copy(levels, m.levels)
	levels[level] = m.levels[level][len(victims):]
	up := make([]run, len(levels[level+1])+1)
	copy(up, levels[level+1])
	up[len(up)-1] = mergedRun
	levels[level+1] = up
	return &manifest{version: m.version + 1, levels: levels, durableLSN: m.durableLSN}, nil
}

// Quiesce waits until no compaction work is pending or in flight: every
// over-full level has merged and the background job has drained. A no-op in
// inline mode (Flush already cascades to completion). Returns the sticky
// background-compaction error, if any.
func (l *LSM) Quiesce() error {
	if l.opts.Scheduler == nil {
		return nil
	}
	for {
		l.opts.Scheduler.Drain()
		if err := l.CompactionErr(); err != nil {
			return err
		}
		if !l.compacting.Load() && !l.needsCompact(l.cur.Load().man) {
			return nil
		}
		if l.opts.Scheduler.Closed() {
			// The worker pool is gone; finish the outstanding merges
			// inline rather than spinning (or looping) forever.
			if l.compacting.Load() {
				continue // a worker is still finishing its last job
			}
			return l.compactNow()
		}
		l.maybeSchedule()
	}
}

// Close waits out in-flight background merges and surfaces their first
// error. It does not close the WAL or the scheduler — both are owned by
// whoever created them. Idempotent; call with no insert in flight.
func (l *LSM) Close() error {
	if l.opts.Scheduler != nil {
		l.opts.Scheduler.Drain()
	}
	return l.CompactionErr()
}

// CompactionStats describes the state of the ingest/compaction machinery.
type CompactionStats struct {
	Flushes           int64 // buffer flushes so far
	Merges            int64 // level merges so far
	Levels            int   // levels currently holding runs
	Runs              int   // on-disk runs in the current manifest
	ManifestVersion   int64 // version of the current manifest
	RetainedManifests int   // manifest versions not yet reclaimed (current included)
	ReclaimedRuns     int64 // obsolete run files deleted so far
	Background        bool  // merges run on a scheduler
	Pending           bool  // a compaction job is queued or in flight
	DurableLSN        int64 // WAL LSN safely in runs (-1 when none/no WAL)
}

// CompactionStats returns a snapshot of the ingest/compaction state.
func (l *LSM) CompactionStats() CompactionStats {
	man := l.cur.Load().man
	st := CompactionStats{
		Flushes:         l.flushes.Load(),
		Merges:          l.merges.Load(),
		Levels:          len(man.levels),
		Runs:            man.runsIn(),
		ManifestVersion: man.version,
		ReclaimedRuns:   l.reclaimed.Load(),
		Background:      l.opts.Scheduler != nil,
		Pending:         l.compacting.Load(),
		DurableLSN:      man.durableLSN,
	}
	l.reclaimMu.Lock()
	for m := l.oldest; m != nil; m = m.next.Load() {
		st.RetainedManifests++
	}
	l.reclaimMu.Unlock()
	return st
}

// allRuns returns every on-disk run of a manifest, newest level first
// (level 0 holds the freshest data).
func allRuns(m *manifest) []run {
	var out []run
	for _, lvl := range m.levels {
		out = append(out, lvl...)
	}
	return out
}

// PlanSynopses implements zonestat.Provider for shard-level planning: one
// synopsis per on-disk run of the current view. complete is false whenever
// the write buffer holds entries or any run lacks statistics (recovered
// from pre-synopsis metadata) — a shard-level bound would then not cover
// every entry, so the caller must always probe this index.
func (l *LSM) PlanSynopses() ([]*zonestat.Synopsis, bool) {
	v := l.cur.Load()
	runs := allRuns(v.man)
	syns := make([]*zonestat.Synopsis, 0, len(runs))
	complete := len(v.buf) == 0
	for _, r := range runs {
		if r.syn == nil {
			complete = false
			continue
		}
		syns = append(syns, r.syn)
	}
	return syns, complete
}

var _ zonestat.Provider = (*LSM)(nil)
