package clsm

import (
	"math"

	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/record"
	"repro/internal/series"
	"repro/internal/sortable"
)

// Search in a CLSM fans out over the on-disk runs: every run is an
// independent sorted file, so run probes and run scans execute concurrently
// on the index's worker pool (Options.Parallelism). Each worker owns a
// scratch state and a deterministic top-k collector; merged per-worker
// results are identical to the serial scan's because the collector's
// contents are a pure function of the candidate set (see index.Collector).
// Probes run through the squared-space pruning pipeline (index.SearchCtx):
// per-query MINDIST tables, squared bounds, and early-abandoning
// verification straight from the page bytes, with all per-query state drawn
// from a shared pool.
//
// Every search pins one view — an immutable manifest plus a buffer
// snapshot — for its whole lifetime, so any number of searches may overlap
// with inserts, flushes, and background merges: a concurrent flush or merge
// swaps in a new view without disturbing pinned ones, and the collectors'
// order-independence makes the answer a pure function of the entry set,
// which every view of the same data shares.

// ApproxSearch answers an approximate k-NN query by probing each component:
// the in-memory buffer is scanned outright, and in every on-disk run a
// binary search over pages locates the query key's neighborhood, of which
// one page is examined. Cost grows with the number of runs — the read side
// of the LSM trade-off; concurrency over runs is what claws the latency
// back.
func (l *LSM) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	ctx := l.opts.Planner.AcquireCtx(q, l.opts.Config)
	defer ctx.Release()
	v := l.pinView()
	defer l.unpinView(v)
	col := index.NewCollector(k)
	sp := ctx.Trace.Start("approx")
	if err := l.approxInto(v, q, col, ctx, l.pool); err != nil {
		return nil, err
	}
	sp.End()
	return col.Results(), nil
}

// approxInto runs the approximate phase into col with an already-acquired
// context, so ExactSearch shares one context (and one table fill) across
// both phases.
func (l *LSM) approxInto(v *view, q index.Query, col *index.Collector, ctx *index.SearchCtx, pool *parallel.Pool) error {
	if err := scanBuffer(v.buf, q, col, false, ctx.Scratch0(), l.opts.Raw); err != nil {
		return err
	}
	return l.forEachRun(allRuns(v.man), q, ctx, col, pool, func(r run, sc *index.Scratch, col *index.Collector) error {
		return l.probeRun(r, q, col, sc)
	})
}

// ExactSearch returns the true k nearest neighbors: the approximate phase
// seeds the best-so-far bound, then every run is scanned with per-entry
// squared lower-bound pruning, runs concurrently. The buffer was already
// fully evaluated by the approximate phase (deduplication by ID makes
// re-offering it a no-op), so only the runs need the full pass.
func (l *LSM) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	ctx := l.opts.Planner.AcquireCtx(q, l.opts.Config)
	defer ctx.Release()
	return l.exactCtx(q, k, ctx, l.pool)
}

// ExactSearchCtx answers an exact k-NN query with a caller-managed context
// (already filled for q — see index.SearchCtx.Refill) and a serial scan.
// Batch executors and sharded probes use it to own the parallelism at a
// coarser grain: across queries, or across shards, instead of within one
// scan. Results are byte-identical to ExactSearch.
func (l *LSM) ExactSearchCtx(q index.Query, k int, ctx *index.SearchCtx) ([]index.Result, error) {
	return l.exactCtx(q, k, ctx, index.SerialPool)
}

// ExactSearchColl is ExactSearchCtx returning the collector itself, exact
// squared sums intact, for the sharded merge (see index.CollSearcher).
func (l *LSM) ExactSearchColl(q index.Query, k int, ctx *index.SearchCtx) (*index.Collector, error) {
	return l.exactColl(q, k, ctx, index.SerialPool)
}

// ExactSearchBatch answers one exact k-NN query per element of qs, pipelined
// over the LSM's worker pool: each worker slot reuses one search context
// (tables refilled per query, scratch buffers persistent) for every query it
// executes. out[i] is byte-identical to ExactSearch(qs[i], k).
func (l *LSM) ExactSearchBatch(qs []index.Query, k int) ([][]index.Result, error) {
	return index.BatchPlanned(l.opts.Planner, l.pool, l.opts.Config, qs, func(q index.Query, ctx *index.SearchCtx) ([]index.Result, error) {
		return l.ExactSearchCtx(q, k, ctx)
	})
}

// exactCtx is the exact-search core: approximate phase to seed the bound,
// then the full pruned run scans, both over the given pool.
func (l *LSM) exactCtx(q index.Query, k int, ctx *index.SearchCtx, pool *parallel.Pool) ([]index.Result, error) {
	col, err := l.exactColl(q, k, ctx, pool)
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// exactColl runs the exact search and returns the filled collector.
func (l *LSM) exactColl(q index.Query, k int, ctx *index.SearchCtx, pool *parallel.Pool) (*index.Collector, error) {
	v := l.pinView()
	defer l.unpinView(v)
	col := index.NewCollector(k)
	sp := ctx.Trace.Start("approx")
	if err := l.approxInto(v, q, col, ctx, pool); err != nil {
		return nil, err
	}
	sp.End()
	sp = ctx.Trace.Start("scan")
	err := l.forEachRun(allRuns(v.man), q, ctx, col, pool, func(r run, sc *index.Scratch, col *index.Collector) error {
		return l.scanRun(r, q, col, sc)
	})
	sp.End()
	if err != nil {
		return nil, err
	}
	return col, nil
}

// forEachRun applies scan to every run, planned: runs are visited in
// ascending order of their synopsis's envelope MINDIST lower bound (the
// most promising run tightens the collector's pruning bound first) and a
// run is skipped outright when its bound already exceeds the collector's
// current worst, or its time range misses the query window. Both moves are
// answer-preserving — the envelope bound never exceeds the per-entry bound
// the scan itself prunes with, and the collector is order-independent — so
// results are byte-identical to the unplanned fan-out, which a disabled
// planner falls back to. Serial execution probes directly into col with the
// bound tightening between runs; parallel execution pre-orders and
// pre-filters on the approximate phase's bound, then each worker re-checks
// against its own clone's evolving bound before scanning.
func (l *LSM) forEachRun(runs []run, q index.Query, ctx *index.SearchCtx, col *index.Collector, pool *parallel.Pool, scan func(run, *index.Scratch, *index.Collector) error) error {
	pl := l.opts.Planner
	tr := ctx.Trace
	if !pl.Enabled() || len(runs) == 0 {
		tr.NoteProbes("run", int64(len(runs)))
		return index.FanOut(pool, len(runs), ctx, col, (*index.Collector).PooledClone, (*index.Collector).MergeRelease,
			func(i int, col *index.Collector, sc *index.Scratch) error {
				return scan(runs[i], sc, col)
			})
	}
	units := ctx.PlanUnits(len(runs))
	for i := range runs {
		b := ctx.P.SynopsisBoundSq(runs[i].syn)
		if q.Windowed && runs[i].syn != nil && !runs[i].syn.IntersectsWindow(q.MinTS, q.MaxTS) {
			b = math.Inf(1)
		}
		units[i] = index.PlanUnit{BoundSq: b, Idx: i}
	}
	index.SortPlan(units)
	if pool.WorkersFor(len(runs)) <= 1 {
		sc := ctx.Scratch0()
		skipped := int64(0)
		for ui, u := range units {
			if math.IsInf(u.BoundSq, 1) {
				skipped++
				tr.NoteUnit("run", u.Idx, u.BoundSq, true)
				continue
			}
			if col.SkipSq(u.BoundSq) {
				// Bounds ascend from here on and the collector's worst only
				// tightens, so every remaining unit is skippable too.
				skipped += int64(len(units) - ui)
				if tr != nil {
					for _, su := range units[ui:] {
						tr.NoteUnit("run", su.Idx, su.BoundSq, true)
					}
				}
				break
			}
			tr.NoteUnit("run", u.Idx, u.BoundSq, false)
			if err := scan(runs[u.Idx], sc, col); err != nil {
				pl.NoteSkips(skipped)
				return err
			}
		}
		pl.NoteSkips(skipped)
		return nil
	}
	live := units[:0]
	skipped := int64(0)
	for _, u := range units {
		if math.IsInf(u.BoundSq, 1) || col.SkipSq(u.BoundSq) {
			skipped++
			tr.NoteUnit("run", u.Idx, u.BoundSq, true)
			continue
		}
		live = append(live, u)
	}
	pl.NoteSkips(skipped)
	return index.FanOut(pool, len(live), ctx, col, (*index.Collector).PooledClone, (*index.Collector).MergeRelease,
		func(i int, col *index.Collector, sc *index.Scratch) error {
			if col.SkipSq(live[i].BoundSq) {
				pl.NoteSkips(1)
				tr.NoteUnit("run", live[i].Idx, live[i].BoundSq, true)
				return nil
			}
			tr.NoteUnit("run", live[i].Idx, live[i].BoundSq, false)
			return scan(runs[live[i].Idx], sc, col)
		})
}

// scanBuffer evaluates a buffer snapshot's entries; with prune set, entries
// are filtered through the squared iSAX lower bound first.
func scanBuffer(buf []record.Entry, q index.Query, col *index.Collector, prune bool, sc *index.Scratch, raw series.RawStore) error {
	for _, e := range buf {
		if !q.InWindow(e.TS) {
			continue
		}
		if prune && col.SkipSq(sc.P.MinDistSqKey(e.Key)) {
			continue
		}
		dSq, err := index.TrueDistSq(q, e, raw, col.WorstSq(), sc)
		if err != nil {
			return err
		}
		col.AddSq(e.ID, e.TS, dSq)
	}
	return nil
}

// runPages returns the number of pages a run occupies. Fixed-size runs
// derive it from the entry count; packed runs hold a data-dependent number
// of entries per page, so the file length is authoritative.
func (l *LSM) runPages(r run) (int, error) {
	if !r.packed {
		perPage := l.opts.Disk.PageSize() / l.codec.Size()
		return int((r.count + int64(perPage) - 1) / int64(perPage)), nil
	}
	if r.count == 0 {
		return 0, nil
	}
	n, err := l.opts.Reader.NumPages(r.file)
	return int(n), err
}

// probeRun binary-searches the run's pages for the query key and evaluates
// the covering page.
func (l *LSM) probeRun(r run, q index.Query, col *index.Collector, sc *index.Scratch) error {
	pages, err := l.runPages(r)
	if err != nil {
		return err
	}
	if pages == 0 {
		return nil
	}
	// Binary search over pages by first key.
	lo, hi := 0, pages-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		first, err := l.firstKey(r, mid)
		if err != nil {
			return err
		}
		if q.Key.Less(first) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return l.evalPage(r, lo, q, col, sc)
}

func (l *LSM) firstKey(r run, page int) (sortable.Key, error) {
	h, err := l.opts.Reader.PinPage(r.file, int64(page))
	if err != nil {
		return sortable.Key{}, err
	}
	var k sortable.Key
	if r.packed {
		k = record.PackedFirstKey(h.Data())
	} else {
		k = record.DecodeKeyOnly(h.Data())
	}
	h.Release()
	return k, nil
}

// evalPage evaluates all entries on one page of a run straight from the
// pinned page bytes. The page was just examined by firstKey when called
// from probeRun; it re-pins to keep the logic self-contained (an uncached
// repeat pin of the same page is accounted as buffered/sequential, and a
// cached one is a hit).
func (l *LSM) evalPage(r run, page int, q index.Query, col *index.Collector, sc *index.Scratch) error {
	h, err := l.opts.Reader.PinPage(r.file, int64(page))
	if err != nil {
		return err
	}
	if r.packed {
		_, err = index.EvalEncodedPacked(q, h.Data(), l.codec, l.opts.Raw, col, sc)
		h.Release()
		return err
	}
	perPage := l.opts.Disk.PageSize() / l.codec.Size()
	start := int64(page) * int64(perPage)
	n := perPage
	if rem := r.count - start; rem < int64(n) {
		n = int(rem)
	}
	_, err = index.EvalEncoded(q, h.Data(), n, l.codec, l.opts.Raw, col, sc)
	h.Release()
	return err
}

// scanRun scans one run sequentially with squared lower-bound pruning,
// verifying each page's surviving candidates in ascending lower-bound
// order.
func (l *LSM) scanRun(r run, q index.Query, col *index.Collector, sc *index.Scratch) error {
	perPage := l.opts.Disk.PageSize() / l.codec.Size()
	pages, err := l.runPages(r)
	if err != nil {
		return err
	}
	for p := 0; p < pages; p++ {
		h, err := l.opts.Reader.PinPage(r.file, int64(p))
		if err != nil {
			return err
		}
		if r.packed {
			_, err = index.EvalEncodedPacked(q, h.Data(), l.codec, l.opts.Raw, col, sc)
		} else {
			start := int64(p) * int64(perPage)
			n := perPage
			if rem := r.count - start; rem < int64(n) {
				n = int(rem)
			}
			_, err = index.EvalEncoded(q, h.Data(), n, l.codec, l.opts.Raw, col, sc)
		}
		h.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// RangeSearch returns every indexed series within Euclidean distance eps
// of the query, scanning the buffer and every run with squared epsilon
// pruning. Runs scan concurrently; the epsilon bound is static, so
// per-worker range collectors merge into exactly the serial answer.
func (l *LSM) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	ctx := l.opts.Planner.AcquireCtx(q, l.opts.Config)
	defer ctx.Release()
	v := l.pinView()
	defer l.unpinView(v)
	col := index.NewRangeCollector(eps)
	sc := ctx.Scratch0()
	var buffered []record.Entry
	for _, e := range v.buf {
		if q.InWindow(e.TS) {
			buffered = append(buffered, e)
		}
	}
	if err := index.EvalRangeCandidates(q, buffered, l.opts.Raw, col, sc); err != nil {
		return nil, err
	}
	runs := allRuns(v.man)
	tr := ctx.Trace
	if pl := l.opts.Planner; pl.Enabled() {
		// The epsilon bound is static, so planned range search is a pure
		// pre-filter: drop every run whose envelope bound prunes or whose
		// time range misses the window (allRuns returned a fresh slice).
		n := 0
		for i, r := range runs {
			if r.syn != nil {
				b := ctx.P.SynopsisBoundSq(r.syn)
				if (q.Windowed && !r.syn.IntersectsWindow(q.MinTS, q.MaxTS)) || col.PruneSq(b) {
					tr.NoteUnit("run", i, b, true)
					continue
				}
				tr.NoteUnit("run", i, b, false)
			} else {
				tr.NoteUnit("run", i, 0, false)
			}
			runs[n] = r
			n++
		}
		pl.NoteSkips(int64(len(runs) - n))
		runs = runs[:n]
	} else {
		tr.NoteProbes("run", int64(len(runs)))
	}
	sp := tr.Start("scan")
	err := index.FanOut(l.pool, len(runs), ctx, col, (*index.RangeCollector).PooledClone, (*index.RangeCollector).MergeRelease,
		func(i int, col *index.RangeCollector, sc *index.Scratch) error {
			return l.rangeScanRun(runs[i], q, col, sc)
		})
	sp.End()
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

func (l *LSM) rangeScanRun(r run, q index.Query, col *index.RangeCollector, sc *index.Scratch) error {
	perPage := l.opts.Disk.PageSize() / l.codec.Size()
	pages, err := l.runPages(r)
	if err != nil {
		return err
	}
	for p := 0; p < pages; p++ {
		h, err := l.opts.Reader.PinPage(r.file, int64(p))
		if err != nil {
			return err
		}
		if r.packed {
			err = index.EvalEncodedPackedRange(q, h.Data(), l.codec, l.opts.Raw, col, sc)
		} else {
			start := int64(p) * int64(perPage)
			n := perPage
			if rem := r.count - start; rem < int64(n) {
				n = int(rem)
			}
			err = index.EvalEncodedRange(q, h.Data(), n, l.codec, l.opts.Raw, col, sc)
		}
		h.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

var (
	_ index.Index         = (*LSM)(nil)
	_ index.Inserter      = (*LSM)(nil)
	_ index.RangeSearcher = (*LSM)(nil)
	_ index.CtxSearcher   = (*LSM)(nil)
	_ index.CollSearcher  = (*LSM)(nil)
	_ index.BatchSearcher = (*LSM)(nil)
)
