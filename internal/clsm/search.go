package clsm

import (
	"repro/internal/index"
	"repro/internal/record"
	"repro/internal/sortable"
)

// Search in a CLSM fans out over the on-disk runs: every run is an
// independent sorted file, so run probes and run scans execute concurrently
// on the index's worker pool (Options.Parallelism). Each worker owns a page
// buffer and a deterministic top-k collector; merged per-worker results are
// identical to the serial scan's because the collector's contents are a
// pure function of the candidate set (see index.Collector). A search
// allocates its own page buffers, so any number of searches may also run
// concurrently against one LSM — only inserts/flushes require external
// serialization against searches.

// ApproxSearch answers an approximate k-NN query by probing each component:
// the in-memory buffer is scanned outright, and in every on-disk run a
// binary search over pages locates the query key's neighborhood, of which
// one page is examined. Cost grows with the number of runs — the read side
// of the LSM trade-off; concurrency over runs is what claws the latency
// back.
func (l *LSM) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	col := index.NewCollector(k)
	if err := l.scanBuffer(q, col, false); err != nil {
		return nil, err
	}
	err := l.forEachRun(l.allRuns(), col, func(r run, buf []byte, col *index.Collector) error {
		return l.probeRun(r, q, col, buf)
	})
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// ExactSearch returns the true k nearest neighbors: the approximate answer
// seeds the best-so-far bound, then the buffer and every run are scanned
// with per-entry iSAX lower-bound pruning, runs concurrently.
func (l *LSM) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	approx, err := l.ApproxSearch(q, k)
	if err != nil {
		return nil, err
	}
	col := index.NewCollector(k)
	for _, r := range approx {
		col.Add(r)
	}
	if err := l.scanBuffer(q, col, true); err != nil {
		return nil, err
	}
	err = l.forEachRun(l.allRuns(), col, func(r run, buf []byte, col *index.Collector) error {
		return l.scanRun(r, q, col, buf)
	})
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// forEachRun applies scan to every run through index.FanOut: serial into
// col directly with one worker, per-worker seeded clones merged back
// otherwise, identical results either way.
func (l *LSM) forEachRun(runs []run, col *index.Collector, scan func(run, []byte, *index.Collector) error) error {
	return index.FanOut(l.pool, len(runs), col, (*index.Collector).Clone, (*index.Collector).Merge,
		l.opts.Disk.PageSize(), func(i int, col *index.Collector, buf []byte) error {
			return scan(runs[i], buf, col)
		})
}

// scanBuffer evaluates in-memory entries; with prune set, entries are
// filtered through the iSAX lower bound first.
func (l *LSM) scanBuffer(q index.Query, col *index.Collector, prune bool) error {
	for _, e := range l.buffer {
		if !q.InWindow(e.TS) {
			continue
		}
		if prune && col.Skip(l.opts.Config.MinDistKey(q.PAA, e.Key)) {
			continue
		}
		d, err := index.TrueDist(q, e, l.opts.Raw, col.Worst())
		if err != nil {
			return err
		}
		col.Add(index.Result{ID: e.ID, TS: e.TS, Dist: d})
	}
	return nil
}

// probeRun binary-searches the run's pages for the query key and evaluates
// the covering page.
func (l *LSM) probeRun(r run, q index.Query, col *index.Collector, buf []byte) error {
	perPage := l.opts.Disk.PageSize() / l.codec.Size()
	pages := int((r.count + int64(perPage) - 1) / int64(perPage))
	if pages == 0 {
		return nil
	}
	// Binary search over pages by first key.
	lo, hi := 0, pages-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		first, err := l.firstKey(r, mid, buf)
		if err != nil {
			return err
		}
		if q.Key.Less(first) {
			hi = mid - 1
		} else {
			lo = mid
		}
	}
	return l.evalPage(r, lo, q, col, buf)
}

func (l *LSM) firstKey(r run, page int, buf []byte) (sortable.Key, error) {
	if _, err := l.opts.Disk.ReadPage(r.file, int64(page), buf); err != nil {
		return sortable.Key{}, err
	}
	return record.DecodeKeyOnly(buf), nil
}

// evalPage computes true distances for all in-window entries on one page of
// a run. The page is assumed freshly read into buf by firstKey when called
// from probeRun; it re-reads to keep the logic self-contained (the repeat
// read of the same page is accounted as buffered/sequential).
func (l *LSM) evalPage(r run, page int, q index.Query, col *index.Collector, buf []byte) error {
	if _, err := l.opts.Disk.ReadPage(r.file, int64(page), buf); err != nil {
		return err
	}
	perPage := l.opts.Disk.PageSize() / l.codec.Size()
	start := int64(page) * int64(perPage)
	n := perPage
	if rem := r.count - start; rem < int64(n) {
		n = int(rem)
	}
	recSize := l.codec.Size()
	cands := make([]record.Entry, 0, n)
	for i := 0; i < n; i++ {
		e, err := l.codec.Decode(buf[i*recSize : (i+1)*recSize])
		if err != nil {
			return err
		}
		if q.InWindow(e.TS) {
			cands = append(cands, e)
		}
	}
	_, err := index.EvalCandidates(q, cands, l.opts.Config, l.opts.Raw, col)
	return err
}

// scanRun scans one run sequentially with lower-bound pruning, verifying
// each page's surviving candidates in ascending lower-bound order.
func (l *LSM) scanRun(r run, q index.Query, col *index.Collector, buf []byte) error {
	perPage := l.opts.Disk.PageSize() / l.codec.Size()
	pages := int((r.count + int64(perPage) - 1) / int64(perPage))
	recSize := l.codec.Size()
	var cands []record.Entry
	for p := 0; p < pages; p++ {
		if _, err := l.opts.Disk.ReadPage(r.file, int64(p), buf); err != nil {
			return err
		}
		start := int64(p) * int64(perPage)
		n := perPage
		if rem := r.count - start; rem < int64(n) {
			n = int(rem)
		}
		cands = cands[:0]
		for i := 0; i < n; i++ {
			rec := buf[i*recSize : (i+1)*recSize]
			if col.Skip(l.opts.Config.MinDistKey(q.PAA, record.DecodeKeyOnly(rec))) {
				continue
			}
			e, err := l.codec.Decode(rec)
			if err != nil {
				return err
			}
			if !q.InWindow(e.TS) {
				continue
			}
			cands = append(cands, e)
		}
		if _, err := index.EvalCandidates(q, cands, l.opts.Config, l.opts.Raw, col); err != nil {
			return err
		}
	}
	return nil
}

// RangeSearch returns every indexed series within Euclidean distance eps
// of the query, scanning the buffer and every run with epsilon pruning.
// Runs scan concurrently; the epsilon bound is static, so per-worker range
// collectors merge into exactly the serial answer.
func (l *LSM) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	col := index.NewRangeCollector(eps)
	var buffered []record.Entry
	for _, e := range l.buffer {
		if q.InWindow(e.TS) {
			buffered = append(buffered, e)
		}
	}
	if err := index.EvalRangeCandidates(q, buffered, l.opts.Config, l.opts.Raw, col); err != nil {
		return nil, err
	}
	runs := l.allRuns()
	err := index.FanOut(l.pool, len(runs), col, (*index.RangeCollector).Clone, (*index.RangeCollector).Merge,
		l.opts.Disk.PageSize(), func(i int, col *index.RangeCollector, buf []byte) error {
			return l.rangeScanRun(runs[i], q, col, buf)
		})
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

func (l *LSM) rangeScanRun(r run, q index.Query, col *index.RangeCollector, buf []byte) error {
	perPage := l.opts.Disk.PageSize() / l.codec.Size()
	pages := int((r.count + int64(perPage) - 1) / int64(perPage))
	recSize := l.codec.Size()
	var cands []record.Entry
	for p := 0; p < pages; p++ {
		if _, err := l.opts.Disk.ReadPage(r.file, int64(p), buf); err != nil {
			return err
		}
		start := int64(p) * int64(perPage)
		n := perPage
		if rem := r.count - start; rem < int64(n) {
			n = int(rem)
		}
		cands = cands[:0]
		for i := 0; i < n; i++ {
			rec := buf[i*recSize : (i+1)*recSize]
			if l.opts.Config.MinDistKey(q.PAA, record.DecodeKeyOnly(rec)) > col.Bound() {
				continue
			}
			e, err := l.codec.Decode(rec)
			if err != nil {
				return err
			}
			if !q.InWindow(e.TS) {
				continue
			}
			cands = append(cands, e)
		}
		if err := index.EvalRangeCandidates(q, cands, l.opts.Config, l.opts.Raw, col); err != nil {
			return err
		}
	}
	return nil
}

var (
	_ index.Index         = (*LSM)(nil)
	_ index.Inserter      = (*LSM)(nil)
	_ index.RangeSearcher = (*LSM)(nil)
)
