package clsm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/series"
	"repro/internal/storage"
)

// Metadata format (stored in "<name>.meta" on the LSM's disk):
//
//	magic "CLSMMETA" | version u32 | payload length u64
//	count u64 | nextID u64 | seq u64 | flushes u64 | merges u64
//	growth u32 | bufferEntries u32
//	materialized u8 | seriesLen u32 | segments u32 | bits u32
//	levelCount u32 | per level: runCount u32 |
//	  per run: nameLen u32 | name | count u64
const (
	lsmMetaMagic   = "CLSMMETA"
	lsmMetaVersion = 1
)

// Save flushes the write buffer and persists the LSM's structure metadata
// to "<name>.meta" on its disk, so it can be reopened (together with the
// disk snapshot) via Open. An existing meta file is replaced.
func (l *LSM) Save() error {
	if err := l.Flush(); err != nil {
		return err
	}
	name := l.opts.Name + ".meta"
	if l.opts.Disk.Exists(name) {
		if err := l.opts.Disk.Remove(name); err != nil {
			return err
		}
	}
	payload := l.encodeMeta()
	head := make([]byte, 0, len(lsmMetaMagic)+12+len(payload))
	head = append(head, lsmMetaMagic...)
	head = binary.LittleEndian.AppendUint32(head, lsmMetaVersion)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(payload)))
	head = append(head, payload...)
	if err := l.opts.Disk.Create(name); err != nil {
		return err
	}
	_, err := l.opts.Disk.AppendPages(name, head)
	return err
}

func (l *LSM) encodeMeta() []byte {
	buf := make([]byte, 0, 128)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.count))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.nextID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.seq))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.flushes))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.merges))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.GrowthFactor))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.BufferEntries))
	if l.opts.Config.Materialized {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.Config.SeriesLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.Config.Segments))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.Config.Bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.levels)))
	for _, lvl := range l.levels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(lvl)))
		for _, r := range lvl {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.file)))
			buf = append(buf, r.file...)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.count))
		}
	}
	return buf
}

// Open reconstructs a saved LSM from a disk holding its runs and
// "<name>.meta". The caller supplies the Raw store for non-materialized
// searches.
func Open(disk *storage.Disk, name string, raw series.RawStore) (*LSM, error) {
	if disk == nil {
		return nil, fmt.Errorf("clsm: Disk is required")
	}
	if name == "" {
		name = "clsm"
	}
	metaName := name + ".meta"
	npages, err := disk.NumPages(metaName)
	if err != nil {
		return nil, fmt.Errorf("clsm: opening %q: %w", metaName, err)
	}
	blob := make([]byte, int(npages)*disk.PageSize())
	if _, err := disk.ReadPages(metaName, 0, int(npages), blob); err != nil {
		return nil, err
	}
	if len(blob) < len(lsmMetaMagic)+12 {
		return nil, fmt.Errorf("clsm: meta file too short")
	}
	if string(blob[:len(lsmMetaMagic)]) != lsmMetaMagic {
		return nil, fmt.Errorf("clsm: bad meta magic %q", blob[:len(lsmMetaMagic)])
	}
	off := len(lsmMetaMagic)
	if v := binary.LittleEndian.Uint32(blob[off:]); v != lsmMetaVersion {
		return nil, fmt.Errorf("clsm: unsupported meta version %d", v)
	}
	off += 4
	plen := int(binary.LittleEndian.Uint64(blob[off:]))
	off += 8
	if off+plen > len(blob) {
		return nil, fmt.Errorf("clsm: truncated meta payload")
	}
	return decodeMeta(disk, name, blob[off:off+plen], raw)
}

func decodeMeta(disk *storage.Disk, name string, buf []byte, raw series.RawStore) (*LSM, error) {
	const fixed = 8*5 + 4*2 + 1 + 4*3 + 4
	if len(buf) < fixed {
		return nil, fmt.Errorf("clsm: meta payload too short: %d", len(buf))
	}
	l := &LSM{pool: parallel.New(0)}
	l.count = int64(binary.LittleEndian.Uint64(buf))
	l.nextID = int64(binary.LittleEndian.Uint64(buf[8:]))
	l.seq = int(binary.LittleEndian.Uint64(buf[16:]))
	l.flushes = int64(binary.LittleEndian.Uint64(buf[24:]))
	l.merges = int64(binary.LittleEndian.Uint64(buf[32:]))
	growth := int(binary.LittleEndian.Uint32(buf[40:]))
	bufferEntries := int(binary.LittleEndian.Uint32(buf[44:]))
	materialized := buf[48] == 1
	seriesLen := int(binary.LittleEndian.Uint32(buf[49:]))
	segments := int(binary.LittleEndian.Uint32(buf[53:]))
	bits := int(binary.LittleEndian.Uint32(buf[57:]))
	levelCount := int(binary.LittleEndian.Uint32(buf[61:]))

	l.opts = Options{
		Disk: disk,
		Name: name,
		Config: index.Config{
			SeriesLen:    seriesLen,
			Segments:     segments,
			Bits:         bits,
			Materialized: materialized,
		},
		GrowthFactor:  growth,
		BufferEntries: bufferEntries,
		Raw:           raw,
		Reader:        disk,
	}
	if err := l.opts.Config.Validate(); err != nil {
		return nil, fmt.Errorf("clsm: invalid persisted config: %w", err)
	}
	l.codec = l.opts.Config.Codec()

	off := 65
	var total int64
	for lv := 0; lv < levelCount; lv++ {
		if off+4 > len(buf) {
			return nil, fmt.Errorf("clsm: meta truncated at level %d", lv)
		}
		runCount := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		var runs []run
		for ri := 0; ri < runCount; ri++ {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("clsm: meta truncated at level %d run %d", lv, ri)
			}
			nameLen := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if off+nameLen+8 > len(buf) {
				return nil, fmt.Errorf("clsm: meta truncated in run name")
			}
			r := run{
				file:  string(buf[off : off+nameLen]),
				count: int64(binary.LittleEndian.Uint64(buf[off+nameLen:])),
			}
			off += nameLen + 8
			if !disk.Exists(r.file) {
				return nil, fmt.Errorf("clsm: run file %q missing", r.file)
			}
			total += r.count
			runs = append(runs, r)
		}
		l.levels = append(l.levels, runs)
	}
	if total != l.count {
		return nil, fmt.Errorf("clsm: persisted counts inconsistent: runs hold %d, meta says %d", total, l.count)
	}
	return l, nil
}
