package clsm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/record"
	"repro/internal/series"
	"repro/internal/sortable"
	"repro/internal/storage"
	"repro/internal/zonestat"
)

// Two persisted structures share one payload encoding:
//
// "<name>.meta" (written by Save, read by Open) — the quiesced snapshot:
//
//	magic "CLSMMETA" | version u32 | payload length u64 | payload
//
// "<name>.manifest" (written on every manifest swap in WAL mode, read by
// Recover) — the crash-consistent run set:
//
//	magic "CLSMMANI" | version u32 | payload length u64 |
//	durableLSN u64 (two's complement; ^uint64(0) encodes -1) | payload
//
// payload:
//
//	count u64 | nextID u64 | seq u64 | flushes u64 | merges u64
//	growth u32 | bufferEntries u32
//	materialized u8 | seriesLen u32 | segments u32 | bits u32
//	levelCount u32 | per level: runCount u32 |
//	  per run: nameLen u32 | name | count u64 | [v2: synLen u32 | synopsis]
//
// Version 2 appends each run's planner synopsis (zonestat encoding; synLen
// 0 when the run has none). Version-1 files are still read — their runs
// simply carry no statistics, which disables planning for them until new
// flushes and merges repopulate the synopses.
//
// Version 3 appends a per-run packed flag byte (after the synopsis): 1 when
// the run's pages use the packed codec (record.IsPacked), 0 for the
// fixed-size record layout. Version-1/2 files decode with packed=false,
// which is exactly what they contain.
//
// In both files count is the number of entries held by the listed runs
// (Save flushes first, so for the meta file that is also the live count).
const (
	lsmMetaMagic       = "CLSMMETA"
	lsmMetaVersion     = 3
	lsmManifestMagic   = "CLSMMANI"
	lsmManifestVersion = 3
	lsmManifestFileSfx = ".manifest"
	lsmMetaFileSfx     = ".meta"
)

// metaState is the decoded payload shared by the meta and manifest files.
type metaState struct {
	count, nextID, seq, flushes, merges int64
	growth, bufferEntries               int
	cfg                                 index.Config
	levels                              [][]run
}

// Save flushes the write buffer, waits out any background compaction, and
// persists the LSM's structure metadata to "<name>.meta" on its disk, so it
// can be reopened (together with the disk snapshot) via Open. An existing
// meta file is replaced. Call with no insert in flight.
func (l *LSM) Save() error {
	if err := l.Flush(); err != nil {
		return err
	}
	if err := l.Quiesce(); err != nil {
		return err
	}
	payload := l.encodePayload(l.cur.Load().man)
	return l.writeBlob(l.opts.Name+lsmMetaFileSfx, lsmMetaMagic, lsmMetaVersion, nil, payload)
}

// persistManifest writes the crash-consistent manifest file after a swap.
// Only the durable-ingest mode pays for it: without a WAL the disk image is
// only ever persisted through Save, which writes the meta file instead.
// Callers hold writeMu, so manifest files hit the disk in version order.
func (l *LSM) persistManifest(m *manifest) error {
	if l.opts.WAL == nil {
		return nil
	}
	var head [8]byte
	binary.LittleEndian.PutUint64(head[:], uint64(m.durableLSN))
	return l.writeBlob(l.opts.Name+lsmManifestFileSfx, lsmManifestMagic, lsmManifestVersion, head[:], l.encodePayload(m))
}

// writeBlob replaces a small framed metadata file on the disk.
func (l *LSM) writeBlob(name, magic string, version uint32, extra, payload []byte) error {
	if l.opts.Disk.Exists(name) {
		if err := l.opts.Disk.Remove(name); err != nil {
			return err
		}
	}
	head := make([]byte, 0, len(magic)+12+len(extra)+len(payload))
	head = append(head, magic...)
	head = binary.LittleEndian.AppendUint32(head, version)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(payload)))
	head = append(head, extra...)
	head = append(head, payload...)
	if err := l.opts.Disk.Create(name); err != nil {
		return err
	}
	_, err := l.opts.Disk.AppendPages(name, head)
	return err
}

// encodePayload renders the shared payload for a given manifest; the
// counters come from the live atomics, the run set from the manifest.
func (l *LSM) encodePayload(m *manifest) []byte {
	buf := make([]byte, 0, 128)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(m.entriesIn()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.nextID.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.seq.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.flushes.Load()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.merges.Load()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.GrowthFactor))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.BufferEntries))
	if l.opts.Config.Materialized {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.Config.SeriesLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.Config.Segments))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.opts.Config.Bits))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.levels)))
	for _, lvl := range m.levels {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(lvl)))
		for _, r := range lvl {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.file)))
			buf = append(buf, r.file...)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(r.count))
			if r.syn == nil {
				buf = binary.LittleEndian.AppendUint32(buf, 0)
			} else {
				buf = binary.LittleEndian.AppendUint32(buf, uint32(r.syn.EncodedSize()))
				buf = r.syn.AppendBinary(buf)
			}
			if r.packed {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return buf
}

// readBlob reads and frames-checks a metadata file, returning the bytes
// after the fixed header (extra bytes first, then the payload) plus the
// file's format version. Every version from 1 through maxVersion is
// accepted; the caller decodes the payload per version.
func readBlob(disk storage.Backend, name, magic string, maxVersion uint32, extraLen int) ([]byte, uint32, error) {
	npages, err := disk.NumPages(name)
	if err != nil {
		return nil, 0, fmt.Errorf("clsm: opening %q: %w", name, err)
	}
	blob := make([]byte, int(npages)*disk.PageSize())
	if _, err := disk.ReadPages(name, 0, int(npages), blob); err != nil {
		return nil, 0, err
	}
	if len(blob) < len(magic)+12+extraLen {
		return nil, 0, fmt.Errorf("clsm: %s file too short", name)
	}
	if string(blob[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("clsm: bad magic %q in %s", blob[:len(magic)], name)
	}
	off := len(magic)
	version := binary.LittleEndian.Uint32(blob[off:])
	if version < 1 || version > maxVersion {
		return nil, 0, fmt.Errorf("clsm: unsupported %s version %d", name, version)
	}
	off += 4
	plen := int(binary.LittleEndian.Uint64(blob[off:]))
	off += 8
	if off+extraLen+plen > len(blob) {
		return nil, 0, fmt.Errorf("clsm: truncated %s payload", name)
	}
	return blob[off : off+extraLen+plen], version, nil
}

// decodePayload parses the shared payload (at the given format version),
// verifying the listed run files exist on disk and hold the recorded number
// of entries.
func decodePayload(disk storage.Backend, buf []byte, version uint32) (*metaState, error) {
	const fixed = 8*5 + 4*2 + 1 + 4*3 + 4
	if len(buf) < fixed {
		return nil, fmt.Errorf("clsm: meta payload too short: %d", len(buf))
	}
	st := &metaState{}
	st.count = int64(binary.LittleEndian.Uint64(buf))
	st.nextID = int64(binary.LittleEndian.Uint64(buf[8:]))
	st.seq = int64(binary.LittleEndian.Uint64(buf[16:]))
	st.flushes = int64(binary.LittleEndian.Uint64(buf[24:]))
	st.merges = int64(binary.LittleEndian.Uint64(buf[32:]))
	st.growth = int(binary.LittleEndian.Uint32(buf[40:]))
	st.bufferEntries = int(binary.LittleEndian.Uint32(buf[44:]))
	st.cfg = index.Config{
		Materialized: buf[48] == 1,
		SeriesLen:    int(binary.LittleEndian.Uint32(buf[49:])),
		Segments:     int(binary.LittleEndian.Uint32(buf[53:])),
		Bits:         int(binary.LittleEndian.Uint32(buf[57:])),
	}
	levelCount := int(binary.LittleEndian.Uint32(buf[61:]))
	if err := st.cfg.Validate(); err != nil {
		return nil, fmt.Errorf("clsm: invalid persisted config: %w", err)
	}
	off := 65
	var total int64
	for lv := 0; lv < levelCount; lv++ {
		if off+4 > len(buf) {
			return nil, fmt.Errorf("clsm: meta truncated at level %d", lv)
		}
		runCount := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		var runs []run
		for ri := 0; ri < runCount; ri++ {
			if off+4 > len(buf) {
				return nil, fmt.Errorf("clsm: meta truncated at level %d run %d", lv, ri)
			}
			nameLen := int(binary.LittleEndian.Uint32(buf[off:]))
			off += 4
			if off+nameLen+8 > len(buf) {
				return nil, fmt.Errorf("clsm: meta truncated in run name")
			}
			r := run{
				file:  string(buf[off : off+nameLen]),
				count: int64(binary.LittleEndian.Uint64(buf[off+nameLen:])),
			}
			off += nameLen + 8
			if version >= 2 {
				if off+4 > len(buf) {
					return nil, fmt.Errorf("clsm: meta truncated at synopsis length")
				}
				synLen := int(binary.LittleEndian.Uint32(buf[off:]))
				off += 4
				if synLen > 0 {
					if off+synLen > len(buf) {
						return nil, fmt.Errorf("clsm: meta truncated in synopsis")
					}
					syn, n, err := zonestat.Decode(buf[off : off+synLen])
					if err != nil {
						return nil, err
					}
					if n != synLen {
						return nil, fmt.Errorf("clsm: synopsis length mismatch: %d != %d", n, synLen)
					}
					r.syn = syn
					off += synLen
				}
			}
			if version >= 3 {
				if off+1 > len(buf) {
					return nil, fmt.Errorf("clsm: meta truncated at packed flag")
				}
				r.packed = buf[off] == 1
				off++
			}
			if !disk.Exists(r.file) {
				return nil, fmt.Errorf("clsm: run file %q missing", r.file)
			}
			total += r.count
			runs = append(runs, r)
		}
		st.levels = append(st.levels, runs)
	}
	if total != st.count {
		return nil, fmt.Errorf("clsm: persisted counts inconsistent: runs hold %d, meta says %d", total, st.count)
	}
	return st, nil
}

// install applies a decoded state to a freshly constructed LSM.
func (l *LSM) install(st *metaState, durableLSN int64) {
	l.count.Store(st.count)
	l.nextID.Store(st.nextID)
	l.seq.Store(st.seq)
	l.flushes.Store(st.flushes)
	l.merges.Store(st.merges)
	man := &manifest{levels: st.levels, durableLSN: durableLSN}
	l.cur.Store(&view{man: man})
	l.oldest = man
	l.bufBase = durableLSN + 1
}

// Open reconstructs a saved LSM from a disk holding its runs and
// "<name>.meta". The caller supplies the Raw store for non-materialized
// searches.
func Open(disk storage.Backend, name string, raw series.RawStore) (*LSM, error) {
	if disk == nil {
		return nil, fmt.Errorf("clsm: Disk is required")
	}
	if name == "" {
		name = "clsm"
	}
	payload, ver, err := readBlob(disk, name+lsmMetaFileSfx, lsmMetaMagic, lsmMetaVersion, 0)
	if err != nil {
		return nil, err
	}
	st, err := decodePayload(disk, payload, ver)
	if err != nil {
		return nil, err
	}
	l := &LSM{pool: parallel.New(0)}
	l.opts = Options{
		Disk:          disk,
		Name:          name,
		Config:        st.cfg,
		GrowthFactor:  st.growth,
		BufferEntries: st.bufferEntries,
		Raw:           raw,
		Reader:        disk,
	}
	l.codec = l.opts.Config.Codec()
	l.install(st, -1)
	return l, nil
}

// SetCompress switches the encoding used for runs written from here on:
// future flushes and merges emit packed pages when on. Existing runs keep
// their recorded encoding (the per-run manifest flag) and remain fully
// searchable; background merges gradually re-encode them. Intended for use
// right after Open, which cannot learn the setting from the meta file —
// encoding is a property of each run, not of the index. Call before any
// flush or merge runs.
func (l *LSM) SetCompress(on bool) error {
	if on && !record.PackedFits(l.codec, l.opts.Disk.PageSize()) {
		return fmt.Errorf("clsm: packed entry shape exceeds page size %d", l.opts.Disk.PageSize())
	}
	l.opts.Compress = on
	return nil
}

// Recover rebuilds an LSM from its disk plus its write-ahead log: the
// persisted manifest (or, failing that, the meta file of the last Save)
// provides the run set, and the log's tail — every frame past the
// manifest's durable LSN — is replayed through the normal insert path, so
// no acknowledged insert is lost even when the process died with a full
// write buffer. A torn final frame (crash mid-append) ends replay cleanly.
//
// opts must carry the WAL; onReplay, when non-nil, observes every replayed
// entry together with the series logged alongside it (the facade uses it to
// rebuild its raw-series mirror). Flushes triggered by replay behave
// normally, so recovery itself makes progress durable.
func Recover(opts Options, onReplay func(record.Entry, series.Series) error) (*LSM, error) {
	if opts.WAL == nil {
		return nil, fmt.Errorf("clsm: Recover requires a WAL")
	}
	l, err := New(opts)
	if err != nil {
		return nil, err
	}
	disk, name := l.opts.Disk, l.opts.Name
	from := int64(0)
	startID := int64(0)
	switch {
	case disk.Exists(name + lsmManifestFileSfx):
		blob, ver, err := readBlob(disk, name+lsmManifestFileSfx, lsmManifestMagic, lsmManifestVersion, 8)
		if err != nil {
			return nil, err
		}
		durable := int64(binary.LittleEndian.Uint64(blob))
		st, err := decodePayload(disk, blob[8:], ver)
		if err != nil {
			return nil, err
		}
		if err := sameShape(st.cfg, l.opts.Config); err != nil {
			return nil, err
		}
		l.install(st, durable)
		from = durable + 1
		startID = st.nextID
	case disk.Exists(name + lsmMetaFileSfx):
		// Snapshot-checkpoint recovery: the meta file stores no LSN, so the
		// whole retained log replays and entries already in the snapshot are
		// skipped by ID (the checkpoint truncated everything older).
		payload, ver, err := readBlob(disk, name+lsmMetaFileSfx, lsmMetaMagic, lsmMetaVersion, 0)
		if err != nil {
			return nil, err
		}
		st, err := decodePayload(disk, payload, ver)
		if err != nil {
			return nil, err
		}
		if err := sameShape(st.cfg, l.opts.Config); err != nil {
			return nil, err
		}
		l.install(st, -1)
		startID = st.nextID
	}

	l.replaying = true
	rerr := l.opts.WAL.Replay(from, func(lsn int64, payload []byte) error {
		e, s, err := decodeWALFrame(payload, l.opts.Config.SeriesLen)
		if err != nil {
			return err
		}
		if e.ID < startID {
			return nil // already durable in the recovered run set
		}
		l.mu.Lock()
		if len(l.buffer) == 0 {
			l.bufBase = lsn
		} else if l.bufBase+int64(len(l.buffer)) != lsn {
			l.mu.Unlock()
			return fmt.Errorf("clsm: non-contiguous WAL replay at LSN %d", lsn)
		}
		l.mu.Unlock()
		l.raiseNextID(e.ID)
		entry := e
		if !l.opts.Config.Materialized {
			entry.Payload = nil
		}
		if err := l.insertEntry(entry, s); err != nil {
			return err
		}
		if onReplay != nil {
			return onReplay(e, s)
		}
		return nil
	})
	l.replaying = false
	if rerr != nil {
		return nil, fmt.Errorf("clsm: wal replay: %w", rerr)
	}
	return l, nil
}

// Saved describes the persisted state of an LSM on a disk, read from the
// crash-consistent manifest (preferred) or the meta file of the last Save.
type Saved struct {
	Count         int64 // entries held by the persisted runs
	GrowthFactor  int
	BufferEntries int
}

// SavedState reads the persisted LSM parameters from a disk, or ok=false
// when neither metadata file exists. The facade uses Count to size
// snapshot-resident state (the raw-series mirror) before WAL replay grows
// the index past it, and the tuning fields to reopen with the shape the
// snapshot was built with.
func SavedState(disk storage.Backend, name string) (Saved, bool, error) {
	var blobName, magic string
	var version uint32
	extra := 0
	switch {
	case disk.Exists(name + lsmManifestFileSfx):
		blobName, magic, version, extra = name+lsmManifestFileSfx, lsmManifestMagic, lsmManifestVersion, 8
	case disk.Exists(name + lsmMetaFileSfx):
		blobName, magic, version = name+lsmMetaFileSfx, lsmMetaMagic, lsmMetaVersion
	default:
		return Saved{}, false, nil
	}
	blob, ver, err := readBlob(disk, blobName, magic, version, extra)
	if err != nil {
		return Saved{}, false, err
	}
	st, err := decodePayload(disk, blob[extra:], ver)
	if err != nil {
		return Saved{}, false, err
	}
	return Saved{Count: st.count, GrowthFactor: st.growth, BufferEntries: st.bufferEntries}, true, nil
}

// sameShape verifies a persisted configuration matches the caller's — the
// entry codec layouts must agree for runs and WAL frames to decode.
func sameShape(stored, given index.Config) error {
	if stored != given {
		return fmt.Errorf("clsm: persisted config %+v differs from given %+v", stored, given)
	}
	return nil
}

// WAL frame: flag u8 (1 = series present) | key | id u64 | ts u64 |
// [series]. The series rides along even for non-materialized indexes so
// recovery can rebuild ID-addressed raw mirrors.
func encodeWALFrame(e record.Entry, s series.Series) []byte {
	n := 1 + record.HeaderBytes
	if s != nil {
		n += series.Size(len(s))
	}
	buf := make([]byte, 0, n)
	if s != nil {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = e.Key.AppendBinary(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.ID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.TS))
	if s != nil {
		buf = s.AppendBinary(buf)
	}
	return buf
}

func decodeWALFrame(payload []byte, seriesLen int) (record.Entry, series.Series, error) {
	if len(payload) < 1+record.HeaderBytes {
		return record.Entry{}, nil, fmt.Errorf("clsm: wal frame too short: %d", len(payload))
	}
	hasSeries := payload[0] == 1
	body := payload[1:]
	e := record.Entry{
		Key: sortable.DecodeKey(body),
		ID:  int64(binary.LittleEndian.Uint64(body[sortable.KeyBytes:])),
		TS:  int64(binary.LittleEndian.Uint64(body[sortable.KeyBytes+8:])),
	}
	if !hasSeries {
		return e, nil, nil
	}
	s, err := series.DecodeBinary(body[record.HeaderBytes:], seriesLen)
	if err != nil {
		return record.Entry{}, nil, fmt.Errorf("clsm: wal frame series: %w", err)
	}
	e.Payload = s
	return e, s, nil
}
