package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
)

// Scale fixes the summarization shape and sizes shared by the experiments.
// The zero value is replaced by the defaults used throughout the paper's
// setting (length-256 series, 16 segments, 8-bit cardinality).
type Scale struct {
	SeriesLen int
	Segments  int
	Bits      int
	Seed      int64
	Cost      storage.CostModel
}

func (s Scale) defaults() Scale {
	if s.SeriesLen == 0 {
		s.SeriesLen = 256
	}
	if s.Segments == 0 {
		s.Segments = 16
	}
	if s.Bits == 0 {
		s.Bits = 8
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Cost == (storage.CostModel{}) {
		s.Cost = storage.DefaultCostModel
	}
	return s
}

func (s Scale) config() index.Config {
	return index.Config{SeriesLen: s.SeriesLen, Segments: s.Segments, Bits: s.Bits}
}

func (s Scale) dataset(n int) *series.Dataset {
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: n, Len: s.SeriesLen, FracEvent: 0.05, Seed: s.Seed})
	return ds
}

// E1Construction regenerates the Scenario 1 construction comparison: index
// build I/O cost for every variant across dataset sizes. Expected shape:
// CTree cheapest (external sort, sequential), CLSM close, ADS+ worst and
// degrading fastest (random leaf flushes); materialized variants cost
// proportionally more bytes but keep the same ordering.
func E1Construction(sc Scale, sizes []int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E1",
		Title:   "index construction cost vs dataset size (I/O cost units)",
		Note:    "cost = seq + 10x rand page accesses; lower is better; expect CTree < CLSM << ADS+",
		Columns: append([]string{"N"}, Variants...),
	}
	for _, n := range sizes {
		ds := sc.dataset(n)
		row := []string{fmt.Sprintf("%d", n)}
		for _, v := range Variants {
			b, err := BuildVariant(v, ds, sc.config(), BuildOptions{})
			if err != nil {
				return nil, fmt.Errorf("E1 %s n=%d: %w", v, n, err)
			}
			row = append(row, fmt.Sprintf("%.0f", b.BuildCost(sc.Cost)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// E2Query regenerates the Scenario 1 query comparison: per-query I/O cost
// for approximate and exact search on a static collection, using hard
// exploratory queries (patterns with no planted near-duplicate, as when
// hunting for a supernova template). Expected shape: on materialized
// indexes — where layout alone decides cost — CTreeFull's sequential pruned
// scan beats ADSFull's scattered leaf visits; non-materialized variants
// converge because raw-file candidate fetches dominate both equally.
func E2Query(sc Scale, n, numQueries int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("query cost on N=%d static series (I/O cost units per query)", n),
		Note:    "hard exploratory queries; expect CTreeFull < CLSMFull < ADSFull on exact",
		Columns: []string{"variant", "approx", "exact", "mean 1-NN dist"},
	}
	ds := sc.dataset(n)
	rng := rand.New(rand.NewSource(sc.Seed + 1))
	queries := make([]series.Series, numQueries)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}
	for _, v := range Variants {
		b, err := BuildVariant(v, ds, sc.config(), BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("E2 %s: %w", v, err)
		}
		approx, err := RunQueries(b, queries, sc.config(), 1, false)
		if err != nil {
			return nil, err
		}
		exact, err := RunQueries(b, queries, sc.config(), 1, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(v,
			fmt.Sprintf("%.1f", approx.Cost(sc.Cost)),
			fmt.Sprintf("%.1f", exact.Cost(sc.Cost)),
			fmt.Sprintf("%.3f", exact.MeanDist))
	}
	return t, nil
}

// E3Materialization regenerates the materialization crossover: total cost
// (build + Q x exact query) of CTree vs CTreeFull as the projected query
// count Q grows. Expected shape: non-materialized wins at small Q; a
// crossover appears as Q grows — the point where the recommender switches.
func E3Materialization(sc Scale, n int, queryCounts []int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E3",
		Title:   fmt.Sprintf("materialization crossover at N=%d (total I/O cost: build + Q x query)", n),
		Note:    "expect CTree to win at small Q, CTreeFull beyond the crossover",
		Columns: []string{"Q", "CTree", "CTreeFull", "winner"},
	}
	ds := sc.dataset(n)
	maxQ := 0
	for _, q := range queryCounts {
		if q > maxQ {
			maxQ = q
		}
	}
	// Hard exploratory queries: non-materialized search pays raw-file
	// fetches for every surviving candidate, which is what materialization
	// buys back.
	rng := rand.New(rand.NewSource(sc.Seed + 2))
	queries := make([]series.Series, min(maxQ, 100))
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}

	type variantCost struct{ build, perQuery float64 }
	costs := map[string]variantCost{}
	for _, v := range []string{"CTree", "CTreeFull"} {
		b, err := BuildVariant(v, ds, sc.config(), BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("E3 %s: %w", v, err)
		}
		qs, err := RunQueries(b, queries, sc.config(), 1, true)
		if err != nil {
			return nil, err
		}
		costs[v] = variantCost{build: b.BuildCost(sc.Cost), perQuery: qs.Cost(sc.Cost)}
	}
	for _, q := range queryCounts {
		nm := costs["CTree"].build + float64(q)*costs["CTree"].perQuery
		m := costs["CTreeFull"].build + float64(q)*costs["CTreeFull"].perQuery
		winner := "CTree"
		if m < nm {
			winner = "CTreeFull"
		}
		t.AddRow(fmt.Sprintf("%d", q), fmt.Sprintf("%.0f", nm), fmt.Sprintf("%.0f", m), winner)
	}
	return t, nil
}

// E4Memory regenerates the memory/construction trade-off: build cost of
// CTree (two-pass external sort) vs ADS+ (in-memory leaf buffering) as the
// memory budget shrinks. Expected shape: CTree degrades gracefully (extra
// merge passes), ADS+ deteriorates sharply (each tiny flush is a scattered
// write).
func E4Memory(sc Scale, n int, fracs []float64) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("construction cost vs memory budget at N=%d", n),
		Note:    "budget as fraction of dataset bytes; expect ADS+ to degrade much faster than CTree",
		Columns: []string{"mem frac", "mem bytes", "CTree", "ADS+", "ADS+/CTree"},
	}
	ds := sc.dataset(n)
	dataBytes := n * series.Size(sc.SeriesLen)
	for _, f := range fracs {
		budget := int(float64(dataBytes) * f)
		if budget < 4096 {
			budget = 4096
		}
		ct, err := BuildVariant("CTree", ds, sc.config(), BuildOptions{MemBudget: budget})
		if err != nil {
			return nil, fmt.Errorf("E4 CTree f=%v: %w", f, err)
		}
		ads, err := BuildVariant("ADS+", ds, sc.config(), BuildOptions{MemBudget: budget})
		if err != nil {
			return nil, fmt.Errorf("E4 ADS+ f=%v: %w", f, err)
		}
		cc, ac := ct.BuildCost(sc.Cost), ads.BuildCost(sc.Cost)
		t.AddRow(fmt.Sprintf("%.3f", f), fmt.Sprintf("%d", budget),
			fmt.Sprintf("%.0f", cc), fmt.Sprintf("%.0f", ac), fmt.Sprintf("%.1fx", ac/cc))
	}
	return t, nil
}

// E5FillFactor regenerates the CTree read/write knob: a mixed workload of
// inserts then exact queries under different leaf fill factors. Expected
// shape: low fill factors absorb inserts with few splits (cheap writes) but
// lengthen scans (costlier reads); fill 1.0 is read-optimal, write-worst.
func E5FillFactor(sc Scale, n, inserts, queries int, fills []float64) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E5a",
		Title:   fmt.Sprintf("CTree fill-factor sweep (N=%d, %d inserts, %d exact queries)", n, inserts, queries),
		Note:    "expect insert cost to fall and query cost to rise as fill factor drops",
		Columns: []string{"fill", "build", "insert cost", "query cost", "leaves"},
	}
	ds := sc.dataset(n)
	rng := rand.New(rand.NewSource(sc.Seed + 3))
	extra := make([]series.Series, inserts)
	for i := range extra {
		extra[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}
	qs, _ := gen.Queries(ds, queries, 0.05, sc.Seed+4)
	for _, fill := range fills {
		b, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{FillFactor: fill})
		if err != nil {
			return nil, fmt.Errorf("E5a fill=%v: %w", fill, err)
		}
		tree := b.Index.(interface {
			Insert(series.Series, int64) error
			Leaves() int
		})
		before := b.Disk.Stats()
		for _, s := range extra {
			if err := tree.Insert(s, 1); err != nil {
				return nil, err
			}
		}
		insertCost := b.Disk.Stats().Sub(before).Cost(sc.Cost)
		qstats, err := RunQueries(b, qs, sc.config(), 1, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", fill),
			fmt.Sprintf("%.0f", b.BuildCost(sc.Cost)),
			fmt.Sprintf("%.0f", insertCost),
			fmt.Sprintf("%.1f", qstats.Cost(sc.Cost)),
			fmt.Sprintf("%d", tree.Leaves()))
	}
	return t, nil
}

// E5GrowthFactor regenerates the CLSM read/write knob: ingest plus exact
// queries under different growth factors. Expected shape: larger T ingests
// cheaper (fewer merges) but leaves more runs, making queries costlier.
func E5GrowthFactor(sc Scale, n, queries int, growths []int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E5b",
		Title:   fmt.Sprintf("CLSM growth-factor sweep (N=%d, %d exact queries)", n, queries),
		Note:    "expect ingest cost to fall and query cost to rise as T grows",
		Columns: []string{"T", "ingest cost", "query cost", "runs", "merges"},
	}
	ds := sc.dataset(n)
	qs, _ := gen.Queries(ds, queries, 0.05, sc.Seed+5)
	for _, g := range growths {
		b, err := BuildVariant("CLSMFull", ds, sc.config(), BuildOptions{GrowthFactor: g, MemBudget: 64 * 1024})
		if err != nil {
			return nil, fmt.Errorf("E5b T=%d: %w", g, err)
		}
		lsm := b.Index.(interface {
			Runs() int
			Merges() int64
		})
		qstats, err := RunQueries(b, qs, sc.config(), 1, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", g),
			fmt.Sprintf("%.0f", b.BuildCost(sc.Cost)),
			fmt.Sprintf("%.1f", qstats.Cost(sc.Cost)),
			fmt.Sprintf("%d", lsm.Runs()),
			fmt.Sprintf("%d", lsm.Merges()))
	}
	return t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
