package workload

import (
	"fmt"
	"sort"

	"repro/internal/adsplus"
	"repro/internal/clsm"
	"repro/internal/ctree"
	"repro/internal/gen"
	"repro/internal/heatmap"
	"repro/internal/index"
	"repro/internal/recommender"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/stream"
)

// memRaw accumulates ingested z-normalized series in memory, serving as the
// shared raw store of the streaming schemes (all schemes get the identical
// treatment, so relative index I/O is what the experiment isolates).
type memRaw struct{ ss []series.Series }

// Get implements series.RawStore.
func (m *memRaw) Get(id int) (series.Series, error) {
	if id < 0 || id >= len(m.ss) {
		return nil, fmt.Errorf("workload: raw id %d out of range", id)
	}
	return m.ss[id], nil
}

// Count implements series.RawStore.
func (m *memRaw) Count() int { return len(m.ss) }

// StreamSchemes builds the Scenario 2 contenders on fresh disks: the ADS+
// baselines with PP and TP, the CTree variants, and the recommender's
// choice CLSM+BTP.
func StreamSchemes(sc Scale, bufferEntries int) (map[string]stream.Scheme, map[string]storage.Backend, *memRaw, error) {
	sc = sc.defaults()
	cfg := sc.config()
	raw := &memRaw{}
	schemes := map[string]stream.Scheme{}
	disks := map[string]storage.Backend{}

	dPP := storage.NewDisk(0)
	adsPP, err := adsplus.New(adsplus.Options{Disk: dPP, Name: "adspp", Config: cfg, Raw: raw, BufferEntries: bufferEntries})
	if err != nil {
		return nil, nil, nil, err
	}
	schemes["ADS+PP"], disks["ADS+PP"] = stream.NewPP(adsPP, cfg), dPP

	dTP := storage.NewDisk(0)
	adsTP, err := stream.NewTP("adstp", cfg, stream.ADSFactory(dTP, nil, cfg, raw), bufferEntries, raw)
	if err != nil {
		return nil, nil, nil, err
	}
	schemes["ADS+TP"], disks["ADS+TP"] = adsTP, dTP

	dCPP := storage.NewDisk(0)
	clsmPP, err := clsm.New(clsm.Options{Disk: dCPP, Name: "clsmpp", Config: cfg, Raw: raw, BufferEntries: bufferEntries})
	if err != nil {
		return nil, nil, nil, err
	}
	schemes["CLSM+PP"], disks["CLSM+PP"] = stream.NewPP(clsmPP, cfg), dCPP

	dCTP := storage.NewDisk(0)
	ctreeTP, err := stream.NewTP("ctreetp", cfg, stream.CTreeFactory(dCTP, nil, cfg, raw), bufferEntries, raw)
	if err != nil {
		return nil, nil, nil, err
	}
	schemes["CTree+TP"], disks["CTree+TP"] = ctreeTP, dCTP

	dBTP := storage.NewDisk(0)
	btp, err := stream.NewBTP(dBTP, "btp", cfg, bufferEntries, 2, raw)
	if err != nil {
		return nil, nil, nil, err
	}
	schemes["CLSM+BTP"], disks["CLSM+BTP"] = btp, dBTP
	return schemes, disks, raw, nil
}

// E6Streaming regenerates Scenario 2: a seismic stream is ingested by each
// scheme, then windowed exact queries of increasing width are issued.
// Expected shape: CLSM+BTP sustains cheap ingest while keeping window
// queries cheap at every width and partitions bounded; ADS+PP pays for the
// whole history at every query; ADS+TP degrades for wide windows as
// partitions accumulate.
func E6Streaming(sc Scale, batches, batchSize, bufferEntries, numQueries int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("streaming: ingest + windowed exact queries (%d batches x %d series)", batches, batchSize),
		Note:    "window widths as fractions of history; expect CLSM+BTP cheapest overall with bounded partitions",
		Columns: []string{"scheme", "ingest cost", "q 5% win", "q 25% win", "q 100% win", "partitions"},
	}
	data := gen.Seismic(gen.SeismicConfig{
		Batches: batches, BatchSize: batchSize, Len: sc.SeriesLen,
		QuakeProb: 0.02, Seed: sc.Seed + 6,
	})
	maxTS := data[len(data)-1].TS
	queries := gen.TemplateQueries(gen.TemplateEarthquake, sc.SeriesLen, numQueries, 0.2, sc.Seed+7)

	schemes, disks, raw, err := StreamSchemes(sc, bufferEntries)
	if err != nil {
		return nil, err
	}
	order := []string{"ADS+PP", "ADS+TP", "CLSM+PP", "CTree+TP", "CLSM+BTP"}
	cfg := sc.config()
	for _, name := range order {
		s := schemes[name]
		disk := disks[name]
		// The raw mirror is rebuilt per scheme so IDs stay aligned with
		// each scheme's own ingestion order.
		raw.ss = nil
		disk.ResetStats()
		for _, b := range data {
			for _, ser := range b.Series {
				raw.ss = append(raw.ss, ser.ZNormalize())
				if _, err := s.Ingest(ser, b.TS); err != nil {
					return nil, fmt.Errorf("E6 %s ingest: %w", name, err)
				}
			}
		}
		ingestCost := disk.Stats().Cost(sc.Cost)

		runWin := func(frac float64) (float64, error) {
			minTS := maxTS - int64(frac*float64(maxTS))
			disk.ResetStats()
			for _, q := range queries {
				pq := index.NewQuery(q, cfg).WithWindow(minTS, maxTS)
				if _, err := s.ExactSearch(pq, 1); err != nil {
					return 0, err
				}
			}
			return disk.Stats().Cost(sc.Cost) / float64(len(queries)), nil
		}
		q5, err := runWin(0.05)
		if err != nil {
			return nil, fmt.Errorf("E6 %s q5: %w", name, err)
		}
		q25, err := runWin(0.25)
		if err != nil {
			return nil, err
		}
		q100, err := runWin(1.0)
		if err != nil {
			return nil, err
		}
		t.AddRow(name,
			fmt.Sprintf("%.0f", ingestCost),
			fmt.Sprintf("%.1f", q5), fmt.Sprintf("%.1f", q25), fmt.Sprintf("%.1f", q100),
			fmt.Sprintf("%d", s.Partitions()))
	}
	return t, nil
}

// E7Heatmap regenerates the demo's access-pattern comparison: page traces
// of CTree vs ADS+ during construction and exact queries, summarized as
// jump statistics plus ASCII heat maps. Expected shape: CTree's trace is
// near-fully sequential with short jumps; ADS+'s is scattered.
func E7Heatmap(sc Scale, n, numQueries int) (*Table, []string, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E7",
		Title:   fmt.Sprintf("access-pattern heat map at N=%d (%d exact queries)", n, numQueries),
		Note:    "seq frac = accesses continuing the previous one; expect CTree >> ADS+",
		Columns: []string{"variant", "phase", "accesses", "seq frac", "avg jump", "file swaps"},
	}
	ds := sc.dataset(n)
	queries, _ := gen.Queries(ds, numQueries, 0.05, sc.Seed+8)
	var art []string
	for _, v := range []string{"CTree", "ADS+"} {
		rec := heatmap.NewRecorder()
		disk := storage.NewDisk(0)
		disk.SetTracer(rec)
		// Build under trace.
		raw := NormStore(ds)
		var idx index.Index
		var err error
		switch v {
		case "CTree":
			idx, err = buildCTreeOn(disk, ds, sc, raw)
		default:
			idx, err = buildADSOn(disk, ds, sc, raw)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("E7 %s: %w", v, err)
		}
		js := rec.Jumps()
		t.AddRow(v, "build", fmt.Sprintf("%d", js.Accesses),
			fmt.Sprintf("%.2f", js.SeqFrac), fmt.Sprintf("%.1f", js.AvgJump), fmt.Sprintf("%d", js.FileSwaps))
		art = append(art, hottestMaps(rec, v+" build", 6)...)
		// Queries under a fresh trace.
		rec.Reset()
		for _, q := range queries {
			pq := index.NewQuery(q, sc.config())
			if _, err := idx.ExactSearch(pq, 1); err != nil {
				return nil, nil, err
			}
		}
		js = rec.Jumps()
		t.AddRow(v, "query", fmt.Sprintf("%d", js.Accesses),
			fmt.Sprintf("%.2f", js.SeqFrac), fmt.Sprintf("%.1f", js.AvgJump), fmt.Sprintf("%d", js.FileSwaps))
		art = append(art, hottestMaps(rec, v+" query", 6)...)
	}
	return t, art, nil
}

// hottestMaps renders the top-k most-accessed files of a trace; ADS+ spawns
// one extent per leaf, so the long cold tail is summarized instead of
// printed.
func hottestMaps(rec *heatmap.Recorder, label string, k int) []string {
	maps := rec.RenderAll(60)
	sort.Slice(maps, func(i, j int) bool { return total(maps[i]) > total(maps[j]) })
	var out []string
	for i, m := range maps {
		if i >= k {
			out = append(out, fmt.Sprintf("[%s] ... and %d more files", label, len(maps)-k))
			break
		}
		out = append(out, fmt.Sprintf("[%s] %s", label, m.ASCII()))
	}
	return out
}

func total(m heatmap.Map) int {
	n := 0
	for _, c := range m.Buckets {
		n += c
	}
	return n
}

func buildCTreeOn(disk storage.Backend, ds *series.Dataset, sc Scale, raw series.RawStore) (index.Index, error) {
	return ctree.Build(ctree.Options{Disk: disk, Name: "idx", Config: sc.config(), Raw: raw}, ds, 0)
}

func buildADSOn(disk storage.Backend, ds *series.Dataset, sc Scale, raw series.RawStore) (index.Index, error) {
	t, err := adsplus.New(adsplus.Options{Disk: disk, Name: "idx", Config: sc.config(), Raw: raw})
	if err != nil {
		return nil, err
	}
	for id := 0; id < ds.Count(); id++ {
		s, err := ds.Get(id)
		if err != nil {
			return nil, err
		}
		if err := t.Insert(s, 0); err != nil {
			return nil, err
		}
	}
	if err := t.FlushBuffers(); err != nil {
		return nil, err
	}
	return t, nil
}

// E8Recommender regenerates the recommender decision table over the
// scenario grid, checking the demo's two scripted choices along the way.
func E8Recommender() *Table {
	t := &Table{
		ID:      "E8",
		Title:   "recommender decision table",
		Note:    "Scenario 1 (static, few queries) -> CTree; +queries -> CTreeFull; Scenario 2 (streaming) -> CLSM+BTP",
		Columns: []string{"streaming", "queries", "memory", "storage-tight", "windows", "recommendation"},
	}
	for _, streaming := range []bool{false, true} {
		for _, q := range []int{10, 1000} {
			for _, mem := range []float64{0.01, 0.25} {
				for _, tight := range []bool{false, true} {
					s := recommender.Scenario{
						Streaming:        streaming,
						ExpectedQueries:  q,
						MemoryBudgetFrac: mem,
						StorageTight:     tight,
						SmallWindows:     streaming,
					}
					r := recommender.Recommend(s)
					win := "-"
					if streaming {
						win = "small"
					}
					t.AddRow(fmt.Sprintf("%v", streaming), fmt.Sprintf("%d", q),
						fmt.Sprintf("%.0f%%", mem*100), fmt.Sprintf("%v", tight), win, r.Variant())
				}
			}
		}
	}
	return t
}

// E9Storage regenerates the footprint comparison: index pages per variant
// (raw series file excluded) across dataset sizes. Expected shape: Coconut
// indexes are compact (packed pages); ADS+ leaves are sparse; materialized
// variants pay the payload multiple.
func E9Storage(sc Scale, sizes []int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E9",
		Title:   "index storage footprint (pages, raw file excluded)",
		Note:    "expect CTree <= CLSM < ADS+ within a materialization class",
		Columns: append([]string{"N"}, Variants...),
	}
	for _, n := range sizes {
		ds := sc.dataset(n)
		row := []string{fmt.Sprintf("%d", n)}
		for _, v := range Variants {
			b, err := BuildVariant(v, ds, sc.config(), BuildOptions{})
			if err != nil {
				return nil, fmt.Errorf("E9 %s n=%d: %w", v, n, err)
			}
			row = append(row, fmt.Sprintf("%d", b.IndexPages))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// RunAll executes every experiment at the given scale factors and returns
// the tables in order. Used by cmd/coconut-bench.
type RunConfig struct {
	Scale Scale
	// E3Scale and E5Scale default to shorter series (64 points) so that
	// several materialized entries pack per page: the materialization
	// crossover (E3) and the leaf fill factor (E5a) only have room to act
	// when a leaf holds more than one entry. See EXPERIMENTS.md.
	E3Scale     Scale
	E5Scale     Scale
	E1Sizes     []int
	E2N         int
	E2Queries   int
	E3N         int
	E3Counts    []int
	E4N         int
	E4Fracs     []float64
	E5N         int
	E5Inserts   int
	E5Queries   int
	E5Fills     []float64
	E5Growths   []int
	E6Batches   int
	E6BatchSize int
	E6Buffer    int
	E6Queries   int
	E7N         int
	E7Queries   int
	E9Sizes     []int
	E13N        int
	E13Queries  int
	E13K        int
	E13Shards   []int
	E14N        int
	E14Queries  int
	E14K        int
	E14CacheKB  []int
	E15N        int
	E15Queries  int
	E15K        int
	E15Workers  []int
	E16N        int
	E16Queries  int
	E16K        int
	// E16Dir roots the file-backend experiment's page files; empty uses a
	// temp directory removed afterwards.
	E16Dir       string
	E17N         int
	E17Queries   int
	E17K         int
	E17Repeats   int
	E17PlanCache int
}

// DefaultRunConfig returns the laptop-scale defaults used by
// cmd/coconut-bench (a few seconds per experiment).
func DefaultRunConfig() RunConfig {
	return RunConfig{
		E3Scale:     Scale{SeriesLen: 64, Segments: 8, Bits: 8},
		E5Scale:     Scale{SeriesLen: 64, Segments: 8, Bits: 8},
		E1Sizes:     []int{2000, 5000, 10000},
		E2N:         10000,
		E2Queries:   50,
		E3N:         10000,
		E3Counts:    []int{1, 10, 100, 1000, 10000},
		E4N:         10000,
		E4Fracs:     []float64{0.005, 0.02, 0.1, 0.5},
		E5N:         5000,
		E5Inserts:   500,
		E5Queries:   25,
		E5Fills:     []float64{0.5, 0.7, 0.9, 1.0},
		E5Growths:   []int{2, 4, 8},
		E6Batches:   40,
		E6BatchSize: 100,
		E6Buffer:    512,
		E6Queries:   10,
		E7N:         5000,
		E7Queries:   10,
		E9Sizes:     []int{2000, 10000},
		E13N:        10000,
		E13Queries:  64,
		E13K:        5,
		E13Shards:   []int{1, 2, 4, 8},
		E14N:        10000,
		E14Queries:  32,
		// 0 = uncached baseline; 256KB exercises eviction under pressure;
		// 64MB comfortably holds the whole working set (raw file included),
		// demonstrating the zero-miss warm pass.
		E14CacheKB: []int{0, 256, 4096, 65536},
		E14K:       5,
		E15N:       8000,
		E15Queries: 16,
		E15K:       5,
		// 0 = inline merges (the reference); 2 = background workers.
		E15Workers: []int{0, 2},
		E16N:       5000,
		E16Queries: 16,
		E16K:       5,
		E17N:       10000,
		E17Queries: 32,
		E17K:       5,
		// 4 repeats put the ideal plan-cache hit rate at 75%; 64 entries
		// hold the whole 32-query set.
		E17Repeats:   4,
		E17PlanCache: 64,
	}
}
