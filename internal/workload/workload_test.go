package workload

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/series"
)

// Small scale for fast tests: short series, modest counts. The assertions
// check the *shapes* the paper claims, not absolute numbers.
func testScale() Scale {
	return Scale{SeriesLen: 64, Segments: 8, Bits: 8, Seed: 7}
}

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tab.Columns)
	return ""
}

func cellF(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tab, row, col), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Note: "note", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2", "dropped")
	tab.AddRow("only")
	out := tab.String()
	if !strings.Contains(out, "=== T: demo ===") || !strings.Contains(out, "note") {
		t.Fatalf("header missing:\n%s", out)
	}
	if len(tab.Rows[0]) != 2 || tab.Rows[1][1] != "" {
		t.Fatal("row normalization wrong")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestBuildVariantAllVariants(t *testing.T) {
	sc := testScale()
	ds := sc.dataset(300)
	for _, v := range Variants {
		b, err := BuildVariant(v, ds, sc.config(), BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if b.Index.Count() != 300 {
			t.Fatalf("%s count = %d", v, b.Index.Count())
		}
		if b.Index.Name() != v {
			t.Fatalf("built %q when asked for %q", b.Index.Name(), v)
		}
		if b.IndexPages <= 0 {
			t.Fatalf("%s index pages = %d", v, b.IndexPages)
		}
		if b.RawPages <= 0 {
			t.Fatalf("%s raw pages = %d", v, b.RawPages)
		}
	}
	if _, err := BuildVariant("nope", ds, sc.config(), BuildOptions{}); err == nil {
		t.Fatal("unknown variant should fail")
	}
}

func TestRunQueriesProducesAnswers(t *testing.T) {
	sc := testScale()
	ds := sc.dataset(300)
	b, err := BuildVariant("CTree", ds, sc.config(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]series.Series, 5)
	for i := range qs {
		qs[i], _ = ds.Get(i)
	}
	stats, err := RunQueries(b, qs, sc.config(), 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != 5 {
		t.Fatalf("queries = %d", stats.Queries)
	}
	// Self-queries: mean distance ~0.
	if stats.MeanDist > 1e-6 {
		t.Fatalf("self-query mean dist = %v", stats.MeanDist)
	}
	if stats.Stats.Reads() == 0 {
		t.Fatal("queries should read pages")
	}
}

func TestE1ShapeCTreeBeatsADS(t *testing.T) {
	tab, err := E1Construction(testScale(), []int{1000, 3000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for r := range tab.Rows {
		ct := cellF(t, tab, r, "CTree")
		ads := cellF(t, tab, r, "ADS+")
		if ct >= ads {
			t.Errorf("row %d: CTree cost %v not below ADS+ %v", r, ct, ads)
		}
		ctf := cellF(t, tab, r, "CTreeFull")
		adsf := cellF(t, tab, r, "ADSFull")
		if ctf >= adsf {
			t.Errorf("row %d: CTreeFull cost %v not below ADSFull %v", r, ctf, adsf)
		}
	}
}

func TestE2ShapeCTreeQueryCheaper(t *testing.T) {
	tab, err := E2Query(testScale(), 5000, 10)
	if err != nil {
		t.Fatal(err)
	}
	cost := map[string]float64{}
	for r := range tab.Rows {
		cost[cell(t, tab, r, "variant")] = cellF(t, tab, r, "exact")
	}
	// The layout claim: on materialized indexes the compact contiguous scan
	// beats the scattered leaf visits.
	if cost["CTreeFull"] >= cost["ADSFull"] {
		t.Errorf("CTreeFull exact %v not below ADSFull %v", cost["CTreeFull"], cost["ADSFull"])
	}
	// Materialized beats non-materialized on query cost (no raw fetches).
	if cost["CTreeFull"] >= cost["CTree"] {
		t.Errorf("CTreeFull exact %v not below CTree %v", cost["CTreeFull"], cost["CTree"])
	}
}

func TestE3ShapeCrossoverExists(t *testing.T) {
	tab, err := E3Materialization(testScale(), 2000, []int{1, 10, 100, 1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	first := cell(t, tab, 0, "winner")
	last := cell(t, tab, len(tab.Rows)-1, "winner")
	if first != "CTree" {
		t.Errorf("at Q=1 winner = %s, want CTree", first)
	}
	if last != "CTreeFull" {
		t.Errorf("at Q=10000 winner = %s, want CTreeFull", last)
	}
	// Winner switches at most once (monotone crossover).
	switched := 0
	for r := 1; r < len(tab.Rows); r++ {
		if cell(t, tab, r, "winner") != cell(t, tab, r-1, "winner") {
			switched++
		}
	}
	if switched != 1 {
		t.Errorf("winner switched %d times, want exactly 1", switched)
	}
}

func TestE4ShapeADSDegradesFaster(t *testing.T) {
	tab, err := E4Memory(testScale(), 3000, []float64{0.01, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ratioTight := cellF(t, tab, 0, "ADS+/CTree")
	ratioAmple := cellF(t, tab, 1, "ADS+/CTree")
	if ratioTight <= ratioAmple {
		t.Errorf("ADS+/CTree ratio at tight memory (%v) not above ample (%v)", ratioTight, ratioAmple)
	}
	if ratioTight <= 1 {
		t.Errorf("ADS+ should cost more than CTree under tight memory, ratio %v", ratioTight)
	}
}

func TestE5FillFactorShape(t *testing.T) {
	tab, err := E5FillFactor(testScale(), 2000, 200, 10, []float64{0.5, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	insLow := cellF(t, tab, 0, "insert cost")  // fill 0.5
	insHigh := cellF(t, tab, 1, "insert cost") // fill 1.0
	if insLow >= insHigh {
		t.Errorf("insert cost at fill 0.5 (%v) not below fill 1.0 (%v)", insLow, insHigh)
	}
	leavesLow := cellF(t, tab, 0, "leaves")
	leavesHigh := cellF(t, tab, 1, "leaves")
	if leavesLow <= leavesHigh {
		t.Errorf("slack leaves %v not above packed %v", leavesLow, leavesHigh)
	}
}

func TestE5GrowthFactorShape(t *testing.T) {
	tab, err := E5GrowthFactor(testScale(), 3000, 10, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	ingest2 := cellF(t, tab, 0, "ingest cost")
	ingest8 := cellF(t, tab, 1, "ingest cost")
	if ingest8 >= ingest2 {
		t.Errorf("T=8 ingest %v not below T=2 %v", ingest8, ingest2)
	}
	runs2 := cellF(t, tab, 0, "runs")
	runs8 := cellF(t, tab, 1, "runs")
	if runs8 <= runs2 {
		t.Errorf("T=8 runs %v not above T=2 %v", runs8, runs2)
	}
}

func TestE6ShapeBTPWins(t *testing.T) {
	tab, err := E6Streaming(testScale(), 20, 50, 128, 4)
	if err != nil {
		t.Fatal(err)
	}
	row := map[string]int{}
	for r := range tab.Rows {
		row[cell(t, tab, r, "scheme")] = r
	}
	// Small windows: BTP far cheaper than PP (which scans everything).
	btpSmall := cellF(t, tab, row["CLSM+BTP"], "q 5% win")
	ppSmall := cellF(t, tab, row["ADS+PP"], "q 5% win")
	if btpSmall >= ppSmall {
		t.Errorf("BTP small-window %v not below ADS+PP %v", btpSmall, ppSmall)
	}
	// Partition bounding: BTP partitions strictly below TP's.
	btpParts := cellF(t, tab, row["CLSM+BTP"], "partitions")
	tpParts := cellF(t, tab, row["ADS+TP"], "partitions")
	if btpParts >= tpParts {
		t.Errorf("BTP partitions %v not below TP %v", btpParts, tpParts)
	}
	// Ingest: BTP (log-structured) below ADS+PP (scattered leaf flushes).
	btpIngest := cellF(t, tab, row["CLSM+BTP"], "ingest cost")
	adsIngest := cellF(t, tab, row["ADS+PP"], "ingest cost")
	if btpIngest >= adsIngest {
		t.Errorf("BTP ingest %v not below ADS+PP %v", btpIngest, adsIngest)
	}
}

func TestE7ShapeCTreeSequential(t *testing.T) {
	tab, art, err := E7Heatmap(testScale(), 2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	var ctreeBuild, adsBuild float64
	for r := range tab.Rows {
		v := cell(t, tab, r, "variant")
		phase := cell(t, tab, r, "phase")
		if phase != "build" {
			continue
		}
		if v == "CTree" {
			ctreeBuild = cellF(t, tab, r, "seq frac")
		} else {
			adsBuild = cellF(t, tab, r, "seq frac")
		}
	}
	if ctreeBuild <= adsBuild {
		t.Errorf("CTree build seq frac %v not above ADS+ %v", ctreeBuild, adsBuild)
	}
	if ctreeBuild < 0.8 {
		t.Errorf("CTree build seq frac = %v, want near 1", ctreeBuild)
	}
	if len(art) == 0 {
		t.Fatal("no heat-map art")
	}
}

func TestE8RecommenderTable(t *testing.T) {
	tab := E8Recommender()
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16", len(tab.Rows))
	}
	// The demo's two scripted choices must appear.
	foundS1, foundS2 := false, false
	for r := range tab.Rows {
		rec := cell(t, tab, r, "recommendation")
		if cell(t, tab, r, "streaming") == "false" && rec == "CTree" {
			foundS1 = true
		}
		if cell(t, tab, r, "streaming") == "true" && rec == "CLSM+BTP" {
			foundS2 = true
		}
	}
	if !foundS1 || !foundS2 {
		t.Errorf("scripted scenario choices missing: S1=%v S2=%v", foundS1, foundS2)
	}
}

func TestE9ShapeCompactness(t *testing.T) {
	tab, err := E9Storage(testScale(), []int{2000})
	if err != nil {
		t.Fatal(err)
	}
	ct := cellF(t, tab, 0, "CTree")
	ads := cellF(t, tab, 0, "ADS+")
	if ct > ads {
		t.Errorf("CTree pages %v above ADS+ %v", ct, ads)
	}
	ctf := cellF(t, tab, 0, "CTreeFull")
	if ctf <= ct {
		t.Errorf("materialized pages %v not above non-materialized %v", ctf, ct)
	}
}

func TestE10AblationInterleavingWins(t *testing.T) {
	tab, err := E10Ablation(testScale(), 2000, 100, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	interLoc := cellF(t, tab, 0, "locality")
	concatLoc := cellF(t, tab, 1, "locality")
	if interLoc >= concatLoc {
		t.Errorf("interleaved locality %v not below concatenated %v", interLoc, concatLoc)
	}
	interHit := cellF(t, tab, 0, "hit@leaf")
	concatHit := cellF(t, tab, 1, "hit@leaf")
	if interHit <= concatHit {
		t.Errorf("interleaved hit rate %v not above concatenated %v", interHit, concatHit)
	}
}

func TestE11CardinalityMonotone(t *testing.T) {
	tab, err := E11Cardinality(testScale(), 1000, 5, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	prevTight := -1.0
	for r := range tab.Rows {
		tight := cellF(t, tab, r, "tightness")
		if tight < prevTight {
			t.Errorf("tightness not monotone at row %d: %v after %v", r, tight, prevTight)
		}
		prevTight = tight
	}
	// More bits should never make exact queries costlier by much; the
	// 8-bit cost must be at most the 1-bit cost.
	if c8, c1 := cellF(t, tab, 2, "exact query cost"), cellF(t, tab, 0, "exact query cost"); c8 > c1 {
		t.Errorf("8-bit cost %v above 1-bit %v", c8, c1)
	}
}

func TestE12RecallShape(t *testing.T) {
	tab, err := E12Recall(testScale(), 1500, 25)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tab.Rows {
		v := cell(t, tab, r, "variant")
		recall := cellF(t, tab, r, "recall@1")
		if recall < 0.5 {
			t.Errorf("%s: recall %v < 0.5", v, recall)
		}
		infl := cellF(t, tab, r, "dist inflation")
		if infl < 0.999 {
			t.Errorf("%s: inflation %v < 1 (approx cannot beat exact)", v, infl)
		}
		ratio := cellF(t, tab, r, "approx/exact cost")
		if ratio >= 1 {
			t.Errorf("%s: approximate search not cheaper than exact (ratio %v)", v, ratio)
		}
	}
}
