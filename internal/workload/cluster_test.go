package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/shard"
)

// clusterQueries derives n probe queries (noisy copies of dataset members)
// as index.Query values.
func clusterQueries(sc Scale, ds *series.Dataset, n int) []index.Query {
	raw, _ := gen.Queries(ds, n, 0.3, sc.Seed+5)
	qs := make([]index.Query, n)
	for i, s := range raw {
		qs[i] = index.NewQuery(s, sc.config())
	}
	return qs
}

// clusterSeries derives n fresh series for insert tests.
func clusterSeries(sc Scale, ds *series.Dataset, n int) []series.Series {
	raw, _ := gen.Queries(ds, n, 0.5, sc.Seed+11)
	return raw
}

// sameResultLists asserts byte-identity between two result lists: same
// IDs, timestamps, and distance bit patterns, in the same order.
func sameResultLists(t *testing.T, label string, got, want []index.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || g.TS != w.TS || math.Float64bits(g.Dist) != math.Float64bits(w.Dist) {
			t.Fatalf("%s result %d: got (id %d, ts %d, dist %x), want (id %d, ts %d, dist %x)",
				label, i, g.ID, g.TS, math.Float64bits(g.Dist), w.ID, w.TS, math.Float64bits(w.Dist))
		}
	}
}

// TestClusterGroupSingleNodeEquivalence checks the degenerate cluster — one
// node owning every shard — against the unsharded build: exact and range
// answers must be byte-identical at every logical shard count.
func TestClusterGroupSingleNodeEquivalence(t *testing.T) {
	sc := testScale()
	ds := sc.dataset(300)
	base, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qs := clusterQueries(sc, ds, 6)
	for _, nsh := range []int{1, 2, 4} {
		all := make([]int, nsh)
		for i := range all {
			all[i] = i
		}
		cb, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{
			ClusterShards: nsh, NodeShards: all,
		})
		if err != nil {
			t.Fatalf("cluster build %d shards: %v", nsh, err)
		}
		if cb.Group == nil {
			t.Fatalf("cluster build %d shards: no Group", nsh)
		}
		if got := cb.Group.Count(); got != int64(ds.Count()) {
			t.Fatalf("cluster build %d shards holds %d series, want %d", nsh, got, ds.Count())
		}
		for _, q := range qs {
			want, err := base.Index.ExactSearch(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cb.Group.ExactSearch(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			sameResultLists(t, "exact", got, want)
			eps := want[len(want)-1].Dist * 1.1
			wantR, err := base.Index.(index.RangeSearcher).RangeSearch(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			gotR, err := cb.Group.RangeSearch(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			sameResultLists(t, "range", gotR, wantR)
		}
	}
}

// TestClusterGroupMergeEquivalence splits the shards over two and four
// in-process "nodes" and merges their per-shard collectors the way the
// router does: the merged exact answer must be byte-identical to the
// unsharded one.
func TestClusterGroupMergeEquivalence(t *testing.T) {
	sc := testScale()
	ds := sc.dataset(300)
	base, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	qs := clusterQueries(sc, ds, 6)
	const nsh = 4
	for _, split := range [][][]int{
		{{0, 1}, {2, 3}},
		{{0}, {1}, {2}, {3}},
		{{0, 2}, {1, 3}},
	} {
		nodes := make([]*Built, len(split))
		for i, owned := range split {
			b, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{
				ClusterShards: nsh, NodeShards: owned,
			})
			if err != nil {
				t.Fatalf("node %d: %v", i, err)
			}
			nodes[i] = b
		}
		for _, q := range qs {
			want, err := base.Index.ExactSearch(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			merged := index.NewCollector(5)
			for _, nb := range nodes {
				col, err := nb.Group.ExactSearchShards(q, 5, nil)
				if err != nil {
					t.Fatal(err)
				}
				merged.Merge(col)
			}
			sameResultLists(t, "merged exact", merged.Results(), want)
		}
	}
}

// TestClusterGroupShardSubsetProbes exercises the router-facing per-shard
// request path: probing shard subsets and rejecting unowned shards.
func TestClusterGroupShardSubsetProbes(t *testing.T) {
	sc := testScale()
	ds := sc.dataset(200)
	b, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{
		ClusterShards: 4, NodeShards: []int{0, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := clusterQueries(sc, ds, 1)
	if _, err := b.Group.ExactSearchShards(qs[0], 3, []int{1}); err == nil ||
		!strings.Contains(err.Error(), "does not own") {
		t.Fatalf("unowned shard probe: err = %v", err)
	}
	colBoth, err := b.Group.ExactSearchShards(qs[0], 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	col0, err := b.Group.ExactSearchShards(qs[0], 3, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	col2, err := b.Group.ExactSearchShards(qs[0], 3, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	col0.Merge(col2)
	sameResultLists(t, "subset merge", col0.Results(), colBoth.Results())
}

// TestClusterInsertContiguity checks the replica-write discipline: dense
// router-assigned IDs are accepted, anything else — an unowned shard, a
// repeat, or an ID that skips the shard's next expected one — fails loudly.
func TestClusterInsertContiguity(t *testing.T) {
	sc := testScale()
	ds := sc.dataset(200)
	const nsh = 4
	b, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{
		ClusterShards: nsh, NodeShards: []int{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := clusterSeries(sc, ds, 8)

	// Dense IDs continuing from the build apply cleanly.
	next := int64(ds.Count())
	for i := 0; i < 5; i++ {
		if err := b.ClusterInsert(next, extra[i%len(extra)], 100+int64(i)); err != nil {
			t.Fatalf("dense insert id %d: %v", next, err)
		}
		next++
	}
	if got := b.Group.Count(); got != int64(ds.Count())+5 {
		t.Fatalf("count %d after inserts, want %d", got, ds.Count()+5)
	}

	// Re-inserting an applied ID is non-ascending.
	if err := b.ClusterInsert(next-1, extra[0], 200); err == nil ||
		!strings.Contains(err.Error(), "not ascending") {
		t.Fatalf("repeat insert: err = %v", err)
	}
	// Skipping the shard's next expected ID means this replica missed a
	// write: rejected, so the router can mark it stale.
	si := shard.Of(next, nsh)
	skipped := next + 1
	for shard.Of(skipped, nsh) != si {
		skipped++
	}
	if err := b.ClusterInsert(skipped, extra[1], 201); err == nil ||
		!strings.Contains(err.Error(), "missed a write") {
		t.Fatalf("skipping insert: err = %v", err)
	}

	// A node owning a subset rejects IDs placed elsewhere.
	sub, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{
		ClusterShards: nsh, NodeShards: []int{0},
	})
	if err != nil {
		t.Fatal(err)
	}
	foreign := int64(ds.Count())
	for shard.Of(foreign, nsh) == 0 {
		foreign++
	}
	if err := sub.ClusterInsert(foreign, extra[2], 202); err == nil ||
		!strings.Contains(err.Error(), "not owned") {
		t.Fatalf("foreign shard insert: err = %v", err)
	}
}

// TestClusterInsertSearchable checks inserted series are found with their
// timestamps, identically to the same inserts on an unsharded build.
func TestClusterInsertSearchable(t *testing.T) {
	sc := testScale()
	ds := sc.dataset(200)
	base, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{
		ClusterShards: 4, NodeShards: []int{0, 1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	extra := clusterSeries(sc, ds, 10)
	next := int64(ds.Count())
	for i, s := range extra {
		ts := 500 + int64(i)
		if err := base.Ingest(s, ts); err != nil {
			t.Fatal(err)
		}
		if err := cb.ClusterInsert(next, s, ts); err != nil {
			t.Fatal(err)
		}
		next++
	}
	qs := clusterQueries(sc, ds, 4)
	for _, q := range qs {
		want, err := base.Index.ExactSearch(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cb.Group.ExactSearch(q, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameResultLists(t, "post-insert exact", got, want)
		// Windowed to the inserted range: only the new series qualify.
		wq := q.WithWindow(500, 600)
		want, err = base.Index.ExactSearch(wq, 8)
		if err != nil {
			t.Fatal(err)
		}
		got, err = cb.Group.ExactSearch(wq, 8)
		if err != nil {
			t.Fatal(err)
		}
		sameResultLists(t, "windowed exact", got, want)
		for _, r := range got {
			if r.TS < 500 || r.TS > 600 {
				t.Fatalf("windowed result ts %d outside [500, 600]", r.TS)
			}
		}
	}
}

// TestClusterBuildValidation checks cluster build option validation.
func TestClusterBuildValidation(t *testing.T) {
	sc := testScale()
	ds := sc.dataset(50)
	for _, tc := range []struct {
		name string
		opts BuildOptions
		want string
	}{
		{"no node shards", BuildOptions{ClusterShards: 4}, "node_shards"},
		{"shard out of range", BuildOptions{ClusterShards: 2, NodeShards: []int{2}}, "outside"},
		{"duplicate shard", BuildOptions{ClusterShards: 2, NodeShards: []int{1, 1}}, "twice"},
		{"conflict with shards", BuildOptions{ClusterShards: 2, NodeShards: []int{0}, Shards: 2}, "shards must stay unset"},
		{"missing cluster shards", BuildOptions{NodeShards: []int{0}}, "cluster_shards"},
	} {
		if _, err := BuildVariant("CTreeFull", ds, sc.config(), tc.opts); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
