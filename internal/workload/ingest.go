package workload

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
)

// E15Ingest measures the durable ingest subsystem end to end, in two
// sections sharing one table:
//
// Durability rows (wal=off / wal=batched / wal=sync) measure what crash
// safety costs at ingest time: N series inserted into a CLSM with the WAL
// disabled, group-committed, or fsynced per insert. The syncs column shows
// the group commit working — batched durability acknowledges the same
// inserts with a small fraction of the fsyncs.
//
// Compaction rows (workers=0 / workers=N) measure what moving merges off
// the foreground path buys, and prove its safety property: with background
// workers, exact k-NN queries issued immediately after the last insert —
// while level merges are still in flight — must return results
// byte-identical to a fully quiesced index over the same data, and to the
// inline (workers=0) build. A divergence fails the experiment rather than
// publishing a wrong table.
func E15Ingest(sc Scale, n, numQueries, k int, workers []int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID: "E15",
		Title: fmt.Sprintf("durable ingest + background compaction over N=%d series, %d exact %d-NN queries (CLSM)",
			n, numQueries, k),
		Note: "wal rows: ingest cost of durability (group commit vs per-insert fsync); " +
			"worker rows: searches issued mid-compaction are byte-identical to the quiesced index (verified)",
		Columns: []string{"mode", "ingest ms", "series/s", "wal syncs", "mid q/s", "quiesced q/s"},
	}
	ds := sc.dataset(n)
	rng := rand.New(rand.NewSource(sc.Seed + 15))
	queries := make([]series.Series, numQueries)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}
	iqs := make([]index.Query, len(queries))
	for i, q := range queries {
		iqs[i] = index.NewQuery(q, sc.config())
	}
	// A small memory budget keeps the buffer tiny, so ingest produces many
	// runs and real merge cascades — the regime the subsystem exists for.
	base := BuildOptions{MemBudget: 16 << 10, RawInMemory: true}

	runQueries := func(b *Built) ([][]index.Result, time.Duration, error) {
		start := time.Now()
		out := make([][]index.Result, len(iqs))
		for i, q := range iqs {
			rs, err := b.Index.ExactSearch(q, k)
			if err != nil {
				return nil, 0, err
			}
			out[i] = rs
		}
		return out, time.Since(start), nil
	}

	// --- Durability section ---
	for _, mode := range []string{"wal=off", "wal=batched", "wal=sync"} {
		opts := base
		if mode != "wal=off" {
			dir, err := os.MkdirTemp("", "coconut-e15-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			opts.WALDir = dir
			opts.Durability = mode[len("wal="):]
		}
		b, err := BuildVariant("CLSM", ds, sc.config(), opts)
		if err != nil {
			return nil, fmt.Errorf("E15 %s: %w", mode, err)
		}
		syncs := "-"
		if st, ok := b.WALStats(); ok {
			syncs = fmt.Sprintf("%d", st.Syncs)
		}
		t.AddRow(
			mode,
			fmt.Sprintf("%d", b.BuildTime.Milliseconds()),
			fmt.Sprintf("%.0f", float64(n)/b.BuildTime.Seconds()),
			syncs,
			"-", "-",
		)
		if err := b.Close(); err != nil {
			return nil, fmt.Errorf("E15 %s close: %w", mode, err)
		}
	}

	// --- Compaction section ---
	// The inline build is the byte-identity reference: same inserts, same
	// flush boundaries, merges cascading synchronously.
	var reference [][]index.Result
	for _, w := range workers {
		opts := base
		opts.CompactionWorkers = w
		b, err := BuildVariant("CLSM", ds, sc.config(), opts)
		if err != nil {
			return nil, fmt.Errorf("E15 workers=%d: %w", w, err)
		}
		// Mid-compaction pass: with workers > 0 this overlaps whatever
		// merges the tail of the ingest left in flight.
		mid, midTime, err := runQueries(b)
		if err != nil {
			return nil, fmt.Errorf("E15 workers=%d mid: %w", w, err)
		}
		if err := b.Quiesce(); err != nil {
			return nil, fmt.Errorf("E15 workers=%d quiesce: %w", w, err)
		}
		quiesced, quiescedTime, err := runQueries(b)
		if err != nil {
			return nil, fmt.Errorf("E15 workers=%d quiesced: %w", w, err)
		}
		if err := sameResults(mid, quiesced); err != nil {
			return nil, fmt.Errorf("E15 workers=%d: mid-compaction diverged from quiesced: %w", w, err)
		}
		if reference == nil {
			reference = quiesced
		} else if err := sameResults(reference, quiesced); err != nil {
			return nil, fmt.Errorf("E15 workers=%d: diverged from workers=%d: %w", w, workers[0], err)
		}
		qps := func(d time.Duration) float64 { return float64(len(iqs)) / d.Seconds() }
		t.AddRow(
			fmt.Sprintf("workers=%d", w),
			fmt.Sprintf("%d", b.BuildTime.Milliseconds()),
			fmt.Sprintf("%.0f", float64(n)/b.BuildTime.Seconds()),
			"-",
			fmt.Sprintf("%.0f", qps(midTime)),
			fmt.Sprintf("%.0f", qps(quiescedTime)),
		)
		if err := b.Close(); err != nil {
			return nil, fmt.Errorf("E15 workers=%d close: %w", w, err)
		}
	}
	return t, nil
}
