package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
)

// E13Sharding measures the sharding + batching layer: exact k-NN queries
// against a CTreeFull hash-partitioned across increasing shard counts,
// executed one at a time (the per-query path) and as one batch (the
// pipelined path). Alongside wall-clock throughput it reports the I/O cost
// per query, which grows mildly with shards (every shard pays its own
// approximate probe) — the trade the recommender weighs against the
// parallel speedup. Results at every shard count and on both paths are
// byte-identical (asserted here, not just in tests: a mismatch fails the
// experiment rather than publishing a wrong table).
func E13Sharding(sc Scale, n, numQueries, k int, shardCounts []int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:    "E13",
		Title: fmt.Sprintf("sharded batch execution over N=%d series, %d exact %d-NN queries", n, numQueries, k),
		Note: "loop = one query at a time; batch = SearchBatch pipelining pooled contexts across the worker pool; " +
			"answers byte-identical at every shard count (verified)",
		Columns: []string{"shards", "build ms", "loop q/s", "batch q/s", "batch speedup", "io-cost/query"},
	}
	ds := sc.dataset(n)
	rng := rand.New(rand.NewSource(sc.Seed + 13))
	queries := make([]series.Series, numQueries)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}
	iqs := make([]index.Query, len(queries))
	for i, q := range queries {
		iqs[i] = index.NewQuery(q, sc.config())
	}

	var reference [][]index.Result
	for _, shards := range shardCounts {
		b, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{
			Shards: shards, Parallelism: -1, RawInMemory: true,
		})
		if err != nil {
			return nil, fmt.Errorf("E13 shards=%d: %w", shards, err)
		}

		loopStart := time.Now()
		looped := make([][]index.Result, len(iqs))
		for i, q := range iqs {
			looped[i], err = b.Index.ExactSearch(q, k)
			if err != nil {
				return nil, fmt.Errorf("E13 shards=%d query %d: %w", shards, i, err)
			}
		}
		loopTime := time.Since(loopStart)

		before := b.IOStats()
		batchStart := time.Now()
		bs, ok := b.Index.(index.BatchSearcher)
		if !ok {
			return nil, fmt.Errorf("E13: %s has no batch path", b.Index.Name())
		}
		batched, err := bs.ExactSearchBatch(iqs, k)
		if err != nil {
			return nil, fmt.Errorf("E13 shards=%d batch: %w", shards, err)
		}
		batchTime := time.Since(batchStart)
		ioPerQuery := b.IOStats().Sub(before).Cost(sc.Cost) / float64(len(iqs))

		if err := sameResults(looped, batched); err != nil {
			return nil, fmt.Errorf("E13 shards=%d: batch diverged from loop: %w", shards, err)
		}
		if reference == nil {
			reference = looped
		} else if err := sameResults(reference, looped); err != nil {
			return nil, fmt.Errorf("E13 shards=%d: sharded diverged from shards=%d: %w", shards, shardCounts[0], err)
		}

		qps := func(d time.Duration) float64 { return float64(len(iqs)) / d.Seconds() }
		t.AddRow(
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", b.BuildTime.Milliseconds()),
			fmt.Sprintf("%.0f", qps(loopTime)),
			fmt.Sprintf("%.0f", qps(batchTime)),
			fmt.Sprintf("%.2fx", loopTime.Seconds()/batchTime.Seconds()),
			fmt.Sprintf("%.0f", ioPerQuery),
		)
	}
	return t, nil
}

// sameResults reports the first divergence between two result batches —
// the experiment's built-in equivalence assertion.
func sameResults(a, b [][]index.Result) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d result sets", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("query %d: %d vs %d results", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return fmt.Errorf("query %d result %d: %+v vs %+v", i, j, a[i][j], b[i][j])
			}
		}
	}
	return nil
}
