package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
)

// E14CacheSweep measures the buffer-pool layer: exact k-NN queries against
// a non-materialized CTree (raw series file on disk, so every verified
// candidate pays a page fetch) at increasing cache sizes. For each size the
// query set runs twice — cold (cache empty after the build's stats reset)
// and warm (same queries again) — and the table reports the warm hit
// ratio, the I/O cost per query on both passes, and warm throughput.
//
// Two properties are asserted rather than merely reported, failing the
// experiment instead of publishing a wrong table:
//
//   - results at every cache size, cold and warm, are byte-identical to
//     the uncached run's;
//   - whenever the cache is large enough to hold the whole working set,
//     the warm pass's I/O cost per query is strictly below the cold
//     pass's (with a full-fit cache the warm pass performs no disk reads
//     at all). Partial caches are reported but not asserted: absorbing
//     some reads of a sequential scan legitimately reclassifies its
//     neighbors as random, so a too-small cache can even cost more.
func E14CacheSweep(sc Scale, n, numQueries, k int, cacheKB []int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:    "E14",
		Title: fmt.Sprintf("buffer-pool sweep over N=%d series, %d exact %d-NN queries (CTree, raw file on disk)", n, numQueries, k),
		Note: "cold = first pass after build, warm = same queries repeated; hit% is the warm pass's; " +
			"answers byte-identical to uncached at every size (verified); warm io-cost strictly below cold at full-fit sizes (verified)",
		Columns: []string{"cache", "hit%", "cold io/q", "warm io/q", "warm q/s", "evictions"},
	}
	ds := sc.dataset(n)
	rng := rand.New(rand.NewSource(sc.Seed + 14))
	queries := make([]series.Series, numQueries)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}
	iqs := make([]index.Query, len(queries))
	for i, q := range queries {
		iqs[i] = index.NewQuery(q, sc.config())
	}

	runPass := func(b *Built) ([][]index.Result, float64, time.Duration, error) {
		before := b.IOStats()
		start := time.Now()
		out := make([][]index.Result, len(iqs))
		for i, q := range iqs {
			rs, err := b.Index.ExactSearch(q, k)
			if err != nil {
				return nil, 0, 0, err
			}
			out[i] = rs
		}
		elapsed := time.Since(start)
		cost := b.IOStats().Sub(before).Cost(sc.Cost) / float64(len(iqs))
		return out, cost, elapsed, nil
	}

	// The byte-identity reference is always a dedicated uncached run, so
	// the "identical to uncached" guarantee holds even when the caller's
	// sweep omits the 0 (uncached) row.
	refBuilt, err := BuildVariant("CTree", ds, sc.config(), BuildOptions{})
	if err != nil {
		return nil, fmt.Errorf("E14 uncached reference: %w", err)
	}
	reference, _, _, err := runPass(refBuilt)
	if err != nil {
		return nil, fmt.Errorf("E14 uncached reference: %w", err)
	}
	for _, kb := range cacheKB {
		b, err := BuildVariant("CTree", ds, sc.config(), BuildOptions{
			CacheBytes: int64(kb) * 1024,
		})
		if err != nil {
			return nil, fmt.Errorf("E14 cache=%dKB: %w", kb, err)
		}
		cold, coldCost, _, err := runPass(b)
		if err != nil {
			return nil, fmt.Errorf("E14 cache=%dKB cold: %w", kb, err)
		}
		warmBefore := b.IOStats()
		warm, warmCost, warmTime, err := runPass(b)
		if err != nil {
			return nil, fmt.Errorf("E14 cache=%dKB warm: %w", kb, err)
		}
		warmStats := b.IOStats().Sub(warmBefore)

		if err := sameResults(reference, cold); err != nil {
			return nil, fmt.Errorf("E14 cache=%dKB: cold diverged from uncached: %w", kb, err)
		}
		if err := sameResults(reference, warm); err != nil {
			return nil, fmt.Errorf("E14 cache=%dKB: warm diverged from uncached: %w", kb, err)
		}
		var evictions int64
		fullFit := false
		if b.Cache != nil {
			evictions = b.Cache.Evictions()
			fullFit = b.Cache.CapacityFrames() >= b.Disk.TotalPages()
		}
		if fullFit && !(warmCost < coldCost) {
			return nil, fmt.Errorf("E14 cache=%dKB: warm io-cost/query %.1f not below cold %.1f despite full-fit cache",
				kb, warmCost, coldCost)
		}
		label := fmt.Sprintf("%dKB", kb)
		if kb == 0 {
			label = "off"
		}
		t.AddRow(
			label,
			fmt.Sprintf("%.1f", 100*warmStats.HitRatio()),
			fmt.Sprintf("%.0f", coldCost),
			fmt.Sprintf("%.0f", warmCost),
			fmt.Sprintf("%.0f", float64(len(iqs))/warmTime.Seconds()),
			fmt.Sprintf("%d", evictions),
		)
	}
	return t, nil
}
