package workload

import (
	"testing"

	"repro/internal/series"
)

func TestE15IngestSmoke(t *testing.T) {
	tbl, err := E15Ingest(Scale{}, 1500, 4, 3, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (3 wal modes + 2 worker modes)", len(tbl.Rows))
	}
}

func TestBuiltDurableIngestLifecycle(t *testing.T) {
	sc := Scale{}.defaults()
	ds := sc.dataset(800)
	b, err := BuildVariant("CLSM", ds, sc.config(), BuildOptions{
		MemBudget: 16 << 10, RawInMemory: true,
		WALDir: t.TempDir(), Durability: "sync", CompactionWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := b.WALStats(); !ok || st.Appends != 800 {
		t.Fatalf("wal stats: %+v ok=%v", st, ok)
	}
	// Live ingest keeps working post-build, raw store included.
	s, _ := ds.Get(0)
	before := b.Index.Count()
	if err := b.Ingest(append(series.Series(nil), s...), 7); err != nil {
		t.Fatal(err)
	}
	if b.Index.Count() != before+1 {
		t.Fatalf("count after ingest = %d, want %d", b.Index.Count(), before+1)
	}
	if err := b.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if cst, ok := b.CompactionStats(); !ok || !cst.Background {
		t.Fatalf("compaction stats: %+v ok=%v", cst, ok)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltIngestGuards(t *testing.T) {
	sc := Scale{}.defaults()
	ds := sc.dataset(300)
	// Non-materialized with the raw series in a sealed on-disk file: ingest
	// must refuse rather than corrupt searches.
	b, err := BuildVariant("CLSM", ds, sc.config(), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := ds.Get(0)
	if err := b.Ingest(s, 0); err == nil {
		t.Fatal("sealed-raw-file build should refuse ingest")
	}
	// A WAL directory that already holds a log must be refused.
	dir := t.TempDir()
	b2, err := BuildVariant("CLSM", ds, sc.config(), BuildOptions{RawInMemory: true, WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	if _, err := BuildVariant("CLSM", ds, sc.config(), BuildOptions{RawInMemory: true, WALDir: dir}); err == nil {
		t.Fatal("reusing a WAL dir should fail the build")
	}
}
