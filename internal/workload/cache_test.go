package workload

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
)

// TestE14CacheSweep runs the cache sweep at test scale: the experiment
// itself asserts byte-identity against the uncached run and the strict
// warm-below-cold property at full-fit sizes, so a pass here is the
// regression guarantee.
func TestE14CacheSweep(t *testing.T) {
	sc := Scale{SeriesLen: 64, Segments: 8, Bits: 8, Seed: 7}
	tbl, err := E14CacheSweep(sc, 2000, 8, 3, []int{0, 16, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Rows); got != 3 {
		t.Fatalf("E14 produced %d rows, want 3", got)
	}
	if !strings.Contains(tbl.Rows[0][0], "off") {
		t.Fatalf("first row should be the uncached baseline, got %q", tbl.Rows[0][0])
	}
}

// TestBuildVariantCachedEquivalence pins the core cached-vs-uncached
// contract at the workload layer across index families: identical exact
// answers cold and warm, and a warm full-fit cache serving repeat queries
// without any disk reads.
func TestBuildVariantCachedEquivalence(t *testing.T) {
	sc := Scale{SeriesLen: 64, Segments: 8, Bits: 8, Seed: 3}
	sc = sc.defaults()
	ds := sc.dataset(1500)
	rng := rand.New(rand.NewSource(11))
	queries := make([]index.Query, 6)
	for i := range queries {
		queries[i] = index.NewQuery(gen.RandomWalk(rng, sc.SeriesLen), sc.config())
	}
	for _, v := range []string{"CTree", "CLSMFull", "ADS+"} {
		plain, err := BuildVariant(v, ds, sc.config(), BuildOptions{})
		if err != nil {
			t.Fatalf("%s uncached: %v", v, err)
		}
		cached, err := BuildVariant(v, ds, sc.config(), BuildOptions{CacheBytes: 8 << 20})
		if err != nil {
			t.Fatalf("%s cached: %v", v, err)
		}
		for qi, q := range queries {
			want, err := plain.Index.ExactSearch(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			for pass := 0; pass < 2; pass++ { // cold then warm
				got, err := cached.Index.ExactSearch(q, 3)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("%s query %d pass %d: %d vs %d results", v, qi, pass, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s query %d pass %d result %d: %+v vs %+v", v, qi, pass, i, got[i], want[i])
					}
				}
			}
		}
		if cached.Pool == nil {
			t.Fatalf("%s: cached build has no pool", v)
		}
		// Warm repeat of the whole query set must be all hits: no disk
		// reads at all with a full-fit cache.
		before := cached.IOStats()
		for _, q := range queries {
			if _, err := cached.Index.ExactSearch(q, 3); err != nil {
				t.Fatal(err)
			}
		}
		diff := cached.IOStats().Sub(before)
		if diff.Reads() != 0 {
			t.Fatalf("%s: warm full-fit pass performed %d disk reads (%s)", v, diff.Reads(), diff)
		}
		if diff.CacheHits == 0 || diff.CacheMisses != 0 {
			t.Fatalf("%s: warm full-fit pass hits=%d misses=%d", v, diff.CacheHits, diff.CacheMisses)
		}
	}
}

// TestShardedBuildSharesCache asserts a sharded cached build attaches every
// shard's disk to one shared frame store and aggregates cache counters in
// IOStats.
func TestShardedBuildSharesCache(t *testing.T) {
	sc := Scale{SeriesLen: 64, Segments: 8, Bits: 8, Seed: 5}
	sc = sc.defaults()
	ds := sc.dataset(1200)
	b, err := BuildVariant("CTreeFull", ds, sc.config(), BuildOptions{
		Shards: 3, CacheBytes: 4 << 20, RawInMemory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Cache == nil {
		t.Fatal("sharded cached build has no shared cache")
	}
	if got := len(b.ShardPools); got != 3 {
		t.Fatalf("%d shard pools, want 3", got)
	}
	for i, p := range b.ShardPools {
		if p.Cache() != b.Cache {
			t.Fatalf("shard %d pool uses a different cache", i)
		}
	}
	rng := rand.New(rand.NewSource(17))
	q := index.NewQuery(gen.RandomWalk(rng, sc.SeriesLen), sc.config())
	if _, err := b.Index.ExactSearch(q, 3); err != nil {
		t.Fatal(err)
	}
	before := b.IOStats()
	if _, err := b.Index.ExactSearch(q, 3); err != nil {
		t.Fatal(err)
	}
	diff := b.IOStats().Sub(before)
	if diff.CacheHits == 0 {
		t.Fatalf("warm sharded query recorded no cache hits (%s)", diff)
	}
	if diff.Reads() != 0 {
		t.Fatalf("warm sharded query performed %d disk reads (%s)", diff.Reads(), diff)
	}
}
