package workload

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/series"
)

// TestE16BackendEquivalence runs the storage-backend experiment at test
// scale: it asserts internally that every variant — ADS+ included, the one
// index the facade-level equivalence suite cannot reach — returns
// byte-identical answers with identical I/O accounting on the simulated
// disk and the file-backed page store.
func TestE16BackendEquivalence(t *testing.T) {
	sc := Scale{SeriesLen: 64, Segments: 8, Bits: 8, Seed: 7}
	tbl, err := E16Backend(sc, 1200, 6, 5, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Variants) {
		t.Fatalf("expected %d rows, got %d", len(Variants), len(tbl.Rows))
	}
}

// TestBuildVariantFileBackendSharded pins the per-shard directory layout:
// a sharded file-backed build keeps each shard's pages in its own
// shard-NNN subdirectory, and answers match the simulated sharded build.
func TestBuildVariantFileBackendSharded(t *testing.T) {
	sc := Scale{SeriesLen: 64, Segments: 8, Bits: 8, Seed: 8}
	ds := sc.dataset(900)
	dir := filepath.Join(t.TempDir(), "store")
	sim, err := BuildVariant("CTree", ds, sc.config(), BuildOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sim.Close()
	file, err := BuildVariant("CTree", ds, sc.config(), BuildOptions{Shards: 3, StorageDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer file.Close()
	if got := len(file.ShardDisks); got != 3 {
		t.Fatalf("expected 3 shard disks, got %d", got)
	}
	for i, d := range file.ShardDisks {
		if d.Kind() != "file" {
			t.Fatalf("shard %d backend %q, want file", i, d.Kind())
		}
	}
	rng := rand.New(rand.NewSource(99))
	queries := make([]series.Series, 5)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}
	simQS, err := RunQueries(sim, queries, sc.config(), 5, true)
	if err != nil {
		t.Fatal(err)
	}
	fileQS, err := RunQueries(file, queries, sc.config(), 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if simQS.MeanDist != fileQS.MeanDist {
		t.Fatalf("mean best distance diverged: sim %v, file %v", simQS.MeanDist, fileQS.MeanDist)
	}
	if simQS.Stats != fileQS.Stats {
		t.Fatalf("query accounting diverged:\nsim:  %+v\nfile: %+v", simQS.Stats, fileQS.Stats)
	}
	// Each shard's pages live under its own subdirectory of the root.
	for i := 0; i < 3; i++ {
		sub := filepath.Join(dir, fmt.Sprintf("shard-%03d", i))
		if fi, err := os.Stat(sub); err != nil || !fi.IsDir() {
			t.Fatalf("shard %d dir %s missing: %v", i, sub, err)
		}
	}
}
