package workload

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/adsplus"
	"repro/internal/bufpool"
	"repro/internal/clsm"
	"repro/internal/compact"
	"repro/internal/ctree"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/series"
	"repro/internal/shard"
	"repro/internal/storage"
	"repro/internal/wal"
)

// Variant names accepted by BuildVariant, matching Figure 1 of the paper.
var Variants = []string{"ADS+", "ADSFull", "CTree", "CTreeFull", "CLSM", "CLSMFull"}

// normStore adapts a dataset to the z-normalized raw store the indexes
// expect (indexes store and compare z-normalized series).
type normStore struct{ d *series.Dataset }

// Get returns the z-normalized series with the given ID.
func (n normStore) Get(id int) (series.Series, error) {
	s, err := n.d.Get(id)
	if err != nil {
		return nil, err
	}
	return s.ZNormalize(), nil
}

// Count returns the dataset size.
func (n normStore) Count() int { return n.d.Count() }

// GetInto implements series.IntoGetter: the raw series is normalized into
// dst, so repeated fetches through a scratch buffer allocate nothing.
func (n normStore) GetInto(id int, dst series.Series) (series.Series, error) {
	s, err := n.d.Get(id)
	if err != nil {
		return nil, err
	}
	return s.ZNormalizeInto(dst), nil
}

// NormStore wraps a dataset as a z-normalizing series.RawStore.
func NormStore(d *series.Dataset) series.RawStore { return normStore{d} }

// DiskRawStore materializes the z-normalized dataset onto the disk as the
// raw series file non-materialized indexes fetch from, charging its I/O to
// the disk like the paper's raw data file.
func DiskRawStore(d storage.Backend, ds *series.Dataset, name string) (*storage.RawFile, error) {
	rf, err := storage.CreateRawFile(d, name, ds.Len)
	if err != nil {
		return nil, err
	}
	for id := 0; id < ds.Count(); id++ {
		s, err := ds.Get(id)
		if err != nil {
			return nil, err
		}
		if _, err := rf.Append(s.ZNormalize()); err != nil {
			return nil, err
		}
	}
	if err := rf.Seal(); err != nil {
		return nil, err
	}
	return rf, nil
}

// BuildOptions tune BuildVariant.
type BuildOptions struct {
	// MemBudget is the construction memory in bytes (external sort for
	// CTree; write buffer for CLSM; insert buffer for ADS+). Default 1 MiB.
	MemBudget int
	// FillFactor applies to CTree (default 1.0).
	FillFactor float64
	// GrowthFactor applies to CLSM (default 4).
	GrowthFactor int
	// LeafCapacity applies to ADS+ (default 4 pages worth).
	LeafCapacity int
	// RawInMemory serves raw-series fetches from memory instead of the
	// on-disk raw file. The default (false) charges non-materialized query
	// fetches their page I/O, as in the paper.
	RawInMemory bool
	// Parallelism bounds worker goroutines for construction sorting and
	// searches of the built index. The default (0) means 1 — fully serial —
	// so experiment tables keep the paper's single-stream I/O accounting;
	// pass a higher value (or a negative one for GOMAXPROCS) to exercise
	// the parallel query engine.
	Parallelism int
	// Shards > 1 hash-partitions the dataset across that many independent
	// shards of the chosen variant, each on its own disk, wrapped in a
	// shard.Sharded that fans queries across them (see internal/shard).
	// Shard construction and cross-shard probing use the Parallelism pool;
	// per-shard internals stay serial. 0 or 1 builds the unsharded index.
	Shards int
	// CacheBytes sizes the buffer pool between the index and its disk(s):
	// index pages and raw-series pages are served from memory on repeat
	// access, and Cost charges only the misses. 0 (the default) keeps every
	// read on the simulated head — the paper-faithful accounting. Sharded
	// builds share one pool of this size across all shards. Results are
	// byte-identical at every cache size.
	CacheBytes int64
	// WALDir (CLSM variants, unsharded) makes ingest durable: every insert
	// is appended to a segmented write-ahead log in this host-filesystem
	// directory before it is buffered, manifests persist on every flush and
	// merge, and segments truncate once their entries are safely in an
	// on-disk run. The directory must be fresh. Empty disables the WAL.
	WALDir string
	// Durability selects the WAL group-commit policy: "" or "batched"
	// groups several inserts per fsync; "sync" fsyncs every insert.
	Durability string
	// CompactionWorkers (CLSM variants, unsharded) moves level merges onto
	// a background pool of that many workers; 0 keeps the synchronous
	// cascade inside flushes — the paper-faithful accounting.
	CompactionWorkers int
	// Compress stores on-disk pages (CTree leaves, CLSM runs) in the
	// packed encoding: delta/bit-packed keys, frame-of-reference IDs and
	// timestamps. More entries per page, lower I/O cost per query,
	// byte-identical results.
	Compress bool
	// StorageDir selects the file-backed storage backend: index and raw
	// pages live as page-aligned files under this host directory instead
	// of the simulated in-memory disk. Results and Stats are byte-for-byte
	// identical to the simulated backend; sharded builds give each shard
	// its own shard-NNN subdirectory. Empty (the default) keeps the
	// paper-faithful simulated disk.
	StorageDir string
	// ClusterShards > 0 builds the node-local portion of a distributed
	// index: the dataset is hash-partitioned into ClusterShards logical
	// shards (the same placement Shards uses), but only the NodeShards
	// subset is materialized here, wrapped in a shard.Group the cluster
	// router scatter-gathers over. Mutually exclusive with Shards.
	ClusterShards int
	// NodeShards lists which logical shards this node holds (each in
	// [0, ClusterShards), no duplicates). Required when ClusterShards > 0.
	NodeShards []int
	// DisablePlanner turns off statistics-driven probe ordering and
	// envelope skipping on the built index's query paths. Answers are
	// byte-identical either way; only I/O cost changes (the A/B switch
	// experiment E17 measures).
	DisablePlanner bool
	// PlanCacheSize bounds the LRU plan cache (filled pruning tables keyed
	// by quantized query signature + config). 0 disables caching; sharded
	// builds share one cache across all shards.
	PlanCacheSize int

	// cache, when set, is the shared frame store a sharded build hands each
	// of its per-shard sub-builds (CacheBytes then sizes nothing here).
	cache *bufpool.Cache
	// planner, when set, is the shared query planner a sharded build hands
	// each of its per-shard sub-builds.
	planner *index.Planner
}

// Process-wide planner defaults, applied by BuildVariant to builds whose
// BuildOptions leave the planner knobs unset. cmd/coconut-bench's
// -no-planner and -plan-cache flags steer whole experiment sweeps through
// them. Set before any build runs; not safe to change concurrently.
var (
	defaultDisablePlanner bool
	defaultPlanCacheSize  int
)

// PlannerDefaults sets the process-wide planner defaults (see above).
func PlannerDefaults(disable bool, cacheSize int) {
	defaultDisablePlanner, defaultPlanCacheSize = disable, cacheSize
}

// defaultCompress, like the planner defaults, steers whole experiment
// sweeps through cmd/coconut-bench's -compress flag: builds whose
// BuildOptions leave Compress unset inherit it. Set before any build runs.
var defaultCompress bool

// CompressDefault sets the process-wide run-encoding default (see above).
func CompressDefault(on bool) { defaultCompress = on }

// compressOn folds the process-wide default under the explicit option.
func (o BuildOptions) compressOn() bool { return o.Compress || defaultCompress }

// plannerFor builds the planner a BuildVariant call should use, folding the
// process-wide defaults under the explicit options.
func (o BuildOptions) plannerFor() *index.Planner {
	size := o.PlanCacheSize
	if size == 0 {
		size = defaultPlanCacheSize
	}
	return &index.Planner{
		Disabled: o.DisablePlanner || defaultDisablePlanner,
		Cache:    index.NewPlanCache(size),
	}
}

// newDisk creates the build's storage backend: the simulated disk by
// default, or a file-backed FileDisk rooted at StorageDir.
func (o BuildOptions) newDisk() (storage.Backend, error) {
	if o.StorageDir == "" {
		return storage.NewDisk(0), nil
	}
	return storage.NewFileDisk(storage.FileDiskOptions{Dir: o.StorageDir})
}

// walFor opens the build's write-ahead log under the configured policy.
func (o BuildOptions) walFor() (*wal.Log, error) {
	var wopts wal.Options
	switch o.Durability {
	case "", "batched":
		wopts = wal.BatchedOptions(o.WALDir)
	case "sync":
		wopts = wal.SyncOptions(o.WALDir)
	default:
		return nil, fmt.Errorf("workload: unknown durability %q (want \"batched\" or \"sync\")", o.Durability)
	}
	w, err := wal.Open(wopts)
	if err != nil {
		return nil, err
	}
	if w.NextLSN() > 0 {
		w.Close()
		return nil, fmt.Errorf("workload: WAL dir %s already holds a log; builds need a fresh directory", o.WALDir)
	}
	return w, nil
}

// Built is a constructed index plus its cost accounting.
type Built struct {
	Index      index.Index
	Disk       storage.Backend
	Raw        series.RawStore
	BuildStats storage.Stats
	BuildTime  time.Duration
	IndexPages int64 // pages used by index structures (excluding raw file)
	RawPages   int64 // pages used by the raw series file
	// ShardDisks holds every shard's disk for sharded builds (Disk then
	// aliases shard 0, keeping single-disk callers working); nil otherwise.
	ShardDisks []storage.Backend
	// Pool is the buffer pool fronting Disk when CacheBytes > 0; nil when
	// uncached. Sharded builds fill ShardPools instead (Pool then aliases
	// shard 0's pool).
	Pool       *bufpool.Pool
	ShardPools []*bufpool.Pool
	// Cache is the shared frame store behind the pool(s); nil uncached.
	Cache *bufpool.Cache
	// Planner carries the build's query-planning state (skip counter, plan
	// cache). Shared across shards of a sharded build. Nil for variants
	// without a planned query path (ADS+).
	Planner *index.Planner
	// WAL is the write-ahead log behind a durable CLSM build (nil without
	// WALDir); Compactor the background-merge scheduler (nil inline).
	// Both are owned by the build — Close releases them.
	WAL       *wal.Log
	Compactor *compact.Scheduler
	// Materialized records whether entries carry series inline; SourceDS is
	// the dataset backing an in-memory raw store (nil for on-disk raw files
	// and sharded builds). Together they decide whether Ingest can keep the
	// raw store consistent.
	Materialized bool
	SourceDS     *series.Dataset
	// Group is the node-local shard subset of a cluster build (nil
	// otherwise); Index then aliases it. groupBuilts maps each owned shard
	// to its sub-build for the ClusterInsert replica-write path.
	Group       *shard.Group
	groupBuilts map[int]*Built
}

// Ingest appends one series to a built index after construction — the
// server's live-insert path. The index must support inserts, and the raw
// store must stay resolvable: materialized variants carry series inline,
// and in-memory raw stores accept appends; a non-materialized build whose
// raw series live in a sealed on-disk file cannot ingest.
func (b *Built) Ingest(s series.Series, ts int64) error {
	ins, ok := b.Index.(index.Inserter)
	if !ok {
		return fmt.Errorf("workload: %s does not support inserts", b.Index.Name())
	}
	if !b.Materialized {
		if b.SourceDS == nil {
			return fmt.Errorf("workload: %s keeps raw series in a sealed on-disk file; ingest needs a materialized variant (or RawInMemory on an unsharded build)", b.Index.Name())
		}
		if _, err := b.SourceDS.Append(s); err != nil {
			return err
		}
	}
	return ins.Insert(s, ts)
}

// Quiesce waits until no background merge is pending or in flight (a no-op
// for inline builds), surfacing any background-merge error.
func (b *Built) Quiesce() error {
	if l, ok := b.Index.(*clsm.LSM); ok {
		return l.Quiesce()
	}
	return nil
}

// CompactionStats reports the ingest/compaction state of a CLSM build; ok
// is false for other variants.
func (b *Built) CompactionStats() (clsm.CompactionStats, bool) {
	if l, ok := b.Index.(*clsm.LSM); ok {
		return l.CompactionStats(), true
	}
	return clsm.CompactionStats{}, false
}

// WALStats reports the write-ahead log's accounting; ok is false when the
// build has no WAL.
func (b *Built) WALStats() (wal.Stats, bool) {
	if b.WAL == nil {
		return wal.Stats{}, false
	}
	return b.WAL.Stats(), true
}

// Close shuts down the build's background machinery — waits out in-flight
// merges, stops the compaction workers, syncs and closes the WAL — and
// closes every storage backend behind the build (which, on the file
// backend, fsyncs and releases the page files; a no-op on the simulated
// disk). Simulated-disk builds without WAL or compactor are free to skip
// it.
func (b *Built) Close() error {
	var err error
	if l, ok := b.Index.(*clsm.LSM); ok {
		err = l.Close()
	}
	if b.Compactor != nil {
		if cerr := b.Compactor.Close(); err == nil {
			err = cerr
		}
	}
	if b.WAL != nil {
		if werr := b.WAL.Close(); err == nil {
			err = werr
		}
	}
	disks := b.ShardDisks
	if len(disks) == 0 && b.Disk != nil {
		disks = []storage.Backend{b.Disk}
	}
	for _, d := range disks {
		if derr := d.Close(); err == nil {
			err = derr
		}
	}
	return err
}

// BuildCost returns the I/O cost of construction under the model.
func (b Built) BuildCost(m storage.CostModel) float64 { return b.BuildStats.Cost(m) }

// IOStats returns the current disk statistics aggregated over every disk
// backing the build — the one disk of an unsharded index, or all shard
// disks of a sharded one — including buffer-pool hit/miss counters when a
// cache is configured. Query-cost accounting must diff this, not
// Disk.Stats, to charge cross-shard probes and observe cache hits.
func (b *Built) IOStats() storage.Stats {
	if len(b.ShardPools) > 0 {
		var agg storage.Stats
		for _, p := range b.ShardPools {
			agg = agg.Add(p.Stats())
		}
		return agg
	}
	if b.Pool != nil {
		return b.Pool.Stats()
	}
	if len(b.ShardDisks) == 0 {
		return b.Disk.Stats()
	}
	var agg storage.Stats
	for _, d := range b.ShardDisks {
		agg = agg.Add(d.Stats())
	}
	return agg
}

// prefixTracer namespaces one shard's page accesses before forwarding them:
// every shard's disk reuses the same constant file names ("idx", "raw"), so
// without the prefix a shared recorder would overlay unrelated files'
// histograms into one meaningless heat map.
type prefixTracer struct {
	prefix string
	t      storage.Tracer
}

func (p prefixTracer) Access(file string, page int64, write bool) {
	p.t.Access(p.prefix+file, page, write)
}

// SetTracer installs a page-access tracer on every disk backing the build.
// Sharded builds wrap the tracer per shard so file names stay distinct
// ("shard03/idx"); the heatmap recorder is mutex-protected, so one recorder
// may observe all shards' (concurrent) accesses.
func (b *Built) SetTracer(t storage.Tracer) {
	if len(b.ShardDisks) == 0 {
		b.Disk.SetTracer(t)
		return
	}
	for i, d := range b.ShardDisks {
		d.SetTracer(prefixTracer{prefix: fmt.Sprintf("shard%02d/", i), t: t})
	}
}

// Shards returns the shard count of the built index (1 when unsharded).
func (b *Built) Shards() int {
	if n := len(b.ShardDisks); n > 0 {
		return n
	}
	return 1
}

// BuildVariant constructs the named index variant over the dataset on a
// fresh simulated disk and returns it with its construction accounting.
func BuildVariant(variant string, ds *series.Dataset, cfg index.Config, opts BuildOptions) (*Built, error) {
	if opts.MemBudget == 0 {
		opts.MemBudget = 1 << 20
	}
	if opts.FillFactor == 0 {
		opts.FillFactor = 1.0
	}
	if opts.GrowthFactor == 0 {
		opts.GrowthFactor = 4
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = 1
	}
	if opts.ClusterShards > 0 || len(opts.NodeShards) > 0 {
		if opts.Shards > 1 {
			return nil, fmt.Errorf("workload: cluster builds partition by cluster_shards; shards must stay unset")
		}
		if opts.ClusterShards < 1 {
			return nil, fmt.Errorf("workload: node_shards needs cluster_shards >= 1, got %d", opts.ClusterShards)
		}
		return buildClusterGroup(variant, ds, cfg, opts)
	}
	if opts.Shards > 1 {
		return buildSharded(variant, ds, cfg, opts)
	}
	disk, err := opts.newDisk()
	if err != nil {
		return nil, err
	}
	out := &Built{Disk: disk}

	// Buffer pool: either a slice of the sharded build's shared cache or a
	// private one sized by CacheBytes; reader stays nil (→ the bare disk)
	// when uncached, so the default accounting is exactly the paper's.
	var reader storage.PageReader
	pool, perr := bufpool.AttachOrNew(disk, opts.cache, opts.CacheBytes)
	if perr != nil {
		return nil, perr
	}
	if pool != nil {
		out.Pool, out.Cache, reader = pool, pool.Cache(), pool
	}

	materialized := variant == "ADSFull" || variant == "CTreeFull" || variant == "CLSMFull"
	cfg.Materialized = materialized
	out.Materialized = materialized
	if opts.RawInMemory {
		out.SourceDS = ds
	}

	// Raw series file: non-materialized variants need it for queries; it is
	// written before the build (shared by all variants, like the paper's
	// raw data file) and its pages are tracked separately. Query-time raw
	// fetches go through the buffer pool when one is configured.
	var raw series.RawStore
	if opts.RawInMemory {
		raw = NormStore(ds)
	} else {
		rf, err := DiskRawStore(disk, ds, "raw")
		if err != nil {
			return nil, err
		}
		if reader != nil {
			if err := rf.UseReader(reader); err != nil {
				return nil, err
			}
		}
		raw = rf
		out.RawPages, _ = disk.NumPages("raw")
	}
	out.Raw = raw
	if out.Pool != nil {
		out.Pool.ResetStats()
	} else {
		disk.ResetStats()
	}

	entryBudget := opts.MemBudget / cfg.Codec().Size()
	if entryBudget < 4 {
		entryBudget = 4
	}
	pl := opts.planner
	if pl == nil {
		pl = opts.plannerFor()
	}
	out.Planner = pl
	start := time.Now()
	var idx index.Index
	switch variant {
	case "CTree", "CTreeFull":
		idx, err = ctree.Build(ctree.Options{
			Disk: disk, Reader: reader, Name: "idx", Config: cfg,
			FillFactor: opts.FillFactor, MemBudget: opts.MemBudget, Raw: raw,
			Parallelism: opts.Parallelism, Planner: pl,
			Compress: opts.compressOn(),
		}, ds, 0)
	case "CLSM", "CLSMFull":
		if opts.WALDir != "" {
			if out.WAL, err = opts.walFor(); err != nil {
				return nil, err
			}
		}
		if opts.CompactionWorkers > 0 {
			out.Compactor = compact.NewScheduler(opts.CompactionWorkers)
		}
		var l *clsm.LSM
		l, err = clsm.New(clsm.Options{
			Disk: disk, Reader: reader, Name: "idx", Config: cfg,
			GrowthFactor: opts.GrowthFactor, BufferEntries: entryBudget, Raw: raw,
			Parallelism: opts.Parallelism, Planner: pl,
			WAL: out.WAL, TruncateWALOnFlush: true,
			Scheduler: out.Compactor,
			Compress:  opts.compressOn(),
		})
		if err == nil {
			for id := 0; id < ds.Count() && err == nil; id++ {
				var s series.Series
				s, err = ds.Get(id)
				if err == nil {
					err = l.Insert(s, 0)
				}
			}
			if err == nil {
				// Construction ends with a durability flush, like the
				// paper's builds.
				err = l.Flush()
			}
		}
		idx = l
	case "ADS+", "ADSFull":
		var t *adsplus.Tree
		t, err = adsplus.New(adsplus.Options{
			Disk: disk, Reader: reader, Name: "idx", Config: cfg,
			LeafCapacity: opts.LeafCapacity, BufferEntries: entryBudget, Raw: raw,
		})
		if err == nil {
			for id := 0; id < ds.Count() && err == nil; id++ {
				var s series.Series
				s, err = ds.Get(id)
				if err == nil {
					err = t.Insert(s, 0)
				}
			}
			if err == nil {
				err = t.FlushBuffers()
			}
		}
		idx = t
	default:
		return nil, fmt.Errorf("workload: unknown variant %q (want one of %v)", variant, Variants)
	}
	if err != nil {
		out.Close() // release the WAL handle / worker pool of a failed build
		return nil, err
	}
	out.Index = idx
	out.BuildTime = time.Since(start)
	// Construction accounting through the pool when one exists, so cached
	// builds report their construction-era hits/misses alongside the disk
	// reads the misses triggered.
	if out.Pool != nil {
		out.BuildStats = out.Pool.Stats()
	} else {
		out.BuildStats = disk.Stats()
	}
	out.IndexPages = disk.TotalPages() - out.RawPages
	return out, nil
}

// buildSharded hash-partitions the dataset across opts.Shards sub-datasets,
// builds one variant per partition concurrently (each on its own disk, with
// serial internals) on a pool bounded by opts.Parallelism, and wraps the
// shards in a shard.Sharded whose cross-shard probes run on the same pool.
func buildSharded(variant string, ds *series.Dataset, cfg index.Config, opts BuildOptions) (*Built, error) {
	nsh := opts.Shards
	part := shard.Partition(int64(ds.Count()), nsh)
	inner := opts
	inner.Shards = 0
	inner.Parallelism = 1
	// Durable ingest is an unsharded-build feature at this layer (the
	// coconut.Sharded facade owns per-shard WALs); a shared directory would
	// collide across shards.
	inner.WALDir = ""
	inner.CompactionWorkers = 0
	// One cache for the whole sharded index: CacheBytes bounds the total,
	// and every shard's disk draws frames from the same budget.
	if opts.CacheBytes > 0 {
		inner.cache = bufpool.NewCache(opts.CacheBytes, storage.DefaultPageSize)
		inner.CacheBytes = 0
	}
	// Likewise one planner (and plan cache) for the whole sharded index.
	inner.planner = opts.plannerFor()
	inner.PlanCacheSize = 0
	builts := make([]*Built, nsh)
	pool := parallel.New(opts.Parallelism)
	start := time.Now()
	err := pool.ForEach(nsh, func(_, i int) error {
		sub := series.NewDataset(ds.Len)
		for _, gid := range part[i] {
			s, gerr := ds.Get(int(gid))
			if gerr != nil {
				return gerr
			}
			if _, aerr := sub.Append(s); aerr != nil {
				return aerr
			}
		}
		shardOpts := inner
		if opts.StorageDir != "" {
			shardOpts.StorageDir = filepath.Join(opts.StorageDir, fmt.Sprintf("shard-%03d", i))
		}
		b, berr := BuildVariant(variant, sub, cfg, shardOpts)
		if berr != nil {
			return fmt.Errorf("workload: building shard %d: %w", i, berr)
		}
		builts[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Built{BuildTime: time.Since(start), Cache: inner.cache}
	out.Materialized = variant == "ADSFull" || variant == "CTreeFull" || variant == "CLSMFull"
	shards := make([]shard.Shard, nsh)
	for i, b := range builts {
		shards[i] = shard.Shard{Index: b.Index, Disk: b.Disk, IDs: part[i]}
		if b.Pool != nil {
			shards[i].Reader = b.Pool
			out.ShardPools = append(out.ShardPools, b.Pool)
		}
		out.ShardDisks = append(out.ShardDisks, b.Disk)
		out.BuildStats = out.BuildStats.Add(b.BuildStats)
		out.IndexPages += b.IndexPages
		out.RawPages += b.RawPages
	}
	sh, err := shard.New(cfg, shards, opts.Parallelism)
	if err != nil {
		return nil, err
	}
	sh.SetPlanner(inner.planner)
	out.Planner = inner.planner
	out.Index = sh
	out.Disk = builts[0].Disk
	out.Raw = builts[0].Raw
	if len(out.ShardPools) > 0 {
		out.Pool = out.ShardPools[0]
	}
	return out, nil
}

// QueryStats aggregates a query workload's cost.
type QueryStats struct {
	Queries   int
	Stats     storage.Stats // I/O during the workload
	WallTime  time.Duration
	MeanDist  float64 // mean distance of the best answer (quality indicator)
	ExactDist float64 // mean true 1-NN distance (for approximate recall context)
	// Planner activity during the workload: probe units skipped by their
	// synopsis bound and plan-cache hits/misses (all zero with the planner
	// disabled or absent).
	PlannedSkips    int64
	PlanCacheHits   int64
	PlanCacheMisses int64
}

// Cost returns the workload's I/O cost per query under the model.
func (q QueryStats) Cost(m storage.CostModel) float64 {
	if q.Queries == 0 {
		return 0
	}
	return q.Stats.Cost(m) / float64(q.Queries)
}

// RunQueries executes a query workload against a built index. Exact selects
// exact (vs. approximate) search.
func RunQueries(b *Built, queries []series.Series, cfg index.Config, k int, exact bool) (QueryStats, error) {
	cfg.Materialized = false // query preparation does not depend on it
	before := b.IOStats()
	skipsBefore := b.Planner.Skips()
	hitsBefore, missesBefore := b.Planner.CacheStats()
	start := time.Now()
	var distSum float64
	for _, q := range queries {
		pq := index.NewQuery(q, index.Config{
			SeriesLen: cfg.SeriesLen, Segments: cfg.Segments, Bits: cfg.Bits,
		})
		var rs []index.Result
		var err error
		if exact {
			rs, err = b.Index.ExactSearch(pq, k)
		} else {
			rs, err = b.Index.ApproxSearch(pq, k)
		}
		if err != nil {
			return QueryStats{}, err
		}
		if len(rs) > 0 {
			distSum += rs[0].Dist
		}
	}
	hits, misses := b.Planner.CacheStats()
	return QueryStats{
		Queries:         len(queries),
		Stats:           b.IOStats().Sub(before),
		WallTime:        time.Since(start),
		MeanDist:        distSum / float64(max(1, len(queries))),
		PlannedSkips:    b.Planner.Skips() - skipsBefore,
		PlanCacheHits:   hits - hitsBefore,
		PlanCacheMisses: misses - missesBefore,
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
