package workload

import (
	"strings"
	"testing"

	"repro/internal/gen"
)

// TestE17Planner runs the planner experiment at test scale: the experiment
// itself asserts byte-identity against the planner-off path, non-zero
// envelope skips with a strictly lower io-cost/query on the skewed
// workload, and plan-cache hits on the repeated workload — so a clean
// return is the property.
func TestE17Planner(t *testing.T) {
	sc := Scale{SeriesLen: 64, Segments: 8, Bits: 6}
	tbl, err := E17Planner(sc, 3000, 8, 3, 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tbl.Rows); got != 3 {
		t.Fatalf("E17 produced %d rows, want 3", got)
	}
	if !strings.Contains(tbl.Rows[2][0], "repeated") {
		t.Fatalf("last row is %v, want the repeated workload", tbl.Rows[2])
	}
}

// TestBuildVariantPlannerKnobs pins the BuildOptions plumbing: planner-off
// builds report no planner activity, sharded builds share one planner
// across shards, and RunQueries surfaces the counter deltas.
func TestBuildVariantPlannerKnobs(t *testing.T) {
	sc := Scale{SeriesLen: 64, Segments: 8, Bits: 6}
	sc = sc.defaults()
	ds := sc.dataset(1500)
	queries, _ := gen.Queries(ds, 6, 0.05, sc.Seed+18)

	off, err := BuildVariant("CTree", ds, sc.config(), BuildOptions{DisablePlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunQueries(off, queries, sc.config(), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlannedSkips != 0 || st.PlanCacheHits != 0 || st.PlanCacheMisses != 0 {
		t.Fatalf("planner-off build reports planner activity: %+v", st)
	}

	sh, err := BuildVariant("CTree", ds, sc.config(), BuildOptions{Shards: 3, PlanCacheSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Planner == nil {
		t.Fatal("sharded build has no planner")
	}
	if _, err := RunQueries(sh, queries, sc.config(), 3, true); err != nil {
		t.Fatal(err)
	}
	st, err = RunQueries(sh, queries, sc.config(), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits == 0 {
		t.Fatalf("repeated sharded queries recorded no plan-cache hits: %+v", st)
	}
}
