package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/sax"
	"repro/internal/series"
	"repro/internal/sortable"
)

// E10Ablation quantifies why bit-interleaving is the contribution: it
// compares the interleaved (z-order) key against the naive segment-major
// concatenation under two measures on the same data:
//
//   - locality: the mean true distance between series adjacent in sorted
//     key order (what a bulk-loaded leaf packs together), and
//   - approximate-search quality: how often the true nearest neighbor of a
//     query lands within the same leaf-sized window of the sorted order as
//     the query's key ("hit@leaf").
//
// Expected shape: interleaving gives markedly lower adjacent distance and
// higher hit rates; concatenation clusters by the series' beginning only.
func E10Ablation(sc Scale, n, numQueries, leafEntries int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("ablation: interleaved vs concatenated key order (N=%d)", n),
		Note:    "locality = mean true distance of key-order neighbors (lower better); hit@leaf = true NN within the query's leaf window",
		Columns: []string{"ordering", "locality", "hit@leaf", "mean prefix bits to NN"},
	}
	ds := sc.dataset(n)
	type item struct {
		z      series.Series
		inter  sortable.Key
		concat sortable.Key
	}
	items := make([]item, ds.Count())
	cfg := sc.config()
	for i := range items {
		s, _ := ds.Get(i)
		z := s.ZNormalize()
		w := sax.FromSeries(z, cfg.Segments, cfg.Bits)
		items[i] = item{z: z, inter: sortable.Interleave(w), concat: sortable.Concat(w)}
	}
	// Noisy derived queries: enough perturbation that the query's key
	// differs from its source's, so landing near the source actually tests
	// the ordering's locality rather than exact key equality.
	queries, qIDs := gen.Queries(ds, numQueries, 0.35, sc.Seed+9)

	for _, ord := range []struct {
		name string
		key  func(item) sortable.Key
		enc  func(sax.Word) sortable.Key
	}{
		{"interleaved", func(it item) sortable.Key { return it.inter }, sortable.Interleave},
		{"concatenated", func(it item) sortable.Key { return it.concat }, sortable.Concat},
	} {
		order := make([]int, len(items))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return ord.key(items[order[a]]).Less(ord.key(items[order[b]]))
		})
		// Locality: mean distance between sorted neighbors.
		locality := 0.0
		for i := 1; i < len(order); i++ {
			locality += math.Sqrt(items[order[i-1]].z.SqDist(items[order[i]].z))
		}
		locality /= float64(len(order) - 1)

		// Position of each item in the sorted order.
		pos := make([]int, len(items))
		for p, id := range order {
			pos[id] = p
		}
		// Hit@leaf: query lands at its key's insertion point; its source
		// series (the planted true NN) should be within leafEntries/2.
		hits := 0
		prefixSum := 0
		for qi, q := range queries {
			zq := q.ZNormalize()
			qw := sax.FromSeries(zq, cfg.Segments, cfg.Bits)
			qk := ord.enc(qw)
			insertAt := sort.Search(len(order), func(i int) bool {
				return qk.Less(ord.key(items[order[i]])) || qk == ord.key(items[order[i]])
			})
			nnPos := pos[qIDs[qi]]
			d := nnPos - insertAt
			if d < 0 {
				d = -d
			}
			if d <= leafEntries/2 {
				hits++
			}
			prefixSum += qk.CommonPrefixLen(ord.key(items[qIDs[qi]]))
		}
		t.AddRow(ord.name,
			fmt.Sprintf("%.3f", locality),
			fmt.Sprintf("%.2f", float64(hits)/float64(len(queries))),
			fmt.Sprintf("%.1f", float64(prefixSum)/float64(len(queries))))
	}
	return t, nil
}

// E11Cardinality sweeps the per-segment cardinality (bits) and reports the
// pruning power of the resulting lower bounds: the mean MINDIST/true-dist
// tightness ratio and the fraction of candidates pruned during exact CTree
// search. Expected shape: tightness and pruning improve monotonically with
// bits while the key (and index) size grows linearly — the space/pruning
// dial of the summarization.
func E11Cardinality(sc Scale, n, numQueries int, bitsList []int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E11",
		Title:   fmt.Sprintf("ablation: cardinality bits vs pruning power (N=%d)", n),
		Note:    "tightness = mean lower-bound / true distance (1.0 is perfect); higher prunes more",
		Columns: []string{"bits", "tightness", "exact query cost", "key bits"},
	}
	ds := sc.dataset(n)
	rng := rand.New(rand.NewSource(sc.Seed + 10))
	queries := make([]series.Series, numQueries)
	for i := range queries {
		queries[i] = gen.RandomWalk(rng, sc.SeriesLen)
	}
	for _, bits := range bitsList {
		cfg := index.Config{SeriesLen: sc.SeriesLen, Segments: sc.Segments, Bits: bits}
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		// Tightness over random pairs.
		tight := 0.0
		pairs := 0
		for i := 0; i < 200; i++ {
			a, _ := ds.Get(rng.Intn(ds.Count()))
			b, _ := ds.Get(rng.Intn(ds.Count()))
			q := index.NewQuery(a, cfg)
			kb, zb := cfg.Summarize(b)
			trueD := math.Sqrt(q.Norm.SqDist(zb))
			if trueD < 1e-9 {
				continue
			}
			tight += cfg.MinDistKey(q.PAA, kb) / trueD
			pairs++
		}
		// Exact query cost on a CTree at this cardinality.
		b, err := BuildVariant("CTree", ds, cfg, BuildOptions{})
		if err != nil {
			return nil, err
		}
		qs, err := RunQueries(b, queries, cfg, 1, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", bits),
			fmt.Sprintf("%.3f", tight/float64(pairs)),
			fmt.Sprintf("%.1f", qs.Cost(sc.Cost)),
			fmt.Sprintf("%d", bits*sc.Segments))
	}
	return t, nil
}

// E12Recall measures approximate-search quality per variant: how often the
// one-page approximate answer is the true nearest neighbor (recall@1), the
// mean distance inflation of the approximate answer, and the cost ratio
// against exact search. This quantifies the demo's approximate-vs-exact
// query toggle. Expected shape: high recall everywhere at a small fraction
// of exact cost; materialized variants are not more accurate, only cheaper
// per candidate.
func E12Recall(sc Scale, n, numQueries int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:      "E12",
		Title:   fmt.Sprintf("approximate search quality (N=%d, %d queries)", n, numQueries),
		Note:    "recall@1 = approx answer equals true NN; inflation = approx dist / true dist",
		Columns: []string{"variant", "recall@1", "dist inflation", "approx/exact cost"},
	}
	ds := sc.dataset(n)
	queries, _ := gen.Queries(ds, numQueries, 0.2, sc.Seed+11)
	cfg := sc.config()
	for _, v := range Variants {
		b, err := BuildVariant(v, ds, cfg, BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("E12 %s: %w", v, err)
		}
		hits := 0
		inflation := 0.0
		inflN := 0
		approxBefore := b.Disk.Stats()
		type answer struct {
			id   int64
			dist float64
		}
		approxAns := make([]answer, len(queries))
		for i, q := range queries {
			pq := index.NewQuery(q, cfg)
			rs, err := b.Index.ApproxSearch(pq, 1)
			if err != nil {
				return nil, err
			}
			if len(rs) > 0 {
				approxAns[i] = answer{rs[0].ID, rs[0].Dist}
			}
		}
		approxCost := b.Disk.Stats().Sub(approxBefore).Cost(sc.Cost)
		exactBefore := b.Disk.Stats()
		for i, q := range queries {
			pq := index.NewQuery(q, cfg)
			rs, err := b.Index.ExactSearch(pq, 1)
			if err != nil {
				return nil, err
			}
			if len(rs) == 0 {
				continue
			}
			if rs[0].ID == approxAns[i].id {
				hits++
			}
			if rs[0].Dist > 1e-9 {
				inflation += approxAns[i].dist / rs[0].Dist
				inflN++
			}
		}
		exactCost := b.Disk.Stats().Sub(exactBefore).Cost(sc.Cost)
		ratio := 0.0
		if exactCost > 0 {
			ratio = approxCost / exactCost
		}
		t.AddRow(v,
			fmt.Sprintf("%.2f", float64(hits)/float64(len(queries))),
			fmt.Sprintf("%.3f", inflation/float64(max(1, inflN))),
			fmt.Sprintf("%.3f", ratio))
	}
	return t, nil
}
