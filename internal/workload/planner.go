package workload

import (
	"fmt"

	"repro/internal/gen"
	"repro/internal/index"
)

// E17Planner measures the statistics-driven query planner end to end: exact
// k-NN queries against a non-materialized CTree with the planner on versus
// off (BuildOptions.DisablePlanner), on two workloads.
//
//   - skewed: queries are small perturbations of indexed series, so the
//     collector's pruning bound tightens almost immediately and the
//     planner's envelope bounds disqualify most leaf ranges before their
//     pages are read;
//   - repeated ×R: the same skewed query set issued R times against an
//     index with a plan cache, so every round after the first reuses the
//     filled pruning tables (hit rate approaches (R-1)/R).
//
// Three properties are asserted rather than merely reported, failing the
// experiment instead of publishing a wrong table:
//
//   - results with the planner on — cold cache, warm cache, every round —
//     are byte-identical to the planner-off run's;
//   - the skewed workload records envelope skips and a strictly lower
//     io-cost/query than the planner-off run (the tentpole claim);
//   - the repeated workload records plan-cache hits.
func E17Planner(sc Scale, n, numQueries, k, repeats, planCache int) (*Table, error) {
	sc = sc.defaults()
	t := &Table{
		ID:    "E17",
		Title: fmt.Sprintf("query planner over N=%d series, %d exact %d-NN skewed queries (CTree, raw file on disk)", n, numQueries, k),
		Note: fmt.Sprintf("skewed = perturbed indexed series; repeated = same set x%d with a %d-entry plan cache; "+
			"answers byte-identical to planner-off on every row (verified); skewed io-cost strictly below planner-off (verified)",
			repeats, planCache),
		Columns: []string{"workload", "planner", "io/q", "skips/q", "plan hit%"},
	}
	ds := sc.dataset(n)
	queries, _ := gen.Queries(ds, numQueries, 0.02, sc.Seed+17)
	iqs := make([]index.Query, len(queries))
	for i, q := range queries {
		iqs[i] = index.NewQuery(q, sc.config())
	}

	// A modest construction budget yields a multi-level tree with many leaf
	// ranges — the unit the planner orders and skips.
	build := func(disable bool, cacheSize int) (*Built, error) {
		return BuildVariant("CTree", ds, sc.config(), BuildOptions{
			MemBudget: 64 << 10, DisablePlanner: disable, PlanCacheSize: cacheSize,
		})
	}
	runPass := func(b *Built) ([][]index.Result, QueryStats, error) {
		out := make([][]index.Result, len(iqs))
		before := b.IOStats()
		skipsBefore := b.Planner.Skips()
		hitsBefore, missesBefore := b.Planner.CacheStats()
		for i, q := range iqs {
			rs, err := b.Index.ExactSearch(q, k)
			if err != nil {
				return nil, QueryStats{}, err
			}
			out[i] = rs
		}
		hits, misses := b.Planner.CacheStats()
		return out, QueryStats{
			Queries:         len(iqs),
			Stats:           b.IOStats().Sub(before),
			PlannedSkips:    b.Planner.Skips() - skipsBefore,
			PlanCacheHits:   hits - hitsBefore,
			PlanCacheMisses: misses - missesBefore,
		}, nil
	}
	perQ := func(v int64) string { return fmt.Sprintf("%.1f", float64(v)/float64(len(iqs))) }

	off, err := build(true, 0)
	if err != nil {
		return nil, fmt.Errorf("E17 planner-off: %w", err)
	}
	reference, offStats, err := runPass(off)
	if err != nil {
		return nil, fmt.Errorf("E17 planner-off: %w", err)
	}
	if offStats.PlannedSkips != 0 || offStats.PlanCacheHits != 0 || offStats.PlanCacheMisses != 0 {
		return nil, fmt.Errorf("E17: planner-off run reports planner activity (%+v)", offStats)
	}
	offCost := offStats.Cost(sc.Cost)
	t.AddRow("skewed", "off", fmt.Sprintf("%.0f", offCost), "0", "-")

	on, err := build(false, 0)
	if err != nil {
		return nil, fmt.Errorf("E17 planner-on: %w", err)
	}
	got, onStats, err := runPass(on)
	if err != nil {
		return nil, fmt.Errorf("E17 planner-on: %w", err)
	}
	if err := sameResults(reference, got); err != nil {
		return nil, fmt.Errorf("E17: planned diverged from planner-off: %w", err)
	}
	if onStats.PlannedSkips == 0 {
		return nil, fmt.Errorf("E17: skewed workload recorded no envelope skips")
	}
	onCost := onStats.Cost(sc.Cost)
	if !(onCost < offCost) {
		return nil, fmt.Errorf("E17: planned io-cost/query %.1f not below planner-off %.1f", onCost, offCost)
	}
	t.AddRow("skewed", "on", fmt.Sprintf("%.0f", onCost), perQ(onStats.PlannedSkips), "-")

	cached, err := build(false, planCache)
	if err != nil {
		return nil, fmt.Errorf("E17 plan cache: %w", err)
	}
	var repStats QueryStats
	for round := 0; round < repeats; round++ {
		got, rs, err := runPass(cached)
		if err != nil {
			return nil, fmt.Errorf("E17 repeated round %d: %w", round, err)
		}
		if err := sameResults(reference, got); err != nil {
			return nil, fmt.Errorf("E17: repeated round %d diverged from planner-off: %w", round, err)
		}
		repStats.Stats = repStats.Stats.Add(rs.Stats)
		repStats.Queries += rs.Queries
		repStats.PlannedSkips += rs.PlannedSkips
		repStats.PlanCacheHits += rs.PlanCacheHits
		repStats.PlanCacheMisses += rs.PlanCacheMisses
	}
	if repStats.PlanCacheHits == 0 {
		return nil, fmt.Errorf("E17: repeated workload recorded no plan-cache hits")
	}
	hitPct := 100 * float64(repStats.PlanCacheHits) / float64(repStats.PlanCacheHits+repStats.PlanCacheMisses)
	t.AddRow(fmt.Sprintf("repeated x%d", repeats), "on+cache",
		fmt.Sprintf("%.0f", repStats.Cost(sc.Cost)),
		fmt.Sprintf("%.1f", float64(repStats.PlannedSkips)/float64(max(1, repStats.Queries))),
		fmt.Sprintf("%.0f", hitPct))
	return t, nil
}
