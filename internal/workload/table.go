// Package workload is the experiment harness shared by cmd/coconut-bench
// and the repository benchmarks: index-variant builders, query drivers,
// metric collection, and the table formatter that regenerates each
// experiment of EXPERIMENTS.md (see DESIGN.md for the experiment index).
package workload

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result.
type Table struct {
	ID      string // experiment id, e.g. "E1"
	Title   string
	Note    string // how to read the table / expected shape
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond len(Columns) are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format []string, vals ...any) {
	cells := make([]string, len(vals))
	for i, v := range vals {
		f := "%v"
		if i < len(format) && format[i] != "" {
			f = format[i]
		}
		cells[i] = fmt.Sprintf(f, v)
	}
	t.AddRow(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
