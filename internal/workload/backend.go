package workload

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/index"
)

// E16Backend compares the two storage backends: every variant builds twice
// — once on the simulated in-memory disk, once on the file-backed page
// store rooted at dir (a fresh temp directory when empty) — and runs the
// same exact k-NN query set against both. Two properties are asserted
// rather than merely reported, failing the experiment instead of
// publishing a wrong table:
//
//   - answers are byte-identical across backends for every variant;
//   - the I/O accounting (sequential/random read/write counts) is
//     identical too — both backends run the same accounting core, so the
//     paper's cost model is preserved on real files.
//
// The table reports per-backend build and query wall time: the simulated
// disk measures pure algorithmic cost, the file backend adds the host
// filesystem, so the ratio localizes where real-I/O time goes.
func E16Backend(sc Scale, n, numQueries, k int, dir string) (*Table, error) {
	sc = sc.defaults()
	if dir == "" {
		tmp, err := os.MkdirTemp("", "coconut-e16-")
		if err != nil {
			return nil, fmt.Errorf("E16: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	t := &Table{
		ID:    "E16",
		Title: fmt.Sprintf("storage backends over N=%d series, %d exact %d-NN queries", n, numQueries, k),
		Note: "sim = simulated in-memory disk (paper-faithful), file = page-aligned host files; " +
			"answers and I/O accounting byte-identical across backends for every variant (verified)",
		Columns: []string{"variant", "io/q", "sim build ms", "file build ms", "sim q/s", "file q/s"},
	}
	ds := sc.dataset(n)
	rng := rand.New(rand.NewSource(sc.Seed + 16))
	iqs := make([]index.Query, numQueries)
	for i := range iqs {
		iqs[i] = index.NewQuery(gen.RandomWalk(rng, sc.SeriesLen), sc.config())
	}

	runPass := func(b *Built) ([][]index.Result, float64, time.Duration, error) {
		before := b.IOStats()
		start := time.Now()
		out := make([][]index.Result, len(iqs))
		for i, q := range iqs {
			rs, err := b.Index.ExactSearch(q, k)
			if err != nil {
				return nil, 0, 0, err
			}
			out[i] = rs
		}
		elapsed := time.Since(start)
		stats := b.IOStats().Sub(before)
		return out, stats.Cost(sc.Cost) / float64(len(iqs)), elapsed, nil
	}

	for vi, v := range Variants {
		sim, err := BuildVariant(v, ds, sc.config(), BuildOptions{})
		if err != nil {
			return nil, fmt.Errorf("E16 %s sim: %w", v, err)
		}
		file, err := BuildVariant(v, ds, sc.config(), BuildOptions{
			StorageDir: filepath.Join(dir, fmt.Sprintf("e16-%02d", vi)),
		})
		if err != nil {
			return nil, fmt.Errorf("E16 %s file: %w", v, err)
		}
		simRes, simCost, simTime, err := runPass(sim)
		if err != nil {
			return nil, fmt.Errorf("E16 %s sim queries: %w", v, err)
		}
		fileRes, fileCost, fileTime, err := runPass(file)
		if err != nil {
			return nil, fmt.Errorf("E16 %s file queries: %w", v, err)
		}
		if err := sameResults(simRes, fileRes); err != nil {
			return nil, fmt.Errorf("E16 %s: file backend diverged from simulated disk: %w", v, err)
		}
		if simCost != fileCost {
			return nil, fmt.Errorf("E16 %s: io-cost/query diverged: sim %.1f, file %.1f", v, simCost, fileCost)
		}
		if ss, fs := sim.Disk.Stats(), file.Disk.Stats(); ss != fs {
			return nil, fmt.Errorf("E16 %s: disk accounting diverged: sim %+v, file %+v", v, ss, fs)
		}
		t.AddRow(
			v,
			fmt.Sprintf("%.0f", simCost),
			fmt.Sprintf("%d", sim.BuildTime.Milliseconds()),
			fmt.Sprintf("%d", file.BuildTime.Milliseconds()),
			fmt.Sprintf("%.0f", float64(len(iqs))/simTime.Seconds()),
			fmt.Sprintf("%.0f", float64(len(iqs))/fileTime.Seconds()),
		)
		if err := file.Close(); err != nil {
			return nil, fmt.Errorf("E16 %s: closing file backend: %w", v, err)
		}
	}
	return t, nil
}
