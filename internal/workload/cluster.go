package workload

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/bufpool"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/series"
	"repro/internal/shard"
	"repro/internal/storage"
)

// This file builds the node-local side of the distributed serving tier: a
// cluster build hash-partitions the dataset into ClusterShards logical
// shards exactly as an in-process sharded build would, but materializes
// only the NodeShards subset on this node, wrapped in a shard.Group. A
// router (internal/cluster) fans queries across nodes and merges their
// per-shard exact squared sums, so the distributed answer is byte-identical
// to the single-node one at any node/shard topology.

// buildClusterGroup builds the NodeShards subset of a ClusterShards-way
// partitioned variant, one sub-build per owned shard (each on its own disk,
// sharing one buffer-pool cache and one planner), wrapped in a shard.Group.
func buildClusterGroup(variant string, ds *series.Dataset, cfg index.Config, opts BuildOptions) (*Built, error) {
	nsh := opts.ClusterShards
	ownedList := opts.NodeShards
	if len(ownedList) == 0 {
		return nil, fmt.Errorf("workload: cluster build needs node_shards (which of the %d shards this node holds)", nsh)
	}
	seen := make(map[int]bool, len(ownedList))
	for _, si := range ownedList {
		if si < 0 || si >= nsh {
			return nil, fmt.Errorf("workload: node shard %d outside [0, %d)", si, nsh)
		}
		if seen[si] {
			return nil, fmt.Errorf("workload: node shard %d listed twice", si)
		}
		seen[si] = true
	}
	part := shard.Partition(int64(ds.Count()), nsh)
	inner := opts
	inner.Shards = 0
	inner.ClusterShards = 0
	inner.NodeShards = nil
	inner.Parallelism = 1
	// Durable ingest stays an unsharded-build feature, as in buildSharded.
	inner.WALDir = ""
	inner.CompactionWorkers = 0
	if opts.CacheBytes > 0 {
		inner.cache = bufpool.NewCache(opts.CacheBytes, storage.DefaultPageSize)
		inner.CacheBytes = 0
	}
	inner.planner = opts.plannerFor()
	inner.PlanCacheSize = 0

	builts := make(map[int]*Built, len(ownedList))
	pool := parallel.New(opts.Parallelism)
	subs := make([]*Built, len(ownedList))
	start := time.Now()
	err := pool.ForEach(len(ownedList), func(_, i int) error {
		si := ownedList[i]
		sub := series.NewDataset(ds.Len)
		for _, gid := range part[si] {
			s, gerr := ds.Get(int(gid))
			if gerr != nil {
				return gerr
			}
			if _, aerr := sub.Append(s); aerr != nil {
				return aerr
			}
		}
		shardOpts := inner
		if opts.StorageDir != "" {
			shardOpts.StorageDir = filepath.Join(opts.StorageDir, fmt.Sprintf("shard-%03d", si))
		}
		b, berr := BuildVariant(variant, sub, cfg, shardOpts)
		if berr != nil {
			return fmt.Errorf("workload: building cluster shard %d: %w", si, berr)
		}
		subs[i] = b
		return nil
	})
	if err != nil {
		return nil, err
	}

	out := &Built{Cache: inner.cache, BuildTime: time.Since(start)}
	out.Materialized = variant == "ADSFull" || variant == "CTreeFull" || variant == "CLSMFull"
	owned := make(map[int]*shard.Shard, len(ownedList))
	for i, si := range ownedList {
		b := subs[i]
		builts[si] = b
		sh := &shard.Shard{Index: b.Index, Disk: b.Disk, IDs: part[si]}
		if b.Pool != nil {
			sh.Reader = b.Pool
			out.ShardPools = append(out.ShardPools, b.Pool)
		}
		owned[si] = sh
		out.ShardDisks = append(out.ShardDisks, b.Disk)
		out.BuildStats = out.BuildStats.Add(b.BuildStats)
		out.IndexPages += b.IndexPages
		out.RawPages += b.RawPages
	}
	g, err := shard.NewGroup(cfg, nsh, owned)
	if err != nil {
		return nil, err
	}
	g.SetPlanner(inner.planner)
	out.Planner = inner.planner
	out.Index = g
	out.Group = g
	out.groupBuilts = builts
	out.Disk = subs[0].Disk
	out.Raw = subs[0].Raw
	if len(out.ShardPools) > 0 {
		out.Pool = out.ShardPools[0]
	}
	return out, nil
}

// ClusterInsert appends one series under a router-assigned global ID — the
// node-side replica write path. The ID must hash-place into a shard this
// node owns and extend that shard's ID sequence strictly ascending
// (shard.Group.PrepareInsert); the series lands in the owning shard's
// sub-build through its normal ingest path, so raw mirrors stay in sync.
// Callers serialize cluster inserts against each other and against queries
// exactly as they do plain Ingest.
func (b *Built) ClusterInsert(id int64, s series.Series, ts int64) error {
	if b.Group == nil {
		return fmt.Errorf("workload: %s is not a cluster build", b.Index.Name())
	}
	si, err := b.Group.PrepareInsert(id)
	if err != nil {
		return err
	}
	sub := b.groupBuilts[si]
	if err := sub.Ingest(s, ts); err != nil {
		return err
	}
	b.Group.NoteInsert(si, id)
	return nil
}
