package gen

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandomWalkDeterministic(t *testing.T) {
	a := RandomWalk(rand.New(rand.NewSource(1)), 64)
	b := RandomWalk(rand.New(rand.NewSource(1)), 64)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give same walk")
		}
	}
	c := RandomWalk(rand.New(rand.NewSource(2)), 64)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical walks")
	}
}

func TestNoiseStd(t *testing.T) {
	n := Noise(rand.New(rand.NewSource(3)), 100000, 2.0)
	if got := n.Std(); math.Abs(got-2.0) > 0.05 {
		t.Errorf("noise std = %v, want ~2.0", got)
	}
	if got := math.Abs(n.Mean()); got > 0.05 {
		t.Errorf("noise mean = %v, want ~0", got)
	}
}

func TestAdd(t *testing.T) {
	got := Add([]float64{1, 2}, []float64{10, 20})
	if got[0] != 11 || got[1] != 22 {
		t.Fatalf("Add = %v", got)
	}
}

func TestTemplateShapes(t *testing.T) {
	const n = 256
	for _, tpl := range []Template{TemplateBinaryStar, TemplateSupernova, TemplateEarthquake} {
		s := tpl.Shape(n, 0.3)
		if len(s) != n {
			t.Fatalf("%v: length %d", tpl, len(s))
		}
		if s.Std() == 0 {
			t.Fatalf("%v: flat shape", tpl)
		}
		if tpl.String() == "unknown" {
			t.Fatalf("template %d has no name", tpl)
		}
	}
	if Template(99).String() != "unknown" {
		t.Fatal("invalid template should be unknown")
	}
}

func TestTemplateShapeStructure(t *testing.T) {
	const n = 256
	// Binary star: value near 1 away from eclipses, dips below.
	bs := TemplateBinaryStar.Shape(n, 0)
	minV, maxV := bs[0], bs[0]
	for _, v := range bs {
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV > 1.001 || minV > 0.5 {
		t.Errorf("binary star range [%v,%v] unexpected", minV, maxV)
	}
	// Supernova: zero before onset, peak then decay.
	sn := TemplateSupernova.Shape(n, 0.5)
	if sn[0] != 0 {
		t.Error("supernova should be dark before onset")
	}
	peak := 0.0
	for _, v := range sn {
		peak = math.Max(peak, v)
	}
	if peak < 0.9 {
		t.Errorf("supernova peak %v < 0.9", peak)
	}
	if sn[n-1] > peak/2 {
		t.Error("supernova should decay from its peak")
	}
}

func TestSameTemplateCloserThanOther(t *testing.T) {
	// Same-template instances (different noise, same phase) must be closer
	// in z-normalized Euclidean distance than cross-template ones.
	const n = 256
	a1 := Add(TemplateBinaryStar.Shape(n, 0.2), Noise(rand.New(rand.NewSource(1)), n, 0.05)).ZNormalize()
	a2 := Add(TemplateBinaryStar.Shape(n, 0.2), Noise(rand.New(rand.NewSource(2)), n, 0.05)).ZNormalize()
	b := Add(TemplateSupernova.Shape(n, 0.2), Noise(rand.New(rand.NewSource(3)), n, 0.05)).ZNormalize()
	same := a1.SqDist(a2)
	cross := a1.SqDist(b)
	if same >= cross {
		t.Errorf("same-template distance %v >= cross-template %v", same, cross)
	}
}

func TestAstronomy(t *testing.T) {
	cfg := AstronomyConfig{N: 500, Len: 128, FracEvent: 0.1, Seed: 42}
	d, inj := Astronomy(cfg)
	if d.Count() != 500 {
		t.Fatalf("count = %d", d.Count())
	}
	if d.Len != 128 {
		t.Fatalf("len = %d", d.Len)
	}
	if len(inj) == 0 || len(inj) > 120 {
		t.Fatalf("injected %d templates, expected ~50", len(inj))
	}
	for _, in := range inj {
		if in.ID < 0 || in.ID >= 500 {
			t.Fatalf("injection ID %d out of range", in.ID)
		}
		if in.Template != TemplateBinaryStar && in.Template != TemplateSupernova {
			t.Fatalf("unexpected template %v", in.Template)
		}
	}
	// Deterministic.
	d2, inj2 := Astronomy(cfg)
	if d2.Count() != d.Count() || len(inj2) != len(inj) {
		t.Fatal("astronomy not deterministic")
	}
	s1, _ := d.Get(0)
	s2, _ := d2.Get(0)
	if s1[0] != s2[0] {
		t.Fatal("astronomy series not deterministic")
	}
}

func TestSeismic(t *testing.T) {
	cfg := SeismicConfig{Batches: 10, BatchSize: 50, Len: 128, QuakeProb: 0.05, Seed: 7}
	batches := Seismic(cfg)
	if len(batches) != 10 {
		t.Fatalf("batches = %d", len(batches))
	}
	quakes := 0
	for i, b := range batches {
		if b.TS != int64(i) {
			t.Fatalf("batch %d TS = %d", i, b.TS)
		}
		if len(b.Series) != 50 {
			t.Fatalf("batch %d size = %d", i, len(b.Series))
		}
		quakes += len(b.Quakes)
		for _, q := range b.Quakes {
			if q < 0 || q >= len(b.Series) {
				t.Fatalf("quake index %d out of range", q)
			}
		}
	}
	if quakes == 0 || quakes > 100 {
		t.Fatalf("quakes = %d, expected ~25", quakes)
	}
}

func TestSeismicTSIncrement(t *testing.T) {
	batches := Seismic(SeismicConfig{Batches: 3, BatchSize: 1, Len: 16, TSPerBatch: 100, Seed: 1})
	if batches[2].TS != 200 {
		t.Fatalf("TS = %d, want 200", batches[2].TS)
	}
}

func TestQueries(t *testing.T) {
	d, _ := Astronomy(AstronomyConfig{N: 100, Len: 64, Seed: 1})
	qs, ids := Queries(d, 20, 0.01, 9)
	if len(qs) != 20 || len(ids) != 20 {
		t.Fatal("wrong counts")
	}
	for i, q := range qs {
		base, _ := d.Get(ids[i])
		// The query must be very close to its source series.
		if d := q.SqDist(base); d > float64(len(q))*0.01 {
			t.Fatalf("query %d too far from source: %v", i, d)
		}
	}
}

func TestTemplateQueries(t *testing.T) {
	qs := TemplateQueries(TemplateEarthquake, 128, 5, 0.1, 3)
	if len(qs) != 5 {
		t.Fatal("wrong count")
	}
	for _, q := range qs {
		if len(q) != 128 {
			t.Fatal("wrong length")
		}
	}
}
