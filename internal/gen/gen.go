// Package gen produces the synthetic workloads used across the experiments,
// substituting for the paper's real datasets (astronomy sky-survey series
// and the IRIS seismic stream, see DESIGN.md). All generators are
// deterministic given a seed.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/series"
)

// RandomWalk returns a standard random-walk series of length n — the
// canonical synthetic data series workload in the indexing literature.
func RandomWalk(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

// Noise returns i.i.d. Gaussian noise with the given standard deviation.
func Noise(rng *rand.Rand, n int, std float64) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * std
	}
	return s
}

// Add returns a + b element-wise; lengths must match.
func Add(a, b series.Series) series.Series {
	out := make(series.Series, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Template identifies the shapes injected into the astronomy and seismic
// workloads, standing in for the paper's "known patterns of interest".
type Template int

// Known templates.
const (
	// TemplateBinaryStar is a periodic dimming curve, the light curve of an
	// eclipsing binary star.
	TemplateBinaryStar Template = iota
	// TemplateSupernova is a fast-rise, exponential-decay transient.
	TemplateSupernova
	// TemplateEarthquake is a P/S-wave envelope burst over microtremor.
	TemplateEarthquake
)

// String names the template.
func (t Template) String() string {
	switch t {
	case TemplateBinaryStar:
		return "binary-star"
	case TemplateSupernova:
		return "supernova"
	case TemplateEarthquake:
		return "earthquake"
	}
	return "unknown"
}

// Shape returns the canonical (noise-free) series of length n for the
// template, with phase controlling periodic offset / event onset in [0,1).
func (t Template) Shape(n int, phase float64) series.Series {
	s := make(series.Series, n)
	switch t {
	case TemplateBinaryStar:
		// Two eclipses per period: primary deep, secondary shallow.
		period := float64(n) / 2.0
		for i := range s {
			x := math.Mod(float64(i)+phase*period, period) / period
			s[i] = 1.0
			if d := eclipse(x, 0.25, 0.08); d > 0 {
				s[i] -= 0.8 * d
			}
			if d := eclipse(x, 0.75, 0.08); d > 0 {
				s[i] -= 0.3 * d
			}
		}
	case TemplateSupernova:
		onset := int(phase * float64(n) * 0.5)
		rise := float64(n) / 16.0
		decay := float64(n) / 4.0
		for i := range s {
			dt := float64(i - onset)
			if dt < 0 {
				s[i] = 0
			} else if dt < rise {
				s[i] = dt / rise
			} else {
				s[i] = math.Exp(-(dt - rise) / decay)
			}
		}
	case TemplateEarthquake:
		onset := int(phase * float64(n) * 0.5)
		for i := range s {
			dt := float64(i - onset)
			if dt < 0 {
				continue
			}
			// P-wave: fast oscillation, quick decay; S-wave arrives later,
			// larger and slower.
			p := math.Exp(-dt/(float64(n)/20)) * math.Sin(dt*0.9)
			sdt := dt - float64(n)/10
			var sw float64
			if sdt > 0 {
				sw = 2.5 * math.Exp(-sdt/(float64(n)/6)) * math.Sin(sdt*0.45)
			}
			s[i] = p + sw
		}
	}
	return s
}

// eclipse is a smooth dip of half-width w centered at c (both in [0,1]).
func eclipse(x, c, w float64) float64 {
	d := math.Abs(x-c) / w
	if d >= 1 {
		return 0
	}
	return 0.5 * (1 + math.Cos(math.Pi*d))
}

// Injection records where a template instance was planted, forming the
// ground truth for recall checks.
type Injection struct {
	ID       int // series ID in the dataset
	Template Template
}

// AstronomyConfig parameterizes the Scenario 1 workload.
type AstronomyConfig struct {
	N         int     // total series count
	Len       int     // series length
	FracEvent float64 // fraction of series carrying an injected template
	NoiseStd  float64 // observation noise added to templates
	Seed      int64
}

// Astronomy generates a static collection of light curves: mostly random
// walks, with a fraction carrying binary-star or supernova templates. It
// returns the dataset and the injection ground truth.
func Astronomy(cfg AstronomyConfig) (*series.Dataset, []Injection) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.1
	}
	d := series.NewDataset(cfg.Len)
	var injected []Injection
	for i := 0; i < cfg.N; i++ {
		if rng.Float64() < cfg.FracEvent {
			tpl := TemplateBinaryStar
			if rng.Intn(2) == 1 {
				tpl = TemplateSupernova
			}
			s := Add(tpl.Shape(cfg.Len, rng.Float64()), Noise(rng, cfg.Len, cfg.NoiseStd))
			id, _ := d.Append(s)
			injected = append(injected, Injection{ID: id, Template: tpl})
		} else {
			s := RandomWalk(rng, cfg.Len)
			d.Append(s)
		}
	}
	return d, injected
}

// SeismicConfig parameterizes the Scenario 2 streaming workload.
type SeismicConfig struct {
	Batches    int     // number of arriving batches
	BatchSize  int     // series per batch
	Len        int     // series length
	QuakeProb  float64 // probability a series carries an earthquake burst
	NoiseStd   float64 // microtremor background level
	TSPerBatch int64   // timestamp increment per batch (default 1)
	Seed       int64
}

// Batch is one arrival of streaming data series, all sharing a timestamp.
type Batch struct {
	TS     int64
	Series []series.Series
	Quakes []int // indexes within Series that carry the earthquake template
}

// Seismic generates the streaming workload: batches of mostly-noise series
// with Poisson-like earthquake bursts, timestamped in arrival order.
func Seismic(cfg SeismicConfig) []Batch {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.3
	}
	inc := cfg.TSPerBatch
	if inc == 0 {
		inc = 1
	}
	batches := make([]Batch, cfg.Batches)
	for b := range batches {
		batch := Batch{TS: int64(b) * inc}
		for i := 0; i < cfg.BatchSize; i++ {
			if rng.Float64() < cfg.QuakeProb {
				s := Add(TemplateEarthquake.Shape(cfg.Len, rng.Float64()), Noise(rng, cfg.Len, cfg.NoiseStd))
				batch.Quakes = append(batch.Quakes, i)
				batch.Series = append(batch.Series, s)
			} else {
				batch.Series = append(batch.Series, Noise(rng, cfg.Len, 1.0))
			}
		}
		batches[b] = batch
	}
	return batches
}

// Queries derives a query workload from a dataset: each query is a stored
// series perturbed with Gaussian noise, so every query has a known close
// answer (approximately itself). Returns the queries and the IDs of the
// series they were derived from.
func Queries(d *series.Dataset, count int, noiseStd float64, seed int64) ([]series.Series, []int) {
	rng := rand.New(rand.NewSource(seed))
	qs := make([]series.Series, count)
	ids := make([]int, count)
	for i := range qs {
		id := rng.Intn(d.Count())
		base, _ := d.Get(id)
		qs[i] = Add(base, Noise(rng, d.Len, noiseStd))
		ids[i] = id
	}
	return qs, ids
}

// TemplateQueries builds noisy instances of a template to use as query
// targets (the demo's "draw a pattern and search" interaction).
func TemplateQueries(tpl Template, n, count int, noiseStd float64, seed int64) []series.Series {
	rng := rand.New(rand.NewSource(seed))
	out := make([]series.Series, count)
	for i := range out {
		out[i] = Add(tpl.Shape(n, rng.Float64()), Noise(rng, n, noiseStd))
	}
	return out
}
