package gen

import (
	"math"
	"math/rand"

	"repro/internal/series"
)

// GBM generates a geometric-Brownian-motion price path — the standard
// synthetic finance workload (the paper's intro motivates finance as a
// producing domain). mu and sigma are per-step drift and volatility.
func GBM(rng *rand.Rand, n int, s0, mu, sigma float64) series.Series {
	s := make(series.Series, n)
	price := s0
	for i := range s {
		price *= math.Exp(mu - sigma*sigma/2 + sigma*rng.NormFloat64())
		s[i] = price
	}
	return s
}

// FinanceConfig parameterizes the finance workload.
type FinanceConfig struct {
	N         int     // series count
	Len       int     // series length
	Sigma     float64 // per-step volatility (default 0.01)
	CrashProb float64 // probability a series contains a crash event
	Seed      int64
}

// Finance generates GBM price paths; a fraction carry a sudden crash
// (sharp drop followed by partial recovery), the "pattern of interest" for
// this domain. Returns the dataset and the IDs of crash series.
func Finance(cfg FinanceConfig) (*series.Dataset, []int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Sigma == 0 {
		cfg.Sigma = 0.01
	}
	d := series.NewDataset(cfg.Len)
	var crashes []int
	for i := 0; i < cfg.N; i++ {
		s := GBM(rng, cfg.Len, 100, 0, cfg.Sigma)
		if rng.Float64() < cfg.CrashProb {
			at := cfg.Len/4 + rng.Intn(cfg.Len/2)
			drop := 0.3 + rng.Float64()*0.4 // 30-70% crash
			for j := at; j < cfg.Len; j++ {
				rec := math.Min(1, float64(j-at)/float64(cfg.Len-at)*0.5)
				s[j] *= (1 - drop) + drop*rec
			}
			id, _ := d.Append(s)
			crashes = append(crashes, id)
		} else {
			d.Append(s)
		}
	}
	return d, crashes
}

// ECG generates a synthetic electrocardiogram-like series: periodic PQRST
// complexes with beat-to-beat variability — the multimedia/medical stream
// workload. bpmJitter controls heart-rate variability.
func ECG(rng *rand.Rand, n int, beatLen int, noiseStd float64) series.Series {
	if beatLen <= 0 {
		beatLen = 64
	}
	s := make(series.Series, n)
	pos := 0
	for pos < n {
		bl := beatLen + rng.Intn(beatLen/4+1) - beatLen/8
		if bl < 8 {
			bl = 8
		}
		for j := 0; j < bl && pos < n; j++ {
			x := float64(j) / float64(bl)
			s[pos] = pqrst(x) + rng.NormFloat64()*noiseStd
			pos++
		}
	}
	return s
}

// pqrst is a stylized single heartbeat over x in [0,1): a small P wave, a
// sharp QRS spike, and a rounded T wave.
func pqrst(x float64) float64 {
	v := 0.0
	v += 0.15 * bump(x, 0.15, 0.05) // P
	v -= 0.1 * bump(x, 0.32, 0.02)  // Q
	v += 1.0 * bump(x, 0.36, 0.02)  // R
	v -= 0.2 * bump(x, 0.40, 0.02)  // S
	v += 0.3 * bump(x, 0.6, 0.08)   // T
	return v
}

func bump(x, c, w float64) float64 {
	d := (x - c) / w
	return math.Exp(-d * d)
}

// ECGDataset generates a collection of heartbeat windows; a fraction carry
// an arrhythmia (a skipped QRS complex), the anomaly to detect.
type ECGConfig struct {
	N          int
	Len        int
	ArrhythPct float64 // fraction with a skipped beat
	NoiseStd   float64 // default 0.05
	Seed       int64
}

// ECGDataset returns the dataset and IDs of arrhythmic windows.
func ECGDataset(cfg ECGConfig) (*series.Dataset, []int) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.NoiseStd == 0 {
		cfg.NoiseStd = 0.05
	}
	d := series.NewDataset(cfg.Len)
	var anomalies []int
	beat := cfg.Len / 4
	for i := 0; i < cfg.N; i++ {
		s := ECG(rng, cfg.Len, beat, cfg.NoiseStd)
		if rng.Float64() < cfg.ArrhythPct {
			// Flatten one beat: skipped QRS.
			at := rng.Intn(3) * beat
			for j := at; j < at+beat && j < cfg.Len; j++ {
				s[j] = rng.NormFloat64() * cfg.NoiseStd
			}
			id, _ := d.Append(s)
			anomalies = append(anomalies, id)
		} else {
			d.Append(s)
		}
	}
	return d, anomalies
}
