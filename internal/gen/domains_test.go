package gen

import (
	"math"
	"math/rand"
	"testing"
)

func TestGBMPositivePrices(t *testing.T) {
	s := GBM(rand.New(rand.NewSource(1)), 1000, 100, 0, 0.01)
	for i, v := range s {
		if v <= 0 {
			t.Fatalf("price[%d] = %v, GBM must stay positive", i, v)
		}
	}
	if s.Std() == 0 {
		t.Fatal("flat GBM path")
	}
}

func TestGBMVolatilityScales(t *testing.T) {
	lo := GBM(rand.New(rand.NewSource(2)), 5000, 100, 0, 0.001)
	hi := GBM(rand.New(rand.NewSource(2)), 5000, 100, 0, 0.05)
	// Relative step sizes should be much larger for high sigma.
	relStep := func(s []float64) float64 {
		sum := 0.0
		for i := 1; i < len(s); i++ {
			sum += math.Abs(s[i]-s[i-1]) / s[i-1]
		}
		return sum / float64(len(s)-1)
	}
	if relStep(hi) < 10*relStep(lo) {
		t.Errorf("volatility scaling wrong: hi %v vs lo %v", relStep(hi), relStep(lo))
	}
}

func TestFinanceCrashes(t *testing.T) {
	ds, crashes := Finance(FinanceConfig{N: 500, Len: 128, CrashProb: 0.1, Seed: 3})
	if ds.Count() != 500 {
		t.Fatalf("count = %d", ds.Count())
	}
	if len(crashes) == 0 || len(crashes) > 100 {
		t.Fatalf("crashes = %d, expected ~50", len(crashes))
	}
	// Crash series must have a large drawdown; compare to typical paths.
	drawdown := func(id int) float64 {
		s, _ := ds.Get(id)
		peak, worst := s[0], 0.0
		for _, v := range s {
			peak = math.Max(peak, v)
			worst = math.Max(worst, (peak-v)/peak)
		}
		return worst
	}
	crashSet := map[int]bool{}
	for _, id := range crashes {
		crashSet[id] = true
	}
	var crashDD, normalDD float64
	var nc, nn int
	for id := 0; id < ds.Count(); id++ {
		if crashSet[id] {
			crashDD += drawdown(id)
			nc++
		} else {
			normalDD += drawdown(id)
			nn++
		}
	}
	if crashDD/float64(nc) <= normalDD/float64(nn) {
		t.Errorf("crash drawdown %v not above normal %v", crashDD/float64(nc), normalDD/float64(nn))
	}
}

func TestECGStructure(t *testing.T) {
	s := ECG(rand.New(rand.NewSource(4)), 512, 64, 0.01)
	if len(s) != 512 {
		t.Fatalf("len = %d", len(s))
	}
	// R spikes: maximum should approach 1, most samples near baseline.
	maxV := 0.0
	nearZero := 0
	for _, v := range s {
		maxV = math.Max(maxV, v)
		if math.Abs(v) < 0.2 {
			nearZero++
		}
	}
	if maxV < 0.7 {
		t.Errorf("max = %v, want QRS spike near 1", maxV)
	}
	if nearZero < len(s)/2 {
		t.Errorf("only %d/%d samples near baseline", nearZero, len(s))
	}
}

func TestECGDatasetAnomalies(t *testing.T) {
	ds, anomalies := ECGDataset(ECGConfig{N: 300, Len: 256, ArrhythPct: 0.1, Seed: 5})
	if ds.Count() != 300 {
		t.Fatalf("count = %d", ds.Count())
	}
	if len(anomalies) == 0 || len(anomalies) > 60 {
		t.Fatalf("anomalies = %d", len(anomalies))
	}
	// Arrhythmic windows have lower peak count; proxy: lower total energy.
	aset := map[int]bool{}
	for _, id := range anomalies {
		aset[id] = true
	}
	var aE, nE float64
	var na, nn int
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		e := 0.0
		for _, v := range s {
			e += v * v
		}
		if aset[id] {
			aE += e
			na++
		} else {
			nE += e
			nn++
		}
	}
	if aE/float64(na) >= nE/float64(nn) {
		t.Errorf("arrhythmia energy %v not below normal %v", aE/float64(na), nE/float64(nn))
	}
}

func TestECGBeatLenDefault(t *testing.T) {
	s := ECG(rand.New(rand.NewSource(6)), 128, 0, 0.01)
	if len(s) != 128 {
		t.Fatal("default beat length failed")
	}
}
