package server

// This file is the index-node side of the distributed serving tier: the
// endpoints coconut-router scatter-gathers over. A cluster build (a
// BuildRequest with cluster_shards/node_shards) materializes a shard.Group
// — the node's subset of the cluster's hash-partitioned shards — and these
// endpoints expose exact per-shard answers with their accumulated squared
// sums intact, under global IDs, so the router-side merge reproduces the
// single-node collector selection bit-for-bit.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/index"
	"repro/internal/series"
)

// ClusterResult is one candidate on the router-node wire: a global series
// ID and the exact accumulated squared distance — the very ordering key the
// single-node collector compares, so merging nodes' answers preserves even
// sub-ulp tie-breaks at the k boundary. JSON float64 encoding is
// shortest-round-trip, so the squared sum crosses the wire bit-exactly.
type ClusterResult struct {
	ID     int64   `json:"id"`
	TS     int64   `json:"ts"`
	DistSq float64 `json:"dist_sq"`
}

// ClusterSearchRequest asks a node for its shards' contribution to a
// cluster-wide query. Shards lists which of the node's shards to consult
// (the router's placement choice); nil or empty means every owned shard.
type ClusterSearchRequest struct {
	Build  string    `json:"build"`
	Series []float64 `json:"series"`
	K      int       `json:"k"`
	// Mode is "exact" (default), "approx", or "range" (Eps required).
	Mode   string  `json:"mode,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	Shards []int   `json:"shards,omitempty"`
	MinTS  *int64  `json:"min_ts,omitempty"`
	MaxTS  *int64  `json:"max_ts,omitempty"`
}

// ClusterSearchResponse carries the node's per-shard contribution plus the
// I/O accounting the probes charged on this node.
type ClusterSearchResponse struct {
	Results []ClusterResult `json:"results"`
	Shards  []int           `json:"shards"` // shards actually consulted
	Cost    float64         `json:"cost"`
	SeqIO   int64           `json:"seq_io"`
	RandIO  int64           `json:"rand_io"`
}

// clusterBuild resolves a build ID to a cluster (shard.Group) build.
func (s *Server) clusterBuild(w http.ResponseWriter, id string) (*build, bool) {
	b, ok := s.lookupBuild(id)
	if !ok {
		writeError(w, http.StatusNotFound, "build %q not found", id)
		return nil, false
	}
	if b.built.Group == nil {
		writeError(w, http.StatusBadRequest, "build %q is not a cluster build (no cluster_shards)", id)
		return nil, false
	}
	return b, true
}

// handleClusterSearch answers POST /api/cluster/search: the node probes the
// requested shards serially and returns the collector's contents — global
// IDs with exact squared sums — for the router to merge. Requests naming a
// shard this node does not own fail loudly (400) rather than answering
// incompletely, so a router/topology mismatch can never silently drop
// candidates.
func (s *Server) handleClusterSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ClusterSearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	b, ok := s.clusterBuild(w, req.Build)
	if !ok {
		return
	}
	if len(req.Series) != b.cfg.SeriesLen {
		writeError(w, http.StatusBadRequest, "query length %d, want %d", len(req.Series), b.cfg.SeriesLen)
		return
	}
	if req.K <= 0 {
		req.K = 1
	}
	q := index.NewQuery(series.Series(req.Series), b.cfg)
	if req.MinTS != nil && req.MaxTS != nil {
		q = q.WithWindow(*req.MinTS, *req.MaxTS)
	}
	g := b.built.Group
	shards := req.Shards
	if len(shards) == 0 {
		shards = g.Owned()
	}
	mode := req.Mode
	if mode == "" {
		mode = "exact"
	}
	start := time.Now()
	b.mu.RLock()
	before := b.built.IOStats()
	resp := ClusterSearchResponse{Results: []ClusterResult{}, Shards: shards}
	collect := func(id, ts int64, distSq float64) {
		resp.Results = append(resp.Results, ClusterResult{ID: id, TS: ts, DistSq: distSq})
	}
	var err error
	switch req.Mode {
	case "", "exact":
		var col *index.Collector
		if col, err = g.ExactSearchShards(q, req.K, shards); err == nil {
			col.Each(collect)
		}
	case "approx":
		var col *index.Collector
		if col, err = g.ApproxSearchShards(q, req.K, shards); err == nil {
			col.Each(collect)
		}
	case "range":
		if req.Eps <= 0 {
			b.mu.RUnlock()
			writeError(w, http.StatusBadRequest, "range mode needs eps > 0, got %g", req.Eps)
			return
		}
		var col *index.RangeCollector
		if col, err = g.RangeSearchShards(q, req.Eps, shards); err == nil {
			col.Each(collect)
		}
	default:
		b.mu.RUnlock()
		writeError(w, http.StatusBadRequest, "unknown mode %q (want exact, approx, or range)", req.Mode)
		return
	}
	diff := b.built.IOStats().Sub(before)
	b.mu.RUnlock()
	if err != nil {
		s.metrics.queryErrors.Inc()
		writeError(w, http.StatusBadRequest, "cluster search failed: %v", err)
		return
	}
	// Router-driven probes count in the node's query metrics too: a scrape
	// of a cluster node reflects the load it actually served.
	s.observeQuery(mode, time.Since(start), diff, req.Build)
	resp.Cost = diff.Cost(s.cost)
	resp.SeqIO = diff.SeqReads + diff.SeqWrites
	resp.RandIO = diff.RandReads + diff.RandWrites
	writeJSON(w, http.StatusOK, resp)
}

// ClusterEntry is one replica write: a router-assigned global ID, its
// timestamp, and the raw series.
type ClusterEntry struct {
	ID     int64     `json:"id"`
	TS     int64     `json:"ts"`
	Series []float64 `json:"series"`
}

// ClusterInsertRequest appends router-routed series to a cluster build.
// Every entry's ID must hash-place into a shard this node owns and extend
// that shard's ID sequence strictly ascending — a replica that missed an
// earlier write rejects the batch instead of silently diverging.
type ClusterInsertRequest struct {
	Build   string         `json:"build"`
	Entries []ClusterEntry `json:"entries"`
}

// ClusterInsertResponse reports how many entries landed. Applied < the
// batch size means the batch stopped at the first failing entry; the node's
// shards then hold a prefix, and the router marks this replica stale.
type ClusterInsertResponse struct {
	Applied int   `json:"applied"`
	Count   int64 `json:"count"` // node-local series count after the batch
	MaxID   int64 `json:"max_id"`
}

// handleClusterInsert answers POST /api/cluster/insert, the replica write
// path: entries apply in order under the build's write lock, serialized
// against queries like every insert.
func (s *Server) handleClusterInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req ClusterInsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	b, ok := s.clusterBuild(w, req.Build)
	if !ok {
		return
	}
	if len(req.Entries) == 0 || len(req.Entries) > 1<<16 {
		writeError(w, http.StatusBadRequest, "entries must number in (0, 65536], got %d", len(req.Entries))
		return
	}
	for i, e := range req.Entries {
		if len(e.Series) != b.cfg.SeriesLen {
			writeError(w, http.StatusBadRequest, "entry %d length %d, want %d", i, len(e.Series), b.cfg.SeriesLen)
			return
		}
	}
	b.mu.Lock()
	applied := 0
	var err error
	for _, e := range req.Entries {
		if err = b.built.ClusterInsert(e.ID, series.Series(e.Series), e.TS); err != nil {
			err = fmt.Errorf("entry %d (id %d): %w", applied, e.ID, err)
			break
		}
		applied++
	}
	count := b.built.Group.Count()
	maxID := b.built.Group.MaxID()
	b.mu.Unlock()
	if err != nil {
		status := http.StatusBadRequest
		if applied > 0 {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "cluster insert failed after %d entries: %v", applied, err)
		return
	}
	writeJSON(w, http.StatusOK, ClusterInsertResponse{Applied: applied, Count: count, MaxID: maxID})
}

// ClusterInfoResponse describes a node's cluster build: which shards it
// holds of how many, and how far its ID space extends. The router uses it
// for topology verification and health checking, and derives the
// cluster-wide series count from the maximum MaxID across nodes.
type ClusterInfoResponse struct {
	Build         string `json:"build"`
	Variant       string `json:"variant"`
	ClusterShards int    `json:"cluster_shards"`
	NodeShards    []int  `json:"node_shards"`
	SeriesLen     int    `json:"series_len"`
	Count         int64  `json:"count"`
	MaxID         int64  `json:"max_id"`
}

// handleClusterInfo answers GET /api/cluster/info?build=...
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	b, ok := s.clusterBuild(w, r.URL.Query().Get("build"))
	if !ok {
		return
	}
	g := b.built.Group
	b.mu.RLock()
	defer b.mu.RUnlock()
	writeJSON(w, http.StatusOK, ClusterInfoResponse{
		Build:         b.id,
		Variant:       b.built.Index.Name(),
		ClusterShards: g.NShards(),
		NodeShards:    g.Owned(),
		SeriesLen:     b.cfg.SeriesLen,
		Count:         g.Count(),
		MaxID:         g.MaxID(),
	})
}
