package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// newDurableTestServer runs a server with a WAL root and background
// compaction enabled by default.
func newDurableTestServer(t *testing.T, workers int) *httptest.Server {
	t.Helper()
	s := New()
	s.SetWALRoot(t.TempDir())
	s.SetDefaultCompactionWorkers(workers)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func randRaw(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

func TestInsertEndpointRoundTrip(t *testing.T) {
	ts := newDurableTestServer(t, 2)
	_, b := buildOn(t, ts, "CLSMFull")

	rng := rand.New(rand.NewSource(7))
	batch := make([][]float64, 50)
	for i := range batch {
		batch[i] = randRaw(rng, 64)
	}
	var ir InsertResponse
	code := postJSON(t, ts.URL+"/api/insert", InsertRequest{Build: b.ID, Series: batch, TS: 9}, &ir)
	if code != http.StatusOK {
		t.Fatalf("insert status %d", code)
	}
	if ir.Inserted != 50 || ir.Count != 350 || !ir.Synced {
		t.Fatalf("insert response: %+v", ir)
	}
	// The ingested series are immediately searchable: query with one of
	// them, exact, expecting distance ~0 at the new ID range.
	var qr QueryResponse
	code = postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: batch[0], K: 1, Exact: true}, &qr)
	if code != http.StatusOK || len(qr.Results) != 1 {
		t.Fatalf("query status %d results %v", code, qr.Results)
	}
	if qr.Results[0].ID < 300 || qr.Results[0].Dist > 1e-9 {
		t.Fatalf("inserted series not found: %+v", qr.Results[0])
	}

	// Stats now expose the WAL and compaction sections.
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/api/stats?build="+b.ID, &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if !st.WAL.Enabled || st.WAL.Appends != 350 {
		t.Fatalf("wal stats: %+v", st.WAL)
	}
	if !st.Compaction.Enabled || !st.Compaction.Background || st.Compaction.Flushes == 0 {
		t.Fatalf("compaction stats: %+v", st.Compaction)
	}
}

func TestInsertValidation(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CLSMFull")
	q := make([]float64, 64)

	if code := postJSON(t, ts.URL+"/api/insert", InsertRequest{Build: "nope", Series: [][]float64{q}}, nil); code != http.StatusNotFound {
		t.Fatalf("missing build: %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/insert", InsertRequest{Build: b.ID}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch: %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/insert", InsertRequest{Build: b.ID, Series: [][]float64{q[:10]}}, nil); code != http.StatusBadRequest {
		t.Fatalf("wrong length: %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/insert", InsertRequest{Build: b.ID, Series: [][]float64{q}, Timestamps: []int64{1, 2}}, nil); code != http.StatusBadRequest {
		t.Fatalf("timestamps mismatch: %d", code)
	}
	// Non-materialized builds keep raw series in a sealed file: refuse.
	_, nb := buildOn(t, ts, "CLSM")
	if code := postJSON(t, ts.URL+"/api/insert", InsertRequest{Build: nb.ID, Series: [][]float64{q}}, nil); code != http.StatusBadRequest {
		t.Fatalf("non-materialized insert: %d", code)
	}
	// Durability without a WAL root is a client error.
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 100, Len: 64, Seed: 3}, &d)
	code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CLSM", Segments: 8, Bits: 8, Durability: "sync"}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("durability without -wal: %d", code)
	}
}

func TestConcurrentInsertsAndQueries(t *testing.T) {
	ts := newDurableTestServer(t, 2)
	_, b := buildOn(t, ts, "CLSMFull")
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 5; i++ {
				batch := [][]float64{randRaw(rng, 64), randRaw(rng, 64)}
				var ir InsertResponse
				if code := postJSON(t, ts.URL+"/api/insert", InsertRequest{Build: b.ID, Series: batch}, &ir); code != http.StatusOK {
					errs <- fmt.Sprintf("insert status %d", code)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < 8; i++ {
				var qr QueryResponse
				if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: randRaw(rng, 64), K: 3, Exact: true}, &qr); code != http.StatusOK {
					errs <- fmt.Sprintf("query status %d", code)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	var st StatsResponse
	getJSON(t, ts.URL+"/api/stats?build="+b.ID, &st)
	if st.WAL.Appends != 300+20 {
		t.Fatalf("wal appends = %d, want 320", st.WAL.Appends)
	}
}
