package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestTracedQueryAgreesWithStats checks the per-query trace against the
// build's cumulative accounting: the trace's planner-skip total must equal
// the response's planned_skips delta, its I/O must equal the response's
// disk accounting, and some unit must actually have been probed.
func TestTracedQueryAgreesWithStats(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 400, Len: 64, Seed: 7}, &d)
	var b BuildResponse
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{
		Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8, MemBudget: 16 << 10, PlanCache: 16,
	}, &b); code != http.StatusCreated {
		t.Fatalf("build status %d", code)
	}
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64(i % 5)
	}
	// Twice traced: the second run exercises the plan-cache-hit branch.
	for i := 0; i < 2; i++ {
		var qr QueryResponse
		if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 2, Exact: true, Trace: true}, &qr); code != http.StatusOK {
			t.Fatalf("traced query status %d", code)
		}
		tr := qr.Trace
		if tr == nil {
			t.Fatal("traced query returned no trace")
		}
		if tr.Mode != "exact" || tr.K != 2 || tr.Kernel == "" {
			t.Fatalf("trace header mode=%q k=%d kernel=%q", tr.Mode, tr.K, tr.Kernel)
		}
		if tr.PlannedSkips != qr.PlannedSkips {
			t.Fatalf("trace planned_skips %d != response planned_skips %d", tr.PlannedSkips, qr.PlannedSkips)
		}
		if tr.IO.Cost != qr.Cost || tr.IO.SeqReads != qr.SeqIO || tr.IO.RandReads != qr.RandIO {
			t.Fatalf("trace io %+v disagrees with response cost=%v seq=%d rand=%d", tr.IO, qr.Cost, qr.SeqIO, qr.RandIO)
		}
		var probed int64
		for _, kc := range tr.Kinds {
			probed += kc.Probed
			if kc.Skipped < 0 || kc.Probed < 0 {
				t.Fatalf("negative kind counts: %+v", kc)
			}
		}
		if probed == 0 {
			t.Fatalf("trace records no probed units: %+v", tr.Kinds)
		}
		if tr.Candidates.Verified == 0 {
			t.Fatalf("exact query verified no candidates: %+v", tr.Candidates)
		}
		if len(tr.Phases) == 0 {
			t.Fatalf("trace has no phases")
		}
		want := "miss"
		if i == 1 {
			want = "hit"
		}
		if tr.PlanCache != want {
			t.Fatalf("run %d: plan_cache = %q, want %q", i, tr.PlanCache, want)
		}
	}
	// Untraced queries must not carry a trace.
	var plain QueryResponse
	if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 2, Exact: true}, &plain); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if plain.Trace != nil {
		t.Fatalf("untraced query returned a trace: %+v", plain.Trace)
	}
	// ?trace=1 on the URL works without the body field.
	var viaURL QueryResponse
	if code := postJSON(t, ts.URL+"/api/query?trace=1", QueryRequest{Build: b.ID, Series: q, K: 2, Exact: true}, &viaURL); code != http.StatusOK {
		t.Fatalf("?trace=1 status %d", code)
	}
	if viaURL.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
}

// TestMetricsExposition drives a few requests and requires the node's
// /metrics to expose the core counters, histograms, and per-build gauges.
func TestMetricsExposition(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "randomwalk", N: 200, Len: 32, Seed: 3}, &d)
	var b BuildResponse
	postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8}, &b)
	q := make([]float64, 32)
	var qr QueryResponse
	if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 3, Exact: true}, &qr); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`coconut_queries_total{mode="exact"} 1`,
		`coconut_query_latency_seconds_count{mode="exact"} 1`,
		`coconut_query_latency_seconds_bucket{mode="exact",le="+Inf"} 1`,
		`coconut_query_io_cost_count{mode="exact"} 1`,
		"coconut_builds 1",
		`coconut_build_series{build="` + b.ID + `",variant="CTree"} 200`,
		`coconut_build_io_cost{build="` + b.ID + `"}`,
		"coconut_kernel_info{kernel=",
		"# TYPE coconut_query_latency_seconds histogram",
		"# TYPE coconut_queries_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", text)
	}
}

// TestSlowQueryLog sets a zero-ish threshold so every request is slow,
// then reads the log back over HTTP.
func TestSlowQueryLog(t *testing.T) {
	s := New()
	s.SetSlowQuery(time.Nanosecond)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "randomwalk", N: 100, Len: 32, Seed: 1}, &d)
	var b BuildResponse
	postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8}, &b)
	q := make([]float64, 32)
	var qr QueryResponse
	if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 2, Exact: true}, &qr); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	var sl struct {
		ThresholdMicros int64 `json:"threshold_micros"`
		Total           int64 `json:"total"`
		Entries         []struct {
			Kind  string  `json:"kind"`
			Build string  `json:"build"`
			Mode  string  `json:"mode"`
			Cost  float64 `json:"cost"`
		} `json:"entries"`
	}
	if code := getJSON(t, ts.URL+"/api/slowlog", &sl); code != http.StatusOK {
		t.Fatalf("slowlog status %d", code)
	}
	if sl.Total == 0 || len(sl.Entries) == 0 {
		t.Fatalf("slow log empty after a slow query: total=%d entries=%d", sl.Total, len(sl.Entries))
	}
	e := sl.Entries[0]
	if e.Kind != "query" || e.Build != b.ID || e.Mode != "exact" {
		t.Fatalf("slow entry = %+v", e)
	}
}
