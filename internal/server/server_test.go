package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndVariants(t *testing.T) {
	ts := newTestServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/api/health", &health); code != 200 {
		t.Fatalf("health status %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}
	var vs struct {
		Variants []string `json:"variants"`
	}
	if code := getJSON(t, ts.URL+"/api/variants", &vs); code != 200 {
		t.Fatalf("variants status %d", code)
	}
	if len(vs.Variants) != 6 {
		t.Fatalf("variants = %v", vs.Variants)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 200, Len: 64, Seed: 1}, &d)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	if d.Count != 200 || d.Len != 64 || d.ID == "" {
		t.Fatalf("dataset = %+v", d)
	}
	var list struct {
		Datasets []DatasetResponse `json:"datasets"`
	}
	getJSON(t, ts.URL+"/api/datasets", &list)
	if len(list.Datasets) != 1 || list.Datasets[0].ID != d.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestDatasetValidation(t *testing.T) {
	ts := newTestServer(t)
	var e errorResponse
	if code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{N: 0, Len: 64}, &e); code != http.StatusBadRequest {
		t.Fatalf("zero n status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{N: 10, Len: 0}, &e); code != http.StatusBadRequest {
		t.Fatalf("zero len status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "nope", N: 10, Len: 64}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad kind status %d", code)
	}
}

func buildOn(t *testing.T, ts *httptest.Server, variant string) (DatasetResponse, BuildResponse) {
	t.Helper()
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 300, Len: 64, Seed: 2}, &d)
	var b BuildResponse
	code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: variant, Segments: 8, Bits: 8}, &b)
	if code != http.StatusCreated {
		t.Fatalf("build status %d", code)
	}
	return d, b
}

func TestBuildAllVariants(t *testing.T) {
	ts := newTestServer(t)
	for _, v := range []string{"CTree", "CTreeFull", "CLSM", "ADS+"} {
		_, b := buildOn(t, ts, v)
		if b.Variant != v || b.Count != 300 {
			t.Fatalf("%s: build = %+v", v, b)
		}
		if b.BuildCost <= 0 || b.IndexPages <= 0 {
			t.Fatalf("%s: missing accounting: %+v", v, b)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	ts := newTestServer(t)
	var e errorResponse
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: "missing", Variant: "CTree"}, &e); code != http.StatusNotFound {
		t.Fatalf("missing dataset status %d", code)
	}
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{N: 10, Len: 64}, &d)
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "bogus"}, &e); code != http.StatusBadRequest {
		t.Fatalf("bogus variant status %d", code)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTreeFull")
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64(i % 7)
	}
	var resp QueryResponse
	code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 3, Exact: true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %+v", resp.Results)
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Dist < resp.Results[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if resp.SeqIO+resp.RandIO == 0 {
		t.Fatal("query reported no I/O")
	}
}

func TestQueryValidation(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTree")
	var e errorResponse
	if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: "missing", Series: make([]float64, 64)}, &e); code != http.StatusNotFound {
		t.Fatalf("missing build status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: make([]float64, 5)}, &e); code != http.StatusBadRequest {
		t.Fatalf("wrong length status %d", code)
	}
}

func TestWindowedQuery(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTreeFull")
	minTS, maxTS := int64(5), int64(10)
	var resp QueryResponse
	// Build stamps everything TS=0, so a [5,10] window excludes all.
	code := postJSON(t, ts.URL+"/api/query", QueryRequest{
		Build: b.ID, Series: make([]float64, 64), K: 1, Exact: true, MinTS: &minTS, MaxTS: &maxTS,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("window should exclude everything, got %+v", resp.Results)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var r RecommendResponse
	code := postJSON(t, ts.URL+"/api/recommend", RecommendRequest{Streaming: true, SmallWindows: true, MemoryBudgetFrac: 0.1}, &r)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if r.Variant != "CLSM+BTP" {
		t.Fatalf("variant = %q", r.Variant)
	}
	if len(r.Rationale) == 0 {
		t.Fatal("no rationale")
	}
	code = postJSON(t, ts.URL+"/api/recommend", RecommendRequest{ExpectedQueries: 1000, MemoryBudgetFrac: 0.2}, &r)
	if code != http.StatusOK || r.Variant != "CTreeFull" {
		t.Fatalf("static many-queries: %d %q", code, r.Variant)
	}
}

func TestHeatmapEndpoint(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTreeFull")
	// Issue a query so the tracer has something.
	postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: make([]float64, 64), K: 1, Exact: true}, nil)
	var h HeatmapResponse
	code := getJSON(t, fmt.Sprintf("%s/api/heatmap?build=%s", ts.URL, b.ID), &h)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(h.Maps) == 0 || len(h.ASCII) == 0 {
		t.Fatalf("empty heatmap: %+v", h)
	}
	if h.Jumps.Accesses == 0 {
		t.Fatal("no traced accesses")
	}
	if code := getJSON(t, ts.URL+"/api/heatmap?build=missing", nil); code != http.StatusNotFound {
		t.Fatalf("missing build status %d", code)
	}
}

func TestMethodEnforcement(t *testing.T) {
	ts := newTestServer(t)
	if code := getJSON(t, ts.URL+"/api/build", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET build status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/variants", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST variants status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/heatmap", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST heatmap status %d", code)
	}
}

func TestDatasetKinds(t *testing.T) {
	ts := newTestServer(t)
	for _, kind := range []string{"astronomy", "randomwalk", "finance", "ecg"} {
		var d DatasetResponse
		code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: kind, N: 50, Len: 64, FracEvent: 0.1, Seed: 1}, &d)
		if code != http.StatusCreated {
			t.Fatalf("%s: status %d", kind, code)
		}
		if d.Count != 50 {
			t.Fatalf("%s: count %d", kind, d.Count)
		}
	}
}

func TestShardedBuildAndQuery(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 400, Len: 64, Seed: 3}, &d)

	var plain, sharded BuildResponse
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTreeFull", Segments: 8, Bits: 8}, &plain); code != http.StatusCreated {
		t.Fatalf("plain build status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTreeFull", Segments: 8, Bits: 8, Shards: 4}, &sharded); code != http.StatusCreated {
		t.Fatalf("sharded build status %d", code)
	}
	if sharded.Shards != 4 || plain.Shards != 1 {
		t.Fatalf("shards reported %d and %d, want 4 and 1", sharded.Shards, plain.Shards)
	}
	if sharded.Count != plain.Count {
		t.Fatalf("sharded count %d, plain %d", sharded.Count, plain.Count)
	}

	// Same queries against both builds must return identical answers.
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64((i * 13) % 11)
	}
	var rp, rs QueryResponse
	postJSON(t, ts.URL+"/api/query", QueryRequest{Build: plain.ID, Series: q, K: 3, Exact: true}, &rp)
	postJSON(t, ts.URL+"/api/query", QueryRequest{Build: sharded.ID, Series: q, K: 3, Exact: true}, &rs)
	if len(rp.Results) != 3 || len(rs.Results) != 3 {
		t.Fatalf("results %d and %d, want 3", len(rp.Results), len(rs.Results))
	}
	for i := range rp.Results {
		if rp.Results[i] != rs.Results[i] {
			t.Fatalf("result %d diverges: plain %+v sharded %+v", i, rp.Results[i], rs.Results[i])
		}
	}
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTree", Shards: 1000}, nil); code != http.StatusBadRequest {
		t.Fatalf("absurd shard count status %d", code)
	}

	// The sharded heat map must keep shard files distinct: every shard's
	// disk reuses the same constant file names, so the tracer namespaces
	// them per shard.
	var h HeatmapResponse
	if code := getJSON(t, ts.URL+"/api/heatmap?build="+sharded.ID, &h); code != http.StatusOK {
		t.Fatalf("sharded heatmap status %d", code)
	}
	prefixes := map[string]bool{}
	for _, m := range h.Maps {
		if !strings.HasPrefix(m.File, "shard") {
			t.Fatalf("sharded heatmap file %q lacks a shard prefix", m.File)
		}
		prefixes[strings.SplitN(m.File, "/", 2)[0]] = true
	}
	if len(prefixes) < 2 {
		t.Fatalf("sharded heatmap shows %d shard namespaces, want several: %v", len(prefixes), prefixes)
	}
}

func TestBatchQueryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 400, Len: 64, Seed: 4}, &d)
	var b BuildResponse
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTreeFull", Segments: 8, Bits: 8, Shards: 3, Parallelism: 2}, &b); code != http.StatusCreated {
		t.Fatalf("build status %d", code)
	}
	queries := make([][]float64, 5)
	for i := range queries {
		queries[i] = make([]float64, 64)
		for j := range queries[i] {
			queries[i][j] = float64((i + j*j) % 17)
		}
	}
	var batch BatchQueryResponse
	if code := postJSON(t, ts.URL+"/api/query/batch", BatchQueryRequest{Build: b.ID, Queries: queries, K: 3, Exact: true}, &batch); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if batch.Queries != 5 || len(batch.Results) != 5 {
		t.Fatalf("batch reported %d/%d result sets, want 5", batch.Queries, len(batch.Results))
	}
	// Each batched answer must match the corresponding single query.
	for i, q := range queries {
		var single QueryResponse
		postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 3, Exact: true}, &single)
		if len(single.Results) != len(batch.Results[i]) {
			t.Fatalf("query %d: single %d results, batch %d", i, len(single.Results), len(batch.Results[i]))
		}
		for j := range single.Results {
			if single.Results[j] != batch.Results[i][j] {
				t.Fatalf("query %d result %d: single %+v batch %+v", i, j, single.Results[j], batch.Results[i][j])
			}
		}
	}
	// Approximate batches take the fallback loop and still answer.
	if code := postJSON(t, ts.URL+"/api/query/batch", BatchQueryRequest{Build: b.ID, Queries: queries, K: 2}, &batch); code != http.StatusOK {
		t.Fatalf("approx batch status %d", code)
	}
	var e errorResponse
	if code := postJSON(t, ts.URL+"/api/query/batch", BatchQueryRequest{Build: b.ID, Queries: nil, K: 1}, &e); code != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/query/batch", BatchQueryRequest{Build: "missing", Queries: queries}, &e); code != http.StatusNotFound {
		t.Fatalf("missing build status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/query/batch", BatchQueryRequest{Build: b.ID, Queries: [][]float64{make([]float64, 3)}}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad length status %d", code)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 400, Len: 64, Seed: 5}, &d)
	var b BuildResponse
	postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CLSMFull", Segments: 8, Bits: 8, Shards: 4}, &b)

	q := make([]float64, 64)
	postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 2, Exact: true}, nil)

	var st StatsResponse
	if code := getJSON(t, ts.URL+"/api/stats?build="+b.ID, &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("stats shards %d with %d per-shard entries, want 4", st.Shards, len(st.PerShard))
	}
	var sum DiskStats
	for _, s := range st.PerShard {
		sum.SeqReads += s.SeqReads
		sum.RandReads += s.RandReads
		sum.SeqWrites += s.SeqWrites
		sum.RandWrites += s.RandWrites
	}
	agg := st.Aggregate
	agg.Cost, sum.Cost = 0, 0
	if agg != sum {
		t.Fatalf("aggregate %+v is not the sum of shards %+v", st.Aggregate, sum)
	}
	if st.Aggregate.SeqReads+st.Aggregate.RandReads == 0 {
		t.Fatal("stats report no reads after a query")
	}
	// Unsharded builds report a single per-shard entry equal to the aggregate.
	var plain BuildResponse
	postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8}, &plain)
	if code := getJSON(t, ts.URL+"/api/stats?build="+plain.ID, &st); code != http.StatusOK {
		t.Fatalf("plain stats status %d", code)
	}
	if st.Shards != 1 || len(st.PerShard) != 1 {
		t.Fatalf("plain stats shards %d/%d entries", st.Shards, len(st.PerShard))
	}
	if code := getJSON(t, ts.URL+"/api/stats?build=missing", nil); code != http.StatusNotFound {
		t.Fatalf("missing build status %d", code)
	}
}

// TestConcurrentQueries issues many parallel queries against one build;
// with the registry behind an RWMutex the searches themselves run
// concurrently, and under -race this pins the handler paths as data-race
// free.
func TestConcurrentQueries(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTreeFull")
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64(i % 5)
	}
	var want QueryResponse
	postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 3, Exact: true}, &want)

	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				buf, _ := json.Marshal(QueryRequest{Build: b.ID, Series: q, K: 3, Exact: true})
				resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(buf))
				if err != nil {
					errs <- err
					return
				}
				var got QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				for j := range want.Results {
					if got.Results[j] != want.Results[j] {
						errs <- fmt.Errorf("concurrent result %d diverges: %+v vs %+v", j, got.Results[j], want.Results[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCachedBuildStats builds with a buffer pool and checks the stats
// endpoint's cache section plus per-shard hit/miss accounting.
func TestCachedBuildStats(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 400, Len: 64, Seed: 6}, &d)
	var b BuildResponse
	code := postJSON(t, ts.URL+"/api/build", BuildRequest{
		Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8, Shards: 2, CacheBytes: 8 << 20,
	}, &b)
	if code != http.StatusCreated {
		t.Fatalf("cached build status %d", code)
	}
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64(i % 7)
	}
	// Two identical exact queries: the second is served warm.
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 2, Exact: true}, nil); code != http.StatusOK {
			t.Fatalf("query status %d", code)
		}
	}
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/api/stats?build="+b.ID, &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if !st.Cache.Enabled {
		t.Fatalf("cache section disabled: %+v", st.Cache)
	}
	if st.Cache.CapacityBytes != 8<<20 {
		t.Fatalf("cache capacity %d, want %d", st.Cache.CapacityBytes, 8<<20)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("no cache hits after a warm query: %+v", st.Cache)
	}
	if st.Aggregate.CacheHits != st.Cache.Hits || st.Aggregate.CacheMisses != st.Cache.Misses {
		t.Fatalf("aggregate cache counters %d/%d diverge from cache section %d/%d",
			st.Aggregate.CacheHits, st.Aggregate.CacheMisses, st.Cache.Hits, st.Cache.Misses)
	}
	var perHits int64
	for _, s := range st.PerShard {
		perHits += s.CacheHits
	}
	if perHits != st.Cache.Hits {
		t.Fatalf("per-shard hits %d != cache hits %d", perHits, st.Cache.Hits)
	}
	if st.Cache.HitRatio <= 0 || st.Cache.HitRatio > 1 {
		t.Fatalf("hit ratio %v out of (0,1]", st.Cache.HitRatio)
	}
	// An uncached build reports a disabled cache section.
	var plain BuildResponse
	postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8}, &plain)
	if code := getJSON(t, ts.URL+"/api/stats?build="+plain.ID, &st); code != http.StatusOK {
		t.Fatalf("plain stats status %d", code)
	}
	if st.Cache.Enabled {
		t.Fatalf("uncached build reports an enabled cache: %+v", st.Cache)
	}
	// Oversized cache requests are rejected with a clear error.
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{
		Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8, CacheBytes: 1 << 40,
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized cache_bytes accepted with status %d", code)
	}
}

func TestPlannerBuildAndStats(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 400, Len: 64, Seed: 7}, &d)
	var b BuildResponse
	code := postJSON(t, ts.URL+"/api/build", BuildRequest{
		Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8, MemBudget: 16 << 10, PlanCache: 16,
	}, &b)
	if code != http.StatusCreated {
		t.Fatalf("planned build status %d", code)
	}
	if !b.Planner || b.PlanCache != 16 {
		t.Fatalf("build response planner=%v plan_cache=%d, want enabled with 16 entries", b.Planner, b.PlanCache)
	}
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64(i % 5)
	}
	// The same exact query twice: the second run reuses the cached plan.
	var qr QueryResponse
	for i := 0; i < 2; i++ {
		if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 2, Exact: true}, &qr); code != http.StatusOK {
			t.Fatalf("query status %d", code)
		}
	}
	var st StatsResponse
	if code := getJSON(t, ts.URL+"/api/stats?build="+b.ID, &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if !st.Planner.Enabled {
		t.Fatalf("planner section disabled: %+v", st.Planner)
	}
	if st.Planner.PlanCacheHits == 0 || st.Planner.PlanCacheMiss == 0 {
		t.Fatalf("repeated exact query recorded no plan-cache traffic: %+v", st.Planner)
	}
	if st.Planner.HitRatio <= 0 || st.Planner.HitRatio >= 1 {
		t.Fatalf("hit ratio %v out of (0,1)", st.Planner.HitRatio)
	}
	// Batch responses aggregate the planner deltas too.
	var br BatchQueryResponse
	if code := postJSON(t, ts.URL+"/api/query/batch", BatchQueryRequest{
		Build: b.ID, Queries: [][]float64{q, q}, K: 2, Exact: true,
	}, &br); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if br.PlanCacheHits == 0 {
		t.Fatalf("batch of repeated queries recorded no plan-cache hits: %+v", br)
	}
	// A planner-disabled build reports a disabled section and zero counters.
	var off BuildResponse
	postJSON(t, ts.URL+"/api/build", BuildRequest{
		Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8, MemBudget: 16 << 10, DisablePlanner: true,
	}, &off)
	if off.Planner {
		t.Fatalf("disable_planner build reports an enabled planner: %+v", off)
	}
	if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: off.ID, Series: q, K: 2, Exact: true}, &qr); code != http.StatusOK {
		t.Fatalf("planner-off query status %d", code)
	}
	if qr.PlannedSkips != 0 {
		t.Fatalf("planner-off query reports %d skips", qr.PlannedSkips)
	}
	if code := getJSON(t, ts.URL+"/api/stats?build="+off.ID, &st); code != http.StatusOK {
		t.Fatalf("planner-off stats status %d", code)
	}
	if st.Planner.Enabled || st.Planner.PlannedSkips != 0 {
		t.Fatalf("planner-off build reports planner activity: %+v", st.Planner)
	}
	// Oversized plan-cache requests are rejected with a clear error.
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{
		Dataset: d.ID, Variant: "CTree", Segments: 8, Bits: 8, PlanCache: 1 << 21,
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized plan_cache accepted with status %d", code)
	}
}
