package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New().Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndVariants(t *testing.T) {
	ts := newTestServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/api/health", &health); code != 200 {
		t.Fatalf("health status %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("health = %v", health)
	}
	var vs struct {
		Variants []string `json:"variants"`
	}
	if code := getJSON(t, ts.URL+"/api/variants", &vs); code != 200 {
		t.Fatalf("variants status %d", code)
	}
	if len(vs.Variants) != 6 {
		t.Fatalf("variants = %v", vs.Variants)
	}
}

func TestDatasetLifecycle(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 200, Len: 64, Seed: 1}, &d)
	if code != http.StatusCreated {
		t.Fatalf("create status %d", code)
	}
	if d.Count != 200 || d.Len != 64 || d.ID == "" {
		t.Fatalf("dataset = %+v", d)
	}
	var list struct {
		Datasets []DatasetResponse `json:"datasets"`
	}
	getJSON(t, ts.URL+"/api/datasets", &list)
	if len(list.Datasets) != 1 || list.Datasets[0].ID != d.ID {
		t.Fatalf("list = %+v", list)
	}
}

func TestDatasetValidation(t *testing.T) {
	ts := newTestServer(t)
	var e errorResponse
	if code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{N: 0, Len: 64}, &e); code != http.StatusBadRequest {
		t.Fatalf("zero n status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{N: 10, Len: 0}, &e); code != http.StatusBadRequest {
		t.Fatalf("zero len status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "nope", N: 10, Len: 64}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad kind status %d", code)
	}
}

func buildOn(t *testing.T, ts *httptest.Server, variant string) (DatasetResponse, BuildResponse) {
	t.Helper()
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "astronomy", N: 300, Len: 64, Seed: 2}, &d)
	var b BuildResponse
	code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: variant, Segments: 8, Bits: 8}, &b)
	if code != http.StatusCreated {
		t.Fatalf("build status %d", code)
	}
	return d, b
}

func TestBuildAllVariants(t *testing.T) {
	ts := newTestServer(t)
	for _, v := range []string{"CTree", "CTreeFull", "CLSM", "ADS+"} {
		_, b := buildOn(t, ts, v)
		if b.Variant != v || b.Count != 300 {
			t.Fatalf("%s: build = %+v", v, b)
		}
		if b.BuildCost <= 0 || b.IndexPages <= 0 {
			t.Fatalf("%s: missing accounting: %+v", v, b)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	ts := newTestServer(t)
	var e errorResponse
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: "missing", Variant: "CTree"}, &e); code != http.StatusNotFound {
		t.Fatalf("missing dataset status %d", code)
	}
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{N: 10, Len: 64}, &d)
	if code := postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "bogus"}, &e); code != http.StatusBadRequest {
		t.Fatalf("bogus variant status %d", code)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTreeFull")
	q := make([]float64, 64)
	for i := range q {
		q[i] = float64(i % 7)
	}
	var resp QueryResponse
	code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: q, K: 3, Exact: true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %+v", resp.Results)
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Dist < resp.Results[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
	if resp.SeqIO+resp.RandIO == 0 {
		t.Fatal("query reported no I/O")
	}
}

func TestQueryValidation(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTree")
	var e errorResponse
	if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: "missing", Series: make([]float64, 64)}, &e); code != http.StatusNotFound {
		t.Fatalf("missing build status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: make([]float64, 5)}, &e); code != http.StatusBadRequest {
		t.Fatalf("wrong length status %d", code)
	}
}

func TestWindowedQuery(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTreeFull")
	minTS, maxTS := int64(5), int64(10)
	var resp QueryResponse
	// Build stamps everything TS=0, so a [5,10] window excludes all.
	code := postJSON(t, ts.URL+"/api/query", QueryRequest{
		Build: b.ID, Series: make([]float64, 64), K: 1, Exact: true, MinTS: &minTS, MaxTS: &maxTS,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Results) != 0 {
		t.Fatalf("window should exclude everything, got %+v", resp.Results)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var r RecommendResponse
	code := postJSON(t, ts.URL+"/api/recommend", RecommendRequest{Streaming: true, SmallWindows: true, MemoryBudgetFrac: 0.1}, &r)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if r.Variant != "CLSM+BTP" {
		t.Fatalf("variant = %q", r.Variant)
	}
	if len(r.Rationale) == 0 {
		t.Fatal("no rationale")
	}
	code = postJSON(t, ts.URL+"/api/recommend", RecommendRequest{ExpectedQueries: 1000, MemoryBudgetFrac: 0.2}, &r)
	if code != http.StatusOK || r.Variant != "CTreeFull" {
		t.Fatalf("static many-queries: %d %q", code, r.Variant)
	}
}

func TestHeatmapEndpoint(t *testing.T) {
	ts := newTestServer(t)
	_, b := buildOn(t, ts, "CTreeFull")
	// Issue a query so the tracer has something.
	postJSON(t, ts.URL+"/api/query", QueryRequest{Build: b.ID, Series: make([]float64, 64), K: 1, Exact: true}, nil)
	var h HeatmapResponse
	code := getJSON(t, fmt.Sprintf("%s/api/heatmap?build=%s", ts.URL, b.ID), &h)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(h.Maps) == 0 || len(h.ASCII) == 0 {
		t.Fatalf("empty heatmap: %+v", h)
	}
	if h.Jumps.Accesses == 0 {
		t.Fatal("no traced accesses")
	}
	if code := getJSON(t, ts.URL+"/api/heatmap?build=missing", nil); code != http.StatusNotFound {
		t.Fatalf("missing build status %d", code)
	}
}

func TestMethodEnforcement(t *testing.T) {
	ts := newTestServer(t)
	if code := getJSON(t, ts.URL+"/api/build", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET build status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/variants", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST variants status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/heatmap", nil, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST heatmap status %d", code)
	}
}

func TestDatasetKinds(t *testing.T) {
	ts := newTestServer(t)
	for _, kind := range []string{"astronomy", "randomwalk", "finance", "ecg"} {
		var d DatasetResponse
		code := postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: kind, N: 50, Len: 64, FracEvent: 0.1, Seed: 1}, &d)
		if code != http.StatusCreated {
			t.Fatalf("%s: status %d", kind, code)
		}
		if d.Count != 50 {
			t.Fatalf("%s: count %d", kind, d.Count)
		}
	}
}
