// Package server implements the algorithms server of Figure 1: the GUI
// client (here: any HTTP client, including cmd/coconut-cli) talks to it
// through REST web-service calls exchanging JSON. It exposes dataset
// generation, index construction across every variant, approximate/exact
// (optionally windowed) queries, the recommender, and the heat-map
// visualization of access patterns.
package server

import (
	"encoding/json"
	"fmt"
	mrand "math/rand"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/heatmap"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/recommender"
	"repro/internal/series"
	"repro/internal/simd"
	"repro/internal/storage"
	"repro/internal/workload"
)

// Server is the algorithms server. Create with New and mount via Handler.
//
// Locking: mu is a read-write lock guarding only the registries (datasets,
// builds, seq). Query execution never runs under it — handlers take a read
// lock just long enough to resolve an ID, release it, and then search;
// completed indexes are safe for concurrent searches, so any number of
// queries proceed in parallel, and registrations (POST /api/datasets,
// /api/build) only contend on the brief map updates.
type Server struct {
	mu       sync.RWMutex
	datasets map[string]*dataset
	builds   map[string]*build
	seq      int
	cost     storage.CostModel
	// defaultParallelism applies to builds whose request leaves the
	// parallelism field unset; 0 keeps the workload default (serial).
	defaultParallelism int
	// defaultShards applies to builds whose request leaves the shards field
	// unset; 0 or 1 keeps builds unsharded.
	defaultShards int
	// defaultCacheBytes applies to builds whose request leaves the
	// cache_bytes field unset; 0 keeps builds uncached.
	defaultCacheBytes int64
	// walRoot, when set, gives every CLSM build a write-ahead log in its
	// own subdirectory; durability comes from the build request (default
	// batched group commit).
	walRoot string
	// defaultCompactionWorkers applies to CLSM builds whose request leaves
	// the compaction_workers field unset; 0 keeps merges inline.
	defaultCompactionWorkers int
	// storageRoot, when set, lets builds use the file-backed storage
	// backend: each build's pages live in its own subdirectory. Builds
	// default to the file backend when a root is set; requests may force
	// either backend per build.
	storageRoot string
	// defaultPlanCache applies to builds whose request leaves the
	// plan_cache field unset; 0 keeps builds without a plan cache.
	defaultPlanCache int
	// defaultDisablePlanner turns statistics-driven probe ordering and
	// skipping off for builds whose request does not ask for it.
	defaultDisablePlanner bool
	// metrics is the node's /metrics surface; slow is the slow-query ring
	// (inert until SetSlowQuery arms a threshold).
	metrics *serverMetrics
	slow    *obs.SlowLog
}

type dataset struct {
	id   string
	kind string
	ds   *series.Dataset
}

type build struct {
	id      string
	variant string
	cfg     index.Config
	built   *workload.Built
	rec     *heatmap.Recorder
	// mu serializes live inserts (exclusive) against queries and stats
	// (shared): the CLSM write path is internally concurrent-safe, but
	// tree and ADS+ inserts are not, and the lock keeps the contract
	// uniform across variants.
	mu sync.RWMutex
}

// New creates an empty server.
func New() *Server {
	s := &Server{
		datasets: make(map[string]*dataset),
		builds:   make(map[string]*build),
		cost:     storage.DefaultCostModel,
		slow:     obs.NewSlowLog(0),
	}
	s.metrics = newServerMetrics(s)
	return s
}

// SetDefaultParallelism sets the worker-pool bound applied to builds whose
// request does not specify one: n > 1 lets every query fan its run and
// partition probes out over n workers, n < 0 selects GOMAXPROCS, and 0 or 1
// keeps queries serial (the paper-faithful default). Call before serving;
// the setting is not synchronized with in-flight requests.
func (s *Server) SetDefaultParallelism(n int) { s.defaultParallelism = n }

// SetDefaultShards sets the shard count applied to builds whose request
// does not specify one: n > 1 hash-partitions every new build across n
// independent shards queried through the sharding layer; 0 or 1 keeps
// builds unsharded. Call before serving; the setting is not synchronized
// with in-flight requests.
func (s *Server) SetDefaultShards(n int) { s.defaultShards = n }

// SetDefaultCacheBytes sets the buffer-pool size applied to builds whose
// request does not specify one: n > 0 puts a shared page cache of n bytes
// between each new build's indexes and its disk(s); 0 keeps builds
// uncached (the paper-faithful accounting). Call before serving; the
// setting is not synchronized with in-flight requests.
func (s *Server) SetDefaultCacheBytes(n int64) { s.defaultCacheBytes = n }

// SetWALRoot makes CLSM builds durable: each one keeps a segmented
// write-ahead log in its own subdirectory of dir, so inserts are logged
// before acknowledgement. Empty (the default) disables build WALs. Call
// before serving.
func (s *Server) SetWALRoot(dir string) { s.walRoot = dir }

// SetDefaultCompactionWorkers sets the background-merge pool size applied
// to CLSM builds whose request does not specify one: n > 0 runs level
// merges on n background workers while inserts and queries keep running;
// 0 keeps merges inline. Call before serving.
func (s *Server) SetDefaultCompactionWorkers(n int) { s.defaultCompactionWorkers = n }

// SetStorageRoot enables the file-backed storage backend: each build's
// index and raw pages live as page-aligned files in its own subdirectory
// of dir. With a root set, builds default to the file backend (a request
// may still pick "sim" per build); without one, every build uses the
// simulated disk and requests asking for "file" are rejected. Query
// results are byte-identical on either backend. Call before serving.
func (s *Server) SetStorageRoot(dir string) { s.storageRoot = dir }

// SetDefaultPlanCache sets the plan-cache capacity (entries) applied to
// builds whose request does not specify one: n > 0 lets repeated query
// shapes reuse their filled pruning tables; 0 keeps builds without a plan
// cache. Call before serving.
func (s *Server) SetDefaultPlanCache(n int) { s.defaultPlanCache = n }

// SetDefaultPlannerDisabled turns statistics-driven probe ordering and
// envelope skipping off for builds whose request does not ask for it.
// Answers are byte-identical either way — only I/O cost changes. Call
// before serving.
func (s *Server) SetDefaultPlannerDisabled(v bool) { s.defaultDisablePlanner = v }

// SetSlowQuery arms the slow-query log: queries slower than d are
// recorded in a bounded ring served at GET /api/slowlog (and mirrored to
// the process log). d <= 0 disables it. Safe to call while serving.
func (s *Server) SetSlowQuery(d time.Duration) { s.slow.SetThreshold(d) }

// SlowLog exposes the server's slow-query ring (for embedding callers;
// the HTTP surface is GET /api/slowlog).
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }

// Metrics exposes the server's metrics registry, so embedding callers can
// register their own series next to the node's.
func (s *Server) Metrics() *obs.Registry { return s.metrics.reg }

// Close shuts down every registered build: background merges drain,
// write-ahead logs sync and close, and file-backed storage flushes to
// disk. Call on server shutdown, after the HTTP listener has stopped
// accepting requests.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for _, b := range s.builds {
		b.mu.Lock()
		if cerr := b.built.Close(); err == nil {
			err = cerr
		}
		b.mu.Unlock()
	}
	return err
}

// lookupBuild resolves a build ID under a read lock, so concurrent queries
// never serialize on the registry mutex.
func (s *Server) lookupBuild(id string) (*build, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.builds[id]
	return b, ok
}

// Handler returns the HTTP handler exposing the REST API under /api/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/health", s.handleHealth)
	mux.HandleFunc("/api/variants", s.handleVariants)
	mux.HandleFunc("/api/datasets", s.handleDatasets)
	mux.HandleFunc("/api/build", s.handleBuild)
	mux.HandleFunc("/api/query", s.handleQuery)
	mux.HandleFunc("/api/query/batch", s.handleQueryBatch)
	mux.HandleFunc("/api/insert", s.handleInsert)
	mux.HandleFunc("/api/stats", s.handleStats)
	mux.HandleFunc("/api/cluster/search", s.handleClusterSearch)
	mux.HandleFunc("/api/cluster/insert", s.handleClusterInsert)
	mux.HandleFunc("/api/cluster/info", s.handleClusterInfo)
	mux.HandleFunc("/api/recommend", s.handleRecommend)
	mux.HandleFunc("/api/heatmap", s.handleHeatmap)
	mux.HandleFunc("/api/slowlog", s.handleSlowLog)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	return mux
}

// handleSlowLog answers GET /api/slowlog: the most recent slow queries
// (newest first) and the active threshold.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_micros": s.slow.Threshold().Microseconds(),
		"total":            s.slow.Total(),
		"entries":          s.slow.Entries(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) nextID(prefix string) string {
	s.seq++
	return fmt.Sprintf("%s-%d", prefix, s.seq)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "service": "coconut-palm algorithms server"})
}

func (s *Server) handleVariants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"variants": workload.Variants})
}

// DatasetRequest asks for a synthetic dataset.
type DatasetRequest struct {
	Kind      string  `json:"kind"` // "astronomy", "randomwalk"
	N         int     `json:"n"`
	Len       int     `json:"len"`
	FracEvent float64 `json:"frac_event"`
	Seed      int64   `json:"seed"`
}

// DatasetResponse describes a generated dataset.
type DatasetResponse struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	Count int    `json:"count"`
	Len   int    `json:"len"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.RLock()
		defer s.mu.RUnlock()
		out := []DatasetResponse{}
		for _, d := range s.datasets {
			out = append(out, DatasetResponse{ID: d.id, Kind: d.kind, Count: d.ds.Count(), Len: d.ds.Len})
		}
		writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
	case http.MethodPost:
		var req DatasetRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request: %v", err)
			return
		}
		if req.N <= 0 || req.N > 1<<20 {
			writeError(w, http.StatusBadRequest, "n must be in (0, 2^20], got %d", req.N)
			return
		}
		if req.Len <= 0 || req.Len > 1<<14 {
			writeError(w, http.StatusBadRequest, "len must be in (0, 16384], got %d", req.Len)
			return
		}
		var ds *series.Dataset
		switch req.Kind {
		case "astronomy", "":
			ds, _ = gen.Astronomy(gen.AstronomyConfig{N: req.N, Len: req.Len, FracEvent: req.FracEvent, Seed: req.Seed})
			req.Kind = "astronomy"
		case "randomwalk":
			ds = series.NewDataset(req.Len)
			rng := newRand(req.Seed)
			for i := 0; i < req.N; i++ {
				ds.Append(gen.RandomWalk(rng, req.Len))
			}
		case "finance":
			ds, _ = gen.Finance(gen.FinanceConfig{N: req.N, Len: req.Len, CrashProb: req.FracEvent, Seed: req.Seed})
		case "ecg":
			ds, _ = gen.ECGDataset(gen.ECGConfig{N: req.N, Len: req.Len, ArrhythPct: req.FracEvent, Seed: req.Seed})
		default:
			writeError(w, http.StatusBadRequest, "unknown dataset kind %q", req.Kind)
			return
		}
		s.mu.Lock()
		id := s.nextID("ds")
		s.datasets[id] = &dataset{id: id, kind: req.Kind, ds: ds}
		s.mu.Unlock()
		writeJSON(w, http.StatusCreated, DatasetResponse{ID: id, Kind: req.Kind, Count: ds.Count(), Len: ds.Len})
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// BuildRequest asks for an index build.
type BuildRequest struct {
	Dataset      string  `json:"dataset"`
	Variant      string  `json:"variant"`
	Segments     int     `json:"segments"`
	Bits         int     `json:"bits"`
	FillFactor   float64 `json:"fill_factor"`
	GrowthFactor int     `json:"growth_factor"`
	MemBudget    int     `json:"mem_budget"`
	// Parallelism bounds the worker goroutines each query against this
	// build may use (and construction's sort workers): unset or 0 falls
	// back to the server default, 1 is serial, negative selects GOMAXPROCS.
	// Answers are identical at every setting.
	Parallelism int `json:"parallelism"`
	// Shards > 1 hash-partitions the build across that many independent
	// shards, each on its own disk, with queries fanned across them; unset
	// or 0 falls back to the server default, 1 forces unsharded. Answers
	// are identical at every setting.
	Shards int `json:"shards"`
	// CacheBytes > 0 puts a buffer pool of that size between the build's
	// indexes and its disk(s); sharded builds share one pool. Unset or 0
	// falls back to the server default; -1 forces uncached. Answers are
	// identical at every setting — only I/O cost changes.
	CacheBytes int64 `json:"cache_bytes"`
	// Durability selects the WAL group-commit policy for CLSM builds when
	// the server runs with a WAL root (-wal): "" or "batched" groups
	// several inserts per fsync, "sync" fsyncs every insert, "off"
	// disables the WAL for this build. Ignored without a WAL root.
	Durability string `json:"durability"`
	// CompactionWorkers > 0 runs this build's level merges on a background
	// pool of that many workers; unset or 0 falls back to the server
	// default, -1 forces inline merges. CLSM variants only, unsharded.
	CompactionWorkers int `json:"compaction_workers"`
	// PlanCache > 0 gives the build a plan cache of that many entries, so
	// repeated query shapes reuse their filled pruning tables; unset or 0
	// falls back to the server default, -1 forces no cache. Answers are
	// identical at every setting.
	PlanCache int `json:"plan_cache"`
	// DisablePlanner turns statistics-driven probe ordering and envelope
	// skipping off for this build. Answers are byte-identical either way —
	// only I/O cost changes.
	DisablePlanner bool `json:"disable_planner"`
	// Storage selects the storage backend for this build: "sim" is the
	// simulated in-memory disk (the paper-faithful accounting), "file"
	// stores pages in real files under the server's storage root (-storage;
	// rejected without one). Unset picks the server default — "file" when a
	// storage root is configured, "sim" otherwise. Results are
	// byte-identical on either backend.
	Storage string `json:"storage"`
	// ClusterShards > 0 makes this an index-node build for the distributed
	// tier: the dataset is hash-partitioned into that many logical shards,
	// and only the NodeShards subset is materialized here (a shard.Group
	// the coconut-router scatter-gathers over via /api/cluster/search).
	// Mutually exclusive with Shards. Distributed answers merged across
	// nodes are byte-identical to a single-node build of the same dataset.
	ClusterShards int `json:"cluster_shards"`
	// NodeShards lists which logical shards this node holds, each in
	// [0, ClusterShards), no duplicates. Required with ClusterShards.
	NodeShards []int `json:"node_shards"`
	// Compress stores this build's on-disk pages (tree leaves, LSM runs)
	// in the packed encoding: more entries per page, lower I/O cost per
	// query, byte-identical answers.
	Compress bool `json:"compress"`
}

// BuildResponse reports construction accounting, the numbers the demo GUI
// visualizes when comparing construction speed and storage consumption.
type BuildResponse struct {
	ID         string  `json:"id"`
	Variant    string  `json:"variant"`
	Count      int64   `json:"count"`
	BuildCost  float64 `json:"build_cost"`
	SeqIO      int64   `json:"seq_io"`
	RandIO     int64   `json:"rand_io"`
	IndexPages int64   `json:"index_pages"`
	RawPages   int64   `json:"raw_pages"`
	BuildMilli int64   `json:"build_ms"`
	Shards     int     `json:"shards"`
	Backend    string  `json:"backend"` // "sim" or "file"
	Planner    bool    `json:"planner"`
	PlanCache  int     `json:"plan_cache"`
	Compress   bool    `json:"compress"`
	// Kernel names the distance-kernel implementation the process selected
	// at startup ("avx2", "neon", or "scalar").
	Kernel string `json:"kernel"`
	// Cluster builds only: the cluster-wide logical shard count and the
	// subset this node materialized.
	ClusterShards int   `json:"cluster_shards,omitempty"`
	NodeShards    []int `json:"node_shards,omitempty"`
}

func (s *Server) handleBuild(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BuildRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	s.mu.RLock()
	d, ok := s.datasets[req.Dataset]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "dataset %q not found", req.Dataset)
		return
	}
	if req.Segments == 0 {
		req.Segments = 16
	}
	if req.Bits == 0 {
		req.Bits = 8
	}
	cfg := index.Config{SeriesLen: d.ds.Len, Segments: req.Segments, Bits: req.Bits}
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Parallelism == 0 {
		req.Parallelism = s.defaultParallelism
	}
	if req.Shards == 0 {
		req.Shards = s.defaultShards
	}
	if req.Shards < 0 || req.Shards > 256 {
		writeError(w, http.StatusBadRequest, "shards must be in [0, 256], got %d", req.Shards)
		return
	}
	if req.ClusterShards < 0 || req.ClusterShards > 1024 {
		writeError(w, http.StatusBadRequest, "cluster_shards must be in [0, 1024], got %d", req.ClusterShards)
		return
	}
	if req.ClusterShards > 0 || len(req.NodeShards) > 0 {
		if req.ClusterShards == 0 {
			writeError(w, http.StatusBadRequest, "node_shards needs cluster_shards")
			return
		}
		if len(req.NodeShards) == 0 {
			writeError(w, http.StatusBadRequest, "cluster_shards %d needs node_shards (which shards this node holds)", req.ClusterShards)
			return
		}
		if req.Shards > 1 {
			writeError(w, http.StatusBadRequest, "cluster builds partition by cluster_shards; shards must stay unset")
			return
		}
		seen := make(map[int]bool, len(req.NodeShards))
		for _, si := range req.NodeShards {
			if si < 0 || si >= req.ClusterShards {
				writeError(w, http.StatusBadRequest, "node shard %d outside [0, %d)", si, req.ClusterShards)
				return
			}
			if seen[si] {
				writeError(w, http.StatusBadRequest, "node shard %d listed twice", si)
				return
			}
			seen[si] = true
		}
	}
	if req.CacheBytes == 0 {
		req.CacheBytes = s.defaultCacheBytes
	}
	if req.CacheBytes < 0 {
		req.CacheBytes = 0 // explicit opt-out of the server default
	}
	if req.CacheBytes > 1<<32 {
		writeError(w, http.StatusBadRequest, "cache_bytes must be at most %d, got %d", int64(1)<<32, req.CacheBytes)
		return
	}
	if req.CompactionWorkers == 0 {
		req.CompactionWorkers = s.defaultCompactionWorkers
	}
	if req.CompactionWorkers < 0 {
		req.CompactionWorkers = 0 // explicit opt-out of the server default
	}
	if req.CompactionWorkers > 64 {
		writeError(w, http.StatusBadRequest, "compaction_workers must be at most 64, got %d", req.CompactionWorkers)
		return
	}
	if req.PlanCache == 0 {
		req.PlanCache = s.defaultPlanCache
	}
	if req.PlanCache < 0 {
		req.PlanCache = 0 // explicit opt-out of the server default
	}
	if req.PlanCache > 1<<20 {
		writeError(w, http.StatusBadRequest, "plan_cache must be at most %d entries, got %d", 1<<20, req.PlanCache)
		return
	}
	if s.defaultDisablePlanner {
		req.DisablePlanner = true
	}
	if req.Storage == "" {
		if s.storageRoot != "" {
			req.Storage = "file"
		} else {
			req.Storage = "sim"
		}
	}
	switch req.Storage {
	case "sim":
	case "file":
		if s.storageRoot == "" {
			writeError(w, http.StatusBadRequest, "storage %q needs the server to run with a storage root (-storage)", req.Storage)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "unknown storage %q (want sim or file)", req.Storage)
		return
	}
	isCLSM := (req.Variant == "CLSM" || req.Variant == "CLSMFull") && req.ClusterShards == 0
	opts := workload.BuildOptions{
		FillFactor:     req.FillFactor,
		GrowthFactor:   req.GrowthFactor,
		MemBudget:      req.MemBudget,
		Parallelism:    req.Parallelism,
		Shards:         req.Shards,
		CacheBytes:     req.CacheBytes,
		PlanCacheSize:  req.PlanCache,
		DisablePlanner: req.DisablePlanner,
		ClusterShards:  req.ClusterShards,
		NodeShards:     req.NodeShards,
		Compress:       req.Compress,
	}
	if req.Storage == "file" {
		s.mu.Lock()
		storeID := s.nextID("store")
		s.mu.Unlock()
		opts.StorageDir = filepath.Join(s.storageRoot, storeID)
	}
	if isCLSM && req.Shards <= 1 {
		opts.CompactionWorkers = req.CompactionWorkers
		switch req.Durability {
		case "off":
		case "", "batched", "sync":
			if s.walRoot != "" {
				s.mu.Lock()
				walID := s.nextID("wal")
				s.mu.Unlock()
				opts.WALDir = filepath.Join(s.walRoot, walID)
				opts.Durability = req.Durability
			} else if req.Durability != "" {
				writeError(w, http.StatusBadRequest, "durability %q needs the server to run with a WAL root (-wal)", req.Durability)
				return
			}
		default:
			writeError(w, http.StatusBadRequest, "unknown durability %q (want batched, sync, or off)", req.Durability)
			return
		}
	}
	b, err := workload.BuildVariant(req.Variant, d.ds, cfg, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, "build failed: %v", err)
		return
	}
	rec := heatmap.NewRecorder()
	b.SetTracer(rec)
	s.mu.Lock()
	id := s.nextID("build")
	s.builds[id] = &build{id: id, variant: req.Variant, cfg: cfg, built: b, rec: rec}
	s.mu.Unlock()
	st := b.BuildStats
	var clusterShards int
	var nodeShards []int
	if b.Group != nil {
		clusterShards = b.Group.NShards()
		nodeShards = b.Group.Owned()
	}
	writeJSON(w, http.StatusCreated, BuildResponse{
		ID:            id,
		Variant:       b.Index.Name(),
		Count:         b.Index.Count(),
		BuildCost:     b.BuildCost(s.cost),
		SeqIO:         st.SeqReads + st.SeqWrites,
		RandIO:        st.RandReads + st.RandWrites,
		IndexPages:    b.IndexPages,
		RawPages:      b.RawPages,
		BuildMilli:    b.BuildTime.Milliseconds(),
		Shards:        b.Shards(),
		Backend:       b.Disk.Kind(),
		Planner:       b.Planner != nil && b.Planner.Enabled(),
		PlanCache:     req.PlanCache,
		Compress:      req.Compress,
		Kernel:        simd.Active(),
		ClusterShards: clusterShards,
		NodeShards:    nodeShards,
	})
}

// QueryRequest issues a similarity query against a build. Series is the
// drawn/selected query target (raw values; the server z-normalizes).
type QueryRequest struct {
	Build  string    `json:"build"`
	Series []float64 `json:"series"`
	K      int       `json:"k"`
	Exact  bool      `json:"exact"`
	// Eps > 0 switches to a range query: every series within Euclidean
	// distance eps of the query (K and Exact are then ignored; the index
	// must support range search).
	Eps   float64 `json:"eps,omitempty"`
	MinTS *int64  `json:"min_ts,omitempty"`
	MaxTS *int64  `json:"max_ts,omitempty"`
	// Trace asks the server to record this query's execution and return
	// the structured trace in the response (also enabled by ?trace=1 on
	// the URL). Traced queries return identical answers; they pay the
	// recording overhead, so leave it off in steady state.
	Trace bool `json:"trace,omitempty"`
}

// QueryResult is one neighbor.
type QueryResult struct {
	ID   int64   `json:"id"`
	TS   int64   `json:"ts"`
	Dist float64 `json:"dist"`
}

// QueryResponse reports answers plus the I/O cost the demo GUI charts.
// PlannedSkips counts the probe units (runs, partitions, leaf ranges,
// shards) whose synopsis envelope let the planner skip them outright for
// this query; 0 on planner-disabled builds.
type QueryResponse struct {
	Results      []QueryResult `json:"results"`
	Cost         float64       `json:"cost"`
	SeqIO        int64         `json:"seq_io"`
	RandIO       int64         `json:"rand_io"`
	PlannedSkips int64         `json:"planned_skips"`
	// Trace is present only on traced queries (request trace=true or
	// ?trace=1): the structured execution trace, with I/O filled from the
	// build's storage-stats delta for this query.
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	b, ok := s.lookupBuild(req.Build)
	if !ok {
		writeError(w, http.StatusNotFound, "build %q not found", req.Build)
		return
	}
	if len(req.Series) != b.cfg.SeriesLen {
		writeError(w, http.StatusBadRequest, "query length %d, want %d", len(req.Series), b.cfg.SeriesLen)
		return
	}
	if req.K <= 0 {
		req.K = 1
	}
	mode := modeApprox
	switch {
	case req.Eps > 0:
		mode = modeRange
	case req.Exact:
		mode = modeExact
	}
	q := index.NewQuery(series.Series(req.Series), b.cfg)
	if req.MinTS != nil && req.MaxTS != nil {
		q = q.WithWindow(*req.MinTS, *req.MaxTS)
	}
	var tr *obs.QueryTrace
	if req.Trace || r.URL.Query().Get("trace") == "1" {
		tr = obs.NewQueryTrace()
		q.Trace = tr
		s.metrics.traced.Inc()
	}
	start := time.Now()
	b.mu.RLock()
	before := b.built.IOStats()
	skipsBefore := b.built.Planner.Skips()
	var rs []index.Result
	var err error
	switch {
	case req.Eps > 0:
		if rsr, ok := b.built.Index.(index.RangeSearcher); ok {
			rs, err = rsr.RangeSearch(q, req.Eps)
		} else {
			err = fmt.Errorf("%s does not support range search", b.built.Index.Name())
		}
	case req.Exact:
		rs, err = b.built.Index.ExactSearch(q, req.K)
	default:
		rs, err = b.built.Index.ApproxSearch(q, req.K)
	}
	skips := b.built.Planner.Skips() - skipsBefore
	b.mu.RUnlock()
	elapsed := time.Since(start)
	if err != nil {
		s.metrics.queryErrors.Inc()
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	diff := b.built.IOStats().Sub(before)
	s.observeQuery(mode, elapsed, diff, req.Build)
	resp := QueryResponse{
		Cost:         diff.Cost(s.cost),
		SeqIO:        diff.SeqReads + diff.SeqWrites,
		RandIO:       diff.RandReads + diff.RandWrites,
		PlannedSkips: skips,
	}
	if tr != nil {
		resp.Trace = tr.Snapshot()
		resp.Trace.Mode = mode
		resp.Trace.K = req.K
		resp.Trace.Kernel = simd.Active()
		resp.Trace.WallMicros = elapsed.Microseconds()
		resp.Trace.IO = obs.IOSnapshot{
			SeqReads: diff.SeqReads, RandReads: diff.RandReads,
			SeqWrites: diff.SeqWrites, RandWrites: diff.RandWrites,
			CacheHits: diff.CacheHits, CacheMisses: diff.CacheMisses,
			Cost: diff.Cost(s.cost),
		}
	}
	for _, res := range rs {
		resp.Results = append(resp.Results, QueryResult{ID: res.ID, TS: res.TS, Dist: res.Dist})
	}
	writeJSON(w, http.StatusOK, resp)
}

// observeQuery feeds one finished query into the node's histograms and,
// past the threshold, the slow-query log.
func (s *Server) observeQuery(mode string, elapsed time.Duration, diff storage.Stats, build string) {
	s.metrics.queries[mode].Inc()
	s.metrics.queryLatency[mode].Observe(elapsed.Seconds())
	s.metrics.queryIOCost[mode].Observe(diff.Cost(s.cost))
	if s.slow.Slow(elapsed) {
		s.slow.Record(obs.SlowEntry{
			DurationMicros: elapsed.Microseconds(),
			Kind:           "query",
			Build:          build,
			Mode:           mode,
			Cost:           diff.Cost(s.cost),
		})
	}
}

// BatchQueryRequest issues many similarity queries against a build in one
// round trip. All queries share k and the exact/approximate mode.
type BatchQueryRequest struct {
	Build   string      `json:"build"`
	Queries [][]float64 `json:"queries"`
	K       int         `json:"k"`
	Exact   bool        `json:"exact"`
}

// BatchQueryResponse reports per-query answers plus the batch's aggregate
// I/O cost and planner accounting (envelope skips and plan-cache hits
// across the whole batch; zero on planner-disabled builds).
type BatchQueryResponse struct {
	Results       [][]QueryResult `json:"results"`
	Queries       int             `json:"queries"`
	Cost          float64         `json:"cost"`
	SeqIO         int64           `json:"seq_io"`
	RandIO        int64           `json:"rand_io"`
	PlannedSkips  int64           `json:"planned_skips"`
	PlanCacheHits int64           `json:"plan_cache_hits"`
}

// handleQueryBatch answers POST /api/query/batch: many queries executed
// through the index's pipelined batch path when it has one (exact mode on
// Tree/LSM/sharded indexes — pooled per-worker search contexts, queries
// spread across the worker pool), falling back to a per-query loop
// otherwise. Each answer is byte-identical to the corresponding single
// /api/query call.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req BatchQueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	b, ok := s.lookupBuild(req.Build)
	if !ok {
		writeError(w, http.StatusNotFound, "build %q not found", req.Build)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 1<<16 {
		writeError(w, http.StatusBadRequest, "queries must number in (0, 65536], got %d", len(req.Queries))
		return
	}
	if req.K <= 0 {
		req.K = 1
	}
	qs := make([]index.Query, len(req.Queries))
	for i, raw := range req.Queries {
		if len(raw) != b.cfg.SeriesLen {
			writeError(w, http.StatusBadRequest, "query %d length %d, want %d", i, len(raw), b.cfg.SeriesLen)
			return
		}
		qs[i] = index.NewQuery(series.Series(raw), b.cfg)
	}
	start := time.Now()
	b.mu.RLock()
	before := b.built.IOStats()
	skipsBefore := b.built.Planner.Skips()
	hitsBefore, _ := b.built.Planner.CacheStats()
	var rss [][]index.Result
	var err error
	if bs, ok := b.built.Index.(index.BatchSearcher); ok && req.Exact {
		rss, err = bs.ExactSearchBatch(qs, req.K)
	} else {
		rss = make([][]index.Result, len(qs))
		for i, q := range qs {
			if req.Exact {
				rss[i], err = b.built.Index.ExactSearch(q, req.K)
			} else {
				rss[i], err = b.built.Index.ApproxSearch(q, req.K)
			}
			if err != nil {
				break
			}
		}
	}
	skips := b.built.Planner.Skips() - skipsBefore
	hits, _ := b.built.Planner.CacheStats()
	b.mu.RUnlock()
	if err != nil {
		s.metrics.queryErrors.Inc()
		writeError(w, http.StatusInternalServerError, "batch query failed: %v", err)
		return
	}
	diff := b.built.IOStats().Sub(before)
	s.observeQuery(modeBatch, time.Since(start), diff, req.Build)
	resp := BatchQueryResponse{
		Results:       make([][]QueryResult, len(rss)),
		Queries:       len(rss),
		Cost:          diff.Cost(s.cost),
		SeqIO:         diff.SeqReads + diff.SeqWrites,
		RandIO:        diff.RandReads + diff.RandWrites,
		PlannedSkips:  skips,
		PlanCacheHits: hits - hitsBefore,
	}
	for i, rs := range rss {
		out := make([]QueryResult, 0, len(rs))
		for _, res := range rs {
			out = append(out, QueryResult{ID: res.ID, TS: res.TS, Dist: res.Dist})
		}
		resp.Results[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// InsertRequest appends series to an existing build — the live ingest
// path. All series share one timestamp unless Timestamps (same length)
// gives one each.
type InsertRequest struct {
	Build      string      `json:"build"`
	Series     [][]float64 `json:"series"`
	TS         int64       `json:"ts"`
	Timestamps []int64     `json:"timestamps,omitempty"`
}

// InsertResponse reports the batch ingest outcome, including the WAL's
// view when the build is durable (Synced reports whether every
// acknowledged insert has been fsynced — with batched durability the group
// commit is forced at the end of each request batch, so it is always true
// on success).
type InsertResponse struct {
	Inserted int   `json:"inserted"`
	Count    int64 `json:"count"`
	Synced   bool  `json:"synced"`
	Millis   int64 `json:"ms"`
}

// handleInsert answers POST /api/insert: batch ingest into a built index.
// Inserts take the build's write lock, so they serialize against queries;
// materialized variants (CLSMFull, CTreeFull, ADSFull — and their sharded
// forms) accept inserts, since their raw series travel inline. On durable
// CLSM builds every insert is WAL-logged before the response acknowledges
// the batch.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req InsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	b, ok := s.lookupBuild(req.Build)
	if !ok {
		writeError(w, http.StatusNotFound, "build %q not found", req.Build)
		return
	}
	if len(req.Series) == 0 || len(req.Series) > 1<<16 {
		writeError(w, http.StatusBadRequest, "series must number in (0, 65536], got %d", len(req.Series))
		return
	}
	if req.Timestamps != nil && len(req.Timestamps) != len(req.Series) {
		writeError(w, http.StatusBadRequest, "timestamps length %d, series length %d", len(req.Timestamps), len(req.Series))
		return
	}
	for i, ser := range req.Series {
		if len(ser) != b.cfg.SeriesLen {
			writeError(w, http.StatusBadRequest, "series %d length %d, want %d", i, len(ser), b.cfg.SeriesLen)
			return
		}
	}
	start := time.Now()
	b.mu.Lock()
	var err error
	inserted := 0
	for i, ser := range req.Series {
		ts := req.TS
		if req.Timestamps != nil {
			ts = req.Timestamps[i]
		}
		if err = b.built.Ingest(series.Series(ser), ts); err != nil {
			break
		}
		inserted++
	}
	synced := false
	if err == nil && b.built.WAL != nil {
		// Acknowledge the batch only once the group commit has landed.
		if serr := b.built.WAL.Sync(); serr != nil {
			err = serr
		} else {
			synced = true
		}
	}
	count := b.built.Index.Count()
	b.mu.Unlock()
	if err != nil {
		s.metrics.insertErrors.Inc()
		status := http.StatusBadRequest
		if inserted > 0 {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "insert failed after %d series: %v", inserted, err)
		return
	}
	elapsed := time.Since(start)
	s.metrics.inserts.Inc()
	s.metrics.insertedRows.Add(int64(inserted))
	s.metrics.insertLatency.Observe(elapsed.Seconds())
	if s.slow.Slow(elapsed) {
		s.slow.Record(obs.SlowEntry{
			DurationMicros: elapsed.Microseconds(),
			Kind:           "insert",
			Build:          req.Build,
			Detail:         fmt.Sprintf("%d series", inserted),
		})
	}
	writeJSON(w, http.StatusOK, InsertResponse{
		Inserted: inserted,
		Count:    count,
		Synced:   synced || b.built.WAL == nil,
		Millis:   elapsed.Milliseconds(),
	})
}

// DiskStats is the JSON shape of one disk's accounting. The cache fields
// report the buffer pool fronting the disk and stay zero on uncached
// builds; cost charges only the accesses that reached the disk (hits are
// free, misses already appear as the reads they triggered).
type DiskStats struct {
	SeqReads    int64   `json:"seq_reads"`
	RandReads   int64   `json:"rand_reads"`
	SeqWrites   int64   `json:"seq_writes"`
	RandWrites  int64   `json:"rand_writes"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRatio    float64 `json:"hit_ratio"`
	Cost        float64 `json:"cost"`
}

// CacheStats is the /api/stats section describing a build's buffer pool.
type CacheStats struct {
	Enabled        bool    `json:"enabled"`
	CapacityBytes  int64   `json:"capacity_bytes"`
	CapacityFrames int64   `json:"capacity_frames"`
	Hits           int64   `json:"hits"`
	Misses         int64   `json:"misses"`
	HitRatio       float64 `json:"hit_ratio"`
	Evictions      int64   `json:"evictions"`
}

// WALStats is the /api/stats section describing a durable build's
// write-ahead log.
type WALStats struct {
	Enabled       bool  `json:"enabled"`
	Segments      int   `json:"segments"`
	FirstLSN      int64 `json:"first_lsn"`
	NextLSN       int64 `json:"next_lsn"`
	Appends       int64 `json:"appends"`
	Syncs         int64 `json:"syncs"`
	Rotations     int64 `json:"rotations"`
	Truncated     int64 `json:"truncated_segments"`
	BytesAppended int64 `json:"bytes_appended"`
}

// CompactionStatsJSON is the /api/stats section describing a CLSM build's
// ingest/compaction machinery.
type CompactionStatsJSON struct {
	Enabled           bool  `json:"enabled"`
	Background        bool  `json:"background"`
	Flushes           int64 `json:"flushes"`
	Merges            int64 `json:"merges"`
	Levels            int   `json:"levels"`
	Runs              int   `json:"runs"`
	ManifestVersion   int64 `json:"manifest_version"`
	RetainedManifests int   `json:"retained_manifests"`
	ReclaimedRuns     int64 `json:"reclaimed_runs"`
	Pending           bool  `json:"pending"`
	DurableLSN        int64 `json:"durable_lsn"`
}

// PlannerStats is the /api/stats section describing a build's query
// planner: envelope skips across every query so far, and — when the build
// has a plan cache — its hit/miss counters.
type PlannerStats struct {
	Enabled       bool    `json:"enabled"`
	PlannedSkips  int64   `json:"planned_skips"`
	PlanCacheHits int64   `json:"plan_cache_hits"`
	PlanCacheMiss int64   `json:"plan_cache_misses"`
	HitRatio      float64 `json:"hit_ratio"`
}

// StatsResponse reports a build's I/O accounting since construction:
// aggregate over every disk backing the build, plus the per-shard
// breakdown (one entry, equal to the aggregate, for unsharded builds),
// the buffer pool, the query planner, and — for durable CLSM builds —
// the write-ahead log and compaction machinery.
type StatsResponse struct {
	Build      string              `json:"build"`
	Variant    string              `json:"variant"`
	Shards     int                 `json:"shards"`
	Backend    string              `json:"backend"` // "sim" or "file"
	Kernel     string              `json:"kernel"`  // active distance-kernel implementation
	Aggregate  DiskStats           `json:"aggregate"`
	PerShard   []DiskStats         `json:"per_shard"`
	Cache      CacheStats          `json:"cache"`
	Planner    PlannerStats        `json:"planner"`
	WAL        WALStats            `json:"wal"`
	Compaction CompactionStatsJSON `json:"compaction"`
}

func (s *Server) diskStats(st storage.Stats) DiskStats {
	return DiskStats{
		SeqReads: st.SeqReads, RandReads: st.RandReads,
		SeqWrites: st.SeqWrites, RandWrites: st.RandWrites,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		HitRatio: st.HitRatio(),
		Cost:     st.Cost(s.cost),
	}
}

// handleStats answers GET /api/stats?build=...: the per-shard and
// aggregate I/O accounting of a build's disks.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := r.URL.Query().Get("build")
	b, ok := s.lookupBuild(id)
	if !ok {
		writeError(w, http.StatusNotFound, "build %q not found", id)
		return
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	agg := b.built.IOStats()
	resp := StatsResponse{
		Build:     id,
		Variant:   b.built.Index.Name(),
		Shards:    b.built.Shards(),
		Backend:   b.built.Disk.Kind(),
		Kernel:    simd.Active(),
		Aggregate: s.diskStats(agg),
	}
	if wst, ok := b.built.WALStats(); ok {
		resp.WAL = WALStats{
			Enabled:       true,
			Segments:      wst.Segments,
			FirstLSN:      wst.FirstLSN,
			NextLSN:       wst.NextLSN,
			Appends:       wst.Appends,
			Syncs:         wst.Syncs,
			Rotations:     wst.Rotations,
			Truncated:     wst.Truncated,
			BytesAppended: wst.BytesAppended,
		}
	}
	if cst, ok := b.built.CompactionStats(); ok {
		resp.Compaction = CompactionStatsJSON{
			Enabled:           true,
			Background:        cst.Background,
			Flushes:           cst.Flushes,
			Merges:            cst.Merges,
			Levels:            cst.Levels,
			Runs:              cst.Runs,
			ManifestVersion:   cst.ManifestVersion,
			RetainedManifests: cst.RetainedManifests,
			ReclaimedRuns:     cst.ReclaimedRuns,
			Pending:           cst.Pending,
			DurableLSN:        cst.DurableLSN,
		}
	}
	if pl := b.built.Planner; pl != nil && pl.Enabled() {
		hits, misses := pl.CacheStats()
		ps := PlannerStats{Enabled: true, PlannedSkips: pl.Skips(), PlanCacheHits: hits, PlanCacheMiss: misses}
		if hits+misses > 0 {
			ps.HitRatio = float64(hits) / float64(hits+misses)
		}
		resp.Planner = ps
	}
	if c := b.built.Cache; c != nil {
		resp.Cache = CacheStats{
			Enabled:        true,
			CapacityBytes:  c.CapacityBytes(),
			CapacityFrames: c.CapacityFrames(),
			Hits:           agg.CacheHits,
			Misses:         agg.CacheMisses,
			HitRatio:       agg.HitRatio(),
			Evictions:      c.Evictions(),
		}
	}
	switch {
	case len(b.built.ShardPools) > 0:
		for _, p := range b.built.ShardPools {
			resp.PerShard = append(resp.PerShard, s.diskStats(p.Stats()))
		}
	case len(b.built.ShardDisks) > 0:
		for _, d := range b.built.ShardDisks {
			resp.PerShard = append(resp.PerShard, s.diskStats(d.Stats()))
		}
	default:
		resp.PerShard = []DiskStats{resp.Aggregate}
	}
	writeJSON(w, http.StatusOK, resp)
}

// RecommendRequest mirrors recommender.Scenario.
type RecommendRequest struct {
	Streaming        bool    `json:"streaming"`
	ExpectedQueries  int     `json:"expected_queries"`
	UpdateRate       float64 `json:"update_rate"`
	MemoryBudgetFrac float64 `json:"memory_budget_frac"`
	StorageTight     bool    `json:"storage_tight"`
	SmallWindows     bool    `json:"small_windows"`
}

// RecommendResponse carries the advice and its rationale.
type RecommendResponse struct {
	Variant      string   `json:"variant"`
	FillFactor   float64  `json:"fill_factor,omitempty"`
	GrowthFactor int      `json:"growth_factor,omitempty"`
	Rationale    []string `json:"rationale"`
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req RecommendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	rec := recommender.Recommend(recommender.Scenario{
		Streaming:        req.Streaming,
		ExpectedQueries:  req.ExpectedQueries,
		UpdateRate:       req.UpdateRate,
		MemoryBudgetFrac: req.MemoryBudgetFrac,
		StorageTight:     req.StorageTight,
		SmallWindows:     req.SmallWindows,
	})
	writeJSON(w, http.StatusOK, RecommendResponse{
		Variant:      rec.Variant(),
		FillFactor:   rec.FillFactor,
		GrowthFactor: rec.GrowthFactor,
		Rationale:    rec.Rationale,
	})
}

// HeatmapResponse carries the access-pattern visualization of a build's
// disk since construction (builds install a tracer).
type HeatmapResponse struct {
	Maps  []heatmap.Map     `json:"maps"`
	Jumps heatmap.JumpStats `json:"jumps"`
	ASCII []string          `json:"ascii"`
}

func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	id := r.URL.Query().Get("build")
	b, ok := s.lookupBuild(id)
	if !ok {
		writeError(w, http.StatusNotFound, "build %q not found", id)
		return
	}
	buckets := 60
	maps := b.rec.RenderAll(buckets)
	resp := HeatmapResponse{Maps: maps, Jumps: b.rec.Jumps()}
	for _, m := range maps {
		resp.ASCII = append(resp.ASCII, m.ASCII())
	}
	writeJSON(w, http.StatusOK, resp)
}

func newRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
