package server

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// clusterNode creates a server with a seeded dataset and a cluster build
// owning the given shards, returning the test server and build ID.
func clusterNode(t *testing.T, ts *httptest.Server, nshards int, owned []int) string {
	t.Helper()
	var d DatasetResponse
	if code := postJSON(t, ts.URL+"/api/datasets",
		DatasetRequest{Kind: "randomwalk", N: 200, Len: 32, Seed: 5}, &d); code != 201 {
		t.Fatalf("dataset status %d", code)
	}
	var b BuildResponse
	code := postJSON(t, ts.URL+"/api/build", BuildRequest{
		Dataset: d.ID, Variant: "CTreeFull", ClusterShards: nshards, NodeShards: owned,
	}, &b)
	if code != 201 {
		t.Fatalf("cluster build status %d", code)
	}
	if b.ClusterShards != nshards || len(b.NodeShards) != len(owned) {
		t.Fatalf("build response cluster fields = %d/%v, want %d/%v",
			b.ClusterShards, b.NodeShards, nshards, owned)
	}
	return b.ID
}

// probeSeries returns a deterministic query of the node dataset's length.
func probeSeries(n int) []float64 {
	s := make([]float64, n)
	v := 0.0
	for i := range s {
		v += math.Sin(float64(i)*0.7) * 0.5
		s[i] = v
	}
	return s
}

func TestClusterInfoEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := clusterNode(t, ts, 4, []int{1, 3})
	var info ClusterInfoResponse
	if code := getJSON(t, ts.URL+"/api/cluster/info?build="+id, &info); code != 200 {
		t.Fatalf("info status %d", code)
	}
	if info.ClusterShards != 4 || len(info.NodeShards) != 2 || info.SeriesLen != 32 {
		t.Fatalf("info = %+v", info)
	}
	if info.MaxID < 0 || info.Count <= 0 {
		t.Fatalf("info count/maxID = %d/%d", info.Count, info.MaxID)
	}
	// A non-cluster build is rejected.
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "randomwalk", N: 50, Len: 32, Seed: 5}, &d)
	var plain BuildResponse
	postJSON(t, ts.URL+"/api/build", BuildRequest{Dataset: d.ID, Variant: "CTree"}, &plain)
	var e errorResponse
	if code := getJSON(t, ts.URL+"/api/cluster/info?build="+plain.ID, &e); code != 400 {
		t.Fatalf("plain build info status %d (%s)", code, e.Error)
	}
	if code := getJSON(t, ts.URL+"/api/cluster/info?build=nope", &e); code != 404 {
		t.Fatalf("missing build info status %d", code)
	}
}

// TestClusterSearchMatchesQuery checks the node's scatter-gather endpoint
// against its own public query endpoint: merging the per-shard squared sums
// and sorting by (dist, id) must reproduce /api/query exactly.
func TestClusterSearchMatchesQuery(t *testing.T) {
	ts := newTestServer(t)
	id := clusterNode(t, ts, 4, []int{0, 1, 2, 3})
	q := probeSeries(32)

	var want QueryResponse
	if code := postJSON(t, ts.URL+"/api/query",
		QueryRequest{Build: id, Series: q, K: 5, Exact: true}, &want); code != 200 {
		t.Fatalf("query status %d", code)
	}
	var got ClusterSearchResponse
	if code := postJSON(t, ts.URL+"/api/cluster/search",
		ClusterSearchRequest{Build: id, Series: q, K: 5, Mode: "exact"}, &got); code != 200 {
		t.Fatalf("cluster search status %d", code)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%d cluster results, %d query results", len(got.Results), len(want.Results))
	}
	// Cluster results are unsorted collector contents; sort-merge them the
	// router's way and compare distances bit-for-bit.
	byID := make(map[int64]float64, len(got.Results))
	for _, r := range got.Results {
		byID[r.ID] = r.DistSq
	}
	for _, w := range want.Results {
		dsq, ok := byID[w.ID]
		if !ok {
			t.Fatalf("id %d missing from cluster results", w.ID)
		}
		if math.Float64bits(math.Sqrt(dsq)) != math.Float64bits(w.Dist) {
			t.Fatalf("id %d: sqrt(dist_sq) %x != dist %x", w.ID,
				math.Float64bits(math.Sqrt(dsq)), math.Float64bits(w.Dist))
		}
	}

	// Probing the node's shards one at a time and merging covers the same
	// candidate set.
	seen := make(map[int64]bool)
	for si := 0; si < 4; si++ {
		var part ClusterSearchResponse
		if code := postJSON(t, ts.URL+"/api/cluster/search",
			ClusterSearchRequest{Build: id, Series: q, K: 5, Shards: []int{si}}, &part); code != 200 {
			t.Fatalf("shard %d search status %d", si, code)
		}
		for _, r := range part.Results {
			seen[r.ID] = true
		}
	}
	for _, w := range want.Results {
		if !seen[w.ID] {
			t.Fatalf("id %d not in any per-shard top-k", w.ID)
		}
	}
}

func TestClusterSearchValidation(t *testing.T) {
	ts := newTestServer(t)
	id := clusterNode(t, ts, 4, []int{0, 1})
	q := probeSeries(32)
	var e errorResponse
	// Unowned shard fails loudly instead of answering incompletely.
	if code := postJSON(t, ts.URL+"/api/cluster/search",
		ClusterSearchRequest{Build: id, Series: q, K: 3, Shards: []int{2}}, &e); code != 400 {
		t.Fatalf("unowned shard status %d", code)
	}
	if !strings.Contains(e.Error, "does not own") {
		t.Fatalf("unowned shard error = %q", e.Error)
	}
	if code := postJSON(t, ts.URL+"/api/cluster/search",
		ClusterSearchRequest{Build: id, Series: q, Mode: "range"}, &e); code != 400 {
		t.Fatalf("range without eps status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/cluster/search",
		ClusterSearchRequest{Build: id, Series: q, Mode: "wat"}, &e); code != 400 {
		t.Fatalf("bad mode status %d", code)
	}
	if code := postJSON(t, ts.URL+"/api/cluster/search",
		ClusterSearchRequest{Build: id, Series: q[:10], K: 3}, &e); code != 400 {
		t.Fatalf("short series status %d", code)
	}
}

func TestClusterInsertEndpoint(t *testing.T) {
	ts := newTestServer(t)
	id := clusterNode(t, ts, 2, []int{0, 1})
	var info ClusterInfoResponse
	getJSON(t, ts.URL+"/api/cluster/info?build="+id, &info)

	s := probeSeries(32)
	next := info.MaxID + 1
	var ins ClusterInsertResponse
	if code := postJSON(t, ts.URL+"/api/cluster/insert", ClusterInsertRequest{
		Build: id,
		Entries: []ClusterEntry{
			{ID: next, TS: 100, Series: s},
			{ID: next + 1, TS: 101, Series: s},
		},
	}, &ins); code != 200 {
		t.Fatalf("insert status %d", code)
	}
	if ins.Applied != 2 || ins.MaxID != next+1 {
		t.Fatalf("insert response = %+v", ins)
	}

	// A gap in a shard's ID sequence is rejected before anything applies:
	// skip one whole ID (whichever shard it lands in misses it).
	var e errorResponse
	if code := postJSON(t, ts.URL+"/api/cluster/insert", ClusterInsertRequest{
		Build:   id,
		Entries: []ClusterEntry{{ID: next + 3, TS: 102, Series: s}},
	}, &e); code != 400 {
		t.Fatalf("gap insert status %d (%s)", code, e.Error)
	}
	if !strings.Contains(e.Error, "missed a write") && !strings.Contains(e.Error, "not ascending") {
		t.Fatalf("gap insert error = %q", e.Error)
	}

	// The inserted series are findable through the cluster search path.
	var got ClusterSearchResponse
	if code := postJSON(t, ts.URL+"/api/cluster/search",
		ClusterSearchRequest{Build: id, Series: s, K: 1, Mode: "exact"}, &got); code != 200 {
		t.Fatalf("post-insert search status %d", code)
	}
	if len(got.Results) != 1 || (got.Results[0].ID != next && got.Results[0].ID != next+1) {
		t.Fatalf("post-insert nearest = %+v, want one of ids %d/%d", got.Results, next, next+1)
	}
}

func TestClusterBuildRequestValidation(t *testing.T) {
	ts := newTestServer(t)
	var d DatasetResponse
	postJSON(t, ts.URL+"/api/datasets", DatasetRequest{Kind: "randomwalk", N: 50, Len: 32, Seed: 5}, &d)
	for _, tc := range []struct {
		name string
		req  BuildRequest
	}{
		{"node shards without cluster", BuildRequest{Dataset: d.ID, Variant: "CTree", NodeShards: []int{0}}},
		{"cluster without node shards", BuildRequest{Dataset: d.ID, Variant: "CTree", ClusterShards: 2}},
		{"shard out of range", BuildRequest{Dataset: d.ID, Variant: "CTree", ClusterShards: 2, NodeShards: []int{2}}},
		{"duplicate shard", BuildRequest{Dataset: d.ID, Variant: "CTree", ClusterShards: 2, NodeShards: []int{0, 0}}},
		{"conflict with shards", BuildRequest{Dataset: d.ID, Variant: "CTree", ClusterShards: 2, NodeShards: []int{0}, Shards: 2}},
	} {
		var e errorResponse
		if code := postJSON(t, ts.URL+"/api/build", tc.req, &e); code != 400 {
			t.Errorf("%s: status %d (%s)", tc.name, code, e.Error)
		}
	}
}
