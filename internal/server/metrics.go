package server

import (
	"repro/internal/obs"
	"repro/internal/simd"
)

// serverMetrics is the node's /metrics surface: static counters and
// histograms updated on the request path, plus a scrape-time collector
// that derives per-build series (I/O, cache, planner, WAL, compaction,
// heat map) from the accounting every subsystem already keeps — scrapes
// read existing atomic counters, so the query hot path gains nothing.
type serverMetrics struct {
	reg *obs.Registry

	queryLatency  map[string]*obs.Histogram // by mode: approx, exact, range, batch
	queryIOCost   map[string]*obs.Histogram
	queries       map[string]*obs.Counter
	queryErrors   *obs.Counter
	insertLatency *obs.Histogram
	inserts       *obs.Counter
	insertedRows  *obs.Counter
	insertErrors  *obs.Counter
	traced        *obs.Counter
}

const (
	modeApprox = "approx"
	modeExact  = "exact"
	modeRange  = "range"
	modeBatch  = "batch"
)

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{
		reg:          reg,
		queryLatency: make(map[string]*obs.Histogram, 4),
		queryIOCost:  make(map[string]*obs.Histogram, 4),
		queries:      make(map[string]*obs.Counter, 4),
	}
	for _, mode := range []string{modeApprox, modeExact, modeRange, modeBatch} {
		m.queries[mode] = reg.Counter("coconut_queries_total",
			"Queries served, by mode.", "mode", mode)
		m.queryLatency[mode] = reg.Histogram("coconut_query_latency_seconds",
			"Query wall time in seconds, by mode.", obs.LatencyBuckets(), "mode", mode)
		m.queryIOCost[mode] = reg.Histogram("coconut_query_io_cost",
			"Modelled I/O cost per query, by mode.", obs.IOBuckets(), "mode", mode)
	}
	m.queryErrors = reg.Counter("coconut_query_errors_total",
		"Queries that failed.")
	m.inserts = reg.Counter("coconut_inserts_total",
		"Insert batches accepted.")
	m.insertedRows = reg.Counter("coconut_inserted_series_total",
		"Series appended through the live-ingest path.")
	m.insertErrors = reg.Counter("coconut_insert_errors_total",
		"Insert batches that failed.")
	m.insertLatency = reg.Histogram("coconut_insert_latency_seconds",
		"Insert batch wall time in seconds.", obs.LatencyBuckets())
	m.traced = reg.Counter("coconut_traced_queries_total",
		"Queries that carried a trace recorder.")
	reg.Collect(s.collectBuilds)
	return m
}

// collectBuilds derives the per-build series at scrape time. It takes the
// registry read lock only long enough to snapshot the build list, then
// reads each build's already-maintained counters without the build lock —
// every accessor touched here is safe under concurrent queries and
// inserts (atomics or internally locked), and scrape-time tearing between
// related series is acceptable for monitoring.
func (s *Server) collectBuilds(e *obs.Emit) {
	s.mu.RLock()
	builds := make([]*build, 0, len(s.builds))
	for _, b := range s.builds {
		builds = append(builds, b)
	}
	s.mu.RUnlock()
	e.Gauge("coconut_builds", "Registered builds.", float64(len(builds)))
	e.Gauge("coconut_kernel_info", "Active distance-kernel set (value is always 1).",
		1, "kernel", simd.Active())
	for _, b := range builds {
		id := b.id
		st := b.built.IOStats()
		e.Gauge("coconut_build_series", "Series indexed in the build.",
			float64(b.built.Index.Count()), "build", id, "variant", b.variant)
		e.Counter("coconut_build_io_cost", "Modelled I/O cost accrued since construction.",
			st.Cost(s.cost), "build", id)
		e.Counter("coconut_build_seq_io", "Sequential page accesses since construction.",
			float64(st.SeqReads+st.SeqWrites), "build", id)
		e.Counter("coconut_build_rand_io", "Random page accesses since construction.",
			float64(st.RandReads+st.RandWrites), "build", id)
		if c := b.built.Cache; c != nil {
			e.Counter("coconut_build_cache_hits", "Buffer-pool hits.",
				float64(st.CacheHits), "build", id)
			e.Counter("coconut_build_cache_misses", "Buffer-pool misses.",
				float64(st.CacheMisses), "build", id)
			e.Gauge("coconut_build_cache_hit_ratio", "Buffer-pool hit ratio since construction.",
				st.HitRatio(), "build", id)
			e.Counter("coconut_build_cache_evictions", "Buffer-pool evictions.",
				float64(c.Evictions()), "build", id)
		}
		if pl := b.built.Planner; pl != nil && pl.Enabled() {
			e.Counter("coconut_build_planner_skips", "Probe units skipped by the planner.",
				float64(pl.Skips()), "build", id)
			hits, misses := pl.CacheStats()
			e.Counter("coconut_build_plan_cache_hits", "Plan-cache hits.",
				float64(hits), "build", id)
			e.Counter("coconut_build_plan_cache_misses", "Plan-cache misses.",
				float64(misses), "build", id)
		}
		if wst, ok := b.built.WALStats(); ok {
			e.Counter("coconut_build_wal_appends", "WAL records appended.",
				float64(wst.Appends), "build", id)
			e.Counter("coconut_build_wal_syncs", "WAL fsync batches.",
				float64(wst.Syncs), "build", id)
			e.Counter("coconut_build_wal_bytes_appended", "WAL bytes appended.",
				float64(wst.BytesAppended), "build", id)
			e.Gauge("coconut_build_wal_segments", "Open WAL segments.",
				float64(wst.Segments), "build", id)
		}
		if cst, ok := b.built.CompactionStats(); ok {
			e.Counter("coconut_build_compaction_flushes", "Memtable flushes.",
				float64(cst.Flushes), "build", id)
			e.Counter("coconut_build_compaction_merges", "Level merges.",
				float64(cst.Merges), "build", id)
			e.Gauge("coconut_build_compaction_runs", "Live sorted runs.",
				float64(cst.Runs), "build", id)
			pending := 0.0
			if cst.Pending {
				pending = 1
			}
			e.Gauge("coconut_build_compaction_pending", "1 while a background merge is queued or running.",
				pending, "build", id)
		}
		if b.rec != nil {
			e.Counter("coconut_build_page_accesses", "Page accesses seen by the heat-map tracer.",
				float64(b.rec.Total()), "build", id)
			j := b.rec.Jumps()
			e.Gauge("coconut_build_access_seq_frac", "Fraction of traced accesses that were sequential.",
				j.SeqFrac, "build", id)
		}
	}
}
