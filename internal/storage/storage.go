// Package storage provides the page-based storage layer beneath every index
// in the repository. It substitutes for the raw disks of the paper's C/C++
// algorithms server: all reads and writes go through fixed-size pages, and
// the layer accounts sequential vs. random accesses separately so that the
// I/O-pattern claims of the paper (compact & contiguous layouts are
// sequential; top-down-built trees are random) become measurable and
// reproducible. An optional access tracer feeds the heat-map visualization.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultPageSize is the page size used unless configured otherwise.
const DefaultPageSize = 4096

// Errors returned by the storage layer.
var (
	ErrNotFound   = errors.New("storage: file not found")
	ErrExists     = errors.New("storage: file already exists")
	ErrOutOfRange = errors.New("storage: page out of range")
)

// Stats accumulates I/O accounting. The disk models a single head: an
// access to page p of file f is sequential when the immediately preceding
// access touched the same file at page p-1 (or p itself, a buffered
// repeat); anything else — including switching files — counts as random.
// Multi-page operations (ReadPages, AppendPages) therefore cost at most one
// random access followed by sequential ones, which is how buffered
// streaming I/O earns its sequential profile.
//
// CacheHits and CacheMisses account the buffer-pool layer when a cached
// PageReader fronts the disk: a hit is served from memory and never reaches
// the disk (so it adds nothing to the read counters and nothing to Cost),
// while a miss also shows up as the underlying disk read it triggered —
// Cost therefore charges exactly the misses, which is the point of the
// cache. Both stay zero on an uncached disk.
type Stats struct {
	SeqReads   int64
	RandReads  int64
	SeqWrites  int64
	RandWrites int64
	// Buffer-pool accounting (zero unless reads go through a page cache).
	CacheHits   int64
	CacheMisses int64
}

// Reads returns total page reads.
func (s Stats) Reads() int64 { return s.SeqReads + s.RandReads }

// Writes returns total page writes.
func (s Stats) Writes() int64 { return s.SeqWrites + s.RandWrites }

// Total returns total page accesses.
func (s Stats) Total() int64 { return s.Reads() + s.Writes() }

// Sub returns s - o, useful for measuring a window of activity.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		SeqReads:    s.SeqReads - o.SeqReads,
		RandReads:   s.RandReads - o.RandReads,
		SeqWrites:   s.SeqWrites - o.SeqWrites,
		RandWrites:  s.RandWrites - o.RandWrites,
		CacheHits:   s.CacheHits - o.CacheHits,
		CacheMisses: s.CacheMisses - o.CacheMisses,
	}
}

// Add returns s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		SeqReads:    s.SeqReads + o.SeqReads,
		RandReads:   s.RandReads + o.RandReads,
		SeqWrites:   s.SeqWrites + o.SeqWrites,
		RandWrites:  s.RandWrites + o.RandWrites,
		CacheHits:   s.CacheHits + o.CacheHits,
		CacheMisses: s.CacheMisses + o.CacheMisses,
	}
}

// HitRatio returns the cache hit fraction, or 0 when no cached reads were
// observed.
func (s Stats) HitRatio() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

func (s Stats) String() string {
	out := fmt.Sprintf("seqR=%d randR=%d seqW=%d randW=%d", s.SeqReads, s.RandReads, s.SeqWrites, s.RandWrites)
	if s.CacheHits != 0 || s.CacheMisses != 0 {
		out += fmt.Sprintf(" cacheHit=%d cacheMiss=%d", s.CacheHits, s.CacheMisses)
	}
	return out
}

// CostModel prices page accesses. The defaults approximate a spinning disk
// where a random access costs 10x a sequential one; the ratio, not the
// absolute unit, drives every comparison in the experiments.
type CostModel struct {
	SeqCost  float64 // cost units per sequential page access
	RandCost float64 // cost units per random page access
}

// DefaultCostModel is the disk-like model used by the benchmarks.
var DefaultCostModel = CostModel{SeqCost: 1, RandCost: 10}

// Cost returns the total cost of the accounted accesses under m. Cache
// hits are free: only the seq/rand counters — which a buffer-pool hit never
// touches, and a miss increments exactly once via its backing disk read —
// contribute to the cost.
func (s Stats) Cost(m CostModel) float64 {
	return float64(s.SeqReads+s.SeqWrites)*m.SeqCost + float64(s.RandReads+s.RandWrites)*m.RandCost
}

// StatsProvider exposes I/O statistics. *Disk implements it (cache fields
// zero); cached readers such as *bufpool.Pool implement it with the
// hit/miss counters filled in, so cost accounting can be threaded through
// layers that no longer know whether their reads are cached.
type StatsProvider interface {
	Stats() Stats
}

// Tracer observes every page access; the heat-map package implements it.
// The parallel query engine issues reads from worker goroutines, so tracers
// must be safe for concurrent Access calls.
type Tracer interface {
	Access(file string, page int64, write bool)
}

// PageReader is the read side of the storage layer: everything a search
// path needs to fetch pages. Both *Disk (uncached — every read reaches the
// simulated head) and *bufpool.Pool (a pinned page cache in front of a
// disk) satisfy it, so indexes read through a PageReader and stay agnostic
// of whether a buffer pool is present. Writes always go to the *Disk;
// write-path coherence is the invalidation hooks' business (Invalidator).
type PageReader interface {
	PageSize() int
	Exists(name string) bool
	NumPages(name string) (int64, error)
	ReadPage(name string, page int64, buf []byte) (int, error)
	ReadPages(name string, page int64, n int, buf []byte) (int, error)
	// PinPage returns a borrowed, read-only view of one page without
	// copying. The caller must Release the handle when done with the bytes;
	// the view is a stable snapshot of the page at pin time.
	PinPage(name string, page int64) (PageHandle, error)
}

// Unpinner releases one pinned page back to its cache. Cached readers hand
// out frames implementing it; uncached reads need no release (nil).
type Unpinner interface {
	Unpin()
}

// PageHandle is a borrowed, read-only view of one page — the zero-copy
// currency of the PageReader interface. Data remains valid (a stable
// snapshot) until Release; after Release it must not be touched, because a
// cache may recycle the underlying frame. Handles are plain values: pinning
// and releasing allocate nothing.
type PageHandle struct {
	data []byte
	pin  Unpinner
}

// NewPageHandle wraps page bytes (and an optional unpin hook) in a handle;
// cache implementations use it to hand out pinned frames.
func NewPageHandle(data []byte, pin Unpinner) PageHandle {
	return PageHandle{data: data, pin: pin}
}

// Data returns the page bytes. Valid only until Release.
func (h PageHandle) Data() []byte { return h.data }

// Release returns the page to its cache (a no-op for uncached reads).
func (h PageHandle) Release() {
	if h.pin != nil {
		h.pin.Unpin()
	}
}

// Invalidator receives write-path invalidation events from a Disk, keeping
// any page cache in front of it coherent: page writes invalidate one page,
// Remove and Rename invalidate a whole file. Events fire after the disk
// mutation completes and outside the disk lock (so an invalidator may take
// its own locks and read back through the disk); as everywhere else in the
// storage layer, writes therefore require external serialization against
// concurrent reads of the same pages.
type Invalidator interface {
	InvalidatePage(name string, page int64)
	InvalidateFile(name string)
}

// Disk is a simulated page-addressed disk holding named files. It is safe
// for concurrent use: reads proceed concurrently under a shared lock, while
// mutations (create/remove/rename/write) are exclusive. Pages are PageSize
// bytes; files grow by appending pages.
//
// Access accounting is atomic, not lock-protected: the head position is a
// single packed atomic word and the counters are atomic integers, so
// concurrent readers never race on the accounting even though they share
// the read lock. Under concurrency the single simulated head is shared by
// all workers, so interleaved streams classify more accesses as random —
// the same penalty a real spinning disk would charge for interleaved I/O.
type Disk struct {
	pageSize int

	mu         sync.RWMutex
	files      map[string]*file
	nextFileID uint32
	tracer     Tracer
	invs       []Invalidator

	// acct holds the atomic counters and the packed head word shared with
	// the file-backed backend (see accounting.go for the packing).
	acct ioAccounting
}

type file struct {
	id    uint32 // immutable identity for head tracking; never reused
	name  string
	pages [][]byte
}

// NewDisk creates an empty disk with the given page size (0 means
// DefaultPageSize).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{pageSize: pageSize, files: make(map[string]*file)}
}

// newFile allocates a file with a fresh identity; callers must hold d.mu.
func (d *Disk) newFile(name string) *file {
	f := &file{id: d.nextFileID, name: name}
	d.nextFileID++
	return f
}

// PageSize returns the disk's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// SetTracer installs (or removes, if nil) an access tracer.
func (d *Disk) SetTracer(t Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracer = t
}

// Stats returns a snapshot of the accumulated I/O statistics.
func (d *Disk) Stats() Stats { return d.acct.snapshot() }

// ResetStats zeroes the I/O statistics, including the packed head position
// that drives the per-file sequential-vs-random classification. Resetting
// the head matters: without it, the first access of a measurement window
// could classify as sequential purely because the previous window happened
// to park the head on the adjacent page of the same file — the window's
// accounting would then depend on activity it claims to exclude.
func (d *Disk) ResetStats() { d.acct.reset() }

// AddInvalidator registers a cache invalidation hook; every subsequent
// page overwrite, Remove, and Rename notifies it (appends never do: a new
// page number cannot be cached). Hooks cannot be removed — a pool lives as
// long as its disk.
func (d *Disk) AddInvalidator(inv Invalidator) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.invs = append(d.invs, inv)
}

// notifyPage fires page-level invalidation on a snapshot of the hook list
// taken under the disk lock. Called after the lock is released so hooks may
// take their own locks and re-read through the disk without deadlocking.
func notifyPage(invs []Invalidator, name string, page int64) {
	for _, inv := range invs {
		inv.InvalidatePage(name, page)
	}
}

// notifyFile is notifyPage for whole-file invalidation (Remove, Rename).
func notifyFile(invs []Invalidator, name string) {
	for _, inv := range invs {
		inv.InvalidateFile(name)
	}
}

// Create creates an empty file. It fails if the name already exists.
func (d *Disk) Create(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	d.files[name] = d.newFile(name)
	return nil
}

// Remove deletes a file and reclaims its pages. File identities are never
// reused, so a head position pointing at a removed file simply never
// matches again (the next access counts as random, as it should). Any
// registered caches drop the file's pages.
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	if _, ok := d.files[name]; !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(d.files, name)
	invs := d.invs
	d.mu.Unlock()
	notifyFile(invs, name)
	return nil
}

// Rename renames a file, failing if the target exists. Any registered
// caches drop the pages keyed under the old name.
func (d *Disk) Rename(oldName, newName string) error {
	d.mu.Lock()
	f, ok := d.files[oldName]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, oldName)
	}
	if _, ok := d.files[newName]; ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, newName)
	}
	delete(d.files, oldName)
	f.name = newName
	d.files[newName] = f
	invs := d.invs
	d.mu.Unlock()
	notifyFile(invs, oldName)
	return nil
}

// Exists reports whether a file exists.
func (d *Disk) Exists(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[name]
	return ok
}

// Files returns the names of all files, sorted.
func (d *Disk) Files() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NumPages returns the number of pages in a file.
func (d *Disk) NumPages(name string) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return int64(len(f.pages)), nil
}

// TotalPages returns the number of pages across all files (the storage
// footprint).
func (d *Disk) TotalPages() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, f := range d.files {
		n += int64(len(f.pages))
	}
	return n
}

// ReadPage reads page number page of the named file into buf, which must be
// at least PageSize bytes. It returns the number of bytes copied. Reads
// take the shared lock, so any number of workers can probe pages
// concurrently.
func (d *Disk) ReadPage(name string, page int64, buf []byte) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page >= int64(len(f.pages)) {
		return 0, fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, len(f.pages))
	}
	d.account(f, page, false)
	return copy(buf, f.pages[page]), nil
}

// PinPage returns a zero-copy, read-only view of one page, accounted
// exactly like a ReadPage of it. Safe to borrow: the disk never mutates a
// published page slice in place — WritePage and the append paths install
// freshly allocated pages — so the view is a stable snapshot even if the
// page is overwritten after the pin. The handle needs no release (its
// Release is a no-op), but callers should Release anyway so the same code
// path works against a pinning cache.
func (d *Disk) PinPage(name string, page int64) (PageHandle, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return PageHandle{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page >= int64(len(f.pages)) {
		return PageHandle{}, fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, len(f.pages))
	}
	d.account(f, page, false)
	return PageHandle{data: f.pages[page]}, nil
}

// WritePage overwrites page number page of the named file. Writing exactly
// one page past the end appends a new page. Registered caches drop their
// copy of the page. The page slice is replaced, never mutated, so pinned
// views of the old contents stay valid snapshots.
func (d *Disk) WritePage(name string, page int64, data []byte) error {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page > int64(len(f.pages)) {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, len(f.pages))
	}
	if len(data) > d.pageSize {
		d.mu.Unlock()
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize)
	}
	d.account(f, page, true)
	p := make([]byte, d.pageSize)
	copy(p, data)
	var invs []Invalidator
	if page == int64(len(f.pages)) {
		f.pages = append(f.pages, p) // append: the page cannot be cached yet
	} else {
		f.pages[page] = p
		invs = d.invs
	}
	d.mu.Unlock()
	notifyPage(invs, name, page)
	return nil
}

// AppendPage appends a page to the named file, returning its page number.
func (d *Disk) AppendPage(name string, data []byte) (int64, error) {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if len(data) > d.pageSize {
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize)
	}
	page := int64(len(f.pages))
	d.account(f, page, true)
	p := make([]byte, d.pageSize)
	copy(p, data)
	f.pages = append(f.pages, p)
	// No invalidation: a freshly appended page number cannot be cached —
	// pins are bounds-checked, the disk never truncates, and Remove/Rename
	// already flush a name before it can shrink or be reused.
	d.mu.Unlock()
	return page, nil
}

// ReadPages reads up to n consecutive pages starting at page into buf
// (which must hold n*PageSize bytes), returning how many pages were read
// (clamped at end of file). One head movement plus sequential transfers.
func (d *Disk) ReadPages(name string, page int64, n int, buf []byte) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page >= int64(len(f.pages)) {
		return 0, fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, len(f.pages))
	}
	if len(buf) < n*d.pageSize {
		return 0, fmt.Errorf("storage: buffer %d bytes for %d pages of %d", len(buf), n, d.pageSize)
	}
	got := 0
	for i := 0; i < n && page+int64(i) < int64(len(f.pages)); i++ {
		d.account(f, page+int64(i), false)
		copy(buf[i*d.pageSize:(i+1)*d.pageSize], f.pages[page+int64(i)])
		got++
	}
	return got, nil
}

// AppendPages appends len(data)/PageSize full pages plus any trailing
// partial page to the named file, returning the first new page number. One
// head movement plus sequential transfers.
func (d *Disk) AppendPages(name string, data []byte) (int64, error) {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	first := int64(len(f.pages))
	for off := 0; off < len(data); off += d.pageSize {
		end := off + d.pageSize
		if end > len(data) {
			end = len(data)
		}
		p := make([]byte, d.pageSize)
		copy(p, data[off:end])
		d.account(f, int64(len(f.pages)), true)
		f.pages = append(f.pages, p)
	}
	// No invalidation: appended page numbers cannot be cached (see
	// AppendPage).
	d.mu.Unlock()
	return first, nil
}

var _ PageReader = (*Disk)(nil)
var _ StatsProvider = (*Disk)(nil)

// account classifies one page access as sequential or random and advances
// the head. It must be called with d.mu held (shared or exclusive): the
// head swap and counter increments are atomic, so concurrent readers under
// the shared lock account without racing. With several workers interleaving
// streams the shared head bounces between files and accesses classify as
// random — the honest cost of concurrent streams on a one-head disk.
func (d *Disk) account(f *file, page int64, write bool) {
	d.acct.account(f.id, page, write)
	if d.tracer != nil {
		d.tracer.Access(f.name, page, write)
	}
}
