// Package storage provides the page-based storage layer beneath every index
// in the repository. It substitutes for the raw disks of the paper's C/C++
// algorithms server: all reads and writes go through fixed-size pages, and
// the layer accounts sequential vs. random accesses separately so that the
// I/O-pattern claims of the paper (compact & contiguous layouts are
// sequential; top-down-built trees are random) become measurable and
// reproducible. An optional access tracer feeds the heat-map visualization.
package storage

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultPageSize is the page size used unless configured otherwise.
const DefaultPageSize = 4096

// Errors returned by the storage layer.
var (
	ErrNotFound   = errors.New("storage: file not found")
	ErrExists     = errors.New("storage: file already exists")
	ErrOutOfRange = errors.New("storage: page out of range")
)

// Stats accumulates I/O accounting. The disk models a single head: an
// access to page p of file f is sequential when the immediately preceding
// access touched the same file at page p-1 (or p itself, a buffered
// repeat); anything else — including switching files — counts as random.
// Multi-page operations (ReadPages, AppendPages) therefore cost at most one
// random access followed by sequential ones, which is how buffered
// streaming I/O earns its sequential profile.
type Stats struct {
	SeqReads   int64
	RandReads  int64
	SeqWrites  int64
	RandWrites int64
}

// Reads returns total page reads.
func (s Stats) Reads() int64 { return s.SeqReads + s.RandReads }

// Writes returns total page writes.
func (s Stats) Writes() int64 { return s.SeqWrites + s.RandWrites }

// Total returns total page accesses.
func (s Stats) Total() int64 { return s.Reads() + s.Writes() }

// Sub returns s - o, useful for measuring a window of activity.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		SeqReads:   s.SeqReads - o.SeqReads,
		RandReads:  s.RandReads - o.RandReads,
		SeqWrites:  s.SeqWrites - o.SeqWrites,
		RandWrites: s.RandWrites - o.RandWrites,
	}
}

// Add returns s + o.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		SeqReads:   s.SeqReads + o.SeqReads,
		RandReads:  s.RandReads + o.RandReads,
		SeqWrites:  s.SeqWrites + o.SeqWrites,
		RandWrites: s.RandWrites + o.RandWrites,
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("seqR=%d randR=%d seqW=%d randW=%d", s.SeqReads, s.RandReads, s.SeqWrites, s.RandWrites)
}

// CostModel prices page accesses. The defaults approximate a spinning disk
// where a random access costs 10x a sequential one; the ratio, not the
// absolute unit, drives every comparison in the experiments.
type CostModel struct {
	SeqCost  float64 // cost units per sequential page access
	RandCost float64 // cost units per random page access
}

// DefaultCostModel is the disk-like model used by the benchmarks.
var DefaultCostModel = CostModel{SeqCost: 1, RandCost: 10}

// Cost returns the total cost of the accounted accesses under m.
func (s Stats) Cost(m CostModel) float64 {
	return float64(s.SeqReads+s.SeqWrites)*m.SeqCost + float64(s.RandReads+s.RandWrites)*m.RandCost
}

// Tracer observes every page access; the heat-map package implements it.
// The parallel query engine issues reads from worker goroutines, so tracers
// must be safe for concurrent Access calls.
type Tracer interface {
	Access(file string, page int64, write bool)
}

// Disk is a simulated page-addressed disk holding named files. It is safe
// for concurrent use: reads proceed concurrently under a shared lock, while
// mutations (create/remove/rename/write) are exclusive. Pages are PageSize
// bytes; files grow by appending pages.
//
// Access accounting is atomic, not lock-protected: the head position is a
// single packed atomic word and the counters are atomic integers, so
// concurrent readers never race on the accounting even though they share
// the read lock. Under concurrency the single simulated head is shared by
// all workers, so interleaved streams classify more accesses as random —
// the same penalty a real spinning disk would charge for interleaved I/O.
type Disk struct {
	pageSize int

	mu         sync.RWMutex
	files      map[string]*file
	nextFileID uint32
	tracer     Tracer

	seqReads, randReads   atomic.Int64
	seqWrites, randWrites atomic.Int64
	// head is the packed position after the last access: (fileID+1)<<32 |
	// page, or 0 when no access has happened yet. Reading and replacing it
	// is a single atomic swap.
	head atomic.Uint64
}

type file struct {
	id    uint32 // immutable identity for head tracking; never reused
	name  string
	pages [][]byte
}

// NewDisk creates an empty disk with the given page size (0 means
// DefaultPageSize).
func NewDisk(pageSize int) *Disk {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Disk{pageSize: pageSize, files: make(map[string]*file)}
}

// newFile allocates a file with a fresh identity; callers must hold d.mu.
func (d *Disk) newFile(name string) *file {
	f := &file{id: d.nextFileID, name: name}
	d.nextFileID++
	return f
}

// PageSize returns the disk's page size in bytes.
func (d *Disk) PageSize() int { return d.pageSize }

// SetTracer installs (or removes, if nil) an access tracer.
func (d *Disk) SetTracer(t Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracer = t
}

// Stats returns a snapshot of the accumulated I/O statistics.
func (d *Disk) Stats() Stats {
	return Stats{
		SeqReads:   d.seqReads.Load(),
		RandReads:  d.randReads.Load(),
		SeqWrites:  d.seqWrites.Load(),
		RandWrites: d.randWrites.Load(),
	}
}

// ResetStats zeroes the I/O statistics.
func (d *Disk) ResetStats() {
	d.seqReads.Store(0)
	d.randReads.Store(0)
	d.seqWrites.Store(0)
	d.randWrites.Store(0)
}

// Create creates an empty file. It fails if the name already exists.
func (d *Disk) Create(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	d.files[name] = d.newFile(name)
	return nil
}

// Remove deletes a file and reclaims its pages. File identities are never
// reused, so a head position pointing at a removed file simply never
// matches again (the next access counts as random, as it should).
func (d *Disk) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(d.files, name)
	return nil
}

// Rename renames a file, failing if the target exists.
func (d *Disk) Rename(oldName, newName string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, oldName)
	}
	if _, ok := d.files[newName]; ok {
		return fmt.Errorf("%w: %q", ErrExists, newName)
	}
	delete(d.files, oldName)
	f.name = newName
	d.files[newName] = f
	return nil
}

// Exists reports whether a file exists.
func (d *Disk) Exists(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[name]
	return ok
}

// Files returns the names of all files, sorted.
func (d *Disk) Files() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NumPages returns the number of pages in a file.
func (d *Disk) NumPages(name string) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return int64(len(f.pages)), nil
}

// TotalPages returns the number of pages across all files (the storage
// footprint).
func (d *Disk) TotalPages() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, f := range d.files {
		n += int64(len(f.pages))
	}
	return n
}

// ReadPage reads page number page of the named file into buf, which must be
// at least PageSize bytes. It returns the number of bytes copied. Reads
// take the shared lock, so any number of workers can probe pages
// concurrently.
func (d *Disk) ReadPage(name string, page int64, buf []byte) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page >= int64(len(f.pages)) {
		return 0, fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, len(f.pages))
	}
	d.account(f, page, false)
	return copy(buf, f.pages[page]), nil
}

// WritePage overwrites page number page of the named file. Writing exactly
// one page past the end appends a new page.
func (d *Disk) WritePage(name string, page int64, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page > int64(len(f.pages)) {
		return fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, len(f.pages))
	}
	if len(data) > d.pageSize {
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize)
	}
	d.account(f, page, true)
	p := make([]byte, d.pageSize)
	copy(p, data)
	if page == int64(len(f.pages)) {
		f.pages = append(f.pages, p)
	} else {
		f.pages[page] = p
	}
	return nil
}

// AppendPage appends a page to the named file, returning its page number.
func (d *Disk) AppendPage(name string, data []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if len(data) > d.pageSize {
		return 0, fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize)
	}
	page := int64(len(f.pages))
	d.account(f, page, true)
	p := make([]byte, d.pageSize)
	copy(p, data)
	f.pages = append(f.pages, p)
	return page, nil
}

// ReadPages reads up to n consecutive pages starting at page into buf
// (which must hold n*PageSize bytes), returning how many pages were read
// (clamped at end of file). One head movement plus sequential transfers.
func (d *Disk) ReadPages(name string, page int64, n int, buf []byte) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page >= int64(len(f.pages)) {
		return 0, fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, len(f.pages))
	}
	if len(buf) < n*d.pageSize {
		return 0, fmt.Errorf("storage: buffer %d bytes for %d pages of %d", len(buf), n, d.pageSize)
	}
	got := 0
	for i := 0; i < n && page+int64(i) < int64(len(f.pages)); i++ {
		d.account(f, page+int64(i), false)
		copy(buf[i*d.pageSize:(i+1)*d.pageSize], f.pages[page+int64(i)])
		got++
	}
	return got, nil
}

// AppendPages appends len(data)/PageSize full pages plus any trailing
// partial page to the named file, returning the first new page number. One
// head movement plus sequential transfers.
func (d *Disk) AppendPages(name string, data []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	first := int64(len(f.pages))
	for off := 0; off < len(data); off += d.pageSize {
		end := off + d.pageSize
		if end > len(data) {
			end = len(data)
		}
		p := make([]byte, d.pageSize)
		copy(p, data[off:end])
		d.account(f, int64(len(f.pages)), true)
		f.pages = append(f.pages, p)
	}
	return first, nil
}

// account classifies one page access as sequential or random and advances
// the head. It must be called with d.mu held (shared or exclusive): the
// head swap and counter increments are atomic, so concurrent readers under
// the shared lock account without racing. An access is sequential when the
// head sits on the same file at the previous page (or the same page, a
// buffered repeat); with several workers interleaving streams the shared
// head bounces between files and accesses classify as random — the honest
// cost of concurrent streams on a one-head disk.
func (d *Disk) account(f *file, page int64, write bool) {
	packed := (uint64(f.id)+1)<<32 | uint64(uint32(page))
	prev := d.head.Swap(packed)
	prevPage := prev & 0xffffffff
	sequential := prev != 0 && prev>>32 == uint64(f.id)+1 &&
		(uint64(uint32(page)) == prevPage+1 || uint64(uint32(page)) == prevPage)
	switch {
	case write && sequential:
		d.seqWrites.Add(1)
	case write:
		d.randWrites.Add(1)
	case sequential:
		d.seqReads.Add(1)
	default:
		d.randReads.Add(1)
	}
	if d.tracer != nil {
		d.tracer.Access(f.name, page, write)
	}
}
