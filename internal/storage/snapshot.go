package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// Snapshot format: the whole simulated disk serialized to a real file, so
// built indexes survive process restarts and can be shipped around.
//
//	magic "CCNUTDSK" | version u32 | pageSize u32 | fileCount u32
//	per file: nameLen u32 | name | pageCount u64 | pages (pageSize each)
const (
	snapshotMagic   = "CCNUTDSK"
	snapshotVersion = 1
)

// WriteTo serializes the disk's full contents (all files and pages) to w.
// Serialization does not touch the I/O accounting.
func (d *Disk) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write([]byte(snapshotMagic)); err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapshotVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(d.pageSize))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(d.files)))
	if err := write(hdr[:]); err != nil {
		return n, err
	}
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := d.files[name]
		var fh [4]byte
		binary.LittleEndian.PutUint32(fh[:], uint32(len(name)))
		if err := write(fh[:]); err != nil {
			return n, err
		}
		if err := write([]byte(name)); err != nil {
			return n, err
		}
		var pc [8]byte
		binary.LittleEndian.PutUint64(pc[:], uint64(len(f.pages)))
		if err := write(pc[:]); err != nil {
			return n, err
		}
		for _, page := range f.pages {
			if err := write(page); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadDisk deserializes a disk snapshot produced by WriteTo. The returned
// disk starts with zeroed I/O statistics.
func ReadDisk(r io.Reader) (*Disk, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("storage: bad snapshot magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != snapshotVersion {
		return nil, fmt.Errorf("storage: unsupported snapshot version %d", v)
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[4:]))
	fileCount := int(binary.LittleEndian.Uint32(hdr[8:]))
	if pageSize <= 0 || pageSize > 1<<24 {
		return nil, fmt.Errorf("storage: implausible page size %d", pageSize)
	}
	d := NewDisk(pageSize)
	for i := 0; i < fileCount; i++ {
		var fh [4]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return nil, fmt.Errorf("storage: truncated snapshot (file %d): %w", i, err)
		}
		nameLen := int(binary.LittleEndian.Uint32(fh[:]))
		if nameLen <= 0 || nameLen > 1<<16 {
			return nil, fmt.Errorf("storage: implausible file name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		var pc [8]byte
		if _, err := io.ReadFull(br, pc[:]); err != nil {
			return nil, err
		}
		pages := binary.LittleEndian.Uint64(pc[:])
		f := d.newFile(string(nameBuf))
		f.pages = make([][]byte, pages)
		for p := range f.pages {
			f.pages[p] = make([]byte, pageSize)
			if _, err := io.ReadFull(br, f.pages[p]); err != nil {
				return nil, fmt.Errorf("storage: truncated snapshot (file %q page %d): %w", f.name, p, err)
			}
		}
		if _, ok := d.files[f.name]; ok {
			return nil, fmt.Errorf("storage: duplicate file %q in snapshot", f.name)
		}
		d.files[f.name] = f
	}
	return d, nil
}

// SaveFile writes the disk snapshot to a real file on the host filesystem.
func (d *Disk) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := d.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDiskFile reads a disk snapshot from the host filesystem.
func LoadDiskFile(path string) (*Disk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDisk(f)
}
