package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/fsx"
)

// Snapshot format: the whole page store serialized to a real file, so built
// indexes survive process restarts and can be shipped around. Both backends
// write the same format, so a snapshot taken on the file-backed store opens
// on the simulated disk and vice versa.
//
//	magic "CCNUTDSK" | version u32 | pageSize u32 | fileCount u32
//	per file: nameLen u32 | name | pageCount u64 | pages (pageSize each)
const (
	snapshotMagic   = "CCNUTDSK"
	snapshotVersion = 1
)

// snapshotFile is one file's contribution to a snapshot: its name, page
// count, and a page reader that must not touch the I/O accounting.
type snapshotFile struct {
	name  string
	pages int64
	read  func(page int64, buf []byte) error
}

// writeSnapshot serializes files (already sorted by name) in the snapshot
// format.
func writeSnapshot(w io.Writer, pageSize int, files []snapshotFile) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write([]byte(snapshotMagic)); err != nil {
		return n, err
	}
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], snapshotVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(pageSize))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(files)))
	if err := write(hdr[:]); err != nil {
		return n, err
	}
	buf := make([]byte, pageSize)
	for _, f := range files {
		var fh [4]byte
		binary.LittleEndian.PutUint32(fh[:], uint32(len(f.name)))
		if err := write(fh[:]); err != nil {
			return n, err
		}
		if err := write([]byte(f.name)); err != nil {
			return n, err
		}
		var pc [8]byte
		binary.LittleEndian.PutUint64(pc[:], uint64(f.pages))
		if err := write(pc[:]); err != nil {
			return n, err
		}
		for p := int64(0); p < f.pages; p++ {
			if err := f.read(p, buf); err != nil {
				return n, err
			}
			if err := write(buf); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// WriteTo serializes the disk's full contents (all files and pages) to w.
// Serialization does not touch the I/O accounting.
func (d *Disk) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]snapshotFile, 0, len(names))
	for _, name := range names {
		f := d.files[name]
		files = append(files, snapshotFile{
			name:  name,
			pages: int64(len(f.pages)),
			read: func(page int64, buf []byte) error {
				copy(buf, f.pages[page])
				return nil
			},
		})
	}
	return writeSnapshot(w, d.pageSize, files)
}

// ReadDisk deserializes a disk snapshot produced by WriteTo. The returned
// disk starts with zeroed I/O statistics.
func ReadDisk(r io.Reader) (*Disk, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("storage: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("storage: bad snapshot magic %q", magic)
	}
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != snapshotVersion {
		return nil, fmt.Errorf("storage: unsupported snapshot version %d", v)
	}
	pageSize := int(binary.LittleEndian.Uint32(hdr[4:]))
	fileCount := int(binary.LittleEndian.Uint32(hdr[8:]))
	if pageSize <= 0 || pageSize > 1<<24 {
		return nil, fmt.Errorf("storage: implausible page size %d", pageSize)
	}
	d := NewDisk(pageSize)
	for i := 0; i < fileCount; i++ {
		var fh [4]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return nil, fmt.Errorf("storage: truncated snapshot (file %d): %w", i, err)
		}
		nameLen := int(binary.LittleEndian.Uint32(fh[:]))
		if nameLen <= 0 || nameLen > 1<<16 {
			return nil, fmt.Errorf("storage: implausible file name length %d", nameLen)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, err
		}
		var pc [8]byte
		if _, err := io.ReadFull(br, pc[:]); err != nil {
			return nil, err
		}
		pages := binary.LittleEndian.Uint64(pc[:])
		f := d.newFile(string(nameBuf))
		f.pages = make([][]byte, pages)
		for p := range f.pages {
			f.pages[p] = make([]byte, pageSize)
			if _, err := io.ReadFull(br, f.pages[p]); err != nil {
				return nil, fmt.Errorf("storage: truncated snapshot (file %q page %d): %w", f.name, p, err)
			}
		}
		if _, ok := d.files[f.name]; ok {
			return nil, fmt.Errorf("storage: duplicate file %q in snapshot", f.name)
		}
		d.files[f.name] = f
	}
	return d, nil
}

// SaveFile writes the disk snapshot durably to the host filesystem: the
// bytes go to a temp file, are fsynced, renamed over path, and the parent
// directory is fsynced. A crash mid-save leaves any previous snapshot at
// path intact; once SaveFile returns, the new snapshot survives a crash —
// the precondition for checkpointing (WAL truncation must not happen
// before the snapshot it relies on is durable).
func (d *Disk) SaveFile(path string) error { return saveSnapshot(fsx.OS, path, d) }

// SaveFileFS is SaveFile against an injectable filesystem (crash tests).
func (d *Disk) SaveFileFS(fsys fsx.FS, path string) error { return saveSnapshot(fsys, path, d) }

// saveSnapshot durably writes any backend's snapshot via the
// write-temp → fsync → rename → fsync-dir protocol.
func saveSnapshot(fsys fsx.FS, path string, b interface {
	WriteTo(io.Writer) (int64, error)
}) error {
	return fsx.WriteFileAtomic(fsys, path, func(w io.Writer) error {
		_, err := b.WriteTo(w)
		return err
	})
}

// LoadDiskFile reads a disk snapshot from the host filesystem.
func LoadDiskFile(path string) (*Disk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDisk(f)
}

// LoadDiskFileFS is LoadDiskFile against an injectable filesystem.
func LoadDiskFileFS(fsys fsx.FS, path string) (*Disk, error) {
	fsys = fsx.OrOS(fsys)
	if fsys == fsx.OS {
		return LoadDiskFile(path)
	}
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadDisk(bytes.NewReader(buf))
}
