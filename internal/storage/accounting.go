package storage

import "sync/atomic"

// Head-position packing for the one-head sequential-vs-random classifier.
// The position after an access is a single atomic word so that concurrent
// readers classify without locking: the top 24 bits hold the file identity
// (id reduced mod 2²⁴−1, plus one so a parked head is never the zero word)
// and the low 40 bits hold the page number. 40 bits of page cover 4 PiB of
// 4 KiB pages in a single file; the previous 32-bit packing aliased page
// 2³² onto page 0, misclassifying huge-file accesses as sequential repeats.
const (
	headPageBits = 40
	headPageMask = (uint64(1) << headPageBits) - 1
	headFileMod  = (uint64(1) << (64 - headPageBits)) - 1
)

// packHead encodes (file, page) as one non-zero word; 0 means "no access
// yet".
func packHead(fileID uint32, page int64) uint64 {
	fid := uint64(fileID)%headFileMod + 1
	return fid<<headPageBits | uint64(page)&headPageMask
}

// ioAccounting is the accounting core shared by every storage backend: the
// atomic sequential/random counters plus the packed head word. Both the
// simulated Disk and the file-backed FileDisk embed one, so the two
// backends classify identical access sequences identically — which is what
// makes their Stats comparable in the equivalence suite.
type ioAccounting struct {
	seqReads, randReads   atomic.Int64
	seqWrites, randWrites atomic.Int64
	head                  atomic.Uint64
}

// account classifies one page access as sequential or random and advances
// the head. An access is sequential when the head sits on the same file at
// the previous page (or the same page, a buffered repeat); anything else —
// including switching files — is random.
func (a *ioAccounting) account(fileID uint32, page int64, write bool) {
	packed := packHead(fileID, page)
	prev := a.head.Swap(packed)
	prevPage := prev & headPageMask
	pg := packed & headPageMask
	sequential := prev != 0 && prev>>headPageBits == packed>>headPageBits &&
		(pg == prevPage+1 || pg == prevPage)
	switch {
	case write && sequential:
		a.seqWrites.Add(1)
	case write:
		a.randWrites.Add(1)
	case sequential:
		a.seqReads.Add(1)
	default:
		a.randReads.Add(1)
	}
}

// snapshot returns the accumulated counters (cache fields zero: caching is
// a layer above the backend).
func (a *ioAccounting) snapshot() Stats {
	return Stats{
		SeqReads:   a.seqReads.Load(),
		RandReads:  a.randReads.Load(),
		SeqWrites:  a.seqWrites.Load(),
		RandWrites: a.randWrites.Load(),
	}
}

// reset zeroes the counters and parks the head, so a measurement window
// never inherits a sequential classification from activity it excludes.
func (a *ioAccounting) reset() {
	a.seqReads.Store(0)
	a.randReads.Store(0)
	a.seqWrites.Store(0)
	a.randWrites.Store(0)
	a.head.Store(0)
}
