package storage

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/series"
)

func TestCreateRemoveRename(t *testing.T) {
	d := NewDisk(0)
	if d.PageSize() != DefaultPageSize {
		t.Fatalf("page size = %d, want %d", d.PageSize(), DefaultPageSize)
	}
	if err := d.Create("a"); err != nil {
		t.Fatal(err)
	}
	if err := d.Create("a"); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if !d.Exists("a") || d.Exists("b") {
		t.Fatal("Exists wrong")
	}
	if err := d.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("a") || !d.Exists("b") {
		t.Fatal("rename did not move file")
	}
	if err := d.Rename("missing", "c"); err == nil {
		t.Fatal("rename of missing file should fail")
	}
	if err := d.Create("c"); err != nil {
		t.Fatal(err)
	}
	if err := d.Rename("b", "c"); err == nil {
		t.Fatal("rename onto existing file should fail")
	}
	if err := d.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("b"); err == nil {
		t.Fatal("double remove should fail")
	}
	files := d.Files()
	if len(files) != 1 || files[0] != "c" {
		t.Fatalf("Files = %v, want [c]", files)
	}
}

func TestReadWritePages(t *testing.T) {
	d := NewDisk(64)
	if err := d.Create("f"); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello")
	page, err := d.AppendPage("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if page != 0 {
		t.Fatalf("first page = %d, want 0", page)
	}
	buf := make([]byte, 64)
	if _, err := d.ReadPage("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf[:5], data) {
		t.Fatalf("read back %q, want %q", buf[:5], data)
	}
	// Overwrite in place.
	if err := d.WritePage("f", 0, []byte("world")); err != nil {
		t.Fatal(err)
	}
	d.ReadPage("f", 0, buf)
	if !bytes.Equal(buf[:5], []byte("world")) {
		t.Fatal("overwrite failed")
	}
	// Write one past end appends.
	if err := d.WritePage("f", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if n, _ := d.NumPages("f"); n != 2 {
		t.Fatalf("pages = %d, want 2", n)
	}
	// Out of range.
	if err := d.WritePage("f", 5, []byte("x")); err == nil {
		t.Fatal("gap write should fail")
	}
	if _, err := d.ReadPage("f", 9, buf); err == nil {
		t.Fatal("out-of-range read should fail")
	}
	if _, err := d.AppendPage("f", make([]byte, 65)); err == nil {
		t.Fatal("oversized append should fail")
	}
}

func TestSequentialVsRandomAccounting(t *testing.T) {
	d := NewDisk(64)
	d.Create("f")
	for i := 0; i < 10; i++ {
		d.AppendPage("f", []byte{byte(i)})
	}
	// 10 appends: the first moves the head (random), the rest follow it.
	st := d.Stats()
	if st.SeqWrites != 9 || st.RandWrites != 1 {
		t.Fatalf("append stats = %v, want 9 seq + 1 rand writes", st)
	}
	d.ResetStats()
	buf := make([]byte, 64)
	// Sequential scan: page 0 is random (last points at page 9), rest sequential.
	for i := int64(0); i < 10; i++ {
		d.ReadPage("f", i, buf)
	}
	st = d.Stats()
	if st.SeqReads != 9 || st.RandReads != 1 {
		t.Fatalf("scan stats = %v, want 9 seq + 1 rand", st)
	}
	d.ResetStats()
	// Random hops.
	for _, p := range []int64{5, 2, 8, 1} {
		d.ReadPage("f", p, buf)
	}
	st = d.Stats()
	if st.RandReads != 4 {
		t.Fatalf("random stats = %v, want 4 random reads", st)
	}
	// Re-reading the same page counts sequential (buffered); the hop to it
	// does not (the previous loop ended on page 1).
	d.ResetStats()
	d.ReadPage("f", 4, buf)
	d.ReadPage("f", 4, buf)
	st = d.Stats()
	if st.SeqReads != 1 || st.RandReads != 1 {
		t.Fatalf("repeat stats = %v", st)
	}
}

func TestStatsCostAndArithmetic(t *testing.T) {
	s := Stats{SeqReads: 10, RandReads: 2, SeqWrites: 5, RandWrites: 1}
	m := CostModel{SeqCost: 1, RandCost: 10}
	if got := s.Cost(m); got != 15+30 {
		t.Fatalf("cost = %v, want 45", got)
	}
	if s.Reads() != 12 || s.Writes() != 6 || s.Total() != 18 {
		t.Fatal("totals wrong")
	}
	diff := s.Sub(Stats{SeqReads: 1})
	if diff.SeqReads != 9 {
		t.Fatal("Sub wrong")
	}
	sum := s.Add(Stats{RandWrites: 2})
	if sum.RandWrites != 3 {
		t.Fatal("Add wrong")
	}
}

type traceRec struct {
	file  string
	page  int64
	write bool
}

type sliceTracer struct{ recs []traceRec }

func (t *sliceTracer) Access(file string, page int64, write bool) {
	t.recs = append(t.recs, traceRec{file, page, write})
}

func TestTracer(t *testing.T) {
	d := NewDisk(64)
	tr := &sliceTracer{}
	d.SetTracer(tr)
	d.Create("f")
	d.AppendPage("f", []byte("a"))
	buf := make([]byte, 64)
	d.ReadPage("f", 0, buf)
	if len(tr.recs) != 2 {
		t.Fatalf("traced %d accesses, want 2", len(tr.recs))
	}
	if !tr.recs[0].write || tr.recs[1].write {
		t.Fatal("trace write flags wrong")
	}
	d.SetTracer(nil)
	d.ReadPage("f", 0, buf)
	if len(tr.recs) != 2 {
		t.Fatal("tracer not removed")
	}
}

func TestRecordWriterReader(t *testing.T) {
	d := NewDisk(100) // 100/12 = 8 records per page
	const recSize = 12
	w, err := NewRecordWriter(d, "recs", recSize)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		rec := make([]byte, recSize)
		rec[0] = byte(i)
		rec[1] = byte(i >> 8)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != n {
		t.Fatalf("count = %d, want %d", w.Count(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(make([]byte, recSize)); err == nil {
		t.Fatal("write after close should fail")
	}
	r, err := NewRecordReader(d, "recs", recSize, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got := int(rec[0]) | int(rec[1])<<8; got != i {
			t.Fatalf("record %d holds %d", i, got)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
	if r.Remaining() != 0 {
		t.Fatal("Remaining should be 0")
	}
}

func TestRecordWriterWrongSize(t *testing.T) {
	d := NewDisk(64)
	w, err := NewRecordWriter(d, "f", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(make([]byte, 9)); err == nil {
		t.Fatal("wrong-size write should fail")
	}
	if _, err := NewRecordWriter(d, "g", 100); err == nil {
		t.Fatal("record larger than page should fail")
	}
}

func TestRecordReaderCountValidation(t *testing.T) {
	d := NewDisk(64)
	w, _ := NewRecordWriter(d, "f", 8)
	w.Write(make([]byte, 8))
	w.Close()
	if _, err := NewRecordReader(d, "f", 8, 100); err == nil {
		t.Fatal("reader over-count should fail")
	}
	if _, err := NewRecordReader(d, "missing", 8, 0); err == nil {
		t.Fatal("missing file should fail")
	}
}

func TestRecordFileRandomAccess(t *testing.T) {
	d := NewDisk(64) // 8 records of 8 bytes per page
	w, _ := NewRecordWriter(d, "f", 8)
	const n = 100
	for i := 0; i < n; i++ {
		rec := make([]byte, 8)
		rec[0] = byte(i)
		w.Write(rec)
	}
	w.Close()
	rf, err := OpenRecordFile(d, "f", 8)
	if err != nil {
		t.Fatal(err)
	}
	if rf.RecordsPerPage() != 8 {
		t.Fatalf("records per page = %d, want 8", rf.RecordsPerPage())
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		i := int64(rng.Intn(n))
		rec, err := rf.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if rec[0] != byte(i) {
			t.Fatalf("record %d holds %d", i, rec[0])
		}
	}
	if _, err := rf.Get(-1); err == nil {
		t.Fatal("negative index should fail")
	}
	// Same-page consecutive gets incur only one page read.
	d.ResetStats()
	rf.curPage = -1
	rf.Get(0)
	rf.Get(1)
	if got := d.Stats().Reads(); got != 1 {
		t.Fatalf("same-page gets cost %d reads, want 1", got)
	}
}

func TestRawFile(t *testing.T) {
	d := NewDisk(0)
	rf, err := CreateRawFile(d, "raw", 4)
	if err != nil {
		t.Fatal(err)
	}
	id0, err := rf.Append(series.Series{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	id1, _ := rf.Append(series.Series{5, 6, 7, 8})
	if id0 != 0 || id1 != 1 {
		t.Fatalf("ids = %d,%d", id0, id1)
	}
	if _, err := rf.Append(series.Series{1}); err == nil {
		t.Fatal("wrong length should fail")
	}
	if _, err := rf.Get(0); err == nil {
		t.Fatal("get before seal should fail")
	}
	if err := rf.Seal(); err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Append(series.Series{1, 1, 1, 1}); err == nil {
		t.Fatal("append after seal should fail")
	}
	s, err := rf.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 5 || s[3] != 8 {
		t.Fatalf("got %v", s)
	}
	if _, err := rf.Get(2); err == nil {
		t.Fatal("out-of-range get should fail")
	}
	if rf.Count() != 2 || rf.SeriesLen() != 4 {
		t.Fatal("count/len wrong")
	}
}

func TestConcurrentDiskAccess(t *testing.T) {
	d := NewDisk(64)
	d.Create("f")
	for i := 0; i < 100; i++ {
		d.AppendPage("f", []byte{byte(i)})
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]byte, 64)
			for i := 0; i < 1000; i++ {
				if _, err := d.ReadPage("f", int64(rng.Intn(100)), buf); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := d.Stats().Reads(); got != 8000 {
		t.Fatalf("reads = %d, want 8000", got)
	}
}

func TestPropertyRecordRoundTrip(t *testing.T) {
	f := func(recs [][16]byte) bool {
		d := NewDisk(128)
		w, err := NewRecordWriter(d, "f", 16)
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if err := w.Write(rec[:]); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r, err := NewRecordReader(d, "f", 16, int64(len(recs)))
		if err != nil {
			return false
		}
		for _, want := range recs {
			got, err := r.Next()
			if err != nil || !bytes.Equal(got, want[:]) {
				return false
			}
		}
		_, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	d := NewDisk(128)
	d.Create("a")
	d.AppendPage("a", []byte("hello"))
	d.Create("b")
	for i := 0; i < 5; i++ {
		d.AppendPage("b", []byte{byte(i)})
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDisk(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PageSize() != 128 {
		t.Fatalf("page size = %d", got.PageSize())
	}
	files := got.Files()
	if len(files) != 2 || files[0] != "a" || files[1] != "b" {
		t.Fatalf("files = %v", files)
	}
	page := make([]byte, 128)
	got.ReadPage("a", 0, page)
	if !bytes.Equal(page[:5], []byte("hello")) {
		t.Fatal("page content lost")
	}
	if n, _ := got.NumPages("b"); n != 5 {
		t.Fatalf("b pages = %d", n)
	}
	// Restored disk starts with zero stats (the read above counted 1).
	if got.Stats().Reads() != 1 {
		t.Fatalf("stats = %v", got.Stats())
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadDisk(bytes.NewReader([]byte("XXXXXXXX\x01\x00\x00\x00"))); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Short stream.
	if _, err := ReadDisk(bytes.NewReader([]byte("CCNUT"))); err == nil {
		t.Fatal("short stream should fail")
	}
	// Good header, truncated file table.
	d := NewDisk(64)
	d.Create("f")
	d.AppendPage("f", []byte("x"))
	var buf bytes.Buffer
	d.WriteTo(&buf)
	raw := buf.Bytes()
	if _, err := ReadDisk(bytes.NewReader(raw[:len(raw)-10])); err == nil {
		t.Fatal("truncated snapshot should fail")
	}
	// Implausible version.
	bad := append([]byte{}, raw...)
	bad[8] = 99
	if _, err := ReadDisk(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version should fail")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	d := NewDisk(64)
	d.Create("f")
	d.AppendPage("f", []byte("persisted"))
	path := t.TempDir() + "/disk.snap"
	if err := d.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDiskFile(path)
	if err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 64)
	got.ReadPage("f", 0, page)
	if !bytes.Equal(page[:9], []byte("persisted")) {
		t.Fatal("file snapshot content lost")
	}
	if _, err := LoadDiskFile(t.TempDir() + "/missing"); err == nil {
		t.Fatal("missing snapshot file should fail")
	}
}

func TestReadPagesAndAppendPages(t *testing.T) {
	d := NewDisk(64)
	d.Create("f")
	data := make([]byte, 64*3+10) // 3 full pages + partial
	for i := range data {
		data[i] = byte(i)
	}
	first, err := d.AppendPages("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if first != 0 {
		t.Fatalf("first page = %d", first)
	}
	if n, _ := d.NumPages("f"); n != 4 {
		t.Fatalf("pages = %d, want 4 (partial tail page)", n)
	}
	buf := make([]byte, 64*4)
	got, err := d.ReadPages("f", 0, 4, buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("read %d pages", got)
	}
	if !bytes.Equal(buf[:64*3], data[:64*3]) {
		t.Fatal("multi-page content mismatch")
	}
	// Clamp at EOF.
	got, err = d.ReadPages("f", 2, 10, make([]byte, 64*10))
	if err != nil || got != 2 {
		t.Fatalf("clamped read = %d, %v", got, err)
	}
	// Errors.
	if _, err := d.ReadPages("missing", 0, 1, buf); err == nil {
		t.Fatal("missing file should fail")
	}
	if _, err := d.ReadPages("f", 99, 1, buf); err == nil {
		t.Fatal("out-of-range start should fail")
	}
	if _, err := d.ReadPages("f", 0, 4, make([]byte, 10)); err == nil {
		t.Fatal("short buffer should fail")
	}
	if _, err := d.AppendPages("missing", data); err == nil {
		t.Fatal("append to missing file should fail")
	}
}

func TestRemoveResetsHead(t *testing.T) {
	// Removing the file under the head must not leave a dangling pointer:
	// the next access to a recreated file of the same name is random.
	d := NewDisk(64)
	d.Create("f")
	d.AppendPage("f", []byte("x"))
	d.Remove("f")
	d.Create("f")
	d.ResetStats()
	d.AppendPage("f", []byte("y"))
	if st := d.Stats(); st.RandWrites != 1 {
		t.Fatalf("stats after recreate = %v, want 1 random write", st)
	}
}

// TestResetStatsResetsHead is the regression test for the stale-head bug:
// ResetStats used to zero the counters but leave the packed head position
// (the per-file state behind sequential-vs-random classification), so the
// first access of a fresh measurement window could ride the previous
// window's head position and classify as sequential.
func TestResetStatsResetsHead(t *testing.T) {
	d := NewDisk(0)
	if err := d.Create("f"); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, d.PageSize())
	for i := 0; i < 3; i++ {
		if _, err := d.AppendPage("f", page); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, d.PageSize())
	if _, err := d.ReadPage("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	// Page 1 is adjacent to the pre-reset head; with a stale head it would
	// count as sequential. A reset window must charge it as random.
	if _, err := d.ReadPage("f", 1, buf); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.RandReads != 1 || st.SeqReads != 0 {
		t.Fatalf("first read after ResetStats classified seq=%d rand=%d, want rand=1 seq=0", st.SeqReads, st.RandReads)
	}
	// And the stream continues to classify normally afterwards.
	if _, err := d.ReadPage("f", 2, buf); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.SeqReads != 1 {
		t.Fatalf("second read should be sequential, got %v", st)
	}
}

// TestPinPageAccounting checks Disk.PinPage charges exactly like ReadPage
// and borrows stable snapshots across overwrites.
func TestPinPageAccounting(t *testing.T) {
	d := NewDisk(0)
	if err := d.Create("f"); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, d.PageSize())
	page[0] = 'a'
	for i := 0; i < 2; i++ {
		if _, err := d.AppendPage("f", page); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	h0, err := d.PinPage("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PinPage("f", 1); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.RandReads != 1 || st.SeqReads != 1 {
		t.Fatalf("pin accounting = %v, want 1 random + 1 sequential", st)
	}
	// Overwrite page 0: the pinned view keeps its snapshot.
	page[0] = 'b'
	if err := d.WritePage("f", 0, page); err != nil {
		t.Fatal(err)
	}
	if h0.Data()[0] != 'a' {
		t.Fatalf("pinned snapshot mutated: %q", h0.Data()[0])
	}
	h0.Release() // no-op on a disk pin
	if _, err := d.PinPage("f", 9); err == nil {
		t.Fatal("pin out of range succeeded")
	}
	if _, err := d.PinPage("missing", 0); err == nil {
		t.Fatal("pin of missing file succeeded")
	}
}
