package storage

import (
	"fmt"

	"repro/internal/series"
)

// RawFile stores the original data series on a Disk, addressed by series ID.
// Non-materialized indexes keep only (key, ID) pairs and fetch originals
// from a RawFile during search — each fetch costing (typically random) page
// I/O, which is exactly the space/time trade-off the paper describes.
type RawFile struct {
	rf     *RecordFile
	n      int   // series length
	count  int64 // number of series
	disk   Backend
	reader PageReader // read path; defaults to the disk (uncached)
	name   string
	writer *RecordWriter
}

// CreateRawFile creates a raw series file for series of length n and returns
// it ready for appending. Reads go straight to the disk; route them through
// a buffer pool with UseReader.
func CreateRawFile(d Backend, name string, n int) (*RawFile, error) {
	w, err := NewRecordWriter(d, name, series.Size(n))
	if err != nil {
		return nil, err
	}
	return &RawFile{n: n, disk: d, reader: d, name: name, writer: w}, nil
}

// UseReader routes subsequent raw-series reads through r (typically a
// buffer pool over the same disk). If the file is already sealed the
// record reader is reopened against r; otherwise r takes effect at Seal.
func (r *RawFile) UseReader(pr PageReader) error {
	if pr == nil {
		pr = r.disk
	}
	r.reader = pr
	if r.rf != nil {
		rf, err := OpenRecordFile(pr, r.name, series.Size(r.n))
		if err != nil {
			return err
		}
		r.rf = rf
	}
	return nil
}

// Append adds a series, returning its ID. It must not be called after Seal.
func (r *RawFile) Append(s series.Series) (int, error) {
	if r.writer == nil {
		return 0, fmt.Errorf("storage: raw file %q is sealed", r.name)
	}
	if len(s) != r.n {
		return 0, fmt.Errorf("storage: series length %d, want %d", len(s), r.n)
	}
	id := int(r.count)
	if err := r.writer.Write(s.AppendBinary(make([]byte, 0, series.Size(r.n)))); err != nil {
		return 0, err
	}
	r.count++
	return id, nil
}

// Seal flushes pending writes and switches the file to read mode.
func (r *RawFile) Seal() error {
	if r.writer == nil {
		return nil
	}
	if err := r.writer.Close(); err != nil {
		return err
	}
	r.writer = nil
	rf, err := OpenRecordFile(r.reader, r.name, series.Size(r.n))
	if err != nil {
		return err
	}
	r.rf = rf
	return nil
}

// Get fetches the series with the given ID (read mode only). It is safe
// for concurrent calls; decoding happens under the record cache's lock, so
// each fetch allocates only the returned series.
func (r *RawFile) Get(id int) (series.Series, error) {
	if r.rf == nil {
		return nil, fmt.Errorf("storage: raw file %q not sealed for reading", r.name)
	}
	if id < 0 || int64(id) >= r.count {
		return nil, fmt.Errorf("%w: series %d of %d", ErrOutOfRange, id, r.count)
	}
	var s series.Series
	err := r.rf.View(int64(id), func(rec []byte) error {
		var err error
		s, err = series.DecodeBinary(rec, r.n)
		return err
	})
	return s, err
}

// GetInto fetches the series with the given ID into dst, which must have
// the file's series length. Decoding happens under the record cache's lock
// straight into dst, so a fetch allocates nothing — the hot verification
// path of non-materialized exact search with per-worker scratch buffers.
func (r *RawFile) GetInto(id int, dst series.Series) (series.Series, error) {
	if r.rf == nil {
		return nil, fmt.Errorf("storage: raw file %q not sealed for reading", r.name)
	}
	if id < 0 || int64(id) >= r.count {
		return nil, fmt.Errorf("%w: series %d of %d", ErrOutOfRange, id, r.count)
	}
	if len(dst) != r.n {
		return nil, fmt.Errorf("storage: GetInto buffer length %d, want %d", len(dst), r.n)
	}
	err := r.rf.View(int64(id), func(rec []byte) error {
		_, err := series.DecodeBinaryInto(rec, dst)
		return err
	})
	if err != nil {
		return nil, err
	}
	return dst, nil
}

// Count returns the number of series stored.
func (r *RawFile) Count() int { return int(r.count) }

// SeriesLen returns the length of each stored series.
func (r *RawFile) SeriesLen() int { return r.n }

var (
	_ series.RawStore   = (*RawFile)(nil)
	_ series.IntoGetter = (*RawFile)(nil)
)
