package storage

import (
	"io"

	"repro/internal/fsx"
)

// Backend is the full storage surface an index builds on: the PageReader
// read side plus the write API, file namespace operations, accounting
// hooks, and snapshot/durability entry points. Two implementations exist:
//
//   - *Disk — the simulated in-memory page disk, the paper-faithful
//     cost-accounting mode. Durability calls are no-ops; persistence goes
//     through explicit snapshots (SaveFile).
//   - *FileDisk — real page-aligned files on the host filesystem via
//     positioned reads and writes, with fsync discipline (Sync flushes
//     file data and the directory entries).
//
// Both run the same accounting core (accounting.go), so an identical
// access sequence produces identical Stats on either backend.
type Backend interface {
	PageReader
	StatsProvider

	// Namespace operations.
	Create(name string) error
	Remove(name string) error
	Rename(oldName, newName string) error
	Files() []string
	TotalPages() int64

	// Write API. WritePage overwrites (or appends at page == NumPages);
	// AppendPage adds one page; AppendPages streams len(data)/PageSize
	// pages plus a trailing partial page, returning the first new page
	// number.
	WritePage(name string, page int64, data []byte) error
	AppendPage(name string, data []byte) (int64, error)
	AppendPages(name string, data []byte) (int64, error)

	// Accounting hooks.
	SetTracer(t Tracer)
	AddInvalidator(inv Invalidator)
	ResetStats()

	// Snapshot: serialize every file into the portable snapshot format
	// (see snapshot.go) / write it durably to a host path. SaveFileFS is
	// SaveFile against an injectable filesystem (crash tests).
	WriteTo(w io.Writer) (int64, error)
	SaveFile(path string) error
	SaveFileFS(fsys fsx.FS, path string) error

	// Durability. Sync flushes everything to stable storage (a no-op on
	// the simulated disk); Close syncs and releases host resources. After
	// Close only Close may be called again.
	Sync() error
	Close() error

	// Kind names the backend ("sim" or "file") for stats and logs.
	Kind() string
}

// Compile-time interface checks.
var (
	_ Backend = (*Disk)(nil)
	_ Backend = (*FileDisk)(nil)
)

// Sync is a no-op: the simulated disk has no host state to flush.
func (d *Disk) Sync() error { return nil }

// Close is a no-op: the simulated disk holds no host resources.
func (d *Disk) Close() error { return nil }

// Kind identifies the simulated backend.
func (d *Disk) Kind() string { return "sim" }
