package storage

import (
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fsx"
)

// fileDiskSuffix marks the host files a FileDisk owns inside its directory;
// the base name is the URL-path-escaped logical file name, so any logical
// name round-trips through one flat host directory.
const fileDiskSuffix = ".cpg"

// FileDiskOptions configures a file-backed page store.
type FileDiskOptions struct {
	// Dir is the host directory holding the page files (created if
	// missing). One FileDisk owns one directory.
	Dir string
	// PageSize is the page size in bytes (0 means DefaultPageSize). When
	// the directory already holds page files, it must match the size they
	// were written with.
	PageSize int
	// FS overrides the host filesystem; nil means the real one. Crash and
	// fault-injection tests inject fsx.MemFS here.
	FS fsx.FS
}

// FileDisk is the file-backed storage backend: every logical file is one
// page-aligned host file, reads are positioned reads (pread), writes are
// positioned writes (pwrite) of whole pages. It implements the same
// Backend surface as the simulated Disk — same accounting core, same
// invalidation hooks, same snapshot format — so the two are swappable
// under every index.
//
// Durability discipline: namespace operations (Create, Remove, Rename)
// fsync the parent directory before returning, so dirents are never lost;
// page writes land in the kernel page cache and reach stable storage on
// Sync (which fsyncs every dirty file) or Close. Rename additionally
// fsyncs the source file first, so a renamed file is never incomplete.
//
// Concurrency matches Disk: reads share a read-lock (pread is
// position-independent, so concurrent probes don't interfere), mutations
// are exclusive. PinPage copies — a real file has no stable in-memory
// bytes to borrow — and returns a handle with a no-op release.
type FileDisk struct {
	dir      string
	pageSize int
	fs       fsx.FS

	mu         sync.RWMutex
	files      map[string]*hostFile
	nextFileID uint32
	tracer     Tracer
	invs       []Invalidator
	closed     bool

	acct ioAccounting
}

// hostFile is one logical file backed by one host file.
type hostFile struct {
	id    uint32 // immutable identity for head tracking; never reused
	name  string
	f     fsx.File
	pages int64
	dirty bool // has writes not yet fsynced
}

// NewFileDisk opens (or creates) a file-backed page store rooted at
// opts.Dir. Page files already present in the directory are adopted, which
// is how the store recovers after a crash or restart; a torn trailing
// partial page (from a crash mid-append) is discarded.
func NewFileDisk(opts FileDiskOptions) (*FileDisk, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("storage: FileDisk requires a directory")
	}
	pageSize := opts.PageSize
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	fsys := fsx.OrOS(opts.FS)
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	d := &FileDisk{
		dir:      opts.Dir,
		pageSize: pageSize,
		fs:       fsys,
		files:    make(map[string]*hostFile),
	}
	entries, err := fsys.ReadDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), fileDiskSuffix) {
			continue
		}
		name, uerr := url.PathUnescape(strings.TrimSuffix(e.Name(), fileDiskSuffix))
		if uerr != nil {
			return nil, fmt.Errorf("storage: undecodable page file %q: %w", e.Name(), uerr)
		}
		path := filepath.Join(opts.Dir, e.Name())
		info, serr := fsys.Stat(path)
		if serr != nil {
			return nil, serr
		}
		h, oerr := fsys.OpenFile(path, os.O_RDWR, 0o644)
		if oerr != nil {
			return nil, oerr
		}
		pages := info.Size() / int64(pageSize)
		if info.Size()%int64(pageSize) != 0 {
			// Crash mid-append: drop the torn partial page.
			if terr := h.Truncate(pages * int64(pageSize)); terr != nil {
				h.Close()
				return nil, terr
			}
		}
		d.files[name] = &hostFile{id: d.nextFileID, name: name, f: h, pages: pages}
		d.nextFileID++
	}
	return d, nil
}

// hostPath returns the host path backing a logical file name.
func (d *FileDisk) hostPath(name string) string {
	return filepath.Join(d.dir, url.PathEscape(name)+fileDiskSuffix)
}

// Dir returns the host directory the store lives in.
func (d *FileDisk) Dir() string { return d.dir }

// Kind identifies the file-backed backend.
func (d *FileDisk) Kind() string { return "file" }

// PageSize returns the page size in bytes.
func (d *FileDisk) PageSize() int { return d.pageSize }

// SetTracer installs (or removes, if nil) an access tracer.
func (d *FileDisk) SetTracer(t Tracer) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracer = t
}

// Stats returns a snapshot of the accumulated I/O statistics.
func (d *FileDisk) Stats() Stats { return d.acct.snapshot() }

// ResetStats zeroes the I/O statistics and parks the head (see
// Disk.ResetStats for why the head must reset with the counters).
func (d *FileDisk) ResetStats() { d.acct.reset() }

// AddInvalidator registers a cache invalidation hook, as on Disk.
func (d *FileDisk) AddInvalidator(inv Invalidator) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.invs = append(d.invs, inv)
}

// account classifies one page access; call with d.mu held.
func (d *FileDisk) account(f *hostFile, page int64, write bool) {
	d.acct.account(f.id, page, write)
	if d.tracer != nil {
		d.tracer.Access(f.name, page, write)
	}
}

// Create creates an empty file and makes its directory entry durable. It
// fails if the name already exists.
func (d *FileDisk) Create(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	h, err := d.fs.OpenFile(d.hostPath(name), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		h.Close()
		d.fs.Remove(d.hostPath(name))
		return err
	}
	d.files[name] = &hostFile{id: d.nextFileID, name: name, f: h}
	d.nextFileID++
	return nil
}

// Remove deletes a file, host file included, and makes the removal
// durable. Registered caches drop the file's pages.
func (d *FileDisk) Remove(name string) error {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	f.f.Close()
	if err := d.fs.Remove(d.hostPath(name)); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		d.mu.Unlock()
		return err
	}
	delete(d.files, name)
	invs := d.invs
	d.mu.Unlock()
	notifyFile(invs, name)
	return nil
}

// Rename renames a file, failing if the target exists. The source file's
// data is fsynced first and the rename is made durable, so the new name
// never refers to an incomplete file. Registered caches drop the pages
// keyed under the old name.
func (d *FileDisk) Rename(oldName, newName string) error {
	d.mu.Lock()
	f, ok := d.files[oldName]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, oldName)
	}
	if _, ok := d.files[newName]; ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, newName)
	}
	if f.dirty {
		if err := f.f.Sync(); err != nil {
			d.mu.Unlock()
			return err
		}
		f.dirty = false
	}
	if err := d.fs.Rename(d.hostPath(oldName), d.hostPath(newName)); err != nil {
		d.mu.Unlock()
		return err
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		d.mu.Unlock()
		return err
	}
	delete(d.files, oldName)
	f.name = newName
	d.files[newName] = f
	invs := d.invs
	d.mu.Unlock()
	notifyFile(invs, oldName)
	return nil
}

// Exists reports whether a file exists.
func (d *FileDisk) Exists(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.files[name]
	return ok
}

// Files returns the names of all files, sorted.
func (d *FileDisk) Files() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.files))
	for name := range d.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NumPages returns the number of pages in a file.
func (d *FileDisk) NumPages(name string) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return f.pages, nil
}

// TotalPages returns the number of pages across all files.
func (d *FileDisk) TotalPages() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, f := range d.files {
		n += f.pages
	}
	return n
}

// readPageAt preads one full page into dst; call with d.mu held (shared
// or exclusive).
func (d *FileDisk) readPageAt(f *hostFile, page int64, dst []byte) (int, error) {
	n, err := f.f.ReadAt(dst, page*int64(d.pageSize))
	if err == io.EOF && n == len(dst) {
		err = nil
	}
	if err != nil {
		return n, fmt.Errorf("storage: reading %q page %d: %w", f.name, page, err)
	}
	return n, nil
}

// ReadPage reads one page into buf (at least PageSize bytes; shorter
// buffers read a prefix, as on Disk), returning the bytes copied.
func (d *FileDisk) ReadPage(name string, page int64, buf []byte) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page >= f.pages {
		return 0, fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, f.pages)
	}
	d.account(f, page, false)
	dst := buf
	if len(dst) > d.pageSize {
		dst = dst[:d.pageSize]
	}
	return d.readPageAt(f, page, dst)
}

// PinPage reads one page into a freshly allocated buffer and hands it out
// as a handle with a no-op release. Unlike the simulated disk there are no
// stable in-memory page bytes to borrow — the host file is overwritten in
// place — so pinning on the file backend always copies; front the disk
// with a buffer pool to get true pinned frames.
func (d *FileDisk) PinPage(name string, page int64) (PageHandle, error) {
	buf := make([]byte, d.pageSize)
	if _, err := d.ReadPage(name, page, buf); err != nil {
		return PageHandle{}, err
	}
	return PageHandle{data: buf}, nil
}

// WritePage overwrites one page in place (pwrite of a full zero-padded
// page). Writing exactly one page past the end appends. Registered caches
// drop their copy of the page.
func (d *FileDisk) WritePage(name string, page int64, data []byte) error {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page > f.pages {
		d.mu.Unlock()
		return fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, f.pages)
	}
	if len(data) > d.pageSize {
		d.mu.Unlock()
		return fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize)
	}
	p := make([]byte, d.pageSize)
	copy(p, data)
	if _, err := f.f.WriteAt(p, page*int64(d.pageSize)); err != nil {
		d.mu.Unlock()
		return err
	}
	d.account(f, page, true)
	f.dirty = true
	var invs []Invalidator
	if page == f.pages {
		f.pages++ // append: the page cannot be cached yet
	} else {
		invs = d.invs
	}
	d.mu.Unlock()
	notifyPage(invs, name, page)
	return nil
}

// AppendPage appends one page, returning its page number.
func (d *FileDisk) AppendPage(name string, data []byte) (int64, error) {
	d.mu.Lock()
	f, ok := d.files[name]
	if !ok {
		d.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if len(data) > d.pageSize {
		d.mu.Unlock()
		return 0, fmt.Errorf("storage: write of %d bytes exceeds page size %d", len(data), d.pageSize)
	}
	page := f.pages
	p := make([]byte, d.pageSize)
	copy(p, data)
	if _, err := f.f.WriteAt(p, page*int64(d.pageSize)); err != nil {
		d.mu.Unlock()
		return 0, err
	}
	d.account(f, page, true)
	f.pages++
	f.dirty = true
	d.mu.Unlock()
	return page, nil
}

// AppendPages appends len(data)/PageSize full pages plus any trailing
// partial page in one positioned write, returning the first new page
// number. One head movement plus sequential transfers, exactly as on Disk.
func (d *FileDisk) AppendPages(name string, data []byte) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	first := f.pages
	if len(data) == 0 {
		return first, nil
	}
	n := int64((len(data) + d.pageSize - 1) / d.pageSize)
	padded := make([]byte, n*int64(d.pageSize))
	copy(padded, data)
	if _, err := f.f.WriteAt(padded, first*int64(d.pageSize)); err != nil {
		return 0, err
	}
	for i := int64(0); i < n; i++ {
		d.account(f, first+i, true)
	}
	f.pages += n
	f.dirty = true
	// No invalidation: appended page numbers cannot be cached.
	return first, nil
}

// ReadPages reads up to n consecutive pages starting at page into buf
// (which must hold n*PageSize bytes), returning how many pages were read
// (clamped at end of file). One pread; accounted as one head movement plus
// sequential transfers.
func (d *FileDisk) ReadPages(name string, page int64, n int, buf []byte) (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if page < 0 || page >= f.pages {
		return 0, fmt.Errorf("%w: %q page %d of %d", ErrOutOfRange, name, page, f.pages)
	}
	if len(buf) < n*d.pageSize {
		return 0, fmt.Errorf("storage: buffer %d bytes for %d pages of %d", len(buf), n, d.pageSize)
	}
	got := n
	if max := f.pages - page; int64(got) > max {
		got = int(max)
	}
	if got == 0 {
		return 0, nil
	}
	if _, err := f.f.ReadAt(buf[:got*d.pageSize], page*int64(d.pageSize)); err != nil && err != io.EOF {
		return 0, fmt.Errorf("storage: reading %q pages [%d,%d): %w", name, page, page+int64(got), err)
	}
	for i := 0; i < got; i++ {
		d.account(f, page+int64(i), false)
	}
	return got, nil
}

// Sync fsyncs every file with unflushed writes and then the directory.
// After Sync returns, all pages written so far survive a crash.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncLocked()
}

func (d *FileDisk) syncLocked() error {
	names := make([]string, 0, len(d.files))
	for name, f := range d.files {
		if f.dirty {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f := d.files[name]
		if err := f.f.Sync(); err != nil {
			return err
		}
		f.dirty = false
	}
	return d.fs.SyncDir(d.dir)
}

// Close syncs everything and closes the host files. Idempotent; after
// Close every other method fails.
func (d *FileDisk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	err := d.syncLocked()
	for _, f := range d.files {
		if cerr := f.f.Close(); err == nil {
			err = cerr
		}
	}
	d.closed = true
	return err
}

// WriteTo serializes the store's full contents in the snapshot format
// (identical to Disk.WriteTo output for identical contents). Snapshot
// reads bypass the I/O accounting.
func (d *FileDisk) WriteTo(w io.Writer) (int64, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.files))
	for name := range d.files {
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]snapshotFile, 0, len(names))
	for _, name := range names {
		f := d.files[name]
		files = append(files, snapshotFile{
			name:  name,
			pages: f.pages,
			read: func(page int64, buf []byte) error {
				_, err := d.readPageAt(f, page, buf[:d.pageSize])
				return err
			},
		})
	}
	return writeSnapshot(w, d.pageSize, files)
}

// SaveFile writes a durable snapshot of the store (see Disk.SaveFile for
// the crash guarantees) through the store's own filesystem.
func (d *FileDisk) SaveFile(path string) error { return saveSnapshot(d.fs, path, d) }

// SaveFileFS is SaveFile against an explicit filesystem.
func (d *FileDisk) SaveFileFS(fsys fsx.FS, path string) error { return saveSnapshot(fsys, path, d) }
