package storage

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fsx"
)

// opLog applies one write-path operation to a backend; the fuzz-style
// equivalence driver below runs the same script against both backends.
type backendOp func(b Backend) error

// runScript drives a deterministic mixed workload (creates, appends,
// overwrites, renames, removes) against a backend.
func backendScript(pageSize int) []backendOp {
	payload := func(i int) []byte {
		p := make([]byte, pageSize)
		for j := range p {
			p[j] = byte(i*31 + j)
		}
		return p
	}
	var ops []backendOp
	add := func(op backendOp) { ops = append(ops, op) }
	add(func(b Backend) error { return b.Create("alpha") })
	add(func(b Backend) error { return b.Create("beta/with slash?") })
	for i := 0; i < 5; i++ {
		i := i
		add(func(b Backend) error { _, err := b.AppendPage("alpha", payload(i)); return err })
	}
	add(func(b Backend) error {
		var bulk []byte
		for i := 5; i < 9; i++ {
			bulk = append(bulk, payload(i)...)
		}
		bulk = append(bulk, []byte("partial tail")...)
		_, err := b.AppendPages("beta/with slash?", bulk)
		return err
	})
	add(func(b Backend) error { return b.WritePage("alpha", 2, payload(99)) })
	add(func(b Backend) error { return b.WritePage("alpha", 5, payload(55)) }) // append via WritePage
	add(func(b Backend) error { return b.Create("doomed") })
	add(func(b Backend) error { _, err := b.AppendPage("doomed", payload(7)); return err })
	add(func(b Backend) error { return b.Remove("doomed") })
	add(func(b Backend) error { return b.Rename("beta/with slash?", "gamma") })
	return ops
}

// TestFileDiskMatchesSimDisk runs the same workload on the simulated disk
// and the file backend and demands identical namespaces, page bytes, read
// results, and I/O accounting.
func TestFileDiskMatchesSimDisk(t *testing.T) {
	const pageSize = 128
	sim := NewDisk(pageSize)
	fd, err := NewFileDisk(FileDiskOptions{Dir: t.TempDir(), PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer fd.Close()

	for i, op := range backendScript(pageSize) {
		errSim, errFile := op(sim), op(Backend(fd))
		if (errSim == nil) != (errFile == nil) {
			t.Fatalf("op %d: sim err=%v, file err=%v", i, errSim, errFile)
		}
	}

	if simFiles, fdFiles := fmt.Sprint(sim.Files()), fmt.Sprint(fd.Files()); simFiles != fdFiles {
		t.Fatalf("namespaces differ: sim=%v file=%v", simFiles, fdFiles)
	}
	if sim.TotalPages() != fd.TotalPages() {
		t.Fatalf("total pages: sim=%d file=%d", sim.TotalPages(), fd.TotalPages())
	}
	for _, name := range sim.Files() {
		np, _ := sim.NumPages(name)
		fp, _ := fd.NumPages(name)
		if np != fp {
			t.Fatalf("%q: sim pages=%d file pages=%d", name, np, fp)
		}
		bufS, bufF := make([]byte, pageSize), make([]byte, pageSize)
		for p := int64(0); p < np; p++ {
			if _, err := sim.ReadPage(name, p, bufS); err != nil {
				t.Fatal(err)
			}
			if _, err := fd.ReadPage(name, p, bufF); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bufS, bufF) {
				t.Fatalf("%q page %d differs", name, p)
			}
			hS, err := sim.PinPage(name, p)
			if err != nil {
				t.Fatal(err)
			}
			hF, err := fd.PinPage(name, p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(hS.Data(), hF.Data()) {
				t.Fatalf("%q pinned page %d differs", name, p)
			}
			hS.Release()
			hF.Release()
		}
		// Bulk reads agree too (including the end-of-file clamp).
		big := int(np) + 3
		bulkS, bulkF := make([]byte, big*pageSize), make([]byte, big*pageSize)
		gotS, err := sim.ReadPages(name, 0, big, bulkS)
		if err != nil {
			t.Fatal(err)
		}
		gotF, err := fd.ReadPages(name, 0, big, bulkF)
		if err != nil {
			t.Fatal(err)
		}
		if gotS != gotF || !bytes.Equal(bulkS[:gotS*pageSize], bulkF[:gotF*pageSize]) {
			t.Fatalf("%q bulk read differs: %d vs %d pages", name, gotS, gotF)
		}
	}
	// Same ops, same classifier: the accounting must agree exactly.
	if sim.Stats() != fd.Stats() {
		t.Fatalf("stats differ:\n sim=%v\nfile=%v", sim.Stats(), fd.Stats())
	}
	// And the snapshot serializations must be byte-identical.
	var snapS, snapF bytes.Buffer
	if _, err := sim.WriteTo(&snapS); err != nil {
		t.Fatal(err)
	}
	if _, err := fd.WriteTo(&snapF); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapS.Bytes(), snapF.Bytes()) {
		t.Fatal("snapshot bytes differ between backends")
	}
}

// TestFileDiskReopen closes a store and reopens the directory: contents
// must be intact, including names that needed host-filename escaping.
func TestFileDiskReopen(t *testing.T) {
	dir := t.TempDir()
	fd, err := NewFileDisk(FileDiskOptions{Dir: dir, PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.Create("runs/level-0?x=1"); err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 64)
	if _, err := fd.AppendPage("runs/level-0?x=1", want); err != nil {
		t.Fatal(err)
	}
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}

	fd2, err := NewFileDisk(FileDiskOptions{Dir: dir, PageSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer fd2.Close()
	got := make([]byte, 64)
	if _, err := fd2.ReadPage("runs/level-0?x=1", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("page contents lost across reopen")
	}
}

// TestFileDiskCrashRecovery drives the store on the crash-simulating
// filesystem: after Sync everything survives a crash; a torn trailing
// page from an unsynced append is discarded on reopen.
func TestFileDiskCrashRecovery(t *testing.T) {
	mem := fsx.NewMemFS()
	const pageSize = 32
	fd, err := NewFileDisk(FileDiskOptions{Dir: "store", PageSize: pageSize, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.Create("data"); err != nil {
		t.Fatal(err)
	}
	durable := bytes.Repeat([]byte{1}, pageSize)
	if _, err := fd.AppendPage("data", durable); err != nil {
		t.Fatal(err)
	}
	if err := fd.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced writes after the sync point: lost on crash, and that's fine.
	if _, err := fd.AppendPage("data", bytes.Repeat([]byte{2}, pageSize)); err != nil {
		t.Fatal(err)
	}

	mem.Crash()
	fd2, err := NewFileDisk(FileDiskOptions{Dir: "store", PageSize: pageSize, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	np, err := fd2.NumPages("data")
	if err != nil {
		t.Fatalf("synced file lost in crash: %v", err)
	}
	if np != 1 {
		t.Fatalf("pages after crash = %d, want the 1 synced page", np)
	}
	got := make([]byte, pageSize)
	if _, err := fd2.ReadPage("data", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, durable) {
		t.Fatal("synced page corrupted by crash")
	}
}

// TestFileDiskFaultInjection: a failed page write surfaces the error and a
// store on a failing filesystem degrades with errors, not corruption.
func TestFileDiskFaultInjection(t *testing.T) {
	mem := fsx.NewMemFS()
	fd, err := NewFileDisk(FileDiskOptions{Dir: "store", PageSize: 32, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	if err := fd.Create("data"); err != nil {
		t.Fatal(err)
	}
	mem.FailAfter(0, nil)
	if _, err := fd.AppendPage("data", make([]byte, 32)); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("append on failing fs: err=%v, want injected fault", err)
	}
	if err := fd.Sync(); !errors.Is(err, fsx.ErrInjected) {
		t.Fatalf("sync on failing fs: err=%v, want injected fault", err)
	}
	mem.SetFaultHook(nil)
	// The failed append must not have claimed a page.
	if np, _ := fd.NumPages("data"); np != 0 {
		t.Fatalf("failed append left %d pages", np)
	}
}

// TestHeadPackingWideFiles is the regression test for the 32-bit page
// packing bug: page 2³² of the same file used to alias page 0, so the
// access classified as a sequential repeat. With 40-bit page packing it
// classifies as random.
func TestHeadPackingWideFiles(t *testing.T) {
	var a ioAccounting
	a.account(3, 0, false)       // park the head at (file 3, page 0)
	a.account(3, 1<<32, false)   // page 2³² — far away, must be random
	a.account(3, 1<<32+1, false) // the next page — sequential
	s := a.snapshot()
	if s.RandReads != 2 || s.SeqReads != 1 {
		t.Fatalf("stats = %+v, want 2 random (park + 2³² jump) and 1 sequential", s)
	}

	// Distinct files far apart in id space never alias either.
	var b ioAccounting
	b.account(0, 5, false)
	b.account(1, 6, false) // different file, "next" page number: random
	if s := b.snapshot(); s.RandReads != 2 {
		t.Fatalf("cross-file stats = %+v, want 2 random", s)
	}
}

// TestSnapshotAtomicSave: a crash right after SaveFile keeps the complete
// snapshot; a crash mid-save keeps the previous one. This is the storage
// half of the checkpoint-ordering fix.
func TestSnapshotAtomicSave(t *testing.T) {
	mem := fsx.NewMemFS()
	mem.MkdirAll("snaps", 0o755)

	mk := func(tag byte) *Disk {
		d := NewDisk(32)
		if err := d.Create("f"); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AppendPage("f", bytes.Repeat([]byte{tag}, 32)); err != nil {
			t.Fatal(err)
		}
		return d
	}
	readTag := func() byte {
		t.Helper()
		d, err := LoadDiskFileFS(mem, "snaps/idx")
		if err != nil {
			t.Fatalf("snapshot unreadable: %v", err)
		}
		buf := make([]byte, 32)
		if _, err := d.ReadPage("f", 0, buf); err != nil {
			t.Fatal(err)
		}
		return buf[0]
	}

	if err := mk(1).SaveFileFS(mem, "snaps/idx"); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	if got := readTag(); got != 1 {
		t.Fatalf("snapshot after clean save+crash has tag %d, want 1", got)
	}

	// Now fail the save at every possible fault point: the surviving
	// snapshot must always be the complete v1 or the complete v2.
	for fail := int64(0); ; fail++ {
		mem.FailAfter(fail, nil)
		err := mk(2).SaveFileFS(mem, "snaps/idx")
		mem.SetFaultHook(nil)
		mem.Crash()
		if got := readTag(); got != 1 && got != 2 {
			t.Fatalf("fail=%d: snapshot has tag %d, want complete 1 or 2", fail, got)
		}
		if err == nil {
			if got := readTag(); got != 2 {
				t.Fatalf("fail=%d: save succeeded but snapshot has tag %d", fail, got)
			}
			break
		}
	}
}
