package storage

import (
	"fmt"
	"io"
	"sync"
)

// DefaultBufferPages is the read-ahead / write-behind chunk size (in pages)
// used by record streams unless configured otherwise. Streaming through a
// chunk costs one head movement and then sequential transfers, which is how
// external sorting and log-structured writes earn their sequential I/O
// profile.
const DefaultBufferPages = 16

// RecordWriter appends fixed-size records to a file, packing as many whole
// records per page as fit (records never span pages, as in slotted pages).
// Completed pages accumulate in a write-behind chunk flushed with a single
// multi-page append. Close flushes the final partial page.
type RecordWriter struct {
	disk     Backend
	name     string
	recSize  int
	perPage  int
	bufPages int
	page     []byte // current page being assembled
	n        int    // records in current page
	chunk    []byte // completed pages awaiting append
	total    int64  // records written in total
	closed   bool
}

// NewRecordWriter creates the file (which must not exist) and returns a
// writer of recSize-byte records with the default write-behind buffer.
func NewRecordWriter(d Backend, name string, recSize int) (*RecordWriter, error) {
	return NewRecordWriterBuffered(d, name, recSize, DefaultBufferPages)
}

// NewRecordWriterBuffered is NewRecordWriter with an explicit write-behind
// buffer of bufPages pages (min 1).
func NewRecordWriterBuffered(d Backend, name string, recSize, bufPages int) (*RecordWriter, error) {
	perPage := d.PageSize() / recSize
	if perPage < 1 {
		return nil, fmt.Errorf("storage: record size %d exceeds page size %d", recSize, d.PageSize())
	}
	if bufPages < 1 {
		bufPages = 1
	}
	if err := d.Create(name); err != nil {
		return nil, err
	}
	return &RecordWriter{
		disk:     d,
		name:     name,
		recSize:  recSize,
		perPage:  perPage,
		bufPages: bufPages,
		page:     make([]byte, d.PageSize()),
		chunk:    make([]byte, 0, bufPages*d.PageSize()),
	}, nil
}

// Write appends one record, which must be exactly recSize bytes.
func (w *RecordWriter) Write(rec []byte) error {
	if w.closed {
		return fmt.Errorf("storage: write to closed writer %q", w.name)
	}
	if len(rec) != w.recSize {
		return fmt.Errorf("storage: record size %d, want %d", len(rec), w.recSize)
	}
	copy(w.page[w.n*w.recSize:], rec)
	w.n++
	w.total++
	if w.n == w.perPage {
		w.chunk = append(w.chunk, w.page...)
		w.n = 0
		if len(w.chunk) >= w.bufPages*w.disk.PageSize() {
			return w.flushChunk()
		}
	}
	return nil
}

func (w *RecordWriter) flushChunk() error {
	if len(w.chunk) == 0 {
		return nil
	}
	if _, err := w.disk.AppendPages(w.name, w.chunk); err != nil {
		return err
	}
	w.chunk = w.chunk[:0]
	return nil
}

// Count returns the number of records written so far.
func (w *RecordWriter) Count() int64 { return w.total }

// Close flushes buffered pages, including a final partial page. The record
// count must then be tracked by the caller (files carry no header).
func (w *RecordWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.n > 0 {
		w.chunk = append(w.chunk, w.page[:w.n*w.recSize]...)
		w.n = 0
	}
	return w.flushChunk()
}

// RecordReader scans fixed-size records from a file sequentially with
// read-ahead. The caller supplies the total record count (files carry no
// header).
type RecordReader struct {
	reader   PageReader
	name     string
	recSize  int
	perPage  int
	bufPages int
	chunk    []byte // read-ahead buffer
	chunkN   int    // pages currently in chunk
	pageIdx  int    // page within chunk holding the next record
	idx      int    // record within current page
	nextPage int64  // next file page to fetch
	npages   int64
	read     int64 // records returned so far
	count    int64 // total records in file
}

// NewRecordReader opens a sequential reader over count records of recSize
// bytes in the named file, with the default read-ahead. Reads go through r,
// so a *Disk scans uncached while a buffer pool serves repeat scans from
// memory.
func NewRecordReader(r PageReader, name string, recSize int, count int64) (*RecordReader, error) {
	return NewRecordReaderBuffered(r, name, recSize, count, DefaultBufferPages)
}

// NewRecordReaderBuffered is NewRecordReader with an explicit read-ahead of
// bufPages pages (min 1).
func NewRecordReaderBuffered(r PageReader, name string, recSize int, count int64, bufPages int) (*RecordReader, error) {
	perPage := r.PageSize() / recSize
	if perPage < 1 {
		return nil, fmt.Errorf("storage: record size %d exceeds page size %d", recSize, r.PageSize())
	}
	if bufPages < 1 {
		bufPages = 1
	}
	npages, err := r.NumPages(name)
	if err != nil {
		return nil, err
	}
	need := (count + int64(perPage) - 1) / int64(perPage)
	if npages < need {
		return nil, fmt.Errorf("storage: file %q has %d pages, need %d for %d records", name, npages, need, count)
	}
	return &RecordReader{
		reader:   r,
		name:     name,
		recSize:  recSize,
		perPage:  perPage,
		bufPages: bufPages,
		chunk:    make([]byte, bufPages*r.PageSize()),
		npages:   npages,
		count:    count,
	}, nil
}

// Next returns the next record, or io.EOF when exhausted. The returned slice
// aliases an internal buffer valid until the next call.
func (r *RecordReader) Next() ([]byte, error) {
	if r.read >= r.count {
		return nil, io.EOF
	}
	if r.idx >= r.perPage {
		// Current page exhausted: move within the chunk or refill.
		if r.pageIdx+1 < r.chunkN {
			r.pageIdx++
			r.idx = 0
		} else if err := r.fill(); err != nil {
			return nil, err
		}
	} else if r.chunkN == 0 {
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
	pageOff := r.pageIdx * r.reader.PageSize()
	rec := r.chunk[pageOff+r.idx*r.recSize : pageOff+(r.idx+1)*r.recSize]
	r.idx++
	r.read++
	return rec, nil
}

func (r *RecordReader) fill() error {
	if r.nextPage >= r.npages {
		return io.EOF
	}
	want := r.bufPages
	if rem := r.npages - r.nextPage; rem < int64(want) {
		want = int(rem)
	}
	got, err := r.reader.ReadPages(r.name, r.nextPage, want, r.chunk)
	if err != nil {
		return err
	}
	r.nextPage += int64(got)
	r.chunkN = got
	r.pageIdx = 0
	r.idx = 0
	return nil
}

// Remaining returns how many records are left to read.
func (r *RecordReader) Remaining() int64 { return r.count - r.read }

// RecordFile provides random access to fixed-size records in a file. It is
// safe for concurrent Get calls: the parallel query engine fetches raw
// series from worker goroutines, all sharing this one-page cache (one
// simulated buffer pool frame, as before — concurrency does not grow it).
type RecordFile struct {
	reader  PageReader
	name    string
	recSize int
	perPage int

	mu      sync.Mutex
	buf     []byte
	curPage int64 // page currently in buf, -1 if none
}

// OpenRecordFile opens the named file for random record access through r:
// a *Disk gives the uncached single-frame behaviour of the paper's raw
// file, a buffer pool serves repeat pages from the shared cache.
func OpenRecordFile(r PageReader, name string, recSize int) (*RecordFile, error) {
	perPage := r.PageSize() / recSize
	if perPage < 1 {
		return nil, fmt.Errorf("storage: record size %d exceeds page size %d", recSize, r.PageSize())
	}
	if !r.Exists(name) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return &RecordFile{
		reader:  r,
		name:    name,
		recSize: recSize,
		perPage: perPage,
		buf:     make([]byte, r.PageSize()),
		curPage: -1,
	}, nil
}

// View invokes fn with the bytes of record number i while the one-page
// cache is locked. The slice aliases the cache and is valid only inside fn
// — the zero-copy hot path for callers that decode immediately. Page reads
// hit the disk (and its accounting) unless i falls on the cached page.
func (f *RecordFile) View(i int64, fn func(rec []byte) error) error {
	if i < 0 {
		return fmt.Errorf("%w: record %d", ErrOutOfRange, i)
	}
	page := i / int64(f.perPage)
	f.mu.Lock()
	defer f.mu.Unlock()
	if page != f.curPage {
		if _, err := f.reader.ReadPage(f.name, page, f.buf); err != nil {
			return err
		}
		f.curPage = page
	}
	off := int(i%int64(f.perPage)) * f.recSize
	return fn(f.buf[off : off+f.recSize])
}

// Get reads record number i. The returned slice is a copy and remains
// valid across subsequent calls; use View to avoid the copy.
func (f *RecordFile) Get(i int64) ([]byte, error) {
	out := make([]byte, f.recSize)
	err := f.View(i, func(rec []byte) error {
		copy(out, rec)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RecordsPerPage reports how many records fit on one page.
func (f *RecordFile) RecordsPerPage() int { return f.perPage }
