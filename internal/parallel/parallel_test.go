package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(7); got != 7 {
		t.Errorf("Resolve(7) = %d", got)
	}
}

func TestWorkersFor(t *testing.T) {
	p := New(4)
	for _, tc := range []struct{ n, want int }{{0, 1}, {1, 1}, {3, 3}, {4, 4}, {100, 4}} {
		if got := p.WorkersFor(tc.n); got != tc.want {
			t.Errorf("WorkersFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestForEachRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		t.Run(fmt.Sprint(workers), func(t *testing.T) {
			const n = 100
			var hits [n]atomic.Int32
			err := New(workers).ForEach(n, func(_, i int) error {
				hits[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("task %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestForEachWorkerSlotsAreExclusive(t *testing.T) {
	// No two tasks may run on the same worker slot concurrently: per-slot
	// scratch state (page buffers, collectors) relies on it.
	p := New(4)
	w := p.WorkersFor(64)
	busy := make([]atomic.Bool, w)
	err := p.ForEach(64, func(worker, i int) error {
		if !busy[worker].CompareAndSwap(false, true) {
			return fmt.Errorf("worker slot %d entered twice", worker)
		}
		defer busy[worker].Store(false)
		runtime.Gosched() // widen the window
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	p := New(3)
	var cur, max atomic.Int32
	var mu sync.Mutex
	err := p.ForEach(50, func(_, i int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > max.Load() {
			max.Store(c)
		}
		mu.Unlock()
		runtime.Gosched()
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if max.Load() > 3 {
		t.Errorf("observed %d concurrent tasks, want <= 3", max.Load())
	}
}

func TestForEachReportsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Regardless of scheduling, the error from the lowest failing index
	// wins, so error reporting is deterministic under concurrency.
	for trial := 0; trial < 20; trial++ {
		err := New(8).ForEach(40, func(_, i int) error {
			switch i {
			case 7:
				return errA
			case 23:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, errA)
		}
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := New(1).ForEach(10, func(_, i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Fatalf("serial pool ran %d tasks after error, want stop at 4", ran)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	called := false
	if err := New(4).ForEach(0, func(_, i int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for n=0")
	}
}
