// Package parallel provides the bounded worker pool behind Coconut's
// parallel query engine. Every search path that fans out over independent
// sub-scans — CLSM runs, stream time-partitions, CTree leaf ranges, external
// sort buffers — schedules its work through a Pool, so the degree of
// concurrency is a single knob (surfaced as coconut.Options.Parallelism and
// the server's build option) rather than an emergent property of each call
// site.
//
// # Determinism
//
// The pool makes no ordering promises: tasks run on whichever worker pulls
// them first. Callers that must produce deterministic answers therefore keep
// per-worker state (a page buffer and a result collector per worker slot)
// and combine the per-worker states with an order-independent merge — see
// index.Collector, whose contents are a pure function of the candidate set,
// not of insertion order. That division of labor is what lets the engine
// guarantee that parallel search returns byte-identical results to the
// serial path: parallelism changes wall-clock time, never answers.
//
// # Sizing
//
// A Pool with workers <= 0 sizes itself to runtime.GOMAXPROCS(0), the
// number of OS threads Go will actually run concurrently; asking for more
// workers than that only adds scheduling overhead for CPU-bound probing.
// A Pool of one worker runs every task inline on the calling goroutine,
// spawning nothing — so the serial path stays exactly as cheap as it was
// before the engine learned to fan out.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps a Parallelism knob value to a concrete worker count:
// values <= 0 mean "one worker per available CPU" (GOMAXPROCS).
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Pool is a bounded worker pool. The zero value is not ready for use;
// create pools with New. A Pool is immutable and safe for concurrent use by
// any number of goroutines; it holds no goroutines of its own between calls.
type Pool struct {
	workers int
}

// New creates a pool with the given worker bound (<= 0 selects GOMAXPROCS).
func New(workers int) *Pool {
	return &Pool{workers: Resolve(workers)}
}

// Workers returns the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// WorkersFor returns how many workers a batch of n tasks will actually use:
// min(Workers, n), and never less than 1.
func (p *Pool) WorkersFor(n int) int {
	w := p.workers
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(worker, i) for every i in [0, n), distributing tasks
// dynamically over up to Workers goroutines. The worker argument is a dense
// slot index in [0, WorkersFor(n)): a task may run on any slot, but no two
// tasks run on the same slot at the same time, so callers can give each slot
// private scratch state (page buffers, collectors) without locking.
//
// With one worker the tasks run inline on the calling goroutine, in order.
// All tasks are attempted even if one fails; the error reported is the one
// from the lowest task index, which keeps error reporting deterministic
// under concurrency.
func (p *Pool) ForEach(n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	w := p.WorkersFor(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for worker := 0; worker < w; worker++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(worker, i)
			}
		}(worker)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
