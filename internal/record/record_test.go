package record

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/series"
	"repro/internal/sortable"
)

func TestCodecRoundTripNonMaterialized(t *testing.T) {
	c := Codec{SeriesLen: 8, Materialized: false}
	if c.Size() != HeaderBytes {
		t.Fatalf("size = %d, want %d", c.Size(), HeaderBytes)
	}
	e := Entry{Key: sortable.Key{Hi: 0xDEAD, Lo: 0xBEEF}, ID: -5, TS: 42}
	buf, err := c.Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != c.Size() {
		t.Fatalf("encoded %d bytes, want %d", len(buf), c.Size())
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != e.Key || got.ID != e.ID || got.TS != e.TS || got.Payload != nil {
		t.Fatalf("roundtrip = %+v, want %+v", got, e)
	}
}

func TestCodecRoundTripMaterialized(t *testing.T) {
	c := Codec{SeriesLen: 4, Materialized: true}
	if c.Size() != HeaderBytes+32 {
		t.Fatalf("size = %d", c.Size())
	}
	e := Entry{Key: sortable.Key{Hi: 1}, ID: 7, TS: 9, Payload: series.Series{1, 2, 3, 4}}
	buf, err := c.Encode(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Payload[2] != 3 {
		t.Fatalf("payload = %v", got.Payload)
	}
}

func TestCodecPayloadValidation(t *testing.T) {
	c := Codec{SeriesLen: 4, Materialized: true}
	if _, err := c.Encode(Entry{Payload: series.Series{1}}); err == nil {
		t.Fatal("short payload should fail")
	}
	if _, err := c.Encode(Entry{}); err == nil {
		t.Fatal("nil payload should fail when materialized")
	}
	if _, err := c.Decode(make([]byte, 10)); err == nil {
		t.Fatal("short decode should fail")
	}
}

func TestDecodeKeyOnly(t *testing.T) {
	c := Codec{}
	e := Entry{Key: sortable.Key{Hi: 123, Lo: 456}}
	buf, _ := c.Encode(e)
	if DecodeKeyOnly(buf) != e.Key {
		t.Fatal("DecodeKeyOnly mismatch")
	}
}

func TestEntryLessOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	entries := make([]Entry, 500)
	for i := range entries {
		entries[i] = Entry{
			Key: sortable.Key{Hi: rng.Uint64() % 8, Lo: rng.Uint64() % 8},
			ID:  int64(rng.Intn(10)),
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Less(entries[j]) })
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if b.Less(a) {
			t.Fatalf("not sorted at %d", i)
		}
		if a.Key == b.Key && a.ID > b.ID {
			t.Fatalf("tie not broken by ID at %d", i)
		}
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	c := Codec{SeriesLen: 8, Materialized: true}
	f := func(hi, lo uint64, id, ts int64, payload [8]float64) bool {
		for _, v := range payload {
			if v != v { // skip NaN (compares unequal)
				return true
			}
		}
		e := Entry{Key: sortable.Key{Hi: hi, Lo: lo}, ID: id, TS: ts, Payload: payload[:]}
		buf, err := c.Encode(e)
		if err != nil {
			return false
		}
		got, err := c.Decode(buf)
		if err != nil || got.Key != e.Key || got.ID != id || got.TS != ts {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
