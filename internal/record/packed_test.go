package record

import (
	"math/rand"
	"slices"
	"sort"
	"testing"

	"repro/internal/series"
	"repro/internal/sortable"
)

// randomSortedEntries builds n key-sorted entries with the given key shape:
// "dense" draws full-width random keys, "aligned" left-aligned keys with a
// common shift (the shape real iSAX interleavings produce), "clustered"
// keys sharing high bits so deltas stay narrow.
func randomSortedEntries(rng *rand.Rand, c Codec, n int, shape string) []Entry {
	out := make([]Entry, n)
	baseID := rng.Int63n(1 << 40)
	baseTS := rng.Int63n(1 << 40)
	for i := range out {
		var k sortable.Key
		switch shape {
		case "aligned":
			k = sortable.Key{Hi: rng.Uint64() << 32}
		case "clustered":
			k = sortable.Key{Hi: 0xABCD<<48 | rng.Uint64()&0xFFFF, Lo: rng.Uint64() & 0xFF}
		default:
			k = sortable.Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
		}
		out[i] = Entry{Key: k, ID: baseID + rng.Int63n(1000), TS: baseTS + rng.Int63n(1000)}
		if c.Materialized {
			s := make(series.Series, c.SeriesLen)
			for j := range s {
				s[j] = rng.NormFloat64()
			}
			out[i].Payload = s
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}

func packEntries(t *testing.T, c Codec, pageSize int, entries []Entry) ([]byte, int) {
	t.Helper()
	b, err := NewPageBuilder(c, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	added := 0
	for _, e := range entries {
		ok, err := b.TryAdd(e)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		added++
	}
	page := make([]byte, pageSize)
	if _, err := b.Encode(page); err != nil {
		t.Fatal(err)
	}
	return page, added
}

func checkPackedPage(t *testing.T, c Codec, page []byte, want []Entry) {
	t.Helper()
	v, err := c.ViewPacked(page)
	if err != nil {
		t.Fatal(err)
	}
	if v.Count() != len(want) {
		t.Fatalf("count = %d, want %d", v.Count(), len(want))
	}
	if len(want) > 0 && v.FirstKey() != want[0].Key {
		t.Fatalf("first key = %v, want %v", v.FirstKey(), want[0].Key)
	}
	if PackedFirstKey(page) != v.FirstKey() || PackedCount(page) != v.Count() {
		t.Fatal("header accessors disagree with view")
	}
	for i, e := range want {
		got, err := v.Entry(i, c)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key != e.Key || got.ID != e.ID || got.TS != e.TS {
			t.Fatalf("entry %d = %+v, want %+v", i, got, e)
		}
		if c.Materialized && !slices.Equal(got.Payload, e.Payload) {
			t.Fatalf("entry %d payload mismatch", i)
		}
	}
}

func TestPackedPageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, c := range []Codec{{SeriesLen: 16}, {SeriesLen: 16, Materialized: true}} {
		for _, shape := range []string{"dense", "aligned", "clustered"} {
			for _, n := range []int{1, 2, 3, 17, 200} {
				entries := randomSortedEntries(rng, c, n, shape)
				page, added := packEntries(t, c, 4096, entries)
				if added == 0 {
					t.Fatalf("%s/%d: nothing packed", shape, n)
				}
				if !IsPacked(page) {
					t.Fatal("IsPacked = false on packed page")
				}
				checkPackedPage(t, c, page, entries[:added])
			}
		}
	}
}

func TestPackedPageDuplicateAndExtremeKeys(t *testing.T) {
	c := Codec{SeriesLen: 4}
	k := sortable.Key{Hi: ^uint64(0), Lo: ^uint64(0)}
	entries := []Entry{
		{Key: sortable.Key{}, ID: 0, TS: 0},
		{Key: sortable.Key{}, ID: 1, TS: 1},
		{Key: k, ID: 2, TS: 1 << 62},
		{Key: k, ID: 1 << 62, TS: 2},
	}
	page, added := packEntries(t, c, 4096, entries)
	if added != len(entries) {
		t.Fatalf("added %d, want %d", added, len(entries))
	}
	checkPackedPage(t, c, page, entries)
}

func TestPackedRejectsOutOfOrder(t *testing.T) {
	c := Codec{SeriesLen: 4}
	b, err := NewPageBuilder(c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := b.TryAdd(Entry{Key: sortable.Key{Hi: 10}}); err != nil || !ok {
		t.Fatalf("first add: ok=%v err=%v", ok, err)
	}
	if ok, err := b.TryAdd(Entry{Key: sortable.Key{Hi: 5}}); err != nil || ok {
		t.Fatalf("out-of-key-order add should be rejected, got ok=%v err=%v", ok, err)
	}
}

func TestPackedBuilderFillsUntilPageFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Codec{SeriesLen: 8, Materialized: true}
	entries := randomSortedEntries(rng, c, 4096, "dense")
	page, added := packEntries(t, c, 4096, entries)
	if added == len(entries) {
		t.Fatal("expected the page to fill before 4096 materialized entries")
	}
	checkPackedPage(t, c, page, entries[:added])
	// A packed page must beat or match the fixed layout's entry count.
	if fixed := 4096 / c.Size(); added < fixed {
		t.Fatalf("packed page holds %d entries, fixed layout holds %d", added, fixed)
	}
}

// TestPackedViewRejectsCorruptPages drives ViewPacked across corrupted
// headers: decode must fail cleanly, never panic or read out of bounds.
func TestPackedViewRejectsCorruptPages(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := Codec{SeriesLen: 8, Materialized: true}
	entries := randomSortedEntries(rng, c, 40, "dense")
	page, added := packEntries(t, c, 4096, entries)
	if added != 40 {
		t.Fatalf("added %d", added)
	}

	check := func(name string, mutate func(p []byte)) {
		p := append([]byte(nil), page...)
		mutate(p)
		if _, err := c.ViewPacked(p); err == nil {
			t.Errorf("%s: ViewPacked accepted a corrupt page", name)
		}
	}
	check("magic", func(p []byte) { p[0] = 0 })
	check("version", func(p []byte) { p[2] = 99 })
	check("materialized flag", func(p []byte) { p[3] &^= 1 })
	check("key width", func(p []byte) { p[6] = 200 })
	check("id width", func(p []byte) { p[8] = 65 })
	check("count overflow", func(p []byte) { p[4] = 0xFF; p[5] = 0x7F })
	check("truncated", func(p []byte) {
		// Count says 50 but the page is all zeros past the header.
		for i := PackedHeaderBytes; i < len(p); i++ {
			p[i] = 0
		}
		p[4] = 0xFF
		p[5] = 0x7F
	})

	// Random header bytes must never panic.
	for trial := 0; trial < 2000; trial++ {
		p := append([]byte(nil), page...)
		for i := 0; i < 8; i++ {
			p[rng.Intn(PackedHeaderBytes)] = byte(rng.Intn(256))
		}
		v, err := c.ViewPacked(p)
		if err != nil {
			continue
		}
		for i := 0; i < v.Count(); i++ {
			_, _ = v.Entry(i, c)
		}
	}
}

func TestPackedWriterReaderStream(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, c := range []Codec{{SeriesLen: 12}, {SeriesLen: 12, Materialized: true}} {
		for _, n := range []int{0, 1, 100, 5000} {
			d := newTestPageStore(256)
			entries := randomSortedEntries(rng, c, n, "clustered")
			w, err := NewPackedWriter(d, "runfile", c)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if err := w.WriteEntry(e); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if w.Count() != int64(n) {
				t.Fatalf("writer count %d, want %d", w.Count(), n)
			}

			r, err := NewPackedReader(d, "runfile", c, int64(n))
			if err != nil {
				t.Fatal(err)
			}
			for i, want := range entries {
				got, err := r.NextEntry()
				if err != nil {
					t.Fatalf("entry %d: %v", i, err)
				}
				if got.Key != want.Key || got.ID != want.ID || got.TS != want.TS {
					t.Fatalf("entry %d = %+v, want %+v", i, got, want)
				}
				if c.Materialized && !slices.Equal(got.Payload, want.Payload) {
					t.Fatalf("entry %d payload mismatch", i)
				}
			}
			if _, err := r.NextEntry(); err == nil {
				t.Fatal("reader did not end after count entries")
			}
		}
	}
}

func TestPackedFits(t *testing.T) {
	if !PackedFits(Codec{SeriesLen: 64, Materialized: true}, 4096) {
		t.Fatal("materialized len-64 should fit a 4 KiB page")
	}
	if PackedFits(Codec{SeriesLen: 1024, Materialized: true}, 4096) {
		t.Fatal("an 8 KiB payload cannot fit a 4 KiB page")
	}
	if !PackedFits(Codec{SeriesLen: 1024}, 4096) {
		t.Fatal("non-materialized entries are payload-free and must fit")
	}
}

// testPageStore is a minimal in-memory PageAppender/PageSource.
type testPageStore struct {
	pageSize int
	files    map[string][]byte
}

func newTestPageStore(pageSize int) *testPageStore {
	return &testPageStore{pageSize: pageSize, files: map[string][]byte{}}
}

func (s *testPageStore) PageSize() int { return s.pageSize }

func (s *testPageStore) Create(name string) error {
	s.files[name] = nil
	return nil
}

func (s *testPageStore) AppendPages(name string, data []byte) (int64, error) {
	first := int64(len(s.files[name]) / s.pageSize)
	s.files[name] = append(s.files[name], data...)
	return first, nil
}

func (s *testPageStore) NumPages(name string) (int64, error) {
	return int64(len(s.files[name]) / s.pageSize), nil
}

func (s *testPageStore) ReadPages(name string, page int64, n int, buf []byte) (int, error) {
	copy(buf, s.files[name][page*int64(s.pageSize):(page+int64(n))*int64(s.pageSize)])
	return n, nil
}
