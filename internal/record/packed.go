package record

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/series"
	"repro/internal/sortable"
)

// Packed pages are the compressed on-disk encoding of entry runs: instead of
// fixed 32-byte headers per entry, a page stores its entries column-wise with
// frame-of-reference bit packing, so each page carries more candidates per
// I/O. The encoding is lossless — keys, IDs, and timestamps reconstruct
// bit-for-bit, and materialized payloads are stored verbatim so the
// early-abandoning distance kernels run straight off the page bytes, exactly
// as on fixed-size pages.
//
// Page layout (all integers little-endian unless noted):
//
//	 0  magic    u16  = 0x7C0C
//	 2  version  u8   = 1
//	 3  flags    u8   bit0: payloads present (materialized codec)
//	 4  count    u16
//	 6  keyW     u8   bits per packed key delta (0..128)
//	 7  keyShift u8   left shift applied to key deltas (0..127)
//	 8  idW      u8   bits per packed ID delta (0..64)
//	 9  tsW      u8   bits per packed TS delta (0..64)
//	10  reserved u16  = 0
//	12  firstKey 16B  (big-endian sortable encoding)
//	28  baseID   u64
//	36  baseTS   u64
//	44  key bitstream:  count x keyW bits, then zero padding to a byte
//	    ID bitstream:   count x idW bits, likewise padded
//	    TS bitstream:   count x tsW bits, likewise padded
//	    payloads:       count x 8 x SeriesLen bytes, verbatim
//
// Keys are stored as key_i = firstKey + (delta_i << keyShift): entries are
// sorted, so deltas from the first key are non-negative, and because sortable
// keys are left-aligned (only the top Segments x Bits bits are significant)
// every delta shares keyShift trailing zero bits, which the encoder strips.
// IDs and timestamps are frame-of-reference deltas from the page minimum.
// All three widths are chosen per page from the actual values, so the codec
// has no lossy mode and no tuning: a page of similar keys packs tightly, a
// pathological page simply packs at full width.
//
// Readers locate values in O(1) (value i occupies bits [i*W, (i+1)*W) of its
// stream), which keeps the probe path's verify phase — sorted by lower bound,
// so it revisits survivors in arbitrary page order — as cheap as on
// fixed-size pages. Bit reads use unaligned 8-byte loads; PackedSlack spare
// bytes at the page tail keep those loads in bounds.
const (
	packedMagic   = 0x7C0C
	packedVersion = 1

	// PackedHeaderBytes is the fixed per-page header size.
	PackedHeaderBytes = 44

	// PackedSlack is the spare space the encoder leaves at the page tail so
	// bitstream readers can use unaligned 8-byte loads without bounds
	// branches.
	PackedSlack = 8

	// maxPackedCount caps entries per packed page (count is stored u16; the
	// cap also bounds decode scratch growth on adversarial pages).
	maxPackedCount = 1 << 15

	flagMaterialized = 1 << 0
)

// IsPacked reports whether page holds a packed-page header. Fixed-size pages
// start with a big-endian sortable key; its first two bytes are the top of
// Key.Hi, which carries interleaved symbol bits, so collisions with the magic
// are possible in principle — callers always know the encoding from run or
// tree metadata and use this only as a cross-check.
func IsPacked(page []byte) bool {
	return len(page) >= PackedHeaderBytes &&
		binary.LittleEndian.Uint16(page) == packedMagic && page[2] == packedVersion
}

// PackedFirstKey returns the smallest key on a packed page straight from the
// header — the probe path's binary search reads nothing else.
func PackedFirstKey(page []byte) sortable.Key {
	return sortable.DecodeKey(page[12:])
}

// PackedCount returns the number of entries on a packed page.
func PackedCount(page []byte) int {
	return int(binary.LittleEndian.Uint16(page[4:]))
}

// PackedFits reports whether a packed page of the codec's shape fits in
// pageSize at all (header, one worst-case entry, and the reader slack).
func PackedFits(c Codec, pageSize int) bool {
	worst := PackedHeaderBytes + sortable.KeyBytes + 8 + 8 + PackedSlack
	if c.Materialized {
		worst += 8 * c.SeriesLen
	}
	return worst <= pageSize
}

// PageBuilder assembles one packed page at a time. Add entries in (Key, ID)
// order with TryAdd until it reports the page full, then Encode and continue
// with the rejected entry on the next page. Payload bytes are copied in at
// TryAdd time, so callers may reuse entry buffers immediately.
type PageBuilder struct {
	codec    Codec
	pageSize int
	paySize  int

	keys []sortable.Key
	ids  []int64
	tss  []int64
	pay  []byte

	orHi, orLo   uint64 // OR of key deltas from keys[0]
	minID, maxID int64
	minTS, maxTS int64
}

// NewPageBuilder returns a builder for pages of the given size. It errors
// when even a single worst-case entry cannot fit, so misconfiguration fails
// at construction instead of mid-write.
func NewPageBuilder(c Codec, pageSize int) (*PageBuilder, error) {
	if !PackedFits(c, pageSize) {
		return nil, fmt.Errorf("record: packed entry of series length %d cannot fit page size %d", c.SeriesLen, pageSize)
	}
	b := &PageBuilder{codec: c, pageSize: pageSize}
	if c.Materialized {
		b.paySize = 8 * c.SeriesLen
	}
	return b, nil
}

// Count returns the number of entries currently staged.
func (b *PageBuilder) Count() int { return len(b.keys) }

// EncodedBytes returns the page bytes the staged entries would occupy
// (header and bitstreams, excluding the tail slack).
func (b *PageBuilder) EncodedBytes() int {
	return b.sizeWith(len(b.keys), b.widths())
}

type packedWidths struct {
	keyW, keyShift, idW, tsW uint8
}

// widths derives the per-column bit widths from the staged statistics.
func (b *PageBuilder) widths() packedWidths {
	var w packedWidths
	if n := bitLen128(b.orHi, b.orLo); n > 0 {
		shift := trailingZeros128(b.orHi, b.orLo)
		w.keyShift = uint8(shift)
		w.keyW = uint8(n - shift)
	}
	if len(b.keys) > 0 {
		w.idW = uint8(bits.Len64(uint64(b.maxID) - uint64(b.minID)))
		w.tsW = uint8(bits.Len64(uint64(b.maxTS) - uint64(b.minTS)))
	}
	return w
}

func (b *PageBuilder) sizeWith(count int, w packedWidths) int {
	return PackedHeaderBytes +
		(count*int(w.keyW)+7)/8 +
		(count*int(w.idW)+7)/8 +
		(count*int(w.tsW)+7)/8 +
		count*b.paySize
}

// TryAdd stages one entry. It returns false — leaving the builder unchanged
// — when the entry does not fit on the current page: not in key order with
// the staged entries, or over the size budget. A false return on an empty
// builder cannot happen (NewPageBuilder verified the worst case fits).
func (b *PageBuilder) TryAdd(e Entry) (bool, error) {
	if b.codec.Materialized && len(e.Payload) != b.codec.SeriesLen {
		return false, fmt.Errorf("record: payload length %d, want %d", len(e.Payload), b.codec.SeriesLen)
	}
	if len(b.keys) >= maxPackedCount {
		return false, nil
	}
	orHi, orLo := b.orHi, b.orLo
	minID, maxID, minTS, maxTS := e.ID, e.ID, e.TS, e.TS
	if len(b.keys) > 0 {
		first := b.keys[0]
		if e.Key.Less(first) {
			return false, nil // out of key order: start a fresh page
		}
		dHi, dLo := sub128(e.Key.Hi, e.Key.Lo, first.Hi, first.Lo)
		orHi |= dHi
		orLo |= dLo
		minID, maxID, minTS, maxTS = b.minID, b.maxID, b.minTS, b.maxTS
		if e.ID < minID {
			minID = e.ID
		}
		if e.ID > maxID {
			maxID = e.ID
		}
		if e.TS < minTS {
			minTS = e.TS
		}
		if e.TS > maxTS {
			maxTS = e.TS
		}
	}
	var w packedWidths
	if n := bitLen128(orHi, orLo); n > 0 {
		shift := trailingZeros128(orHi, orLo)
		w.keyShift = uint8(shift)
		w.keyW = uint8(n - shift)
	}
	w.idW = uint8(bits.Len64(uint64(maxID) - uint64(minID)))
	w.tsW = uint8(bits.Len64(uint64(maxTS) - uint64(minTS)))
	if b.sizeWith(len(b.keys)+1, w)+PackedSlack > b.pageSize {
		if len(b.keys) == 0 {
			return false, fmt.Errorf("record: single packed entry exceeds page size %d", b.pageSize)
		}
		return false, nil
	}
	b.orHi, b.orLo = orHi, orLo
	b.minID, b.maxID, b.minTS, b.maxTS = minID, maxID, minTS, maxTS
	b.keys = append(b.keys, e.Key)
	b.ids = append(b.ids, e.ID)
	b.tss = append(b.tss, e.TS)
	if b.paySize > 0 {
		b.pay = e.Payload.AppendBinary(b.pay)
	}
	return true, nil
}

// Encode renders the staged entries into page (which must be at least
// pageSize long), zeroes the remainder, resets the builder, and returns the
// number of meaningful bytes. Encoding an empty builder is an error.
func (b *PageBuilder) Encode(page []byte) (int, error) {
	count := len(b.keys)
	if count == 0 {
		return 0, fmt.Errorf("record: encoding empty packed page")
	}
	if len(page) < b.pageSize {
		return 0, fmt.Errorf("record: page buffer %d short of page size %d", len(page), b.pageSize)
	}
	w := b.widths()
	used := b.sizeWith(count, w)
	for i := range page[:b.pageSize] {
		page[i] = 0
	}
	binary.LittleEndian.PutUint16(page, packedMagic)
	page[2] = packedVersion
	if b.codec.Materialized {
		page[3] = flagMaterialized
	}
	binary.LittleEndian.PutUint16(page[4:], uint16(count))
	page[6] = w.keyW
	page[7] = w.keyShift
	page[8] = w.idW
	page[9] = w.tsW
	first := b.keys[0]
	first.AppendBinary(page[12:12:28])
	binary.LittleEndian.PutUint64(page[28:], uint64(b.minID))
	binary.LittleEndian.PutUint64(page[36:], uint64(b.minTS))

	keysOff := PackedHeaderBytes
	idsOff := keysOff + (count*int(w.keyW)+7)/8
	tsOff := idsOff + (count*int(w.idW)+7)/8
	payOff := tsOff + (count*int(w.tsW)+7)/8

	keyW, shift := uint(w.keyW), uint(w.keyShift)
	for i, k := range b.keys {
		dHi, dLo := sub128(k.Hi, k.Lo, first.Hi, first.Lo)
		dHi, dLo = shr128(dHi, dLo, shift)
		bitOff := i * int(keyW)
		if keyW <= 64 {
			putBits(page[keysOff:], bitOff, dLo, keyW)
		} else {
			putBits(page[keysOff:], bitOff, dLo, 64)
			putBits(page[keysOff:], bitOff+64, dHi, keyW-64)
		}
	}
	for i, id := range b.ids {
		putBits(page[idsOff:], i*int(w.idW), uint64(id)-uint64(b.minID), uint(w.idW))
	}
	for i, ts := range b.tss {
		putBits(page[tsOff:], i*int(w.tsW), uint64(ts)-uint64(b.minTS), uint(w.tsW))
	}
	copy(page[payOff:], b.pay)

	b.keys = b.keys[:0]
	b.ids = b.ids[:0]
	b.tss = b.tss[:0]
	b.pay = b.pay[:0]
	b.orHi, b.orLo = 0, 0
	return used, nil
}

// PackedView is a decoded packed-page header with O(1) column accessors. It
// is a value type — constructing one allocates nothing — and aliases the
// page bytes, so it is valid only while the page pin is held.
type PackedView struct {
	page    []byte
	count   int
	keyW    uint
	shift   uint
	idW     uint
	tsW     uint
	firstHi uint64
	firstLo uint64
	baseID  int64
	baseTS  int64
	keysOff int
	idsOff  int
	tsOff   int
	payOff  int
	paySize int
}

// ViewPacked validates and opens a packed page under the codec. The page
// slice must be a full storage page (the encoder's tail slack is what keeps
// bitstream reads in bounds).
func (c Codec) ViewPacked(page []byte) (PackedView, error) {
	if len(page) < PackedHeaderBytes {
		return PackedView{}, fmt.Errorf("record: packed page too short: %d", len(page))
	}
	if binary.LittleEndian.Uint16(page) != packedMagic {
		return PackedView{}, fmt.Errorf("record: bad packed page magic %#04x", binary.LittleEndian.Uint16(page))
	}
	if page[2] != packedVersion {
		return PackedView{}, fmt.Errorf("record: unsupported packed page version %d", page[2])
	}
	mat := page[3]&flagMaterialized != 0
	if mat != c.Materialized {
		return PackedView{}, fmt.Errorf("record: packed page materialized=%v, codec says %v", mat, c.Materialized)
	}
	v := PackedView{
		page:   page,
		count:  int(binary.LittleEndian.Uint16(page[4:])),
		keyW:   uint(page[6]),
		shift:  uint(page[7]),
		idW:    uint(page[8]),
		tsW:    uint(page[9]),
		baseID: int64(binary.LittleEndian.Uint64(page[28:])),
		baseTS: int64(binary.LittleEndian.Uint64(page[36:])),
	}
	first := sortable.DecodeKey(page[12:])
	v.firstHi, v.firstLo = first.Hi, first.Lo
	if v.keyW > 128 || v.shift > 127 || v.idW > 64 || v.tsW > 64 {
		return PackedView{}, fmt.Errorf("record: packed page widths out of range")
	}
	if mat {
		v.paySize = 8 * c.SeriesLen
	}
	v.keysOff = PackedHeaderBytes
	v.idsOff = v.keysOff + (v.count*int(v.keyW)+7)/8
	v.tsOff = v.idsOff + (v.count*int(v.idW)+7)/8
	v.payOff = v.tsOff + (v.count*int(v.tsW)+7)/8
	if used := v.payOff + v.count*v.paySize; used+PackedSlack > len(page) {
		return PackedView{}, fmt.Errorf("record: packed page overruns: %d bytes used of %d", used, len(page))
	}
	return v, nil
}

// Count returns the number of entries on the page.
func (v *PackedView) Count() int { return v.count }

// FirstKey returns the page's smallest key.
func (v *PackedView) FirstKey() sortable.Key {
	return sortable.Key{Hi: v.firstHi, Lo: v.firstLo}
}

// Key returns entry i's sortable key.
func (v *PackedView) Key(i int) sortable.Key {
	var dHi, dLo uint64
	bitOff := i * int(v.keyW)
	if v.keyW <= 64 {
		dLo = getBits(v.page[v.keysOff:], bitOff, v.keyW)
	} else {
		dLo = getBits(v.page[v.keysOff:], bitOff, 64)
		dHi = getBits(v.page[v.keysOff:], bitOff+64, v.keyW-64)
	}
	dHi, dLo = shl128(dHi, dLo, v.shift)
	lo, carry := bits.Add64(v.firstLo, dLo, 0)
	hi, _ := bits.Add64(v.firstHi, dHi, carry)
	return sortable.Key{Hi: hi, Lo: lo}
}

// ID returns entry i's series ID.
func (v *PackedView) ID(i int) int64 {
	return int64(uint64(v.baseID) + getBits(v.page[v.idsOff:], i*int(v.idW), v.idW))
}

// TS returns entry i's ingestion timestamp.
func (v *PackedView) TS(i int) int64 {
	return int64(uint64(v.baseTS) + getBits(v.page[v.tsOff:], i*int(v.tsW), v.tsW))
}

// PayloadBytes returns entry i's verbatim payload encoding (materialized
// codecs only). The slice aliases the page.
func (v *PackedView) PayloadBytes(i int) []byte {
	off := v.payOff + i*v.paySize
	return v.page[off : off+v.paySize]
}

// Entry decodes entry i in full. The payload (when materialized) is freshly
// allocated and does not alias the page.
func (v *PackedView) Entry(i int, c Codec) (Entry, error) {
	e := Entry{Key: v.Key(i), ID: v.ID(i), TS: v.TS(i)}
	if v.paySize > 0 {
		p, err := series.DecodeBinary(v.PayloadBytes(i), c.SeriesLen)
		if err != nil {
			return Entry{}, err
		}
		e.Payload = p
	}
	return e, nil
}

// putBits writes the low w bits of val at bit offset bitOff of b (w <= 64).
// Bits beyond w in val must be zero is not required — they are masked.
func putBits(b []byte, bitOff int, val uint64, w uint) {
	for w > 0 {
		byteOff := bitOff >> 3
		sh := uint(bitOff & 7)
		n := 8 - sh
		if n > w {
			n = w
		}
		mask := byte((1<<n - 1) << sh)
		b[byteOff] = b[byteOff]&^mask | byte(val<<sh)&mask
		val >>= n
		bitOff += int(n)
		w -= n
	}
}

// getBits reads w bits at bit offset bitOff of b (w <= 64) with one
// unaligned 8-byte load (plus one byte when the value straddles 9 bytes).
// Callers guarantee 8 readable bytes past the value's first byte — the
// encoder's tail slack.
func getBits(b []byte, bitOff int, w uint) uint64 {
	if w == 0 {
		return 0
	}
	byteOff := bitOff >> 3
	sh := uint(bitOff & 7)
	v := binary.LittleEndian.Uint64(b[byteOff:]) >> sh
	if sh+w > 64 {
		v |= uint64(b[byteOff+8]) << (64 - sh)
	}
	if w == 64 {
		return v
	}
	return v & (1<<w - 1)
}

func sub128(aHi, aLo, bHi, bLo uint64) (hi, lo uint64) {
	lo, borrow := bits.Sub64(aLo, bLo, 0)
	hi, _ = bits.Sub64(aHi, bHi, borrow)
	return hi, lo
}

func shr128(hi, lo uint64, n uint) (uint64, uint64) {
	switch {
	case n == 0:
		return hi, lo
	case n < 64:
		return hi >> n, lo>>n | hi<<(64-n)
	case n < 128:
		return 0, hi >> (n - 64)
	default:
		return 0, 0
	}
}

func shl128(hi, lo uint64, n uint) (uint64, uint64) {
	switch {
	case n == 0:
		return hi, lo
	case n < 64:
		return hi<<n | lo>>(64-n), lo << n
	case n < 128:
		return lo << (n - 64), 0
	default:
		return 0, 0
	}
}

func bitLen128(hi, lo uint64) int {
	if hi != 0 {
		return 64 + bits.Len64(hi)
	}
	return bits.Len64(lo)
}

func trailingZeros128(hi, lo uint64) int {
	if lo != 0 {
		return bits.TrailingZeros64(lo)
	}
	if hi != 0 {
		return 64 + bits.TrailingZeros64(hi)
	}
	return 0
}
