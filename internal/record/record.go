// Package record defines the fixed-size index entry shared by every Coconut
// index: a sortable summarization key, the series ID in the raw file, an
// ingestion timestamp, and — in materialized indexes — the full series
// payload inline. Entries sort by (Key, ID), the order produced by external
// sorting and maintained by CTree and CLSM.
package record

import (
	"encoding/binary"
	"fmt"

	"repro/internal/series"
	"repro/internal/sortable"
)

// Entry is one index entry.
type Entry struct {
	Key     sortable.Key  // interleaved iSAX summarization
	ID      int64         // series ID in the raw store
	TS      int64         // ingestion timestamp (streaming schemes)
	Payload series.Series // inline series; nil in non-materialized indexes
}

// Less orders entries by (Key, ID): key order is the sortable-summarization
// order; ID breaks ties deterministically.
func (e Entry) Less(o Entry) bool {
	if c := e.Key.Compare(o.Key); c != 0 {
		return c < 0
	}
	return e.ID < o.ID
}

// HeaderBytes is the size of the fixed (non-payload) part of an entry.
const HeaderBytes = sortable.KeyBytes + 8 + 8

// Codec encodes and decodes entries of a fixed shape.
type Codec struct {
	SeriesLen    int  // payload length when materialized
	Materialized bool // whether entries carry the series inline
}

// Size returns the encoded entry size in bytes.
func (c Codec) Size() int {
	if c.Materialized {
		return HeaderBytes + series.Size(c.SeriesLen)
	}
	return HeaderBytes
}

// Append appends the encoding of e to buf.
func (c Codec) Append(buf []byte, e Entry) ([]byte, error) {
	buf = e.Key.AppendBinary(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.ID))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.TS))
	if c.Materialized {
		if len(e.Payload) != c.SeriesLen {
			return nil, fmt.Errorf("record: payload length %d, want %d", len(e.Payload), c.SeriesLen)
		}
		buf = e.Payload.AppendBinary(buf)
	}
	return buf, nil
}

// Encode encodes e into a fresh buffer of exactly c.Size() bytes.
func (c Codec) Encode(e Entry) ([]byte, error) {
	return c.Append(make([]byte, 0, c.Size()), e)
}

// Decode decodes an entry from buf, which must hold at least c.Size() bytes.
func (c Codec) Decode(buf []byte) (Entry, error) {
	if len(buf) < c.Size() {
		return Entry{}, fmt.Errorf("record: short buffer %d, want %d", len(buf), c.Size())
	}
	e := Entry{
		Key: sortable.DecodeKey(buf),
		ID:  int64(binary.LittleEndian.Uint64(buf[sortable.KeyBytes:])),
		TS:  int64(binary.LittleEndian.Uint64(buf[sortable.KeyBytes+8:])),
	}
	if c.Materialized {
		p, err := series.DecodeBinary(buf[HeaderBytes:], c.SeriesLen)
		if err != nil {
			return Entry{}, err
		}
		e.Payload = p
	}
	return e, nil
}

// DecodeKeyOnly extracts just the sortable key — used on scan paths that
// prune by MINDIST before paying for full decoding.
func DecodeKeyOnly(buf []byte) sortable.Key {
	return sortable.DecodeKey(buf)
}

// DecodeID extracts just the series ID from an encoded entry.
func DecodeID(buf []byte) int64 {
	return int64(binary.LittleEndian.Uint64(buf[sortable.KeyBytes:]))
}

// DecodeTS extracts just the timestamp from an encoded entry.
func DecodeTS(buf []byte) int64 {
	return int64(binary.LittleEndian.Uint64(buf[sortable.KeyBytes+8:]))
}

// PayloadBytes returns the encoded payload portion of an entry, valid only
// for materialized codecs. The slice aliases buf.
func (c Codec) PayloadBytes(buf []byte) []byte {
	return buf[HeaderBytes:c.Size()]
}
