package record

import (
	"fmt"
	"io"
)

// The packed stream types mirror storage.RecordWriter / RecordReader for the
// packed page encoding: sequential entry appends assembled into packed pages
// with a write-behind chunk, and sequential entry scans with read-ahead.
// They depend only on the narrow page-device interfaces below, which
// storage.Backend and storage.PageReader satisfy structurally, so the codec
// layer stays free of a storage dependency.

// PageAppender is the write surface a packed writer needs.
type PageAppender interface {
	PageSize() int
	Create(name string) error
	AppendPages(name string, data []byte) (int64, error)
}

// PageSource is the read surface a packed reader needs.
type PageSource interface {
	PageSize() int
	NumPages(name string) (int64, error)
	ReadPages(name string, page int64, n int, buf []byte) (int, error)
}

// packedBufferPages is the write-behind / read-ahead chunk size, matching
// storage.DefaultBufferPages so packed and fixed-size streams have the same
// sequential I/O profile.
const packedBufferPages = 16

// PackedWriter appends entries (in (Key, ID) order) to a file of packed
// pages. Completed pages accumulate in a write-behind chunk flushed with one
// multi-page append; Close flushes the final partial page.
type PackedWriter struct {
	disk    PageAppender
	name    string
	builder *PageBuilder
	chunk   []byte
	total   int64
	pages   int64
	closed  bool
}

// NewPackedWriter creates the file (which must not exist) and returns a
// packed-page writer for entries of the codec's shape.
func NewPackedWriter(d PageAppender, name string, c Codec) (*PackedWriter, error) {
	b, err := NewPageBuilder(c, d.PageSize())
	if err != nil {
		return nil, err
	}
	if err := d.Create(name); err != nil {
		return nil, err
	}
	return &PackedWriter{
		disk:    d,
		name:    name,
		builder: b,
		chunk:   make([]byte, 0, packedBufferPages*d.PageSize()),
	}, nil
}

// WriteEntry appends one entry. Entries must arrive in (Key, ID) order.
func (w *PackedWriter) WriteEntry(e Entry) error {
	if w.closed {
		return fmt.Errorf("record: write to closed packed writer %q", w.name)
	}
	ok, err := w.builder.TryAdd(e)
	if err != nil {
		return err
	}
	if ok {
		w.total++
		return nil
	}
	if err := w.closePage(); err != nil {
		return err
	}
	ok, err = w.builder.TryAdd(e)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("record: entry rejected by empty packed page (unsorted input?)")
	}
	w.total++
	return nil
}

// closePage encodes the staged entries as one page into the chunk.
func (w *PackedWriter) closePage() error {
	if w.builder.Count() == 0 {
		return nil
	}
	pageSize := w.disk.PageSize()
	w.chunk = append(w.chunk, make([]byte, pageSize)...)
	if _, err := w.builder.Encode(w.chunk[len(w.chunk)-pageSize:]); err != nil {
		return err
	}
	w.pages++
	if len(w.chunk) >= packedBufferPages*pageSize {
		return w.flushChunk()
	}
	return nil
}

func (w *PackedWriter) flushChunk() error {
	if len(w.chunk) == 0 {
		return nil
	}
	if _, err := w.disk.AppendPages(w.name, w.chunk); err != nil {
		return err
	}
	w.chunk = w.chunk[:0]
	return nil
}

// Count returns the number of entries written so far.
func (w *PackedWriter) Count() int64 { return w.total }

// Pages returns the number of pages written (Close completes the count).
func (w *PackedWriter) Pages() int64 { return w.pages }

// Close encodes the final partial page and flushes buffered pages.
func (w *PackedWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.closePage(); err != nil {
		return err
	}
	return w.flushChunk()
}

// PackedReader scans entries from a packed-page file sequentially with
// read-ahead. Unlike fixed-size files, packed files are self-describing (the
// per-page counts add up to the total), but callers still pass the expected
// count as a cross-check against truncated or mismatched files.
type PackedReader struct {
	reader   PageSource
	name     string
	codec    Codec
	chunk    []byte
	chunkN   int
	pageIdx  int
	view     PackedView
	viewOK   bool
	idx      int
	nextPage int64
	npages   int64
	read     int64
	count    int64
}

// NewPackedReader opens a sequential entry reader over the named packed
// file, expecting count entries in total.
func NewPackedReader(r PageSource, name string, c Codec, count int64) (*PackedReader, error) {
	npages, err := r.NumPages(name)
	if err != nil {
		return nil, err
	}
	return &PackedReader{
		reader: r,
		name:   name,
		codec:  c,
		chunk:  make([]byte, packedBufferPages*r.PageSize()),
		npages: npages,
		count:  count,
	}, nil
}

// NextEntry returns the next entry, or io.EOF when exhausted. Payloads are
// freshly allocated and remain valid across calls.
func (r *PackedReader) NextEntry() (Entry, error) {
	if r.read >= r.count {
		return Entry{}, io.EOF
	}
	for !r.viewOK || r.idx >= r.view.Count() {
		if err := r.nextView(); err != nil {
			return Entry{}, err
		}
	}
	e, err := r.view.Entry(r.idx, r.codec)
	if err != nil {
		return Entry{}, err
	}
	r.idx++
	r.read++
	return e, nil
}

// nextView advances to the next page in the chunk, refilling it as needed.
func (r *PackedReader) nextView() error {
	if r.viewOK && r.pageIdx+1 < r.chunkN {
		r.pageIdx++
	} else {
		if r.nextPage >= r.npages {
			return fmt.Errorf("record: packed file %q exhausted after %d of %d entries", r.name, r.read, r.count)
		}
		want := packedBufferPages
		if rem := r.npages - r.nextPage; rem < int64(want) {
			want = int(rem)
		}
		got, err := r.reader.ReadPages(r.name, r.nextPage, want, r.chunk)
		if err != nil {
			return err
		}
		r.nextPage += int64(got)
		r.chunkN = got
		r.pageIdx = 0
	}
	pageSize := r.reader.PageSize()
	page := r.chunk[r.pageIdx*pageSize : (r.pageIdx+1)*pageSize]
	v, err := r.codec.ViewPacked(page)
	if err != nil {
		return err
	}
	r.view = v
	r.viewOK = true
	r.idx = 0
	return nil
}

// Remaining returns how many entries are left to read.
func (r *PackedReader) Remaining() int64 { return r.count - r.read }
