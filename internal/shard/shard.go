// Package shard implements horizontal partitioning of data series indexes:
// a Sharded index hash-partitions series across N independent sub-indexes,
// each on its own simulated disk, and answers queries by fanning probes
// across the shards and merging per-shard answers through the deterministic
// squared-space collectors of package index.
//
// # Placement
//
// Series are placed by a fixed hash of their global ID (Of), so the
// partition is a pure function of (ID, shard count): rebuilding, reopening,
// or replaying an ingest stream always reproduces the same placement, and a
// snapshot only needs to record the shard count to recover the full
// global-to-local ID mapping (Partition).
//
// # Determinism
//
// A sharded search returns results byte-identical to the equivalent
// unsharded index's serial search. Three facts combine to give that
// guarantee:
//
//   - Distances are per-pair: the distance between a query and a series is
//     computed by the same accumulation whichever shard holds the series,
//     so every candidate carries the same distance in both layouts.
//   - Per-shard exact top-k is exhaustive over the shard's subset, so the
//     union of per-shard top-k sets contains the global top-k.
//   - The merge collector's contents are a pure function of the offered
//     candidate set ordered by (distance, global ID) — see index.Collector
//     — so merging shard answers in any order, on any number of workers,
//     selects exactly the global top-k. Exact merges fold the shards'
//     collectors together on their original accumulated squared sums
//     (index.CollSearcher), the very keys the unsharded collector compares,
//     so even sub-ulp tie-breaks at the k boundary are preserved.
//
// Shard-local collectors tie-break on local IDs, but hash placement
// preserves relative order (local IDs are assigned in ascending global-ID
// order), so local and global tie-breaking agree within a shard.
package shard

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/series"
	"repro/internal/storage"
	"repro/internal/zonestat"
)

// Of returns the shard that owns global series ID id among n shards. The
// mapping is a fixed avalanche hash (the 64-bit finalizer of MurmurHash3),
// so placement is stable across processes and uniform even for the
// sequential IDs the facades assign.
func Of(id int64, n int) int {
	x := uint64(id)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return int(x % uint64(n))
}

// Partition assigns global IDs 0..n-1 to shards by Of, returning each
// shard's global IDs in ascending order. partition[s][local] is therefore
// the local-to-global ID mapping of shard s — the inverse of placement —
// which is all a reader needs to reconstruct a sharded index's identity
// space from (n, shards) alone.
func Partition(n int64, shards int) [][]int64 {
	out := make([][]int64, shards)
	for id := int64(0); id < n; id++ {
		s := Of(id, shards)
		out[s] = append(out[s], id)
	}
	return out
}

// Shard is one partition of a sharded index: an independent sub-index on
// its own disk, plus the local-to-global ID mapping of the series it holds.
type Shard struct {
	Index index.Index
	Disk  storage.Backend
	// Reader is the page reader the shard's index reads through — the disk
	// itself, or a buffer pool over it. When it provides statistics
	// (storage.StatsProvider — *bufpool.Pool does), shard-level accounting
	// includes its cache hit/miss counters; nil falls back to Disk.
	Reader storage.PageReader
	IDs    []int64 // IDs[local] = global ID, ascending
}

// IOStats returns the shard's I/O accounting: the reader's cache-aware
// statistics when available, the bare disk's otherwise.
func (sh Shard) IOStats() storage.Stats {
	if sp, ok := sh.Reader.(storage.StatsProvider); ok {
		return sp.Stats()
	}
	return sh.Disk.Stats()
}

// Sharded is a horizontally partitioned index. It implements index.Index
// (and index.RangeSearcher / index.Inserter / the batch interfaces when its
// sub-indexes do), fanning probes across shards on a bounded worker pool
// and merging through deterministic collectors. Like the underlying
// indexes, a Sharded is safe for concurrent searches; inserts require
// external serialization against searches.
type Sharded struct {
	cfg     index.Config
	shards  []Shard
	pool    *parallel.Pool
	planner *index.Planner

	// idsMu guards count and every shard's IDs slice so inserts may run
	// concurrently with searches: readers snapshot a slice header under the
	// read lock (appends never touch an index a snapshot can see), writers
	// append under the write lock.
	idsMu sync.RWMutex
	count int64
}

// New assembles a sharded index from its shards. Sub-indexes should be
// configured with serial internal search pools: the sharded layer owns the
// fan-out (parallelism <= 0 selects GOMAXPROCS), and nesting pools only
// adds scheduling overhead. Every shard must hold exactly len(IDs) series.
func New(cfg index.Config, shards []Shard, parallelism int) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: need at least one shard")
	}
	s := &Sharded{cfg: cfg, shards: shards, pool: parallel.New(parallelism)}
	for i, sh := range shards {
		if sh.Index == nil {
			return nil, fmt.Errorf("shard: shard %d has no index", i)
		}
		if got := sh.Index.Count(); got != int64(len(sh.IDs)) {
			return nil, fmt.Errorf("shard: shard %d holds %d series but maps %d IDs", i, got, len(sh.IDs))
		}
		s.count += int64(len(sh.IDs))
	}
	return s, nil
}

// Name identifies the sharded variant, e.g. "Sharded4xCTreeFull".
func (s *Sharded) Name() string {
	return fmt.Sprintf("Sharded%dx%s", len(s.shards), s.shards[0].Index.Name())
}

// Count returns the total number of indexed series across all shards.
func (s *Sharded) Count() int64 {
	s.idsMu.RLock()
	defer s.idsMu.RUnlock()
	return s.count
}

// idsOf snapshots one shard's local-to-global ID mapping for a probe.
func (s *Sharded) idsOf(i int) []int64 {
	s.idsMu.RLock()
	ids := s.shards[i].IDs
	s.idsMu.RUnlock()
	return ids
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shards exposes the underlying shards (read-only by convention): the
// server uses it for per-shard statistics.
func (s *Sharded) Shards() []Shard { return s.shards }

// Config returns the shared summarization configuration.
func (s *Sharded) Config() index.Config { return s.cfg }

// SetParallelism re-sizes the cross-shard worker pool (n <= 0 selects
// GOMAXPROCS; 1 probes shards serially). Answers are identical at every
// setting. Call only while no search is in flight.
func (s *Sharded) SetParallelism(n int) { s.pool = parallel.New(n) }

// SetPlanner installs the query planner that orders the cross-shard fan-out
// by each shard's best synopsis envelope bound and skips shards that cannot
// improve the current answer. The same *index.Planner is typically also
// installed in every shard's sub-index, so run- and leaf-level planning
// share one plan cache and one set of counters. nil (the default) plans
// with default settings; a planner with Disabled set restores the unplanned
// fan-out. Call only while no search is in flight.
func (s *Sharded) SetPlanner(pl *index.Planner) { s.planner = pl }

// shardBoundSq returns the squared envelope lower bound between the query
// and every series in shard i: the minimum of the shard's per-unit synopsis
// bounds, with window-disjoint units contributing +Inf. A shard whose index
// exposes no synopses — or whose synopses do not cover every entry (an
// unflushed write buffer, a pre-synopsis snapshot) — yields 0: no bound,
// always probe. An empty (or fully out-of-window) shard yields +Inf.
func (s *Sharded) shardBoundSq(i int, q index.Query, ctx *index.SearchCtx) float64 {
	prov, ok := s.shards[i].Index.(zonestat.Provider)
	if !ok {
		return 0
	}
	syns, complete := prov.PlanSynopses()
	if !complete {
		return 0
	}
	bound := math.Inf(1)
	for _, syn := range syns {
		var b float64
		if q.Windowed && syn != nil && !syn.IntersectsWindow(q.MinTS, q.MaxTS) {
			b = math.Inf(1)
		} else {
			b = ctx.P.SynopsisBoundSq(syn)
		}
		if b < bound {
			bound = b
		}
	}
	return bound
}

// IOStats returns the disk statistics aggregated across every shard,
// including buffer-pool hit/miss counters when shards read through one.
func (s *Sharded) IOStats() storage.Stats {
	var agg storage.Stats
	for _, sh := range s.shards {
		agg = agg.Add(sh.IOStats())
	}
	return agg
}

// ShardStats returns each shard's statistics (cache-aware when the shard
// reads through a buffer pool), in shard order.
func (s *Sharded) ShardStats() []storage.Stats {
	out := make([]storage.Stats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.IOStats()
	}
	return out
}

// TotalPages returns the page count summed over every shard's disk.
func (s *Sharded) TotalPages() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.Disk.TotalPages()
	}
	return n
}

// offer folds one shard's rendered results into a collector, translating
// local IDs to global — the fallback for sub-indexes that cannot hand back
// their collector. Re-squaring a reported distance preserves the distance
// value exactly (IEEE-754 sqrt is correctly rounded, so sqrt(fl(d*d)) == d)
// but not necessarily the last ulp of the collector's squared ordering key;
// exact merges therefore prefer exactProbe's collector-to-collector path.
func offer(col *index.Collector, ids []int64, rs []index.Result) {
	for _, r := range rs {
		col.AddSq(ids[r.ID], r.TS, r.Dist*r.Dist)
	}
}

// exactProbe runs one shard's exact top-k and folds it into col under
// global IDs. Sub-indexes exposing their collector (index.CollSearcher —
// CTree and CLSM do) merge on the exact accumulated squared sums, making
// the sharded selection bit-for-bit the unsharded one; others fall back to
// re-squared reported distances. ctx must already be filled for q and is
// used serially; callers own the cross-shard parallelism.
func (s *Sharded) exactProbe(i int, q index.Query, k int, ctx *index.SearchCtx, col *index.Collector) error {
	ids := s.idsOf(i)
	if cs, ok := s.shards[i].Index.(index.CollSearcher); ok {
		sub, err := cs.ExactSearchColl(q, k, ctx)
		if err != nil {
			return err
		}
		sub.Each(func(id, ts int64, distSq float64) {
			col.AddSq(ids[id], ts, distSq)
		})
		return nil
	}
	rs, err := s.shards[i].Index.ExactSearch(q, k)
	if err != nil {
		return err
	}
	offer(col, ids, rs)
	return nil
}

// fanKNN probes every shard with probe and merges the per-shard answers
// into col: serially in shard order with one usable worker, through
// per-worker pooled collector clones otherwise — identical results either
// way, because collection is order-independent.
func (s *Sharded) fanKNN(col *index.Collector, probe func(i int) ([]index.Result, error)) error {
	n := len(s.shards)
	w := s.pool.WorkersFor(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			rs, err := probe(i)
			if err != nil {
				return err
			}
			offer(col, s.idsOf(i), rs)
		}
		return nil
	}
	cols := make([]*index.Collector, w)
	for i := range cols {
		cols[i] = col.PooledClone()
	}
	err := s.pool.ForEach(n, func(worker, i int) error {
		rs, perr := probe(i)
		if perr != nil {
			return perr
		}
		offer(cols[worker], s.idsOf(i), rs)
		return nil
	})
	for _, c := range cols {
		col.MergeRelease(c)
	}
	return err
}

// ExactSearch returns the true k nearest neighbors across all shards:
// every shard answers an exact top-k over its subset (concurrently, each on
// its own disk, each worker with its own pooled search context), and the
// per-shard collectors merge on their exact squared sums. Results are
// byte-identical to the unsharded index's.
func (s *Sharded) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	n := len(s.shards)
	w := s.pool.WorkersFor(n)
	col := index.NewCollector(k)
	pl := s.planner
	if w <= 1 {
		ctx := pl.AcquireCtx(q, s.cfg)
		defer ctx.Release()
		if err := s.exactShards(q, k, ctx, col); err != nil {
			return nil, err
		}
		return col.Results(), nil
	}
	ctxs := make([]*index.SearchCtx, w)
	for i := range ctxs {
		ctxs[i] = pl.AcquireCtx(q, s.cfg)
	}
	cols := make([]*index.Collector, w)
	for i := range cols {
		cols[i] = col.PooledClone()
	}
	var err error
	if pl.Enabled() {
		// Probe shards in ascending bound order; each worker re-checks the
		// next shard's bound against its clone right before probing. A
		// clone's worst is never tighter than the final merged worst, so a
		// late skip can only drop candidates the merge would reject anyway.
		units := ctxs[0].OuterPlanUnits(n)
		for i := range units {
			units[i].BoundSq = s.shardBoundSq(units[i].Idx, q, ctxs[0])
		}
		index.SortPlan(units)
		err = s.pool.ForEach(n, func(worker, i int) error {
			if cols[worker].SkipSq(units[i].BoundSq) {
				pl.NoteSkips(1)
				q.Trace.NoteUnit("shard", units[i].Idx, units[i].BoundSq, true)
				return nil
			}
			q.Trace.NoteUnit("shard", units[i].Idx, units[i].BoundSq, false)
			return s.exactProbe(units[i].Idx, q, k, ctxs[worker], cols[worker])
		})
	} else {
		q.Trace.NoteProbes("shard", int64(n))
		err = s.pool.ForEach(n, func(worker, i int) error {
			return s.exactProbe(i, q, k, ctxs[worker], cols[worker])
		})
	}
	for _, c := range cols {
		col.MergeRelease(c)
	}
	for _, c := range ctxs {
		c.Release()
	}
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// exactShards probes every shard serially into col with one shared context,
// in planned order (skipping bound-dominated shards) when planning is on.
func (s *Sharded) exactShards(q index.Query, k int, ctx *index.SearchCtx, col *index.Collector) error {
	n := len(s.shards)
	pl := s.planner
	if !pl.Enabled() {
		q.Trace.NoteProbes("shard", int64(n))
		for i := 0; i < n; i++ {
			if err := s.exactProbe(i, q, k, ctx, col); err != nil {
				return err
			}
		}
		return nil
	}
	units := ctx.OuterPlanUnits(n)
	for i := range units {
		units[i].BoundSq = s.shardBoundSq(units[i].Idx, q, ctx)
	}
	index.SortPlan(units)
	tr := q.Trace
	for ui, u := range units {
		// Bounds ascend and the collector's worst only tightens, so the
		// first skippable shard ends the fan-out.
		if col.SkipSq(u.BoundSq) {
			pl.NoteSkips(int64(len(units) - ui))
			if tr != nil {
				for _, su := range units[ui:] {
					tr.NoteUnit("shard", su.Idx, su.BoundSq, true)
				}
			}
			break
		}
		tr.NoteUnit("shard", u.Idx, u.BoundSq, false)
		if err := s.exactProbe(u.Idx, q, k, ctx, col); err != nil {
			return err
		}
	}
	return nil
}

// ApproxSearch probes every shard's approximate path and merges the best k.
// Like every approximate search it carries no distance guarantee; it keeps
// the approximate contract (up to k deduplicated results with true
// distances, ordered by (distance, ID)) while paying one shard-local probe
// per shard.
func (s *Sharded) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	col := index.NewCollector(k)
	err := s.fanKNN(col, func(i int) ([]index.Result, error) {
		return s.shards[i].Index.ApproxSearch(q, k)
	})
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// RangeSearch returns every series within eps of the query: shards scan
// concurrently and the per-shard answers (each exhaustive over its subset)
// merge into one deduplicated, distance-sorted result, byte-identical to
// the unsharded answer. Unlike the k-NN heap, re-squaring reported
// distances is exact here: a range collector performs no squared-key
// selection — membership (sqrt(distSq) > eps) and the final ordering
// (Results sorts on (Dist, ID)) are both decided in true-distance space,
// and sqrt(fl(d*d)) == d preserves every reported distance exactly. Every
// shard must implement index.RangeSearcher.
func (s *Sharded) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	col := index.NewRangeCollector(eps)
	n := len(s.shards)
	probe := func(i int, into *index.RangeCollector) error {
		rs, ok := s.shards[i].Index.(index.RangeSearcher)
		if !ok {
			return fmt.Errorf("shard: %s does not support range search", s.shards[i].Index.Name())
		}
		found, err := rs.RangeSearch(q, eps)
		if err != nil {
			return err
		}
		ids := s.idsOf(i)
		for _, r := range found {
			into.AddSq(ids[r.ID], r.TS, r.Dist*r.Dist)
		}
		return nil
	}
	// The epsilon bound is static, so a shard whose envelope bound exceeds
	// it can be dropped before the fan-out — no series in the shard can lie
	// within eps of the query. Pre-filtering is all the skipping a range
	// scan admits (nothing tightens as probes complete).
	targets := make([]int, 0, n)
	pl := s.planner
	if pl.Enabled() {
		ctx := pl.AcquireCtx(q, s.cfg)
		for i := 0; i < n; i++ {
			b := s.shardBoundSq(i, q, ctx)
			if col.PruneSq(b) {
				pl.NoteSkips(1)
				q.Trace.NoteUnit("shard", i, b, true)
				continue
			}
			q.Trace.NoteUnit("shard", i, b, false)
			targets = append(targets, i)
		}
		ctx.Release()
	} else {
		q.Trace.NoteProbes("shard", int64(n))
		for i := 0; i < n; i++ {
			targets = append(targets, i)
		}
	}
	w := s.pool.WorkersFor(len(targets))
	if w <= 1 {
		for _, i := range targets {
			if err := probe(i, col); err != nil {
				return nil, err
			}
		}
		return col.Results(), nil
	}
	cols := make([]*index.RangeCollector, w)
	for i := range cols {
		cols[i] = col.PooledClone()
	}
	err := s.pool.ForEach(len(targets), func(worker, i int) error {
		return probe(targets[i], cols[worker])
	})
	for _, c := range cols {
		col.MergeRelease(c)
	}
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// ExactSearchCtx answers an exact k-NN query probing shards serially with a
// caller-managed context (already filled for q). One table fill serves
// every shard — the shards share a summarization configuration — which is
// what makes batched sharded search cheap: the batch executor parallelizes
// across queries while each query pays a single context.
func (s *Sharded) ExactSearchCtx(q index.Query, k int, ctx *index.SearchCtx) ([]index.Result, error) {
	col := index.NewCollector(k)
	if err := s.exactShards(q, k, ctx, col); err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// ExactSearchBatch answers one exact k-NN query per element of qs,
// pipelined over the cross-shard pool: each worker slot reuses one search
// context across every query it executes, and each query probes all shards
// with that single context. out[i] is byte-identical to ExactSearch(qs[i], k).
func (s *Sharded) ExactSearchBatch(qs []index.Query, k int) ([][]index.Result, error) {
	return index.BatchPlanned(s.planner, s.pool, s.cfg, qs, func(q index.Query, ctx *index.SearchCtx) ([]index.Result, error) {
		return s.ExactSearchCtx(q, k, ctx)
	})
}

// Insert routes one series to its hash-assigned shard. The global ID is the
// current count (insertion order), exactly as an unsharded index would
// assign it; every sub-index must implement index.Inserter.
func (s *Sharded) Insert(ser series.Series, ts int64) error {
	s.idsMu.Lock()
	id := s.count
	s.idsMu.Unlock()
	si := Of(id, len(s.shards))
	ins, ok := s.shards[si].Index.(index.Inserter)
	if !ok {
		return fmt.Errorf("shard: %s does not support inserts", s.shards[si].Index.Name())
	}
	if err := ins.Insert(ser, ts); err != nil {
		return err
	}
	s.idsMu.Lock()
	s.shards[si].IDs = append(s.shards[si].IDs, id)
	s.count++
	s.idsMu.Unlock()
	return nil
}

// NoteInsert records that the caller inserted the series holding the next
// global ID into shard si through the shard's own facade (which keeps
// facade-level raw mirrors in sync before the sub-index sees the series).
// The target must match the hash placement; a mismatch would silently
// corrupt the ID translation, so it panics instead.
func (s *Sharded) NoteInsert(si int) {
	s.idsMu.Lock()
	defer s.idsMu.Unlock()
	id := s.count
	if want := Of(id, len(s.shards)); si != want {
		panic(fmt.Sprintf("shard: NoteInsert(%d) but ID %d belongs to shard %d", si, id, want))
	}
	s.shards[si].IDs = append(s.shards[si].IDs, id)
	s.count++
}

var (
	_ index.Index         = (*Sharded)(nil)
	_ index.RangeSearcher = (*Sharded)(nil)
	_ index.Inserter      = (*Sharded)(nil)
	_ index.CtxSearcher   = (*Sharded)(nil)
	_ index.BatchSearcher = (*Sharded)(nil)
)
