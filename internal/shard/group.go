package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/index"
	"repro/internal/storage"
)

// Group is the node-local portion of a cluster-sharded index: of a logical
// index hash-partitioned into NShards shards (the same Of placement the
// in-process Sharded uses), a Group holds the subset of shards assigned to
// this node. It is the server-side building block of the distributed
// scatter-gather tier: the router asks each node for exact per-shard
// answers over a requested shard list, and a Group answers them with the
// collectors' exact accumulated squared sums under global IDs — so the
// router-side merge reproduces the single-node collector selection
// bit-for-bit, exactly as Sharded's in-process merge does.
//
// A Group also implements index.Index (and index.RangeSearcher) over its
// whole owned subset, so a node's ordinary query endpoints keep working on
// cluster builds; on a fully replicated node (owning every shard) those
// answers equal the cluster-wide ones.
//
// Concurrency matches Sharded: searches may run concurrently with each
// other and with inserts (the ID mappings are RWMutex-guarded and readers
// snapshot slice headers); the sub-indexes' own insert paths require the
// caller to serialize inserts against each other, which the server's
// per-build write lock provides.
type Group struct {
	cfg     index.Config
	nshards int
	owned   []int // ascending shard indices
	shards  map[int]*Shard
	planner *index.Planner

	// idsMu guards every owned shard's IDs slice and lastID so inserts can
	// run concurrently with searches, mirroring Sharded.idsMu.
	idsMu  sync.RWMutex
	lastID map[int]int64 // last appended global ID per owned shard, -1 when empty
	count  int64         // series held locally (sum over owned shards)
}

// NewGroup assembles a node-local shard group. nshards is the cluster-wide
// logical shard count; owned maps shard index -> shard. Every owned shard's
// IDs must be ascending and hash-placed into that shard (Of(id, nshards)),
// and its index must hold exactly len(IDs) series.
func NewGroup(cfg index.Config, nshards int, owned map[int]*Shard) (*Group, error) {
	if nshards < 1 {
		return nil, fmt.Errorf("shard: cluster needs at least one shard, got %d", nshards)
	}
	if len(owned) == 0 {
		return nil, fmt.Errorf("shard: group owns no shards")
	}
	g := &Group{
		cfg:     cfg,
		nshards: nshards,
		shards:  make(map[int]*Shard, len(owned)),
		lastID:  make(map[int]int64, len(owned)),
	}
	for si, sh := range owned {
		if si < 0 || si >= nshards {
			return nil, fmt.Errorf("shard: owned shard %d outside [0, %d)", si, nshards)
		}
		if sh == nil || sh.Index == nil {
			return nil, fmt.Errorf("shard: owned shard %d has no index", si)
		}
		if got := sh.Index.Count(); got != int64(len(sh.IDs)) {
			return nil, fmt.Errorf("shard: shard %d holds %d series but maps %d IDs", si, got, len(sh.IDs))
		}
		last := int64(-1)
		for _, id := range sh.IDs {
			if id <= last {
				return nil, fmt.Errorf("shard: shard %d IDs not ascending at %d", si, id)
			}
			if Of(id, nshards) != si {
				return nil, fmt.Errorf("shard: ID %d hashed to shard %d, held by %d", id, Of(id, nshards), si)
			}
			last = id
		}
		g.shards[si] = sh
		g.lastID[si] = last
		g.owned = append(g.owned, si)
		g.count += int64(len(sh.IDs))
	}
	sort.Ints(g.owned)
	return g, nil
}

// NShards returns the cluster-wide logical shard count.
func (g *Group) NShards() int { return g.nshards }

// Owned returns the shard indices this group holds, ascending. The slice is
// owned by the group; callers must not mutate it.
func (g *Group) Owned() []int { return g.owned }

// Owns reports whether the group holds shard si.
func (g *Group) Owns(si int) bool { _, ok := g.shards[si]; return ok }

// Shard returns the owned shard si, or nil.
func (g *Group) Shard(si int) *Shard { return g.shards[si] }

// SetPlanner installs the query planner shared by the group's probe paths
// (typically the same planner installed in every sub-index, so plan caching
// and skip counters are shared). Call only while no search is in flight.
func (g *Group) SetPlanner(pl *index.Planner) { g.planner = pl }

// Name identifies the group, e.g. "Group2of4xCTreeFull".
func (g *Group) Name() string {
	return fmt.Sprintf("Group%dof%dx%s", len(g.owned), g.nshards, g.shards[g.owned[0]].Index.Name())
}

// Count returns the number of series held locally (owned shards only — not
// the cluster-wide count).
func (g *Group) Count() int64 {
	g.idsMu.RLock()
	defer g.idsMu.RUnlock()
	return g.count
}

// MaxID returns the largest global ID held locally, or -1 when empty. The
// router derives the cluster-wide series count (max over nodes + 1) from it
// at startup: global IDs are dense, so any node owning at least one shard
// has seen an ID within nshards of the global maximum.
func (g *Group) MaxID() int64 {
	g.idsMu.RLock()
	defer g.idsMu.RUnlock()
	m := int64(-1)
	for _, si := range g.owned {
		if ids := g.shards[si].IDs; len(ids) > 0 && ids[len(ids)-1] > m {
			m = ids[len(ids)-1]
		}
	}
	return m
}

// idsOf snapshots one owned shard's local-to-global mapping for a probe.
func (g *Group) idsOf(si int) []int64 {
	g.idsMu.RLock()
	ids := g.shards[si].IDs
	g.idsMu.RUnlock()
	return ids
}

// resolve maps a requested shard list to owned shards, rejecting requests
// for shards this node does not hold (a router/topology mismatch the node
// must surface, not silently answer incompletely). nil requests every owned
// shard.
func (g *Group) resolve(reqs []int) ([]int, error) {
	if reqs == nil {
		return g.owned, nil
	}
	for _, si := range reqs {
		if !g.Owns(si) {
			return nil, fmt.Errorf("shard: node does not own shard %d (owned %v of %d)", si, g.owned, g.nshards)
		}
	}
	return reqs, nil
}

// exactProbe mirrors Sharded.exactProbe: one shard's exact top-k folded
// into col under global IDs, on the exact accumulated squared sums when the
// sub-index exposes its collector.
func (g *Group) exactProbe(si int, q index.Query, k int, ctx *index.SearchCtx, col *index.Collector) error {
	ids := g.idsOf(si)
	sub := g.shards[si].Index
	if cs, ok := sub.(index.CollSearcher); ok {
		c, err := cs.ExactSearchColl(q, k, ctx)
		if err != nil {
			return err
		}
		c.Each(func(id, ts int64, distSq float64) {
			col.AddSq(ids[id], ts, distSq)
		})
		return nil
	}
	rs, err := sub.ExactSearch(q, k)
	if err != nil {
		return err
	}
	for _, r := range rs {
		col.AddSq(ids[r.ID], r.TS, r.Dist*r.Dist)
	}
	return nil
}

// ExactSearchShards answers an exact k-NN over the requested shard subset
// (nil = all owned), returning the collector itself: its contents are the k
// best (squared distance, global ID) pairs over the union of the requested
// shards' series, with the exact accumulated squared sums intact for a
// higher-level merge. Probes run serially with one pooled context — node
// throughput comes from concurrent requests, and serial probing keeps the
// distributed answer trivially byte-identical to the in-process one.
func (g *Group) ExactSearchShards(q index.Query, k int, reqs []int) (*index.Collector, error) {
	shards, err := g.resolve(reqs)
	if err != nil {
		return nil, err
	}
	ctx := g.planner.AcquireCtx(q, g.cfg)
	defer ctx.Release()
	col := index.NewCollector(k)
	for _, si := range shards {
		if err := g.exactProbe(si, q, k, ctx, col); err != nil {
			return nil, err
		}
	}
	return col, nil
}

// RangeSearchShards answers a range (epsilon) query over the requested
// shard subset (nil = all owned), returning the collector with every
// qualifying series under its global ID. Re-squaring reported distances is
// exact on the range path (see Sharded.RangeSearch), so merging range
// collectors across nodes preserves every distance bit-for-bit.
func (g *Group) RangeSearchShards(q index.Query, eps float64, reqs []int) (*index.RangeCollector, error) {
	shards, err := g.resolve(reqs)
	if err != nil {
		return nil, err
	}
	col := index.NewRangeCollector(eps)
	for _, si := range shards {
		rs, ok := g.shards[si].Index.(index.RangeSearcher)
		if !ok {
			return nil, fmt.Errorf("shard: %s does not support range search", g.shards[si].Index.Name())
		}
		found, err := rs.RangeSearch(q, eps)
		if err != nil {
			return nil, err
		}
		ids := g.idsOf(si)
		for _, r := range found {
			col.AddSq(ids[r.ID], r.TS, r.Dist*r.Dist)
		}
	}
	return col, nil
}

// ApproxSearchShards answers an approximate k-NN over the requested shard
// subset (nil = all owned): per-shard approximate probes merged on reported
// distances. Like every approximate search it carries no distance
// guarantee, so distributed approximate answers match the merge contract
// (up to k deduplicated results ordered by (distance, ID)) rather than
// being byte-identical across topologies.
func (g *Group) ApproxSearchShards(q index.Query, k int, reqs []int) (*index.Collector, error) {
	shards, err := g.resolve(reqs)
	if err != nil {
		return nil, err
	}
	col := index.NewCollector(k)
	for _, si := range shards {
		rs, err := g.shards[si].Index.ApproxSearch(q, k)
		if err != nil {
			return nil, err
		}
		ids := g.idsOf(si)
		for _, r := range rs {
			col.AddSq(ids[r.ID], r.TS, r.Dist*r.Dist)
		}
	}
	return col, nil
}

// ExactSearch answers an exact k-NN over every owned shard — the node-local
// view of the cluster index (index.Index).
func (g *Group) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	col, err := g.ExactSearchShards(q, k, nil)
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// ApproxSearch answers an approximate k-NN over every owned shard.
func (g *Group) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	col, err := g.ApproxSearchShards(q, k, nil)
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// RangeSearch answers a range query over every owned shard
// (index.RangeSearcher).
func (g *Group) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	col, err := g.RangeSearchShards(q, eps, nil)
	if err != nil {
		return nil, err
	}
	return col.Results(), nil
}

// PrepareInsert validates that global ID id may be appended next: the node
// must own its hash-assigned shard, and id must be exactly the shard's next
// expected ID. Global IDs are dense (the router assigns them sequentially)
// and placement is the pure function Of, so after last appended ID L the
// shard's next ID is the smallest id > L hashing to it — computable
// locally, with no knowledge of other shards' progress. The exactness is
// what makes replica failover safe: a replica that missed a write (it was
// down, or a previous batch failed on it) sees a later ID than it expects
// and rejects the insert instead of silently diverging, so the router marks
// it stale rather than serving wrong answers from it.
func (g *Group) PrepareInsert(id int64) (int, error) {
	si := Of(id, g.nshards)
	if !g.Owns(si) {
		return 0, fmt.Errorf("shard: ID %d belongs to shard %d, not owned (owned %v)", id, si, g.owned)
	}
	g.idsMu.RLock()
	last := g.lastID[si]
	g.idsMu.RUnlock()
	if id <= last {
		return 0, fmt.Errorf("shard: ID %d not ascending on shard %d (last %d)", id, si, last)
	}
	if next := nextIDFor(si, last, g.nshards); next >= 0 && id != next {
		return 0, fmt.Errorf("shard: ID %d skips shard %d's next expected ID %d (last %d): this replica missed a write",
			id, si, next, last)
	}
	return si, nil
}

// nextIDFor returns the smallest global ID greater than last that hash-
// places into shard si — the only ID a dense ID assignment can send to the
// shard next. Returns -1 when the scan bound is exceeded (the probability
// of a gap that long is negligible; callers then skip the exactness check
// rather than reject a valid insert).
func nextIDFor(si int, last int64, nshards int) int64 {
	bound := int64(nshards) * 64
	if bound < 1<<16 {
		bound = 1 << 16
	}
	for id := last + 1; id <= last+bound; id++ {
		if Of(id, nshards) == si {
			return id
		}
	}
	return -1
}

// NoteInsert records that the caller appended the series with global ID id
// to shard si through the shard's own build (which keeps raw mirrors in
// sync before the sub-index sees the series). Callers must have validated
// the append with PrepareInsert under the same external insert lock.
func (g *Group) NoteInsert(si int, id int64) {
	g.idsMu.Lock()
	defer g.idsMu.Unlock()
	g.shards[si].IDs = append(g.shards[si].IDs, id)
	g.lastID[si] = id
	g.count++
}

// IOStats returns disk statistics aggregated over every owned shard,
// cache-aware when shards read through a buffer pool.
func (g *Group) IOStats() storage.Stats {
	var agg storage.Stats
	for _, si := range g.owned {
		agg = agg.Add(g.shards[si].IOStats())
	}
	return agg
}

// ShardStats returns each owned shard's statistics, in ascending shard
// order (matching Owned).
func (g *Group) ShardStats() []storage.Stats {
	out := make([]storage.Stats, 0, len(g.owned))
	for _, si := range g.owned {
		out = append(out, g.shards[si].IOStats())
	}
	return out
}

// index.Inserter is deliberately not implemented: cluster inserts carry
// explicit router-assigned global IDs (PrepareInsert/NoteInsert around the
// sub-build's own ingest), and a plain Insert assigning the local count as
// the ID would corrupt the global ID space.
var (
	_ index.Index         = (*Group)(nil)
	_ index.RangeSearcher = (*Group)(nil)
)
