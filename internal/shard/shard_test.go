package shard_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/shard"
	"repro/internal/workload"
)

func TestOfIsStableAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64} {
		counts := make([]int, n)
		for id := int64(0); id < 10000; id++ {
			s := shard.Of(id, n)
			if s < 0 || s >= n {
				t.Fatalf("Of(%d, %d) = %d out of range", id, n, s)
			}
			if again := shard.Of(id, n); again != s {
				t.Fatalf("Of(%d, %d) unstable: %d then %d", id, n, s, again)
			}
			counts[s]++
		}
		// The avalanche hash should spread sequential IDs roughly evenly:
		// every shard within 3x of the fair share is ample slack.
		fair := 10000 / n
		for s, c := range counts {
			if c < fair/3 || c > fair*3 {
				t.Fatalf("shard %d of %d holds %d of 10000 (fair share %d): placement is skewed", s, n, c, fair)
			}
		}
	}
}

func TestPartitionIsPlacementInverse(t *testing.T) {
	const n = 5000
	for _, shards := range []int{1, 2, 4, 7} {
		part := shard.Partition(n, shards)
		if len(part) != shards {
			t.Fatalf("Partition returned %d shards, want %d", len(part), shards)
		}
		seen := map[int64]bool{}
		for s, ids := range part {
			for i, id := range ids {
				if shard.Of(id, shards) != s {
					t.Fatalf("Partition placed ID %d on shard %d but Of says %d", id, s, shard.Of(id, shards))
				}
				if i > 0 && ids[i-1] >= id {
					t.Fatalf("shard %d IDs not ascending: %d then %d", s, ids[i-1], id)
				}
				if seen[id] {
					t.Fatalf("ID %d placed twice", id)
				}
				seen[id] = true
			}
		}
		if len(seen) != n {
			t.Fatalf("Partition covered %d of %d IDs", len(seen), n)
		}
	}
}

// TestWorkloadShardedEquivalence drives the sharding layer exactly as the
// server does — through workload.BuildVariant — and requires exact and
// range results byte-identical to the unsharded build for tree and LSM
// variants at several shard counts.
func TestWorkloadShardedEquivalence(t *testing.T) {
	sc := workload.Scale{SeriesLen: 64, Segments: 8, Bits: 6, Seed: 21}
	cfg := index.Config{SeriesLen: 64, Segments: 8, Bits: 6}
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 2500, Len: 64, FracEvent: 0.05, Seed: sc.Seed})
	rng := rand.New(rand.NewSource(22))
	queries := make([]index.Query, 8)
	for i := range queries {
		queries[i] = index.NewQuery(gen.RandomWalk(rng, 64), cfg)
	}
	for _, variant := range []string{"CTreeFull", "CLSM"} {
		base, err := workload.BuildVariant(variant, ds, cfg, workload.BuildOptions{RawInMemory: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 2, 4, 7} {
			t.Run(fmt.Sprintf("%s/shards=%d", variant, shards), func(t *testing.T) {
				b, err := workload.BuildVariant(variant, ds, cfg, workload.BuildOptions{
					Shards: shards, Parallelism: 2, RawInMemory: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if shards > 1 {
					// Shards <= 1 deliberately builds the plain index;
					// the wrapper only appears at real shard counts.
					sh, ok := b.Index.(*shard.Sharded)
					if !ok {
						t.Fatalf("sharded build produced %T", b.Index)
					}
					if sh.NumShards() != shards {
						t.Fatalf("built %d shards, want %d", sh.NumShards(), shards)
					}
					if len(b.ShardDisks) != shards {
						t.Fatalf("Built.ShardDisks has %d entries, want %d", len(b.ShardDisks), shards)
					}
				}
				if b.Index.Count() != base.Index.Count() {
					t.Fatalf("sharded count %d, unsharded %d", b.Index.Count(), base.Index.Count())
				}
				for qi, q := range queries {
					want, err := base.Index.ExactSearch(q, 5)
					if err != nil {
						t.Fatal(err)
					}
					got, err := b.Index.ExactSearch(q, 5)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d: exact diverges\n got %+v\nwant %+v", qi, got, want)
					}
					eps := want[2].Dist
					wantR, err := base.Index.(index.RangeSearcher).RangeSearch(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					gotR, err := b.Index.(index.RangeSearcher).RangeSearch(q, eps)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotR, wantR) {
						t.Fatalf("query %d: range diverges\n got %+v\nwant %+v", qi, gotR, wantR)
					}
				}
				// The batch path through the workload-built index (sharded
				// wrapper at shards > 1, the plain tree/LSM batch at 1).
				batch, err := b.Index.(index.BatchSearcher).ExactSearchBatch(queries, 5)
				if err != nil {
					t.Fatal(err)
				}
				for qi, q := range queries {
					want, err := b.Index.ExactSearch(q, 5)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(batch[qi], want) {
						t.Fatalf("query %d: batch diverges from single", qi)
					}
				}
			})
		}
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := shard.New(index.Config{}, nil, 1); err == nil {
		t.Fatal("New accepted zero shards")
	}
	cfg := index.Config{SeriesLen: 64, Segments: 8, Bits: 6}
	ds, _ := gen.Astronomy(gen.AstronomyConfig{N: 100, Len: 64, FracEvent: 0.05, Seed: 1})
	b, err := workload.BuildVariant("CTreeFull", ds, cfg, workload.BuildOptions{RawInMemory: true})
	if err != nil {
		t.Fatal(err)
	}
	// A mapping whose length disagrees with the sub-index count must be
	// rejected: it would silently mistranslate IDs.
	_, err = shard.New(cfg, []shard.Shard{{Index: b.Index, Disk: b.Disk, IDs: make([]int64, 7)}}, 1)
	if err == nil {
		t.Fatal("New accepted a shard whose ID map disagrees with its index count")
	}
}
