package wal

import (
	"fmt"
	"testing"

	"repro/internal/fsx"
)

// crashOpen opens a log on the crash-simulating filesystem.
func crashOpen(t *testing.T, mem *fsx.MemFS, segBytes int64) *Log {
	t.Helper()
	l, err := Open(Options{Dir: "wal", SegmentBytes: segBytes, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// replayAll collects every retained payload.
func replayAll(t *testing.T, l *Log) map[int64]string {
	t.Helper()
	got := make(map[int64]string)
	if err := l.Replay(0, func(lsn int64, payload []byte) error {
		got[lsn] = string(payload)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestCrashRecoveryRotatedSegmentSurvives is the regression test for the
// missing directory fsync on rotation: a synced, acknowledged batch living
// in a freshly rotated segment must survive a crash. Before the fix the
// segment's dirent was never fsynced, so the whole segment — synced
// contents and all — could vanish with the directory entry.
func TestCrashRecoveryRotatedSegmentSurvives(t *testing.T) {
	mem := fsx.NewMemFS()
	// Tiny segments force a rotation every couple of appends.
	l := crashOpen(t, mem, 64)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("entry-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if s := l.Stats(); s.Rotations == 0 {
		t.Fatalf("test needs rotations to exercise the bug; got %+v", s)
	}

	mem.Crash()
	l2 := crashOpen(t, mem, 64)
	got := replayAll(t, l2)
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("entry-%02d", i)
		if got[int64(i)] != want {
			t.Fatalf("lsn %d lost or wrong after crash: %q, want %q (have %d entries)", i, got[int64(i)], want, len(got))
		}
	}
	if next := l2.NextLSN(); next != n {
		t.Fatalf("NextLSN after crash = %d, want %d", next, n)
	}
}

// TestCrashRecoveryTruncationIsDurable covers the other half of the dirent
// bug: segments removed by TruncateThrough must stay removed after a
// crash. (Resurrected segments form a clean prefix and reopen fine, but
// they would re-replay entries the checkpoint already covers.)
func TestCrashRecoveryTruncationIsDurable(t *testing.T) {
	mem := fsx.NewMemFS()
	l := crashOpen(t, mem, 64)
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("entry-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(9); err != nil {
		t.Fatal(err)
	}
	first := l.FirstLSN()
	if first == 0 {
		t.Fatal("checkpoint removed nothing; test needs truncation")
	}

	mem.Crash()
	l2 := crashOpen(t, mem, 64)
	if got := l2.FirstLSN(); got != first {
		t.Fatalf("FirstLSN after crash = %d, want %d (truncated segments resurrected)", got, first)
	}
	got := replayAll(t, l2)
	for lsn := range got {
		if lsn < first {
			t.Fatalf("replayed checkpoint-covered lsn %d after crash", lsn)
		}
	}
	for lsn := first; lsn < 20; lsn++ {
		if want := fmt.Sprintf("entry-%02d", lsn); got[lsn] != want {
			t.Fatalf("lsn %d = %q, want %q", lsn, got[lsn], want)
		}
	}
}

// TestCrashRecoveryUnsyncedTailLost documents the group-commit contract on
// the crash filesystem: appends past the last sync may be lost, but
// everything synced replays, and the log reopens cleanly.
func TestCrashRecoveryUnsyncedTailLost(t *testing.T) {
	mem := fsx.NewMemFS()
	l, err := Open(Options{Dir: "wal", SyncEvery: 1 << 30, SyncInterval: 0, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("durable-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("volatile-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	mem.Crash()
	l2, err := Open(Options{Dir: "wal", FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, l2)
	if len(got) != 5 {
		t.Fatalf("replayed %d entries, want exactly the 5 synced ones: %v", len(got), got)
	}
	for i := int64(0); i < 5; i++ {
		if want := fmt.Sprintf("durable-%d", i); got[i] != want {
			t.Fatalf("lsn %d = %q, want %q", i, got[i], want)
		}
	}
	// And the reopened log appends from where durability actually reached.
	if next := l2.NextLSN(); next != 5 {
		t.Fatalf("NextLSN = %d, want 5", next)
	}
}

// TestWALFaultInjectionSurfacesErrors: fsync and write failures must
// surface to the caller (so an ack is never issued), not be swallowed.
func TestWALFaultInjectionSurfacesErrors(t *testing.T) {
	mem := fsx.NewMemFS()
	l := crashOpen(t, mem, DefaultSegmentBytes)
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	mem.FailAfter(0, nil)
	if _, err := l.Append([]byte("doomed")); err == nil {
		// Strict mode syncs inside Append, so the injected fault must fail it.
		t.Fatal("append with failing fsync succeeded; acknowledgement would be a lie")
	}
	mem.SetFaultHook(nil)
}
