// Package wal implements the durable write-ahead log beneath the ingest
// path: a segmented, CRC-framed, append-only log on the host filesystem.
// Every acknowledged insert is first appended here, so the in-memory write
// buffer of an LSM — the only index state that is not already in an on-disk
// run — survives a crash and is replayed on reopen.
//
// # Format
//
// The log is a directory of segment files named wal-<firstLSN>.seg. Each
// segment holds consecutive frames:
//
//	length  u32  payload length in bytes
//	crc     u32  CRC-32C (Castagnoli) of the payload
//	payload length bytes
//
// Log sequence numbers (LSNs) are assigned densely in append order starting
// at 0; a frame's LSN is implicit in its position (segment first LSN plus
// frame index), so the format carries no per-frame LSN and torn frames
// cannot masquerade as gaps.
//
// # Group commit
//
// Append buffers frames in user space and fsyncs on a configurable cadence:
// every SyncEvery appends, whenever SyncInterval has elapsed since the last
// sync, or on an explicit Sync. With both knobs zero every append syncs
// before returning — the strict-durability setting. Durability therefore
// means: an insert is crash-safe once the log has synced past its LSN; the
// batched modes trade a bounded window of recent acknowledgements for
// ingest throughput, exactly the group-commit trade databases make.
//
// # Recovery and truncation
//
// Replay streams frames in LSN order. A torn tail — a frame whose header or
// payload is cut short, or whose CRC mismatches, at the end of the final
// segment — ends replay cleanly: it is the expected signature of a crash
// mid-write. The same damage anywhere else is corruption and fails replay.
// Open tolerates a torn tail the same way and continues appending after the
// last whole frame. TruncateThrough removes segments made obsolete once
// their entries are durable elsewhere (flushed into an on-disk run, or
// covered by a snapshot checkpoint — the owner decides which).
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fsx"
)

const (
	frameHeader = 8 // u32 length + u32 crc
	segPrefix   = "wal-"
	segSuffix   = ".seg"

	// DefaultSegmentBytes rotates segments at 4 MiB — small enough that
	// truncation reclaims space promptly, large enough that rotation cost
	// vanishes.
	DefaultSegmentBytes = 4 << 20
	// MaxFrameBytes bounds one payload; a length field beyond it is treated
	// as a torn/corrupt frame rather than an allocation request.
	MaxFrameBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a Log.
type Options struct {
	// Dir is the directory holding the segment files. Required; created if
	// missing.
	Dir string
	// SegmentBytes rotates the active segment once it exceeds this size.
	// Default DefaultSegmentBytes.
	SegmentBytes int64
	// SyncEvery fsyncs after this many unsynced appends. 0 with a zero
	// SyncInterval means sync on every append (strict durability).
	SyncEvery int
	// SyncInterval fsyncs when this much time has passed since the last
	// sync, checked on append. 0 disables the timer.
	SyncInterval time.Duration
	// FS overrides the host filesystem; nil means the real one. Crash
	// tests inject fsx.MemFS here.
	FS fsx.FS
}

// BatchedOptions returns the standard group-commit policy for dir: sync
// every 64 appends or 2ms, whichever comes first. Every layer that offers
// "batched" durability derives it from here, so the trade stays uniform
// (and tunable in one place).
func BatchedOptions(dir string) Options {
	return Options{Dir: dir, SyncEvery: 64, SyncInterval: 2 * time.Millisecond}
}

// SyncOptions returns the strict policy for dir: fsync on every append.
func SyncOptions(dir string) Options {
	return Options{Dir: dir}
}

// Stats is a snapshot of the log's accounting, surfaced by /api/stats.
type Stats struct {
	Segments      int   // live segment files (active included)
	FirstLSN      int64 // oldest retained LSN (== NextLSN when empty)
	NextLSN       int64 // LSN the next append will receive
	Appends       int64 // frames appended this session
	Syncs         int64 // fsyncs issued this session
	Rotations     int64 // segment rotations this session
	Truncated     int64 // segments removed by TruncateThrough this session
	BytesAppended int64 // payload+framing bytes appended this session
}

// segment is one on-disk segment file.
type segment struct {
	path  string
	first int64 // LSN of its first frame
	count int64 // whole frames it holds
	size  int64 // bytes of whole frames (torn tails excluded)
}

func (s *segment) last() int64 { return s.first + s.count - 1 }

// Log is a segmented write-ahead log. All methods are safe for concurrent
// use; appends are serialized internally, which is what lets a batched sync
// cover every append since the previous one (group commit).
type Log struct {
	opts Options
	fs   fsx.FS

	mu       sync.Mutex
	segs     []*segment // in LSN order; last is active
	active   fsx.File   // open for append
	unsynced int        // appends since last fsync
	lastSync time.Time
	closed   bool

	appends, syncs, rotations, truncated, bytes int64
}

// Open opens (or creates) the log in opts.Dir, scanning existing segments
// to recover the next LSN. A torn final frame is truncated away so the log
// appends after the last whole frame.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: Dir is required")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	fsys := fsx.OrOS(opts.FS)
	if err := fsys.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", opts.Dir, err)
	}
	l := &Log{opts: opts, fs: fsys, lastSync: time.Now()}
	names, err := listSegments(fsys, opts.Dir)
	if err != nil {
		return nil, err
	}
	for i, p := range names {
		seg, terr := scanSegment(fsys, p, i == len(names)-1)
		if terr != nil {
			return nil, terr
		}
		if len(l.segs) > 0 {
			if prev := l.segs[len(l.segs)-1]; seg.first != prev.first+prev.count {
				return nil, fmt.Errorf("wal: segment %s starts at LSN %d, want %d (gap or misordered truncation)",
					filepath.Base(seg.path), seg.first, prev.first+prev.count)
			}
		}
		l.segs = append(l.segs, seg)
	}
	if len(l.segs) == 0 {
		if err := l.rotateLocked(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Reopen the last segment for appending, dropping any torn tail so the
	// next frame lands right after the last whole one.
	tail := l.segs[len(l.segs)-1]
	f, err := fsys.OpenFile(tail.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(tail.size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(tail.size, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.active = f
	return l, nil
}

// listSegments returns the segment paths in LSN order.
func listSegments(fsys fsx.FS, dir string) ([]string, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, segPrefix) && strings.HasSuffix(n, segSuffix) {
			names = append(names, filepath.Join(dir, n))
		}
	}
	sort.Slice(names, func(i, j int) bool {
		return segFirstLSN(names[i]) < segFirstLSN(names[j])
	})
	return names, nil
}

// segFirstLSN parses the first LSN out of a segment file name; malformed
// names sort first and fail scanSegment loudly.
func segFirstLSN(path string) int64 {
	n := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), segPrefix), segSuffix)
	v, err := strconv.ParseInt(n, 16, 64)
	if err != nil {
		return -1
	}
	return v
}

// scanSegment walks a segment's frames, returning its metadata. A torn tail
// is tolerated only when isLast; anywhere else it is corruption.
func scanSegment(fsys fsx.FS, path string, isLast bool) (*segment, error) {
	first := segFirstLSN(path)
	if first < 0 {
		return nil, fmt.Errorf("wal: malformed segment name %q", filepath.Base(path))
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	seg := &segment{path: path, first: first}
	off := int64(0)
	for {
		n, ok := nextFrame(data[off:])
		if !ok {
			if int(off) != len(data) && !isLast {
				return nil, fmt.Errorf("wal: corrupt frame at %s+%d (not the final segment)", filepath.Base(path), off)
			}
			break // clean end, or a torn tail of the final segment
		}
		off += n
		seg.count++
	}
	seg.size = off
	return seg, nil
}

// nextFrame validates the frame at the start of buf, returning its total
// length. ok is false when the frame is incomplete or its CRC mismatches.
func nextFrame(buf []byte) (int64, bool) {
	if len(buf) < frameHeader {
		return 0, false
	}
	length := binary.LittleEndian.Uint32(buf)
	if length > MaxFrameBytes || int(length) > len(buf)-frameHeader {
		return 0, false
	}
	crc := binary.LittleEndian.Uint32(buf[4:])
	payload := buf[frameHeader : frameHeader+int(length)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return 0, false
	}
	return frameHeader + int64(length), true
}

// rotateLocked opens a fresh active segment whose first LSN is firstLSN.
// Callers hold l.mu.
func (l *Log) rotateLocked(firstLSN int64) error {
	if l.active != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return err
		}
		l.active = nil
		l.rotations++
	}
	path := filepath.Join(l.opts.Dir, fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix))
	f, err := l.fs.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	// Make the segment's dirent durable before anything is appended to it:
	// a synced, acknowledged batch in a freshly rotated segment must not be
	// able to vanish with an unsynced directory entry on crash.
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		l.fs.Remove(path)
		return err
	}
	l.active = f
	l.segs = append(l.segs, &segment{path: path, first: firstLSN})
	return nil
}

// nextLSNLocked returns the LSN the next append receives.
func (l *Log) nextLSNLocked() int64 {
	if len(l.segs) == 0 {
		return 0
	}
	tail := l.segs[len(l.segs)-1]
	return tail.first + tail.count
}

// Append appends one payload, returning its LSN. Durability follows the
// group-commit policy; call Sync (or configure strict syncing) when the
// caller must not acknowledge past the returned LSN before it is on disk.
func (l *Log) Append(payload []byte) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(payload)
}

// AppendBatch appends every payload and syncs once at the end — the batch
// ingest path: one fsync acknowledges the whole batch.
func (l *Log) AppendBatch(payloads [][]byte) (first int64, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	first = l.nextLSNLocked()
	for _, p := range payloads {
		if _, err = l.appendLocked(p); err != nil {
			return first, err
		}
	}
	return first, l.syncLocked()
}

func (l *Log) appendLocked(payload []byte) (int64, error) {
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if len(payload) > MaxFrameBytes {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds frame limit %d", len(payload), MaxFrameBytes)
	}
	tail := l.segs[len(l.segs)-1]
	if tail.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(tail.first + tail.count); err != nil {
			return 0, err
		}
		tail = l.segs[len(l.segs)-1]
	}
	lsn := tail.first + tail.count
	var head [frameHeader]byte
	binary.LittleEndian.PutUint32(head[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:], crc32.Checksum(payload, castagnoli))
	if _, err := l.active.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := l.active.Write(payload); err != nil {
		return 0, err
	}
	tail.count++
	tail.size += frameHeader + int64(len(payload))
	l.appends++
	l.bytes += frameHeader + int64(len(payload))
	l.unsynced++
	if l.shouldSyncLocked() {
		return lsn, l.syncLocked()
	}
	return lsn, nil
}

// shouldSyncLocked applies the group-commit policy.
func (l *Log) shouldSyncLocked() bool {
	if l.opts.SyncEvery <= 0 && l.opts.SyncInterval <= 0 {
		return true // strict: every append syncs
	}
	if l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery {
		return true
	}
	return l.opts.SyncInterval > 0 && time.Since(l.lastSync) >= l.opts.SyncInterval
}

// Sync flushes the active segment to stable storage. Every LSN returned by
// a completed Append is durable once Sync returns.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if l.unsynced == 0 {
		l.lastSync = time.Now()
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.unsynced = 0
	l.lastSync = time.Now()
	l.syncs++
	return nil
}

// NextLSN returns the LSN the next append will receive (== total appends
// ever, since LSNs are dense from 0).
func (l *Log) NextLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSNLocked()
}

// FirstLSN returns the oldest retained LSN; NextLSN when nothing is
// retained.
func (l *Log) FirstLSN() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].first
}

// Replay streams every retained frame with LSN >= from, in order. A torn
// tail on the final segment ends replay cleanly; corruption elsewhere is an
// error. fn must not call back into the log.
func (l *Log) Replay(from int64, fn func(lsn int64, payload []byte) error) error {
	l.mu.Lock()
	if err := l.syncNoClosedLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	segs := make([]*segment, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()
	for i, seg := range segs {
		if seg.last() < from {
			continue
		}
		data, err := l.fs.ReadFile(seg.path)
		if err != nil {
			return err
		}
		off, lsn := int64(0), seg.first
		for {
			n, ok := nextFrame(data[off:])
			if !ok {
				if int(off) != len(data) && i != len(segs)-1 {
					return fmt.Errorf("wal: corrupt frame at %s+%d", filepath.Base(seg.path), off)
				}
				break
			}
			if lsn >= from {
				if err := fn(lsn, data[off+frameHeader:off+n]); err != nil {
					return err
				}
			}
			off += n
			lsn++
		}
	}
	return nil
}

// syncNoClosedLocked syncs when open; replay of a closed log reads what was
// already flushed by Close.
func (l *Log) syncNoClosedLocked() error {
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// TruncateThrough removes whole segments every frame of which has LSN <=
// lsn. The active segment is never removed — rotation bounds how promptly
// space is reclaimed. The caller asserts those entries are durable
// elsewhere (an on-disk run behind a persisted manifest, or a snapshot
// checkpoint).
func (l *Log) TruncateThrough(lsn int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncateLocked(lsn)
}

// Checkpoint is TruncateThrough for snapshot checkpoints: when the active
// segment itself is fully covered it is first rotated out (leaving an
// empty active segment), so a checkpoint of the whole log reclaims all of
// it rather than leaving the covered tail segment in place.
func (l *Log) Checkpoint(lsn int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	tail := l.segs[len(l.segs)-1]
	if tail.count > 0 && tail.last() <= lsn {
		if err := l.rotateLocked(tail.first + tail.count); err != nil {
			return err
		}
	}
	return l.truncateLocked(lsn)
}

func (l *Log) truncateLocked(lsn int64) error {
	kept := l.segs[:0]
	removed := false
	for i, seg := range l.segs {
		if i < len(l.segs)-1 && seg.last() <= lsn {
			if err := l.fs.Remove(seg.path); err != nil {
				// Keep the log consistent: stop at the first failure.
				l.segs = append(kept, l.segs[i:]...)
				if removed {
					l.fs.SyncDir(l.opts.Dir)
				}
				return err
			}
			removed = true
			l.truncated++
			continue
		}
		kept = append(kept, seg)
	}
	l.segs = kept
	if removed {
		// Make the removals durable. Without this a crash can resurrect a
		// truncated segment; because removal runs oldest-first, resurrected
		// segments always form a prefix and reopen cleanly, but they would
		// replay entries the checkpoint already covers.
		return l.fs.SyncDir(l.opts.Dir)
	}
	return nil
}

// Stats returns a snapshot of the log's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Segments:      len(l.segs),
		FirstLSN:      l.segs[0].first,
		NextLSN:       l.nextLSNLocked(),
		Appends:       l.appends,
		Syncs:         l.syncs,
		Rotations:     l.rotations,
		Truncated:     l.truncated,
		BytesAppended: l.bytes,
	}
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.opts.Dir }

// Close syncs and closes the active segment. The log stays readable via a
// fresh Open; appends after Close fail. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	l.closed = true
	return l.active.Close()
}
