package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/fsx"
)

func openTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.Dir = dir
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log, from int64) (lsns []int64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(from, func(lsn int64, p []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	want := make([][]byte, 100)
	for i := range want {
		want[i] = []byte(fmt.Sprintf("payload-%03d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i))))
		lsn, err := l.Append(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if lsn != int64(i) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	lsns, got := collect(t, l, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if lsns[i] != int64(i) || !bytes.Equal(got[i], want[i]) {
			t.Fatalf("frame %d: lsn=%d payload mismatch", i, lsns[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: NextLSN continues, frames survive.
	l2 := openTest(t, dir, Options{})
	defer l2.Close()
	if l2.NextLSN() != 100 {
		t.Fatalf("reopened NextLSN = %d, want 100", l2.NextLSN())
	}
	_, got2 := collect(t, l2, 0)
	if len(got2) != 100 || !bytes.Equal(got2[42], want[42]) {
		t.Fatalf("reopened replay lost frames: %d", len(got2))
	}
}

func TestReplayFromOffset(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{})
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append([]byte{byte(i)})
	}
	lsns, _ := collect(t, l, 7)
	if len(lsns) != 3 || lsns[0] != 7 || lsns[2] != 9 {
		t.Fatalf("replay from 7: %v", lsns)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 256})
	payload := bytes.Repeat([]byte{7}, 100)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	// Truncate everything below the active tail.
	if err := l.TruncateThrough(st.NextLSN - 1); err != nil {
		t.Fatal(err)
	}
	st2 := l.Stats()
	if st2.Segments != 1 {
		t.Fatalf("after truncate: %d segments, want 1 (active)", st2.Segments)
	}
	if st2.Truncated == 0 {
		t.Fatal("truncated counter not advanced")
	}
	// Remaining frames still replay, from the new first LSN.
	lsns, _ := collect(t, l, 0)
	if len(lsns) == 0 || lsns[0] != st2.FirstLSN {
		t.Fatalf("replay after truncate: lsns=%v first=%d", lsns, st2.FirstLSN)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen after truncation: LSNs keep counting from where they were.
	l2 := openTest(t, dir, Options{SegmentBytes: 256})
	defer l2.Close()
	if l2.NextLSN() != st.NextLSN {
		t.Fatalf("NextLSN after reopen = %d, want %d", l2.NextLSN(), st.NextLSN)
	}
}

func TestTruncatePartialCoverageKeepsSegment(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		l.Append(bytes.Repeat([]byte{1}, 40))
	}
	defer l.Close()
	before := l.Stats()
	// Truncating through an LSN in the middle of a segment must keep that
	// segment (only wholly-covered segments go).
	mid := before.NextLSN / 2
	if err := l.TruncateThrough(mid); err != nil {
		t.Fatal(err)
	}
	lsns, _ := collect(t, l, mid+1)
	want := before.NextLSN - mid - 1
	if int64(len(lsns)) != want {
		t.Fatalf("frames beyond %d: %d, want %d", mid, len(lsns), want)
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 5; i++ {
		l.Append([]byte(fmt.Sprintf("entry-%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: append a frame header + partial payload, as a crash
	// mid-write would leave.
	segs, _ := listSegments(fsx.OS, dir)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad}) // length 255, then cut off
	f.Close()

	l2 := openTest(t, dir, Options{})
	lsns, _ := collect(t, l2, 0)
	if len(lsns) != 5 {
		t.Fatalf("replay over torn tail: %d frames, want 5", len(lsns))
	}
	// Appending after recovery lands at LSN 5, replacing the torn bytes.
	lsn, err := l2.Append([]byte("after-crash"))
	if err != nil || lsn != 5 {
		t.Fatalf("append after torn-tail recovery: lsn=%d err=%v", lsn, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3 := openTest(t, dir, Options{})
	defer l3.Close()
	_, got := collect(t, l3, 0)
	if len(got) != 6 || string(got[5]) != "after-crash" {
		t.Fatalf("frames after recovery: %d", len(got))
	}
}

func TestCorruptionMidLogFails(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		l.Append(bytes.Repeat([]byte{byte(i)}, 30))
	}
	l.Close()
	segs, _ := listSegments(fsx.OS, dir)
	if len(segs) < 3 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	// Flip a payload byte in the first segment: CRC must catch it and
	// reopen must fail loudly (not silently drop acknowledged entries).
	data, _ := os.ReadFile(segs[0])
	data[frameHeader] ^= 0xff
	os.WriteFile(segs[0], data, 0o644)
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("corrupt non-final segment should fail Open")
	}
}

func TestGroupCommitBatchesSyncs(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{SyncEvery: 50, SyncInterval: time.Hour})
	defer l.Close()
	for i := 0; i < 100; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Syncs != 2 {
		t.Fatalf("batched syncs = %d, want 2 for 100 appends at SyncEvery=50", st.Syncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestStrictSyncEveryAppend(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{})
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Append([]byte("x"))
	}
	if st := l.Stats(); st.Syncs != 10 {
		t.Fatalf("strict mode syncs = %d, want 10", st.Syncs)
	}
}

func TestAppendBatch(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{SyncEvery: 1 << 30, SyncInterval: time.Hour})
	defer l.Close()
	batch := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	first, err := l.AppendBatch(batch)
	if err != nil || first != 0 {
		t.Fatalf("batch: first=%d err=%v", first, err)
	}
	if st := l.Stats(); st.Syncs != 1 || st.Appends != 3 {
		t.Fatalf("batch stats: %+v", st)
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{SyncEvery: 64})
	defer l.Close()
	var wg sync.WaitGroup
	const g, per = 8, 50
	seen := make([]bool, g*per)
	var mu sync.Mutex
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append([]byte{byte(w)})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if seen[lsn] {
					t.Errorf("duplicate LSN %d", lsn)
				}
				seen[lsn] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if l.NextLSN() != g*per {
		t.Fatalf("NextLSN = %d, want %d", l.NextLSN(), g*per)
	}
}

func TestOpenRejectsGappedSegments(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentBytes: 64})
	for i := 0; i < 10; i++ {
		l.Append(bytes.Repeat([]byte{1}, 30))
	}
	l.Close()
	segs, _ := listSegments(fsx.OS, dir)
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	// Removing a middle segment leaves a gap Open must refuse.
	os.Remove(segs[1])
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("gapped log should fail Open")
	}
}

func TestCloseIdempotentAndDirSurvives(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	l.Append([]byte("x"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("y")); err == nil {
		t.Fatal("append after close should fail")
	}
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, 0, segSuffix))); err != nil {
		t.Fatal(err)
	}
}
