// Package series provides the fundamental data series type used throughout
// the Coconut infrastructure: fixed-length sequences of float64 points,
// z-normalization, Euclidean distance, and binary (de)serialization for the
// raw data file that non-materialized indexes point into.
package series

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/simd"
)

// Series is a single data series: an ordered sequence of real values.
// All series in one dataset share the same length.
type Series []float64

// Errors returned by series operations.
var (
	ErrLengthMismatch = errors.New("series: length mismatch")
	ErrEmpty          = errors.New("series: empty series")
)

// Clone returns a deep copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Mean returns the arithmetic mean of the series values.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Std returns the population standard deviation of the series values.
func (s Series) Std() float64 {
	if len(s) == 0 {
		return 0
	}
	mean := s.Mean()
	acc := 0.0
	for _, v := range s {
		d := v - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(len(s)))
}

// ZNormalize returns a z-normalized copy of s: zero mean, unit variance.
// Constant series (zero variance) normalize to all zeros, matching the
// convention used by iSAX implementations.
func (s Series) ZNormalize() Series {
	return s.ZNormalizeInto(make(Series, len(s)))
}

// ZNormalizeInto z-normalizes s into dst (which must have len(s) elements)
// and returns dst. It is the allocation-free variant of ZNormalize used by
// the query hot path's reusable scratch buffers.
func (s Series) ZNormalizeInto(dst Series) Series {
	if len(dst) != len(s) {
		panic(fmt.Sprintf("series: ZNormalizeInto length mismatch %d vs %d", len(dst), len(s)))
	}
	mean := s.Mean()
	std := s.Std()
	if std < 1e-12 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, v := range s {
		dst[i] = (v - mean) / std
	}
	return dst
}

// Dist returns the Euclidean distance between s and t.
func (s Series) Dist(t Series) (float64, error) {
	if len(s) != len(t) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(s), len(t))
	}
	return math.Sqrt(s.sqDist(t, math.Inf(1))), nil
}

// SqDist returns the squared Euclidean distance between s and t.
// It panics if the lengths differ; use Dist for a checked variant.
func (s Series) SqDist(t Series) float64 {
	if len(s) != len(t) {
		panic(fmt.Sprintf("series: SqDist length mismatch %d vs %d", len(s), len(t)))
	}
	return s.sqDist(t, math.Inf(1))
}

// SqDistEarlyAbandon computes the squared Euclidean distance but abandons
// the computation (returning a value >= limit) as soon as the running sum
// exceeds limit. This is the standard early-abandoning optimization used by
// data series indexes during exact search.
func (s Series) SqDistEarlyAbandon(t Series, limit float64) float64 {
	if len(s) != len(t) {
		panic(fmt.Sprintf("series: SqDistEarlyAbandon length mismatch %d vs %d", len(s), len(t)))
	}
	return s.sqDist(t, limit)
}

// sqDist delegates to the simd kernel layer: blocked accumulation with one
// abandon check per 8-point block, identical bits on every kernel set (see
// package simd). Abandoning is therefore per block, not per point — the
// returned value still exceeds limit whenever the full distance would.
func (s Series) sqDist(t Series, limit float64) float64 {
	return simd.SqDist(s, t, limit)
}

// SqDistEncodedEarlyAbandon computes the early-abandoning squared Euclidean
// distance between s and a series stored in its AppendBinary encoding,
// decoding points on the fly. This fuses payload decoding with distance
// accumulation so verifying a materialized candidate straight out of a page
// buffer costs no allocation and abandons as soon as a block's partial sum
// exceeds limit. buf must hold at least Size(len(s)) bytes. It shares the
// kernel entry point with sqDist, so the decoded and encoded paths cannot
// drift: both return bit-identical values on every kernel set.
func (s Series) SqDistEncodedEarlyAbandon(buf []byte, limit float64) float64 {
	if len(buf) < Size(len(s)) {
		panic(fmt.Sprintf("series: SqDistEncodedEarlyAbandon short buffer %d for %d points", len(buf), len(s)))
	}
	return simd.SqDistEncoded(s, buf, limit)
}

// Size is the serialized size in bytes of a series of length n.
func Size(n int) int { return 8 * n }

// AppendBinary appends the little-endian IEEE-754 encoding of s to buf.
func (s Series) AppendBinary(buf []byte) []byte {
	for _, v := range s {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeBinary decodes a series of length n from buf, which must hold at
// least Size(n) bytes.
func DecodeBinary(buf []byte, n int) (Series, error) {
	if len(buf) < Size(n) {
		return nil, fmt.Errorf("series: short buffer: have %d want %d", len(buf), Size(n))
	}
	return DecodeBinaryInto(buf, make(Series, n))
}

// DecodeBinaryInto decodes len(dst) points from buf into dst, the
// allocation-free variant of DecodeBinary used with reusable scratch
// buffers. buf must hold at least Size(len(dst)) bytes.
func DecodeBinaryInto(buf []byte, dst Series) (Series, error) {
	if len(buf) < Size(len(dst)) {
		return nil, fmt.Errorf("series: short buffer: have %d want %d", len(buf), Size(len(dst)))
	}
	simd.Decode(buf, dst)
	return dst, nil
}

// Write writes the binary encoding of s to w.
func (s Series) Write(w io.Writer) error {
	buf := s.AppendBinary(make([]byte, 0, Size(len(s))))
	_, err := w.Write(buf)
	return err
}

// Read reads a series of length n from r.
func Read(r io.Reader, n int) (Series, error) {
	buf := make([]byte, Size(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return DecodeBinary(buf, n)
}
