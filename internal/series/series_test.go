package series

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanStd(t *testing.T) {
	s := Series{1, 2, 3, 4, 5}
	if got := s.Mean(); !almostEq(got, 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := s.Std(); !almostEq(got, math.Sqrt(2), 1e-12) {
		t.Errorf("Std = %v, want sqrt(2)", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Std() != 0 {
		t.Errorf("empty series mean/std should be 0")
	}
}

func TestZNormalize(t *testing.T) {
	s := Series{10, 20, 30, 40}
	z := s.ZNormalize()
	if !almostEq(z.Mean(), 0, 1e-9) {
		t.Errorf("znorm mean = %v, want 0", z.Mean())
	}
	if !almostEq(z.Std(), 1, 1e-9) {
		t.Errorf("znorm std = %v, want 1", z.Std())
	}
}

func TestZNormalizeConstant(t *testing.T) {
	s := Series{7, 7, 7, 7}
	z := s.ZNormalize()
	for i, v := range z {
		if v != 0 {
			t.Fatalf("constant series znorm[%d] = %v, want 0", i, v)
		}
	}
}

func TestZNormalizeDoesNotMutate(t *testing.T) {
	s := Series{1, 2, 3}
	_ = s.ZNormalize()
	if s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Fatal("ZNormalize mutated its receiver")
	}
}

func TestDist(t *testing.T) {
	a := Series{0, 0, 0}
	b := Series{1, 2, 2}
	d, err := a.Dist(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d, 3, 1e-12) {
		t.Errorf("Dist = %v, want 3", d)
	}
}

func TestDistLengthMismatch(t *testing.T) {
	a := Series{1}
	b := Series{1, 2}
	if _, err := a.Dist(b); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestSqDistEarlyAbandon(t *testing.T) {
	a := make(Series, 100)
	b := make(Series, 100)
	for i := range b {
		b[i] = 10
	}
	got := a.SqDistEarlyAbandon(b, 50)
	if got <= 50 {
		t.Errorf("early abandon should return value > limit, got %v", got)
	}
	full := a.SqDist(b)
	if got > full {
		t.Errorf("abandoned value %v exceeds full distance %v", got, full)
	}
}

func TestSqDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Series{1}.SqDist(Series{1, 2})
}

func TestBinaryRoundTrip(t *testing.T) {
	s := Series{1.5, -2.25, math.Pi, 0, math.Inf(1)}
	buf := s.AppendBinary(nil)
	if len(buf) != Size(len(s)) {
		t.Fatalf("encoded size %d, want %d", len(buf), Size(len(s)))
	}
	got, err := DecodeBinary(buf, len(s))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Errorf("roundtrip[%d] = %v, want %v", i, got[i], s[i])
		}
	}
}

func TestDecodeBinaryShort(t *testing.T) {
	if _, err := DecodeBinary(make([]byte, 7), 1); err == nil {
		t.Fatal("expected short-buffer error")
	}
}

func TestDatasetAppendGet(t *testing.T) {
	d := NewDataset(3)
	id, err := d.Append(Series{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Errorf("first id = %d, want 0", id)
	}
	s, err := d.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if s[1] != 2 {
		t.Errorf("Get(0)[1] = %v, want 2", s[1])
	}
	if _, err := d.Get(5); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := d.Get(-1); err == nil {
		t.Error("expected out-of-range error for negative id")
	}
	if _, err := d.Append(Series{1}); err == nil {
		t.Error("expected length-mismatch error")
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	d := NewDataset(4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		s := make(Series, 4)
		for j := range s {
			s[j] = rng.NormFloat64()
		}
		if _, err := d.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != d.Count() {
		t.Fatalf("count = %d, want %d", got.Count(), d.Count())
	}
	for i := range d.Values {
		for j := range d.Values[i] {
			if got.Values[i][j] != d.Values[i][j] {
				t.Fatalf("value [%d][%d] mismatch", i, j)
			}
		}
	}
}

func TestReadDatasetTruncated(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader(make([]byte, 12)), 2); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestPropertyZNormStats(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) < 2 {
			return true
		}
		s := Series(vals)
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological inputs
			}
		}
		if s.Std() < 1e-9 {
			return true
		}
		z := s.ZNormalize()
		return almostEq(z.Mean(), 0, 1e-6) && almostEq(z.Std(), 1, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyDistSymmetricNonNegative(t *testing.T) {
	f := func(a, b [8]float64) bool {
		sa, sb := Series(a[:]), Series(b[:])
		for i := 0; i < 8; i++ {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) || math.IsInf(a[i], 0) || math.IsInf(b[i], 0) {
				return true
			}
			if math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		dab := sa.SqDist(sb)
		dba := sb.SqDist(sa)
		return dab >= 0 && dab == dba && sa.SqDist(sa) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyBinaryRoundTrip(t *testing.T) {
	f := func(vals [16]float64) bool {
		s := Series(vals[:])
		buf := s.AppendBinary(nil)
		got, err := DecodeBinary(buf, 16)
		if err != nil {
			return false
		}
		for i := range s {
			// Compare bit patterns so NaN round-trips count as equal.
			if math.Float64bits(got[i]) != math.Float64bits(s[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
