package series

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Dataset is an in-memory collection of equal-length series. The position of
// a series in the dataset is its ID; non-materialized indexes store these IDs
// and fetch the raw series back from a RawFile (or the dataset itself).
type Dataset struct {
	Len    int // length of each series
	Values []Series
}

// NewDataset creates an empty dataset whose series all have length n.
func NewDataset(n int) *Dataset {
	return &Dataset{Len: n}
}

// Append adds a series to the dataset and returns its ID.
func (d *Dataset) Append(s Series) (int, error) {
	if len(s) != d.Len {
		return 0, fmt.Errorf("%w: dataset holds length %d, got %d", ErrLengthMismatch, d.Len, len(s))
	}
	d.Values = append(d.Values, s)
	return len(d.Values) - 1, nil
}

// Count returns the number of series in the dataset.
func (d *Dataset) Count() int { return len(d.Values) }

// Get returns the series with the given ID.
func (d *Dataset) Get(id int) (Series, error) {
	if id < 0 || id >= len(d.Values) {
		return nil, fmt.Errorf("series: dataset id %d out of range [0,%d)", id, len(d.Values))
	}
	return d.Values[id], nil
}

// WriteTo serializes the dataset: each series in ID order, fixed size.
// The stream carries no header; the reader must know Len and the count (or
// read to EOF).
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, s := range d.Values {
		if err := s.Write(bw); err != nil {
			return n, err
		}
		n += int64(Size(d.Len))
	}
	return n, bw.Flush()
}

// ReadDataset reads series of length n from r until EOF.
func ReadDataset(r io.Reader, n int) (*Dataset, error) {
	d := NewDataset(n)
	br := bufio.NewReader(r)
	for {
		s, err := Read(br, n)
		if err == io.EOF {
			return d, nil
		}
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("series: truncated dataset: %w", err)
		}
		if err != nil {
			return nil, err
		}
		d.Values = append(d.Values, s)
	}
}

// SaveFile writes the dataset to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := d.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset of series length n from path.
func LoadFile(path string, n int) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDataset(f, n)
}

// RawStore abstracts fetching the original series for an ID. Both *Dataset
// and the storage-layer raw file reader implement it; exact search uses it
// to verify candidates from non-materialized indexes.
type RawStore interface {
	Get(id int) (Series, error)
	Count() int
}

// IntoGetter is implemented by raw stores that can serve a fetch into a
// caller-provided buffer of the series length, avoiding the per-fetch
// allocation of Get. The returned series may be dst or an internal slice
// (for in-memory stores); either way it is only valid until the next fetch
// into the same buffer. The query verifier uses this with its per-worker
// scratch so raw fetches allocate nothing per candidate.
type IntoGetter interface {
	GetInto(id int, dst Series) (Series, error)
}

// GetInto implements IntoGetter by returning the stored slice directly —
// the dataset lives in memory, so no copy into dst is needed.
func (d *Dataset) GetInto(id int, _ Series) (Series, error) { return d.Get(id) }

var (
	_ RawStore   = (*Dataset)(nil)
	_ IntoGetter = (*Dataset)(nil)
)
