package series

import (
	"math"
	"math/rand"
	"testing"
)

func randSeries(rng *rand.Rand, n int) Series {
	s := make(Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// TestEarlyAbandonMatchesFullDistance: whenever the early-abandoning
// accumulation does not abandon (the limit is never crossed), its result is
// exactly the full squared Euclidean distance; when it does abandon, the
// partial sum it returns exceeds the limit.
func TestEarlyAbandonMatchesFullDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(256)
		a, b := randSeries(rng, n), randSeries(rng, n)
		full := a.SqDist(b)
		// A limit above the full distance never abandons: exact equality.
		if got := a.SqDistEarlyAbandon(b, full+1); got != full {
			t.Fatalf("trial %d: unabandoned %v != full %v", trial, got, full)
		}
		if got := a.SqDistEarlyAbandon(b, math.Inf(1)); got != full {
			t.Fatalf("trial %d: limit=+Inf %v != full %v", trial, got, full)
		}
		// A limit below the full distance abandons with a partial sum that
		// certifies the candidate lost: strictly above the limit.
		if full > 0 {
			limit := full * rng.Float64() * 0.99
			if got := a.SqDistEarlyAbandon(b, limit); got <= limit {
				t.Fatalf("trial %d: abandoned %v not beyond limit %v", trial, got, limit)
			}
		}
	}
}

// TestEncodedDistanceMatchesDecoded: accumulating the squared distance
// straight from the binary encoding is bit-identical to decoding first.
func TestEncodedDistanceMatchesDecoded(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + rng.Intn(256)
		a, b := randSeries(rng, n), randSeries(rng, n)
		buf := b.AppendBinary(make([]byte, 0, Size(n)))
		full := a.SqDist(b)
		if got := a.SqDistEncodedEarlyAbandon(buf, math.Inf(1)); got != full {
			t.Fatalf("trial %d: encoded %v != decoded %v", trial, got, full)
		}
		if full > 0 {
			limit := full * rng.Float64() * 0.99
			got := a.SqDistEncodedEarlyAbandon(buf, limit)
			want := a.SqDistEarlyAbandon(b, limit)
			if got != want {
				t.Fatalf("trial %d: abandoned encoded %v != decoded %v", trial, got, want)
			}
		}
	}
}

// TestDecodeBinaryInto and ZNormalizeInto round-trips.
func TestIntoVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := randSeries(rng, 64)
	buf := s.AppendBinary(nil)
	dst := make(Series, 64)
	got, err := DecodeBinaryInto(buf, dst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatalf("DecodeBinaryInto[%d] = %v, want %v", i, got[i], s[i])
		}
	}
	if _, err := DecodeBinaryInto(buf[:8], dst); err == nil {
		t.Fatal("short buffer should fail")
	}
	want := s.ZNormalize()
	zdst := make(Series, 64)
	z := s.ZNormalizeInto(zdst)
	for i := range want {
		if z[i] != want[i] {
			t.Fatalf("ZNormalizeInto[%d] = %v, want %v", i, z[i], want[i])
		}
	}
	// Constant series normalize to zeros in both variants.
	c := make(Series, 8)
	for i := range c {
		c[i] = 42
	}
	zc := c.ZNormalizeInto(make(Series, 8))
	for i := range zc {
		if zc[i] != 0 {
			t.Fatalf("constant series normalized to %v", zc)
		}
	}
}
