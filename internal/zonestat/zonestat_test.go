package zonestat

import (
	"math/rand"
	"testing"

	"repro/internal/sax"
	"repro/internal/sortable"
)

func randWord(rng *rand.Rand, nseg, bits int) sax.Word {
	syms := make([]uint8, nseg)
	for i := range syms {
		syms[i] = uint8(rng.Intn(1 << bits))
	}
	return sax.Word{Symbols: syms, Bits: bits}
}

func TestAddMatchesDeinterleave(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range [][2]int{{16, 8}, {8, 4}, {7, 3}, {1, 1}, {16, 1}} {
		nseg, bits := shape[0], shape[1]
		s := New(nseg, bits)
		type bounds struct{ lo, hi uint8 }
		want := make([]bounds, nseg)
		for i := range want {
			want[i] = bounds{lo: 255}
		}
		var minTS, maxTS int64 = 1 << 62, -(1 << 62)
		for n := 0; n < 200; n++ {
			w := randWord(rng, nseg, bits)
			k := sortable.Interleave(w)
			ts := int64(rng.Intn(1000) - 500)
			s.Add(k, ts)
			for i, sym := range w.Symbols {
				if sym < want[i].lo {
					want[i].lo = sym
				}
				if sym > want[i].hi {
					want[i].hi = sym
				}
			}
			if ts < minTS {
				minTS = ts
			}
			if ts > maxTS {
				maxTS = ts
			}
		}
		if s.Count != 200 {
			t.Fatalf("count %d", s.Count)
		}
		if s.MinTS != minTS || s.MaxTS != maxTS {
			t.Fatalf("ts range [%d,%d], want [%d,%d]", s.MinTS, s.MaxTS, minTS, maxTS)
		}
		for i := range want {
			if s.MinSym[i] != want[i].lo || s.MaxSym[i] != want[i].hi {
				t.Fatalf("seg %d envelope [%d,%d], want [%d,%d]", i, s.MinSym[i], s.MaxSym[i], want[i].lo, want[i].hi)
			}
		}
	}
}

func TestUnionEqualsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nseg, bits = 16, 8
	a, b, all := New(nseg, bits), New(nseg, bits), New(nseg, bits)
	for n := 0; n < 100; n++ {
		k := sortable.Interleave(randWord(rng, nseg, bits))
		ts := int64(rng.Intn(1000))
		if n%2 == 0 {
			a.Add(k, ts)
		} else {
			b.Add(k, ts)
		}
		all.Add(k, ts)
	}
	u := a.Clone()
	u.Union(b)
	if u.Count != all.Count || u.MinTS != all.MinTS || u.MaxTS != all.MaxTS ||
		u.MinKey != all.MinKey || u.MaxKey != all.MaxKey {
		t.Fatalf("union scalar fields diverge: %+v vs %+v", u, all)
	}
	for i := 0; i < nseg; i++ {
		if u.MinSym[i] != all.MinSym[i] || u.MaxSym[i] != all.MaxSym[i] {
			t.Fatalf("union envelope diverges at seg %d", i)
		}
	}
	// Union with an empty synopsis is the identity, both ways.
	e := New(nseg, bits)
	u2 := all.Clone()
	u2.Union(e)
	e.Union(all)
	if u2.Count != all.Count || e.Count != all.Count || e.MinKey != all.MinKey {
		t.Fatal("union with empty not identity")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New(7, 5)
	for n := 0; n < 50; n++ {
		s.Add(sortable.Interleave(randWord(rng, 7, 5)), int64(n*3-40))
	}
	buf := s.AppendBinary([]byte{0xAA}) // leading garbage the caller owns
	got, n, err := Decode(buf[1:])
	if err != nil {
		t.Fatal(err)
	}
	if n != s.EncodedSize() || n != len(buf)-1 {
		t.Fatalf("consumed %d, want %d", n, s.EncodedSize())
	}
	if got.Count != s.Count || got.MinTS != s.MinTS || got.MaxTS != s.MaxTS ||
		got.MinKey != s.MinKey || got.MaxKey != s.MaxKey || got.Bits != s.Bits || got.Segments != s.Segments {
		t.Fatalf("round trip diverges: %+v vs %+v", got, s)
	}
	for i := 0; i < s.Segments; i++ {
		if got.MinSym[i] != s.MinSym[i] || got.MaxSym[i] != s.MaxSym[i] {
			t.Fatalf("envelope diverges at seg %d", i)
		}
	}
	if _, _, err := Decode(buf[1 : 1+10]); err == nil {
		t.Fatal("want error on truncated synopsis")
	}
}

func TestWindowIntersect(t *testing.T) {
	s := New(4, 2)
	if s.IntersectsWindow(-1<<62, 1<<62) {
		t.Fatal("empty synopsis must intersect nothing")
	}
	s.Add(sortable.Key{}, 10)
	s.Add(sortable.Key{Hi: 1}, 20)
	for _, tc := range []struct {
		lo, hi int64
		want   bool
	}{{0, 9, false}, {0, 10, true}, {15, 15, true}, {20, 30, true}, {21, 30, false}} {
		if got := s.IntersectsWindow(tc.lo, tc.hi); got != tc.want {
			t.Fatalf("IntersectsWindow(%d,%d) = %v, want %v", tc.lo, tc.hi, got, tc.want)
		}
	}
}
