// Package zonestat maintains compact per-unit statistics — synopses — for
// the probe units of the Coconut indexes: LSM runs, stream partitions,
// trees, and shards. A synopsis records the unit's cardinality, timestamp
// range, sortable-key range, and a per-segment envelope of iSAX symbols
// (the minimum and maximum symbol observed in each segment). The envelope
// supports a MINDIST-style lower bound on the distance between a query and
// *every* series in the unit (index.Pruner.EnvelopeSq), which is what lets
// the query planner order probe units by how promising they are and skip
// units whose bound already exceeds the collector's current worst — without
// ever changing an answer, because the envelope bound is never larger than
// the per-entry bound the collector would have pruned with anyway.
//
// Synopses are cheap to maintain incrementally: flushes and bulk builds
// fold each entry's key into a builder as it streams past, and a merge's
// synopsis is the exact Union of its inputs' synopses — no re-scan, no
// extra I/O. They persist inside run manifests and index snapshots (a few
// dozen bytes per unit) and reload on recovery.
package zonestat

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/sortable"
)

// Synopsis summarizes one probe unit. MinSym/MaxSym hold, per segment, the
// smallest and largest iSAX symbol (at Bits cardinality bits) of any entry
// in the unit. A zero-Count synopsis is "empty": its ranges are inverted
// sentinels and every bound derived from it is +Inf.
type Synopsis struct {
	Segments int
	Bits     int
	Count    int64
	MinTS    int64
	MaxTS    int64
	MinKey   sortable.Key
	MaxKey   sortable.Key
	MinSym   []uint8 // per segment; len == Segments
	MaxSym   []uint8 // per segment; len == Segments
}

// New returns an empty synopsis for the given summarization shape.
func New(segments, bits int) *Synopsis {
	return &Synopsis{
		Segments: segments,
		Bits:     bits,
		MinTS:    math.MaxInt64,
		MaxTS:    math.MinInt64,
		MinSym:   make([]uint8, segments),
		MaxSym:   make([]uint8, segments),
	}
}

// DecodeSyms recovers the per-segment symbols of an interleaved key into
// out (an allocation-free sortable.Deinterleave). Indexes that keep flat
// per-unit envelopes instead of full Synopsis values (the CTree leaf
// directory) use it to widen their envelopes entry by entry.
func DecodeSyms(k sortable.Key, nseg, bits int, out []uint8) {
	for s := 0; s < nseg; s++ {
		out[s] = 0
	}
	pos := 0
	for r := 0; r < bits; r++ {
		dst := uint(bits - 1 - r)
		for s := 0; s < nseg; s++ {
			var b uint64
			if pos < 64 {
				b = k.Hi >> uint(63-pos) & 1
			} else {
				b = k.Lo >> uint(127-pos) & 1
			}
			out[s] |= uint8(b) << dst
			pos++
		}
	}
}

// Add folds one entry (its sortable key and timestamp) into the synopsis.
func (s *Synopsis) Add(k sortable.Key, ts int64) {
	var syms [sortable.MaxSegments]uint8
	DecodeSyms(k, s.Segments, s.Bits, syms[:s.Segments])
	if s.Count == 0 {
		s.MinKey, s.MaxKey = k, k
		copy(s.MinSym, syms[:s.Segments])
		copy(s.MaxSym, syms[:s.Segments])
	} else {
		if k.Less(s.MinKey) {
			s.MinKey = k
		}
		if s.MaxKey.Less(k) {
			s.MaxKey = k
		}
		for i := 0; i < s.Segments; i++ {
			if syms[i] < s.MinSym[i] {
				s.MinSym[i] = syms[i]
			}
			if syms[i] > s.MaxSym[i] {
				s.MaxSym[i] = syms[i]
			}
		}
	}
	if ts < s.MinTS {
		s.MinTS = ts
	}
	if ts > s.MaxTS {
		s.MaxTS = ts
	}
	s.Count++
}

// Union widens s to cover o as well. Merging runs or partitions unions
// their synopses — the result is exact (identical to rebuilding from the
// merged entries), because every recorded statistic is a monotone envelope.
func (s *Synopsis) Union(o *Synopsis) {
	if o == nil || o.Count == 0 {
		return
	}
	if s.Count == 0 {
		s.MinKey, s.MaxKey = o.MinKey, o.MaxKey
		copy(s.MinSym, o.MinSym)
		copy(s.MaxSym, o.MaxSym)
	} else {
		if o.MinKey.Less(s.MinKey) {
			s.MinKey = o.MinKey
		}
		if s.MaxKey.Less(o.MaxKey) {
			s.MaxKey = o.MaxKey
		}
		for i := 0; i < s.Segments; i++ {
			if o.MinSym[i] < s.MinSym[i] {
				s.MinSym[i] = o.MinSym[i]
			}
			if o.MaxSym[i] > s.MaxSym[i] {
				s.MaxSym[i] = o.MaxSym[i]
			}
		}
	}
	if o.MinTS < s.MinTS {
		s.MinTS = o.MinTS
	}
	if o.MaxTS > s.MaxTS {
		s.MaxTS = o.MaxTS
	}
	s.Count += o.Count
}

// Clone returns a deep copy.
func (s *Synopsis) Clone() *Synopsis {
	if s == nil {
		return nil
	}
	out := *s
	out.MinSym = append([]uint8(nil), s.MinSym...)
	out.MaxSym = append([]uint8(nil), s.MaxSym...)
	return &out
}

// IntersectsWindow reports whether the unit's time range can intersect the
// query window [minTS, maxTS]. An empty synopsis intersects nothing.
func (s *Synopsis) IntersectsWindow(minTS, maxTS int64) bool {
	return s.Count > 0 && s.MaxTS >= minTS && s.MinTS <= maxTS
}

// EncodedSize returns the serialized size in bytes: a fixed 58-byte header
// plus two symbol envelopes.
func (s *Synopsis) EncodedSize() int { return 58 + 2*s.Segments }

// AppendBinary appends the serialized synopsis to buf:
//
//	count u64 | minTS u64 | maxTS u64 | minKey 16B | maxKey 16B
//	bits u8 | segments u8 | minSym [segments]B | maxSym [segments]B
func (s *Synopsis) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Count))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.MinTS))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.MaxTS))
	buf = s.MinKey.AppendBinary(buf)
	buf = s.MaxKey.AppendBinary(buf)
	buf = append(buf, uint8(s.Bits), uint8(s.Segments))
	buf = append(buf, s.MinSym...)
	buf = append(buf, s.MaxSym...)
	return buf
}

// Decode parses one synopsis from the front of buf, returning it and the
// number of bytes consumed.
func Decode(buf []byte) (*Synopsis, int, error) {
	if len(buf) < 58 {
		return nil, 0, fmt.Errorf("zonestat: synopsis truncated: %d bytes", len(buf))
	}
	s := &Synopsis{
		Count:    int64(binary.LittleEndian.Uint64(buf)),
		MinTS:    int64(binary.LittleEndian.Uint64(buf[8:])),
		MaxTS:    int64(binary.LittleEndian.Uint64(buf[16:])),
		MinKey:   sortable.DecodeKey(buf[24:]),
		MaxKey:   sortable.DecodeKey(buf[40:]),
		Bits:     int(buf[56]),
		Segments: int(buf[57]),
	}
	n := 58 + 2*s.Segments
	if s.Segments < 1 || s.Segments > sortable.MaxSegments || len(buf) < n {
		return nil, 0, fmt.Errorf("zonestat: synopsis corrupt: segments=%d, %d bytes", s.Segments, len(buf))
	}
	s.MinSym = append([]uint8(nil), buf[58:58+s.Segments]...)
	s.MaxSym = append([]uint8(nil), buf[58+s.Segments:n]...)
	return s, n, nil
}

// Provider is implemented by indexes that expose per-unit synopses for
// planning at a coarser level (the sharded fan-out asks each shard's index
// for them). complete reports whether the synopses cover every indexed
// entry; false — an unflushed in-memory buffer, or units recovered from a
// pre-synopsis snapshot — means no shard-level bound applies and the shard
// must always be probed.
type Provider interface {
	PlanSynopses() (syns []*Synopsis, complete bool)
}
