// Package bufpool implements the shared buffer-pool layer between the
// indexes and the simulated disks: a sharded CLOCK page cache with
// pin/unpin semantics, per-file invalidation, and hit/miss/eviction
// counters. A Pool fronts one storage.Backend and satisfies
// storage.PageReader, so every index read path works identically against a
// bare disk and against a cached one; several Pools may share one Cache
// (the sharded facade attaches every shard's disk to a single cache so the
// configured bytes bound the whole deployment, not each shard).
//
// # Semantics
//
//   - PinPage on a hit hands out a borrowed reference to the cached frame,
//     zero copies and zero allocations; the frame cannot be evicted while
//     pinned. On a miss the page is read from the backing disk into a frame
//     claimed by a CLOCK sweep (evicting an unpinned, unreferenced victim),
//     and that disk read carries the usual sequential/random accounting —
//     Cost therefore charges exactly the misses.
//   - Writes never go through the pool. The pool registers itself as a
//     storage.Invalidator on its disk, so page writes, Remove, and Rename
//     drop stale frames. An invalidated frame that is still pinned stays
//     alive (its bytes remain a stable snapshot for the borrower) and is
//     reclaimed by the clock once the last pin drops.
//   - When every frame is pinned and the budget is exhausted, a miss is
//     served through a transient overflow frame that is never cached —
//     progress is never blocked on eviction.
//
// Concurrency: any number of goroutines may pin, read, and unpin
// concurrently with each other and with invalidation. As everywhere else
// in the repo, writes to the underlying pages require external
// serialization against readers of those same pages.
package bufpool

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// numShards is the fixed lock-striping factor of a cache. Sixteen shards
// keep pin/unpin contention negligible at the repo's worker-pool sizes
// while keeping whole-file invalidation a cheap sweep.
const numShards = 16

// pageKey identifies one cached page: which attached disk, which file,
// which page. Keys are plain comparable structs, so map probes allocate
// nothing.
type pageKey struct {
	disk uint32
	page int64
	name string
}

// frame is one cache slot. pins is atomic so Unpin takes no lock; all
// other fields are guarded by the owning shard's mutex.
type frame struct {
	key  pageKey
	data []byte
	pins atomic.Int32
	ref  bool // CLOCK reference bit
	dead bool // invalidated; reclaim as soon as pins drops to zero
}

// Unpin implements storage.Unpinner: one atomic decrement, no lock.
func (f *frame) Unpin() { f.pins.Add(-1) }

type cacheShard struct {
	mu     sync.Mutex
	frames map[pageKey]*frame
	ring   []*frame // every frame this shard owns, swept by the clock hand
	hand   int
}

// Cache is the shared frame store. Create one with NewCache and attach
// each disk with Attach; the byte budget is global across all attached
// disks.
type Cache struct {
	pageSize  int
	capFrames int64
	allocated atomic.Int64 // frames allocated across all shards, <= capFrames
	nextDisk  atomic.Uint32
	evictions atomic.Int64
	shards    [numShards]cacheShard
}

// NewCache creates a cache holding up to cacheBytes worth of pageSize
// pages (at least one frame; pageSize 0 selects storage.DefaultPageSize).
func NewCache(cacheBytes int64, pageSize int) *Cache {
	if pageSize <= 0 {
		pageSize = storage.DefaultPageSize
	}
	frames := cacheBytes / int64(pageSize)
	if frames < 1 {
		frames = 1
	}
	c := &Cache{pageSize: pageSize, capFrames: frames}
	for i := range c.shards {
		c.shards[i].frames = make(map[pageKey]*frame)
	}
	return c
}

// CapacityBytes returns the configured capacity in bytes.
func (c *Cache) CapacityBytes() int64 { return c.capFrames * int64(c.pageSize) }

// CapacityFrames returns the capacity in page frames.
func (c *Cache) CapacityFrames() int64 { return c.capFrames }

// Evictions returns how many cached pages were evicted to make room.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// PageSize returns the page size every attached disk must share.
func (c *Cache) PageSize() int { return c.pageSize }

// shardFor maps a key to its lock stripe with an inline FNV-1a over the
// file name mixed with the disk id and page number — allocation-free, so
// the pin hot path stays zero-alloc.
func (c *Cache) shardFor(k pageKey) *cacheShard {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(k.name); i++ {
		h ^= uint64(k.name[i])
		h *= prime64
	}
	h ^= uint64(k.disk)
	h *= prime64
	h ^= uint64(k.page)
	h *= prime64
	h ^= h >> 32
	return &c.shards[h%numShards]
}

// claim returns a frame ready to be filled, pinned once. tracked reports
// whether the frame belongs to the shard's ring (and so may be inserted
// into the map); an untracked overflow frame serves exactly one pinned
// read-through and is garbage once unpinned. Callers must hold sh.mu.
func (c *Cache) claim(sh *cacheShard) (fr *frame, tracked bool) {
	// An empty ring always allocates its first frame, even past the global
	// budget (overshooting by at most numShards-1 frames): otherwise a
	// stripe whose first miss arrives after other stripes consumed the
	// whole budget could never cache anything — its CLOCK sweep has no
	// victims — and every key hashing there would miss forever.
	if len(sh.ring) == 0 {
		c.allocated.Add(1)
		fr = &frame{data: make([]byte, c.pageSize)}
		fr.pins.Store(1)
		sh.ring = append(sh.ring, fr)
		return fr, true
	}
	// Allocate a new frame while the global budget allows.
	if c.allocated.Load() < c.capFrames {
		if c.allocated.Add(1) <= c.capFrames {
			fr = &frame{data: make([]byte, c.pageSize)}
			fr.pins.Store(1)
			sh.ring = append(sh.ring, fr)
			return fr, true
		}
		c.allocated.Add(-1) // raced past the budget; evict instead
	}
	// CLOCK sweep over this shard's ring: dead frames are reclaimed on
	// sight, referenced frames get one more revolution, pinned frames are
	// skipped. Two full revolutions guarantee termination.
	for sweep := 0; sweep < 2*len(sh.ring); sweep++ {
		fr := sh.ring[sh.hand]
		sh.hand++
		if sh.hand == len(sh.ring) {
			sh.hand = 0
		}
		if fr.pins.Load() != 0 {
			continue
		}
		if fr.dead {
			fr.dead = false
			fr.pins.Store(1)
			return fr, true
		}
		if fr.ref {
			fr.ref = false
			continue
		}
		delete(sh.frames, fr.key)
		c.evictions.Add(1)
		fr.pins.Store(1)
		return fr, true
	}
	// Everything pinned (or the ring is empty because other shards hold the
	// whole budget): overflow with a transient, uncached frame.
	fr = &frame{data: make([]byte, c.pageSize)}
	fr.pins.Store(1)
	return fr, false
}

// Pool is one disk's cached view of a Cache: it implements
// storage.PageReader (reads served from the shared frames, misses filled
// from the disk) and storage.Invalidator (registered on the disk at Attach
// so writes stay coherent). Hit/miss counters are per pool, so per-shard
// stats stay meaningful even when many disks share one cache.
type Pool struct {
	c            *Cache
	d            storage.Backend
	id           uint32
	hits, misses atomic.Int64
}

// Attach registers a disk with the cache and returns its cached reader.
// The disk's page size must match the cache's.
func (c *Cache) Attach(d storage.Backend) (*Pool, error) {
	if d.PageSize() != c.pageSize {
		return nil, fmt.Errorf("bufpool: disk page size %d, cache %d", d.PageSize(), c.pageSize)
	}
	p := &Pool{c: c, d: d, id: c.nextDisk.Add(1)}
	d.AddInvalidator(p)
	return p, nil
}

// New builds a single-disk pool: a fresh cache of cacheBytes attached to d.
func New(d storage.Backend, cacheBytes int64) *Pool {
	p, err := NewCache(cacheBytes, d.PageSize()).Attach(d)
	if err != nil { // unreachable: the cache adopts the disk's page size
		panic(err)
	}
	return p
}

// AttachOrNew is the one attach decision both facades use: attach to the
// shared cache when one is provided (sharded builds — one budget for the
// whole index), build a private pool of cacheBytes when asked, and return
// nil (uncached) otherwise.
func AttachOrNew(d storage.Backend, cache *Cache, cacheBytes int64) (*Pool, error) {
	switch {
	case cache != nil:
		return cache.Attach(d)
	case cacheBytes > 0:
		return New(d, cacheBytes), nil
	}
	return nil, nil
}

// Cache returns the shared frame store behind this pool.
func (p *Pool) Cache() *Cache { return p.c }

// Disk returns the backing disk.
func (p *Pool) Disk() storage.Backend { return p.d }

// PageSize implements storage.PageReader.
func (p *Pool) PageSize() int { return p.c.pageSize }

// Exists implements storage.PageReader.
func (p *Pool) Exists(name string) bool { return p.d.Exists(name) }

// NumPages implements storage.PageReader.
func (p *Pool) NumPages(name string) (int64, error) { return p.d.NumPages(name) }

// PinPage implements storage.PageReader: the hot path of every cached
// probe. A hit is a map probe, a pin, and a borrowed slice — no copy, no
// allocation. A miss claims a frame and fills it from the disk while
// holding only this shard's lock (the simulated read is memory-speed, and
// holding the lock deduplicates concurrent misses on the same page).
func (p *Pool) PinPage(name string, page int64) (storage.PageHandle, error) {
	k := pageKey{disk: p.id, page: page, name: name}
	sh := p.c.shardFor(k)
	sh.mu.Lock()
	if fr := sh.frames[k]; fr != nil {
		fr.pins.Add(1)
		fr.ref = true
		sh.mu.Unlock()
		p.hits.Add(1)
		return storage.NewPageHandle(fr.data, fr), nil
	}
	fr, tracked := p.c.claim(sh)
	if _, err := p.d.ReadPage(name, page, fr.data); err != nil {
		// Leave the frame reclaimable: dead, unpinned, out of the map.
		fr.dead = true
		fr.pins.Store(0)
		sh.mu.Unlock()
		return storage.PageHandle{}, err
	}
	if tracked {
		fr.key = k
		fr.ref = true
		sh.frames[k] = fr
	}
	sh.mu.Unlock()
	p.misses.Add(1)
	return storage.NewPageHandle(fr.data, fr), nil
}

// ReadPage implements storage.PageReader with copy semantics identical to
// Disk.ReadPage: up to a page's worth of bytes copied into buf.
func (p *Pool) ReadPage(name string, page int64, buf []byte) (int, error) {
	h, err := p.PinPage(name, page)
	if err != nil {
		return 0, err
	}
	n := copy(buf, h.Data())
	h.Release()
	return n, nil
}

// ReadPages implements storage.PageReader, serving each page through the
// cache. Like Disk.ReadPages it clamps at end of file and requires buf to
// hold n pages.
func (p *Pool) ReadPages(name string, page int64, n int, buf []byte) (int, error) {
	npages, err := p.d.NumPages(name)
	if err != nil {
		return 0, err
	}
	if page < 0 || page >= npages {
		return 0, fmt.Errorf("%w: %q page %d of %d", storage.ErrOutOfRange, name, page, npages)
	}
	if len(buf) < n*p.c.pageSize {
		return 0, fmt.Errorf("storage: buffer %d bytes for %d pages of %d", len(buf), n, p.c.pageSize)
	}
	got := 0
	for i := 0; i < n && page+int64(i) < npages; i++ {
		if _, err := p.ReadPage(name, page+int64(i), buf[i*p.c.pageSize:(i+1)*p.c.pageSize]); err != nil {
			return got, err
		}
		got++
	}
	return got, nil
}

// InvalidatePage implements storage.Invalidator.
func (p *Pool) InvalidatePage(name string, page int64) {
	k := pageKey{disk: p.id, page: page, name: name}
	sh := p.c.shardFor(k)
	sh.mu.Lock()
	if fr := sh.frames[k]; fr != nil {
		delete(sh.frames, k)
		fr.dead = true
	}
	sh.mu.Unlock()
}

// InvalidateFile implements storage.Invalidator: drops every cached page
// of the named file on this pool's disk.
func (p *Pool) InvalidateFile(name string) {
	for i := range p.c.shards {
		sh := &p.c.shards[i]
		sh.mu.Lock()
		for k, fr := range sh.frames {
			if k.disk == p.id && k.name == name {
				delete(sh.frames, k)
				fr.dead = true
			}
		}
		sh.mu.Unlock()
	}
}

// Purge drops every cached page of this pool's disk (hit/miss counters are
// kept). Benchmarks use it to measure cold-cache behaviour.
func (p *Pool) Purge() {
	for i := range p.c.shards {
		sh := &p.c.shards[i]
		sh.mu.Lock()
		for k, fr := range sh.frames {
			if k.disk == p.id {
				delete(sh.frames, k)
				fr.dead = true
			}
		}
		sh.mu.Unlock()
	}
}

// Hits returns how many pins were served from the cache.
func (p *Pool) Hits() int64 { return p.hits.Load() }

// Misses returns how many pins had to read from the backing disk.
func (p *Pool) Misses() int64 { return p.misses.Load() }

// Stats implements storage.StatsProvider: the backing disk's accounting
// with this pool's cache counters filled in. Because every miss performed
// exactly one disk read, Stats().Cost charges exactly the misses.
func (p *Pool) Stats() storage.Stats {
	st := p.d.Stats()
	st.CacheHits = p.hits.Load()
	st.CacheMisses = p.misses.Load()
	return st
}

// ResetStats zeroes the cache counters and the backing disk's accounting.
func (p *Pool) ResetStats() {
	p.hits.Store(0)
	p.misses.Store(0)
	p.d.ResetStats()
}

var (
	_ storage.PageReader    = (*Pool)(nil)
	_ storage.Invalidator   = (*Pool)(nil)
	_ storage.StatsProvider = (*Pool)(nil)
	_ storage.Unpinner      = (*frame)(nil)
)
