package bufpool

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/storage"
)

// fill creates a file of n pages on d, each page stamped with its page
// number so reads are verifiable.
func fill(t testing.TB, d *storage.Disk, name string, n int) {
	t.Helper()
	if err := d.Create(name); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, d.PageSize())
	for p := 0; p < n; p++ {
		stamp(page, name, p)
		if _, err := d.AppendPage(name, page); err != nil {
			t.Fatal(err)
		}
	}
}

func stamp(page []byte, name string, p int) {
	copy(page, fmt.Sprintf("%s:%08d", name, p))
}

func checkPage(t testing.TB, got []byte, name string, p int) {
	t.Helper()
	want := fmt.Sprintf("%s:%08d", name, p)
	if !bytes.HasPrefix(got, []byte(want)) {
		t.Fatalf("page %s/%d holds %q, want prefix %q", name, p, got[:len(want)], want)
	}
}

// TestOneMissPerDistinctPage is the property test of the capacity
// contract: with capacity >= total pages, any access pattern over those
// pages costs exactly one miss per distinct page — everything else hits,
// and nothing is ever evicted.
func TestOneMissPerDistinctPage(t *testing.T) {
	const pages, files = 37, 3
	d := storage.NewDisk(256)
	for f := 0; f < files; f++ {
		fill(t, d, fmt.Sprintf("f%d", f), pages)
	}
	total := int64(files * pages)
	p := New(d, total*256) // capacity exactly the total page count
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		name := fmt.Sprintf("f%d", rng.Intn(files))
		pg := int64(rng.Intn(pages))
		h, err := p.PinPage(name, pg)
		if err != nil {
			t.Fatal(err)
		}
		checkPage(t, h.Data(), name, int(pg))
		h.Release()
	}
	if p.Misses() != total {
		t.Fatalf("%d misses over %d distinct pages, want exactly one each", p.Misses(), total)
	}
	if p.Hits() != 5000-total {
		t.Fatalf("hits = %d, want %d", p.Hits(), 5000-total)
	}
	if ev := p.Cache().Evictions(); ev != 0 {
		t.Fatalf("%d evictions with a full-fit cache", ev)
	}
	// A second full sweep is all hits.
	before := p.Misses()
	for f := 0; f < files; f++ {
		for pg := 0; pg < pages; pg++ {
			h, err := p.PinPage(fmt.Sprintf("f%d", f), int64(pg))
			if err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}
	if p.Misses() != before {
		t.Fatalf("full-fit warm sweep missed %d times", p.Misses()-before)
	}
}

// TestEvictionUnderPressure drives a cache far smaller than the data and
// checks every read still returns correct bytes while evictions occur.
func TestEvictionUnderPressure(t *testing.T) {
	const pages = 200
	d := storage.NewDisk(256)
	fill(t, d, "f", pages)
	p := New(d, 8*256) // 8 frames for 200 pages
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		pg := int64(rng.Intn(pages))
		h, err := p.PinPage("f", pg)
		if err != nil {
			t.Fatal(err)
		}
		checkPage(t, h.Data(), "f", int(pg))
		h.Release()
	}
	if p.Cache().Evictions() == 0 {
		t.Fatal("no evictions despite 25x cache pressure")
	}
	if p.Hits() == 0 {
		t.Fatal("no hits at all — CLOCK retained nothing")
	}
}

// TestPinBlocksEviction pins more pages than the cache has frames: the
// pinned pages' bytes must stay valid (overflow frames serve the excess)
// and remain correct after heavy churn evicts everything unpinned.
func TestPinBlocksEviction(t *testing.T) {
	const pages = 64
	d := storage.NewDisk(256)
	fill(t, d, "f", pages)
	p := New(d, 4*256) // 4 frames
	handles := make([]storage.PageHandle, 0, 16)
	for pg := 0; pg < 16; pg++ { // pin 16 pages into a 4-frame cache
		h, err := p.PinPage("f", int64(pg))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
	}
	// Churn the cache with the remaining pages.
	for i := 0; i < 1000; i++ {
		h, err := p.PinPage("f", int64(16+i%(pages-16)))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	for pg, h := range handles {
		checkPage(t, h.Data(), "f", pg)
		h.Release()
	}
}

// TestInvalidationCoherence overwrites and removes pages underneath the
// pool and checks reads never see stale bytes.
func TestInvalidationCoherence(t *testing.T) {
	d := storage.NewDisk(256)
	fill(t, d, "f", 8)
	p := New(d, 64*256)
	// Warm page 3, then overwrite it.
	h, err := p.PinPage("f", 3)
	if err != nil {
		t.Fatal(err)
	}
	checkPage(t, h.Data(), "f", 3)
	h.Release()
	page := make([]byte, 256)
	copy(page, "rewritten!")
	if err := d.WritePage("f", 3, page); err != nil {
		t.Fatal(err)
	}
	h, err = p.PinPage("f", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(h.Data(), []byte("rewritten!")) {
		t.Fatalf("stale read after WritePage: %q", h.Data()[:10])
	}
	h.Release()
	// A pinned handle taken before the write keeps its snapshot.
	before, err := p.PinPage("f", 5)
	if err != nil {
		t.Fatal(err)
	}
	copy(page, "changed-5!")
	if err := d.WritePage("f", 5, page); err != nil {
		t.Fatal(err)
	}
	checkPage(t, before.Data(), "f", 5) // old snapshot, not "changed-5!"
	before.Release()
	// Remove + recreate under the same name must not serve the old file.
	if err := d.Remove("f"); err != nil {
		t.Fatal(err)
	}
	fill(t, d, "f", 2)
	h, err = p.PinPage("f", 1)
	if err != nil {
		t.Fatal(err)
	}
	checkPage(t, h.Data(), "f", 1)
	h.Release()
	// Rename drops the old name's frames.
	if err := d.Rename("f", "g"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.PinPage("f", 0); err == nil {
		t.Fatal("pin of renamed-away file succeeded")
	}
	h, err = p.PinPage("g", 0)
	if err != nil {
		t.Fatal(err)
	}
	checkPage(t, h.Data(), "f", 0) // stamped under its original name
	h.Release()
}

// TestConcurrentPinUnpinInvalidate hammers the pool from many goroutines —
// readers pinning random pages, a writer overwriting pages (invalidating
// through the disk hook), and whole-file invalidations — under the race
// detector. Readers tolerate snapshot-stale bytes but must always see a
// complete page stamped for some epoch, never a torn mix.
func TestConcurrentPinUnpinInvalidate(t *testing.T) {
	const pages = 64
	d := storage.NewDisk(256)
	if err := d.Create("f"); err != nil {
		t.Fatal(err)
	}
	page := make([]byte, 256)
	for pg := 0; pg < pages; pg++ {
		stamp(page, "f", pg)
		if _, err := d.AppendPage("f", page); err != nil {
			t.Fatal(err)
		}
	}
	p := New(d, 16*256) // pressure: 16 frames for 64 pages
	var readers, writer sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				pg := int64(rng.Intn(pages))
				h, err := p.PinPage("f", pg)
				if err != nil {
					t.Error(err)
					return
				}
				// The page must carry the right page number whatever epoch
				// it was written in ("f:NNNNNNNN" or "e<k>:NNNNNNNN").
				data := h.Data()
				want := fmt.Sprintf(":%08d", pg)
				if !bytes.Contains(data[:16], []byte(want)) {
					t.Errorf("torn or misplaced page %d: %q", pg, data[:16])
					h.Release()
					return
				}
				h.Release()
			}
		}(int64(w))
	}
	// Writer: overwrite random pages with new epochs; the disk hook
	// invalidates through the pool concurrently with the pins above.
	writer.Add(1)
	go func() {
		defer writer.Done()
		rng := rand.New(rand.NewSource(99))
		buf := make([]byte, 256)
		for epoch := 0; epoch < 2000; epoch++ {
			pg := rng.Intn(pages)
			stamp(buf, fmt.Sprintf("e%d", epoch%7), pg)
			if err := d.WritePage("f", int64(pg), buf); err != nil {
				t.Error(err)
				return
			}
			if epoch%100 == 0 {
				p.InvalidateFile("f")
			}
		}
	}()
	writer.Wait() // writer finishes; then stop the readers
	close(stop)
	readers.Wait()
}

// TestPinPageZeroAllocs pins the acceptance criterion directly: a warm
// page fetch through the pool performs zero allocations.
func TestPinPageZeroAllocs(t *testing.T) {
	d := storage.NewDisk(512)
	fill(t, d, "f", 4)
	p := New(d, 16*512)
	for pg := 0; pg < 4; pg++ { // warm
		h, err := p.PinPage("f", int64(pg))
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h, err := p.PinPage("f", 2)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	})
	if allocs != 0 {
		t.Fatalf("warm PinPage allocates %.1f times per op, want 0", allocs)
	}
	// The uncached pin is allocation-free too.
	allocs = testing.AllocsPerRun(1000, func() {
		h, err := d.PinPage("f", 2)
		if err != nil {
			t.Fatal(err)
		}
		h.Release()
	})
	if allocs != 0 {
		t.Fatalf("Disk.PinPage allocates %.1f times per op, want 0", allocs)
	}
}

// TestSharedCacheAcrossDisks attaches two disks to one cache and checks
// keys never collide and the budget is shared.
func TestSharedCacheAcrossDisks(t *testing.T) {
	c := NewCache(1<<20, 256)
	d1 := storage.NewDisk(256)
	d2 := storage.NewDisk(256)
	fill(t, d1, "f", 4)
	fill(t, d2, "f", 4) // same file name, different disk
	p1, err := c.Attach(d1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.Attach(d2)
	if err != nil {
		t.Fatal(err)
	}
	// Distinguish the two disks' contents.
	page := make([]byte, 256)
	copy(page, "disk2-only")
	if err := d2.WritePage("f", 0, page); err != nil {
		t.Fatal(err)
	}
	h1, err := p1.PinPage("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	checkPage(t, h1.Data(), "f", 0)
	h1.Release()
	h2, err := p2.PinPage("f", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(h2.Data(), []byte("disk2-only")) {
		t.Fatalf("cross-disk key collision: %q", h2.Data()[:10])
	}
	h2.Release()
	// Page-size mismatch is rejected.
	if _, err := c.Attach(storage.NewDisk(4096)); err == nil {
		t.Fatal("attach with mismatched page size succeeded")
	}
}

// TestPoolReadPageMatchesDisk checks the copying PageReader methods agree
// with the bare disk byte-for-byte.
func TestPoolReadPageMatchesDisk(t *testing.T) {
	d := storage.NewDisk(256)
	fill(t, d, "f", 10)
	p := New(d, 4*256)
	bufD := make([]byte, 256)
	bufP := make([]byte, 256)
	for pg := int64(0); pg < 10; pg++ {
		nd, err := d.ReadPage("f", pg, bufD)
		if err != nil {
			t.Fatal(err)
		}
		np, err := p.ReadPage("f", pg, bufP)
		if err != nil {
			t.Fatal(err)
		}
		if nd != np || !bytes.Equal(bufD, bufP) {
			t.Fatalf("page %d: pool read diverges from disk", pg)
		}
	}
	big := make([]byte, 4*256)
	n, err := p.ReadPages("f", 7, 4, big)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("ReadPages at tail returned %d pages, want 3 (clamped)", n)
	}
	checkPage(t, big[2*256:], "f", 9)
	if _, err := p.ReadPages("f", 100, 1, big); err == nil {
		t.Fatal("out-of-range ReadPages succeeded")
	}
	if _, err := p.PinPage("missing", 0); err == nil {
		t.Fatal("pin of missing file succeeded")
	}
	if p.PageSize() != 256 || !p.Exists("f") || p.Exists("missing") {
		t.Fatal("PageReader surface misbehaves")
	}
	if np, err := p.NumPages("f"); err != nil || np != 10 {
		t.Fatalf("NumPages = %d, %v", np, err)
	}
}

// TestPoolStats checks the StatsProvider contract: misses appear both as
// cache misses and as the disk reads they triggered; hits only as hits.
func TestPoolStats(t *testing.T) {
	d := storage.NewDisk(256)
	fill(t, d, "f", 6)
	p := New(d, 64*256)
	p.ResetStats()
	for pass := 0; pass < 2; pass++ {
		for pg := int64(0); pg < 6; pg++ {
			h, err := p.PinPage("f", pg)
			if err != nil {
				t.Fatal(err)
			}
			h.Release()
		}
	}
	st := p.Stats()
	if st.CacheMisses != 6 || st.CacheHits != 6 {
		t.Fatalf("hits=%d misses=%d, want 6/6", st.CacheHits, st.CacheMisses)
	}
	if st.Reads() != 6 {
		t.Fatalf("disk reads = %d, want 6 (one per miss)", st.Reads())
	}
	if r := st.HitRatio(); r != 0.5 {
		t.Fatalf("hit ratio = %v, want 0.5", r)
	}
	p.ResetStats()
	if st := p.Stats(); st.CacheHits != 0 || st.CacheMisses != 0 || st.Reads() != 0 {
		t.Fatalf("ResetStats left %v", st)
	}
}
