package recommender

import (
	"strings"
	"testing"
)

func TestScenario1FewQueries(t *testing.T) {
	// The paper's Scenario 1 opening: big static collection, exploratory
	// (few) queries -> non-materialized CTree (with PP only if updates).
	r := Recommend(Scenario{Streaming: false, ExpectedQueries: 10, MemoryBudgetFrac: 0.1})
	if r.Index != ChoiceCTree || r.Materialized {
		t.Fatalf("got %s, want non-materialized CTree", r.Variant())
	}
	if r.Scheme != SchemeNone {
		t.Fatalf("static no-update scenario should have no scheme, got %s", r.Scheme)
	}
	if r.FillFactor != 1.0 {
		t.Fatalf("static tree should pack full, fill = %v", r.FillFactor)
	}
}

func TestScenario1ManyQueriesSwitchesToMaterialized(t *testing.T) {
	// "as we increase the projected number of queries ... recommender
	// changes its choice to using a materialized CTree".
	few := Recommend(Scenario{ExpectedQueries: 50, MemoryBudgetFrac: 0.1})
	many := Recommend(Scenario{ExpectedQueries: 1000, MemoryBudgetFrac: 0.1})
	if few.Materialized {
		t.Fatal("few queries should stay non-materialized")
	}
	if !many.Materialized {
		t.Fatal("many queries should switch to materialized")
	}
	if many.Index != ChoiceCTree {
		t.Fatalf("static stays CTree, got %s", many.Index)
	}
	if many.Variant() != "CTreeFull" {
		t.Fatalf("variant = %q", many.Variant())
	}
}

func TestScenario2Streaming(t *testing.T) {
	// The paper's Scenario 2: streaming seismic data, windowed queries ->
	// non-materialized CLSM with BTP.
	r := Recommend(Scenario{Streaming: true, ExpectedQueries: 50, MemoryBudgetFrac: 0.05, SmallWindows: true})
	if r.Variant() != "CLSM+BTP" {
		t.Fatalf("got %s, want CLSM+BTP", r.Variant())
	}
	if r.GrowthFactor < 2 {
		t.Fatal("growth factor unset")
	}
}

func TestStorageTightForcesNonMaterialized(t *testing.T) {
	r := Recommend(Scenario{ExpectedQueries: 100000, StorageTight: true, MemoryBudgetFrac: 0.1})
	if r.Materialized {
		t.Fatal("storage-tight scenario must not materialize")
	}
}

func TestWriteHeavyStaticPicksCLSM(t *testing.T) {
	r := Recommend(Scenario{UpdateRate: 0.5, ExpectedQueries: 10, MemoryBudgetFrac: 0.1})
	if r.Index != ChoiceCLSM {
		t.Fatalf("write-heavy workload should pick CLSM, got %s", r.Index)
	}
}

func TestLightUpdatesLeaveSlack(t *testing.T) {
	r := Recommend(Scenario{UpdateRate: 0.05, ExpectedQueries: 10, MemoryBudgetFrac: 0.1})
	if r.Index != ChoiceCTree {
		t.Fatalf("light updates stay CTree, got %s", r.Index)
	}
	if r.FillFactor >= 1.0 {
		t.Fatal("light updates should leave leaf slack")
	}
	if r.Scheme != SchemePP {
		t.Fatalf("appends with temporal predicates use PP, got %q", r.Scheme)
	}
}

func TestRationaleAlwaysPresent(t *testing.T) {
	scenarios := []Scenario{
		{},
		{Streaming: true},
		{ExpectedQueries: 1 << 20},
		{UpdateRate: 1, StorageTight: true},
		{Streaming: true, SmallWindows: true, MemoryBudgetFrac: 0.01},
	}
	for i, s := range scenarios {
		r := Recommend(s)
		if len(r.Rationale) < 2 {
			t.Errorf("scenario %d: rationale has %d steps", i, len(r.Rationale))
		}
		out := r.String()
		if !strings.Contains(out, "recommendation:") || !strings.Contains(out, "rationale:") {
			t.Errorf("scenario %d: String() missing sections:\n%s", i, out)
		}
	}
}

func TestTinyMemoryMentionsExternalSort(t *testing.T) {
	r := Recommend(Scenario{ExpectedQueries: 10, MemoryBudgetFrac: 0.01})
	found := false
	for _, step := range r.Rationale {
		if strings.Contains(step, "external sorting") {
			found = true
		}
	}
	if !found {
		t.Error("tiny-memory scenario should explain the external-sort advantage")
	}
}

func TestQueryHeavyStreamMergesAggressively(t *testing.T) {
	r := Recommend(Scenario{Streaming: true, ExpectedQueries: 100000, MemoryBudgetFrac: 0.1})
	if r.GrowthFactor != 2 {
		t.Fatalf("query-heavy stream growth factor = %d, want 2", r.GrowthFactor)
	}
}

func TestVariantNaming(t *testing.T) {
	cases := []struct {
		r    Recommendation
		want string
	}{
		{Recommendation{Index: ChoiceCTree}, "CTree"},
		{Recommendation{Index: ChoiceCTree, Materialized: true}, "CTreeFull"},
		{Recommendation{Index: ChoiceCLSM, Scheme: SchemeBTP}, "CLSM+BTP"},
		{Recommendation{Index: ChoiceCTree, Materialized: true, Scheme: SchemePP}, "CTreeFull+PP"},
	}
	for _, c := range cases {
		if got := c.r.Variant(); got != c.want {
			t.Errorf("Variant = %q, want %q", got, c.want)
		}
	}
}
