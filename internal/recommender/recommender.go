// Package recommender implements the demo's recommender tool: a decision
// tree that maps an application scenario (static vs. streaming, expected
// query volume, memory and storage budgets, window behaviour) to the best
// structural configuration within the Coconut infrastructure, and explains
// its advice with the rationale path through the tree — the property the
// paper calls out ("designed as a decision tree to be able to provide users
// with the rationale for its advice").
package recommender

import (
	"fmt"
	"strings"
)

// Scenario describes the target application.
type Scenario struct {
	// Streaming indicates data arrives continuously (Scenario 2); false
	// means a static collection indexed once (Scenario 1).
	Streaming bool
	// ExpectedQueries is the projected number of similarity queries over
	// the index's lifetime.
	ExpectedQueries int
	// UpdateRate is the expected fraction of operations that are inserts
	// once the index is live, in [0,1]. Only meaningful for static
	// scenarios that still receive occasional appends.
	UpdateRate float64
	// MemoryBudgetFrac is the available main memory as a fraction of the
	// dataset size, in (0,1].
	MemoryBudgetFrac float64
	// StorageTight indicates storage consumption is a first-order concern
	// (e.g. cloud cost pressure).
	StorageTight bool
	// SmallWindows indicates streaming queries concentrate on recent,
	// narrow temporal windows rather than long histories.
	SmallWindows bool
}

// IndexChoice identifies an index family.
type IndexChoice string

// Index families the recommender can choose.
const (
	ChoiceCTree IndexChoice = "CTree"
	ChoiceCLSM  IndexChoice = "CLSM"
)

// StreamScheme identifies a streaming scheme.
type StreamScheme string

// Streaming schemes the recommender can choose.
const (
	SchemeNone StreamScheme = ""    // static scenario
	SchemePP   StreamScheme = "PP"  // post-processing
	SchemeTP   StreamScheme = "TP"  // temporal partitioning
	SchemeBTP  StreamScheme = "BTP" // bounded temporal partitioning
)

// Recommendation is the recommender's advice.
type Recommendation struct {
	Index        IndexChoice
	Materialized bool
	Scheme       StreamScheme
	// Tuning hints surfaced in the demo GUI.
	FillFactor   float64 // CTree leaf fill factor
	GrowthFactor int     // CLSM growth factor
	// Rationale is the ordered list of decisions taken through the tree.
	Rationale []string
}

// Variant renders the recommendation in the paper's naming convention,
// e.g. "CTree", "CTreeFull+PP", "CLSM+BTP".
func (r Recommendation) Variant() string {
	name := string(r.Index)
	if r.Materialized {
		name += "Full"
	}
	if r.Scheme != SchemeNone {
		name += "+" + string(r.Scheme)
	}
	return name
}

// String renders the recommendation and its rationale.
func (r Recommendation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recommendation: %s", r.Variant())
	if r.Index == ChoiceCTree {
		fmt.Fprintf(&b, " (fill factor %.2f)", r.FillFactor)
	} else {
		fmt.Fprintf(&b, " (growth factor %d)", r.GrowthFactor)
	}
	b.WriteString("\nrationale:\n")
	for i, step := range r.Rationale {
		fmt.Fprintf(&b, "  %d. %s\n", i+1, step)
	}
	return b.String()
}

// MaterializationCrossover is the expected-query count above which a
// materialized index pays off: the extra build and storage cost is
// amortized once enough queries skip raw-file fetches. The constant
// reflects the E3 experiment's crossover region.
const MaterializationCrossover = 100

// Recommend walks the decision tree for the scenario.
func Recommend(s Scenario) Recommendation {
	var r Recommendation
	say := func(format string, args ...any) {
		r.Rationale = append(r.Rationale, fmt.Sprintf(format, args...))
	}

	// Level 1: workload mutability decides the index family.
	switch {
	case s.Streaming:
		r.Index = ChoiceCLSM
		say("data arrives continuously: log-structured updates (CLSM) ingest with sequential I/O while staying queryable")
	case s.UpdateRate > 0.25:
		r.Index = ChoiceCLSM
		say("update rate %.0f%% is write-heavy: CLSM amortizes inserts through sort-merges", s.UpdateRate*100)
	default:
		r.Index = ChoiceCTree
		say("collection is static (update rate %.0f%%): a bulk-loaded CTree gives the most compact, contiguous, read-optimal layout", s.UpdateRate*100)
	}

	// Level 2: materialization from query volume and storage pressure.
	switch {
	case s.StorageTight:
		r.Materialized = false
		say("storage is a first-order cost: keep the index non-materialized (summaries only) and fetch raw series on demand")
	case s.ExpectedQueries > MaterializationCrossover:
		r.Materialized = true
		say("%d expected queries exceed the materialization crossover (~%d): storing series inline repays its build and space cost", s.ExpectedQueries, MaterializationCrossover)
	default:
		r.Materialized = false
		say("only %d expected queries (crossover ~%d): a non-materialized index is faster to build and the few queries tolerate raw-file fetches", s.ExpectedQueries, MaterializationCrossover)
	}

	// Level 3: streaming scheme.
	if s.Streaming {
		r.Scheme = SchemeBTP
		say("sortable summarizations enable BTP: recent data stays in small partitions, history consolidates into large contiguous runs, and the partition count stays bounded")
		if s.SmallWindows {
			say("queries favor narrow recent windows: BTP skips the large historical partitions wholesale")
		} else {
			say("even for wide windows BTP beats TP: large merged runs prune effectively and cap the partitions visited")
		}
	} else if s.UpdateRate > 0 {
		r.Scheme = SchemePP
		say("occasional appends with temporal predicates are served by post-processing timestamps during search (PP)")
	}

	// Level 4: tuning knobs.
	if r.Index == ChoiceCTree {
		switch {
		case s.UpdateRate <= 0:
			r.FillFactor = 1.0
			say("no updates expected: pack leaves full (fill factor 1.0) for the shortest possible scans")
		case s.UpdateRate < 0.1:
			r.FillFactor = 0.9
			say("light updates: leave 10%% leaf slack (fill factor 0.9) to absorb inserts without splits")
		default:
			r.FillFactor = 0.7
			say("moderate updates: fill factor 0.7 trades scan length for insert headroom")
		}
	} else {
		switch {
		case s.ExpectedQueries > 10*MaterializationCrossover:
			r.GrowthFactor = 2
			say("query-heavy stream: growth factor 2 merges aggressively, keeping few runs per query")
		case s.MemoryBudgetFrac < 0.05:
			r.GrowthFactor = 4
			say("tight memory (%.1f%% of data): growth factor 4 balances merge frequency against run count", s.MemoryBudgetFrac*100)
		default:
			r.GrowthFactor = 4
			say("default growth factor 4 balances ingest rate and query cost")
		}
	}

	if s.MemoryBudgetFrac > 0 && s.MemoryBudgetFrac < 0.02 {
		say("memory budget is only %.1f%% of the data: Coconut's two-pass external sorting degrades gracefully where buffering-based construction (ADS+) thrashes", s.MemoryBudgetFrac*100)
	}
	return r
}
