// Package sortable implements Coconut's core contribution: sortable data
// series summarizations. An iSAX word is turned into a single integer key by
// interleaving the bits of all segments round-robin, most-significant bits
// first (a z-order / Morton encoding over iSAX symbol space). Sorting these
// keys keeps series that are similar across *all* segments adjacent, which
// is what lets external sorting, B-trees, and LSM-trees organize data series
// indexes with sequential I/O.
package sortable

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/sax"
	"repro/internal/series"
)

// Key is a 128-bit sortable summarization, compared big-endian (Hi first).
// It holds w*bits interleaved bits left-aligned: the first interleaving
// round (the most significant bit of every segment) occupies the top w bits.
type Key struct {
	Hi, Lo uint64
}

// KeyBytes is the serialized size of a Key.
const KeyBytes = 16

// MaxSegments is the largest segment count for which a full 8-bit-cardinality
// word still fits into 128 bits.
const MaxSegments = 16

// Interleave encodes an iSAX word into a sortable key. The total bit count
// w.Bits*len(w.Symbols) must not exceed 128. Bits are laid out round-robin:
// round r (r=0 is each symbol's MSB) contributes len(Symbols) bits, ordered
// by segment.
func Interleave(w sax.Word) Key {
	nseg := len(w.Symbols)
	total := nseg * w.Bits
	if total > 128 {
		panic(fmt.Sprintf("sortable: %d segments x %d bits = %d > 128 bits", nseg, w.Bits, total))
	}
	var k Key
	pos := 0 // next bit position from the top (0 = MSB of Hi)
	for r := 0; r < w.Bits; r++ {
		srcBit := uint(w.Bits - 1 - r)
		for s := 0; s < nseg; s++ {
			b := (w.Symbols[s] >> srcBit) & 1
			if b != 0 {
				k.setBit(pos)
			}
			pos++
		}
	}
	return k
}

// Concat encodes an iSAX word segment-major: all bits of segment 0, then
// all bits of segment 1, and so on. This is the *naive* sortable encoding
// the paper argues against — sorting by it clusters series by their first
// segment (the beginning of the series) and ignores the rest, so similar
// series end up arbitrarily far apart. It exists for the ablation
// experiment (E10) that quantifies why interleaving matters.
func Concat(w sax.Word) Key {
	nseg := len(w.Symbols)
	total := nseg * w.Bits
	if total > 128 {
		panic(fmt.Sprintf("sortable: %d segments x %d bits = %d > 128 bits", nseg, w.Bits, total))
	}
	var k Key
	pos := 0
	for s := 0; s < nseg; s++ {
		for b := w.Bits - 1; b >= 0; b-- {
			if (w.Symbols[s]>>uint(b))&1 != 0 {
				k.setBit(pos)
			}
			pos++
		}
	}
	return k
}

// Deconcat inverts Concat given the segment count and cardinality bits.
func Deconcat(k Key, nseg, bitsPer int) sax.Word {
	total := nseg * bitsPer
	if total > 128 {
		panic(fmt.Sprintf("sortable: %d segments x %d bits = %d > 128 bits", nseg, bitsPer, total))
	}
	syms := make([]uint8, nseg)
	pos := 0
	for s := 0; s < nseg; s++ {
		for b := bitsPer - 1; b >= 0; b-- {
			if k.bit(pos) {
				syms[s] |= 1 << uint(b)
			}
			pos++
		}
	}
	return sax.Word{Symbols: syms, Bits: bitsPer}
}

// Deinterleave inverts Interleave, recovering the iSAX word given the
// segment count and cardinality bits it was encoded with.
func Deinterleave(k Key, nseg, bitsPer int) sax.Word {
	total := nseg * bitsPer
	if total > 128 {
		panic(fmt.Sprintf("sortable: %d segments x %d bits = %d > 128 bits", nseg, bitsPer, total))
	}
	syms := make([]uint8, nseg)
	pos := 0
	for r := 0; r < bitsPer; r++ {
		dstBit := uint(bitsPer - 1 - r)
		for s := 0; s < nseg; s++ {
			if k.bit(pos) {
				syms[s] |= 1 << dstBit
			}
			pos++
		}
	}
	return sax.Word{Symbols: syms, Bits: bitsPer}
}

// FromSeries is a convenience: summarize a (z-normalized) series with w
// segments at bits cardinality bits and interleave in one step.
func FromSeries(s series.Series, w, bitsPer int) Key {
	return Interleave(sax.FromSeries(s, w, bitsPer))
}

func (k *Key) setBit(pos int) {
	if pos < 64 {
		k.Hi |= 1 << uint(63-pos)
	} else {
		k.Lo |= 1 << uint(127-pos)
	}
}

func (k Key) bit(pos int) bool {
	if pos < 64 {
		return k.Hi&(1<<uint(63-pos)) != 0
	}
	return k.Lo&(1<<uint(127-pos)) != 0
}

// Compare returns -1, 0, or +1 comparing k and o as 128-bit big-endian
// unsigned integers.
func (k Key) Compare(o Key) int {
	switch {
	case k.Hi < o.Hi:
		return -1
	case k.Hi > o.Hi:
		return 1
	case k.Lo < o.Lo:
		return -1
	case k.Lo > o.Lo:
		return 1
	}
	return 0
}

// Less reports whether k sorts before o.
func (k Key) Less(o Key) bool { return k.Compare(o) < 0 }

// IsZero reports whether k is the all-zero key.
func (k Key) IsZero() bool { return k.Hi == 0 && k.Lo == 0 }

// CommonPrefixLen returns the number of leading bits shared by k and o
// (0..128). Keys sharing longer prefixes agree on more interleaving rounds,
// i.e. on coarser iSAX representations of more significance.
func (k Key) CommonPrefixLen(o Key) int {
	if k.Hi != o.Hi {
		return bits.LeadingZeros64(k.Hi ^ o.Hi)
	}
	if k.Lo != o.Lo {
		return 64 + bits.LeadingZeros64(k.Lo^o.Lo)
	}
	return 128
}

// PrefixRound truncates the key after the first `rounds` interleaving rounds
// for nseg segments, zeroing everything below: the coarsened z-order cell
// lower bound. Two keys with equal PrefixRound(r) have identical iSAX words
// at cardinality 2^r.
func (k Key) PrefixRound(rounds, nseg int) Key {
	keep := rounds * nseg
	return k.truncate(keep)
}

func (k Key) truncate(keep int) Key {
	if keep <= 0 {
		return Key{}
	}
	if keep >= 128 {
		return k
	}
	var out Key
	if keep <= 64 {
		out.Hi = k.Hi &^ (^uint64(0) >> uint(keep))
	} else {
		out.Hi = k.Hi
		out.Lo = k.Lo &^ (^uint64(0) >> uint(keep-64))
	}
	return out
}

// AppendBinary appends the 16-byte big-endian encoding of k to buf; the
// encoding preserves order under bytes.Compare.
func (k Key) AppendBinary(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, k.Hi)
	buf = binary.BigEndian.AppendUint64(buf, k.Lo)
	return buf
}

// DecodeKey decodes a key from the first 16 bytes of buf.
func DecodeKey(buf []byte) Key {
	return Key{
		Hi: binary.BigEndian.Uint64(buf),
		Lo: binary.BigEndian.Uint64(buf[8:]),
	}
}

// String renders the key as 32 hex digits.
func (k Key) String() string { return fmt.Sprintf("%016x%016x", k.Hi, k.Lo) }
