package sortable

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sax"
	"repro/internal/series"
)

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		nseg := 1 + rng.Intn(16)
		bitsPer := 1 + rng.Intn(8)
		if nseg*bitsPer > 128 {
			continue
		}
		syms := make([]uint8, nseg)
		for i := range syms {
			syms[i] = uint8(rng.Intn(1 << bitsPer))
		}
		w := sax.Word{Symbols: syms, Bits: bitsPer}
		k := Interleave(w)
		got := Deinterleave(k, nseg, bitsPer)
		for i := range syms {
			if got.Symbols[i] != syms[i] {
				t.Fatalf("trial %d: roundtrip symbol %d = %d, want %d", trial, i, got.Symbols[i], syms[i])
			}
		}
	}
}

func TestInterleaveKnownLayout(t *testing.T) {
	// 2 segments, 2 bits. Symbols a=10b, b=01b.
	// Round 0 (MSBs): a1=1, b1=0 -> bits "10"
	// Round 1 (LSBs): a0=0, b0=1 -> bits "01"
	// Key top nibble = 1001b = 0x9.
	w := sax.Word{Symbols: []uint8{2, 1}, Bits: 2}
	k := Interleave(w)
	if k.Hi>>60 != 0x9 {
		t.Errorf("top nibble = %x, want 9", k.Hi>>60)
	}
	if k.Lo != 0 {
		t.Errorf("Lo = %x, want 0", k.Lo)
	}
}

func TestInterleavePanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >128 bits")
		}
	}()
	Interleave(sax.Word{Symbols: make([]uint8, 17), Bits: 8})
}

func TestCompare(t *testing.T) {
	a := Key{Hi: 1, Lo: 0}
	b := Key{Hi: 1, Lo: 1}
	c := Key{Hi: 2, Lo: 0}
	if a.Compare(a) != 0 || !a.Less(b) || !b.Less(c) || c.Less(a) {
		t.Fatal("comparison ordering wrong")
	}
	if b.Compare(a) != 1 || a.Compare(b) != -1 {
		t.Fatal("compare signs wrong")
	}
}

// Sorting by interleaved key must equal sorting by (coarse-to-fine
// round-robin) symbol significance; in particular keys of words that agree
// on all MSBs cluster together regardless of low bits.
func TestSortGroupsByMSB(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const nseg, bitsPer = 8, 8
	type entry struct {
		k Key
		w sax.Word
	}
	var entries []entry
	for i := 0; i < 2000; i++ {
		syms := make([]uint8, nseg)
		for j := range syms {
			syms[j] = uint8(rng.Intn(256))
		}
		w := sax.Word{Symbols: syms, Bits: bitsPer}
		entries = append(entries, entry{Interleave(w), w})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].k.Less(entries[j].k) })
	// In sorted order the sequence of round-0 prefixes (the cardinality-2
	// iSAX words) must be non-decreasing as integers, i.e. all entries with
	// the same MSB pattern are contiguous.
	prev := -1
	seen := make(map[int]bool)
	for _, e := range entries {
		msb := 0
		for _, s := range e.w.Symbols {
			msb = msb<<1 | int(s>>7)
		}
		if msb != prev {
			if seen[msb] {
				t.Fatalf("MSB group %b appears non-contiguously", msb)
			}
			seen[msb] = true
			prev = msb
		}
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := Key{Hi: 0xF000000000000000}
	b := Key{Hi: 0xF800000000000000}
	if got := a.CommonPrefixLen(b); got != 4 {
		t.Errorf("CommonPrefixLen = %d, want 4", got)
	}
	if got := a.CommonPrefixLen(a); got != 128 {
		t.Errorf("self prefix = %d, want 128", got)
	}
	c := Key{Hi: a.Hi, Lo: 1}
	if got := a.CommonPrefixLen(c); got != 127 {
		t.Errorf("prefix across words = %d, want 127", got)
	}
}

func TestPrefixRoundEquivalence(t *testing.T) {
	// Two keys share PrefixRound(r) iff their words promoted to r bits match.
	rng := rand.New(rand.NewSource(3))
	const nseg, bitsPer = 16, 8
	for trial := 0; trial < 300; trial++ {
		w1 := randomWord(rng, nseg, bitsPer)
		w2 := randomWord(rng, nseg, bitsPer)
		k1, k2 := Interleave(w1), Interleave(w2)
		for r := 0; r <= bitsPer; r++ {
			same := k1.PrefixRound(r, nseg) == k2.PrefixRound(r, nseg)
			var wordsSame bool
			if r == 0 {
				wordsSame = true
			} else {
				p1, p2 := w1.Promote(r), w2.Promote(r)
				wordsSame = true
				for i := range p1.Symbols {
					if p1.Symbols[i] != p2.Symbols[i] {
						wordsSame = false
						break
					}
				}
			}
			if same != wordsSame {
				t.Fatalf("trial %d round %d: prefix-equal=%v but words-equal=%v", trial, r, same, wordsSame)
			}
		}
	}
}

func TestTruncateEdges(t *testing.T) {
	k := Key{Hi: ^uint64(0), Lo: ^uint64(0)}
	if got := k.truncate(0); !got.IsZero() {
		t.Error("truncate(0) should be zero")
	}
	if got := k.truncate(128); got != k {
		t.Error("truncate(128) should be identity")
	}
	if got := k.truncate(64); got.Hi != ^uint64(0) || got.Lo != 0 {
		t.Errorf("truncate(64) = %v", got)
	}
	if got := k.truncate(65); got.Lo != 1<<63 {
		t.Errorf("truncate(65).Lo = %x, want %x", got.Lo, uint64(1)<<63)
	}
}

func TestBinaryEncodingPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		a := Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
		b := Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
		ab := a.AppendBinary(nil)
		bb := b.AppendBinary(nil)
		if got, want := bytes.Compare(ab, bb), a.Compare(b); got != want {
			t.Fatalf("bytes.Compare = %d, key Compare = %d", got, want)
		}
		if DecodeKey(ab) != a {
			t.Fatal("binary roundtrip failed")
		}
	}
}

// The headline property: similar series (small Euclidean distance) tend to
// share long key prefixes; moreover identical series produce identical keys.
func TestSimilarSeriesNearbyKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n, nseg, bitsPer = 256, 16, 8
	base := randomWalk(rng, n).ZNormalize()
	kBase := FromSeries(base, nseg, bitsPer)
	if kBase != FromSeries(base, nseg, bitsPer) {
		t.Fatal("same series must give same key")
	}
	// Perturb slightly: prefix should mostly survive; a random other walk
	// should share a shorter prefix on average.
	similarPrefix, randomPrefix := 0, 0
	const trials = 100
	for i := 0; i < trials; i++ {
		pert := base.Clone()
		for j := range pert {
			pert[j] += rng.NormFloat64() * 0.01
		}
		similarPrefix += kBase.CommonPrefixLen(FromSeries(series.Series(pert).ZNormalize(), nseg, bitsPer))
		randomPrefix += kBase.CommonPrefixLen(FromSeries(randomWalk(rng, n).ZNormalize(), nseg, bitsPer))
	}
	if similarPrefix <= randomPrefix {
		t.Errorf("similar series share prefix %d, random %d; expected similar > random",
			similarPrefix/trials, randomPrefix/trials)
	}
}

func TestPropertyInterleaveRoundTrip(t *testing.T) {
	f := func(raw [16]uint8) bool {
		w := sax.Word{Symbols: raw[:], Bits: 8}
		got := Deinterleave(Interleave(w), 16, 8)
		for i := range raw {
			if got.Symbols[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyCompareConsistent(t *testing.T) {
	f := func(h1, l1, h2, l2 uint64) bool {
		a, b := Key{h1, l1}, Key{h2, l2}
		c := a.Compare(b)
		return c == -b.Compare(a) && (c != 0 || a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomWord(rng *rand.Rand, nseg, bitsPer int) sax.Word {
	syms := make([]uint8, nseg)
	for i := range syms {
		syms[i] = uint8(rng.Intn(1 << bitsPer))
	}
	return sax.Word{Symbols: syms, Bits: bitsPer}
}

func randomWalk(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	v := 0.0
	for i := range s {
		v += rng.NormFloat64()
		s[i] = v
	}
	return s
}

func TestConcatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		nseg := 1 + rng.Intn(16)
		bitsPer := 1 + rng.Intn(8)
		w := randomWord(rng, nseg, bitsPer)
		got := Deconcat(Concat(w), nseg, bitsPer)
		for i := range w.Symbols {
			if got.Symbols[i] != w.Symbols[i] {
				t.Fatalf("trial %d: symbol %d = %d, want %d", trial, i, got.Symbols[i], w.Symbols[i])
			}
		}
	}
}

func TestConcatOrderIsSegmentMajor(t *testing.T) {
	// Sorting by Concat keys must order primarily by segment 0.
	a := sax.Word{Symbols: []uint8{1, 255}, Bits: 8}
	b := sax.Word{Symbols: []uint8{2, 0}, Bits: 8}
	if !Concat(a).Less(Concat(b)) {
		t.Fatal("concat order should be dominated by segment 0")
	}
	// Whereas interleaved order weighs all segments' MSBs first: a has
	// seg1 MSB set (255) so it sorts after b (seg MSBs: a=01, b=00).
	if !Interleave(b).Less(Interleave(a)) {
		t.Fatal("interleaved order should weigh all MSBs first")
	}
}

// The ablation's core claim in miniature: under the interleaved order,
// z-order neighbors are closer in true distance than under the naive
// segment-major order.
func TestInterleavedNeighborsCloserThanConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const n, nseg, bitsPer = 256, 16, 8
	type item struct {
		z             series.Series
		inter, concat Key
	}
	items := make([]item, 500)
	for i := range items {
		z := randomWalk(rng, n).ZNormalize()
		w := sax.FromSeries(z, nseg, bitsPer)
		items[i] = item{z: z, inter: Interleave(w), concat: Concat(w)}
	}
	idx := make([]int, len(items))
	for i := range idx {
		idx[i] = i
	}
	byInter := append([]int{}, idx...)
	sort.Slice(byInter, func(a, b int) bool { return items[byInter[a]].inter.Less(items[byInter[b]].inter) })
	byConcat := append([]int{}, idx...)
	sort.Slice(byConcat, func(a, b int) bool { return items[byConcat[a]].concat.Less(items[byConcat[b]].concat) })
	adj := func(order []int) float64 {
		sum := 0.0
		for i := 1; i < len(order); i++ {
			sum += items[order[i-1]].z.SqDist(items[order[i]].z)
		}
		return sum / float64(len(order)-1)
	}
	di, dc := adj(byInter), adj(byConcat)
	if di >= dc {
		t.Errorf("interleaved adjacent distance %.2f not below concat %.2f", di, dc)
	}
}
