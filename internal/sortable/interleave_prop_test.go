package sortable

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/sax"
)

// Property tests for the interleaved encoding — the invariant the parallel
// merge (external sort, LSM compaction, BTP bounding) relies on: keys are a
// faithful, order-preserving image of iSAX words, so independently sorted
// shards merge into the same global order no matter how the work was split.

// randomWord is shared with key_test.go.

// shapes covers the cardinality/segment combinations that fit 128 bits.
var shapes = []struct{ nseg, bits int }{
	{16, 8}, {16, 4}, {8, 8}, {8, 4}, {4, 8}, {1, 8}, {16, 1}, {12, 6},
}

func TestInterleaveDeinterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, sh := range shapes {
		for trial := 0; trial < 500; trial++ {
			w := randomWord(rng, sh.nseg, sh.bits)
			got := Deinterleave(Interleave(w), sh.nseg, sh.bits)
			if !reflect.DeepEqual(got, w) {
				t.Fatalf("%dx%d: round trip %v -> %v", sh.nseg, sh.bits, w, got)
			}
		}
	}
}

func TestInterleaveInjective(t *testing.T) {
	// Distinct words map to distinct keys (follows from the round trip, but
	// cheap to check directly on random pairs).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		a := randomWord(rng, 16, 8)
		b := randomWord(rng, 16, 8)
		if reflect.DeepEqual(a, b) {
			continue
		}
		if Interleave(a) == Interleave(b) {
			t.Fatalf("collision: %v and %v -> %v", a, b, Interleave(a))
		}
	}
}

// dominates reports whether every segment of a is <= the matching segment
// of b.
func dominates(a, b sax.Word) bool {
	for i := range a.Symbols {
		if a.Symbols[i] > b.Symbols[i] {
			return false
		}
	}
	return true
}

func TestInterleaveRespectsSegmentwiseDominance(t *testing.T) {
	// Morton/z-order monotonicity: if word a is <= word b in every segment
	// (and differs somewhere), its key sorts strictly first. This is the
	// sense in which key order agrees with segment-wise dominance — the
	// geometric guarantee that sorting keys keeps series that are similar
	// across all segments adjacent.
	rng := rand.New(rand.NewSource(12))
	for _, sh := range shapes {
		for trial := 0; trial < 1000; trial++ {
			// Construct a dominated pair: a is drawn at or below b in every
			// segment, so a <= b holds by construction.
			b := randomWord(rng, sh.nseg, sh.bits)
			a := sax.Word{Symbols: make([]uint8, sh.nseg), Bits: sh.bits}
			for i, s := range b.Symbols {
				a.Symbols[i] = uint8(rng.Intn(int(s) + 1))
			}
			if !dominates(a, b) {
				t.Fatalf("constructed pair not dominated: %v vs %v", a, b)
			}
			if reflect.DeepEqual(a, b) {
				continue
			}
			if !Interleave(a).Less(Interleave(b)) {
				t.Fatalf("%dx%d: %v dominates %v but key %v !< %v",
					sh.nseg, sh.bits, a, b, Interleave(a), Interleave(b))
			}
		}
	}
}

func TestInterleaveFirstDivergentRoundDecidesOrder(t *testing.T) {
	// The interleaving is round-major (every segment's MSB first), so two
	// keys compare by the first cardinality round at which their words
	// differ: the coarse iSAX representation dominates the order, which is
	// why prefix truncation (PrefixRound) yields valid coarse cells.
	rng := rand.New(rand.NewSource(13))
	const nseg, bits = 16, 8
	for trial := 0; trial < 2000; trial++ {
		a := randomWord(rng, nseg, bits)
		b := randomWord(rng, nseg, bits)
		// Find the first round where the words diverge.
		round := -1
		var aBits, bBits uint64
	scan:
		for r := 0; r < bits; r++ {
			aBits, bBits = 0, 0
			for s := 0; s < nseg; s++ {
				aBits = aBits<<1 | uint64(a.Symbols[s]>>(bits-1-r))&1
				bBits = bBits<<1 | uint64(b.Symbols[s]>>(bits-1-r))&1
			}
			if aBits != bBits {
				round = r
				break scan
			}
		}
		ka, kb := Interleave(a), Interleave(b)
		if round < 0 {
			if ka != kb {
				t.Fatalf("equal words, different keys: %v vs %v", ka, kb)
			}
			continue
		}
		if wantLess := aBits < bBits; ka.Less(kb) != wantLess {
			t.Fatalf("round %d: aBits=%b bBits=%b but Less=%v", round, aBits, bBits, ka.Less(kb))
		}
	}
}

func TestKeyBinaryEncodingPreservesOrder(t *testing.T) {
	// The on-disk big-endian encoding must order exactly like Key.Compare —
	// run files are merged by decoded keys but validated/probed by raw
	// bytes (DecodeKeyOnly fast paths).
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 2000; trial++ {
		a := Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
		b := Key{Hi: rng.Uint64(), Lo: rng.Uint64()}
		ab := a.AppendBinary(nil)
		bb := b.AppendBinary(nil)
		if got, want := bytes.Compare(ab, bb), a.Compare(b); got != want {
			t.Fatalf("bytes.Compare=%d, Key.Compare=%d for %v vs %v", got, want, a, b)
		}
		if DecodeKey(ab) != a {
			t.Fatalf("binary round trip: %v -> %v", a, DecodeKey(ab))
		}
	}
}
