#include "textflag.h"

// AVX2 kernels. The algorithm matches sqBlocksScalar exactly: one YMM
// accumulator whose four lanes hold (a0,a1,a2,a3); each 8-point block adds
// two 4-wide chunks, then the abandon check horizontally sums the lanes as
// (a0+a2)+(a1+a3) and compares against the limit. VMULPD+VADDPD are used
// instead of FMA on purpose — FMA skips the intermediate rounding of d*d
// and would break bit-equality with the scalar reference.

// func sqBlocksBytesAVX2(q *float64, t unsafe.Pointer, nb int64, limit float64, acc *[4]float64) int64
TEXT ·sqBlocksBytesAVX2(SB), NOSPLIT, $0-48
	MOVQ  q+0(FP), SI
	MOVQ  t+8(FP), DI
	MOVQ  nb+16(FP), CX
	VMOVSD limit+24(FP), X5
	MOVQ  acc+32(FP), DX
	VXORPD Y0, Y0, Y0     // lanes (a0,a1,a2,a3)
	XORQ  AX, AX          // blocks processed

loop:
	CMPQ  AX, CX
	JGE   done

	// First 4-wide chunk: lanes += (q[i+j]-t[i+j])^2, j=0..3.
	VMOVUPD (SI), Y1
	VMOVUPD (DI), Y2
	VSUBPD  Y2, Y1, Y1
	VMULPD  Y1, Y1, Y1
	VADDPD  Y1, Y0, Y0

	// Second chunk: lanes += (q[i+4+j]-t[i+4+j])^2.
	VMOVUPD 32(SI), Y1
	VMOVUPD 32(DI), Y2
	VSUBPD  Y2, Y1, Y1
	VMULPD  Y1, Y1, Y1
	VADDPD  Y1, Y0, Y0

	ADDQ  $64, SI
	ADDQ  $64, DI
	INCQ  AX

	// check = (a0+a2)+(a1+a3); abandon when check > limit.
	VEXTRACTF128 $1, Y0, X1
	VADDPD  X1, X0, X2    // (a0+a2, a1+a3)
	VSHUFPD $1, X2, X2, X3
	VADDSD  X3, X2, X4
	VUCOMISD X5, X4
	JA    done
	JMP   loop

done:
	VMOVUPD Y0, (DX)
	VZEROUPPER
	MOVQ  AX, ret+40(FP)
	RET

// func tableQuadsAVX2(tab *float64, idx *int32, nq int64, acc *[4]float64)
//
// Lane j of the accumulator sums tab[idx[4b+j]] over quads b, gathered four
// at a time with VGATHERQPD. Callers guarantee every index is in range.
TEXT ·tableQuadsAVX2(SB), NOSPLIT, $0-32
	MOVQ tab+0(FP), SI
	MOVQ idx+8(FP), DI
	MOVQ nq+16(FP), CX
	MOVQ acc+24(FP), DX
	VXORPD Y0, Y0, Y0

tloop:
	TESTQ CX, CX
	JZ    tdone
	VPMOVSXDQ (DI), Y1         // 4 x int32 -> 4 x int64 indices
	VPCMPEQD  Y2, Y2, Y2       // all-ones mask (gather consumes it)
	VXORPD    Y3, Y3, Y3
	VGATHERQPD Y2, (SI)(Y1*8), Y3
	VADDPD    Y3, Y0, Y0
	ADDQ  $16, DI
	DECQ  CX
	JMP   tloop

tdone:
	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET
