// Package simd provides the runtime-dispatched compute kernels behind
// Coconut's two hottest loops: early-abandoning squared Euclidean distance
// (plain and fused with payload decoding) and the MINDIST lookup-table sum.
//
// Every kernel exists in (up to) two implementations selected at init time:
// an architecture-accelerated one written in Go assembly (AVX2 on amd64,
// NEON on arm64) and a portable scalar fallback. The scalar fallback is not
// the naive sequential loop — it implements the *identical* blocked
// algorithm as the assembly (four accumulator lanes, eight-point blocks,
// one abandon check per block, fixed (a0+a2)+(a1+a3) horizontal-sum order),
// so the two paths produce bit-for-bit identical results on every input and
// cannot drift apart. FMA is deliberately not used in the assembly: fused
// multiply-add skips the intermediate rounding of d*d and would break that
// bit-equality.
//
// Selection: init detects CPU support, runs a bit-exactness self-test of
// the accelerated kernels against the scalar reference, and enables the
// accelerated set only if both pass. The COCONUT_KERNELS environment
// variable ("scalar", "avx2", "neon", or "auto") and Select force a choice;
// facades expose the same knob as Options.Kernels. Active reports the set
// in use so published numbers are attributable to a code path.
package simd

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync/atomic"
)

// BlockPoints is the number of series points one abandon-checked block
// covers. The abandon limit is tested once per block (not per point), so
// kernels do strictly less abandoning than the historical scalar loop but
// identical abandoning across implementations.
const BlockPoints = 8

// KernelScalar names the portable fallback kernel set.
const KernelScalar = "scalar"

// accelOn is the dispatch switch: true routes the hot entry points to the
// architecture-accelerated kernels. An atomic (rather than a plain bool)
// keeps Select race-free against concurrent searches; the per-call load is
// effectively free next to the kernel body.
var accelOn atomic.Bool

// accelUsable records whether the accelerated set may be enabled at all:
// the CPU supports it and the init self-test proved it bit-identical to the
// scalar reference.
var accelUsable bool

// demoted records an accelerated set that the CPU advertises but the
// self-test rejected — a safety belt that should never trip, surfaced via
// Status for observability.
var demoted bool

func init() {
	if archSupported() {
		if selfTest() {
			accelUsable = true
		} else {
			demoted = true
		}
	}
	if err := Select(os.Getenv("COCONUT_KERNELS")); err != nil {
		// Unknown or unavailable request in the environment: run on the
		// best verified set rather than failing init.
		_ = Select("auto")
	}
}

// Active returns the name of the kernel set answering queries right now:
// "avx2", "neon", or "scalar".
func Active() string {
	if accelOn.Load() {
		return accelName
	}
	return KernelScalar
}

// Available lists the kernel sets Select accepts on this machine, the
// active one included.
func Available() []string {
	out := []string{KernelScalar}
	if accelUsable {
		out = append(out, accelName)
	}
	return out
}

// Status describes the dispatch decision for diagnostics: the active set,
// plus a note when hardware support was detected but demoted by the
// self-test.
func Status() string {
	if demoted {
		return Active() + " (accelerated set failed self-test, demoted)"
	}
	return Active()
}

// Select forces a kernel set: "scalar", the architecture set ("avx2" or
// "neon"), or "auto"/"" to re-run the default selection. It returns an
// error for unknown names and for accelerated sets this machine cannot
// run; the active set is unchanged on error.
func Select(name string) error {
	switch name {
	case "", "auto":
		accelOn.Store(accelUsable)
		return nil
	case KernelScalar:
		accelOn.Store(false)
		return nil
	case "avx2", "neon":
		if name != accelName {
			return fmt.Errorf("simd: kernel set %q unavailable on %s", name, archDescription)
		}
		if !accelUsable {
			return fmt.Errorf("simd: kernel set %q unavailable on this CPU", name)
		}
		accelOn.Store(true)
		return nil
	default:
		return fmt.Errorf("simd: unknown kernel set %q (want scalar, avx2, neon, or auto)", name)
	}
}

// SqDist returns the early-abandoning squared Euclidean distance between q
// and the first len(q) points of t: as soon as a block's partial sum
// exceeds limit the value so far (> limit) is returned. Pass +Inf to force
// the full distance. len(t) must be at least len(q).
func SqDist(q, t []float64, limit float64) float64 {
	n := len(q)
	if len(t) < n {
		panic(fmt.Sprintf("simd: SqDist length mismatch %d vs %d", n, len(t)))
	}
	nb := n / BlockPoints
	var acc [4]float64
	done := nb
	if nb > 0 {
		if accelOn.Load() {
			done = sqBlocksAccel(q, t, nb, limit, &acc)
		} else {
			done = sqBlocksScalar(q, t, nb, limit, &acc)
		}
	}
	// tot reproduces the kernels' block check bit-for-bit. done < nb means
	// an inner block abandoned; tot > limit catches an abandon at the final
	// block, which the block count alone cannot distinguish from a clean
	// finish.
	tot := (acc[0] + acc[2]) + (acc[1] + acc[3])
	if done < nb || tot > limit {
		return tot
	}
	for i := nb * BlockPoints; i < n; i++ {
		d := q[i] - t[i]
		tot += d * d
		if tot > limit {
			return tot
		}
	}
	return tot
}

// SqDistEncoded is SqDist with t in its little-endian IEEE-754 encoding
// (series.AppendBinary layout), fusing payload decoding into the distance
// accumulation. buf must hold at least 8*len(q) bytes.
func SqDistEncoded(q []float64, buf []byte, limit float64) float64 {
	n := len(q)
	if len(buf) < 8*n {
		panic(fmt.Sprintf("simd: SqDistEncoded short buffer %d for %d points", len(buf), n))
	}
	nb := n / BlockPoints
	var acc [4]float64
	done := nb
	if nb > 0 {
		if accelOn.Load() {
			done = sqBlocksEncAccel(q, buf, nb, limit, &acc)
		} else {
			done = sqBlocksEncScalar(q, buf, nb, limit, &acc)
		}
	}
	tot := (acc[0] + acc[2]) + (acc[1] + acc[3])
	if done < nb || tot > limit {
		return tot
	}
	for i := nb * BlockPoints; i < n; i++ {
		d := q[i] - math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		tot += d * d
		if tot > limit {
			return tot
		}
	}
	return tot
}

// Decode fills dst from the little-endian IEEE-754 encoding in buf. It is
// a pure bit reinterpretation — every kernel set produces identical output
// by construction — and exists so all payload decoding in the tree goes
// through one entry point. buf must hold at least 8*len(dst) bytes.
func Decode(buf []byte, dst []float64) {
	if len(buf) < 8*len(dst) {
		panic(fmt.Sprintf("simd: Decode short buffer %d for %d points", len(buf), len(dst)))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
}

// TableSum returns sum(tab[idx[i]]) in the kernels' blocked order: four
// accumulator lanes over quads of indices, lanes combined (a0+a2)+(a1+a3),
// remaining indices added sequentially. Every idx element must be a valid
// index into tab; the AVX2 path gathers without bounds checks.
func TableSum(tab []float64, idx []int32) float64 {
	nq := len(idx) / 4
	var acc [4]float64
	if nq > 0 {
		if accelOn.Load() {
			tableQuadsAccel(tab, idx, nq, &acc)
		} else {
			tableQuadsScalar(tab, idx, nq, &acc)
		}
	}
	tot := (acc[0] + acc[2]) + (acc[1] + acc[3])
	for i := nq * 4; i < len(idx); i++ {
		tot += tab[idx[i]]
	}
	return tot
}

// --- Scalar reference kernels. ---
//
// These mirror the assembly exactly: lane j accumulates points j and j+4 of
// each 8-point block, and the per-block abandon check sums the lanes as
// (a0+a2)+(a1+a3) — the AVX2 horizontal-sum order. Returns the number of
// blocks processed; < nb means the check exceeded limit after that block.

func sqBlocksScalar(q, t []float64, nb int, limit float64, acc *[4]float64) int {
	var a0, a1, a2, a3 float64
	for b := 0; b < nb; b++ {
		i := b * BlockPoints
		qq := q[i : i+8 : i+8]
		tt := t[i : i+8 : i+8]
		d0 := qq[0] - tt[0]
		a0 += d0 * d0
		d1 := qq[1] - tt[1]
		a1 += d1 * d1
		d2 := qq[2] - tt[2]
		a2 += d2 * d2
		d3 := qq[3] - tt[3]
		a3 += d3 * d3
		d4 := qq[4] - tt[4]
		a0 += d4 * d4
		d5 := qq[5] - tt[5]
		a1 += d5 * d5
		d6 := qq[6] - tt[6]
		a2 += d6 * d6
		d7 := qq[7] - tt[7]
		a3 += d7 * d7
		if (a0+a2)+(a1+a3) > limit {
			acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
			return b + 1
		}
	}
	acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
	return nb
}

func sqBlocksEncScalar(q []float64, buf []byte, nb int, limit float64, acc *[4]float64) int {
	var a0, a1, a2, a3 float64
	for b := 0; b < nb; b++ {
		i := b * BlockPoints
		qq := q[i : i+8 : i+8]
		bb := buf[8*i : 8*i+64 : 8*i+64]
		d0 := qq[0] - math.Float64frombits(binary.LittleEndian.Uint64(bb))
		a0 += d0 * d0
		d1 := qq[1] - math.Float64frombits(binary.LittleEndian.Uint64(bb[8:]))
		a1 += d1 * d1
		d2 := qq[2] - math.Float64frombits(binary.LittleEndian.Uint64(bb[16:]))
		a2 += d2 * d2
		d3 := qq[3] - math.Float64frombits(binary.LittleEndian.Uint64(bb[24:]))
		a3 += d3 * d3
		d4 := qq[4] - math.Float64frombits(binary.LittleEndian.Uint64(bb[32:]))
		a0 += d4 * d4
		d5 := qq[5] - math.Float64frombits(binary.LittleEndian.Uint64(bb[40:]))
		a1 += d5 * d5
		d6 := qq[6] - math.Float64frombits(binary.LittleEndian.Uint64(bb[48:]))
		a2 += d6 * d6
		d7 := qq[7] - math.Float64frombits(binary.LittleEndian.Uint64(bb[56:]))
		a3 += d7 * d7
		if (a0+a2)+(a1+a3) > limit {
			acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
			return b + 1
		}
	}
	acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
	return nb
}

func tableQuadsScalar(tab []float64, idx []int32, nq int, acc *[4]float64) {
	var a0, a1, a2, a3 float64
	for b := 0; b < nq; b++ {
		ii := idx[b*4 : b*4+4 : b*4+4]
		a0 += tab[ii[0]]
		a1 += tab[ii[1]]
		a2 += tab[ii[2]]
		a3 += tab[ii[3]]
	}
	acc[0], acc[1], acc[2], acc[3] = a0, a1, a2, a3
}

// --- Init self-test. ---

// selfTest proves the accelerated kernels bit-identical to the scalar
// reference on deterministic inputs covering full blocks, tails, abandons,
// and special values. A failure demotes the process to scalar — wrong
// answers are never an acceptable trade for speed.
func selfTest() bool {
	// Deterministic pseudo-random doubles from a fixed LCG; no math/rand to
	// keep init dependency-free and reproducible.
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		// Map to a modest range, mixing sign, magnitude, and exact zeros.
		v := float64(int64(state>>20)%4000) / 111.0
		return v
	}
	for _, n := range []int{1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100, 128, 256} {
		q := make([]float64, n)
		t := make([]float64, n)
		for i := range q {
			q[i] = next()
			t[i] = next()
		}
		buf := make([]byte, 8*n)
		for i, v := range t {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		full := sqFullScalar(q, t)
		for _, limit := range []float64{math.Inf(1), 0, full / 4, full, full * 2} {
			nb := n / BlockPoints
			var sAcc, aAcc [4]float64
			sDone := sqBlocksScalar(q, t, nb, limit, &sAcc)
			aDone := sqBlocksAccel(q, t, nb, limit, &aAcc)
			if sDone != aDone || !accEqual(&sAcc, &aAcc) {
				return false
			}
			var sEnc, aEnc [4]float64
			sDone = sqBlocksEncScalar(q, buf, nb, limit, &sEnc)
			aDone = sqBlocksEncAccel(q, buf, nb, limit, &aEnc)
			if sDone != aDone || !accEqual(&sEnc, &aEnc) {
				return false
			}
		}
		// Table sums over a synthetic table with the index width of this n.
		tab := make([]float64, 4*n)
		for i := range tab {
			tab[i] = next()
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32((int(state>>33) + i*i) % len(tab))
			state = state*6364136223846793005 + 1442695040888963407
		}
		var sAcc, aAcc [4]float64
		tableQuadsScalar(tab, idx, n/4, &sAcc)
		tableQuadsAccel(tab, idx, n/4, &aAcc)
		if !accEqual(&sAcc, &aAcc) {
			return false
		}
	}
	return true
}

// sqFullScalar is an independent plain sum used only to pick self-test
// abandon limits.
func sqFullScalar(q, t []float64) float64 {
	acc := 0.0
	for i := range q {
		d := q[i] - t[i]
		acc += d * d
	}
	return acc
}

func accEqual(a, b *[4]float64) bool {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
