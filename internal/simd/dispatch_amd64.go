package simd

import "unsafe"

// accelName is the accelerated kernel set this architecture offers.
const accelName = "avx2"

const archDescription = "amd64 (this build offers avx2)"

// archSupported reports AVX2 usable on this CPU: the AVX2 feature bit, plus
// OSXSAVE and the XCR0 XMM+YMM bits proving the OS preserves the 256-bit
// register state across context switches.
func archSupported() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	lo, _ := xgetbv()
	if lo&0x6 != 0x6 { // XMM and YMM state enabled
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

// The assembly works on raw byte pointers — on little-endian amd64 an
// encoded payload and a []float64 have identical memory layout, so one body
// serves both the plain and the fused-decode kernels.

func sqBlocksAccel(q, t []float64, nb int, limit float64, acc *[4]float64) int {
	return int(sqBlocksBytesAVX2(&q[0], unsafe.Pointer(&t[0]), int64(nb), limit, acc))
}

func sqBlocksEncAccel(q []float64, buf []byte, nb int, limit float64, acc *[4]float64) int {
	return int(sqBlocksBytesAVX2(&q[0], unsafe.Pointer(&buf[0]), int64(nb), limit, acc))
}

func tableQuadsAccel(tab []float64, idx []int32, nq int, acc *[4]float64) {
	tableQuadsAVX2(&tab[0], &idx[0], int64(nq), acc)
}

// Implemented in kernels_amd64.s.

//go:noescape
func sqBlocksBytesAVX2(q *float64, t unsafe.Pointer, nb int64, limit float64, acc *[4]float64) int64

//go:noescape
func tableQuadsAVX2(tab *float64, idx *int32, nq int64, acc *[4]float64)

// Implemented in cpuid_amd64.s.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (lo, hi uint32)
