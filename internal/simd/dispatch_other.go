//go:build !amd64 && !arm64

package simd

// No accelerated kernel set on this architecture: the portable scalar
// blocked kernels are the only implementation, and Select accepts only
// "scalar" and "auto".

const accelName = ""

const archDescription = "this architecture (scalar only)"

func archSupported() bool { return false }

func sqBlocksAccel(q, t []float64, nb int, limit float64, acc *[4]float64) int {
	panic("simd: no accelerated kernels on this architecture")
}

func sqBlocksEncAccel(q []float64, buf []byte, nb int, limit float64, acc *[4]float64) int {
	panic("simd: no accelerated kernels on this architecture")
}

func tableQuadsAccel(tab []float64, idx []int32, nq int, acc *[4]float64) {
	panic("simd: no accelerated kernels on this architecture")
}
