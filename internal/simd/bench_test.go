package simd

import (
	"math"
	"math/rand"
	"testing"
)

func benchData(n int) (q, t []float64, buf []byte) {
	rng := rand.New(rand.NewSource(7))
	q = make([]float64, n)
	t = make([]float64, n)
	for i := range q {
		q[i] = rng.NormFloat64()
		t[i] = rng.NormFloat64()
	}
	return q, t, encode(t)
}

func BenchmarkKernelSqDist(b *testing.B) {
	q, t, _ := benchData(256)
	defer Select("auto")
	for _, name := range Available() {
		Select(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = SqDist(q, t, math.Inf(1))
			}
		})
	}
}

func BenchmarkKernelSqDistEncoded(b *testing.B) {
	q, _, buf := benchData(256)
	defer Select("auto")
	for _, name := range Available() {
		Select(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = SqDistEncoded(q, buf, math.Inf(1))
			}
		})
	}
}

func BenchmarkKernelTableSum(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	tab := make([]float64, 16*256)
	for i := range tab {
		tab[i] = rng.NormFloat64()
	}
	idx := make([]int32, 16)
	for i := range idx {
		idx[i] = int32(i*256 + rng.Intn(256))
	}
	defer Select("auto")
	for _, name := range Available() {
		Select(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = TableSum(tab, idx)
			}
		})
	}
}
