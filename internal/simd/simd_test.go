package simd

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// refSqDist reproduces the blocked algorithm independently of the kernel
// entry points: lane j accumulates points j and j+4 of each 8-point block,
// abandon checked per block with the (a0+a2)+(a1+a3) horizontal order,
// tail points added sequentially with a per-point check.
func refSqDist(q, t []float64, limit float64) float64 {
	var a [4]float64
	n := len(q)
	nb := n / BlockPoints
	for b := 0; b < nb; b++ {
		for j := 0; j < 4; j++ {
			d := q[b*8+j] - t[b*8+j]
			a[j] += d * d
			d = q[b*8+4+j] - t[b*8+4+j]
			a[j] += d * d
		}
		// NOTE: lane order within the block differs from the kernels here
		// (per-lane vs per-point), but each lane's addition sequence is the
		// same, which is all that determines the bits.
		if (a[0]+a[2])+(a[1]+a[3]) > limit {
			return (a[0] + a[2]) + (a[1] + a[3])
		}
	}
	tot := (a[0] + a[2]) + (a[1] + a[3])
	for i := nb * 8; i < n; i++ {
		d := q[i] - t[i]
		tot += d * d
		if tot > limit {
			return tot
		}
	}
	return tot
}

func encode(t []float64) []byte {
	buf := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// withKernel runs f under each available kernel set, restoring the default
// selection afterwards.
func withKernel(t *testing.T, f func(t *testing.T, name string)) {
	t.Helper()
	defer Select("auto")
	for _, name := range Available() {
		if err := Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		t.Run(name, func(t *testing.T) { f(t, name) })
	}
}

// TestSqDistKernelsBitIdentical is the core equivalence property: every
// available kernel set returns bit-for-bit the scalar blocked result, for
// every length 1..512 (block tails included) and a spread of abandon
// limits.
func TestSqDistKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for n := 1; n <= 512; n++ {
		q := make([]float64, n)
		tt := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
			tt[i] = rng.NormFloat64()
		}
		buf := encode(tt)
		full := refSqDist(q, tt, math.Inf(1))
		limits := []float64{math.Inf(1), 0, full / 7, full / 2, full, full * 2}
		type res struct{ plain, enc uint64 }
		var got map[string]res
		withKernel(t, func(t *testing.T, name string) {
			r := res{
				plain: math.Float64bits(SqDist(q, tt, math.Inf(1))),
				enc:   math.Float64bits(SqDistEncoded(q, buf, math.Inf(1))),
			}
			if got == nil {
				got = map[string]res{}
			}
			got[name] = r
			for _, limit := range limits {
				want := refSqDist(q, tt, limit)
				if d := SqDist(q, tt, limit); math.Float64bits(d) != math.Float64bits(want) {
					t.Fatalf("n=%d limit=%v: SqDist=%v want %v", n, limit, d, want)
				}
				if d := SqDistEncoded(q, buf, limit); math.Float64bits(d) != math.Float64bits(want) {
					t.Fatalf("n=%d limit=%v: SqDistEncoded=%v want %v", n, limit, d, want)
				}
			}
		})
		base := got[KernelScalar]
		for name, r := range got {
			if r != base {
				t.Fatalf("n=%d: kernel %q differs from scalar: %v vs %v", n, name, r, base)
			}
		}
	}
}

// TestSqDistAbandonProperties pins the abandon contract on every kernel:
// a limit at or above the full distance never abandons (exact equality with
// the full sum), and an abandoned result is strictly greater than the
// limit.
func TestSqDistAbandonProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	withKernel(t, func(t *testing.T, name string) {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(300)
			q := make([]float64, n)
			tt := make([]float64, n)
			for i := range q {
				q[i] = rng.NormFloat64()
				tt[i] = rng.NormFloat64()
			}
			full := SqDist(q, tt, math.Inf(1))
			if got := SqDist(q, tt, full); math.Float64bits(got) != math.Float64bits(full) {
				t.Fatalf("n=%d: limit==full abandoned: %v vs %v", n, got, full)
			}
			limit := full * rng.Float64() * 0.9
			got := SqDist(q, tt, limit)
			if got <= limit && math.Float64bits(got) != math.Float64bits(full) {
				t.Fatalf("n=%d: abandoned result %v not > limit %v and not full %v", n, got, limit, full)
			}
		}
	})
}

// TestTableSumKernelsBitIdentical covers the MINDIST table-sum kernel for
// every index-vector length 0..64 (the pruner uses <= 16 segments; longer
// vectors exercise the quad loop harder) against a blocked reference.
func TestTableSumKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	tab := make([]float64, 4096)
	for i := range tab {
		tab[i] = rng.NormFloat64() * 10
	}
	ref := func(idx []int32) float64 {
		var a [4]float64
		nq := len(idx) / 4
		for b := 0; b < nq; b++ {
			for j := 0; j < 4; j++ {
				a[j] += tab[idx[b*4+j]]
			}
		}
		tot := (a[0] + a[2]) + (a[1] + a[3])
		for i := nq * 4; i < len(idx); i++ {
			tot += tab[idx[i]]
		}
		return tot
	}
	for n := 0; n <= 64; n++ {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(rng.Intn(len(tab)))
		}
		want := math.Float64bits(ref(idx))
		withKernel(t, func(t *testing.T, name string) {
			if got := math.Float64bits(TableSum(tab, idx)); got != want {
				t.Fatalf("n=%d: TableSum %x want %x", n, got, want)
			}
		})
	}
}

// TestDecode pins the decode entry point against the encoding.
func TestDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range []int{0, 1, 7, 8, 63, 256} {
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		buf := encode(want)
		got := make([]float64, n)
		Decode(buf, got)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d i=%d: %v want %v", n, i, got[i], want[i])
			}
		}
	}
}

// TestSelect pins the dispatch API: unknown names error, scalar always
// selects, auto restores the detected default, and Active reports what was
// chosen.
func TestSelect(t *testing.T) {
	defer Select("auto")
	if err := Select("scalar"); err != nil {
		t.Fatal(err)
	}
	if Active() != KernelScalar {
		t.Fatalf("Active=%q after Select(scalar)", Active())
	}
	if err := Select("no-such-set"); err == nil {
		t.Fatal("Select(no-such-set) succeeded")
	}
	if Active() != KernelScalar {
		t.Fatalf("failed Select changed Active to %q", Active())
	}
	for _, name := range Available() {
		if err := Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		if Active() != name {
			t.Fatalf("Active=%q after Select(%q)", Active(), name)
		}
	}
	if err := Select("auto"); err != nil {
		t.Fatal(err)
	}
}

// TestSelfTest re-runs the init self-test when an accelerated set is
// active: it must hold at runtime, not just at init.
func TestSelfTest(t *testing.T) {
	if !archSupported() {
		t.Skip("no accelerated kernels on this architecture")
	}
	if !selfTest() {
		t.Fatal("self-test failed")
	}
}

// FuzzSqDistEncoded cross-checks the fused-decode kernel against
// decode-then-distance on arbitrary byte payloads (NaNs, infinities,
// denormals included): the two must agree bit-for-bit on every kernel set.
func FuzzSqDistEncoded(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(1), math.Inf(1))
	f.Add(make([]byte, 128), int64(9), 3.5)
	f.Fuzz(func(t *testing.T, raw []byte, seed int64, limit float64) {
		n := len(raw) / 8
		if n == 0 || n > 600 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		q := make([]float64, n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		dec := make([]float64, n)
		Decode(raw, dec)
		defer Select("auto")
		var first uint64
		for i, name := range Available() {
			if err := Select(name); err != nil {
				t.Fatal(err)
			}
			enc := math.Float64bits(SqDistEncoded(q, raw, limit))
			plain := math.Float64bits(SqDist(q, dec, limit))
			if enc != plain {
				t.Fatalf("kernel %q: encoded %x vs plain %x", name, enc, plain)
			}
			if i == 0 {
				first = enc
			} else if enc != first {
				t.Fatalf("kernel %q differs: %x vs %x", name, enc, first)
			}
		}
	})
}
