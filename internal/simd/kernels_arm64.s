#include "textflag.h"

// NEON kernels. Same algorithm as sqBlocksScalar: the four conceptual
// accumulator lanes live in two 2-lane vectors, V0 = (a0,a1) and
// V1 = (a2,a3); each 8-point block adds four 2-wide chunks, then the
// abandon check sums V0+V1 pairwise and adds the pair — exactly
// (a0+a2)+(a1+a3). Separate FMUL+FADD (not FMLA): fused multiply-add
// skips the intermediate rounding of d*d and would break bit-equality
// with the scalar reference.
//
// The Go assembler has no vector FSUB/FMUL/FADD/FADDP mnemonics for
// arm64, so those four instructions are WORD-encoded; each carries its
// assembly form in a comment. Everything else is regular Go asm.

// func sqBlocksBytesNEON(q *float64, t unsafe.Pointer, nb int64, limit float64, acc *[4]float64) int64
TEXT ·sqBlocksBytesNEON(SB), NOSPLIT, $0-48
	MOVD  q+0(FP), R0
	MOVD  t+8(FP), R1
	MOVD  nb+16(FP), R2
	FMOVD limit+24(FP), F8
	MOVD  acc+32(FP), R3
	VEOR  V0.B16, V0.B16, V0.B16 // (a0,a1)
	VEOR  V1.B16, V1.B16, V1.B16 // (a2,a3)
	MOVD  ZR, R4                 // blocks processed

loop:
	CMP   R2, R4
	BGE   done
	VLD1.P 64(R0), [V2.D2, V3.D2, V4.D2, V5.D2]     // q[i..i+7]
	VLD1.P 64(R1), [V16.D2, V17.D2, V18.D2, V19.D2] // t[i..i+7]
	WORD  $0x4EF0D442 // FSUB V16.2D, V2.2D, V2.2D   (d0,d1)
	WORD  $0x4EF1D463 // FSUB V17.2D, V3.2D, V3.2D   (d2,d3)
	WORD  $0x4EF2D484 // FSUB V18.2D, V4.2D, V4.2D   (d4,d5)
	WORD  $0x4EF3D4A5 // FSUB V19.2D, V5.2D, V5.2D   (d6,d7)
	WORD  $0x6E62DC42 // FMUL V2.2D, V2.2D, V2.2D
	WORD  $0x6E63DC63 // FMUL V3.2D, V3.2D, V3.2D
	WORD  $0x6E64DC84 // FMUL V4.2D, V4.2D, V4.2D
	WORD  $0x6E65DCA5 // FMUL V5.2D, V5.2D, V5.2D
	WORD  $0x4E62D400 // FADD V2.2D, V0.2D, V0.2D    a0+=d0d0 a1+=d1d1
	WORD  $0x4E63D421 // FADD V3.2D, V1.2D, V1.2D    a2+=d2d2 a3+=d3d3
	WORD  $0x4E64D400 // FADD V4.2D, V0.2D, V0.2D    a0+=d4d4 a1+=d5d5
	WORD  $0x4E65D421 // FADD V5.2D, V1.2D, V1.2D    a2+=d6d6 a3+=d7d7
	ADD   $1, R4

	// check = (a0+a2)+(a1+a3); abandon when check > limit.
	WORD  $0x4E61D406 // FADD V1.2D, V0.2D, V6.2D    (a0+a2, a1+a3)
	WORD  $0x7E70D8C6 // FADDP D6, V6.2D             lane0+lane1
	FCMPD F8, F6
	BGT   done
	B     loop

done:
	VST1  [V0.D2, V1.D2], (R3)
	MOVD  R4, ret+40(FP)
	RET

// func tableQuadsNEON(tab *float64, idx *int32, nq int64, acc *[4]float64)
//
// NEON has no gather: the four lanes are four independent scalar
// load+add chains, which is the same blocked shape with the same
// per-lane addition order as tableQuadsScalar. Callers guarantee every
// index is in range.
TEXT ·tableQuadsNEON(SB), NOSPLIT, $0-32
	MOVD  tab+0(FP), R0
	MOVD  idx+8(FP), R1
	MOVD  nq+16(FP), R2
	MOVD  acc+24(FP), R3
	FMOVD ZR, F0
	FMOVD ZR, F1
	FMOVD ZR, F2
	FMOVD ZR, F3
	CBZ   R2, tdone

tloop:
	MOVW.P 4(R1), R4
	MOVW.P 4(R1), R5
	MOVW.P 4(R1), R6
	MOVW.P 4(R1), R7
	ADD   R4<<3, R0, R8
	FMOVD (R8), F4
	FADDD F4, F0
	ADD   R5<<3, R0, R8
	FMOVD (R8), F4
	FADDD F4, F1
	ADD   R6<<3, R0, R8
	FMOVD (R8), F4
	FADDD F4, F2
	ADD   R7<<3, R0, R8
	FMOVD (R8), F4
	FADDD F4, F3
	SUB   $1, R2
	CBNZ  R2, tloop

tdone:
	FMOVD F0, 0(R3)
	FMOVD F1, 8(R3)
	FMOVD F2, 16(R3)
	FMOVD F3, 24(R3)
	RET
