package simd

import "unsafe"

// accelName is the accelerated kernel set this architecture offers.
const accelName = "neon"

const archDescription = "arm64 (this build offers neon)"

// archSupported: ASIMD (NEON) is baseline on arm64 — every CPU Go runs on
// has it. The init self-test still gates enabling, so a bad encoding can
// only ever demote to scalar, never mis-answer.
func archSupported() bool { return true }

// The assembly works on raw byte pointers — arm64 Go is little-endian, so
// an encoded payload and a []float64 have identical memory layout and one
// body serves both the plain and the fused-decode kernels.

func sqBlocksAccel(q, t []float64, nb int, limit float64, acc *[4]float64) int {
	return int(sqBlocksBytesNEON(&q[0], unsafe.Pointer(&t[0]), int64(nb), limit, acc))
}

func sqBlocksEncAccel(q []float64, buf []byte, nb int, limit float64, acc *[4]float64) int {
	return int(sqBlocksBytesNEON(&q[0], unsafe.Pointer(&buf[0]), int64(nb), limit, acc))
}

func tableQuadsAccel(tab []float64, idx []int32, nq int, acc *[4]float64) {
	tableQuadsNEON(&tab[0], &idx[0], int64(nq), acc)
}

// Implemented in kernels_arm64.s.

//go:noescape
func sqBlocksBytesNEON(q *float64, t unsafe.Pointer, nb int64, limit float64, acc *[4]float64) int64

//go:noescape
func tableQuadsNEON(tab *float64, idx *int32, nq int64, acc *[4]float64)
