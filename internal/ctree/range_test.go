package ctree

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/index"
	"repro/internal/series"
	"repro/internal/storage"
)

// bruteRange is ground truth for epsilon queries.
func bruteRange(q index.Query, ds *series.Dataset, eps float64) []index.Result {
	col := index.NewRangeCollector(eps)
	for id := 0; id < ds.Count(); id++ {
		s, _ := ds.Get(id)
		col.Add(index.Result{ID: int64(id), Dist: math.Sqrt(q.Norm.SqDist(s.ZNormalize()))})
	}
	return col.Results()
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	ds := buildDataset(t, 600, 51)
	for _, mat := range []bool{false, true} {
		tr, _ := buildTree(t, ds, mat, 1.0)
		rng := rand.New(rand.NewSource(510))
		for trial := 0; trial < 10; trial++ {
			q := index.NewQuery(gen.RandomWalk(rng, 64), testConfig(mat))
			// Eps values around the typical 1-NN distance, so results are
			// non-trivial but not the whole dataset.
			for _, eps := range []float64{5, 8, 11} {
				want := bruteRange(q, ds, eps)
				got, err := tr.RangeSearch(q, eps)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("mat=%v eps=%v: %d results, want %d", mat, eps, len(got), len(want))
				}
				for i := range want {
					if got[i].ID != want[i].ID || math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("mat=%v eps=%v result %d: %+v vs %+v", mat, eps, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestRangeSearchEmptyResult(t *testing.T) {
	ds := buildDataset(t, 100, 52)
	tr, _ := buildTree(t, ds, true, 1.0)
	q := index.NewQuery(gen.RandomWalk(rand.New(rand.NewSource(520)), 64), testConfig(true))
	got, err := tr.RangeSearch(q, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty, got %v", got)
	}
}

func TestRangeSearchWindowed(t *testing.T) {
	ds := buildDataset(t, 200, 53)
	disk := storage.NewDisk(0)
	cfg := testConfig(true)
	tr, err := BuildTS(Options{Disk: disk, Config: cfg}, ds, func(id int) int64 { return int64(id) })
	if err != nil {
		t.Fatal(err)
	}
	s, _ := ds.Get(50)
	q := index.NewQuery(s, cfg)
	got, err := tr.RangeSearch(q.WithWindow(100, 199), 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.TS < 100 || r.TS > 199 {
			t.Fatalf("result outside window: %+v", r)
		}
	}
	if len(got) == 0 {
		t.Fatal("large eps should match the window population")
	}
}
