// Package ctree implements CoconutTree (CTree), the read-optimized index of
// the Coconut infrastructure: a compact and contiguous B+-tree over sortable
// summarizations, bulk-loaded bottom-up with two-pass external sorting.
// Leaves live contiguously in a single file in key order, so index
// construction and exact-search scans are sequential I/O. A configurable
// leaf fill factor leaves slack for later inserts, trading space and scan
// length for cheaper updates — the read/write knob the demo exposes.
package ctree

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/extsort"
	"repro/internal/index"
	"repro/internal/parallel"
	"repro/internal/record"
	"repro/internal/series"
	"repro/internal/sortable"
	"repro/internal/storage"
	"repro/internal/zonestat"
)

// Options configures a CTree build.
type Options struct {
	Disk   storage.Backend
	Name   string       // file name prefix on the disk
	Config index.Config // summarization shape; Materialized selects CTreeFull
	// FillFactor is the fraction of each leaf page populated at build time,
	// in (0,1]; the remainder is slack for inserts. Default 1.0 (fully
	// packed, the read-optimal layout).
	FillFactor float64
	// MemBudget is the working memory for external sorting, in bytes.
	// Default 1 MiB.
	MemBudget int
	// Raw is consulted by non-materialized searches to fetch original
	// (z-normalized) series. Required unless Config.Materialized. When
	// Parallelism exceeds 1, Raw must be safe for concurrent Get calls.
	Raw series.RawStore
	// Reader serves every page read of the tree (leaf scans, probes, and
	// the insert path's read-modify-write). nil selects the Disk itself —
	// the uncached behaviour; pass a buffer pool over the same disk to
	// serve hot leaf pages from memory. Writes always go to Disk, which
	// invalidates through any attached pool.
	Reader storage.PageReader
	// Parallelism bounds the worker goroutines used per operation: exact
	// and range searches scan leaf ranges concurrently, and construction's
	// external sort sorts in-memory runs on workers. 1 keeps the serial
	// paths; values <= 0 select GOMAXPROCS. Search results and the built
	// index are identical at every setting.
	Parallelism int
	// Planner carries the query planner's switches, plan cache, and skip
	// counter. nil plans with defaults (zone-map leaf skipping on, no
	// cache); it may be shared across many indexes.
	Planner *index.Planner
	// Compress selects the packed page encoding for leaf pages
	// (delta/bit-packed keys, frame-of-reference IDs and timestamps): each
	// leaf holds as many entries as its compressed bytes allow instead of a
	// fixed record count. The encoding is a per-tree build-time property
	// recorded in the metadata; searches and inserts are answer-identical
	// either way.
	Compress bool
}

func (o *Options) setDefaults() error {
	if o.Disk == nil {
		return fmt.Errorf("ctree: Disk is required")
	}
	if o.Name == "" {
		o.Name = "ctree"
	}
	if err := o.Config.Validate(); err != nil {
		return err
	}
	if o.FillFactor == 0 {
		o.FillFactor = 1.0
	}
	if o.FillFactor <= 0 || o.FillFactor > 1 {
		return fmt.Errorf("ctree: FillFactor %v out of (0,1]", o.FillFactor)
	}
	if o.MemBudget <= 0 {
		o.MemBudget = 1 << 20
	}
	if o.Parallelism <= 0 {
		o.Parallelism = parallel.Resolve(o.Parallelism)
	}
	if o.Reader == nil {
		o.Reader = o.Disk
	}
	return nil
}

// leaf is the in-memory directory entry for one on-disk leaf page. The
// directory plays the role of the B+-tree's internal levels; with thousands
// of entries per page the internal levels always fit in memory, as in the
// paper's implementation.
type leaf struct {
	minKey sortable.Key // smallest key in the leaf
	count  int          // live entries in the page
}

// Tree is a built CoconutTree.
type Tree struct {
	opts     Options
	codec    record.Codec
	leafFile string
	leaves   []leaf
	// pageOf maps directory position (key order) to physical page number.
	// It is nil while the bulk-loaded identity mapping holds and is
	// materialized by the first split, whose appended page breaks it.
	pageOf   []int64
	packed   bool   // leaf pages use the packed codec
	capacity int    // max entries per leaf page (fixed-size layout)
	target   int    // entries per leaf at build time (fill factor applied)
	count    int64  // total entries
	nextID64 int64  // next auto-assigned insert ID
	pageBuf  []byte // insert-path scratch; searches allocate their own
	pool     *parallel.Pool
	// Planner statistics. synMin/synMax are flat per-leaf symbol envelopes:
	// leaf li's envelope occupies [li*Segments, (li+1)*Segments). They are
	// built during packLeaves, maintained by inserts and splits, and
	// persisted with the directory; nil (a tree opened from pre-statistics
	// metadata) disables zone-map skipping until the tree is rebuilt. syn is
	// the whole-tree synopsis the sharded fan-out plans with.
	synMin []uint8
	synMax []uint8
	syn    *zonestat.Synopsis
	envOK  bool // per-leaf envelopes are maintained (false after a v1 Open)
}

// hasEnv reports whether per-leaf envelopes are available for planning.
func (t *Tree) hasEnv() bool { return t.envOK }

// leafEnv returns leaf li's symbol envelope (valid only when hasEnv).
func (t *Tree) leafEnv(li int) (minSym, maxSym []uint8) {
	w := t.opts.Config.Segments
	return t.synMin[li*w : (li+1)*w], t.synMax[li*w : (li+1)*w]
}

// setLeafEnv recomputes leaf li's envelope from its (decoded) entries; the
// envelope slots must already exist.
func (t *Tree) setLeafEnv(li int, entries []record.Entry) {
	w, bits := t.opts.Config.Segments, t.opts.Config.Bits
	mn := t.synMin[li*w : (li+1)*w]
	mx := t.synMax[li*w : (li+1)*w]
	var syms [sortable.MaxSegments]uint8
	for ei, e := range entries {
		zonestat.DecodeSyms(e.Key, w, bits, syms[:w])
		if ei == 0 {
			copy(mn, syms[:w])
			copy(mx, syms[:w])
			continue
		}
		for s := 0; s < w; s++ {
			if syms[s] < mn[s] {
				mn[s] = syms[s]
			}
			if syms[s] > mx[s] {
				mx[s] = syms[s]
			}
		}
	}
}

// insertEnvSlot makes room for a new leaf's envelope at directory position
// li (the split path inserts mid-directory; appends pass li == len-1).
func (t *Tree) insertEnvSlot(li int) {
	w := t.opts.Config.Segments
	t.synMin = append(t.synMin, make([]uint8, w)...)
	t.synMax = append(t.synMax, make([]uint8, w)...)
	copy(t.synMin[(li+1)*w:], t.synMin[li*w:])
	copy(t.synMax[(li+1)*w:], t.synMax[li*w:])
}

// PlanSynopses implements zonestat.Provider for shard-level planning: the
// whole tree is one probe unit, summarized by one synopsis. complete is
// false for trees opened from pre-statistics metadata.
func (t *Tree) PlanSynopses() ([]*zonestat.Synopsis, bool) {
	if t.syn == nil {
		return nil, false
	}
	return []*zonestat.Synopsis{t.syn}, true
}

var _ zonestat.Provider = (*Tree)(nil)

func (t *Tree) nextID() int64 {
	id := t.nextID64
	t.nextID64++
	return id
}

// Name implements index.Index; "CTree" or "CTreeFull" when materialized.
func (t *Tree) Name() string {
	if t.opts.Config.Materialized {
		return "CTreeFull"
	}
	return "CTree"
}

// Count returns the number of indexed series.
func (t *Tree) Count() int64 { return t.count }

// Config returns the summarization configuration the tree was built with.
func (t *Tree) Config() index.Config { return t.opts.Config }

// Leaves returns the number of leaf pages (the index footprint in pages).
func (t *Tree) Leaves() int { return len(t.leaves) }

// SetParallelism re-sizes the search worker pool (n <= 0 selects
// GOMAXPROCS; 1 is serial). Parallelism is not persisted, so reopened
// trees default to GOMAXPROCS — call this after Open to restore a serial
// configuration. Call only while no search is in flight.
func (t *Tree) SetParallelism(n int) { t.pool = parallel.New(n) }

// SetPlanner attaches the query planner (switches, plan cache, counters).
// Like SetParallelism it is not persisted; call after Open. Call only while
// no search is in flight.
func (t *Tree) SetPlanner(pl *index.Planner) { t.opts.Planner = pl }

// UseReader routes subsequent page reads through r — typically a buffer
// pool over the tree's disk (nil restores the uncached disk). Like
// SetParallelism it is not persisted; call after Open to re-attach a
// cache. Call only while no search is in flight.
func (t *Tree) UseReader(r storage.PageReader) {
	if r == nil {
		r = t.opts.Disk
	}
	t.opts.Reader = r
}

// Build constructs a CTree over all series in src, assigning IDs 0..n-1 in
// source order and timestamp ts to every entry. Construction is bottom-up:
// summarize sequentially, external-sort, then pack leaves contiguously.
func Build(opts Options, src series.RawStore, ts int64) (*Tree, error) {
	return BuildTS(opts, src, func(int) int64 { return ts })
}

// BuildTS is Build with a per-ID timestamp function (used by the streaming
// schemes to stamp entries with arrival time).
func BuildTS(opts Options, src series.RawStore, tsOf func(id int) int64) (*Tree, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	t := &Tree{
		opts:    opts,
		codec:   opts.Config.Codec(),
		pageBuf: make([]byte, opts.Disk.PageSize()),
		pool:    parallel.New(opts.Parallelism),
	}
	if err := t.initLayout(); err != nil {
		return nil, err
	}

	// Pass 0: summarize every series into an unsorted entry file
	// (sequential read of the source, sequential write of entries).
	unsorted := opts.Name + ".unsorted"
	w, err := storage.NewRecordWriter(opts.Disk, unsorted, t.codec.Size())
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, t.codec.Size())
	n := src.Count()
	for id := 0; id < n; id++ {
		s, err := src.Get(id)
		if err != nil {
			return nil, err
		}
		key, z := opts.Config.Summarize(s)
		e := record.Entry{Key: key, ID: int64(id), TS: tsOf(id)}
		if opts.Config.Materialized {
			e.Payload = z
		}
		buf = buf[:0]
		if buf, err = t.codec.Append(buf, e); err != nil {
			return nil, err
		}
		if err := w.Write(buf); err != nil {
			return nil, err
		}
	}
	if err := w.Close(); err != nil {
		return nil, err
	}

	// Passes 1..2: two-pass external sort; in-memory runs sort on the
	// worker pool while completed runs stream to disk.
	sorter := &extsort.Sorter{
		Disk: opts.Disk, Codec: t.codec, MemBudget: opts.MemBudget,
		TmpPrefix: opts.Name + ".sort", Parallelism: opts.Parallelism,
	}
	sorted := opts.Name + ".sorted"
	if _, err := sorter.Sort(unsorted, int64(n), sorted); err != nil {
		return nil, err
	}
	if err := opts.Disk.Remove(unsorted); err != nil {
		return nil, err
	}

	// Final pass: pack leaves at the fill factor, sequential write.
	if err := t.packLeaves(sorted, int64(n)); err != nil {
		return nil, err
	}
	if err := opts.Disk.Remove(sorted); err != nil {
		return nil, err
	}
	t.nextID64 = int64(n)
	return t, nil
}

// BuildFromEntries bulk-loads a tree from an already-sorted entry file
// (used by the streaming partitions, whose flushes are pre-sorted). The
// input file is consumed (removed).
func BuildFromEntries(opts Options, sortedFile string, n int64) (*Tree, error) {
	if err := opts.setDefaults(); err != nil {
		return nil, err
	}
	t := &Tree{
		opts:    opts,
		codec:   opts.Config.Codec(),
		pageBuf: make([]byte, opts.Disk.PageSize()),
		pool:    parallel.New(opts.Parallelism),
	}
	if err := t.initLayout(); err != nil {
		return nil, err
	}
	if err := t.packLeaves(sortedFile, n); err != nil {
		return nil, err
	}
	t.nextID64 = n
	return t, opts.Disk.Remove(sortedFile)
}

// initLayout derives the per-leaf capacities from the page size and the
// selected encoding. Fixed-size leaves hold a fixed record count; packed
// leaves hold whatever their compressed bytes allow, so only the worst-case
// single-entry shape is validated up front.
func (t *Tree) initLayout() error {
	pageSize := t.opts.Disk.PageSize()
	if t.opts.Compress {
		if !record.PackedFits(t.codec, pageSize) {
			return fmt.Errorf("ctree: packed entry shape exceeds page size %d", pageSize)
		}
		t.packed = true
	}
	perPage := pageSize / t.codec.Size()
	if perPage < 1 && !t.packed {
		return fmt.Errorf("ctree: entry size %d exceeds page size %d", t.codec.Size(), pageSize)
	}
	t.capacity = perPage
	t.target = int(math.Max(1, math.Floor(float64(perPage)*t.opts.FillFactor)))
	return nil
}

func (t *Tree) packLeaves(sorted string, n int64) error {
	t.leafFile = t.opts.Name + ".leaves"
	if err := t.opts.Disk.Create(t.leafFile); err != nil {
		return err
	}
	r, err := storage.NewRecordReader(t.opts.Disk, sorted, t.codec.Size(), n)
	if err != nil {
		return err
	}
	recSize := t.codec.Size()
	pageSize := t.opts.Disk.PageSize()
	w, bits := t.opts.Config.Segments, t.opts.Config.Bits
	t.syn = zonestat.New(w, bits)
	t.envOK = true
	var envMin, envMax, syms [sortable.MaxSegments]uint8
	// Leaf pages are assembled in a write-behind chunk and appended in
	// batches, keeping the leaf file write stream sequential even though it
	// interleaves with reads of the sorted input.
	const chunkPages = 16
	chunk := make([]byte, 0, chunkPages*pageSize)
	page := make([]byte, pageSize)
	inPage := 0
	var first sortable.Key
	var pb *record.PageBuilder
	packTarget := 0
	if t.packed {
		var err error
		if pb, err = record.NewPageBuilder(t.codec, pageSize); err != nil {
			return err
		}
		// The fill factor governs bytes, not entries: a packed leaf closes
		// once its encoded size crosses the fraction, leaving the remaining
		// bytes as insert slack. At factor 1.0 the threshold is unreachable
		// (TryAdd caps below the page size), so leaves close only when full.
		packTarget = int(math.Floor(float64(pageSize) * t.opts.FillFactor))
	}
	flushChunk := func() error {
		if len(chunk) == 0 {
			return nil
		}
		if _, err := t.opts.Disk.AppendPages(t.leafFile, chunk); err != nil {
			return err
		}
		chunk = chunk[:0]
		return nil
	}
	closeLeaf := func() error {
		cnt := inPage
		if t.packed {
			cnt = pb.Count()
		}
		if cnt == 0 {
			return nil
		}
		if t.packed {
			if _, err := pb.Encode(page); err != nil {
				return err
			}
		} else {
			for i := inPage * recSize; i < pageSize; i++ {
				page[i] = 0
			}
		}
		chunk = append(chunk, page...)
		t.leaves = append(t.leaves, leaf{minKey: first, count: cnt})
		t.synMin = append(t.synMin, envMin[:w]...)
		t.synMax = append(t.synMax, envMax[:w]...)
		inPage = 0
		if len(chunk) >= chunkPages*pageSize {
			return flushChunk()
		}
		return nil
	}
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		key := record.DecodeKeyOnly(rec)
		t.syn.Add(key, record.DecodeTS(rec))
		zonestat.DecodeSyms(key, w, bits, syms[:w])
		if t.packed {
			// Add before touching the envelope: a rejected entry belongs to
			// the next leaf, whose statistics it must seed, not widen ours.
			e, err := t.codec.Decode(rec)
			if err != nil {
				return err
			}
			ok, err := pb.TryAdd(e)
			if err != nil {
				return err
			}
			if !ok {
				if err := closeLeaf(); err != nil {
					return err
				}
				if ok, err = pb.TryAdd(e); err != nil {
					return err
				} else if !ok {
					return fmt.Errorf("ctree: entry rejected by empty packed page")
				}
			}
			if pb.Count() == 1 {
				first = key
				copy(envMin[:w], syms[:w])
				copy(envMax[:w], syms[:w])
			} else {
				for s := 0; s < w; s++ {
					if syms[s] < envMin[s] {
						envMin[s] = syms[s]
					}
					if syms[s] > envMax[s] {
						envMax[s] = syms[s]
					}
				}
			}
			t.count++
			if pb.EncodedBytes() >= packTarget {
				if err := closeLeaf(); err != nil {
					return err
				}
			}
			continue
		}
		if inPage == 0 {
			first = key
			copy(envMin[:w], syms[:w])
			copy(envMax[:w], syms[:w])
		} else {
			for s := 0; s < w; s++ {
				if syms[s] < envMin[s] {
					envMin[s] = syms[s]
				}
				if syms[s] > envMax[s] {
					envMax[s] = syms[s]
				}
			}
		}
		copy(page[inPage*recSize:], rec)
		inPage++
		t.count++
		if inPage == t.target {
			if err := closeLeaf(); err != nil {
				return err
			}
		}
	}
	if err := closeLeaf(); err != nil {
		return err
	}
	return flushChunk()
}

// findLeaf returns the index of the leaf whose key range contains k: the
// last leaf with minKey <= k (or 0).
func (t *Tree) findLeaf(k sortable.Key) int {
	i := sort.Search(len(t.leaves), func(i int) bool { return k.Less(t.leaves[i].minKey) })
	if i == 0 {
		return 0
	}
	return i - 1
}

// readLeaf decodes all live entries of leaf li into the insert-path page
// buffer. The returned entries share no storage with the page buffer.
func (t *Tree) readLeaf(li int) ([]record.Entry, error) {
	return t.readLeafBuf(li, t.pageBuf)
}

// readLeafBuf is readLeaf with a caller-owned page buffer, so concurrent
// searches (and search workers) never share scratch space.
func (t *Tree) readLeafBuf(li int, buf []byte) ([]record.Entry, error) {
	if _, err := t.opts.Reader.ReadPage(t.leafFile, t.pageNum(li), buf); err != nil {
		return nil, err
	}
	if t.packed {
		v, err := t.codec.ViewPacked(buf)
		if err != nil {
			return nil, err
		}
		out := make([]record.Entry, 0, v.Count())
		for i := 0; i < v.Count(); i++ {
			e, err := v.Entry(i, t.codec)
			if err != nil {
				return nil, err
			}
			out = append(out, e)
		}
		return out, nil
	}
	recSize := t.codec.Size()
	out := make([]record.Entry, 0, t.leaves[li].count)
	for i := 0; i < t.leaves[li].count; i++ {
		e, err := t.codec.Decode(buf[i*recSize : (i+1)*recSize])
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Insert adds one series top-down: locate the target leaf by key, insert in
// place if the fill-factor slack allows, otherwise split the leaf. Splits
// append the new page at the end of the file, eroding contiguity — exactly
// the degradation the fill-factor knob trades against.
func (t *Tree) Insert(s series.Series, ts int64) error {
	key, z := t.opts.Config.Summarize(s)
	e := record.Entry{Key: key, ID: t.nextID(), TS: ts}
	if t.opts.Config.Materialized {
		e.Payload = z
	}
	return t.InsertEntry(e)
}

// InsertEntry adds a pre-summarized entry with caller-controlled ID — used
// by the streaming schemes, which summarize once and own global IDs.
func (t *Tree) InsertEntry(e record.Entry) error {
	if e.ID >= t.nextID64 {
		t.nextID64 = e.ID + 1
	}
	// Widening the statistics before the write can only leave them too wide
	// on a failed insert — safe; too narrow would be a wrong bound.
	if t.syn != nil {
		t.syn.Add(e.Key, e.TS)
	}
	if len(t.leaves) == 0 {
		return t.insertEntryIntoEmpty(e)
	}
	li := t.findLeaf(e.Key)
	entries, err := t.readLeaf(li)
	if err != nil {
		return err
	}
	pos := sort.Search(len(entries), func(i int) bool { return e.Less(entries[i]) })
	entries = append(entries, record.Entry{})
	copy(entries[pos+1:], entries[pos:])
	entries[pos] = e

	fits, err := t.fitsLeaf(entries)
	if err != nil {
		return err
	}
	if fits {
		if err := t.writeLeaf(li, entries); err != nil {
			return err
		}
		if t.envOK {
			t.setLeafEnv(li, entries)
		}
		t.count++
		return nil
	}
	// Split: the low half stays in place; the high half becomes a new leaf
	// appended at the end of the file. The directory stays in key order,
	// so the page map diverges from the identity mapping here.
	t.ensurePageMap()
	mid := len(entries) / 2
	if err := t.writeLeaf(li, entries[:mid]); err != nil {
		return err
	}
	hi := entries[mid:]
	page, n, err := t.encodePage(hi)
	if err != nil {
		return err
	}
	newPage, err := t.opts.Disk.AppendPage(t.leafFile, page[:n])
	if err != nil {
		return err
	}
	t.leaves = append(t.leaves, leaf{})
	copy(t.leaves[li+2:], t.leaves[li+1:])
	t.leaves[li+1] = leaf{minKey: hi[0].Key, count: len(hi)}
	t.pageOf = append(t.pageOf, 0)
	copy(t.pageOf[li+2:], t.pageOf[li+1:])
	t.pageOf[li+1] = newPage
	if t.envOK {
		t.insertEnvSlot(li + 1)
		t.setLeafEnv(li, entries[:mid])
		t.setLeafEnv(li+1, hi)
	}
	t.count++
	return nil
}

func (t *Tree) insertEntryIntoEmpty(e record.Entry) error {
	page, n, err := t.encodePage([]record.Entry{e})
	if err != nil {
		return err
	}
	if t.leafFile == "" {
		t.leafFile = t.opts.Name + ".leaves"
		if err := t.opts.Disk.Create(t.leafFile); err != nil {
			return err
		}
	}
	if _, err := t.opts.Disk.AppendPage(t.leafFile, page[:n]); err != nil {
		return err
	}
	t.leaves = append(t.leaves, leaf{minKey: e.Key, count: 1})
	if t.envOK {
		w := t.opts.Config.Segments
		t.synMin = append(t.synMin, make([]uint8, w)...)
		t.synMax = append(t.synMax, make([]uint8, w)...)
		t.setLeafEnv(len(t.leaves)-1, []record.Entry{e})
	}
	t.count++
	return nil
}

// fitsLeaf reports whether entries fit in one leaf page under the tree's
// encoding: a record count against capacity for the fixed layout, a trial
// encode for the packed one (compressed size is data-dependent).
func (t *Tree) fitsLeaf(entries []record.Entry) (bool, error) {
	if !t.packed {
		return len(entries) <= t.capacity, nil
	}
	pb, err := record.NewPageBuilder(t.codec, t.opts.Disk.PageSize())
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		ok, err := pb.TryAdd(e)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

func (t *Tree) encodePage(entries []record.Entry) ([]byte, int, error) {
	page := make([]byte, t.opts.Disk.PageSize())
	if t.packed {
		pb, err := record.NewPageBuilder(t.codec, t.opts.Disk.PageSize())
		if err != nil {
			return nil, 0, err
		}
		for _, e := range entries {
			ok, err := pb.TryAdd(e)
			if err != nil {
				return nil, 0, err
			}
			if !ok {
				return nil, 0, fmt.Errorf("ctree: %d entries overflow a packed leaf page", len(entries))
			}
		}
		if _, err := pb.Encode(page); err != nil {
			return nil, 0, err
		}
		return page, len(page), nil
	}
	recSize := t.codec.Size()
	for i, e := range entries {
		buf, err := t.codec.Encode(e)
		if err != nil {
			return nil, 0, err
		}
		copy(page[i*recSize:], buf)
	}
	return page, len(entries) * recSize, nil
}

func (t *Tree) writeLeaf(li int, entries []record.Entry) error {
	page, n, err := t.encodePage(entries)
	if err != nil {
		return err
	}
	if err := t.opts.Disk.WritePage(t.leafFile, t.pageNum(li), page[:n]); err != nil {
		return err
	}
	t.leaves[li].count = len(entries)
	t.leaves[li].minKey = entries[0].Key
	return nil
}

func (t *Tree) pageNum(li int) int64 {
	if t.pageOf == nil {
		return int64(li)
	}
	return t.pageOf[li]
}

// ensurePageMap materializes the identity page map before the first split.
func (t *Tree) ensurePageMap() {
	if t.pageOf == nil {
		t.pageOf = make([]int64, len(t.leaves))
		for i := range t.pageOf {
			t.pageOf[i] = int64(i)
		}
	}
}
