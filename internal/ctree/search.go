package ctree

import (
	"repro/internal/index"
	"repro/internal/record"
)

// ApproxSearch answers an approximate k-NN query by descending to the leaf
// that covers the query's sortable key and scanning it (plus neighboring
// leaves until k candidates are seen). This is the cheap, no-guarantee
// search of the demo: one or two page reads.
func (t *Tree) ApproxSearch(q index.Query, k int) ([]index.Result, error) {
	col := index.NewCollector(k)
	if len(t.leaves) == 0 {
		return col.Results(), nil
	}
	center := t.findLeaf(q.Key)
	// Scan the covering leaf, then alternate outward until k candidates
	// have been evaluated (fill-factor slack or windows can leave leaves
	// short).
	seen, err := t.scanLeafInto(center, q, col)
	if err != nil {
		return nil, err
	}
	lo, hi := center, center
	for seen < k && (lo > 0 || hi < len(t.leaves)-1) {
		if lo > 0 {
			lo--
			n, err := t.scanLeafInto(lo, q, col)
			if err != nil {
				return nil, err
			}
			seen += n
		}
		if seen < k && hi < len(t.leaves)-1 {
			hi++
			n, err := t.scanLeafInto(hi, q, col)
			if err != nil {
				return nil, err
			}
			seen += n
		}
	}
	return col.Results(), nil
}

func (t *Tree) scanLeafInto(li int, q index.Query, col *index.Collector) (int, error) {
	entries, err := t.readLeaf(li)
	if err != nil {
		return 0, err
	}
	inWin := entries[:0:0]
	for _, e := range entries {
		if q.InWindow(e.TS) {
			inWin = append(inWin, e)
		}
	}
	n, err := index.EvalCandidates(q, inWin, t.opts.Config, t.opts.Raw, col)
	return n, err
}

// ExactSearch returns the true k nearest neighbors. It first runs
// ApproxSearch to seed the best-so-far bound, then scans the entire leaf
// file sequentially, pruning every entry whose iSAX lower bound meets the
// bound; only survivors pay for a true distance (an inline payload read, or
// a random raw-file fetch when non-materialized). The sequential scan over
// a compact, contiguous file is exactly the access pattern Coconut's
// sortable layout buys.
func (t *Tree) ExactSearch(q index.Query, k int) ([]index.Result, error) {
	col := index.NewCollector(k)
	if len(t.leaves) == 0 {
		return col.Results(), nil
	}
	approx, err := t.ApproxSearch(q, k)
	if err != nil {
		return nil, err
	}
	for _, r := range approx {
		col.Add(r)
	}
	recSize := t.codec.Size()
	var cands []record.Entry
	for li := range t.leaves {
		if _, err := t.opts.Disk.ReadPage(t.leafFile, t.pageNum(li), t.pageBuf); err != nil {
			return nil, err
		}
		cands = cands[:0]
		for i := 0; i < t.leaves[li].count; i++ {
			rec := t.pageBuf[i*recSize : (i+1)*recSize]
			// Cheap reject on the raw key before decoding the entry.
			if t.opts.Config.MinDistKey(q.PAA, record.DecodeKeyOnly(rec)) >= col.Worst() {
				continue
			}
			e, err := t.codec.Decode(rec)
			if err != nil {
				return nil, err
			}
			if !q.InWindow(e.TS) {
				continue
			}
			cands = append(cands, e)
		}
		if _, err := index.EvalCandidates(q, cands, t.opts.Config, t.opts.Raw, col); err != nil {
			return nil, err
		}
	}
	return col.Results(), nil
}

// RangeSearch returns every indexed series within Euclidean distance eps
// of the query: one sequential pruned scan of the leaf file.
func (t *Tree) RangeSearch(q index.Query, eps float64) ([]index.Result, error) {
	col := index.NewRangeCollector(eps)
	recSize := t.codec.Size()
	var cands []record.Entry
	for li := range t.leaves {
		if _, err := t.opts.Disk.ReadPage(t.leafFile, t.pageNum(li), t.pageBuf); err != nil {
			return nil, err
		}
		cands = cands[:0]
		for i := 0; i < t.leaves[li].count; i++ {
			rec := t.pageBuf[i*recSize : (i+1)*recSize]
			if t.opts.Config.MinDistKey(q.PAA, record.DecodeKeyOnly(rec)) > eps {
				continue
			}
			e, err := t.codec.Decode(rec)
			if err != nil {
				return nil, err
			}
			if !q.InWindow(e.TS) {
				continue
			}
			cands = append(cands, e)
		}
		if err := index.EvalRangeCandidates(q, cands, t.opts.Config, t.opts.Raw, col); err != nil {
			return nil, err
		}
	}
	return col.Results(), nil
}

var (
	_ index.Index         = (*Tree)(nil)
	_ index.Inserter      = (*Tree)(nil)
	_ index.RangeSearcher = (*Tree)(nil)
)
